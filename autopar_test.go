// Planner acceptance tests: the auto-parallelization planner
// (transform.AutoParallelize / core.AutoParallel) must reproduce
// exactly what the hand-wired StripMine calls in cmd/experiments and
// the R1/R2 measurement conventions produce today — same programs
// where the drivers reach every transformed loop, and bit-identical
// outputs, allocation counts, and simulated cycle counts everywhere.
// The serving-layer side of the acceptance criterion (hot "auto"
// requests do zero compile work) is pinned in internal/serve.
package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/nbody"
	"repro/internal/parexec"
)

// runAll executes fn on prog under one configuration triplet — serial
// real (both engines), simulated (4 PEs, cyclic), and goroutine-
// parallel (4 PEs, static cyclic) — returning a fingerprint that
// includes values, outputs, and full Stats (steps, allocations,
// simulated cycles).
func runAll(t *testing.T, prog *lang.Program, fn string, seed uint64, args []interp.Value) string {
	t.Helper()
	var fp bytes.Buffer
	for _, eng := range []interp.Engine{interp.EngineWalk, interp.EngineCompiled} {
		v, st, out := runEngine(t, prog, interp.Config{Engine: eng, Seed: seed}, fn, args)
		fp.WriteString(v.String() + out)
		writeStats(&fp, st)
		v, st, out = runEngine(t, prog,
			interp.Config{Engine: eng, Mode: interp.Simulated, PEs: 4, Sched: interp.Cyclic, Seed: seed}, fn, args)
		fp.WriteString(v.String() + out)
		writeStats(&fp, st)
		var pout bytes.Buffer
		v, st, err := parexec.Run(prog, parexec.Options{
			Interp: eng, PEs: 4, Sched: parexec.StaticCyclic, Seed: seed, Output: &pout,
		}, fn, args...)
		if err != nil {
			t.Fatalf("parallel %s: %v", eng, err)
		}
		fp.WriteString(v.String() + pout.String())
		writeStats(&fp, st)
	}
	return fp.String()
}

func writeStats(b *bytes.Buffer, st interp.Stats) {
	fmt.Fprintf(b, "|%+v|", st)
}

// TestAutoMatchesHandTuned: the acceptance pin. On the R1 polynomial
// the planner must emit the byte-identical program the hand-wired
// StripMine call produces (and likewise for the BHL1/BHL2 chain on
// the full Barnes-Hut program); on the R2 force workload — where the
// planner additionally transforms timestep, which run_forces never
// calls — outputs, allocation counts, and simulated cycle counts must
// still be bit-identical across engines and modes.
func TestAutoMatchesHandTuned(t *testing.T) {
	// R1: the §3.3.2 polynomial at the paper's width = PEs (4).
	c, err := core.Compile(parexec.PolyNormalizePSL)
	if err != nil {
		t.Fatal(err)
	}
	hand, err := c.StripMine(parexec.NormalizeFunc, parexec.NormalizeLoop, 4)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := c.AutoParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Source() != hand.Source() {
		t.Errorf("R1: auto plan is not the hand-tuned program:\n--- auto ---\n%s\n--- hand ---\n%s",
			auto.Source(), hand.Source())
	}
	polyArgs := []interp.Value{interp.IntVal(300), interp.RealVal(1.001)}
	if got, want := runAll(t, auto.Program, "run", 0, polyArgs), runAll(t, hand.Program, "run", 0, polyArgs); got != want {
		t.Errorf("R1: auto execution fingerprint diverged:\nauto %s\nhand %s", got, want)
	}

	// The full Barnes-Hut program: the planner must reproduce the
	// BHL1-then-BHL2 chain of hand calls (the X2 configuration).
	bh, err := core.Compile(nbody.BarnesHutPSL)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := bh.StripMine(nbody.TimestepFunc, nbody.BHL1, 8)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := h1.StripMine(nbody.TimestepFunc, nbody.BHL2, 8)
	if err != nil {
		t.Fatal(err)
	}
	bhAuto, err := bh.AutoParallel(8)
	if err != nil {
		t.Fatal(err)
	}
	if bhAuto.Source() != h2.Source() {
		t.Errorf("Barnes-Hut: auto plan is not the hand-tuned BHL1/BHL2 chain:\n%s", bhAuto.Source())
	}

	// R2: the force workload at the R2 convention width = 4×PEs (16).
	// Here the programs legitimately differ in text — the planner also
	// parallelizes timestep's loops, which run_forces never calls — so
	// the pin is the execution fingerprint.
	cf, err := core.Compile(nbody.BarnesHutForcePSL)
	if err != nil {
		t.Fatal(err)
	}
	handF, err := cf.StripMine(nbody.ForceFunc, nbody.ForceLoop, 16)
	if err != nil {
		t.Fatal(err)
	}
	autoF, err := cf.AutoParallel(16)
	if err != nil {
		t.Fatal(err)
	}
	if got := autoF.Plan.Parallelized; got != 3 {
		t.Errorf("R2 plan parallelized %d loops, want 3 (BHL1, BHL2, FCL):\n%s", got, autoF.Plan)
	}
	forceArgs := []interp.Value{interp.IntVal(48), interp.RealVal(0.5)}
	if got, want := runAll(t, autoF.Program, nbody.ForceFunc, 7, forceArgs), runAll(t, handF.Program, nbody.ForceFunc, 7, forceArgs); got != want {
		t.Errorf("R2: auto execution fingerprint diverged:\nauto %s\nhand %s", got, want)
	}
}

// TestUnrollMatchesSerial is the corpus differential for the [HG92]
// unrolling transformation: for every corpus program with an approved
// loop, the unrolled program must reproduce the un-unrolled program's
// value and output under both engines.
func TestUnrollMatchesSerial(t *testing.T) {
	for _, p := range equivalenceCorpus(t) {
		if p.stripFn == "" {
			continue
		}
		p := p
		t.Run(p.name, func(t *testing.T) {
			c, err := core.Compile(p.src)
			if err != nil {
				t.Fatal(err)
			}
			wv, _, wout := runEngine(t, c.Program,
				interp.Config{Engine: interp.EngineWalk, Seed: p.seed}, p.fn, p.args)
			for _, factor := range []int{2, 3} {
				un, err := c.Unroll(p.stripFn, p.stripLoop, factor)
				if err != nil {
					t.Fatalf("factor %d: %v", factor, err)
				}
				for _, eng := range []interp.Engine{interp.EngineWalk, interp.EngineCompiled} {
					v, _, out := runEngine(t, un.Program,
						interp.Config{Engine: eng, Seed: p.seed}, p.fn, p.args)
					if v.String() != wv.String() || out != wout {
						t.Errorf("factor %d engine %s: unrolled run diverged (%s vs %s)",
							factor, eng, v, wv)
					}
				}
			}
		})
	}
}
