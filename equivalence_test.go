// Engine equivalence: the differential suite behind the "three
// engines, two oracles" contract (DESIGN.md). The tree-walking
// interpreter is the semantic reference; the compiled closure engine
// is the fast path that R1/R2/R3 measure; the flat bytecode VM (R6)
// is the third engine, lowered from the same slot-resolved IR onto
// typed register banks. This file pins all three together: for every
// corpus program, under every execution mode — serial real, simulated
// with both static schedules and several PE counts, and
// goroutine-parallel under every scheduling policy at PEs {2, 4, 8} —
// results, printed output, and execution statistics (simulated cycle
// counts included) must be bit-identical across the full engine
// matrix, compared pairwise against the walker. The parallel cells
// run both the hand-strip-mined program and the auto-parallelization
// planner's whole-program transformation (core.AutoParallel), so the
// planner's output carries the same armor as the hand-wired calls.
// CI runs this under -race, so both fast engines' parallel frame
// handling is also exercised for data races.
package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/nbody"
	"repro/internal/parexec"
)

// eqEngines is the full engine matrix. The walker (first entry) is
// the oracle every other engine is compared against. The kernel engine
// is the bytecode VM plus the SPMD vector path for classified strips,
// so its cells additionally pin the slab gather/compute/scatter
// machinery (and its fallbacks) to the scalar semantics.
var eqEngines = []interp.Engine{interp.EngineWalk, interp.EngineCompiled, interp.EngineBytecode, interp.EngineKernel}

// eqProgram is one corpus entry: a program, the driver to execute,
// and (when a loop is provably parallel) the strip-mining target that
// produces the forall version for the parallel cells.
type eqProgram struct {
	name string
	src  string
	fn   string
	args []interp.Value
	seed uint64
	// stripFn/stripLoop select the loop for the parallel cells
	// (stripFn == "" keeps the program serial-only).
	stripFn   string
	stripLoop int
}

func equivalenceCorpus(t *testing.T) []eqProgram {
	t.Helper()
	read := func(name string) string {
		src, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		return string(src)
	}
	return []eqProgram{
		{name: "polyscale.psl", src: read("polyscale.psl"), fn: "main",
			stripFn: "scale", stripLoop: 0},
		{name: "violations.psl", src: read("violations.psl"), fn: "main"},
		{name: "orthlist.psl", src: read("orthlist.psl"), fn: "main",
			stripFn: "scale_row", stripLoop: 0},
		{name: "poly-normalize", src: parexec.PolyNormalizePSL, fn: "run",
			args:    []interp.Value{interp.IntVal(400), interp.RealVal(1.001)},
			stripFn: parexec.NormalizeFunc, stripLoop: parexec.NormalizeLoop},
		{name: "barnes-hut-force", src: nbody.BarnesHutForcePSL, fn: nbody.ForceFunc,
			args: []interp.Value{interp.IntVal(48), interp.RealVal(0.5)}, seed: 7,
			stripFn: nbody.ForceFunc, stripLoop: nbody.ForceLoop},
		// The vector-kernel workload: its strip classifies as
		// vectorizable, so the kernel engine's parallel cells execute
		// the batched slab path while every other engine (and every
		// other cell) runs scalar — the grid proves them bit-identical,
		// Stats included.
		{name: "vec-force", src: nbody.VecForcePSL, fn: nbody.VecForceFunc,
			args: []interp.Value{interp.IntVal(48), interp.IntVal(3), interp.RealVal(0.5)}, seed: 7,
			stripFn: nbody.VecForceFunc, stripLoop: nbody.VecForceLoop},
	}
}

// runEngine executes one configuration and returns value, stats, and
// captured output.
func runEngine(t *testing.T, prog *lang.Program, cfg interp.Config, fn string, args []interp.Value) (interp.Value, interp.Stats, string) {
	t.Helper()
	var out bytes.Buffer
	cfg.Output = &out
	v, st, err := interp.Run(prog, cfg, fn, args...)
	if err != nil {
		t.Fatalf("%s [engine %s]: %v", fn, cfg.Engine, err)
	}
	return v, st, out.String()
}

// TestEngineEquivalence is the corpus × engines × modes grid.
func TestEngineEquivalence(t *testing.T) {
	for _, p := range equivalenceCorpus(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			c, err := core.Compile(p.src)
			if err != nil {
				t.Fatal(err)
			}

			// Serial real mode: the reference cell. Each fast engine
			// is compared against the walker.
			wv, wst, wout := runEngine(t, c.Program,
				interp.Config{Engine: interp.EngineWalk, Seed: p.seed}, p.fn, p.args)
			for _, eng := range eqEngines[1:] {
				ev, est, eout := runEngine(t, c.Program,
					interp.Config{Engine: eng, Seed: p.seed}, p.fn, p.args)
				if wv.String() != ev.String() || wout != eout || wst != est {
					t.Fatalf("serial real divergence:\nwalk %s %+v %q\n%s %s %+v %q",
						wv, wst, wout, eng, ev, est, eout)
				}
			}

			// Simulated mode: cycle accounting must agree bit-for-bit,
			// across PE counts and both static schedules — for the
			// serial program, the hand-stripped one, and the planner's
			// whole-program transformation.
			programs := []*lang.Program{c.Program}
			if p.stripFn != "" {
				par, err := c.StripMine(p.stripFn, p.stripLoop, 8)
				if err != nil {
					t.Fatal(err)
				}
				programs = append(programs, par.Program)
			}
			auto, err := c.AutoParallel(8)
			if err != nil {
				t.Fatal(err)
			}
			if auto.Plan.Parallelized > 0 {
				programs = append(programs, auto.Program)
			}
			for pi, prog := range programs {
				for _, pes := range []int{1, 4} {
					for _, sched := range []interp.Scheduling{interp.Cyclic, interp.Block} {
						base := interp.Config{Mode: interp.Simulated, PEs: pes, Sched: sched, Seed: p.seed}
						wcfg := base
						wcfg.Engine = interp.EngineWalk
						wv, wst, wout := runEngine(t, prog, wcfg, p.fn, p.args)
						for _, eng := range eqEngines[1:] {
							ecfg := base
							ecfg.Engine = eng
							ev, est, eout := runEngine(t, prog, ecfg, p.fn, p.args)
							if wv.String() != ev.String() || wout != eout || wst != est {
								t.Fatalf("simulated divergence (variant=%d pes=%d sched=%d):\nwalk %s %+v\n%s %s %+v",
									pi, pes, sched, wv, wst, eng, ev, est)
							}
						}
					}
				}
			}

			// Goroutine-parallel mode: every scheduling policy × PEs
			// {2,4,8} × all three engines must reproduce the serial
			// walk reference (value, output, and the shared counters)
			// — for the hand-stripped program and the auto-planned one.
			variants := map[string]*lang.Program{}
			if p.stripFn != "" {
				par, err := c.StripMine(p.stripFn, p.stripLoop, 8)
				if err != nil {
					t.Fatal(err)
				}
				variants["hand"] = par.Program
			}
			if auto.Plan.Parallelized > 0 {
				variants["auto"] = auto.Program
			}
			for vname, prog := range variants {
				for _, pol := range []parexec.Policy{parexec.StaticBlock, parexec.StaticCyclic, parexec.Dynamic(2)} {
					for _, pes := range []int{2, 4, 8} {
						stats := map[interp.Engine]interp.Stats{}
						for _, eng := range eqEngines {
							var out bytes.Buffer
							v, st, err := parexec.Run(prog, parexec.Options{
								Interp: eng, PEs: pes, Sched: pol, Seed: p.seed, Output: &out,
							}, p.fn, p.args...)
							if err != nil {
								t.Fatalf("%s/%s/%s pes=%d engine=%s: %v", p.name, vname, pol.Name(), pes, eng, err)
							}
							// Value and output reproduce the serial run of
							// the *untransformed* program bit-for-bit.
							if v.String() != wv.String() {
								t.Errorf("%s/%s/%s pes=%d engine=%s: value %s != serial %s",
									p.name, vname, pol.Name(), pes, eng, v, wv)
							}
							if out.String() != wout {
								t.Errorf("%s/%s/%s pes=%d engine=%s: output diverged from serial run",
									p.name, vname, pol.Name(), pes, eng)
							}
							stats[eng] = st
						}
						// The strip-mined program executes more statements
						// than the original (forall machinery), so counters
						// are compared engine-vs-engine per cell, pairwise
						// against the walker.
						for _, eng := range eqEngines[1:] {
							if stats[interp.EngineWalk] != stats[eng] {
								t.Errorf("%s/%s/%s pes=%d: stats diverged: walk %+v, %s %+v",
									p.name, vname, pol.Name(), pes, stats[interp.EngineWalk], eng, stats[eng])
							}
						}
					}
				}
			}
		})
	}
}

// TestCompiledSpeedupFloor pins the point of the compiled engine: the
// R2 force workload, run serially, must be several times faster than
// the tree-walker. The floor is loose (the honest ratio on an idle
// host is ~5-6×, see BENCH_interp.json and `cmd/experiments -real`'s
// R3 table) so scheduler noise cannot flake CI; under the race
// detector, whose instrumentation compresses the gap, it is looser
// still. Best of 3 runs per engine, up to 3 attempts.
func TestCompiledSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	prog := lang.MustParse(nbody.BarnesHutForcePSL)
	args := []interp.Value{interp.IntVal(96), interp.RealVal(0.5)}
	measure := func(eng interp.Engine) time.Duration {
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			if _, _, err := interp.Run(prog, interp.Config{Engine: eng, Seed: 7}, nbody.ForceFunc, args...); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	floor := 3.0
	if raceEnabled {
		floor = 1.5
	}
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		walk := measure(interp.EngineWalk)
		compiled := measure(interp.EngineCompiled)
		ratio = float64(walk) / float64(compiled)
		t.Logf("attempt %d: walk %v, compiled %v, ratio %.2f (floor %.1f)", attempt+1, walk, compiled, ratio, floor)
		if ratio >= floor {
			return
		}
	}
	t.Errorf("compiled engine only %.2f× faster than the walker on the force workload (floor %.1f)", ratio, floor)
}

// TestBytecodeSpeedupFloor pins the point of the R6 bytecode VM: on
// the R2 force workload, run serially, the flat instruction loop over
// typed register banks must beat the closure-tree compiled engine.
// The honest ratio on an idle host is recorded in BENCH_interp.json;
// the floor here is the acceptance bar (≥1.5×), relaxed under the
// race detector, whose per-access instrumentation penalizes the VM's
// tight switch loop more than it penalizes closure dispatch. Best of
// 3 runs per engine, up to 3 attempts.
func TestBytecodeSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	prog := lang.MustParse(nbody.BarnesHutForcePSL)
	args := []interp.Value{interp.IntVal(96), interp.RealVal(0.5)}
	measure := func(eng interp.Engine) time.Duration {
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			if _, _, err := interp.Run(prog, interp.Config{Engine: eng, Seed: 7}, nbody.ForceFunc, args...); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	floor := 1.5
	if raceEnabled {
		floor = 0.7
	}
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		compiled := measure(interp.EngineCompiled)
		bc := measure(interp.EngineBytecode)
		ratio = float64(compiled) / float64(bc)
		t.Logf("attempt %d: compiled %v, bytecode %v, ratio %.2f (floor %.1f)", attempt+1, compiled, bc, ratio, floor)
		if ratio >= floor {
			return
		}
	}
	t.Errorf("bytecode VM only %.2f× faster than the compiled engine on the force workload (floor %.1f)", ratio, floor)
}

// TestKernelSpeedupFloor pins the point of the SPMD kernel path: on
// the vectorizable force workload, the batched struct-of-arrays strip
// execution must beat the bytecode VM's scalar interpretation of the
// same loop. The bytecode baseline runs the *unstripped* serial
// program (the VM's honest serial form — a stripped program on the
// plain VM would spawn a goroutine per lane); the kernel engine runs
// the strip-mined program, whose strips execute inline on the vector
// path. The honest ratio on an idle host is in BENCH_interp.json
// (acceptance bar ≥2×); the CI floor is 1.5×, relaxed under the race
// detector, whose per-access instrumentation falls heaviest on the
// slab sweeps. Best of 3 runs per engine, up to 3 attempts, value
// checked for bit-identity every run.
func TestKernelSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	serial := lang.MustParse(nbody.VecForcePSL)
	c, err := core.Compile(nbody.VecForcePSL)
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.StripMine(nbody.VecForceFunc, nbody.VecForceLoop, 64)
	if err != nil {
		t.Fatal(err)
	}
	args := []interp.Value{interp.IntVal(256), interp.IntVal(160), interp.RealVal(0.5)}
	var want string
	measure := func(prog *lang.Program, eng interp.Engine) time.Duration {
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			v, _, err := interp.Run(prog, interp.Config{Engine: eng, Seed: 7}, nbody.VecForceFunc, args...)
			if err != nil {
				t.Fatal(err)
			}
			d := time.Since(t0)
			if want == "" {
				want = v.String()
			} else if v.String() != want {
				t.Fatalf("engine %s returned %s, want %s", eng, v, want)
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	floor := 1.5
	if raceEnabled {
		floor = 0.7
	}
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		bc := measure(serial, interp.EngineBytecode)
		kern := measure(par.Program, interp.EngineKernel)
		ratio = float64(bc) / float64(kern)
		t.Logf("attempt %d: bytecode %v, kernel %v, ratio %.2f (floor %.1f)", attempt+1, bc, kern, ratio, floor)
		if ratio >= floor {
			return
		}
	}
	t.Errorf("kernel path only %.2f× faster than the bytecode VM on the vector force workload (floor %.1f)", ratio, floor)
}
