// Engine equivalence: the differential suite behind the "two engines,
// one oracle" contract (DESIGN.md). The tree-walking interpreter is
// the semantic reference; the compiled engine is the fast path that
// R1/R2/R3 measure. This file pins them together: for every corpus
// program, under every execution mode — serial real, simulated with
// both static schedules and several PE counts, and goroutine-parallel
// under every scheduling policy at PEs {2, 4, 8} — results, printed
// output, and execution statistics (simulated cycle counts included)
// must be bit-identical. The parallel cells run both the hand-strip-
// mined program and the auto-parallelization planner's whole-program
// transformation (core.AutoParallel), so the planner's output carries
// the same armor as the hand-wired calls. CI runs this under -race,
// so the compiled engine's parallel frame handling is also exercised
// for data races.
package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/nbody"
	"repro/internal/parexec"
)

// eqProgram is one corpus entry: a program, the driver to execute,
// and (when a loop is provably parallel) the strip-mining target that
// produces the forall version for the parallel cells.
type eqProgram struct {
	name string
	src  string
	fn   string
	args []interp.Value
	seed uint64
	// stripFn/stripLoop select the loop for the parallel cells
	// (stripFn == "" keeps the program serial-only).
	stripFn   string
	stripLoop int
}

func equivalenceCorpus(t *testing.T) []eqProgram {
	t.Helper()
	read := func(name string) string {
		src, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		return string(src)
	}
	return []eqProgram{
		{name: "polyscale.psl", src: read("polyscale.psl"), fn: "main",
			stripFn: "scale", stripLoop: 0},
		{name: "violations.psl", src: read("violations.psl"), fn: "main"},
		{name: "orthlist.psl", src: read("orthlist.psl"), fn: "main",
			stripFn: "scale_row", stripLoop: 0},
		{name: "poly-normalize", src: parexec.PolyNormalizePSL, fn: "run",
			args:    []interp.Value{interp.IntVal(400), interp.RealVal(1.001)},
			stripFn: parexec.NormalizeFunc, stripLoop: parexec.NormalizeLoop},
		{name: "barnes-hut-force", src: nbody.BarnesHutForcePSL, fn: nbody.ForceFunc,
			args: []interp.Value{interp.IntVal(48), interp.RealVal(0.5)}, seed: 7,
			stripFn: nbody.ForceFunc, stripLoop: nbody.ForceLoop},
	}
}

// runEngine executes one configuration and returns value, stats, and
// captured output.
func runEngine(t *testing.T, prog *lang.Program, cfg interp.Config, fn string, args []interp.Value) (interp.Value, interp.Stats, string) {
	t.Helper()
	var out bytes.Buffer
	cfg.Output = &out
	v, st, err := interp.Run(prog, cfg, fn, args...)
	if err != nil {
		t.Fatalf("%s [engine %s]: %v", fn, cfg.Engine, err)
	}
	return v, st, out.String()
}

// TestEngineEquivalence is the corpus × engines × modes grid.
func TestEngineEquivalence(t *testing.T) {
	for _, p := range equivalenceCorpus(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			c, err := core.Compile(p.src)
			if err != nil {
				t.Fatal(err)
			}

			// Serial real mode: the reference cell.
			wv, wst, wout := runEngine(t, c.Program,
				interp.Config{Engine: interp.EngineWalk, Seed: p.seed}, p.fn, p.args)
			cv, cst, cout := runEngine(t, c.Program,
				interp.Config{Engine: interp.EngineCompiled, Seed: p.seed}, p.fn, p.args)
			if wv.String() != cv.String() || wout != cout || wst != cst {
				t.Fatalf("serial real divergence:\nwalk     %s %+v %q\ncompiled %s %+v %q",
					wv, wst, wout, cv, cst, cout)
			}

			// Simulated mode: cycle accounting must agree bit-for-bit,
			// across PE counts and both static schedules — for the
			// serial program, the hand-stripped one, and the planner's
			// whole-program transformation.
			programs := []*lang.Program{c.Program}
			if p.stripFn != "" {
				par, err := c.StripMine(p.stripFn, p.stripLoop, 8)
				if err != nil {
					t.Fatal(err)
				}
				programs = append(programs, par.Program)
			}
			auto, err := c.AutoParallel(8)
			if err != nil {
				t.Fatal(err)
			}
			if auto.Plan.Parallelized > 0 {
				programs = append(programs, auto.Program)
			}
			for pi, prog := range programs {
				for _, pes := range []int{1, 4} {
					for _, sched := range []interp.Scheduling{interp.Cyclic, interp.Block} {
						base := interp.Config{Mode: interp.Simulated, PEs: pes, Sched: sched, Seed: p.seed}
						wcfg, ccfg := base, base
						wcfg.Engine = interp.EngineWalk
						ccfg.Engine = interp.EngineCompiled
						wv, wst, wout := runEngine(t, prog, wcfg, p.fn, p.args)
						cv, cst, cout := runEngine(t, prog, ccfg, p.fn, p.args)
						if wv.String() != cv.String() || wout != cout || wst != cst {
							t.Fatalf("simulated divergence (stripped=%v pes=%d sched=%d):\nwalk     %s %+v\ncompiled %s %+v",
								pi == 1, pes, sched, wv, wst, cv, cst)
						}
					}
				}
			}

			// Goroutine-parallel mode: every scheduling policy × PEs
			// {2,4,8} × both engines must reproduce the serial walk
			// reference (value, output, and the shared counters) — for
			// the hand-stripped program and the auto-planned one.
			variants := map[string]*lang.Program{}
			if p.stripFn != "" {
				par, err := c.StripMine(p.stripFn, p.stripLoop, 8)
				if err != nil {
					t.Fatal(err)
				}
				variants["hand"] = par.Program
			}
			if auto.Plan.Parallelized > 0 {
				variants["auto"] = auto.Program
			}
			for vname, prog := range variants {
				for _, pol := range []parexec.Policy{parexec.StaticBlock, parexec.StaticCyclic, parexec.Dynamic(2)} {
					for _, pes := range []int{2, 4, 8} {
						stats := map[interp.Engine]interp.Stats{}
						for _, eng := range []interp.Engine{interp.EngineWalk, interp.EngineCompiled} {
							var out bytes.Buffer
							v, st, err := parexec.Run(prog, parexec.Options{
								Interp: eng, PEs: pes, Sched: pol, Seed: p.seed, Output: &out,
							}, p.fn, p.args...)
							if err != nil {
								t.Fatalf("%s/%s/%s pes=%d engine=%s: %v", p.name, vname, pol.Name(), pes, eng, err)
							}
							// Value and output reproduce the serial run of
							// the *untransformed* program bit-for-bit.
							if v.String() != wv.String() {
								t.Errorf("%s/%s/%s pes=%d engine=%s: value %s != serial %s",
									p.name, vname, pol.Name(), pes, eng, v, wv)
							}
							if out.String() != wout {
								t.Errorf("%s/%s/%s pes=%d engine=%s: output diverged from serial run",
									p.name, vname, pol.Name(), pes, eng)
							}
							stats[eng] = st
						}
						// The strip-mined program executes more statements
						// than the original (forall machinery), so counters
						// are compared engine-vs-engine per cell.
						if stats[interp.EngineWalk] != stats[interp.EngineCompiled] {
							t.Errorf("%s/%s/%s pes=%d: stats diverged: walk %+v, compiled %+v",
								p.name, vname, pol.Name(), pes, stats[interp.EngineWalk], stats[interp.EngineCompiled])
						}
					}
				}
			}
		})
	}
}

// TestCompiledSpeedupFloor pins the point of the compiled engine: the
// R2 force workload, run serially, must be several times faster than
// the tree-walker. The floor is loose (the honest ratio on an idle
// host is ~5-6×, see BENCH_interp.json and `cmd/experiments -real`'s
// R3 table) so scheduler noise cannot flake CI; under the race
// detector, whose instrumentation compresses the gap, it is looser
// still. Best of 3 runs per engine, up to 3 attempts.
func TestCompiledSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	prog := lang.MustParse(nbody.BarnesHutForcePSL)
	args := []interp.Value{interp.IntVal(96), interp.RealVal(0.5)}
	measure := func(eng interp.Engine) time.Duration {
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			if _, _, err := interp.Run(prog, interp.Config{Engine: eng, Seed: 7}, nbody.ForceFunc, args...); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	floor := 3.0
	if raceEnabled {
		floor = 1.5
	}
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		walk := measure(interp.EngineWalk)
		compiled := measure(interp.EngineCompiled)
		ratio = float64(walk) / float64(compiled)
		t.Logf("attempt %d: walk %v, compiled %v, ratio %.2f (floor %.1f)", attempt+1, walk, compiled, ratio, floor)
		if ratio >= floor {
			return
		}
	}
	t.Errorf("compiled engine only %.2f× faster than the walker on the force workload (floor %.1f)", ratio, floor)
}
