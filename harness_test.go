// Integration harness: end-to-end checks that the repository reproduces
// the paper's qualitative results (the "shape" of every experiment).
// cmd/experiments regenerates the full-scale artifacts; these tests run
// the same pipelines at CI-friendly scale.
package repro

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/nbody"
	"repro/internal/sequent"
)

// TestHarnessT1T2Shape asserts the §4.4 table shape: parallel beats
// sequential, par(7) beats par(4), nothing is linear, and speedup grows
// with N.
func TestHarnessT1T2Shape(t *testing.T) {
	cfg := sequent.DefaultTableConfig()
	cfg.Ns = []int{32, 96}
	cfg.MeasureSteps = 1
	table, err := sequent.BarnesHutTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range table.Rows {
		if !(r.Seq > r.Par[4] && r.Par[4] > r.Par[7]) {
			t.Errorf("N=%d: times not ordered: seq=%.0f par4=%.0f par7=%.0f",
				r.N, r.Seq, r.Par[4], r.Par[7])
		}
		if r.Speedup[4] >= 4 || r.Speedup[7] >= 7 {
			t.Errorf("N=%d: superlinear speedup: %v", r.N, r.Speedup)
		}
	}
	if table.Rows[1].Speedup[7] <= table.Rows[0].Speedup[7] {
		t.Errorf("par(7) speedup should grow with N: %.2f then %.2f",
			table.Rows[0].Speedup[7], table.Rows[1].Speedup[7])
	}
}

// TestHarnessPipeline runs the complete §4.3 story through the public
// API: validate, prove, transform, execute, compare.
func TestHarnessPipeline(t *testing.T) {
	c, err := core.Compile(nbody.BarnesHutPSL)
	if err != nil {
		t.Fatal(err)
	}

	// §4.3.2 validation: every tree-building routine exits valid.
	for _, fn := range []string{"expand_box", "insert_particle", "build_tree", "timestep"} {
		keys, err := c.ExitViolations(fn)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 0 {
			t.Errorf("%s: %v", fn, keys)
		}
	}

	// §4.3.2 alias analysis: BHL1 and BHL2 parallelize.
	reps, err := c.LoopReports(nbody.TimestepFunc)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || !reps[0].Parallelizable || !reps[1].Parallelizable {
		t.Fatalf("BHL reports: %v", reps)
	}

	// §4.3.3 transformation + execution equivalence.
	p1, err := c.StripMine(nbody.TimestepFunc, nbody.BHL1, 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p1.StripMine(nbody.TimestepFunc, nbody.BHL2, 4)
	if err != nil {
		t.Fatal(err)
	}
	args := []interp.Value{
		interp.IntVal(24), interp.IntVal(2), interp.RealVal(0.5), interp.RealVal(0.01),
	}
	seqV, _, err := c.Run(core.RunConfig{Seed: 7}, "simulate", args...)
	if err != nil {
		t.Fatal(err)
	}
	parV, _, err := p2.Run(core.RunConfig{Seed: 7}, "simulate", args...)
	if err != nil {
		t.Fatal(err)
	}
	seqPos, err := interp.FieldReal(seqV, "posx")
	if err != nil {
		t.Fatal(err)
	}
	parPos, err := interp.FieldReal(parV, "posx")
	if err != nil {
		t.Fatal(err)
	}
	if seqPos != parPos {
		t.Errorf("first particle diverged: %g vs %g", seqPos, parPos)
	}

	// The transformed source carries the paper's structure.
	src := p2.Source()
	for _, want := range []string{"forall", "_timestep_L0_iteration", "_timestep_L1_iteration"} {
		if !strings.Contains(src, want) {
			t.Errorf("transformed source lacks %q", want)
		}
	}
}

// TestHarnessX1Pattern asserts the precision-comparison pattern: only
// ADDS+GPM parallelizes the parallelizable loops, and nobody
// parallelizes the mutating or unannotated ones.
func TestHarnessX1Pattern(t *testing.T) {
	c, err := core.Compile(nbody.BarnesHutPSL)
	if err != nil {
		t.Fatal(err)
	}
	for loop, wantADDS := range map[int]bool{nbody.BHL1: true, nbody.BHL2: true} {
		v, err := c.CompareBaselines(nbody.TimestepFunc, loop)
		if err != nil {
			t.Fatal(err)
		}
		if v.Conservative || v.KLimited {
			t.Errorf("loop %d: baselines must reject: %s", loop, v)
		}
		if v.ADDS != wantADDS {
			t.Errorf("loop %d: ADDS verdict %v", loop, v.ADDS)
		}
	}
	v, err := c.CompareBaselines("build_tree", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.ADDS {
		t.Error("build loop must be rejected by everyone")
	}
}

// TestHarnessX2SyncSensitivity asserts the ablation direction: cheaper
// synchronization raises the speedup.
func TestHarnessX2SyncSensitivity(t *testing.T) {
	base := sequent.DefaultTableConfig()
	base.Ns = []int{48}
	base.MeasureSteps = 1
	base.CalibrateSeconds = 0

	slow, err := sequent.BarnesHutTable(base)
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	costs := interp.DefaultCosts()
	costs.Barrier = 50
	fast.Costs = costs
	fastT, err := sequent.BarnesHutTable(fast)
	if err != nil {
		t.Fatal(err)
	}
	if fastT.Rows[0].Speedup[7] <= slow.Rows[0].Speedup[7] {
		t.Errorf("cheap sync should raise speedup: slow %.2f, fast %.2f",
			slow.Rows[0].Speedup[7], fastT.Rows[0].Speedup[7])
	}
}

// TestHarnessNativeAgreement cross-checks the native Go Barnes-Hut
// against the interpreted PSL version at small N: both use the same
// generator, algorithm, and schedule, so trajectories must agree to
// floating-point noise.
func TestHarnessNativeAgreement(t *testing.T) {
	const n, steps = 16, 2
	// Native.
	s := nbody.NewUniform(n, 7, 0.5, 0.01)
	s.Run("seq", steps, 0)

	// Interpreted.
	c, err := core.Compile(nbody.BarnesHutPSL)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := c.Run(core.RunConfig{Seed: 7}, "simulate",
		interp.IntVal(n), interp.IntVal(steps), interp.RealVal(0.5), interp.RealVal(0.01))
	if err != nil {
		t.Fatal(err)
	}
	node := v.N
	i := 0
	for node != nil {
		x := node.Data["posx"].AsReal()
		if diff := x - s.Bodies[i].Pos.X; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("particle %d: native %g vs interpreted %g", i, s.Bodies[i].Pos.X, x)
		}
		node = node.Ptrs["next"][0]
		i++
	}
	if i != n {
		t.Fatalf("interpreted list has %d particles", i)
	}
}
