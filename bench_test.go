// Benchmarks regenerating (at bench-friendly scale) every table and
// figure in the paper's evaluation. The experiment IDs follow
// DESIGN.md's index; full-scale regeneration is cmd/experiments.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/adds"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/nbody"
	"repro/internal/parexec"
	"repro/internal/sequent"
	"repro/internal/structures/bignum"
	"repro/internal/structures/list"
	"repro/internal/structures/orthlist"
	"repro/internal/structures/poly"
	"repro/internal/structures/rangetree"
	"repro/internal/transform"
)

// ---------------------------------------------------------------------------
// T1/T2 — the §4.4 tables (simulated Sequent), reduced N for bench time.

func benchTable(b *testing.B, pes int) {
	cfg := sequent.DefaultTableConfig()
	cfg.Ns = []int{64}
	cfg.PEs = []int{pes}
	cfg.MeasureSteps = 1
	cfg.CalibrateSeconds = 0
	b.ResetTimer()
	var lastSpeedup float64
	for i := 0; i < b.N; i++ {
		t, err := sequent.BarnesHutTable(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lastSpeedup = t.Rows[0].Speedup[pes]
	}
	b.ReportMetric(lastSpeedup, "speedup")
}

// BenchmarkTable1TimesPar4 regenerates a T1 cell (seq + par(4)).
func BenchmarkTable1TimesPar4(b *testing.B) { benchTable(b, 4) }

// BenchmarkTable2SpeedupsPar7 regenerates a T2 cell (seq + par(7)).
func BenchmarkTable2SpeedupsPar7(b *testing.B) { benchTable(b, 7) }

// Native Barnes-Hut: the real-hardware counterpart of T1.

func benchNative(b *testing.B, driver string, pes int) {
	s := nbody.NewUniform(512, 7, 0.5, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run(driver, 1, pes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeBHSequential(b *testing.B) { benchNative(b, "seq", 0) }
func BenchmarkNativeBHParallel4(b *testing.B)  { benchNative(b, "par", 4) }
func BenchmarkNativeBHParallel7(b *testing.B)  { benchNative(b, "par", 7) }
func BenchmarkNativeBHPool4(b *testing.B)      { benchNative(b, "pool", 4) }
func BenchmarkNativeBHDirectN2(b *testing.B)   { benchNative(b, "direct", 0) }
func BenchmarkNativeBHPlummerSeq(b *testing.B) {
	s := nbody.NewPlummer(512, 7, 0.5, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run("seq", 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// R1 — real goroutine-backed execution: the measured counterpart of
// T1/T2, interpreting the strip-mined §3.3.2 workload on the parexec
// worker pool instead of the simulated Sequent.

func BenchmarkR1RealPolySerial(b *testing.B) {
	c, err := core.Compile(parexec.PolyNormalizePSL)
	if err != nil {
		b.Fatal(err)
	}
	args := []interp.Value{interp.IntVal(512), interp.RealVal(1.001)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Run(core.RunConfig{}, "run", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRealPoly(b *testing.B, pes int) {
	c, err := core.Compile(parexec.PolyNormalizePSL)
	if err != nil {
		b.Fatal(err)
	}
	par, err := c.StripMine(parexec.NormalizeFunc, parexec.NormalizeLoop, pes)
	if err != nil {
		b.Fatal(err)
	}
	args := []interp.Value{interp.IntVal(512), interp.RealVal(1.001)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := par.RunParallel(core.RunConfig{}, pes, "run", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkR1RealPolyParallel2(b *testing.B) { benchRealPoly(b, 2) }
func BenchmarkR1RealPolyParallel4(b *testing.B) { benchRealPoly(b, 4) }
func BenchmarkR1RealPolyParallel8(b *testing.B) { benchRealPoly(b, 8) }

// ---------------------------------------------------------------------------
// R2 — the Barnes-Hut force loop on the parexec pool, one benchmark per
// scheduling policy (the measured counterpart of the X2 ablation; full
// scale is `go run ./cmd/experiments -real`).

func BenchmarkR2ForceSerial(b *testing.B) {
	c, err := core.Compile(nbody.BarnesHutForcePSL)
	if err != nil {
		b.Fatal(err)
	}
	args := []interp.Value{interp.IntVal(64), interp.RealVal(0.5)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Run(core.RunConfig{Seed: 7}, nbody.ForceFunc, args...); err != nil {
			b.Fatal(err)
		}
	}
}

func benchR2Force(b *testing.B, pol parexec.Policy, pes int) {
	c, err := core.Compile(nbody.BarnesHutForcePSL)
	if err != nil {
		b.Fatal(err)
	}
	par, err := c.StripMine(nbody.ForceFunc, nbody.ForceLoop, 4*pes)
	if err != nil {
		b.Fatal(err)
	}
	args := []interp.Value{interp.IntVal(64), interp.RealVal(0.5)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := par.RunParallel(core.RunConfig{Seed: 7, Sched: pol}, pes, nbody.ForceFunc, args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkR2ForceBlock4(b *testing.B)   { benchR2Force(b, parexec.StaticBlock, 4) }
func BenchmarkR2ForceCyclic4(b *testing.B)  { benchR2Force(b, parexec.StaticCyclic, 4) }
func BenchmarkR2ForceDynamic4(b *testing.B) { benchR2Force(b, parexec.Dynamic(1), 4) }
func BenchmarkR2ForceDynamic8(b *testing.B) { benchR2Force(b, parexec.Dynamic(2), 8) }

// ---------------------------------------------------------------------------
// R3 — the execution-engine comparison: the same workloads under the
// tree-walking oracle (interp.EngineWalk) and the slot-resolved
// compiled engine (interp.EngineCompiled, the default). These are the
// CI guards behind the R3 table (`cmd/experiments -real`) and the
// checked-in BENCH_interp.json trajectory; TestCompiledSpeedupFloor
// asserts the serial force-workload ratio.

func benchR3Serial(b *testing.B, eng interp.Engine, src, fn string, seed uint64, args ...interp.Value) {
	c, err := core.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Run(core.RunConfig{Seed: seed, Engine: eng}, fn, args...); err != nil {
			b.Fatal(err)
		}
	}
}

func r3PolyArgs() (string, string, uint64, []interp.Value) {
	return parexec.PolyNormalizePSL, "run", 0,
		[]interp.Value{interp.IntVal(512), interp.RealVal(1.001)}
}

func r3ForceArgs() (string, string, uint64, []interp.Value) {
	return nbody.BarnesHutForcePSL, nbody.ForceFunc, 7,
		[]interp.Value{interp.IntVal(64), interp.RealVal(0.5)}
}

func BenchmarkR3WalkPolySerial(b *testing.B) {
	src, fn, seed, args := r3PolyArgs()
	benchR3Serial(b, interp.EngineWalk, src, fn, seed, args...)
}

func BenchmarkR3CompiledPolySerial(b *testing.B) {
	src, fn, seed, args := r3PolyArgs()
	benchR3Serial(b, interp.EngineCompiled, src, fn, seed, args...)
}

func BenchmarkR3WalkForceSerial(b *testing.B) {
	src, fn, seed, args := r3ForceArgs()
	benchR3Serial(b, interp.EngineWalk, src, fn, seed, args...)
}

func BenchmarkR3CompiledForceSerial(b *testing.B) {
	src, fn, seed, args := r3ForceArgs()
	benchR3Serial(b, interp.EngineCompiled, src, fn, seed, args...)
}

func benchR3ForceParallel(b *testing.B, eng interp.Engine) {
	src, fn, seed, args := r3ForceArgs()
	c, err := core.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	par, err := c.StripMine(fn, nbody.ForceLoop, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := par.RunParallel(core.RunConfig{Seed: seed, Engine: eng, Sched: parexec.StaticCyclic},
			4, fn, args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkR3WalkForceParallel4(b *testing.B)     { benchR3ForceParallel(b, interp.EngineWalk) }
func BenchmarkR3CompiledForceParallel4(b *testing.B) { benchR3ForceParallel(b, interp.EngineCompiled) }

// ---------------------------------------------------------------------------
// R6 — the flat bytecode VM (interp.EngineBytecode) on the same R3
// workloads: the third engine's rows in BENCH_interp.json.
// TestBytecodeSpeedupFloor asserts the serial force-workload ratio
// over the closure engine; allocs/op is reported because the VM's
// selling point is an allocation-free hot loop over typed register
// banks (TestR6BytecodeSerialAllocs pins that).

func BenchmarkR6BytecodePolySerial(b *testing.B) {
	b.ReportAllocs()
	src, fn, seed, args := r3PolyArgs()
	benchR3Serial(b, interp.EngineBytecode, src, fn, seed, args...)
}

func BenchmarkR6BytecodeForceSerial(b *testing.B) {
	b.ReportAllocs()
	src, fn, seed, args := r3ForceArgs()
	benchR3Serial(b, interp.EngineBytecode, src, fn, seed, args...)
}

func BenchmarkR6BytecodeForceParallel4(b *testing.B) {
	b.ReportAllocs()
	benchR3ForceParallel(b, interp.EngineBytecode)
}

// ---------------------------------------------------------------------------
// R8 — the SPMD kernel path (interp.EngineKernel) on the vectorizable
// force workload (nbody.VecForcePSL): the kernel rows in
// BENCH_interp.json. The bytecode baseline runs the unstripped serial
// program (the VM's honest serial form); the kernel engine runs the
// strip-mined program, whose strips execute inline on the vector path
// — the same pairing TestKernelSpeedupFloor gates.

func benchR8VecForce(b *testing.B, c *core.Compilation, eng interp.Engine) {
	b.ReportAllocs()
	args := []interp.Value{interp.IntVal(256), interp.IntVal(160), interp.RealVal(0.5)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Run(core.RunConfig{Seed: 7, Engine: eng}, nbody.VecForceFunc, args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkR8BytecodeVecForceSerial(b *testing.B) {
	c, err := core.Compile(nbody.VecForcePSL)
	if err != nil {
		b.Fatal(err)
	}
	benchR8VecForce(b, c, interp.EngineBytecode)
}

func BenchmarkR8KernelVecForceSerial(b *testing.B) {
	c, err := core.Compile(nbody.VecForcePSL)
	if err != nil {
		b.Fatal(err)
	}
	par, err := c.StripMine(nbody.VecForceFunc, nbody.VecForceLoop, 64)
	if err != nil {
		b.Fatal(err)
	}
	benchR8VecForce(b, par, interp.EngineKernel)
}

// TestR6BytecodeSerialAllocs pins the VM's allocation discipline: a
// hot serial run (arithmetic, comparisons, calls — no `new`, no
// print) must allocate only a small constant number of objects per
// Call (argument boxing; frames and register banks come from the
// pool after the warm-up run), independent of iteration count.
func TestR6BytecodeSerialAllocs(t *testing.T) {
	prog := lang.MustParse(`
function real inner(real x, int e) {
  var real v = 1.0;
  var int i = 0;
  while i < e {
    v = v * x;
    i = i + 1;
  }
  return v;
}
function real hot(int n) {
  var real s = 0.0;
  for k = 1 to n {
    s = s + inner(1.0001, 50) + sqrt(abs(s)) * 0.5;
    if s > 1000000.0 { s = s / 2.0; }
  }
  return s;
}`)
	ip := interp.New(prog, interp.Config{Engine: interp.EngineBytecode})
	args := []interp.Value{interp.IntVal(2000)}
	if _, err := ip.Call("hot", args...); err != nil { // warm the frame pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ip.Call("hot", args...); err != nil {
			t.Fatal(err)
		}
	})
	// 2000 outer iterations × (a user call + builtins) execute with
	// zero per-iteration allocations; the per-Call budget covers only
	// entry-side boxing.
	if allocs > 8 {
		t.Errorf("bytecode serial run allocates %.0f objects/run, want ≤ 8 (hot loop must not allocate)", allocs)
	}
}

// ---------------------------------------------------------------------------
// F1 — validation distinguishing the Figure 1 shapes.

func BenchmarkFig1ValidationVerdict(b *testing.B) {
	src := adds.OneWayListSrc + `
procedure close(OneWayList *a, OneWayList *x) {
  a->next = x;
  x->next = a;
}`
	prog := lang.MustParse(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := analysis.Analyze(prog, "close")
		if err != nil {
			b.Fatal(err)
		}
		if fr.Exit.Valid("OneWayList", "X") {
			b.Fatal("violation lost")
		}
	}
}

// F2 — one-way list traversal (scale loop), sequential vs strip-mined.

func BenchmarkFig2ListScaleSequential(b *testing.B) {
	p := poly.New()
	for i := 0; i < 4096; i++ {
		p = p.Add(poly.New(poly.Term{Coef: int64(i + 1), Exp: i}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Scale(3)
	}
}

func BenchmarkFig2ListScaleParallel4(b *testing.B) {
	p := poly.New()
	for i := 0; i < 4096; i++ {
		p = p.Add(poly.New(poly.Term{Coef: int64(i + 1), Exp: i}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ScaleParallel(4, 3)
	}
}

func BenchmarkFig2Bignum100Factorial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if bignum.Factorial(100).Limbs() == 0 {
			b.Fatal("empty")
		}
	}
}

// F3 — orthogonal-list sparse matrix operations.

func makeSparse(n int) *orthlist.Matrix {
	m := orthlist.New(n, n)
	r := rand.New(rand.NewSource(4))
	for k := 0; k < n*8; k++ {
		m.Set(r.Intn(n), r.Intn(n), r.Float64()+0.1)
	}
	return m
}

func BenchmarkFig3SparseMulVec(b *testing.B) {
	m := makeSparse(256)
	x := make([]float64, 256)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x)
	}
}

func BenchmarkFig3SparseTranspose(b *testing.B) {
	m := makeSparse(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transpose()
	}
}

func BenchmarkFig3SparseRowScaleParallel(b *testing.B) {
	m := makeSparse(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScaleRowsParallel(4, func(int) float64 { return 1.0 })
	}
}

// F4 — range-tree construction and queries.

func BenchmarkFig4RangeTreeBuild(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	pts := make([]rangetree.Point, 2048)
	for i := range pts {
		pts[i] = rangetree.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000, ID: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rangetree.Build(pts)
	}
}

func BenchmarkFig4RangeTreeRectQuery(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	pts := make([]rangetree.Point, 2048)
	for i := range pts {
		pts[i] = rangetree.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000, ID: i}
	}
	t := rangetree.Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.QueryRect(100, 100, 300, 300)
	}
}

// F5 — octree construction (the Barnes-Hut build).

func BenchmarkFig5OctreeBuild(b *testing.B) {
	s := nbody.NewUniform(1024, 7, 0.5, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BuildTree()
	}
}

// ---------------------------------------------------------------------------
// PM1/PM2 — analysis speed on the paper's two programs.

func BenchmarkPM1PolyLoopAnalysis(b *testing.B) {
	prog := lang.MustParse(adds.OneWayListSrc + `
procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->data = p->data * c;
    p = p->next;
  }
}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Analyze(prog, "scale"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPM2BarnesHutAnalysis(b *testing.B) {
	prog := lang.MustParse(nbody.BarnesHutPSL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.New(prog).AnalyzeAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPM2StripMineBothLoops(b *testing.B) {
	prog := lang.MustParse(nbody.BarnesHutPSL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, err := transform.StripMine(prog, nbody.TimestepFunc, nbody.BHL1, 4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := transform.StripMine(r1.Program, nbody.TimestepFunc, nbody.BHL2, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// X1 — precision comparison run.

func BenchmarkXPrecisionComparison(b *testing.B) {
	c, err := core.Compile(nbody.BarnesHutPSL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := c.CompareBaselines(nbody.TimestepFunc, nbody.BHL1)
		if err != nil {
			b.Fatal(err)
		}
		if !v.ADDS || v.KLimited {
			b.Fatal("unexpected verdicts")
		}
	}
}

// X2 — scheduling/sync ablation cell.

func BenchmarkXAblationFastSync(b *testing.B) {
	cfg := sequent.DefaultTableConfig()
	cfg.Ns = []int{64}
	cfg.PEs = []int{4}
	cfg.MeasureSteps = 1
	cfg.CalibrateSeconds = 0
	costs := interp.DefaultCosts()
	costs.Barrier = 100
	cfg.Costs = costs
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		t, err := sequent.BarnesHutTable(cfg)
		if err != nil {
			b.Fatal(err)
		}
		speedup = t.Rows[0].Speedup[4]
	}
	b.ReportMetric(speedup, "speedup")
}

// ---------------------------------------------------------------------------
// Interpreter and front-end throughput.

func BenchmarkInterpBHL1Step(b *testing.B) {
	prog := lang.MustParse(nbody.BarnesHutPSL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := interp.New(prog, interp.Config{Seed: 7})
		if _, err := ip.Call("simulate", interp.IntVal(32), interp.IntVal(1),
			interp.RealVal(0.5), interp.RealVal(0.01)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseBarnesHut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lang.Parse(nbody.BarnesHutPSL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkListParallelEach(b *testing.B) {
	l := list.New[int]()
	for i := 0; i < 2048; i++ {
		l.Append(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.ParallelEach(4, func(n *list.Node[int]) { n.Data++ })
	}
}

// X3 — the theta accuracy/work sweep (one cell).
func BenchmarkXThetaSweepCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := nbody.ThetaSweep(256, 7, []float64{0.5})
		if rows[0].Interactions == 0 {
			b.Fatal("no work counted")
		}
	}
}
