//go:build !race

package repro

// raceEnabled reports whether the race detector instruments this test
// binary; timing floors relax under its overhead.
const raceEnabled = false
