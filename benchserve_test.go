// BENCH_serve.json is the checked-in serving-layer performance
// trajectory: closed-loop throughput, latency percentiles, and
// hot-phase cache-hit rate of the internal/serve service over the
// testdata corpus at concurrency 1, 8, and 64, plus an auto-parallel
// row (concurrency 8 with a 25% "auto": true mix, exercising the
// planner-transformed hot path) — the DESIGN.md R4/R5 rows — and a
// fleet row: the c64 load against a pslrouter front over three
// replicas (embedded mode), comparing the sharded topology against the
// single process.
// Like BENCH_interp.json, PRs that touch the serving or execution core
// re-emit the file and commit it, so cache-hit throughput — the
// service's headline metric — is visible in review diffs.
//
// Regenerate (takes a few seconds) with:
//
//	go test -run TestBenchServeJSON -write-bench-serve .
//
// The non-writing run only validates shape: the file exists, parses,
// has a row per expected concurrency, and records zero errors with a
// hot-phase hit rate ≥ 0.9. Absolute throughput is machine-dependent
// and never asserted.
package repro

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/serve"
)

var writeBenchServe = flag.Bool("write-bench-serve", false, "re-measure and rewrite BENCH_serve.json")

const benchServePath = "BENCH_serve.json"

// benchServeRows are the measured configurations: the concurrency
// sweep, the auto-parallel hot-phase row, and the fleet row — the
// same c64 load pointed at a pslrouter front over three backends
// instead of one process, the 1-vs-3 comparison ISSUE'd the router.
var benchServeRows = []struct {
	Concurrency int
	AutoRate    float64
	Backends    int // 0 = direct single process, N > 0 = router over N
}{{1, 0, 0}, {8, 0, 0}, {64, 0, 0}, {8, 0.25, 0}, {64, 0, 3}}

func benchRowKey(c int, autoRate float64, backends int) string {
	if backends > 0 {
		return fmt.Sprintf("c%d/auto%.2f/fleet%d", c, autoRate, backends)
	}
	return fmt.Sprintf("c%d/auto%.2f", c, autoRate)
}

// serveBenchFile is the BENCH_serve.json schema. GoMaxProcs and
// GoVersion ride along with cpus so trajectory rows measured on
// different boxes (or GOMAXPROCS caps, or toolchains) are comparable.
type serveBenchFile struct {
	GeneratedBy string             `json:"generated_by"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	CPUs        int                `json:"cpus"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	GoVersion   string             `json:"go_version"`
	Runs        []serve.LoadResult `json:"runs"`
}

func TestBenchServeJSON(t *testing.T) {
	if *writeBenchServe {
		writeServeJSON(t)
	}
	data, err := os.ReadFile(benchServePath)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test -run TestBenchServeJSON -write-bench-serve .`)", err)
	}
	var f serveBenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("%s does not parse: %v", benchServePath, err)
	}
	seen := map[string]bool{}
	for _, r := range f.Runs {
		seen[benchRowKey(r.Concurrency, r.AutoRate, r.Backends)] = true
		if r.Requests <= 0 || r.RPS <= 0 {
			t.Errorf("concurrency %d: non-positive throughput (%d req, %.1f rps)",
				r.Concurrency, r.Requests, r.RPS)
		}
		if r.Errors != 0 {
			t.Errorf("concurrency %d: %d recorded errors", r.Concurrency, r.Errors)
		}
		if r.HotHitRate < 0.9 {
			t.Errorf("concurrency %d: hot-phase hit rate %.3f below 0.9", r.Concurrency, r.HotHitRate)
		}
		if r.AutoRate > 0 && r.AutoRequests == 0 {
			t.Errorf("auto row (concurrency %d) recorded no auto requests", r.Concurrency)
		}
	}
	for _, row := range benchServeRows {
		if !seen[benchRowKey(row.Concurrency, row.AutoRate, row.Backends)] {
			t.Errorf("%s missing the concurrency-%d auto-rate-%.2f backends-%d run (regenerate with -write-bench-serve)",
				benchServePath, row.Concurrency, row.AutoRate, row.Backends)
		}
	}
	if f.GoMaxProcs <= 0 {
		t.Errorf("recorded gomaxprocs %d should be positive (regenerate with -write-bench-serve)", f.GoMaxProcs)
	}
	if f.GoVersion == "" {
		t.Error("recorded go_version is empty (regenerate with -write-bench-serve)")
	}
}

func writeServeJSON(t *testing.T) {
	t.Helper()
	corpus, err := serve.LoadCorpus("testdata")
	if err != nil {
		t.Fatal(err)
	}
	f := serveBenchFile{
		GeneratedBy: "go test -run TestBenchServeJSON -write-bench-serve .",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}
	for _, row := range benchServeRows {
		// A fresh topology per run: every row starts cold, so ColdMeanUS
		// is a true first-touch measurement and the hit counters are
		// the row's own.
		url, client, teardown := startBenchTopology(t, row.Backends)
		res, err := serve.RunLoad(context.Background(), serve.LoadConfig{
			URL:           url,
			Corpus:        corpus,
			Concurrency:   row.Concurrency,
			Duration:      800 * time.Millisecond,
			ColdRatio:     0.02,
			AutoRate:      row.AutoRate,
			Seed:          1,
			FleetBackends: row.Backends,
			Client:        client,
		})
		teardown()
		if err != nil {
			t.Fatalf("concurrency %d: %v", row.Concurrency, err)
		}
		f.Runs = append(f.Runs, *res)
		t.Logf("concurrency %d (auto %.0f%%, backends %d): %.0f rps, hit rate %.3f, p50 %dµs p99 %dµs (cold %dµs)",
			row.Concurrency, 100*row.AutoRate, row.Backends, res.RPS, res.HotHitRate, res.P50US, res.P99US, res.ColdMeanUS)
	}
	if err := assertFleetBeatsSingle(f.Runs); err != nil {
		t.Error(err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchServePath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", benchServePath)
}

// startBenchTopology builds the service a bench row loads: the
// single-process server for backends == 0, or a pslrouter front over
// that many identically-sized pslserved replicas.
func startBenchTopology(t *testing.T, backends int) (url string, client *http.Client, teardown func()) {
	t.Helper()
	cfg := serve.Config{Workers: 8, QueueDepth: 128}
	if backends == 0 {
		s := serve.New(cfg)
		ts := httptest.NewServer(s.Handler())
		return ts.URL, ts.Client(), func() { ts.Close(); s.Close() }
	}
	// The fleet row is measured in the router's embedded mode: the same
	// consistent-hash sharding over N replicas, one network hop — the
	// single-machine fleet, which is the comparable topology on the
	// one-box bench (a networked fleet's extra hop measures the network,
	// not the sharding).
	replicas := make([]*serve.Server, backends)
	for i := range replicas {
		replicas[i] = serve.New(cfg)
	}
	r, err := serve.NewRouter(serve.RouterConfig{Embedded: replicas})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(r.Handler())
	teardown = func() {
		rts.Close()
		r.Close()
		for _, s := range replicas {
			s.Close()
		}
	}
	return rts.URL, rts.Client(), teardown
}

// assertFleetBeatsSingle checks the point of the fleet at regeneration
// time: with cores to scale onto, a router-fronted fleet must
// out-serve the direct row at the same concurrency and auto rate — a
// regeneration that loses that relationship fails loudly instead of
// committing a regression. On a single-CPU box horizontal scale-out
// has nothing to scale onto, so the gate becomes a bounded-overhead
// one instead: the routed fleet must stay within 25% of the direct
// row, i.e. the router layer itself is near-free. Absolute numbers
// remain machine-dependent and are never asserted.
func assertFleetBeatsSingle(runs []serve.LoadResult) error {
	direct := map[string]float64{}
	for _, r := range runs {
		if r.Backends == 0 {
			direct[benchRowKey(r.Concurrency, r.AutoRate, 0)] = r.RPS
		}
	}
	for _, r := range runs {
		if r.Backends == 0 {
			continue
		}
		base, ok := direct[benchRowKey(r.Concurrency, r.AutoRate, 0)]
		if !ok {
			continue
		}
		if runtime.NumCPU() > 1 && r.RPS <= base {
			return fmt.Errorf("fleet row (c%d, %d backends) measured %.0f rps, below the single-process %.0f on a %d-CPU machine",
				r.Concurrency, r.Backends, r.RPS, base, runtime.NumCPU())
		}
		if r.RPS < 0.75*base {
			return fmt.Errorf("fleet row (c%d, %d backends) measured %.0f rps against the single-process %.0f — router overhead above budget",
				r.Concurrency, r.Backends, r.RPS, base)
		}
	}
	return nil
}
