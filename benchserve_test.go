// BENCH_serve.json is the checked-in serving-layer performance
// trajectory: closed-loop throughput, latency percentiles, and
// hot-phase cache-hit rate of the internal/serve service over the
// testdata corpus at concurrency 1, 8, and 64, plus an auto-parallel
// row (concurrency 8 with a 25% "auto": true mix, exercising the
// planner-transformed hot path) — the DESIGN.md R4/R5 rows.
// Like BENCH_interp.json, PRs that touch the serving or execution core
// re-emit the file and commit it, so cache-hit throughput — the
// service's headline metric — is visible in review diffs.
//
// Regenerate (takes a few seconds) with:
//
//	go test -run TestBenchServeJSON -write-bench-serve .
//
// The non-writing run only validates shape: the file exists, parses,
// has a row per expected concurrency, and records zero errors with a
// hot-phase hit rate ≥ 0.9. Absolute throughput is machine-dependent
// and never asserted.
package repro

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/serve"
)

var writeBenchServe = flag.Bool("write-bench-serve", false, "re-measure and rewrite BENCH_serve.json")

const benchServePath = "BENCH_serve.json"

// benchServeRows are the measured configurations: the concurrency
// sweep plus the auto-parallel hot-phase row.
var benchServeRows = []struct {
	Concurrency int
	AutoRate    float64
}{{1, 0}, {8, 0}, {64, 0}, {8, 0.25}}

func benchRowKey(c int, autoRate float64) string {
	return fmt.Sprintf("c%d/auto%.2f", c, autoRate)
}

// serveBenchFile is the BENCH_serve.json schema.
type serveBenchFile struct {
	GeneratedBy string             `json:"generated_by"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	CPUs        int                `json:"cpus"`
	Runs        []serve.LoadResult `json:"runs"`
}

func TestBenchServeJSON(t *testing.T) {
	if *writeBenchServe {
		writeServeJSON(t)
	}
	data, err := os.ReadFile(benchServePath)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test -run TestBenchServeJSON -write-bench-serve .`)", err)
	}
	var f serveBenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("%s does not parse: %v", benchServePath, err)
	}
	seen := map[string]bool{}
	for _, r := range f.Runs {
		seen[benchRowKey(r.Concurrency, r.AutoRate)] = true
		if r.Requests <= 0 || r.RPS <= 0 {
			t.Errorf("concurrency %d: non-positive throughput (%d req, %.1f rps)",
				r.Concurrency, r.Requests, r.RPS)
		}
		if r.Errors != 0 {
			t.Errorf("concurrency %d: %d recorded errors", r.Concurrency, r.Errors)
		}
		if r.HotHitRate < 0.9 {
			t.Errorf("concurrency %d: hot-phase hit rate %.3f below 0.9", r.Concurrency, r.HotHitRate)
		}
		if r.AutoRate > 0 && r.AutoRequests == 0 {
			t.Errorf("auto row (concurrency %d) recorded no auto requests", r.Concurrency)
		}
	}
	for _, row := range benchServeRows {
		if !seen[benchRowKey(row.Concurrency, row.AutoRate)] {
			t.Errorf("%s missing the concurrency-%d auto-rate-%.2f run (regenerate with -write-bench-serve)",
				benchServePath, row.Concurrency, row.AutoRate)
		}
	}
}

func writeServeJSON(t *testing.T) {
	t.Helper()
	corpus, err := serve.LoadCorpus("testdata")
	if err != nil {
		t.Fatal(err)
	}
	f := serveBenchFile{
		GeneratedBy: "go test -run TestBenchServeJSON -write-bench-serve .",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
	}
	for _, row := range benchServeRows {
		// A fresh server per run: every row starts cold, so ColdMeanUS
		// is a true first-touch measurement and the hit counters are
		// the row's own.
		s := serve.New(serve.Config{Workers: 8, QueueDepth: 128})
		ts := httptest.NewServer(s.Handler())
		res, err := serve.RunLoad(context.Background(), serve.LoadConfig{
			URL:         ts.URL,
			Corpus:      corpus,
			Concurrency: row.Concurrency,
			Duration:    800 * time.Millisecond,
			ColdRatio:   0.02,
			AutoRate:    row.AutoRate,
			Seed:        1,
			Client:      ts.Client(),
		})
		ts.Close()
		s.Close()
		if err != nil {
			t.Fatalf("concurrency %d: %v", row.Concurrency, err)
		}
		f.Runs = append(f.Runs, *res)
		t.Logf("concurrency %d (auto %.0f%%): %.0f rps, hit rate %.3f, p50 %dµs p99 %dµs (cold %dµs)",
			row.Concurrency, 100*row.AutoRate, res.RPS, res.HotHitRate, res.P50US, res.P99US, res.ColdMeanUS)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchServePath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", benchServePath)
}
