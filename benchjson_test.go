// BENCH_interp.json is the checked-in interpreter performance
// trajectory: ns/op for the tree-walking oracle, the compiled closure
// engine, the flat bytecode VM, and the SPMD kernel path on the R1
// (polynomial), R2 (Barnes-Hut force), and R8 (vectorizable force)
// workloads, regenerated via testing.Benchmark from the same
// BenchmarkR3*/BenchmarkR6*/BenchmarkR8* configurations CI compiles.
// Future PRs that touch the execution core re-emit the file and
// commit it, so the walk/compiled/bytecode gaps — and any regression
// of either fast path — are visible in review diffs rather than lost
// to whoever happens to run the benchmarks.
//
// Regenerate (takes ~30 s) with:
//
//	go test -run TestBenchInterpJSON -write-bench .
//
// The non-writing run only validates shape: the file exists, parses,
// names every expected configuration, and reports positive timings.
// Absolute numbers are machine-dependent by nature and are never
// asserted.
package repro

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/interp"
)

var writeBench = flag.Bool("write-bench", false, "re-measure and rewrite BENCH_interp.json")

const benchJSONPath = "BENCH_interp.json"

// benchEntry is one measured configuration.
type benchEntry struct {
	Name        string  `json:"name"`
	Engine      string  `json:"engine"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"n"` // benchmark iterations behind the measurement
}

// benchFile is the BENCH_interp.json schema. GoMaxProcs and GoVersion
// ride along with cpus so trajectory rows measured on different boxes
// (or GOMAXPROCS caps, or toolchains) are comparable in review diffs.
type benchFile struct {
	GeneratedBy string       `json:"generated_by"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	CPUs        int          `json:"cpus"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	GoVersion   string       `json:"go_version"`
	Entries     []benchEntry `json:"benchmarks"`
	// SpeedupSerialForce is walk/compiled ns on the serial force
	// workload — the ratio TestCompiledSpeedupFloor guards.
	SpeedupSerialForce float64 `json:"speedup_serial_force"`
	// SpeedupSerialForceBytecode is compiled/bytecode ns on the same
	// workload — the ratio TestBytecodeSpeedupFloor guards.
	SpeedupSerialForceBytecode float64 `json:"speedup_serial_force_bytecode"`
	// SpeedupSerialForceKernel is bytecode/kernel ns on the serial
	// vectorizable force workload (R8: unstripped program on the plain
	// VM vs the strip-mined program on the kernel engine) — the ratio
	// TestKernelSpeedupFloor guards.
	SpeedupSerialForceKernel float64 `json:"speedup_serial_force_kernel"`
}

// benchConfigs maps trajectory entries to the BenchmarkR3* bodies.
var benchConfigs = []struct {
	name   string
	engine interp.Engine
	run    func(*testing.B)
}{
	{"R1-poly/serial", interp.EngineWalk, BenchmarkR3WalkPolySerial},
	{"R1-poly/serial", interp.EngineCompiled, BenchmarkR3CompiledPolySerial},
	{"R1-poly/serial", interp.EngineBytecode, BenchmarkR6BytecodePolySerial},
	{"R2-force/serial", interp.EngineWalk, BenchmarkR3WalkForceSerial},
	{"R2-force/serial", interp.EngineCompiled, BenchmarkR3CompiledForceSerial},
	{"R2-force/serial", interp.EngineBytecode, BenchmarkR6BytecodeForceSerial},
	{"R2-force/par4", interp.EngineWalk, BenchmarkR3WalkForceParallel4},
	{"R2-force/par4", interp.EngineCompiled, BenchmarkR3CompiledForceParallel4},
	{"R2-force/par4", interp.EngineBytecode, BenchmarkR6BytecodeForceParallel4},
	{"R8-vecforce/serial", interp.EngineBytecode, BenchmarkR8BytecodeVecForceSerial},
	{"R8-vecforce/serial", interp.EngineKernel, BenchmarkR8KernelVecForceSerial},
}

func TestBenchInterpJSON(t *testing.T) {
	if *writeBench {
		writeBenchJSON(t)
	}
	data, err := os.ReadFile(benchJSONPath)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test -run TestBenchInterpJSON -write-bench .`)", err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("%s does not parse: %v", benchJSONPath, err)
	}
	seen := map[string]bool{}
	for _, e := range f.Entries {
		if e.NsPerOp <= 0 {
			t.Errorf("%s %s: non-positive ns/op %v", e.Name, e.Engine, e.NsPerOp)
		}
		seen[e.Name+"/"+e.Engine] = true
	}
	for _, c := range benchConfigs {
		if key := c.name + "/" + c.engine.String(); !seen[key] {
			t.Errorf("%s missing entry %s (regenerate with -write-bench)", benchJSONPath, key)
		}
	}
	if f.SpeedupSerialForce <= 1 {
		t.Errorf("recorded serial-force speedup %.2f should exceed 1 (compiled faster than walk)",
			f.SpeedupSerialForce)
	}
	if f.SpeedupSerialForceBytecode <= 1 {
		t.Errorf("recorded serial-force bytecode speedup %.2f should exceed 1 (bytecode faster than compiled)",
			f.SpeedupSerialForceBytecode)
	}
	if f.SpeedupSerialForceKernel <= 1 {
		t.Errorf("recorded serial-force kernel speedup %.2f should exceed 1 (kernel faster than bytecode)",
			f.SpeedupSerialForceKernel)
	}
	if f.GoMaxProcs <= 0 {
		t.Errorf("recorded gomaxprocs %d should be positive (regenerate with -write-bench)", f.GoMaxProcs)
	}
	if f.GoVersion == "" {
		t.Error("recorded go_version is empty (regenerate with -write-bench)")
	}
}

func writeBenchJSON(t *testing.T) {
	t.Helper()
	f := benchFile{
		GeneratedBy: "go test -run TestBenchInterpJSON -write-bench .",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}
	var walkForce, compiledForce, bytecodeForce float64
	var bytecodeVec, kernelVec float64
	for _, c := range benchConfigs {
		r := testing.Benchmark(c.run)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		f.Entries = append(f.Entries, benchEntry{
			Name:        c.name,
			Engine:      c.engine.String(),
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			N:           r.N,
		})
		if c.name == "R2-force/serial" {
			switch c.engine {
			case interp.EngineWalk:
				walkForce = ns
			case interp.EngineCompiled:
				compiledForce = ns
			case interp.EngineBytecode:
				bytecodeForce = ns
			}
		}
		if c.name == "R8-vecforce/serial" {
			switch c.engine {
			case interp.EngineBytecode:
				bytecodeVec = ns
			case interp.EngineKernel:
				kernelVec = ns
			}
		}
		t.Logf("%s/%s: %.0f ns/op (N=%d)", c.name, c.engine, ns, r.N)
	}
	if compiledForce > 0 {
		f.SpeedupSerialForce = walkForce / compiledForce
	}
	if bytecodeForce > 0 {
		f.SpeedupSerialForceBytecode = compiledForce / bytecodeForce
	}
	if kernelVec > 0 {
		f.SpeedupSerialForceKernel = bytecodeVec / kernelVec
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchJSONPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s (serial force speedup %.2fx)\n", benchJSONPath, f.SpeedupSerialForce)
}
