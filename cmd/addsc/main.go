// Command addsc is the "ADDS compiler" driver: it parses a PSL source
// file, runs general path matrix analysis and abstraction validation,
// reports loop parallelizability, optionally applies the strip-mining
// transformation, and optionally runs the program.
//
// Usage:
//
//	addsc [flags] file.psl
//
//	-analyze fn        print exit violations and loop reports for fn
//	-matrix fn:stmt    print the path matrix after a statement,
//	                   e.g. -matrix "scale:p = p->next;"
//	-stripmine fn:L:P  strip-mine while-loop L of fn across P PEs and
//	                   print the transformed source
//	-run fn            interpret fn (no arguments) after all transforms
//	-shapecheck        validate ADDS shape promises at runtime (§2.2)
//	-sim               run on the simulated machine (with -pes)
//	-pes n             simulated PE count (default 4)
//	-seed n            deterministic rand() seed (default 7)
//	-compare fn:L      compare conservative/k-limited/ADDS verdicts
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
)

func main() {
	analyzeFn := flag.String("analyze", "", "function to analyze")
	matrixAt := flag.String("matrix", "", "fn:stmt — print matrix after stmt")
	stripmine := flag.String("stripmine", "", "fn:loop:pes — strip-mine a loop")
	runFn := flag.String("run", "", "function to interpret (niladic)")
	sim := flag.Bool("sim", false, "use the simulated Sequent machine")
	pes := flag.Int("pes", 4, "simulated PE count")
	seed := flag.Uint64("seed", 7, "rand() seed")
	shapecheck := flag.Bool("shapecheck", false, "validate ADDS shapes at runtime during -run")
	compare := flag.String("compare", "", "fn:loop — baseline comparison")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: addsc [flags] file.psl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	c, err := core.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("compiled %s: %d type(s), %d function(s)\n",
		flag.Arg(0), c.Program.Universe.Len(), len(c.Program.Funcs))

	if *analyzeFn != "" {
		keys, err := c.ExitViolations(*analyzeFn)
		if err != nil {
			fatal(err)
		}
		if len(keys) == 0 {
			fmt.Printf("%s: abstraction valid at exit\n", *analyzeFn)
		} else {
			fmt.Printf("%s: %d active violation(s) at exit:\n", *analyzeFn, len(keys))
			for _, k := range keys {
				fmt.Printf("  %s\n", k)
			}
		}
		reps, err := c.LoopReports(*analyzeFn)
		if err != nil {
			fatal(err)
		}
		for _, r := range reps {
			fmt.Println(r)
		}
	}

	if *matrixAt != "" {
		fn, stmt, ok := strings.Cut(*matrixAt, ":")
		if !ok {
			fatal(fmt.Errorf("-matrix wants fn:stmt"))
		}
		m, err := c.MatrixAfter(fn, stmt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("path matrix after %q in %s:\n%s", stmt, fn, m)
	}

	if *compare != "" {
		fn, loopStr, ok := strings.Cut(*compare, ":")
		if !ok {
			fatal(fmt.Errorf("-compare wants fn:loop"))
		}
		loop, err := strconv.Atoi(loopStr)
		if err != nil {
			fatal(err)
		}
		v, err := c.CompareBaselines(fn, loop)
		if err != nil {
			fatal(err)
		}
		fmt.Println(core.FormatVerdictTable([]*core.BaselineVerdicts{v}))
	}

	if *stripmine != "" {
		parts := strings.Split(*stripmine, ":")
		if len(parts) != 3 {
			fatal(fmt.Errorf("-stripmine wants fn:loop:pes"))
		}
		loop, err1 := strconv.Atoi(parts[1])
		p, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("-stripmine wants numeric loop and pes"))
		}
		tc, err := c.StripMine(parts[0], loop, p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("--- transformed source (loop %d of %s on %d PEs) ---\n%s\n",
			loop, parts[0], p, tc.Source())
		c = tc
	}

	if *runFn != "" {
		rc := core.RunConfig{Simulate: *sim, PEs: *pes, Seed: *seed, Output: os.Stdout}
		var (
			v     interp.Value
			stats interp.Stats
			err   error
		)
		if *shapecheck {
			var violations []interp.ShapeViolation
			v, stats, violations, err = c.RunChecked(rc, *runFn)
			if err == nil {
				if len(violations) == 0 {
					fmt.Println("runtime shape checks: clean")
				}
				for _, sv := range violations {
					fmt.Println("runtime shape check:", sv)
				}
			}
		} else {
			v, stats, err = c.Run(rc, *runFn)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("result: %s\n", v)
		if *sim {
			fmt.Printf("simulated cycles: %d (PEs=%d, barriers=%d)\n",
				stats.Cycles, *pes, stats.Barriers)
		}
		fmt.Printf("steps=%d allocations=%d\n", stats.Steps, stats.Allocations)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "addsc:", err)
	os.Exit(1)
}
