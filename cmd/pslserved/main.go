// Command pslserved serves PSL execution over HTTP: the long-lived
// front of internal/serve. POST /run executes a program (compiled
// programs are cached by content hash, requests are sandboxed by
// wall-clock, step, allocation, and output budgets), GET /stats
// exposes the cache/queue/latency counters, GET /healthz answers
// liveness. SIGINT/SIGTERM drain gracefully: the listener stops, then
// queued and in-flight requests finish.
//
//	go run ./cmd/pslserved -addr 127.0.0.1:8080
//	curl -s localhost:8080/run -d '{"source":"function int main() { return 42; }"}'
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/expflags"
	"repro/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("pslserved", flag.ExitOnError)
	f := expflags.RegisterServe(fs)
	fs.Parse(os.Args[1:])

	s := serve.New(f.ServerConfig())
	srv := &http.Server{Addr: f.Addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("pslserved: listening on %s", f.Addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("pslserved: %v", err)
		}
	case <-ctx.Done():
		log.Printf("pslserved: draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(shutCtx)
		cancel()
		s.Close()
		log.Printf("pslserved: drained")
	}
}
