// Command pslrouter fronts a fleet of pslserved backends: requests are
// consistent-hashed by program content so every program lives on
// exactly one replica's compiled cache (no duplicate compiles
// fleet-wide), dead backends are health-checked out and their keys
// rehash onto survivors, and POST /submit + GET /result/{id} offer an
// async job API with retry-on-backend-failure. SIGINT/SIGTERM drain
// gracefully: in-flight async attempts requeue, the ledger loses
// nothing.
//
//	go run ./cmd/pslserved -addr 127.0.0.1:8081 &
//	go run ./cmd/pslserved -addr 127.0.0.1:8082 &
//	go run ./cmd/pslrouter -addr 127.0.0.1:8090 -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//	curl -s localhost:8090/run -d '{"source":"function int main() { return 42; }"}'
//	curl -s localhost:8090/submit -d '{"source":"function int main() { return 42; }"}'
//	go run ./cmd/loadgen -addr http://127.0.0.1:8090
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/expflags"
	"repro/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("pslrouter", flag.ExitOnError)
	f := expflags.RegisterRouter(fs)
	fs.Parse(os.Args[1:])

	cfg, err := f.RouterConfig()
	if err != nil {
		log.Fatalf("pslrouter: %v", err)
	}
	r, err := serve.NewRouter(cfg)
	if err != nil {
		log.Fatalf("pslrouter: %v", err)
	}
	srv := &http.Server{Addr: f.Addr, Handler: r.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("pslrouter: listening on %s, %d backends", f.Addr, len(cfg.Backends))
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("pslrouter: %v", err)
		}
	case <-ctx.Done():
		log.Printf("pslrouter: draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(shutCtx)
		cancel()
		r.Close()
		st := r.Stats(context.Background())
		log.Printf("pslrouter: drained (%d jobs done, %d still queued, %d failed)",
			st.Jobs.Done, st.Jobs.Queued, st.Jobs.Failed)
	}
}
