// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index):
//
//	-t        T1/T2: the §4.4 TIMES and SPEEDUP tables (simulated Sequent)
//	-fig N    F1..F5: the data-structure figures (ADDS declarations and
//	          what the validation proves about them)
//	-pm N     PM1: §3.3.2 polynomial-loop matrices; PM2: §4.3.2 BHL1
//	          matrix; PM3 (= V2): octree build validation
//	-x N      X1: analysis precision comparison; X2: scheduling/sync
//	          ablation; X3: theta accuracy/work sweep
//	-real     R1, R2, R3, R5, R8: measured wall-clock speedups on real
//	          goroutines (parexec) next to the simulated Sequent
//	          prediction — R1 on the §3.3.2 polynomial, R2 on the
//	          Barnes-Hut force loop, per scheduling policy (RX2),
//	          R3 the compiled-engine vs tree-walker comparison on both
//	          workloads, R5 the auto-parallelization planner vs
//	          the hand-tuned StripMine calls (with the plan report),
//	          and R8 the SPMD kernel path vs the bytecode VM on the
//	          vectorizable force workload (with per-loop vector
//	          verdicts)
//	-plancost R7: the auto-parallelization planner's cost scaling on
//	          generated many-loop programs (the BENCH_plan.json workload)
//	-pes, -sched, -chunk
//	          pool sizes and R2 scheduling policy for -real
//	-engine   interpreter engine for the R1/R2 tables (compiled,
//	          bytecode, kernel, or walk; R3 always measures all)
//	-all      everything (the default when no flag is given)
//	-measure  time steps simulated per T1 cell (default 1)
//
// The flag set itself — authoritative names, defaults, and usage
// strings — lives in internal/expflags, so the doc-drift test can
// check documented commands against it; run with -h for the details.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/adds"
	"repro/internal/core"
	"repro/internal/expflags"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/parexec"
	"repro/internal/sequent"
	"repro/internal/tablefmt"
	"repro/internal/transform"
)

func main() {
	f := expflags.Register(flag.CommandLine)
	flag.Parse()

	if !f.Tables && f.Fig == 0 && f.PM == 0 && f.X == 0 && !f.Real && !f.PlanCost {
		f.All = true
	}
	if f.All || f.Tables {
		runTables(f.Measure)
	}
	if f.All || f.Real {
		peList, err := f.PEList()
		if err != nil {
			fatal(err)
		}
		policies, err := f.Policies()
		if err != nil {
			fatal(err)
		}
		eng, err := f.EngineKind()
		if err != nil {
			fatal(err)
		}
		runR1(peList, eng)
		runR2(peList, policies, eng)
		runR3(peList)
		runR5(peList, eng)
		runR8(peList)
	}
	if f.All || f.PlanCost {
		runR7()
	}
	for n := 1; n <= 5; n++ {
		if f.All || f.Fig == n {
			runFigure(n)
		}
	}
	for p := 1; p <= 3; p++ {
		if f.All || f.PM == p {
			runPM(p)
		}
	}
	for e := 1; e <= 3; e++ {
		if f.All || f.X == e {
			runX(e, f.Measure)
		}
	}
}

func header(s string) { fmt.Printf("\n===== %s =====\n\n", s) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// ---------------------------------------------------------------------------
// T1/T2

func runTables(measure int) {
	header("T1/T2 — §4.4 TIMES and SPEEDUP (simulated Sequent)")
	cfg := sequent.DefaultTableConfig()
	cfg.MeasureSteps = measure
	t, err := sequent.BarnesHutTable(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println(t.FormatTimes())
	fmt.Println(t.FormatSpeedups())
	fmt.Println("paper: seq 188/1496/3768 s; par(4) speedups 2.5/2.7/2.8; par(7) 3.3/4.1/4.3")
}

// ---------------------------------------------------------------------------
// R1/R2 — measured wall-clock speedup on real goroutines

// warnOversubscribed flags pool sizes beyond the host's CPUs: those
// cells still verify the bit-identical checksum property, but their
// SPEEDUP entries measure oversubscription, not parallel capacity.
// (The default -pes 2,4,8 keeps the determinism sweep complete on any
// host; trim it to taste for timing-only runs.)
func warnOversubscribed(peList []int) {
	maxPEs := 0
	for _, p := range peList {
		if p > maxPEs {
			maxPEs = p
		}
	}
	if maxPEs > runtime.NumCPU() {
		fmt.Printf("note: pool sizes above NumCPU=%d are oversubscribed — those SPEEDUP\n", runtime.NumCPU())
		fmt.Println("rows check determinism, not parallel capacity.")
	}
}

// timeRun reports the best wall-clock of three executions.
func timeRun(run func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		if err := run(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// realTable accumulates one measured experiment's TIMES/SPEEDUP grids
// plus the simulated Sequent's prediction, sharing the measurement
// conventions between R1 and R2 (DESIGN.md: best of 3 runs per cell,
// speedups relative to the serial interpreter on the same host,
// checksum equality with the serial run asserted on every parallel
// cell).
type realTable struct {
	c         *core.Compilation
	fn        string
	eng       interp.Engine
	seed      uint64
	ns        []int
	argsFor   func(n int) []interp.Value
	times     *tablefmt.Table
	speedups  *tablefmt.Table
	simulated *tablefmt.Table
	seqMs     []float64
	seqCycles []float64
	checksums []float64
	cells     int
}

// newRealTable times the serial interpreter (and the 1-PE simulated
// machine) on every N, filling the seq rows and the reference
// checksums every parallel cell is compared against.
func newRealTable(c *core.Compilation, fn string, eng interp.Engine, seed uint64, ns []int, argsFor func(n int) []interp.Value) *realTable {
	rt := &realTable{
		c: c, fn: fn, eng: eng, seed: seed, ns: ns, argsFor: argsFor,
		times:     tablefmt.New("TIMES ms", ns...),
		speedups:  tablefmt.New("SPEEDUP", ns...),
		simulated: tablefmt.New("SEQUENT", ns...),
		seqMs:     make([]float64, len(ns)),
		seqCycles: make([]float64, len(ns)),
		checksums: make([]float64, len(ns)),
	}
	ones := make([]float64, len(ns))
	for i, n := range ns {
		args := argsFor(n)
		d, err := timeRun(func() error {
			v, _, err := c.Run(core.RunConfig{Seed: seed, Engine: eng}, fn, args...)
			rt.checksums[i] = v.F
			return err
		})
		if err != nil {
			fatal(err)
		}
		rt.seqMs[i] = float64(d.Microseconds()) / 1000
		m := sequent.NewMachine(1)
		m.Seed = seed
		res, err := m.Run(c.Program, fn, args...)
		if err != nil {
			fatal(err)
		}
		rt.seqCycles[i] = float64(res.Cycles)
		ones[i] = 1
	}
	rt.times.AddRow("seq", rt.seqMs...)
	rt.speedups.AddRow("seq", ones...)
	rt.simulated.AddRow("seq", ones...)
	return rt
}

// addMeasuredRow times one parallel configuration (best of 3 per N),
// asserting each cell's checksum against the serial run, and appends
// it to the TIMES and SPEEDUP grids.
func (rt *realTable) addMeasuredRow(label string, par *core.Compilation, pes int, pol parexec.Policy) {
	parMs := make([]float64, len(rt.ns))
	parSpeed := make([]float64, len(rt.ns))
	for i, n := range rt.ns {
		args := rt.argsFor(n)
		d, err := timeRun(func() error {
			v, _, err := par.RunParallel(core.RunConfig{Seed: rt.seed, Sched: pol, Engine: rt.eng}, pes, rt.fn, args...)
			if err == nil && v.F != rt.checksums[i] {
				return fmt.Errorf("%s N=%d: checksum %g != serial %g", label, n, v.F, rt.checksums[i])
			}
			return err
		})
		if err != nil {
			fatal(err)
		}
		parMs[i] = float64(d.Microseconds()) / 1000
		parSpeed[i] = rt.seqMs[i] / parMs[i]
		rt.cells++
	}
	rt.times.AddRow(label, parMs...)
	rt.speedups.AddRow(label, parSpeed...)
}

// addSimRow appends the simulated Sequent's speedup prediction for the
// same strip-mined program (the machine model only has the static
// cyclic/block mappings; predictions here use its default, cyclic).
func (rt *realTable) addSimRow(label string, par *core.Compilation, pes int) {
	simSpeed := make([]float64, len(rt.ns))
	for i, n := range rt.ns {
		m := sequent.NewMachine(pes)
		m.Seed = rt.seed
		res, err := m.Run(par.Program, rt.fn, rt.argsFor(n)...)
		if err != nil {
			fatal(err)
		}
		simSpeed[i] = rt.seqCycles[i] / float64(res.Cycles)
	}
	rt.simulated.AddRow(label, simSpeed...)
}

// print renders the three grids.
func (rt *realTable) print() {
	fmt.Println(rt.times.Format(1))
	fmt.Println(rt.speedups.Format(2))
	fmt.Println("Simulated Sequent speedup prediction for the same strip-mined")
	fmt.Println("program (static cyclic mapping — the model's scheduling):")
	fmt.Println()
	fmt.Println(rt.simulated.Format(2))
}

// runR1 measures the paper's own strip-mining configuration: width =
// PEs, one iteration per PE per barrier, under the paper's static
// cyclic mapping (enforced, not assumed — the engine default dynamic
// policy could let one PE claim two iterations on a loaded host). At
// that width the -sched/-chunk knobs could only de-parallelize the
// strip, so they shape the R2 tables instead.
func runR1(peList []int, eng interp.Engine) {
	header("R1 — measured wall-clock speedup (goroutine-backed parexec)")
	fmt.Printf("host: GOMAXPROCS=%d, NumCPU=%d; workload: §3.3.2 polynomial;\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Printf("engine: %s\n", eng)
	fmt.Println("normalize (O(exp) work per node); strip width = PEs, static cyclic")
	fmt.Println("(the paper's §4.3.3 split); best of 3 runs per cell.")
	warnOversubscribed(peList)
	fmt.Println()

	c, err := core.Compile(parexec.PolyNormalizePSL)
	if err != nil {
		fatal(err)
	}
	rt := newRealTable(c, "run", eng, 0, []int{500, 2000}, func(n int) []interp.Value {
		return []interp.Value{interp.IntVal(int64(n)), interp.RealVal(1.001)}
	})
	for _, pes := range peList {
		par, err := c.StripMine(parexec.NormalizeFunc, parexec.NormalizeLoop, pes)
		if err != nil {
			fatal(err)
		}
		label := fmt.Sprintf("par(%d)", pes)
		rt.addMeasuredRow(label, par, pes, parexec.StaticCyclic)
		rt.addSimRow(label, par, pes)
	}
	rt.print()
	fmt.Println("Parallel checksums matched the serial run bit-for-bit.")
}

// polLabel abbreviates a policy name for table rows: blk(4), cyc(4),
// dyn(4).
func polLabel(pol parexec.Policy, pes int) string {
	short := map[string]string{"block": "blk", "cyclic": "cyc", "dynamic": "dyn"}
	s, ok := short[pol.Name()]
	if !ok {
		s = pol.Name()
	}
	return fmt.Sprintf("%s(%d)", s, pes)
}

// runR2 measures the paper's headline workload on real goroutines: the
// Barnes-Hut force-computation loop (nbody.BarnesHutForcePSL), strip-
// mined at width 4×PEs so the scheduling policy owns the iteration→PE
// map, one row per policy × pool size, next to the simulated Sequent's
// prediction for the same strip-mined program (the T1/T2 model).
func runR2(peList []int, policies []parexec.Policy, eng interp.Engine) {
	header("R2 — Barnes-Hut measured wall-clock (goroutine-backed parexec)")
	fmt.Printf("host: GOMAXPROCS=%d, NumCPU=%d; workload: Barnes-Hut force loop;\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Printf("engine: %s\n", eng)
	fmt.Println("(run_forces: serial octree build, parallel FCL — the BHL1 shape);")
	fmt.Println("strip width 4×PEs; best of 3 runs per cell; every parallel cell's")
	fmt.Println("checksum is asserted bit-identical to the serial interpreter.")
	warnOversubscribed(peList)
	fmt.Println()

	c, err := core.Compile(nbody.BarnesHutForcePSL)
	if err != nil {
		fatal(err)
	}
	rt := newRealTable(c, nbody.ForceFunc, eng, 7, []int{64, 128}, func(n int) []interp.Value {
		return []interp.Value{interp.IntVal(int64(n)), interp.RealVal(0.5)}
	})
	for _, pes := range peList {
		par, err := c.StripMine(nbody.ForceFunc, nbody.ForceLoop, 4*pes)
		if err != nil {
			fatal(err)
		}
		for _, pol := range policies {
			rt.addMeasuredRow(polLabel(pol, pes), par, pes, pol)
		}
		rt.addSimRow(fmt.Sprintf("cyc(%d)", pes), par, pes)
	}
	rt.print()
	names := make([]string, len(policies))
	for i, p := range policies {
		names[i] = p.Name()
	}
	fmt.Printf("All %d parallel cells (policies: %s; PEs: %v) matched the serial\n",
		rt.cells, strings.Join(names, ", "), peList)
	fmt.Println("checksum bit-for-bit.")
	runR2Efficiency(c, peList, eng)
}

// runR2Efficiency closes R2's loop from plan to silicon: the planner's
// verdict on the force loop (approved, width 4×PEs) next to what the
// worker pool achieved — per-PE busy/wait shares and the imbalance
// ratio from the parexec forall profiler, joined to the plan by source
// line. A near-100% busy share says the strip width kept every PE fed;
// a high wait share or imbalance says the planned decomposition left
// PEs idling at the barrier.
func runR2Efficiency(c *core.Compilation, peList []int, eng interp.Engine) {
	fmt.Println("\nplanned vs achieved (auto-parallelized force run, profiler attached):")
	fmt.Printf("%-10s %-24s %8s %6s %6s %6s %9s  %s\n",
		"config", "planned site", "tasks", "busy%", "wait%", "imbal", "wall ms", "vector")
	for _, pes := range peList {
		auto, err := c.AutoParallel(4 * pes)
		if err != nil {
			fatal(err)
		}
		byLine := make(map[int]string)
		for _, lp := range auto.Plan.Loops {
			if lp.Parallelized {
				byLine[lp.Pos.Line] = fmt.Sprintf("%s#%d width=%d", lp.Func, lp.Index, lp.Width)
			}
		}
		prof := obs.NewForallProfiler()
		_, _, err = auto.RunParallel(
			core.RunConfig{Seed: 7, Sched: parexec.StaticCyclic, Engine: eng, Profiler: prof},
			pes, nbody.ForceFunc, interp.IntVal(128), interp.RealVal(0.5))
		if err != nil {
			fatal(err)
		}
		for _, site := range prof.Report() {
			planned, ok := byLine[site.Line]
			if !ok {
				planned = fmt.Sprintf("line %d (unplanned)", site.Line)
			}
			fmt.Printf("%-10s %-24s %8d %5.1f%% %5.1f%% %6.2f %9.2f  %s\n",
				fmt.Sprintf("auto(%d)", pes), planned, site.Tasks, site.BusyPct, site.WaitPct,
				site.Imbalance, float64(site.WallUS)/1000, vectorCell(site))
		}
	}
	fmt.Println("busy% = mean per-PE share of barrier wall time spent in iterations;")
	fmt.Println("wait% = share spent idle at the barrier after draining the queue;")
	fmt.Println("imbal = busiest PE busy time / mean PE busy time (1.00 = level);")
	fmt.Println("vector = strips that ran the SPMD kernel path, with the serial")
	fmt.Println("gather/scatter slab phases' wall time (— = scalar per-task strips).")
}

// vectorCell renders a site's vector-path column: the kernel mark plus
// the serial slab phases' time for vectorized strips, a dash for the
// scalar per-task path — so the planned-vs-achieved table stays
// truthful when a planned loop ran whole-slab (its per-task busy/wait
// shares measure chunks, not queue draining).
func vectorCell(site obs.SiteReport) string {
	if !site.Kernel {
		return "—"
	}
	return fmt.Sprintf("kernel g=%dus s=%dus", site.GatherUS, site.ScatterUS)
}

// runR3 measures the execution-engine comparison: the same programs
// under the tree-walking oracle, the slot-resolved compiled engine,
// and the flat bytecode VM (R6), serial and strip-mined parallel,
// with checksums asserted identical across every engine × mode cell.
// It exists because R1/R2 speedups are only as honest as their serial
// baseline: the compiled engine is that baseline made fast (no
// scope-map lookups, no field-name hashing, slice-copy frame forks
// instead of map rebuilds), and the bytecode VM is the same baseline
// flattened further (typed register banks, no closure dispatch, no
// interface values in the hot loop).
func runR3(peList []int) {
	header("R3 — execution engines compared (same results, fewer cycles of ours)")
	fmt.Printf("host: GOMAXPROCS=%d, NumCPU=%d; best of 3 runs per cell;\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Println("par rows: strip width 4×PEs, static cyclic, parexec pool.")
	fmt.Println()

	maxPE := 0
	for _, p := range peList {
		if p > maxPE {
			maxPE = p
		}
	}
	type workload struct {
		label  string
		src    string
		fn     string // strip-mining target
		loop   int
		driver string // entry point to time
		seed   uint64
		args   []interp.Value
	}
	workloads := []workload{
		{"poly N=2000", parexec.PolyNormalizePSL, parexec.NormalizeFunc, parexec.NormalizeLoop, "run", 0,
			[]interp.Value{interp.IntVal(2000), interp.RealVal(1.001)}},
		{"force N=128", nbody.BarnesHutForcePSL, nbody.ForceFunc, nbody.ForceLoop, nbody.ForceFunc, 7,
			[]interp.Value{interp.IntVal(128), interp.RealVal(0.5)}},
	}
	fmt.Printf("%-14s %-9s %10s %12s %12s %8s %8s\n",
		"workload", "config", "walk ms", "compiled ms", "bytecode ms", "w/c", "c/b")
	for _, w := range workloads {
		c, err := core.Compile(w.src)
		if err != nil {
			fatal(err)
		}
		driver := w.driver
		par, err := c.StripMine(w.fn, w.loop, 4*maxPE)
		if err != nil {
			fatal(err)
		}
		var ref float64
		haveRef := false
		cell := func(eng interp.Engine, parallel bool) float64 {
			d, err := timeRun(func() error {
				var v interp.Value
				var err error
				if parallel {
					v, _, err = par.RunParallel(core.RunConfig{Seed: w.seed, Sched: parexec.StaticCyclic, Engine: eng},
						maxPE, driver, w.args...)
				} else {
					v, _, err = c.Run(core.RunConfig{Seed: w.seed, Engine: eng}, driver, w.args...)
				}
				if err != nil {
					return err
				}
				if haveRef && v.F != ref {
					return fmt.Errorf("%s: engine %s checksum %g != reference %g", w.label, eng, v.F, ref)
				}
				ref, haveRef = v.F, true
				return nil
			})
			if err != nil {
				fatal(err)
			}
			return float64(d.Microseconds()) / 1000
		}
		for _, parallel := range []bool{false, true} {
			cfgLabel := "seq"
			if parallel {
				cfgLabel = fmt.Sprintf("par(%d)", maxPE)
			}
			wms := cell(interp.EngineWalk, parallel)
			cms := cell(interp.EngineCompiled, parallel)
			bms := cell(interp.EngineBytecode, parallel)
			fmt.Printf("%-14s %-9s %10.1f %12.1f %12.1f %7.1fx %7.1fx\n",
				w.label, cfgLabel, wms, cms, bms, wms/cms, cms/bms)
		}
	}
	fmt.Println("\nEvery engine × mode cell reproduced the same checksum bit-for-bit;")
	fmt.Println("TestCompiledSpeedupFloor and TestBytecodeSpeedupFloor pin the serial")
	fmt.Println("force-workload ratios in CI.")
}

// runR5 measures the auto-parallelization planner against the
// hand-tuned StripMine calls that R1 and R2 are built on. The planner
// (transform.AutoParallelize, via core.AutoParallel) is handed the
// whole program and no hints — it runs the dependence test on every
// while loop and strip-mines the approved ones — so this table is the
// paper's pitch made executable: the annotations license the
// *compiler*, not the caller. For each workload it prints the full
// plan (approvals, rejections with reasons, absorbed loops), then one
// row pair per pool size: hand(p) is today's hand-wired call, auto(p)
// the planner's program, every cell checksum-asserted against the
// serial run.
func runR5(peList []int, eng interp.Engine) {
	header("R5 — auto-parallelization planner vs hand-tuned StripMine")
	fmt.Printf("host: GOMAXPROCS=%d, NumCPU=%d; engine: %s\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), eng)
	fmt.Println("core.AutoParallel plans whole programs (no function names, no loop")
	fmt.Println("indices); widths match the hand-tuned conventions (R1 width = PEs,")
	fmt.Println("R2 width = 4×PEs); static cyclic; best of 3 runs per cell.")
	warnOversubscribed(peList)

	type workload struct {
		label    string
		src      string
		fn       string // hand-tuned strip-mining target
		loop     int
		driver   string // entry point to time
		seed     uint64
		args     []interp.Value
		widthFor func(pes int) int
	}
	workloads := []workload{
		{"poly N=2000", parexec.PolyNormalizePSL, parexec.NormalizeFunc, parexec.NormalizeLoop, "run", 0,
			[]interp.Value{interp.IntVal(2000), interp.RealVal(1.001)},
			func(pes int) int { return pes }},
		{"force N=128", nbody.BarnesHutForcePSL, nbody.ForceFunc, nbody.ForceLoop, nbody.ForceFunc, 7,
			[]interp.Value{interp.IntVal(128), interp.RealVal(0.5)},
			func(pes int) int { return 4 * pes }},
	}
	for _, w := range workloads {
		c, err := core.Compile(w.src)
		if err != nil {
			fatal(err)
		}
		plan0, err := c.AutoParallel(w.widthFor(peList[0]))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s — %s\n", w.label, plan0.Plan.Summary())
		for _, lp := range plan0.Plan.Loops {
			fmt.Printf("  %s\n", lp)
		}

		var checksum float64
		haveRef := false
		serial, err := timeRun(func() error {
			v, _, err := c.Run(core.RunConfig{Seed: w.seed, Engine: eng}, w.driver, w.args...)
			checksum, haveRef = v.F, true
			return err
		})
		if err != nil {
			fatal(err)
		}
		serialMs := float64(serial.Microseconds()) / 1000
		cell := func(par *core.Compilation, pes int, kind string) float64 {
			d, err := timeRun(func() error {
				v, _, err := par.RunParallel(core.RunConfig{Seed: w.seed, Sched: parexec.StaticCyclic, Engine: eng},
					pes, w.driver, w.args...)
				if err == nil && haveRef && v.F != checksum {
					return fmt.Errorf("%s %s(%d): checksum %g != serial %g", w.label, kind, pes, v.F, checksum)
				}
				return err
			})
			if err != nil {
				fatal(err)
			}
			return float64(d.Microseconds()) / 1000
		}
		fmt.Printf("\n%-10s %10s %10s %9s %9s\n", "config", "hand ms", "auto ms", "hand spd", "auto spd")
		fmt.Printf("%-10s %10.1f %10s %9.2f %9s\n", "seq", serialMs, "—", 1.0, "—")
		sameText := true
		for _, pes := range peList {
			width := w.widthFor(pes)
			hand, err := c.StripMine(w.fn, w.loop, width)
			if err != nil {
				fatal(err)
			}
			auto, err := c.AutoParallel(width)
			if err != nil {
				fatal(err)
			}
			if auto.Source() != hand.Source() {
				sameText = false
			}
			handMs := cell(hand, pes, "hand")
			autoMs := cell(auto.Compilation, pes, "auto")
			fmt.Printf("%-10s %10.1f %10.1f %9.2f %9.2f\n",
				fmt.Sprintf("par(%d)", pes), handMs, autoMs, serialMs/handMs, serialMs/autoMs)
		}
		if sameText {
			fmt.Println("auto emitted byte-identical programs to the hand-wired calls.")
		} else {
			fmt.Println("auto additionally parallelized loops the hand-wired call ignores")
			fmt.Println("(unreached from this driver); outputs stay bit-identical.")
		}
	}
	fmt.Println("\nEvery hand and auto cell reproduced the serial checksum bit-for-bit;")
	fmt.Println("TestAutoMatchesHandTuned pins the equivalence in CI.")
}

// runR8 measures the fourth execution path: planner-approved strips
// whose bodies the kernel classifier proves straight-line arithmetic
// over element fields run as batched struct-of-arrays kernels
// (gather → whole-slab masked compute → scatter) instead of per-lane
// scalar interpretation. The workload is nbody.VecForcePSL's pairwise
// force driver — the force arithmetic of R2 with the pointer-walking
// accumulation rewritten into a vectorizable shape. The serial
// baseline is the bytecode VM on the unstripped program (its honest
// serial form); kernel rows run the auto-parallelized program, serial
// strips inline on the vector path and pooled runs with the slab
// compute split across PEs. The plan print shows the per-loop vector
// verdict — which approved loops got the kernel and the classifier's
// concrete why-not for the rest.
func runR8(peList []int) {
	header("R8 — SPMD vectorized strips vs the bytecode VM")
	fmt.Printf("host: GOMAXPROCS=%d, NumCPU=%d; workload: pairwise vector force\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Println("(nbody.VecForcePSL, N=256, 160 steps); strip width 64; best of 3")
	fmt.Println("runs per cell; every cell's checksum asserted against the serial")
	fmt.Println("bytecode run. TestKernelSpeedupFloor gates the seq ratio in CI.")
	fmt.Println()

	c, err := core.Compile(nbody.VecForcePSL)
	if err != nil {
		fatal(err)
	}
	auto, err := c.AutoParallel(64)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan for %s — %s\n", nbody.VecForceFunc, auto.Plan.Summary())
	for _, lp := range auto.Plan.Loops {
		if lp.Func == nbody.VecForceFunc {
			fmt.Printf("  %s\n", lp)
		}
	}

	args := []interp.Value{interp.IntVal(256), interp.IntVal(160), interp.RealVal(0.5)}
	var checksum float64
	haveRef := false
	serial, err := timeRun(func() error {
		v, _, err := c.Run(core.RunConfig{Seed: 7, Engine: interp.EngineBytecode}, nbody.VecForceFunc, args...)
		checksum, haveRef = v.F, true
		return err
	})
	if err != nil {
		fatal(err)
	}
	serialMs := float64(serial.Microseconds()) / 1000
	cell := func(eng interp.Engine, pes int) float64 {
		d, err := timeRun(func() error {
			v, _, err := auto.RunParallel(core.RunConfig{Seed: 7, Sched: parexec.StaticCyclic, Engine: eng},
				pes, nbody.VecForceFunc, args...)
			if err == nil && haveRef && v.F != checksum {
				return fmt.Errorf("%s(%d): checksum %g != serial %g", eng, pes, v.F, checksum)
			}
			return err
		})
		if err != nil {
			fatal(err)
		}
		return float64(d.Microseconds()) / 1000
	}
	fmt.Printf("\n%-12s %12s %12s %9s %9s\n", "config", "bytecode ms", "kernel ms", "bc spd", "kern spd")
	fmt.Printf("%-12s %12.1f %12s %9.2f %9s\n", "seq", serialMs, "—", 1.0, "—")
	for _, pes := range peList {
		bcMs := cell(interp.EngineBytecode, pes)
		kernMs := cell(interp.EngineKernel, pes)
		fmt.Printf("%-12s %12.1f %12.1f %9.2f %9.2f\n",
			fmt.Sprintf("strips(%d)", pes), bcMs, kernMs, serialMs/bcMs, serialMs/kernMs)
	}

	fmt.Println("\nplanned vs achieved (kernel engine, profiler attached):")
	prof := obs.NewForallProfiler()
	if _, _, err := auto.RunParallel(
		core.RunConfig{Seed: 7, Sched: parexec.StaticCyclic, Engine: interp.EngineKernel, Profiler: prof},
		peList[0], nbody.VecForceFunc, args...); err != nil {
		fatal(err)
	}
	for _, site := range prof.Report() {
		fmt.Printf("  line %-5d tasks=%-6d imbal=%-5.2f wall=%.2fms  %s\n",
			site.Line, site.Tasks, site.Imbalance, float64(site.WallUS)/1000, vectorCell(site))
	}
	fmt.Println("\nThe bytecode rows pay one goroutine task per lane walking Node")
	fmt.Println("pointers; the kernel rows gather touched fields into flat slabs")
	fmt.Println("once per strip and run the body as whole-slab masked sweeps.")
}

// runR7 measures the auto-parallelization planner's own cost: wall
// time of transform.AutoParallelize on generated many-loop programs
// (transform.ManyLoopProgramPSL — N worker procedures × M approvable
// pointer-chasing loops, every one approved and strip-mined). The
// planner memoizes per-function analysis summaries and re-analyzes
// only the functions a rewrite touches, so per-approved-loop cost
// should stay roughly flat as programs grow; the full-restart
// reference comparison (the seed row, ~an order of magnitude slower
// at 200 loops) lives in BENCH_plan.json, and TestPlanCostSubquadratic
// gates both the head-to-head gap and this table's scaling in CI.
func runR7() {
	header("R7 — auto-parallelization planner cost (incremental analysis)")
	fmt.Printf("host: GOMAXPROCS=%d, NumCPU=%d; best of 3 runs per cell.\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Println("workload: ManyLoopProgramPSL(N, M) — every loop approved, so each")
	fmt.Println("cell pays N·M strip-mine rewrites plus their re-analysis.")
	fmt.Println()
	fmt.Printf("%-12s %8s %12s %14s\n", "program", "loops", "plan ms", "ms per loop")
	type size struct{ n, m int }
	for _, s := range []size{{5, 5}, {10, 5}, {20, 5}, {20, 10}} {
		src := transform.ManyLoopProgramPSL(s.n, s.m)
		prog, err := lang.Parse(src)
		if err != nil {
			fatal(err)
		}
		loops := s.n * s.m
		d, err := timeRun(func() error {
			plan, err := transform.AutoParallelize(prog, 4)
			if err == nil && plan.Parallelized != loops {
				return fmt.Errorf("planned %d of %d loops", plan.Parallelized, loops)
			}
			return err
		})
		if err != nil {
			fatal(err)
		}
		ms := float64(d.Microseconds()) / 1000
		fmt.Printf("%-12s %8d %12.1f %14.3f\n",
			fmt.Sprintf("%dx%d", s.n, s.m), loops, ms, ms/float64(loops))
	}
	fmt.Println("\nFlat ms-per-loop across rows is the incremental win; the quadratic")
	fmt.Println("full-restart baseline is recorded in BENCH_plan.json (seed row) and")
	fmt.Println("re-measured by TestPlanCostSubquadratic.")
}

// ---------------------------------------------------------------------------
// Figures

func runFigure(n int) {
	switch n {
	case 1:
		header("F1 — Figure 1: other structures buildable from ListNode")
		fmt.Println("With the unannotated ListNode declaration, a cyclic list and a")
		fmt.Println("shared (\"tournament\") list are legal; ADDS makes the difference")
		fmt.Println("visible to the compiler:")
		fmt.Println()
		// Cycle under OneWayList: flagged. Under ListNode: silent.
		cyclic := `
procedure close(%s *a, %s *b) {
  a->next = b;
  b->next = a;
}`
		for _, typ := range []struct{ name, src string }{
			{"ListNode (unannotated)", adds.ListNodeSrc},
			{"OneWayList (uniquely forward)", adds.OneWayListSrc},
		} {
			name := "ListNode"
			if typ.src == adds.OneWayListSrc {
				name = "OneWayList"
			}
			c, err := core.Compile(typ.src + fmt.Sprintf(cyclic, name, name))
			if err != nil {
				fatal(err)
			}
			keys, err := c.ExitViolations("close")
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  building a 2-cycle with %-30s -> %d violation(s) %v\n",
				typ.name+":", len(keys), keys)
		}
		fmt.Println("\n  (the unannotated type promises nothing, so nothing is violated;")
		fmt.Println("   the ADDS type detects the broken forward-along-X promise)")

	case 2:
		header("F2 — Figure 2: the one-way linked list")
		fmt.Println(adds.MustParse(adds.OneWayListSrc).Decl("OneWayList"))
		d := adds.MustParse(adds.OneWayListSrc).Decl("OneWayList")
		fmt.Printf("\n  acyclic along next: %v\n", d.Acyclic("next"))
		fmt.Printf("  unique along X:     %v\n", d.UniqueAlong("X"))
		fmt.Printf("  traversal never revisits: %v\n", d.PathNeverRevisits("next"))

	case 3:
		header("F3 — Figure 3: the orthogonal list (sparse matrix)")
		d := adds.MustParse(adds.OrthListSrc).Decl("OrthList")
		fmt.Println(d)
		fmt.Printf("\n  X and Y dependent (default): %v\n", !d.Independent("X", "Y"))
		fmt.Printf("  forward along X never revisits: %v\n", d.PathNeverRevisits("across"))
		fmt.Printf("  forward along Y never revisits: %v\n", d.PathNeverRevisits("down"))

	case 4:
		header("F4 — Figure 4: the two-dimensional range tree")
		d := adds.MustParse(adds.TwoDRangeTreeSrc).Decl("TwoDRangeTree")
		fmt.Println(d)
		fmt.Printf("\n  sub independent of down:   %v\n", d.Independent("sub", "down"))
		fmt.Printf("  sub independent of leaves: %v\n", d.Independent("sub", "leaves"))
		fmt.Printf("  down/leaves dependent:     %v\n", !d.Independent("down", "leaves"))
		fmt.Printf("  left/right disjoint:       %v\n", d.DisjointSiblings("left", "right"))

	case 5:
		header("F5 — Figure 5: the Barnes-Hut octree")
		c, err := core.Compile(nbody.BarnesHutPSL)
		if err != nil {
			fatal(err)
		}
		d := c.Program.Universe.Decl("Octree")
		fmt.Println(d)
		fmt.Printf("\n  subtrees disjoint along down: %v\n", d.DisjointSiblings("subtrees"))
		fmt.Printf("  leaves traversal never revisits: %v\n", d.PathNeverRevisits("next"))
		fmt.Printf("  down and leaves dependent: %v\n", !d.Independent("down", "leaves"))
	}
}

// ---------------------------------------------------------------------------
// Path-matrix experiments

const polyScaleSrc = `
type OneWayList [X]
{ int coef, exp;
  OneWayList *next is uniquely forward along X;
};

procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->coef = p->coef * c;
    p = p->next;
  }
}`

const polyScaleNoADDS = `
type ListNode
{ int coef, exp;
  ListNode *next;
};

procedure scale(ListNode *head, int c) {
  var ListNode *p = head;
  while p != NULL {
    p->coef = p->coef * c;
    p = p->next;
  }
}`

func runPM(n int) {
	switch n {
	case 1:
		header("PM1 — §3.3.2: path matrices for the polynomial-scaling loop")
		fmt.Println("Without ADDS (conservative, every entry =?):")
		c0, err := core.Compile(polyScaleNoADDS)
		if err != nil {
			fatal(err)
		}
		m0, err := c0.MatrixAfter("scale", "p = p->next;")
		if err != nil {
			fatal(err)
		}
		fmt.Println(m0)
		c, err := core.Compile(polyScaleSrc)
		if err != nil {
			fatal(err)
		}
		fmt.Println("With the OneWayList ADDS declaration, just before the loop:")
		before, err := c.MatrixBeforeLoop("scale", 0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(before)
		fmt.Println("At the fixed point, after p = p->next (paper: head, p, p' never alias):")
		m, err := c.MatrixAfter("scale", "p = p->next;")
		if err != nil {
			fatal(err)
		}
		fmt.Println(m)

	case 2:
		header("PM2 — §4.3.2: the BHL1 path matrix")
		c, err := core.Compile(nbody.BarnesHutPSL)
		if err != nil {
			fatal(err)
		}
		m, err := c.MatrixAfter("timestep", "p = p->next;")
		if err != nil {
			fatal(err)
		}
		fmt.Println("After BHL1's advance (root/particles omitted entries are =?,")
		fmt.Println("p and p' provably distinct — the §4.3.2 conclusion):")
		fmt.Println(m)
		reps, err := c.LoopReports("timestep")
		if err != nil {
			fatal(err)
		}
		for _, r := range reps {
			fmt.Println(r)
			fmt.Println()
		}

	case 3:
		header("PM3/V2 — §4.3.2: validating build_tree / insert_particle")
		c, err := core.Compile(nbody.BarnesHutPSL)
		if err != nil {
			fatal(err)
		}
		for _, fn := range []string{"expand_box", "insert_particle", "build_tree", "timestep"} {
			keys, err := c.ExitViolations(fn)
			if err != nil {
				fatal(err)
			}
			status := "valid at exit"
			if len(keys) > 0 {
				status = fmt.Sprintf("violations: %v", keys)
			}
			fmt.Printf("  %-18s %s\n", fn, status)
		}
		fmt.Println("\n  insert_particle temporarily shares the competitor between the")
		fmt.Println("  old and new subtree; the final store repairs the abstraction")
		fmt.Println("  (verified statement-by-statement in internal/nbody tests).")
	}
}

// ---------------------------------------------------------------------------
// Supplementary experiments

func runX(n, measure int) {
	switch n {
	case 1:
		header("X1 — analysis precision: conservative vs k-limited vs ADDS+GPM")
		type target struct {
			src  string
			fn   string
			loop int
		}
		bh := nbody.BarnesHutPSL
		targets := []target{
			{polyScaleSrc, "scale", 0},
			{polyScaleNoADDS, "scale", 0},
			{bh, "timestep", 0},
			{bh, "timestep", 1},
			{bh, "build_tree", 0},
		}
		var rows []*core.BaselineVerdicts
		for _, tg := range targets {
			c, err := core.Compile(tg.src)
			if err != nil {
				fatal(err)
			}
			v, err := c.CompareBaselines(tg.fn, tg.loop)
			if err != nil {
				fatal(err)
			}
			if tg.src == polyScaleNoADDS {
				v.Func = "scale (no ADDS)"
			}
			if tg.src == bh && tg.fn == "timestep" {
				v.Func = fmt.Sprintf("timestep BHL%d", tg.loop+1)
			}
			rows = append(rows, v)
		}
		fmt.Println(core.FormatVerdictTable(rows))
		fmt.Println("ADDS+GPM parallelizes exactly the loops the paper says it should;")
		fmt.Println("both baselines reject everything (k-limited summarization folds")
		fmt.Println("lists into spurious cycles — the paper's §2.1 criticism).")

	case 2:
		header("X2 — ablation: strip width, scheduling policy, synchronization cost")
		fmt.Println("The paper's sublinearity sources: (1) simple static scheduling,")
		fmt.Println("(3) slow synchronization, (4) untuned granularity. Each variant")
		fmt.Println("changes one lever on N=256, 4 PEs.")
		fmt.Println()

		const n = 256
		type variant struct {
			name    string
			width   int // forall iterations per trip (strip width)
			sched   interp.Scheduling
			barrier int64
		}
		variants := []variant{
			{"width=PEs, cyclic, slow sync (paper)", 4, interp.Cyclic, 0},
			{"width=4xPEs, cyclic, slow sync", 16, interp.Cyclic, 0},
			{"width=4xPEs, block,  slow sync", 16, interp.Block, 0},
			{"width=PEs, cyclic, fast sync", 4, interp.Cyclic, 100},
			{"width=4xPEs, cyclic, fast sync", 16, interp.Cyclic, 100},
		}

		runOne := func(v variant) (float64, error) {
			costs := interp.DefaultCosts()
			if v.barrier > 0 {
				costs.Barrier = v.barrier
			}
			m := sequent.Machine{PEs: 1, ClockHz: sequent.DefaultClockHz, Costs: costs, Seed: 7}
			c, err := core.Compile(nbody.BarnesHutPSL)
			if err != nil {
				return 0, err
			}
			args := []interp.Value{
				interp.IntVal(n), interp.IntVal(int64(measure)),
				interp.RealVal(0.5), interp.RealVal(0.01),
			}
			seq, err := m.Run(c.Program, "simulate", args...)
			if err != nil {
				return 0, err
			}
			p1, err := c.StripMine(nbody.TimestepFunc, nbody.BHL1, v.width)
			if err != nil {
				return 0, err
			}
			p2, err := p1.StripMine(nbody.TimestepFunc, nbody.BHL2, v.width)
			if err != nil {
				return 0, err
			}
			pm := sequent.Machine{PEs: 4, ClockHz: sequent.DefaultClockHz, Costs: costs, Sched: v.sched, Seed: 7}
			par, err := pm.Run(p2.Program, "simulate", args...)
			if err != nil {
				return 0, err
			}
			return float64(seq.Cycles) / float64(par.Cycles), nil
		}
		fmt.Printf("%-40s %10s\n", "variant (N=256, 4 PEs)", "speedup")
		for _, v := range variants {
			s, err := runOne(v)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-40s %10.2f\n", v.name, s)
		}
		fmt.Println("\nWider strips amortize barriers over more work (fewer trips of the")
		fmt.Println("outer loop) but pay quadratic skip-ahead (FOR2) and load imbalance;")
		fmt.Println("cheap synchronization lifts every configuration toward linear —")
		fmt.Println("the paper's point (3) that Sequent synchronization was a limiter.")

	case 3:
		header("X3 — ablation: the well-separated threshold (accuracy vs work)")
		fmt.Println("Barnes-Hut's O(N log N) comes from treating well-separated cells")
		fmt.Println("as point masses (§4.1). Sweeping theta on N=1024 (native Go):")
		fmt.Println()
		rows := nbody.ThetaSweep(1024, 7, []float64{0.2, 0.3, 0.5, 0.8, 1.2})
		fmt.Printf("%8s %14s %16s %12s\n", "theta", "mean rel err", "interactions", "vs direct")
		for _, r := range rows {
			fmt.Printf("%8.2f %13.3f%% %16d %11.1fx\n",
				r.Theta, 100*r.MeanRelErr, r.Interactions,
				float64(r.DirectPairs)/float64(r.Interactions))
		}
		fmt.Println("\nLarger theta trades accuracy for work — the knob the tree-code")
		fmt.Println("literature ([App85], [BH86]) tunes.")
	}
}
