// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index):
//
//	-t        T1/T2: the §4.4 TIMES and SPEEDUP tables (simulated Sequent)
//	-fig N    F1..F5: the data-structure figures (ADDS declarations and
//	          what the validation proves about them)
//	-pm N     PM1: §3.3.2 polynomial-loop matrices; PM2: §4.3.2 BHL1
//	          matrix; PM3 (= V2): octree build validation
//	-x N      X1: analysis precision comparison; X2: scheduling/sync
//	          ablation; X3: theta accuracy/work sweep
//	-real     R1: measured wall-clock speedups on real goroutines
//	          (parexec) next to the simulated Sequent prediction
//	-all      everything (the default when no flag is given)
//	-measure  time steps simulated per T1 cell (default 1)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/adds"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/nbody"
	"repro/internal/parexec"
	"repro/internal/sequent"
	"repro/internal/tablefmt"
)

func main() {
	tables := flag.Bool("t", false, "T1/T2 tables")
	fig := flag.Int("fig", 0, "figure number (1-5)")
	pm := flag.Int("pm", 0, "path-matrix experiment (1-3)")
	x := flag.Int("x", 0, "supplementary experiment (1-3)")
	real := flag.Bool("real", false, "R1: measured wall-clock speedups (parexec)")
	all := flag.Bool("all", false, "run everything")
	measure := flag.Int("measure", 1, "measured steps per table cell")
	flag.Parse()

	if !*tables && *fig == 0 && *pm == 0 && *x == 0 && !*real {
		*all = true
	}
	if *all || *tables {
		runTables(*measure)
	}
	if *all || *real {
		runReal()
	}
	for f := 1; f <= 5; f++ {
		if *all || *fig == f {
			runFigure(f)
		}
	}
	for p := 1; p <= 3; p++ {
		if *all || *pm == p {
			runPM(p)
		}
	}
	for e := 1; e <= 3; e++ {
		if *all || *x == e {
			runX(e, *measure)
		}
	}
}

func header(s string) { fmt.Printf("\n===== %s =====\n\n", s) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// ---------------------------------------------------------------------------
// T1/T2

func runTables(measure int) {
	header("T1/T2 — §4.4 TIMES and SPEEDUP (simulated Sequent)")
	cfg := sequent.DefaultTableConfig()
	cfg.MeasureSteps = measure
	t, err := sequent.BarnesHutTable(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println(t.FormatTimes())
	fmt.Println(t.FormatSpeedups())
	fmt.Println("paper: seq 188/1496/3768 s; par(4) speedups 2.5/2.7/2.8; par(7) 3.3/4.1/4.3")
}

// ---------------------------------------------------------------------------
// R1 — measured wall-clock speedup on real goroutines

// timeRun reports the best wall-clock of three executions.
func timeRun(run func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		if err := run(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func runReal() {
	header("R1 — measured wall-clock speedup (goroutine-backed parexec)")
	fmt.Printf("host: GOMAXPROCS=%d, NumCPU=%d; workload: §3.3.2 polynomial\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Println("normalize (O(exp) work per node); best of 3 runs per cell.")
	fmt.Println()

	ns := []int{500, 2000}
	pesList := []int{2, 4}
	if runtime.NumCPU() >= 8 {
		pesList = append(pesList, 8)
	}
	c, err := core.Compile(parexec.PolyNormalizePSL)
	if err != nil {
		fatal(err)
	}

	x := interp.RealVal(1.001)
	times := tablefmt.New("TIMES ms", ns...)
	speedups := tablefmt.New("SPEEDUP", ns...)
	simulated := tablefmt.New("SEQUENT", ns...)

	seqMs := make([]float64, len(ns))
	seqCycles := make([]float64, len(ns))
	checksums := make([]float64, len(ns))
	ones := make([]float64, len(ns))
	for i, n := range ns {
		args := []interp.Value{interp.IntVal(int64(n)), x}
		d, err := timeRun(func() error {
			v, _, err := c.Run(core.RunConfig{}, "run", args...)
			checksums[i] = v.F
			return err
		})
		if err != nil {
			fatal(err)
		}
		seqMs[i] = float64(d.Microseconds()) / 1000
		m := sequent.NewMachine(1)
		res, err := m.Run(c.Program, "run", args...)
		if err != nil {
			fatal(err)
		}
		seqCycles[i] = float64(res.Cycles)
		ones[i] = 1
	}
	times.AddRow("seq", seqMs...)
	speedups.AddRow("seq", ones...)
	simulated.AddRow("seq", ones...)

	for _, pes := range pesList {
		par, err := c.StripMine(parexec.NormalizeFunc, parexec.NormalizeLoop, pes)
		if err != nil {
			fatal(err)
		}
		parMs := make([]float64, len(ns))
		parSpeed := make([]float64, len(ns))
		simSpeed := make([]float64, len(ns))
		for i, n := range ns {
			args := []interp.Value{interp.IntVal(int64(n)), x}
			d, err := timeRun(func() error {
				v, _, err := par.RunParallel(core.RunConfig{}, pes, "run", args...)
				if err == nil && v.F != checksums[i] {
					return fmt.Errorf("pes=%d N=%d: checksum %g != serial %g", pes, n, v.F, checksums[i])
				}
				return err
			})
			if err != nil {
				fatal(err)
			}
			parMs[i] = float64(d.Microseconds()) / 1000
			parSpeed[i] = seqMs[i] / parMs[i]
			m := sequent.NewMachine(pes)
			res, err := m.Run(par.Program, "run", args...)
			if err != nil {
				fatal(err)
			}
			simSpeed[i] = seqCycles[i] / float64(res.Cycles)
		}
		label := fmt.Sprintf("par(%d)", pes)
		times.AddRow(label, parMs...)
		speedups.AddRow(label, parSpeed...)
		simulated.AddRow(label, simSpeed...)
	}

	fmt.Println(times.Format(1))
	fmt.Println(speedups.Format(2))
	fmt.Println("Simulated Sequent speedup for the same strip-mined program")
	fmt.Println("(the model's prediction, for comparison):")
	fmt.Println()
	fmt.Println(simulated.Format(2))
	fmt.Println("Parallel checksums matched the serial run bit-for-bit.")
}

// ---------------------------------------------------------------------------
// Figures

func runFigure(n int) {
	switch n {
	case 1:
		header("F1 — Figure 1: other structures buildable from ListNode")
		fmt.Println("With the unannotated ListNode declaration, a cyclic list and a")
		fmt.Println("shared (\"tournament\") list are legal; ADDS makes the difference")
		fmt.Println("visible to the compiler:")
		fmt.Println()
		// Cycle under OneWayList: flagged. Under ListNode: silent.
		cyclic := `
procedure close(%s *a, %s *b) {
  a->next = b;
  b->next = a;
}`
		for _, typ := range []struct{ name, src string }{
			{"ListNode (unannotated)", adds.ListNodeSrc},
			{"OneWayList (uniquely forward)", adds.OneWayListSrc},
		} {
			name := "ListNode"
			if typ.src == adds.OneWayListSrc {
				name = "OneWayList"
			}
			c, err := core.Compile(typ.src + fmt.Sprintf(cyclic, name, name))
			if err != nil {
				fatal(err)
			}
			keys, err := c.ExitViolations("close")
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  building a 2-cycle with %-30s -> %d violation(s) %v\n",
				typ.name+":", len(keys), keys)
		}
		fmt.Println("\n  (the unannotated type promises nothing, so nothing is violated;")
		fmt.Println("   the ADDS type detects the broken forward-along-X promise)")

	case 2:
		header("F2 — Figure 2: the one-way linked list")
		fmt.Println(adds.MustParse(adds.OneWayListSrc).Decl("OneWayList"))
		d := adds.MustParse(adds.OneWayListSrc).Decl("OneWayList")
		fmt.Printf("\n  acyclic along next: %v\n", d.Acyclic("next"))
		fmt.Printf("  unique along X:     %v\n", d.UniqueAlong("X"))
		fmt.Printf("  traversal never revisits: %v\n", d.PathNeverRevisits("next"))

	case 3:
		header("F3 — Figure 3: the orthogonal list (sparse matrix)")
		d := adds.MustParse(adds.OrthListSrc).Decl("OrthList")
		fmt.Println(d)
		fmt.Printf("\n  X and Y dependent (default): %v\n", !d.Independent("X", "Y"))
		fmt.Printf("  forward along X never revisits: %v\n", d.PathNeverRevisits("across"))
		fmt.Printf("  forward along Y never revisits: %v\n", d.PathNeverRevisits("down"))

	case 4:
		header("F4 — Figure 4: the two-dimensional range tree")
		d := adds.MustParse(adds.TwoDRangeTreeSrc).Decl("TwoDRangeTree")
		fmt.Println(d)
		fmt.Printf("\n  sub independent of down:   %v\n", d.Independent("sub", "down"))
		fmt.Printf("  sub independent of leaves: %v\n", d.Independent("sub", "leaves"))
		fmt.Printf("  down/leaves dependent:     %v\n", !d.Independent("down", "leaves"))
		fmt.Printf("  left/right disjoint:       %v\n", d.DisjointSiblings("left", "right"))

	case 5:
		header("F5 — Figure 5: the Barnes-Hut octree")
		c, err := core.Compile(nbody.BarnesHutPSL)
		if err != nil {
			fatal(err)
		}
		d := c.Program.Universe.Decl("Octree")
		fmt.Println(d)
		fmt.Printf("\n  subtrees disjoint along down: %v\n", d.DisjointSiblings("subtrees"))
		fmt.Printf("  leaves traversal never revisits: %v\n", d.PathNeverRevisits("next"))
		fmt.Printf("  down and leaves dependent: %v\n", !d.Independent("down", "leaves"))
	}
}

// ---------------------------------------------------------------------------
// Path-matrix experiments

const polyScaleSrc = `
type OneWayList [X]
{ int coef, exp;
  OneWayList *next is uniquely forward along X;
};

procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->coef = p->coef * c;
    p = p->next;
  }
}`

const polyScaleNoADDS = `
type ListNode
{ int coef, exp;
  ListNode *next;
};

procedure scale(ListNode *head, int c) {
  var ListNode *p = head;
  while p != NULL {
    p->coef = p->coef * c;
    p = p->next;
  }
}`

func runPM(n int) {
	switch n {
	case 1:
		header("PM1 — §3.3.2: path matrices for the polynomial-scaling loop")
		fmt.Println("Without ADDS (conservative, every entry =?):")
		c0, err := core.Compile(polyScaleNoADDS)
		if err != nil {
			fatal(err)
		}
		m0, err := c0.MatrixAfter("scale", "p = p->next;")
		if err != nil {
			fatal(err)
		}
		fmt.Println(m0)
		c, err := core.Compile(polyScaleSrc)
		if err != nil {
			fatal(err)
		}
		fmt.Println("With the OneWayList ADDS declaration, just before the loop:")
		before, err := c.MatrixBeforeLoop("scale", 0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(before)
		fmt.Println("At the fixed point, after p = p->next (paper: head, p, p' never alias):")
		m, err := c.MatrixAfter("scale", "p = p->next;")
		if err != nil {
			fatal(err)
		}
		fmt.Println(m)

	case 2:
		header("PM2 — §4.3.2: the BHL1 path matrix")
		c, err := core.Compile(nbody.BarnesHutPSL)
		if err != nil {
			fatal(err)
		}
		m, err := c.MatrixAfter("timestep", "p = p->next;")
		if err != nil {
			fatal(err)
		}
		fmt.Println("After BHL1's advance (root/particles omitted entries are =?,")
		fmt.Println("p and p' provably distinct — the §4.3.2 conclusion):")
		fmt.Println(m)
		reps, err := c.LoopReports("timestep")
		if err != nil {
			fatal(err)
		}
		for _, r := range reps {
			fmt.Println(r)
			fmt.Println()
		}

	case 3:
		header("PM3/V2 — §4.3.2: validating build_tree / insert_particle")
		c, err := core.Compile(nbody.BarnesHutPSL)
		if err != nil {
			fatal(err)
		}
		for _, fn := range []string{"expand_box", "insert_particle", "build_tree", "timestep"} {
			keys, err := c.ExitViolations(fn)
			if err != nil {
				fatal(err)
			}
			status := "valid at exit"
			if len(keys) > 0 {
				status = fmt.Sprintf("violations: %v", keys)
			}
			fmt.Printf("  %-18s %s\n", fn, status)
		}
		fmt.Println("\n  insert_particle temporarily shares the competitor between the")
		fmt.Println("  old and new subtree; the final store repairs the abstraction")
		fmt.Println("  (verified statement-by-statement in internal/nbody tests).")
	}
}

// ---------------------------------------------------------------------------
// Supplementary experiments

func runX(n, measure int) {
	switch n {
	case 1:
		header("X1 — analysis precision: conservative vs k-limited vs ADDS+GPM")
		type target struct {
			src  string
			fn   string
			loop int
		}
		bh := nbody.BarnesHutPSL
		targets := []target{
			{polyScaleSrc, "scale", 0},
			{polyScaleNoADDS, "scale", 0},
			{bh, "timestep", 0},
			{bh, "timestep", 1},
			{bh, "build_tree", 0},
		}
		var rows []*core.BaselineVerdicts
		for _, tg := range targets {
			c, err := core.Compile(tg.src)
			if err != nil {
				fatal(err)
			}
			v, err := c.CompareBaselines(tg.fn, tg.loop)
			if err != nil {
				fatal(err)
			}
			if tg.src == polyScaleNoADDS {
				v.Func = "scale (no ADDS)"
			}
			if tg.src == bh && tg.fn == "timestep" {
				v.Func = fmt.Sprintf("timestep BHL%d", tg.loop+1)
			}
			rows = append(rows, v)
		}
		fmt.Println(core.FormatVerdictTable(rows))
		fmt.Println("ADDS+GPM parallelizes exactly the loops the paper says it should;")
		fmt.Println("both baselines reject everything (k-limited summarization folds")
		fmt.Println("lists into spurious cycles — the paper's §2.1 criticism).")

	case 2:
		header("X2 — ablation: strip width, scheduling policy, synchronization cost")
		fmt.Println("The paper's sublinearity sources: (1) simple static scheduling,")
		fmt.Println("(3) slow synchronization, (4) untuned granularity. Each variant")
		fmt.Println("changes one lever on N=256, 4 PEs.")
		fmt.Println()

		const n = 256
		type variant struct {
			name    string
			width   int // forall iterations per trip (strip width)
			sched   interp.Scheduling
			barrier int64
		}
		variants := []variant{
			{"width=PEs, cyclic, slow sync (paper)", 4, interp.Cyclic, 0},
			{"width=4xPEs, cyclic, slow sync", 16, interp.Cyclic, 0},
			{"width=4xPEs, block,  slow sync", 16, interp.Block, 0},
			{"width=PEs, cyclic, fast sync", 4, interp.Cyclic, 100},
			{"width=4xPEs, cyclic, fast sync", 16, interp.Cyclic, 100},
		}

		runOne := func(v variant) (float64, error) {
			costs := interp.DefaultCosts()
			if v.barrier > 0 {
				costs.Barrier = v.barrier
			}
			m := sequent.Machine{PEs: 1, ClockHz: sequent.DefaultClockHz, Costs: costs, Seed: 7}
			c, err := core.Compile(nbody.BarnesHutPSL)
			if err != nil {
				return 0, err
			}
			args := []interp.Value{
				interp.IntVal(n), interp.IntVal(int64(measure)),
				interp.RealVal(0.5), interp.RealVal(0.01),
			}
			seq, err := m.Run(c.Program, "simulate", args...)
			if err != nil {
				return 0, err
			}
			p1, err := c.StripMine(nbody.TimestepFunc, nbody.BHL1, v.width)
			if err != nil {
				return 0, err
			}
			p2, err := p1.StripMine(nbody.TimestepFunc, nbody.BHL2, v.width)
			if err != nil {
				return 0, err
			}
			pm := sequent.Machine{PEs: 4, ClockHz: sequent.DefaultClockHz, Costs: costs, Sched: v.sched, Seed: 7}
			par, err := pm.Run(p2.Program, "simulate", args...)
			if err != nil {
				return 0, err
			}
			return float64(seq.Cycles) / float64(par.Cycles), nil
		}
		fmt.Printf("%-40s %10s\n", "variant (N=256, 4 PEs)", "speedup")
		for _, v := range variants {
			s, err := runOne(v)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-40s %10.2f\n", v.name, s)
		}
		fmt.Println("\nWider strips amortize barriers over more work (fewer trips of the")
		fmt.Println("outer loop) but pay quadratic skip-ahead (FOR2) and load imbalance;")
		fmt.Println("cheap synchronization lifts every configuration toward linear —")
		fmt.Println("the paper's point (3) that Sequent synchronization was a limiter.")

	case 3:
		header("X3 — ablation: the well-separated threshold (accuracy vs work)")
		fmt.Println("Barnes-Hut's O(N log N) comes from treating well-separated cells")
		fmt.Println("as point masses (§4.1). Sweeping theta on N=1024 (native Go):")
		fmt.Println()
		rows := nbody.ThetaSweep(1024, 7, []float64{0.2, 0.3, 0.5, 0.8, 1.2})
		fmt.Printf("%8s %14s %16s %12s\n", "theta", "mean rel err", "interactions", "vs direct")
		for _, r := range rows {
			fmt.Printf("%8.2f %13.3f%% %16d %11.1fx\n",
				r.Theta, 100*r.MeanRelErr, r.Interactions,
				float64(r.DirectPairs)/float64(r.Interactions))
		}
		fmt.Println("\nLarger theta trades accuracy for work — the knob the tree-code")
		fmt.Println("literature ([App85], [BH86]) tunes.")
	}
}
