// Golden-output tests: the deterministic table modes of this command
// are snapshotted under testdata/golden/ so that table-format
// refactors (tablefmt, header text, cost-model constants, the
// execution engine itself) cannot silently drift the reproduced
// paper artifacts. Every mode here is fully deterministic — simulated
// cycles, static analysis verdicts, and calibrated seconds, never
// wall-clock — and, because both execution engines must produce
// bit-identical cycle counts, the snapshots also guard engine
// equivalence end to end.
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/experiments -run TestGolden -update
package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// captureStdout runs f with os.Stdout redirected into a pipe and
// returns everything it printed. The experiment printers write through
// fmt.Printf, which reads os.Stdout at call time, so swapping the
// variable is sufficient.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		io.Copy(&b, r)
		done <- b.String()
	}()
	defer func() {
		os.Stdout = old
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestGoldenOutputs(t *testing.T) {
	modes := []struct {
		name string
		run  func()
	}{
		{"t", func() { runTables(1) }},
		{"fig1", func() { runFigure(1) }},
		{"fig2", func() { runFigure(2) }},
		{"fig3", func() { runFigure(3) }},
		{"fig4", func() { runFigure(4) }},
		{"fig5", func() { runFigure(5) }},
		{"pm1", func() { runPM(1) }},
		{"pm2", func() { runPM(2) }},
		{"pm3", func() { runPM(3) }},
		{"x1", func() { runX(1, 1) }},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			if m.name == "t" && testing.Short() {
				t.Skip("the T1/T2 simulation takes a few seconds")
			}
			got := captureStdout(t, m.run)
			path := filepath.Join("testdata", "golden", m.name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./cmd/experiments -run TestGolden -update` to create the snapshots)", err)
			}
			if got != string(want) {
				t.Errorf("output drifted from %s.\nIf the change is intentional, rerun with -update.\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
