// Command nbody runs the Barnes-Hut evaluation.
//
// With -table it regenerates the paper's §4.4 TIMES and SPEEDUP tables
// on the simulated Sequent machine (sequential vs strip-mined parallel
// PSL, N ∈ {128, 512, 1024}, 80 time steps, 4 and 7 PEs).
//
// Without -table it runs the native Go implementation and reports wall
// time (drivers: seq, par, pool, direct).
//
// Usage:
//
//	nbody -table [-measure k] [-ns 128,512,1024] [-pes 4,7]
//	nbody [-driver seq|par|pool|direct] [-n 1024] [-steps 10] [-pes 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/nbody"
	"repro/internal/sequent"
)

func main() {
	table := flag.Bool("table", false, "regenerate the paper's §4.4 tables (simulated)")
	measure := flag.Int("measure", 1, "time steps actually simulated per table cell")
	nsFlag := flag.String("ns", "128,512,1024", "particle counts for -table")
	pesFlag := flag.String("pes", "4,7", "PE counts for -table")
	driver := flag.String("driver", "seq", "native driver: seq|par|pool|direct")
	n := flag.Int("n", 1024, "particles (native mode)")
	steps := flag.Int("steps", 10, "time steps (native mode)")
	npes := flag.Int("npes", 4, "goroutines for par/pool drivers")
	theta := flag.Float64("theta", 0.5, "well-separated threshold")
	dt := flag.Float64("dt", 0.01, "integration step")
	seed := flag.Uint64("seed", 7, "particle generator seed")
	dist := flag.String("dist", "uniform", "distribution: uniform|plummer")
	flag.Parse()

	if *table {
		cfg := sequent.DefaultTableConfig()
		cfg.MeasureSteps = *measure
		cfg.Theta, cfg.Dt, cfg.Seed = *theta, *dt, *seed
		var err error
		if cfg.Ns, err = parseInts(*nsFlag); err != nil {
			fatal(err)
		}
		if cfg.PEs, err = parseInts(*pesFlag); err != nil {
			fatal(err)
		}
		t, err := sequent.BarnesHutTable(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Barnes-Hut on the simulated Sequent (%d steps, theta=%.2f, measured %d step(s) and scaled)\n\n",
			cfg.Steps, cfg.Theta, cfg.MeasureSteps)
		fmt.Println(t.FormatTimes())
		fmt.Println(t.FormatSpeedups())
		fmt.Println("(paper §4.4: seq 188/1496/3768 s; par(4) speedups 2.5/2.7/2.8; par(7) 3.3/4.1/4.3)")
		return
	}

	var s *nbody.System
	switch *dist {
	case "uniform":
		s = nbody.NewUniform(*n, *seed, *theta, *dt)
	case "plummer":
		s = nbody.NewPlummer(*n, *seed, *theta, *dt)
	default:
		fatal(fmt.Errorf("unknown distribution %q", *dist))
	}
	start := time.Now()
	if err := s.Run(*driver, *steps, *npes); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("native %s: N=%d steps=%d pes=%d dist=%s: %v (%.1f ms/step)\n",
		*driver, *n, *steps, *npes, *dist, elapsed,
		float64(elapsed.Milliseconds())/float64(*steps))
	mom := s.TotalMomentum()
	fmt.Printf("total momentum: (%.3f, %.3f, %.3f)\n", mom.X, mom.Y, mom.Z)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nbody:", err)
	os.Exit(1)
}
