// Command loadgen drives a running pslserved closed-loop over a
// corpus of PSL programs (internal/serve's generator): a sequential
// cold phase that first-touches every program, then -concurrency
// workers hammering the service for -duration with a hot/cold key mix
// (-cold is the forced-miss fraction; -auto-rate sends that fraction
// of requests with auto:true, exercising the planner-parallelized
// execution path under load; -bytecode-rate sends that fraction with
// engine:bytecode, exercising the flat VM; -trace-rate sends that
// fraction with profile:true and fails the request if the response
// carries no trace). The JSON report on stdout
// carries
// throughput, client-side latency percentiles, and the
// server-accounted hot-phase cache-hit rate.
//
// CI gates on it: -require-hot-rate 0.95 -fail-on-error makes the
// process exit nonzero when the service misbehaves under load.
//
//	go run ./cmd/pslserved &
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080 -concurrency 64 -duration 2s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/expflags"
	"repro/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	f := expflags.RegisterLoadgen(fs)
	fs.Parse(os.Args[1:])

	corpus, err := serve.LoadCorpus(f.Corpus)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}

	ctx := context.Background()
	readyCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	err = serve.WaitReady(readyCtx, nil, f.Addr)
	cancel()
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}

	res, err := serve.RunLoad(ctx, serve.LoadConfig{
		URL:          f.Addr,
		Corpus:       corpus,
		Concurrency:  f.Concurrency,
		Duration:     f.Duration,
		ColdRatio:    f.Cold,
		AutoRate:     f.AutoRate,
		BytecodeRate: f.BytecodeRate,
		TraceRate:    f.TraceRate,
		Seed:         f.Seed,
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(res)

	if (f.FailOnError || f.RequireHotRate > 0) && res.Requests == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no requests completed")
		os.Exit(1)
	}
	if f.FailOnError && res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d request errors\n", res.Errors)
		os.Exit(1)
	}
	if f.RequireHotRate > 0 && res.HotHitRate < f.RequireHotRate {
		fmt.Fprintf(os.Stderr, "loadgen: hot-phase hit rate %.3f below required %.3f\n",
			res.HotHitRate, f.RequireHotRate)
		os.Exit(1)
	}
}
