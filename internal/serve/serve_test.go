package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/lang"
)

const addSrc = `
function int add(int a, int b) {
  return a + b;
}

function int main() {
  print("sum", add(2, 3));
  return add(40, 2);
}
`

const spinSrc = `
function int spin(int n) {
  var int i = 0;
  while i < n {
    i = i + 1;
  }
  return i;
}
`

const allocSrc = `
type Cell [X]
{ int v;
  Cell *next is uniquely forward along X;
};

function int boom(int n) {
  var int i = 0;
  while i < n {
    var Cell *t = new Cell;
    t->v = i;
    i = i + 1;
  }
  return i;
}
`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func mustRun(t *testing.T, s *Server, req Request) Response {
	t.Helper()
	resp, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return resp
}

func TestRunBasic(t *testing.T) {
	s := newTestServer(t, Config{})
	resp := mustRun(t, s, Request{Source: addSrc})
	if !resp.OK || resp.Result != "42" || resp.Kind != "int" {
		t.Fatalf("resp = %+v, want ok result 42", resp)
	}
	if resp.Output != "sum 5\n" {
		t.Errorf("output %q", resp.Output)
	}
	if resp.Cached {
		t.Errorf("first request reported cached")
	}
	resp = mustRun(t, s, Request{Source: addSrc, Fn: "add", Args: []json.Number{"20", "22"}})
	if !resp.OK || resp.Result != "42" {
		t.Fatalf("add(20,22) = %+v", resp)
	}
	if !resp.Cached {
		t.Errorf("second request for the same source should hit the cache")
	}
	// Walk engine answers identically (the served differential check).
	w := mustRun(t, s, Request{Source: addSrc, Engine: "walk"})
	if w.Result != "42" || w.Output != "sum 5\n" {
		t.Errorf("walk engine diverged: %+v", w)
	}
	// So does the bytecode VM — and it hits the same cache entry (the
	// entry holds both lowered backends).
	bc := mustRun(t, s, Request{Source: addSrc, Engine: "bytecode"})
	if bc.Result != "42" || bc.Output != "sum 5\n" {
		t.Errorf("bytecode engine diverged: %+v", bc)
	}
	if !bc.Cached {
		t.Errorf("bytecode request missed the engine-independent program cache")
	}
}

func TestRunValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []Request{
		{},                                  // empty source
		{Source: addSrc, Engine: "quantum"}, // unknown engine
		{Source: addSrc, Parallel: true, Sched: "psychic"},
		{Source: addSrc, Args: []json.Number{json.Number("nope")}},
	}
	for i, req := range cases {
		_, err := s.Run(context.Background(), req)
		if _, ok := err.(*RequestError); !ok {
			t.Errorf("case %d: err = %v, want *RequestError", i, err)
		}
	}
	if st := s.Stats(); st.Invalid != int64(len(cases)) {
		t.Errorf("Invalid = %d, want %d", st.Invalid, len(cases))
	}
	// A program that fails to parse is an executed (error) response,
	// not a request error — and the failure is cached.
	resp := mustRun(t, s, Request{Source: "function int main( {"})
	if resp.OK || !strings.Contains(resp.Error, "compile:") {
		t.Errorf("parse failure resp = %+v", resp)
	}
	resp = mustRun(t, s, Request{Source: "function int main( {"})
	if !resp.Cached {
		t.Errorf("repeated broken program should hit the negative cache")
	}
}

// TestCacheHitMissEviction pins the cache accounting: distinct sources
// miss, repeats hit, and capacity overflow evicts the LRU entry so a
// later repeat misses again.
func TestCacheHitMissEviction(t *testing.T) {
	s := newTestServer(t, Config{CacheEntries: 2, CacheShards: 1})
	srcs := make([]string, 3)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("%s\n// variant %d\n", addSrc, i)
	}
	mustRun(t, s, Request{Source: srcs[0]}) // miss
	mustRun(t, s, Request{Source: srcs[0]}) // hit
	mustRun(t, s, Request{Source: srcs[1]}) // miss (cache full now)
	mustRun(t, s, Request{Source: srcs[2]}) // miss, evicts srcs[0]
	st := s.Stats().Cache
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 || st.Compiles != 3 {
		t.Fatalf("after fill: %+v", st)
	}
	resp := mustRun(t, s, Request{Source: srcs[0]}) // miss again: was evicted
	if resp.Cached {
		t.Errorf("evicted program reported cached")
	}
	st = s.Stats().Cache
	if st.Misses != 4 || st.Evictions != 2 || st.Entries != 2 {
		t.Fatalf("after re-touch: %+v", st)
	}
}

// TestSingleflight: N concurrent cold requests for one source compile
// once — one miss, N-1 hits that wait on the in-flight build.
func TestSingleflight(t *testing.T) {
	s := newTestServer(t, Config{Workers: 8, QueueDepth: 64})
	src := addSrc + "\n// singleflight variant\n"
	before := interp.CompileCount()
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Run(context.Background(), Request{Source: src})
			if err == nil && !resp.OK {
				err = fmt.Errorf("resp not ok: %s", resp.Error)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := s.Stats().Cache
	if st.Misses != 1 || st.Compiles != 1 || st.Hits != n-1 {
		t.Fatalf("singleflight accounting: %+v", st)
	}
	if d := interp.CompileCount() - before; d != 1 {
		t.Errorf("closure code built %d times, want exactly 1", d)
	}
}

// TestCorpusCachedVsFresh: across the full testdata corpus, a cache-hit
// run is byte-identical (result, kind, output) to the cold run and to a
// direct interpreter reference run.
func TestCorpusCachedVsFresh(t *testing.T) {
	corpus, err := LoadCorpus(filepath.Join("..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{})
	for _, p := range corpus {
		cold := mustRun(t, s, Request{Source: p.Source})
		hot := mustRun(t, s, Request{Source: p.Source})
		if !cold.OK || !hot.OK {
			t.Fatalf("%s: cold/hot errors %q / %q", p.Name, cold.Error, hot.Error)
		}
		if cold.Cached || !hot.Cached {
			t.Errorf("%s: cached flags cold=%v hot=%v", p.Name, cold.Cached, hot.Cached)
		}
		if cold.Result != hot.Result || cold.Kind != hot.Kind || cold.Output != hot.Output {
			t.Errorf("%s: cached run diverged from fresh: %+v vs %+v", p.Name, cold, hot)
		}
		// Reference: a direct interpreter run outside the service.
		prog, err := lang.Parse(p.Source)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		v, _, err := interp.Run(prog, interp.Config{Output: &out}, "main")
		if err != nil {
			t.Fatalf("%s reference: %v", p.Name, err)
		}
		if hot.Result != v.String() || hot.Output != out.String() {
			t.Errorf("%s: served run diverged from direct run", p.Name)
		}
	}
}

// TestHotPathZeroCompileWork is the acceptance guard: once a program
// is resident, further requests do zero front-end work — no parses, no
// checks, no closure builds — observable as flat compile counters at
// both the serve and interp layers.
func TestHotPathZeroCompileWork(t *testing.T) {
	s := newTestServer(t, Config{})
	mustRun(t, s, Request{Source: addSrc}) // warm
	st0 := s.Stats().Cache
	c0 := interp.CompileCount()
	const hot = 50
	for i := 0; i < hot; i++ {
		resp := mustRun(t, s, Request{Source: addSrc})
		if !resp.OK || !resp.Cached {
			t.Fatalf("hot request %d: %+v", i, resp)
		}
	}
	st := s.Stats().Cache
	if st.Compiles != st0.Compiles || st.Misses != st0.Misses {
		t.Errorf("hot requests compiled: %+v vs %+v", st, st0)
	}
	if st.Hits != st0.Hits+hot {
		t.Errorf("hits %d, want %d", st.Hits, st0.Hits+hot)
	}
	if d := interp.CompileCount() - c0; d != 0 {
		t.Errorf("closure code rebuilt %d times on the hot path", d)
	}
}

// TestHotPathSurvivesCodeCacheChurn: serve-cache entries pin their
// closure code, so a hit does zero compile work even after interp's
// bounded per-program code cache has been churned past its limit by
// cold traffic (which evicts arbitrary entries, potentially including
// programs the serve LRU still holds).
func TestHotPathSurvivesCodeCacheChurn(t *testing.T) {
	s := newTestServer(t, Config{})
	if resp := mustRun(t, s, Request{Source: addSrc}); !resp.OK {
		t.Fatalf("warm: %+v", resp)
	}
	// Churn: compile 600 distinct throwaway programs straight through
	// interp's code cache (limit 512), guaranteeing eviction pressure.
	for i := 0; i < 600; i++ {
		prog, err := lang.Parse(fmt.Sprintf("function int main() { return %d; }", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := interp.Precompile(prog); err != nil {
			t.Fatal(err)
		}
	}
	c0 := interp.CompileCount()
	resp := mustRun(t, s, Request{Source: addSrc})
	if !resp.OK || !resp.Cached || resp.Result != "42" {
		t.Fatalf("post-churn hit: %+v", resp)
	}
	if d := interp.CompileCount() - c0; d != 0 {
		t.Errorf("cache hit recompiled %d times after code-cache churn", d)
	}
}

// scalePar is an auto-parallelizable program: the scale loop is
// approved by the dependence test, the reduction in total is not.
const scalePar = `
type OneWayList [X]
{ int data;
  OneWayList *next is uniquely forward along X;
};

function OneWayList * build(int n) {
  var OneWayList *head = NULL;
  var int i = n;
  while i > 0 {
    var OneWayList *node = new OneWayList;
    node->data = i;
    node->next = head;
    head = node;
    i = i - 1;
  }
  return head;
}

procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->data = p->data * c;
    p = p->next;
  }
}

function int total(OneWayList *head) {
  var int s = 0;
  var OneWayList *p = head;
  while p != NULL {
    s = s + p->data;
    p = p->next;
  }
  return s;
}

function int main() {
  var OneWayList *h = build(20);
  scale(h, 3);
  return total(h);
}
`

// TestAutoRun: an auto request runs the planner-transformed program,
// reproduces the serial result, and reports the plan — which loops
// were parallelized and why the rest were rejected.
func TestAutoRun(t *testing.T) {
	s := newTestServer(t, Config{})
	serial := mustRun(t, s, Request{Source: scalePar})
	if !serial.OK || serial.Result != "630" { // sum(1..20)*3
		t.Fatalf("serial: %+v", serial)
	}
	auto := mustRun(t, s, Request{Source: scalePar, Auto: true, PEs: 4, Width: 16})
	if !auto.OK || auto.Result != serial.Result || auto.Output != serial.Output {
		t.Fatalf("auto run diverged from serial: %+v", auto)
	}
	if auto.Cached {
		t.Errorf("first auto request reported cached")
	}
	if auto.Plan == nil {
		t.Fatalf("auto response lacks a plan")
	}
	if auto.Plan.Width != 16 || len(auto.Plan.Parallelized) != 1 {
		t.Fatalf("plan: %+v", auto.Plan)
	}
	if got := auto.Plan.Parallelized[0]; got.Fn != "scale" || got.Loop != 0 || got.Helper == "" {
		t.Errorf("parallelized entry: %+v", got)
	}
	var sawReduction bool
	for _, r := range auto.Plan.Rejected {
		if r.Fn == "total" && strings.Contains(r.Reason, "loop-carried") {
			sawReduction = true
		}
		if r.Reason == "" {
			t.Errorf("rejected loop without a reason: %+v", r)
		}
	}
	if !sawReduction {
		t.Errorf("plan does not explain the rejected reduction: %+v", auto.Plan.Rejected)
	}
	// The serial entry is still its own cache slot: a repeat serial
	// request hits, and a repeat auto request hits with the plan intact.
	if resp := mustRun(t, s, Request{Source: scalePar}); !resp.Cached || resp.Plan != nil {
		t.Errorf("serial repeat: cached=%v plan=%v", resp.Cached, resp.Plan)
	}
	again := mustRun(t, s, Request{Source: scalePar, Auto: true, PEs: 4, Width: 16})
	if !again.Cached || again.Plan == nil || again.Result != serial.Result {
		t.Errorf("auto repeat: %+v", again)
	}
}

// TestAutoValidation: width out of range and PEs beyond the cap are
// malformed, not executed.
func TestAutoValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	for i, req := range []Request{
		{Source: scalePar, Auto: true, Width: -1},
		{Source: scalePar, Auto: true, Width: 1 << 20},
		{Source: scalePar, Auto: true, PEs: 1 << 30},
		{Source: scalePar, Auto: true, Sched: "psychic"},
	} {
		if _, err := s.Run(context.Background(), req); err == nil {
			t.Errorf("case %d: accepted", i)
		} else if _, ok := err.(*RequestError); !ok {
			t.Errorf("case %d: err = %v, want *RequestError", i, err)
		}
	}
}

// TestAutoHotPathZeroCompileWork is the planner's acceptance guard:
// once an (auto, width) variant is resident, further auto requests do
// zero front-end work — no parses, no analysis, no planning, no
// closure builds — observable as flat compile counters at both the
// serve and interp layers.
func TestAutoHotPathZeroCompileWork(t *testing.T) {
	s := newTestServer(t, Config{})
	warm := mustRun(t, s, Request{Source: scalePar, Auto: true, PEs: 2})
	if !warm.OK || warm.Plan == nil {
		t.Fatalf("warm: %+v", warm)
	}
	st0 := s.Stats().Cache
	c0 := interp.CompileCount()
	const hot = 50
	for i := 0; i < hot; i++ {
		resp := mustRun(t, s, Request{Source: scalePar, Auto: true, PEs: 2})
		if !resp.OK || !resp.Cached || resp.Plan == nil {
			t.Fatalf("hot auto request %d: %+v", i, resp)
		}
	}
	st := s.Stats().Cache
	if st.Compiles != st0.Compiles || st.Misses != st0.Misses {
		t.Errorf("hot auto requests compiled: %+v vs %+v", st, st0)
	}
	if st.Hits != st0.Hits+hot {
		t.Errorf("hits %d, want %d", st.Hits, st0.Hits+hot)
	}
	if d := interp.CompileCount() - c0; d != 0 {
		t.Errorf("closure code rebuilt %d times on the auto hot path", d)
	}
}

// TestParallelPEsCap: a parallel request cannot ask for an unbounded
// worker-pool size — the one resource no other budget bounds.
func TestParallelPEsCap(t *testing.T) {
	s := newTestServer(t, Config{})
	_, err := s.Run(context.Background(), Request{Source: addSrc, Parallel: true, PEs: 1 << 30})
	if _, ok := err.(*RequestError); !ok {
		t.Fatalf("err = %v, want *RequestError", err)
	}
	resp := mustRun(t, s, Request{Source: addSrc, Parallel: true, PEs: 4, Sched: "cyclic"})
	if !resp.OK || resp.Result != "42" {
		t.Fatalf("parallel run: %+v", resp)
	}
}

// TestSandbox covers the per-request kill switches: wall-clock
// deadline, step budget, allocation budget, output budget.
func TestSandbox(t *testing.T) {
	t.Run("deadline", func(t *testing.T) {
		s := newTestServer(t, Config{MaxSteps: 1 << 40})
		resp := mustRun(t, s, Request{Source: spinSrc, Fn: "spin",
			Args: []json.Number{"4000000000"}, TimeoutMS: 50})
		if resp.OK || !strings.Contains(resp.Error, "run cancelled") {
			t.Errorf("deadline resp: %+v", resp)
		}
	})
	t.Run("steps", func(t *testing.T) {
		s := newTestServer(t, Config{MaxSteps: 1000})
		resp := mustRun(t, s, Request{Source: spinSrc, Fn: "spin",
			Args: []json.Number{"1000000"}})
		if resp.OK || !strings.Contains(resp.Error, "step limit exceeded") {
			t.Errorf("step resp: %+v", resp)
		}
	})
	t.Run("allocs", func(t *testing.T) {
		s := newTestServer(t, Config{MaxAllocs: 100})
		resp := mustRun(t, s, Request{Source: allocSrc, Fn: "boom",
			Args: []json.Number{"100000"}})
		if resp.OK || !strings.Contains(resp.Error, "allocation limit exceeded") {
			t.Errorf("alloc resp: %+v", resp)
		}
	})
	t.Run("output", func(t *testing.T) {
		s := newTestServer(t, Config{MaxOutputBytes: 64})
		resp := mustRun(t, s, Request{Source: addSrc + `
function int chatty(int n) {
  var int i = 0;
  while i < n {
    print("spam line number", i);
    i = i + 1;
  }
  return i;
}
`, Fn: "chatty", Args: []json.Number{"100000"}})
		if resp.OK || !strings.Contains(resp.Error, "output limit exceeded") {
			t.Errorf("output resp: %+v", resp)
		}
		if len(resp.Output) > 64 {
			t.Errorf("returned %d output bytes past the cap", len(resp.Output))
		}
	})
}

// slowRequest keeps a worker busy until its deadline: a spin far
// beyond the step budget with a short wall clock.
func slowRequest(timeoutMS int64) Request {
	return Request{Source: spinSrc, Fn: "spin",
		Args: []json.Number{"4000000000"}, TimeoutMS: timeoutMS}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionControl: with one worker and a queue of one, a third
// concurrent request is rejected with ErrBusy, not buffered.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, MaxSteps: 1 << 40})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s.Run(context.Background(), slowRequest(400)) }()
	waitFor(t, "worker busy", func() bool { return s.Stats().Queue.Running == 1 })
	go func() { defer wg.Done(); s.Run(context.Background(), slowRequest(400)) }()
	waitFor(t, "queue depth 1", func() bool { return s.Stats().Queue.Depth == 1 })
	_, err := s.Run(context.Background(), Request{Source: addSrc})
	if err != ErrBusy {
		t.Errorf("err = %v, want ErrBusy", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	wg.Wait()
}

// TestGracefulDrain: Close waits for queued and in-flight work, and
// later requests are refused with ErrDraining.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, MaxSteps: 1 << 40})
	var resp Response
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err = s.Run(context.Background(), slowRequest(200))
	}()
	waitFor(t, "worker busy", func() bool { return s.Stats().Queue.Running == 1 })
	s.Close()
	// When Close returns the job has executed; the submitting goroutine
	// just needs a beat to observe its done channel.
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatalf("Close returned while a request was still in flight")
	}
	if err != nil {
		t.Fatalf("in-flight request err: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "run cancelled") {
		t.Errorf("drained request should have hit its own deadline: %+v", resp)
	}
	if _, err := s.Run(context.Background(), Request{Source: addSrc}); err != ErrDraining {
		t.Errorf("post-drain err = %v, want ErrDraining", err)
	}
}

// TestHTTP drives the wire surface end to end.
func TestHTTP(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, status, _, err := postRun(context.Background(), ts.Client(), ts.URL, Request{Source: addSrc})
	if err != nil || status != http.StatusOK || !resp.OK || resp.Result != "42" {
		t.Fatalf("POST /run: %v %d %+v", err, status, resp)
	}

	r, err := ts.Client().Post(ts.URL+"/run", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", r.StatusCode)
	}

	r, err = ts.Client().Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", r.StatusCode)
	}

	st, err := fetchStats(context.Background(), ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests < 1 || st.Latency.Count < 1 {
		t.Errorf("stats: %+v", st)
	}

	r, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", r.StatusCode)
	}
}

// TestLoadConcurrency64 is the acceptance run: the load generator
// against the HTTP service at concurrency 64 over the testdata corpus,
// race-clean (CI runs -race), zero errors, ≥95% hot-phase hit rate.
func TestLoadConcurrency64(t *testing.T) {
	corpus, err := LoadCorpus(filepath.Join("..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 8, QueueDepth: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := RunLoad(context.Background(), LoadConfig{
		URL:         ts.URL,
		Corpus:      corpus,
		Concurrency: 64,
		Duration:    400 * time.Millisecond,
		ColdRatio:   0.02,
		Seed:        1,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("load run had %d errors (of %d requests)", res.Errors, res.Requests)
	}
	if res.Requests == 0 {
		t.Fatalf("load run made no requests")
	}
	if res.HotHitRate < 0.95 {
		t.Errorf("hot-phase hit rate %.3f, want >= 0.95", res.HotHitRate)
	}
	t.Logf("concurrency 64: %d req, %.0f rps, hit rate %.3f, p50 %dµs p99 %dµs",
		res.Requests, res.RPS, res.HotHitRate, res.P50US, res.P99US)
}

// TestLoadAutoMix: the generator's auto-rate mix against the HTTP
// service — parallel planner-transformed execution under concurrent
// load, zero errors, and the hot-path guarantee intact (the cold phase
// first-touches the auto variants, so hot auto requests hit).
func TestLoadAutoMix(t *testing.T) {
	corpus, err := LoadCorpus(filepath.Join("..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 8, QueueDepth: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := RunLoad(context.Background(), LoadConfig{
		URL:         ts.URL,
		Corpus:      corpus,
		Concurrency: 16,
		Duration:    400 * time.Millisecond,
		ColdRatio:   0.02,
		AutoRate:    0.3,
		Seed:        1,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("auto-mix load run had %d errors (of %d requests)", res.Errors, res.Requests)
	}
	if res.AutoRequests == 0 {
		t.Errorf("auto mix sent no auto requests (of %d)", res.Requests)
	}
	if res.HotHitRate < 0.95 {
		t.Errorf("hot-phase hit rate %.3f, want >= 0.95", res.HotHitRate)
	}
	t.Logf("auto mix: %d req (%d auto), %.0f rps, hit rate %.3f",
		res.Requests, res.AutoRequests, res.RPS, res.HotHitRate)
}

// TestLoadBytecodeMix: the generator's bytecode-rate mix against the
// HTTP service — the flat VM under concurrent load, zero errors, and
// the hot-path guarantee intact without any extra cold phase (the
// program cache is engine-independent: one entry serves compiled and
// bytecode requests alike).
func TestLoadBytecodeMix(t *testing.T) {
	corpus, err := LoadCorpus(filepath.Join("..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 8, QueueDepth: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := RunLoad(context.Background(), LoadConfig{
		URL:          ts.URL,
		Corpus:       corpus,
		Concurrency:  16,
		Duration:     400 * time.Millisecond,
		ColdRatio:    0.02,
		BytecodeRate: 0.5,
		Seed:         1,
		Client:       ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("bytecode-mix load run had %d errors (of %d requests)", res.Errors, res.Requests)
	}
	if res.BytecodeRequests == 0 {
		t.Errorf("bytecode mix sent no bytecode requests (of %d)", res.Requests)
	}
	if res.HotHitRate < 0.95 {
		t.Errorf("hot-phase hit rate %.3f, want >= 0.95 (bytecode requests must share cache entries)", res.HotHitRate)
	}
	t.Logf("bytecode mix: %d req (%d bytecode), %.0f rps, hit rate %.3f",
		res.Requests, res.BytecodeRequests, res.RPS, res.HotHitRate)
}

// BenchmarkServeHot measures the cache-hit request path end to end
// (no HTTP): admission, cache lookup, sandboxed execution.
func BenchmarkServeHot(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	req := Request{Source: addSrc}
	if resp, err := s.Run(context.Background(), req); err != nil || !resp.OK {
		b.Fatalf("warm: %v %+v", err, resp)
	}
	c0 := interp.CompileCount()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Run(context.Background(), req)
		if err != nil || !resp.OK {
			b.Fatal(err, resp.Error)
		}
	}
	b.StopTimer()
	if d := interp.CompileCount() - c0; d != 0 {
		b.Fatalf("hot benchmark compiled %d times", d)
	}
}
