// The consistent-hash ring behind the fleet router: program content
// keys map onto backends through a ring of virtual nodes, so each
// program's compiled (and auto-planned) variants live on exactly one
// replica's cache — cache-affinity sharding with no duplicate compiles
// fleet-wide. The ring is built once over the *configured* backend
// set; membership changes (a replica going unhealthy, or coming back)
// are expressed at lookup time by the caller's acceptance predicate,
// which preserves the minimal-disruption property: when a backend
// drops out, only the keys it owned move — each to the next surviving
// point on the ring — and when it returns, exactly those keys move
// back.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultRingReplicas is the virtual-node count per backend. Balance
// tightens as 1/√replicas: at 512 points per backend the measured key
// share stays within 15% of uniform for fleets of 3–16 backends
// (TestRingBalance pins it). Build cost is replicas×backends hashes +
// one sort, paid once at router start; lookups stay O(log points).
const defaultRingReplicas = 512

type ringPoint struct {
	hash    uint64
	backend string
}

// hashRing maps 64-bit key hashes onto backend names. Immutable after
// newHashRing, so lookups need no lock.
type hashRing struct {
	points []ringPoint // ascending by hash
}

// ringHash positions both virtual nodes and keys on the ring. SHA-256
// rather than a seeded fast hash so placement is stable across
// processes and restarts — the router and every test agree on who owns
// which key without coordination.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// sourceKey is the routing key of a request: the content hash of the
// program source alone. Variant dimensions (fn, args, engine, auto,
// width) deliberately do not participate — every variant of one
// program must land on the same replica, or the same cache entry would
// be compiled on as many backends as there are argument patterns.
func sourceKey(source string) uint64 { return ringHash(source) }

func newHashRing(backends []string, replicas int) *hashRing {
	if replicas <= 0 {
		replicas = defaultRingReplicas
	}
	r := &hashRing{points: make([]ringPoint, 0, replicas*len(backends))}
	for _, b := range backends {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{ringHash(fmt.Sprintf("%s#%d", b, i)), b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// owner returns the backend owning hash h among those accepted by ok
// (nil accepts all): the first acceptable point at or after h, wrapping
// at the top. Walking the fixed ring — instead of rebuilding it from
// the live member set — is what bounds rehash on membership change to
// exactly the departed (or returned) backend's arcs.
func (r *hashRing) owner(h uint64, ok func(string) bool) string {
	n := len(r.points)
	if n == 0 {
		return ""
	}
	i := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for j := 0; j < n; j++ {
		p := r.points[(i+j)%n]
		if ok == nil || ok(p.backend) {
			return p.backend
		}
	}
	return ""
}
