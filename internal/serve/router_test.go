package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fleetBackend is one replica in a test fleet: a real Server behind a
// real HTTP listener.
type fleetBackend struct {
	s  *Server
	ts *httptest.Server
}

// kill takes the backend off the network abruptly: live connections
// are severed (proxied requests in flight see a transport error), then
// the process drains.
func (b *fleetBackend) kill() {
	b.ts.CloseClientConnections()
	b.ts.Close()
	b.s.Close()
}

func startFleet(t *testing.T, n int, cfg Config) ([]*fleetBackend, []string) {
	t.Helper()
	fleet := make([]*fleetBackend, n)
	urls := make([]string, n)
	for i := range fleet {
		s := New(cfg)
		ts := httptest.NewServer(s.Handler())
		fleet[i] = &fleetBackend{s: s, ts: ts}
		urls[i] = ts.URL
		t.Cleanup(func() { ts.Close(); s.Close() })
	}
	return fleet, urls
}

func newTestRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func routerCorpus(t *testing.T) []Program {
	t.Helper()
	corpus, err := LoadCorpus(filepath.Join("..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

// TestRouterNoDuplicateCompiles is the fleet's acceptance guard: with
// every corpus program requested repeatedly through the router — as
// serial, bytecode, and auto variants — the fleet-wide compile count
// equals the unique-variant count. Consistent hashing on the source
// content key means each variant lives on exactly one replica; no
// backend ever compiles a program another backend already owns.
func TestRouterNoDuplicateCompiles(t *testing.T) {
	fleet, urls := startFleet(t, 3, Config{})
	r := newTestRouter(t, RouterConfig{Backends: urls, HealthInterval: 10 * time.Second})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	corpus := routerCorpus(t)
	for round := 0; round < 3; round++ {
		for _, p := range corpus {
			for _, req := range []Request{
				{Source: p.Source},
				{Source: p.Source, Engine: "bytecode"},
				{Source: p.Source, Auto: true, PEs: 2},
			} {
				resp, status, _, err := postRun(context.Background(), ts.Client(), ts.URL, req)
				if err != nil || status != http.StatusOK || !resp.OK {
					t.Fatalf("%s round %d: %v %d %+v", p.Name, round, err, status, resp)
				}
				if round > 0 && !resp.Cached {
					t.Errorf("%s round %d: repeat request missed its replica's cache", p.Name, round)
				}
			}
		}
	}

	// Serial+bytecode share one cache entry per program; auto adds one.
	wantVariants := 2 * len(corpus)
	var compiles, entries int64
	var populated int
	for i, b := range fleet {
		cs := b.s.Stats().Cache
		compiles += cs.Compiles
		entries += int64(cs.Entries)
		if cs.Entries > 0 {
			populated++
		}
		t.Logf("backend %d: %d compiles, %d entries, %d hits", i, cs.Compiles, cs.Entries, cs.Hits)
	}
	if compiles != int64(wantVariants) {
		t.Errorf("fleet compiled %d times for %d unique variants — duplicate compiles", compiles, wantVariants)
	}
	if entries != int64(wantVariants) {
		t.Errorf("fleet holds %d cache entries for %d unique variants — a variant is resident twice", entries, wantVariants)
	}
	// Each program must live exactly where the ring says it lives. (A
	// fixed populated-backend floor is flaky: httptest ports randomize
	// ring ownership per run, and a small corpus occasionally hashes
	// entirely onto one replica.)
	owners := map[string]bool{}
	for _, p := range corpus {
		owners[r.ring.owner(sourceKey(p.Source), nil)] = true
	}
	if populated != len(owners) {
		t.Errorf("%d backends hold cache entries, ring assigns the corpus to %d — programs ran off their shard",
			populated, len(owners))
	}

	// The router's aggregated /stats reports the same fleet-wide view a
	// single backend would, so loadgen's hit-rate math works unchanged.
	agg, err := fetchStats(context.Background(), ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Cache.Compiles != compiles {
		t.Errorf("router /stats aggregates %d compiles, backends report %d", agg.Cache.Compiles, compiles)
	}
	if agg.Cache.Hits == 0 {
		t.Errorf("router /stats aggregated no cache hits across %d hot requests", 3*3*len(corpus))
	}
}

// TestRouterVsDirectDifferential: for the full corpus, serial and auto
// responses through the router are byte-identical to a single-process
// server — the fleet changes where programs run, never what they
// compute.
func TestRouterVsDirectDifferential(t *testing.T) {
	_, urls := startFleet(t, 3, Config{})
	r := newTestRouter(t, RouterConfig{Backends: urls, HealthInterval: 10 * time.Second})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	direct := newTestServer(t, Config{})

	assertFleetMatchesDirect(t, ts, direct, routerCorpus(t))
}

func assertFleetMatchesDirect(t *testing.T, ts *httptest.Server, direct *Server, corpus []Program) {
	t.Helper()
	for _, p := range corpus {
		for _, req := range []Request{
			{Source: p.Source},
			{Source: p.Source, Auto: true, PEs: 2, Width: 8},
		} {
			want := mustRun(t, direct, req)
			got, status, _, err := postRun(context.Background(), ts.Client(), ts.URL, req)
			if err != nil || status != http.StatusOK {
				t.Fatalf("%s (auto=%v): %v %d", p.Name, req.Auto, err, status)
			}
			if got.OK != want.OK || got.Result != want.Result || got.Kind != want.Kind || got.Output != want.Output {
				t.Errorf("%s (auto=%v): router diverged from direct:\n got %+v\nwant %+v",
					p.Name, req.Auto, got, want)
			}
		}
	}
}

// TestRouterFaultInjection kills one of three backends mid-load and
// asserts the fleet contract: the router rehashes the dead replica's
// keys onto survivors (bounded rehash — the ring is fixed, only its
// arcs move), the client-visible error rate stays within budget
// (transport failures are retried on the next owner), and after the
// dust settles the full corpus still answers byte-identically to a
// single-process server.
func TestRouterFaultInjection(t *testing.T) {
	fleet, urls := startFleet(t, 3, Config{})
	r := newTestRouter(t, RouterConfig{Backends: urls, HealthInterval: 50 * time.Millisecond})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	corpus := routerCorpus(t)

	// Warm every replica so the kill hits a working fleet.
	for _, p := range corpus {
		if resp, status, _, err := postRun(context.Background(), ts.Client(), ts.URL, Request{Source: p.Source}); err != nil || status != 200 || !resp.OK {
			t.Fatalf("warm %s: %v %d %+v", p.Name, err, status, resp)
		}
	}

	const workers = 8
	var requests, failures atomic.Int64
	lctx, cancel := context.WithTimeout(context.Background(), 700*time.Millisecond)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; lctx.Err() == nil; i++ {
				p := corpus[(w+i)%len(corpus)]
				resp, status, _, err := postRun(lctx, ts.Client(), ts.URL, Request{Source: p.Source})
				if lctx.Err() != nil && err != nil {
					return // cut off by the phase deadline, not a service error
				}
				requests.Add(1)
				if err != nil || status != http.StatusOK || !resp.OK {
					failures.Add(1)
				}
			}
		}(w)
	}
	// Kill the backend that owns corpus[0]: the workers request it
	// continuously, so the kill is guaranteed to be observed on the
	// request path. (A fixed victim index is flaky — httptest ports
	// randomize ring ownership per run, and a victim owning no corpus
	// keys makes its death invisible to the load.)
	victim := 0
	ownerURL := r.ring.owner(sourceKey(corpus[0].Source), nil)
	for i, u := range urls {
		if strings.TrimRight(u, "/") == ownerURL {
			victim = i
		}
	}
	time.Sleep(200 * time.Millisecond)
	fleet[victim].kill()
	wg.Wait()

	req := requests.Load()
	fail := failures.Load()
	if req == 0 {
		t.Fatal("load phase made no requests")
	}
	if budget := req / 50; fail > budget { // 2% error budget
		t.Errorf("%d of %d requests failed across the kill (budget %d)", fail, req, budget)
	}

	// The health loop notices the corpse, and the dead replica's keys
	// were retried onto survivors.
	waitFor(t, "victim backend marked down", func() bool {
		return !r.backends[strings.TrimRight(urls[victim], "/")].healthy.Load()
	})
	if r.retries.Load() == 0 {
		t.Errorf("no re-routes recorded — the kill was never observed on the request path")
	}
	st := r.Stats(context.Background())
	healthy := 0
	for _, b := range st.Backends {
		if b.Healthy {
			healthy++
		}
	}
	if healthy != 2 {
		t.Errorf("%d healthy backends after the kill, want 2 (%+v)", healthy, st.Backends)
	}

	// Post-recovery differential: every corpus program, serial and
	// auto, still matches single-process serve byte for byte.
	direct := newTestServer(t, Config{})
	assertFleetMatchesDirect(t, ts, direct, corpus)
	t.Logf("fault run: %d requests, %d failures, %d re-routes", req, fail, r.retries.Load())
}

// getJobView polls GET /result/{id}.
func getJobView(t *testing.T, client *http.Client, base, id string) (JobView, int) {
	t.Helper()
	resp, err := client.Get(base + "/result/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func submitJob(t *testing.T, client *http.Client, base string, req Request) JobView {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+"/submit", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/submit status %d", resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" {
		t.Fatalf("/submit returned no job id: %+v", v)
	}
	return v
}

// TestRouterAsyncJobs: the async API end to end — submit returns an
// id immediately, the job executes on its ring owner, and the result
// is the same Response a synchronous /run produces.
func TestRouterAsyncJobs(t *testing.T) {
	_, urls := startFleet(t, 2, Config{})
	r := newTestRouter(t, RouterConfig{Backends: urls, HealthInterval: 10 * time.Second})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	sync, status, _, err := postRun(context.Background(), ts.Client(), ts.URL, Request{Source: addSrc})
	if err != nil || status != 200 || !sync.OK {
		t.Fatalf("sync reference: %v %d %+v", err, status, sync)
	}

	job := submitJob(t, ts.Client(), ts.URL, Request{Source: addSrc})
	var final JobView
	waitFor(t, "job done", func() bool {
		v, code := getJobView(t, ts.Client(), ts.URL, job.ID)
		if code != http.StatusOK {
			t.Fatalf("/result/%s status %d", job.ID, code)
		}
		final = v
		return v.State == JobDone || v.State == JobFailed
	})
	if final.State != JobDone || final.Status != http.StatusOK || final.Attempts != 1 {
		t.Fatalf("job ended %+v, want done in one attempt", final)
	}
	var resp Response
	if err := json.Unmarshal(final.Response, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Result != sync.Result || resp.Output != sync.Output {
		t.Errorf("async response %+v diverged from sync %+v", resp, sync)
	}

	if _, code := getJobView(t, ts.Client(), ts.URL, "job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", code)
	}
	if resp, err := ts.Client().Get(ts.URL + "/submit"); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /submit: status %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// sourceOwnedBy crafts a program whose content key the ring assigns to
// the given backend — how tests aim requests at a specific replica.
func sourceOwnedBy(t *testing.T, r *Router, owner string) string {
	t.Helper()
	owner = strings.TrimRight(owner, "/")
	for i := 0; i < 100000; i++ {
		src := fmt.Sprintf("function int main() { return %d; }", i)
		if r.ring.owner(sourceKey(src), nil) == owner {
			return src
		}
	}
	t.Fatalf("no source found owned by %s", owner)
	return ""
}

// TestRouterAsyncRetryOnBackendFailure: a job aimed at a dead replica
// burns its first attempt on the transport failure, is requeued, and
// completes on a survivor — retry-on-backend-failure observable in the
// ledger. Retries: -1 disables in-request failover so the requeue path
// itself is exercised.
func TestRouterAsyncRetryOnBackendFailure(t *testing.T) {
	fleet, urls := startFleet(t, 2, Config{})
	r := newTestRouter(t, RouterConfig{
		Backends:       urls,
		HealthInterval: 10 * time.Second, // only the request path may mark backends down
		Retries:        -1,
		AsyncWorkers:   1,
	})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	src := sourceOwnedBy(t, r, urls[0])
	fleet[0].kill()

	job := submitJob(t, ts.Client(), ts.URL, Request{Source: src})
	var final JobView
	waitFor(t, "job done after retry", func() bool {
		final, _ = getJobView(t, ts.Client(), ts.URL, job.ID)
		return final.State == JobDone || final.State == JobFailed
	})
	if final.State != JobDone {
		t.Fatalf("job ended %+v, want done on the surviving backend", final)
	}
	if final.Attempts != 2 {
		t.Errorf("job took %d attempts, want 2 (fail on the corpse, complete on the survivor)", final.Attempts)
	}
	if js := r.jobs.stats(); js.Requeues != 1 || js.Done != 1 || js.Failed != 0 {
		t.Errorf("ledger %+v, want exactly one requeue and one completion", js)
	}
	var resp Response
	if err := json.Unmarshal(final.Response, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Errorf("retried job's response not ok: %+v", resp)
	}
}

// TestRouterDrainLedger is the drain guard: Close with async jobs in
// every phase — done, mid-attempt, still queued — loses and duplicates
// nothing. In-flight attempts are cancelled and requeued (never
// failed), queued jobs stay queued, completed results stay recorded
// exactly once; the job-id ledger accounts for every submission.
func TestRouterDrainLedger(t *testing.T) {
	_, urls := startFleet(t, 1, Config{Workers: 2, QueueDepth: 16, MaxSteps: 1 << 40})
	r := newTestRouter(t, RouterConfig{Backends: urls, HealthInterval: 10 * time.Second, AsyncWorkers: 2})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	// Phase 1: two fast jobs complete before the drain.
	ids := []string{}
	for i := 0; i < 2; i++ {
		job := submitJob(t, ts.Client(), ts.URL, Request{Source: addSrc})
		ids = append(ids, job.ID)
		waitFor(t, "fast job done", func() bool {
			v, _ := getJobView(t, ts.Client(), ts.URL, job.ID)
			return v.State == JobDone
		})
	}
	// Phase 2: four slow jobs — two go in flight (one per worker), two
	// stay queued behind them.
	for i := 0; i < 4; i++ {
		ids = append(ids, submitJob(t, ts.Client(), ts.URL, slowRequest(400)).ID)
	}
	waitFor(t, "two jobs mid-attempt", func() bool { return r.jobs.stats().Running == 2 })

	r.Close()

	if len(ids) != 6 {
		t.Fatalf("submitted %d ids, want 6", len(ids))
	}
	seen := map[string]bool{}
	counts := map[string]int{}
	r.jobs.mu.Lock()
	for _, id := range ids {
		j, ok := r.jobs.jobs[id]
		if !ok {
			t.Errorf("job %s lost from the ledger", id)
			continue
		}
		if seen[id] {
			t.Errorf("job id %s recorded twice", id)
		}
		seen[id] = true
		counts[j.state]++
		if j.completions > 1 {
			t.Errorf("job %s completed %d times", id, j.completions)
		}
		if j.state == JobQueued && j.completions != 0 {
			t.Errorf("requeued job %s carries a recorded completion", id)
		}
	}
	r.jobs.mu.Unlock()
	if counts[JobDone] != 2 || counts[JobQueued] != 4 || counts[JobFailed] != 0 || counts[JobRunning] != 0 {
		t.Errorf("post-drain states %+v, want 2 done / 4 queued / none failed or running", counts)
	}
	if js := r.jobs.stats(); js.Requeues != 2 {
		t.Errorf("requeues = %d, want 2 (one per cancelled in-flight attempt)", js.Requeues)
	}

	// Drained router refuses new work with back-pressure headers.
	body, _ := json.Marshal(Request{Source: addSrc})
	resp, err := ts.Client().Post(ts.URL+"/submit", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("post-drain /submit: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestRouterEmbedded covers the in-process fleet: same sharding
// guarantees as the networked topology — byte-identical responses,
// no duplicate compiles, a working async path, aggregated stats —
// through the decode-once fast path instead of a proxied hop.
func TestRouterEmbedded(t *testing.T) {
	replicas := make([]*Server, 3)
	for i := range replicas {
		replicas[i] = New(Config{})
		t.Cleanup(replicas[i].Close)
	}
	r := newTestRouter(t, RouterConfig{Embedded: replicas, HealthInterval: 10 * time.Second})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	corpus := routerCorpus(t)

	direct := newTestServer(t, Config{})
	assertFleetMatchesDirect(t, ts, direct, corpus)

	// Two more hot rounds, then the compile audit.
	for round := 0; round < 2; round++ {
		for _, p := range corpus {
			resp, status, _, err := postRun(context.Background(), ts.Client(), ts.URL, Request{Source: p.Source})
			if err != nil || status != http.StatusOK || !resp.Cached {
				t.Fatalf("%s: %v %d cached=%v", p.Name, err, status, resp.Cached)
			}
		}
	}
	wantVariants := 2 * len(corpus) // serial + auto entry per program (differential ran both)
	var compiles int64
	for _, s := range replicas {
		compiles += s.Stats().Cache.Compiles
	}
	if compiles != int64(wantVariants) {
		t.Errorf("embedded fleet compiled %d times for %d unique variants", compiles, wantVariants)
	}
	agg, err := fetchStats(context.Background(), ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Cache.Compiles != compiles {
		t.Errorf("embedded /stats aggregates %d compiles, replicas report %d", agg.Cache.Compiles, compiles)
	}

	// Async jobs run through the in-memory attempt path.
	job := submitJob(t, ts.Client(), ts.URL, Request{Source: addSrc})
	var final JobView
	waitFor(t, "embedded job done", func() bool {
		final, _ = getJobView(t, ts.Client(), ts.URL, job.ID)
		return final.State == JobDone || final.State == JobFailed
	})
	if final.State != JobDone || final.Status != http.StatusOK {
		t.Fatalf("embedded job ended %+v", final)
	}
	var resp Response
	if err := json.Unmarshal(final.Response, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Result != "42" {
		t.Errorf("embedded async response %+v", resp)
	}

	if _, err := NewRouter(RouterConfig{Embedded: replicas, Backends: []string{"http://x"}}); err == nil {
		t.Errorf("router accepted Embedded and Backends together")
	}
}

// TestRouterValidation: malformed bodies and empty sources are 400 at
// the router — they never reach a backend.
func TestRouterValidation(t *testing.T) {
	fleet, urls := startFleet(t, 1, Config{})
	r := newTestRouter(t, RouterConfig{Backends: urls, HealthInterval: 10 * time.Second})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	for _, body := range []string{"{", `{"source":""}`, `{"fn":"main"}`} {
		resp, err := ts.Client().Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if st := fleet[0].s.Stats(); st.Requests != 0 {
		t.Errorf("malformed requests reached the backend: %d", st.Requests)
	}
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Errorf("router with no backends built")
	}
	if _, err := NewRouter(RouterConfig{Backends: []string{"http://x", "http://x"}}); err == nil {
		t.Errorf("router with duplicate backends built")
	}
}
