// Tests for the observability surface: request traces (profile:true,
// sampling, /debug/traces), the parallel-efficiency report, the
// derived latency percentiles, and the Prometheus export — plus the
// overhead contract: with tracing off, the hot request path allocates
// exactly what it allocated before tracing existed.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// spanNames flattens a trace view's root span names in order.
func spanNames(v *obs.TraceView) []string {
	names := make([]string, len(v.Spans))
	for i, s := range v.Spans {
		names[i] = s.Name
	}
	return names
}

func findSpan(spans []obs.SpanView, name string) *obs.SpanView {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
	}
	return nil
}

// TestProfileTrace: "profile": true returns the span tree — admission,
// cache (with parse/plan/compile children on a miss, none on a hit),
// execute, merge — with durations that fit inside the trace wall.
func TestProfileTrace(t *testing.T) {
	s := newTestServer(t, Config{})

	miss := mustRun(t, s, Request{Source: addSrc, Profile: true})
	if !miss.OK || miss.Trace == nil {
		t.Fatalf("profiled miss: %+v", miss)
	}
	if miss.Trace.ID == "" {
		t.Errorf("trace has no ID")
	}
	got := spanNames(miss.Trace)
	want := []string{"admission", "cache", "execute", "merge"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("spans %v, want %v", got, want)
	}
	cacheSp := findSpan(miss.Trace.Spans, "cache")
	if cacheSp.Attrs["hit"] != "false" {
		t.Errorf("miss trace cache attrs = %v, want hit=false", cacheSp.Attrs)
	}
	for _, child := range []string{"parse", "compile"} {
		if findSpan(cacheSp.Children, child) == nil {
			t.Errorf("miss trace cache span lacks %q child: %+v", child, cacheSp.Children)
		}
	}
	for _, sp := range miss.Trace.Spans {
		if sp.StartUS < 0 || sp.DurUS < 0 || sp.StartUS+sp.DurUS > miss.Trace.WallUS+1 {
			t.Errorf("span %s [%d +%d] escapes trace wall %d", sp.Name, sp.StartUS, sp.DurUS, miss.Trace.WallUS)
		}
	}

	hit := mustRun(t, s, Request{Source: addSrc, Profile: true})
	if !hit.Cached || hit.Trace == nil {
		t.Fatalf("profiled hit: %+v", hit)
	}
	cacheSp = findSpan(hit.Trace.Spans, "cache")
	if cacheSp.Attrs["hit"] != "true" || len(cacheSp.Children) != 0 {
		t.Errorf("hit trace cache span = %+v, want hit=true and no build children", cacheSp)
	}

	// An unprofiled request on an unsampled server returns no trace.
	if plain := mustRun(t, s, Request{Source: addSrc}); plain.Trace != nil {
		t.Errorf("unprofiled request returned a trace")
	}
}

// TestProfileEfficiency: a profiled auto run returns the per-forall
// efficiency report, keyed to the plan's parallelized loop by source
// line and attributed to its function.
func TestProfileEfficiency(t *testing.T) {
	s := newTestServer(t, Config{})
	resp := mustRun(t, s, Request{Source: scalePar, Auto: true, PEs: 2, Width: 8, Profile: true})
	if !resp.OK || resp.Plan == nil || resp.Trace == nil {
		t.Fatalf("profiled auto run: %+v", resp)
	}
	if len(resp.Efficiency) == 0 {
		t.Fatalf("profiled auto run returned no efficiency report")
	}
	planned := resp.Plan.Parallelized[0]
	site := resp.Efficiency[0]
	if site.Line != planned.Line {
		t.Errorf("efficiency site line %d, plan parallelized line %d", site.Line, planned.Line)
	}
	if site.Fn != planned.Fn {
		t.Errorf("efficiency site fn %q, plan fn %q", site.Fn, planned.Fn)
	}
	if site.PEs != 2 {
		t.Errorf("site ran on %d PEs, want 2", site.PEs)
	}
	if site.Tasks == 0 || site.Barriers == 0 {
		t.Errorf("empty site counters: %+v", site)
	}
	if site.BusyPct < 0 || site.BusyPct > 100 || site.WaitPct < 0 || site.WaitPct > 100 {
		t.Errorf("shares out of range: busy %.1f wait %.1f", site.BusyPct, site.WaitPct)
	}
	if site.Imbalance < 1 {
		t.Errorf("imbalance %.2f < 1 (busiest/mean cannot undercut the mean)", site.Imbalance)
	}
	// Unprofiled requests never pay for the report.
	if again := mustRun(t, s, Request{Source: scalePar, Auto: true, PEs: 2, Width: 8}); len(again.Efficiency) != 0 {
		t.Errorf("unprofiled auto run returned an efficiency report")
	}
}

// TestTraceSampling: with TraceRate 1 every request lands in the
// /debug/traces ring without any response carrying a trace; with the
// rate unset the ring stays empty.
func TestTraceSampling(t *testing.T) {
	s := newTestServer(t, Config{TraceRate: 1, TraceBuffer: 8})
	for i := 0; i < 5; i++ {
		if resp := mustRun(t, s, Request{Source: addSrc}); resp.Trace != nil {
			t.Fatalf("sampled (not profiled) request %d returned a trace in the response", i)
		}
	}
	if n := s.traces.Len(); n != 5 {
		t.Errorf("ring holds %d traces after 5 sampled requests, want 5", n)
	}

	off := newTestServer(t, Config{})
	for i := 0; i < 5; i++ {
		mustRun(t, off, Request{Source: addSrc})
	}
	if n := off.traces.Len(); n != 0 {
		t.Errorf("ring holds %d traces with sampling off, want 0", n)
	}
}

// TestServeHotNoTraceAllocs pins the overhead contract of ISSUE 9's
// tracing: with sampling off and no profile flag, the trace decision
// is a field compare and a nil check — the hot cache-hit request path
// allocates the same small constant it allocated before tracing
// existed. The bound has headroom over the measured baseline (job,
// done channel, response envelope, interpreter entry); what it
// catches is a per-request Trace, Span, or time.Now-into-heap sneaking
// onto the untraced path.
func TestServeHotNoTraceAllocs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	req := Request{Source: addSrc}
	if resp := mustRun(t, s, req); !resp.OK {
		t.Fatalf("warm: %+v", resp)
	}
	allocs := testing.AllocsPerRun(50, func() {
		resp, err := s.Run(context.Background(), req)
		if err != nil || !resp.OK {
			t.Fatal(err, resp.Error)
		}
	})
	if allocs > 40 {
		t.Errorf("untraced hot request allocates %.0f objects, want ≤ 40 (tracing must stay off the hot path)", allocs)
	}
}

// TestMetricsEndpoint: GET /metrics renders the same snapshot /stats
// serves, in Prometheus text format — counters match, the latency
// histogram is cumulative and ends in an +Inf bucket equal to the
// sample count, and the runtime gauges are present.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		if resp, status, _, err := postRun(context.Background(), ts.Client(), ts.URL, Request{Source: addSrc}); err != nil || status != http.StatusOK || !resp.OK {
			t.Fatalf("request %d: %v %d %+v", i, err, status, resp)
		}
	}

	r, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != promContentType {
		t.Errorf("content type %q, want %q", ct, promContentType)
	}
	text := string(body)
	st := s.Stats()

	wantLines := map[string]float64{
		"psl_requests_total":                float64(st.Requests),
		"psl_cache_hits_total":              float64(st.Cache.Hits),
		"psl_cache_entries":                 float64(st.Cache.Entries),
		"psl_queue_workers":                 3,
		"psl_pes":                           3,
		"psl_gomaxprocs":                    float64(st.Runtime.GoMaxProcs),
		"psl_request_latency_seconds_count": float64(st.Latency.Count),
	}
	for name, want := range wantLines {
		got, ok := promValue(text, name)
		if !ok {
			t.Errorf("/metrics lacks %s", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if inf, ok := promValue(text, `psl_request_latency_seconds_bucket{le="+Inf"}`); !ok || inf != float64(st.Latency.Count) {
		t.Errorf(`+Inf bucket = %v (present %v), want %d`, inf, ok, st.Latency.Count)
	}
	// Cumulative: bucket values never decrease down the bound list.
	prev := -1.0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `psl_request_latency_seconds_bucket{le="`) {
			continue
		}
		f := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscan(f[len(f)-1], &v); err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("histogram not cumulative at %q (prev %v)", line, prev)
		}
		prev = v
	}
}

// promValue finds "name value" (or "name{labels} value") in exposition
// text.
func promValue(text, name string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name)
		if !ok || !strings.HasPrefix(rest, " ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscan(strings.TrimSpace(rest), &v); err == nil {
			return v, true
		}
	}
	return 0, false
}

// TestDebugTracesEndpoint: traced requests land in the bounded ring
// GET /debug/traces serves, newest first, and a propagated header ID
// is adopted verbatim.
func TestDebugTracesEndpoint(t *testing.T) {
	s := newTestServer(t, Config{TraceBuffer: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(Request{Source: addSrc, Profile: true})
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(string(body)))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(obs.TraceHeader, "cafe0123cafe0123")
	r, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if resp.Trace == nil || resp.Trace.ID != "cafe0123cafe0123" {
		t.Fatalf("propagated trace ID not adopted: %+v", resp.Trace)
	}

	r, err = ts.Client().Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var views []obs.TraceView
	if err := json.NewDecoder(r.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(views) != 1 || views[0].ID != "cafe0123cafe0123" {
		t.Fatalf("/debug/traces = %+v, want the one traced request", views)
	}
	if len(views[0].Spans) == 0 {
		t.Errorf("ring trace has no spans")
	}
}

// TestHistogramPercentileBracket feeds a known latency population and
// asserts the histogram-derived percentiles land inside the bucket
// that holds the exact (sorted-sample) percentile — the resolution
// contract LatencyStats documents. The exact oracle is loadgen's
// percentile(), the same function the client-side report uses.
func TestHistogramPercentileBracket(t *testing.T) {
	h := newHistogram()
	var samples []int64
	add := func(us int64, n int) {
		for i := 0; i < n; i++ {
			samples = append(samples, us)
			h.observe(time.Duration(us) * time.Microsecond)
		}
	}
	add(80, 100)    // bucket ≤100
	add(300, 60)    // bucket ≤500
	add(3_000, 30)  // bucket ≤5000
	add(40_000, 10) // bucket ≤50000
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })

	st := h.snapshot()
	for _, tc := range []struct {
		q       float64
		derived int64
	}{{0.50, st.P50US}, {0.95, st.P95US}, {0.99, st.P99US}} {
		exact := percentile(samples, tc.q)
		lo, hi := bucketBounds(exact)
		if tc.derived < lo || tc.derived > hi {
			t.Errorf("p%d = %dµs outside bucket (%d, %d] holding exact %dµs",
				int(tc.q*100), tc.derived, lo, hi, exact)
		}
	}
	if st.SumUS != 100*80+60*300+30*3_000+10*40_000 {
		t.Errorf("sum %dµs", st.SumUS)
	}
}

// bucketBounds returns the (lo, hi] latency bucket containing us.
func bucketBounds(us int64) (int64, int64) {
	var lo int64
	for _, b := range latencyBoundsUS {
		if us <= b {
			return lo, b
		}
		lo = b
	}
	return lo, 1 << 62
}

// TestHistogramEdges: a sample exactly on a bucket bound counts into
// that bucket (bounds are ≤), and an over-range sample lands in the
// overflow bucket (LeUS 0), where percentiles saturate at the last
// finite bound rather than invent precision.
func TestHistogramEdges(t *testing.T) {
	h := newHistogram()
	h.observe(100 * time.Microsecond) // exactly the first bound
	st := h.snapshot()
	if len(st.Buckets) != 1 || st.Buckets[0].LeUS != 100 || st.Buckets[0].Count != 1 {
		t.Fatalf("on-bound sample: %+v, want one count in le_us=100", st.Buckets)
	}

	h = newHistogram()
	h.observe(6 * time.Second) // beyond the 5s last bound
	st = h.snapshot()
	if len(st.Buckets) != 1 || st.Buckets[0].LeUS != 0 || st.Buckets[0].Count != 1 {
		t.Fatalf("overflow sample: %+v, want one count in the le_us=0 overflow bucket", st.Buckets)
	}
	last := latencyBoundsUS[len(latencyBoundsUS)-1]
	if st.P50US != last || st.P99US != last {
		t.Errorf("overflow percentiles p50=%d p99=%d, want both saturated at %d", st.P50US, st.P99US, last)
	}

	if st := newHistogram().snapshot(); st.P50US != 0 || st.Count != 0 {
		t.Errorf("empty histogram: %+v", st)
	}
}

// TestHistogramConcurrent hammers observe against snapshot under the
// race detector: snapshots taken mid-stream must stay internally
// consistent (never more bucketed samples than observed ones).
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	const (
		writers = 4
		perW    = 2000
	)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := h.snapshot()
			var bucketed int64
			for _, b := range st.Buckets {
				bucketed += b.Count
			}
			if bucketed > writers*perW {
				t.Errorf("snapshot bucketed %d samples of max %d", bucketed, writers*perW)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.observe(time.Duration(50+w*200+i%7000) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	st := h.snapshot()
	if st.Count != writers*perW {
		t.Errorf("final count %d, want %d", st.Count, writers*perW)
	}
	var bucketed int64
	for _, b := range st.Buckets {
		bucketed += b.Count
	}
	if bucketed != st.Count {
		t.Errorf("final snapshot bucketed %d of %d samples", bucketed, st.Count)
	}
}

// TestRouterFailoverTrace kills the backend that owns a program, then
// sends a profiled request for it through the network router: the
// request fails over to the survivor, the response trace carries the
// router's trace ID (one logical trace across the fleet), and the
// router's own /debug/traces records both attempts — the dead
// backend's with the transport error, the survivor's without.
func TestRouterFailoverTrace(t *testing.T) {
	fleet, urls := startFleet(t, 2, Config{})
	r := newTestRouter(t, RouterConfig{Backends: urls, HealthInterval: 10 * time.Second, Retries: 1})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	ownerURL := r.ring.owner(sourceKey(addSrc), nil)
	victim, survivor := 0, 1
	if strings.TrimRight(urls[1], "/") == ownerURL {
		victim, survivor = 1, 0
	}
	fleet[victim].kill()

	resp, status, _, err := postRun(context.Background(), ts.Client(), ts.URL, Request{Source: addSrc, Profile: true})
	if err != nil || status != http.StatusOK || !resp.OK {
		t.Fatalf("failover run: %v %d %+v", err, status, resp)
	}
	if resp.Trace == nil || resp.Trace.ID == "" {
		t.Fatalf("profiled failover response has no trace: %+v", resp)
	}

	views := r.traces.Snapshot()
	if len(views) != 1 {
		t.Fatalf("router ring holds %d traces, want 1", len(views))
	}
	rt := views[0]
	if rt.ID != resp.Trace.ID {
		t.Errorf("router trace ID %s, backend trace ID %s — the failover broke propagation", rt.ID, resp.Trace.ID)
	}
	var attempts []obs.SpanView
	for _, sp := range rt.Spans {
		if sp.Name == "attempt" {
			attempts = append(attempts, sp)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("router trace records %d attempts, want 2 (dead owner + survivor): %+v", len(attempts), rt.Spans)
	}
	if attempts[0].Attrs["error"] == "" {
		t.Errorf("first attempt (dead backend) has no error attr: %+v", attempts[0].Attrs)
	}
	if attempts[1].Attrs["error"] != "" {
		t.Errorf("second attempt (survivor) recorded an error: %+v", attempts[1].Attrs)
	}
	if a, b := attempts[0].Attrs["backend"], attempts[1].Attrs["backend"]; a == b || b != strings.TrimRight(urls[survivor], "/") {
		t.Errorf("attempt backends %q → %q, want distinct ending at the survivor %q", a, b, urls[survivor])
	}
	if r.retries.Load() == 0 {
		t.Errorf("failover did not count a retry")
	}
}

// TestRouterMetricsEndpoint: the router's /metrics renders its
// aggregate stats with per-backend labeled series.
func TestRouterMetricsEndpoint(t *testing.T) {
	_, urls := startFleet(t, 2, Config{})
	r := newTestRouter(t, RouterConfig{Backends: urls, HealthInterval: 10 * time.Second})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if resp, status, _, err := postRun(context.Background(), ts.Client(), ts.URL, Request{Source: addSrc}); err != nil || status != http.StatusOK || !resp.OK {
			t.Fatalf("request %d: %v %d %+v", i, err, status, resp)
		}
	}

	hr, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); ct != promContentType {
		t.Errorf("content type %q", ct)
	}
	text := string(body)
	if v, ok := promValue(text, "psl_router_requests_total"); !ok || v != 3 {
		t.Errorf("psl_router_requests_total = %v (present %v), want 3", v, ok)
	}
	for _, u := range urls {
		series := `psl_router_backend_healthy{backend="` + strings.TrimRight(u, "/") + `"}`
		if v, ok := promValue(text, series); !ok || v != 1 {
			t.Errorf("%s = %v (present %v), want 1", series, v, ok)
		}
	}
	if _, ok := promValue(text, "psl_router_cache_compiles_total"); !ok {
		t.Errorf("/metrics lacks the fleet-aggregate cache series")
	}
}

// TestLoadTraceMix: the generator's trace-rate mix — profiled requests
// under concurrent load, every one answered with a span tree (a
// missing trace counts as an error and fails the run).
func TestLoadTraceMix(t *testing.T) {
	corpus, err := LoadCorpus(filepath.Join("..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 8, QueueDepth: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := RunLoad(context.Background(), LoadConfig{
		URL:         ts.URL,
		Corpus:      corpus,
		Concurrency: 16,
		Duration:    400 * time.Millisecond,
		ColdRatio:   0.02,
		TraceRate:   0.3,
		Seed:        1,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("trace-mix load run had %d errors (of %d requests)", res.Errors, res.Requests)
	}
	if res.ProfiledRequests == 0 {
		t.Errorf("trace mix sent no profiled requests (of %d)", res.Requests)
	}
	if res.HotHitRate < 0.95 {
		t.Errorf("hot-phase hit rate %.3f, want >= 0.95", res.HotHitRate)
	}
	t.Logf("trace mix: %d req (%d profiled), %.0f rps", res.Requests, res.ProfiledRequests, res.RPS)
}
