package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryAfterDelay(t *testing.T) {
	h := func(v string) http.Header {
		hdr := http.Header{}
		if v != "" {
			hdr.Set("Retry-After", v)
		}
		return hdr
	}
	fallback := 2 * time.Millisecond
	cases := []struct {
		value string
		want  time.Duration
	}{
		{"1", time.Second},
		{"0", 0},
		{"", fallback},
		{"soon", fallback},
		{"-3", fallback},
		{"9999", 5 * time.Second}, // capped
	}
	for _, c := range cases {
		if got := retryAfterDelay(h(c.value), fallback); got != c.want {
			t.Errorf("retryAfterDelay(%q) = %v, want %v", c.value, got, c.want)
		}
	}
}

// TestLoadgenHonorsRetryAfter pins the back-pressure contract from the
// client side: a service answering 503 with Retry-After: 1 sees each
// closed-loop worker back off for the advertised second instead of
// hammering — at most one rejected attempt per worker fits in a
// sub-second hot phase.
func TestLoadgenHonorsRetryAfter(t *testing.T) {
	var runs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Stats{})
	})
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		// The cold phase's single first-touch succeeds; every hot-phase
		// attempt is told the service is full, try again in a second.
		if runs.Add(1) == 1 {
			writeJSON(w, http.StatusOK, Response{OK: true, Result: "42"})
			return
		}
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: ErrBusy.Error()})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	const workers = 4
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:         ts.URL,
		Corpus:      []Program{{Name: "add.psl", Source: addSrc}},
		Concurrency: workers,
		Duration:    400 * time.Millisecond,
		Seed:        1,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 0 || res.Errors != 0 {
		t.Errorf("only rejections were on offer, got %d requests / %d errors", res.Requests, res.Errors)
	}
	if res.Rejected == 0 {
		t.Fatalf("no rejected attempts recorded — the 503 path never ran")
	}
	// One back-off per worker spans the whole phase; without honoring
	// Retry-After the old 2ms loop would record hundreds of attempts.
	if res.Rejected > workers {
		t.Errorf("%d rejected attempts from %d workers in 400ms — Retry-After not honored", res.Rejected, workers)
	}
}

// TestLoadResultJSONShape guards the BENCH_serve.json row schema: the
// fleet annotation serializes as "backends" and is omitted for direct
// single-process rows, so pre-fleet rows keep their exact shape.
func TestLoadResultJSONShape(t *testing.T) {
	direct, err := json.Marshal(LoadResult{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(direct) != "" && jsonHasField(t, direct, "backends") {
		t.Errorf("direct row serialized a backends field: %s", direct)
	}
	fleet, err := json.Marshal(LoadResult{Concurrency: 1, Backends: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !jsonHasField(t, fleet, "backends") {
		t.Errorf("fleet row lost its backends field: %s", fleet)
	}
}

func jsonHasField(t *testing.T, data []byte, field string) bool {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	_, ok := m[field]
	return ok
}
