// The async job ledger behind the router's POST /submit API: a
// durable in-process queue for runs that exceed the synchronous
// request deadline. Every submitted job lives in the ledger for the
// router's lifetime, and its state machine is strict:
//
//	queued → running → done            (a live backend answered)
//	                 ↘ queued          (transport failure: requeued,
//	                                    up to AsyncAttempts — always
//	                                    during drain)
//	                 ↘ failed          (attempts exhausted)
//
// A job completes at most once (complete/fail panic on a job that is
// not running — double completion is a bug, not a condition to
// tolerate), and drain loses nothing: workers' in-flight attempts
// either complete or requeue, queued jobs stay queued. The job-id
// ledger is therefore an audit structure, not just a result store —
// TestRouterDrainLedger asserts over it.
package serve

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Job states as reported by GET /result/{id}.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// asyncJob is one submitted job. All fields past body are guarded by
// the ledger's mutex.
type asyncJob struct {
	id     string
	source string
	body   []byte

	state       string
	attempts    int
	status      int    // backend HTTP status, once done
	result      []byte // backend response body, once done
	errMsg      string // terminal error, once failed
	completions int    // times a terminal state was recorded; must end ≤ 1
	done        chan struct{}
}

// JobView is the wire form of one job (POST /submit and
// GET /result/{id} replies).
type JobView struct {
	ID       string `json:"job_id"`
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	// Status and Response carry the backend's answer once State is
	// "done" — Response is the same JSON a synchronous /run returns.
	Status   int             `json:"status,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// jobLedger is the queue plus the permanent id→job record.
type jobLedger struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	seq    int64
	jobs   map[string]*asyncJob
	fifo   []*asyncJob // queued jobs, oldest first
	depth  int         // admission cap on len(fifo)

	running  int
	done     int64
	failed   int64
	requeues int64
}

func newJobLedger(depth int) *jobLedger {
	l := &jobLedger{jobs: make(map[string]*asyncJob), depth: depth}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// submit admits a job or rejects it without blocking (ErrDraining
// after close, ErrBusy when the queued backlog is at capacity).
func (l *jobLedger) submit(source string, body []byte) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return "", ErrDraining
	}
	if len(l.fifo) >= l.depth {
		return "", ErrBusy
	}
	l.seq++
	j := &asyncJob{
		id:     fmt.Sprintf("job-%06d", l.seq),
		source: source,
		body:   body,
		state:  JobQueued,
		done:   make(chan struct{}),
	}
	l.jobs[j.id] = j
	l.fifo = append(l.fifo, j)
	l.cond.Signal()
	return j.id, nil
}

// take blocks for the next queued job and marks it running (one take
// is one attempt). It returns nil once the ledger is closed — queued
// jobs are deliberately left queued: drain completes in-flight work
// but starts nothing new, so an undrained backlog stays visible in the
// ledger instead of vanishing.
func (l *jobLedger) take() *asyncJob {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.fifo) == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil
	}
	j := l.fifo[0]
	l.fifo = l.fifo[1:]
	j.state = JobRunning
	j.attempts++
	l.running++
	return j
}

// requeue returns a running job to the back of the queue after a
// failed attempt.
func (l *jobLedger) requeue(j *asyncJob) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if j.state != JobRunning {
		panic(fmt.Sprintf("serve: requeue of %s in state %s", j.id, j.state))
	}
	j.state = JobQueued
	l.running--
	l.requeues++
	l.fifo = append(l.fifo, j)
	if !l.closed {
		l.cond.Signal()
	}
}

// complete records a backend answer for a running job.
func (l *jobLedger) complete(j *asyncJob, status int, result []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if j.state != JobRunning {
		panic(fmt.Sprintf("serve: completion of %s in state %s", j.id, j.state))
	}
	j.state = JobDone
	j.status = status
	j.result = result
	j.completions++
	l.running--
	l.done++
	close(j.done)
}

// fail terminates a running job whose attempts are exhausted.
func (l *jobLedger) fail(j *asyncJob, msg string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if j.state != JobRunning {
		panic(fmt.Sprintf("serve: failure of %s in state %s", j.id, j.state))
	}
	j.state = JobFailed
	j.errMsg = msg
	j.completions++
	l.running--
	l.failed++
	close(j.done)
}

// view snapshots one job for the wire.
func (l *jobLedger) view(id string) (JobView, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	j, ok := l.jobs[id]
	if !ok {
		return JobView{}, false
	}
	v := JobView{ID: j.id, State: j.state, Attempts: j.attempts}
	if j.state == JobDone {
		v.Status = j.status
		v.Response = json.RawMessage(j.result)
	}
	if j.state == JobFailed {
		v.Error = j.errMsg
	}
	return v, true
}

// close stops admission and dequeuing; workers observe it via take
// returning nil.
func (l *jobLedger) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

func (l *jobLedger) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// JobStats is the async section of RouterStats.
type JobStats struct {
	Submitted int64 `json:"submitted"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Requeues  int64 `json:"requeues"`
}

func (l *jobLedger) stats() JobStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return JobStats{
		Submitted: l.seq,
		Queued:    len(l.fifo),
		Running:   l.running,
		Done:      l.done,
		Failed:    l.failed,
		Requeues:  l.requeues,
	}
}
