package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// poolJob builds a job that appends label to order when it runs; when
// gate is non-nil the job first blocks on it, pinning the worker so
// the test can stage the queues deterministically.
func poolJob(order *[]string, mu *sync.Mutex, label string, gate chan struct{}) *job {
	return &job{
		done:   make(chan struct{}),
		tenant: strings.SplitN(label, ":", 2)[0],
		fn: func() {
			if gate != nil {
				<-gate
			}
			mu.Lock()
			*order = append(*order, label)
			mu.Unlock()
		},
	}
}

func waitPool(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTenantFairQueuing: with one worker pinned, tenant A floods the
// queue and tenants B and C each queue one request; dispatch is
// round-robin across tenants, so B and C run after A's *first* queued
// request, not after A's whole backlog.
func TestTenantFairQueuing(t *testing.T) {
	p := newPool(1, 16, 16)
	defer p.close()
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})

	blocker := poolJob(&order, &mu, "A:blocker", gate)
	if err := p.submit(blocker); err != nil {
		t.Fatal(err)
	}
	waitPool(t, "worker pinned", func() bool { return p.running.Load() == 1 })

	jobs := []*job{blocker}
	for _, label := range []string{"A:1", "A:2", "A:3", "B:1", "C:1"} {
		j := poolJob(&order, &mu, label, nil)
		if err := p.submit(j); err != nil {
			t.Fatalf("submit %s: %v", label, err)
		}
		jobs = append(jobs, j)
	}
	close(gate)
	for _, j := range jobs {
		<-j.done
	}

	want := []string{"A:blocker", "A:1", "B:1", "C:1", "A:2", "A:3"}
	if got := strings.Join(order, " "); got != strings.Join(want, " ") {
		t.Errorf("dispatch order %q, want %q", got, strings.Join(want, " "))
	}
}

// TestTenantQuota: a tenant at its per-tenant queue cap is rejected
// with ErrTenantBusy while other tenants (and the global queue) still
// have room.
func TestTenantQuota(t *testing.T) {
	p := newPool(1, 8, 2)
	defer p.close()
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})

	blocker := poolJob(&order, &mu, "X:blocker", gate)
	if err := p.submit(blocker); err != nil {
		t.Fatal(err)
	}
	waitPool(t, "worker pinned", func() bool { return p.running.Load() == 1 })

	jobs := []*job{blocker}
	for _, label := range []string{"A:1", "A:2"} {
		j := poolJob(&order, &mu, label, nil)
		if err := p.submit(j); err != nil {
			t.Fatalf("submit %s: %v", label, err)
		}
		jobs = append(jobs, j)
	}
	if err := p.submit(poolJob(&order, &mu, "A:3", nil)); err != ErrTenantBusy {
		t.Errorf("over-quota submit err = %v, want ErrTenantBusy", err)
	}
	b := poolJob(&order, &mu, "B:1", nil)
	if err := p.submit(b); err != nil {
		t.Errorf("tenant B rejected while under its quota: %v", err)
	}
	jobs = append(jobs, b)

	st := p.stats()
	if st.TenantRejected != 1 || st.Tenants != 2 || st.TenantQuota != 2 {
		t.Errorf("stats %+v, want 1 quota rejection across 2 queued tenants", st)
	}
	close(gate)
	for _, j := range jobs {
		<-j.done
	}
}

// TestTenantQuotaHTTP stages a full tenant queue through the real
// server and asserts the wire contract: 429 with Retry-After for the
// over-quota tenant, while another tenant's request is still admitted.
func TestTenantQuotaHTTP(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8, TenantQueueDepth: 1, MaxSteps: 1 << 40})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	slow := slowRequest(400)
	slow.Tenant = "a"
	go func() { defer wg.Done(); s.Run(context.Background(), slow) }()
	waitFor(t, "worker busy", func() bool { return s.Stats().Queue.Running == 1 })
	go func() { defer wg.Done(); s.Run(context.Background(), slow) }()
	waitFor(t, "tenant a queued", func() bool { return s.Stats().Queue.Depth == 1 })

	resp, status, hdr, err := postRun(context.Background(), ts.Client(), ts.URL,
		Request{Source: addSrc, Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Errorf("over-quota status = %d, want 429 (%+v)", status, resp)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}
	if st := s.Stats().Queue; st.TenantRejected != 1 {
		t.Errorf("TenantRejected = %d, want 1", st.TenantRejected)
	}

	okResp, status, _, err := postRun(context.Background(), ts.Client(), ts.URL,
		Request{Source: addSrc, Tenant: "b"})
	if err != nil || status != http.StatusOK || !okResp.OK {
		t.Errorf("tenant b request: %v %d %+v — should be admitted past tenant a's backlog", err, status, okResp)
	}
	wg.Wait()
}
