// The compiled-program cache: sharded, content-hash-keyed, LRU per
// shard, singleflight on cold misses. Keys are the SHA-256 of the
// request source (plus a variant tag for auto-parallelized entries:
// the serial program and each planned (auto, width) variant are
// separate entries with separate compiled code), so byte-identical
// programs share one checked AST and one set of compiled closures
// regardless of which client sent them; the shard is picked from the
// hash's first byte, so hot keys spread across locks instead of
// serializing on one.
package serve

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sync"

	"repro/internal/interp"
	"repro/internal/transform"
)

// centry is one cache slot. ready is closed by the goroutine that won
// the insert race once cp/err are final; every other goroutine —
// concurrent cold requests for the same source included — blocks on
// ready instead of compiling again (the singleflight). The entry owns
// a pinned interp.CompiledProgram, not just the AST: interp's own
// per-program code cache is bounded and evicts arbitrarily under
// churn, so holding the handle is what guarantees a hit here never
// recompiles. The prev/next links are the shard's intrusive LRU list.
type centry struct {
	key   [32]byte
	ready chan struct{}
	cp    *interp.CompiledProgram
	// plan is the auto-parallelization report for (auto, width)
	// variant entries — hot auto requests return it without
	// re-planning. nil for serial entries.
	plan *transform.Plan
	err  error

	prev, next *centry
}

// cacheShard is one lock's worth of the cache: a key→entry map plus an
// LRU list threaded through the entries (front = most recent). The
// counters are guarded by mu and aggregated by cacheStats.
type cacheShard struct {
	mu      sync.Mutex
	entries map[[32]byte]*centry
	// head/tail of the LRU list (head = most recently used).
	head, tail *centry

	hits, misses, evictions, compiles int64
}

func (sh *cacheShard) unlink(e *centry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *cacheShard) pushFront(e *centry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

type cache struct {
	shards   []*cacheShard
	perShard int
}

func newCache(entries, shards int) *cache {
	perShard := (entries + shards - 1) / shards
	if perShard < 1 {
		perShard = 1
	}
	c := &cache{shards: make([]*cacheShard, shards), perShard: perShard}
	for i := range c.shards {
		c.shards[i] = &cacheShard{entries: make(map[[32]byte]*centry)}
	}
	return c
}

// serialKey is the cache key of a source's untransformed program.
// Both key families hash a variant tag before the source bytes: with
// an untagged serial key, a request whose *source text* began with
// another key family's tag would collide with that family's slot
// (e.g. a serial POST of "auto:16\x00" + P poisoning P's auto
// variant, negative cache included).
func serialKey(source string) [32]byte {
	return variantKey("serial", source)
}

// autoKey is the cache key of a source's auto-parallelized variant at
// one strip width: each (auto, width) pair is its own slot.
func autoKey(source string, width int) [32]byte {
	return variantKey(fmt.Sprintf("auto:%d", width), source)
}

func variantKey(tag, source string) [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00", tag, len(source))
	h.Write([]byte(source))
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// get returns the pinned compiled program under key, building it with
// build on a cold miss. cached reports whether the program was already
// resident (including joining an in-flight build — the caller did no
// compile work either way). Build errors are cached too: a client
// retrying a broken program in a loop stays on the hot path. The plan
// is whatever the build returned (the auto-parallelization report for
// auto variants, nil for serial entries).
func (c *cache) get(ctx context.Context, key [32]byte, build func() (*interp.CompiledProgram, *transform.Plan, error)) (cp *interp.CompiledProgram, plan *transform.Plan, cached bool, err error) {
	sh := c.shards[int(key[0])%len(c.shards)]

	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.unlink(e)
		sh.pushFront(e)
		sh.hits++
		sh.mu.Unlock()
		select {
		case <-e.ready:
			return e.cp, e.plan, true, e.err
		case <-ctx.Done():
			return nil, nil, true, ctx.Err()
		}
	}
	e := &centry{key: key, ready: make(chan struct{})}
	sh.entries[key] = e
	sh.pushFront(e)
	sh.misses++
	sh.compiles++
	// Evict beyond capacity, least-recently-used first. The entry just
	// inserted is at the front, so it can never evict itself; evicting
	// another in-flight entry is safe — its waiters hold the pointer
	// and its builder closes ready regardless of cache membership.
	for len(sh.entries) > c.perShard {
		old := sh.tail
		sh.unlink(old)
		delete(sh.entries, old.key)
		sh.evictions++
	}
	sh.mu.Unlock()

	e.cp, e.plan, e.err = build()
	close(e.ready)
	return e.cp, e.plan, false, e.err
}

// CacheStats is the cache section of Stats.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Compiles counts front-end builds (parse + check + closure
	// codegen). The hot-path contract is that it tracks misses, never
	// hits: TestHotPathZeroCompileWork pins it together with
	// interp.CompileCount.
	Compiles int64 `json:"compiles"`
	Entries  int   `json:"entries"`
	Shards   int   `json:"shards"`
	Capacity int   `json:"capacity"`
}

func (c *cache) stats() CacheStats {
	st := CacheStats{Shards: len(c.shards), Capacity: c.perShard * len(c.shards)}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
		st.Compiles += sh.compiles
		st.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return st
}
