// The HTTP surface of the service, served by cmd/pslserved:
//
//	POST /run          — execute a Request (JSON body), returns a Response
//	GET  /stats        — the Stats snapshot
//	GET  /metrics      — the same snapshot in Prometheus text format
//	GET  /debug/traces — recent request traces (bounded ring)
//	GET  /healthz      — 200 while serving, 503 once draining
//
// Error mapping: malformed requests are 400, admission rejections 503
// (queue full, draining) or 429 (tenant over quota) with Retry-After
// (back-pressure the load generator honors), and everything that
// actually executed is 200 — including failed programs, whose Response
// carries ok=false and the error string. A failed program is a
// successful service interaction.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/obs"
)

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	// Bound the body before the decoder sees it. JSON escaping expands
	// a source byte to at most 6 bytes (\uXXXX), so 6× the source cap
	// plus envelope slack admits every request Run itself would accept
	// while still hard-bounding memory.
	r.Body = http.MaxBytesReader(w, r.Body, 6*int64(s.cfg.MaxSourceBytes)+64*1024)
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	// A propagated trace ID (the router's, or any upstream's) forces
	// tracing and stitches this backend's spans into the caller's trace.
	req.TraceID = r.Header.Get(obs.TraceHeader)
	s.finishRun(r.Context(), w, req)
}

// finishRun executes an already-decoded Request and writes the
// Response under the documented error mapping. It is handleRun minus
// the decode: the Router's embedded fast path calls it directly, so a
// routed request decodes its body exactly once — same as a direct one.
func (s *Server) finishRun(ctx context.Context, w http.ResponseWriter, req Request) {
	resp, err := s.Run(ctx, req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case err == ErrBusy || err == ErrDraining:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err == ErrTenantBusy:
		// Over-quota is the tenant's condition, not the service's: 429,
		// so clients can tell "slow down, you" from "the fleet is full".
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
