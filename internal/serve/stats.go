// The stats surface: request counters, cache and queue snapshots, and
// a log-scale latency histogram. Everything is cheap enough to record
// on the hot path (atomics; the histogram bucket scan is a dozen
// compares) and everything is exported through GET /stats, which is
// what cmd/loadgen diffs to compute hit rates for BENCH_serve.json.
package serve

import (
	"runtime"
	"sync/atomic"
	"time"
)

// latencyBoundsUS are the histogram bucket upper bounds, in
// microseconds; one overflow bucket follows the last bound.
var latencyBoundsUS = []int64{
	100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
}

type histogram struct {
	buckets []atomic.Int64 // len(latencyBoundsUS)+1
	count   atomic.Int64
	sumUS   atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]atomic.Int64, len(latencyBoundsUS)+1)}
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	h.count.Add(1)
	h.sumUS.Add(us)
	for i, b := range latencyBoundsUS {
		if us <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(latencyBoundsUS)].Add(1)
}

// Bucket is one histogram cell: count of requests with latency ≤ LeUS
// microseconds (and above the previous bound); LeUS 0 marks overflow.
type Bucket struct {
	LeUS  int64 `json:"le_us"`
	Count int64 `json:"count"`
}

// LatencyStats is the latency section of Stats. P50US/P95US/P99US are
// derived from the histogram by linear interpolation within the
// bucket holding the target rank, so they carry bucket-resolution
// error: the true percentile lies within the same bucket's bounds.
type LatencyStats struct {
	Count   int64    `json:"count"`
	MeanUS  int64    `json:"mean_us"`
	SumUS   int64    `json:"sum_us"`
	P50US   int64    `json:"p50_us"`
	P95US   int64    `json:"p95_us"`
	P99US   int64    `json:"p99_us"`
	Buckets []Bucket `json:"buckets"`
}

func (h *histogram) snapshot() LatencyStats {
	st := LatencyStats{Count: h.count.Load(), SumUS: h.sumUS.Load()}
	if st.Count > 0 {
		st.MeanUS = st.SumUS / st.Count
	}
	counts := make([]int64, len(h.buckets))
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	// Rank against the sum of bucket counts, not h.count: under
	// concurrent observes the two can be momentarily out of step, and
	// percentiles must rank within the samples actually bucketed.
	st.P50US = histPercentile(counts, total, 0.50)
	st.P95US = histPercentile(counts, total, 0.95)
	st.P99US = histPercentile(counts, total, 0.99)
	for i, n := range counts {
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i < len(latencyBoundsUS) {
			b.LeUS = latencyBoundsUS[i]
		}
		st.Buckets = append(st.Buckets, b)
	}
	return st
}

// histPercentile locates the q-quantile in the bucketed counts: walk
// to the bucket holding the ceil(q×total)-th sample and interpolate
// linearly between its bounds. Samples in the overflow bucket report
// the last finite bound — the histogram cannot see further.
func histPercentile(counts []int64, total int64, q float64) int64 {
	if total <= 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i >= len(latencyBoundsUS) {
				return latencyBoundsUS[len(latencyBoundsUS)-1]
			}
			var lo int64
			if i > 0 {
				lo = latencyBoundsUS[i-1]
			}
			hi := latencyBoundsUS[i]
			return lo + int64(float64(hi-lo)*float64(rank-cum)/float64(c))
		}
		cum += c
	}
	return latencyBoundsUS[len(latencyBoundsUS)-1]
}

// Stats is the service-wide snapshot returned by Server.Stats and
// GET /stats.
type Stats struct {
	// Requests counts every Run call; Invalid the ones rejected as
	// malformed, Rejected the admission failures (queue full or
	// draining), Abandoned the admitted requests whose client gave up
	// while they were queued (never executed), Errors the executed
	// requests that failed (compile error, runtime error, or sandbox
	// kill).
	Requests  int64        `json:"requests"`
	Invalid   int64        `json:"invalid"`
	Rejected  int64        `json:"rejected"`
	Abandoned int64        `json:"abandoned"`
	Errors    int64        `json:"errors"`
	Cache     CacheStats   `json:"cache"`
	Queue     QueueStats   `json:"queue"`
	Latency   LatencyStats `json:"latency"`
	Runtime   RuntimeStats `json:"runtime"`
}

// RuntimeStats describes the serving process: how long it has been
// up and what it is running on. The fleet aggregate view uses it to
// spot a recently restarted or misconfigured backend at a glance.
type RuntimeStats struct {
	UptimeMS   int64  `json:"uptime_ms"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	// PEs is the worker-pool size of the execution service — the
	// parallel capacity one request can use (mirrors Config.Workers).
	PEs int `json:"pes"`
}

func runtimeStats(start time.Time, pes int) RuntimeStats {
	return RuntimeStats{
		UptimeMS:   time.Since(start).Milliseconds(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		PEs:        pes,
	}
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:  s.requests.Load(),
		Invalid:   s.invalid.Load(),
		Rejected:  s.rejected.Load(),
		Abandoned: s.abandoned.Load(),
		Errors:    s.errors.Load(),
		Cache:     s.cache.stats(),
		Queue:     s.pool.stats(),
		Latency:   s.latency.snapshot(),
		Runtime:   runtimeStats(s.start, s.cfg.Workers),
	}
}
