// The stats surface: request counters, cache and queue snapshots, and
// a log-scale latency histogram. Everything is cheap enough to record
// on the hot path (atomics; the histogram bucket scan is a dozen
// compares) and everything is exported through GET /stats, which is
// what cmd/loadgen diffs to compute hit rates for BENCH_serve.json.
package serve

import (
	"sync/atomic"
	"time"
)

// latencyBoundsUS are the histogram bucket upper bounds, in
// microseconds; one overflow bucket follows the last bound.
var latencyBoundsUS = []int64{
	100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
}

type histogram struct {
	buckets []atomic.Int64 // len(latencyBoundsUS)+1
	count   atomic.Int64
	sumUS   atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]atomic.Int64, len(latencyBoundsUS)+1)}
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	h.count.Add(1)
	h.sumUS.Add(us)
	for i, b := range latencyBoundsUS {
		if us <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(latencyBoundsUS)].Add(1)
}

// Bucket is one histogram cell: count of requests with latency ≤ LeUS
// microseconds (and above the previous bound); LeUS 0 marks overflow.
type Bucket struct {
	LeUS  int64 `json:"le_us"`
	Count int64 `json:"count"`
}

// LatencyStats is the latency section of Stats.
type LatencyStats struct {
	Count   int64    `json:"count"`
	MeanUS  int64    `json:"mean_us"`
	Buckets []Bucket `json:"buckets"`
}

func (h *histogram) snapshot() LatencyStats {
	st := LatencyStats{Count: h.count.Load()}
	if st.Count > 0 {
		st.MeanUS = h.sumUS.Load() / st.Count
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i < len(latencyBoundsUS) {
			b.LeUS = latencyBoundsUS[i]
		}
		st.Buckets = append(st.Buckets, b)
	}
	return st
}

// Stats is the service-wide snapshot returned by Server.Stats and
// GET /stats.
type Stats struct {
	// Requests counts every Run call; Invalid the ones rejected as
	// malformed, Rejected the admission failures (queue full or
	// draining), Abandoned the admitted requests whose client gave up
	// while they were queued (never executed), Errors the executed
	// requests that failed (compile error, runtime error, or sandbox
	// kill).
	Requests  int64        `json:"requests"`
	Invalid   int64        `json:"invalid"`
	Rejected  int64        `json:"rejected"`
	Abandoned int64        `json:"abandoned"`
	Errors    int64        `json:"errors"`
	Cache     CacheStats   `json:"cache"`
	Queue     QueueStats   `json:"queue"`
	Latency   LatencyStats `json:"latency"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:  s.requests.Load(),
		Invalid:   s.invalid.Load(),
		Rejected:  s.rejected.Load(),
		Abandoned: s.abandoned.Load(),
		Errors:    s.errors.Load(),
		Cache:     s.cache.stats(),
		Queue:     s.pool.stats(),
		Latency:   s.latency.snapshot(),
	}
}
