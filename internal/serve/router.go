// The fleet router: the horizontal scale-out front of the execution
// service, served by cmd/pslrouter. One process was the throughput
// ceiling (BENCH_serve.json records rps *falling* as concurrency
// rises); the router turns N pslserved processes into one service:
//
//   - cache-affinity sharding: requests are routed by the content hash
//     of their program source over a consistent-hash ring (ring.go),
//     so every variant of one program — serial, auto-planned at any
//     width, any engine — lives on exactly one replica's LRU and is
//     compiled exactly once fleet-wide (TestRouterNoDuplicateCompiles
//     pins it).
//   - health-checked failover: a background probe marks backends up or
//     down, a transport failure marks them down immediately, and a
//     routed request retries on the next ring owner — so killing a
//     replica mid-load costs a bounded rehash (only its keys move),
//     not an outage. When the replica returns, exactly those keys move
//     back to its still-warm cache.
//   - an async job API for runs that exceed the synchronous request
//     deadline: POST /submit returns a job id immediately, workers
//     drain a durable in-process queue with retry-on-backend-failure,
//     GET /result/{id} reports state and, once done, the full backend
//     response (jobs.go). Drain never loses a job: in-flight attempts
//     complete or requeue, queued jobs stay queued in the ledger.
//
// The router holds no program state itself — backends own their caches
// — so its per-request work is one JSON field decode, one ring lookup,
// and one proxied hop.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// RouterConfig sizes a Router. Zero values select the documented
// defaults.
type RouterConfig struct {
	// Backends are the pslserved base URLs the router shards across.
	Backends []string
	// Replicas is the virtual-node count per backend on the hash ring
	// (0 = 512).
	Replicas int
	// HealthInterval is the /healthz probe period (0 = 250ms); a probe
	// also times out after one interval.
	HealthInterval time.Duration
	// Retries is how many *additional* backends a request tries after a
	// transport failure before giving up (0 = 2, -1 = no in-request
	// failover, which leaves retrying to the async requeue path). Only
	// transport failures re-route: an executed-but-failed program or a
	// 503 from a live backend is relayed as-is, preserving cache
	// affinity.
	Retries int
	// MaxBodyBytes bounds the request body (0 = 6 MiB + 64 KiB, the
	// same envelope pslserved itself admits).
	MaxBodyBytes int64
	// AsyncWorkers is the number of queue drainers (0 = 4);
	// AsyncQueueDepth bounds the queued-job backlog (0 = 256);
	// AsyncAttempts caps how often one job is tried before it is marked
	// failed (0 = 3); AsyncTimeout is the per-attempt wall clock
	// (0 = 60s) — deliberately longer than the synchronous default,
	// that's what /submit is for.
	AsyncWorkers    int
	AsyncQueueDepth int
	AsyncAttempts   int
	AsyncTimeout    time.Duration
	// Client overrides the backend HTTP client (nil = a pooled
	// default).
	Client *http.Client
	// TraceRate samples routed requests for tracing, like
	// Config.TraceRate does on a backend: a sampled request gets a
	// fresh trace ID that rides the X-PSL-Trace header to the backend
	// (and, unchanged, to every failover retry), so the router's
	// per-attempt spans and the backend's execution spans share one
	// logical trace. 0 disables sampling; requests arriving with the
	// header or "profile": true are always traced.
	TraceRate float64
	// TraceBuffer bounds the router's /debug/traces ring (0 = 64).
	TraceBuffer int
	// Embedded runs the fleet in-process instead of over the network:
	// Embedded[i] becomes backend i ("embedded-i" on the ring), and a
	// routed request is handed to its owner's handler directly — same
	// sharding, no second HTTP hop. This is the single-machine
	// deployment of the fleet (and how BENCH_serve.json's fleet row is
	// measured on one box): pools, caches, and latency histograms are
	// split N ways while the request path stays one network hop, like
	// the single-process server it is compared against. The servers
	// remain owned by the caller — Close them after the router.
	// Mutually exclusive with Backends.
	Embedded []*Server
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Replicas <= 0 {
		c.Replicas = defaultRingReplicas
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 6*(1<<20) + 64*1024
	}
	if c.AsyncWorkers <= 0 {
		c.AsyncWorkers = 4
	}
	if c.AsyncQueueDepth <= 0 {
		c.AsyncQueueDepth = 256
	}
	if c.AsyncAttempts <= 0 {
		c.AsyncAttempts = 3
	}
	if c.AsyncTimeout <= 0 {
		c.AsyncTimeout = 60 * time.Second
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = 64
	}
	return c
}

// routerBackend is one replica's live state. healthy flips down on a
// probe failure or a transport error, up on the next successful probe;
// the ring itself never changes, so health transitions move exactly
// the affected keys (ring.go's minimal-disruption property).
type routerBackend struct {
	url      string
	healthy  atomic.Bool
	routed   atomic.Int64 // requests this backend answered (any status)
	failures atomic.Int64 // transport failures observed against it

	// Embedded-fleet fields: the in-process server and its handler.
	// nil for network backends.
	local        *Server
	localHandler http.Handler
}

var errNoBackend = errors.New("serve: no healthy backend")

// Router fronts a fleet of pslserved backends. Create with NewRouter,
// expose over HTTP with Handler, retire with Close.
type Router struct {
	cfg      RouterConfig
	ring     *hashRing
	backends map[string]*routerBackend
	order    []string // config order, the ring-building and Stats order
	client   *http.Client
	jobs     *jobLedger
	start    time.Time
	sampler  *obs.Sampler
	traces   *obs.Ring

	draining atomic.Bool
	stop     chan struct{}      // ends the health loop
	drainCtx context.Context    // parent of async attempts; cancelled on Close
	drainEnd context.CancelFunc //
	wg       sync.WaitGroup     // health loop + async workers

	requests   atomic.Int64 // /run proxies attempted
	submitted  atomic.Int64 // /submit admissions
	retries    atomic.Int64 // re-routes after a transport failure
	unroutable atomic.Int64 // requests that found no healthy backend
}

// NewRouter builds and starts a Router: the ring is built over the
// configured backends (all optimistically healthy until the first
// probe says otherwise), the health loop and async workers start
// immediately.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Embedded) > 0 && len(cfg.Backends) > 0 {
		return nil, fmt.Errorf("serve: Embedded and Backends are mutually exclusive")
	}
	if len(cfg.Backends) == 0 && len(cfg.Embedded) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one backend")
	}
	urls := make([]string, 0, len(cfg.Backends)+len(cfg.Embedded))
	backends := make(map[string]*routerBackend, len(cfg.Backends)+len(cfg.Embedded))
	for _, u := range cfg.Backends {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("serve: empty backend URL")
		}
		if backends[u] != nil {
			return nil, fmt.Errorf("serve: duplicate backend %s", u)
		}
		b := &routerBackend{url: u}
		b.healthy.Store(true)
		backends[u] = b
		urls = append(urls, u)
	}
	for i, s := range cfg.Embedded {
		u := fmt.Sprintf("http://embedded-%d", i)
		b := &routerBackend{url: u, local: s, localHandler: s.Handler()}
		b.healthy.Store(true)
		backends[u] = b
		urls = append(urls, u)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
		}}
	}
	r := &Router{
		cfg:      cfg,
		ring:     newHashRing(urls, cfg.Replicas),
		backends: backends,
		order:    urls,
		client:   client,
		jobs:     newJobLedger(cfg.AsyncQueueDepth),
		start:    time.Now(),
		sampler:  obs.NewSampler(cfg.TraceRate),
		traces:   obs.NewRing(cfg.TraceBuffer),
		stop:     make(chan struct{}),
	}
	r.drainCtx, r.drainEnd = context.WithCancel(context.Background())
	r.wg.Add(1)
	go r.healthLoop()
	for i := 0; i < cfg.AsyncWorkers; i++ {
		r.wg.Add(1)
		go r.asyncWorker()
	}
	return r, nil
}

// Close drains the router: admission (sync and async) stops, the
// health loop exits, and every async worker finishes — its in-flight
// attempt is cancelled, which requeues rather than fails the job, so
// the ledger ends with every job either done or still queued, never
// lost (TestRouterDrainLedger pins it).
func (r *Router) Close() {
	if r.draining.Swap(true) {
		return
	}
	close(r.stop)
	r.jobs.close()
	r.drainEnd()
	r.wg.Wait()
}

func (r *Router) healthLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		for _, b := range r.backends {
			if b.local != nil {
				continue // in-process backends cannot vanish
			}
			ctx, cancel := context.WithTimeout(r.drainCtx, r.cfg.HealthInterval)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
			if err != nil {
				cancel()
				continue
			}
			resp, err := r.client.Do(req)
			up := false
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				up = resp.StatusCode == http.StatusOK
			}
			cancel()
			b.healthy.Store(up)
		}
	}
}

// pick resolves the ring owner of key among healthy, non-excluded
// backends.
func (r *Router) pick(key uint64, exclude map[string]bool) *routerBackend {
	name := r.ring.owner(key, func(u string) bool {
		return !exclude[u] && r.backends[u].healthy.Load()
	})
	if name == "" {
		return nil
	}
	return r.backends[name]
}

// post sends body to url and returns the response whole; a non-nil
// error is a transport failure (the backend never answered). A
// non-empty traceID rides the X-PSL-Trace header, telling the backend
// to trace and under which ID.
func (r *Router) post(ctx context.Context, url string, body []byte, traceID string) (int, []byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(body)))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, respBody, resp.Header, nil
}

// proxyRun routes one /run body to the ring owner of its source key,
// failing over to the next owner on transport failure (marking the
// dead backend down as it goes). Responses from a live backend —
// including program errors and 503 back-pressure — are relayed, not
// retried: re-running them elsewhere would shatter cache affinity.
//
// A non-nil tr records one "attempt" span per backend tried — the
// failed ones carry the transport error — and every attempt forwards
// the same trace ID, so the backend spans of a failed-over request
// stitch into one trace across replicas.
func (r *Router) proxyRun(ctx context.Context, source string, body []byte, tr *obs.Trace) (int, []byte, http.Header, error) {
	key := sourceKey(source)
	exclude := map[string]bool{}
	var lastErr error
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		b := r.pick(key, exclude)
		if b == nil {
			r.unroutable.Add(1)
			if lastErr != nil {
				return 0, nil, nil, fmt.Errorf("%w (last transport error: %v)", errNoBackend, lastErr)
			}
			return 0, nil, nil, errNoBackend
		}
		sp := tr.Start("attempt")
		sp.SetAttr("backend", b.url)
		if b.local != nil {
			status, respBody, hdr := r.localPost(ctx, b, body, tr.ID())
			sp.End()
			b.routed.Add(1)
			return status, respBody, hdr, nil
		}
		status, respBody, hdr, err := r.post(ctx, b.url+"/run", body, tr.ID())
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			if ctx.Err() != nil {
				// The client (or drain) gave up — not the backend's fault.
				return 0, nil, nil, err
			}
			b.healthy.Store(false)
			b.failures.Add(1)
			r.retries.Add(1)
			exclude[b.url] = true
			lastErr = err
			continue
		}
		sp.End()
		b.routed.Add(1)
		return status, respBody, hdr, nil
	}
	r.unroutable.Add(1)
	return 0, nil, nil, fmt.Errorf("%w after %d attempts (last transport error: %v)",
		errNoBackend, r.cfg.Retries+1, lastErr)
}

// handleRunEmbedded is the embedded fleet's sync fast path: decode the
// Request exactly once, pick the ring owner of its source, and let
// that replica execute and write the response itself — a routed
// request costs one content hash and one ring lookup over a direct
// hit, with no second decode, hop, or response copy.
func (r *Router) handleRunEmbedded(w http.ResponseWriter, hreq *http.Request) {
	hreq.Body = http.MaxBytesReader(w, hreq.Body, r.cfg.MaxBodyBytes)
	var req Request
	if err := json.NewDecoder(hreq.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
		} else {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		}
		return
	}
	r.requests.Add(1)
	// Trace propagation, in-process: the header (or the router's own
	// sampler) sets the Request's TraceID directly — the owning
	// replica traces under it, no second decode or HTTP hop.
	req.TraceID = hreq.Header.Get(obs.TraceHeader)
	if req.TraceID == "" && !req.Profile && r.sampler.Sample() {
		req.TraceID = obs.NewID()
	}
	b := r.pick(sourceKey(req.Source), nil)
	if b == nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: errNoBackend.Error()})
		return
	}
	b.routed.Add(1)
	b.local.finishRun(hreq.Context(), w, req)
}

// localPost runs body against an embedded backend's handler, capturing
// the response in memory — the async workers' analogue of the sync
// embedded fast path.
func (r *Router) localPost(ctx context.Context, b *routerBackend, body []byte, traceID string) (int, []byte, http.Header) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/run", bytes.NewReader(body))
	if err != nil {
		return http.StatusInternalServerError, nil, http.Header{}
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	rec := &memResponse{header: http.Header{}, status: http.StatusOK}
	b.localHandler.ServeHTTP(rec, req)
	return rec.status, rec.body.Bytes(), rec.header
}

// memResponse is a minimal in-memory http.ResponseWriter for embedded
// async attempts.
type memResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (m *memResponse) Header() http.Header         { return m.header }
func (m *memResponse) WriteHeader(code int)        { m.status = code }
func (m *memResponse) Write(p []byte) (int, error) { return m.body.Write(p) }

// runProbe is the slice of a /run body the router itself reads: the
// source (whose content hash is the routing key) and the profile flag
// (which forces tracing). The body is forwarded verbatim — the
// backend does the full decode and validation.
type runProbe struct {
	Source  string `json:"source"`
	Profile bool   `json:"profile"`
}

// readRunBody bounds and reads a /run-shaped request body and extracts
// the probe fields.
func (r *Router) readRunBody(w http.ResponseWriter, req *http.Request) (probe runProbe, body []byte, ok bool) {
	req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes)
	body, err := io.ReadAll(req.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
		} else {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		}
		return runProbe{}, nil, false
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return runProbe{}, nil, false
	}
	if probe.Source == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty source"})
		return runProbe{}, nil, false
	}
	return probe, body, true
}

// Handler returns the router's HTTP mux:
//
//	POST /run          — route and proxy a synchronous Request
//	POST /submit       — enqueue an async job, returns its id
//	GET  /result/{id}  — job state and, once done, the full Response
//	GET  /stats        — RouterStats (fleet-aggregated cache counters)
//	GET  /metrics      — the same snapshot in Prometheus text format
//	GET  /debug/traces — recent routed-request traces (bounded ring)
//	GET  /healthz      — 200 while routable, 503 when draining or dark
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", r.handleRun)
	mux.HandleFunc("/submit", r.handleSubmit)
	mux.HandleFunc("/result/", r.handleResult)
	mux.HandleFunc("/stats", r.handleStats)
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/debug/traces", r.handleTraces)
	mux.HandleFunc("/healthz", r.handleHealthz)
	return mux
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", promContentType)
	writeRouterMetrics(obs.NewProm(w), r.Stats(req.Context()))
}

func (r *Router) handleTraces(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.traces.Snapshot())
}

func (r *Router) handleRun(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	if r.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: ErrDraining.Error()})
		return
	}
	if len(r.cfg.Embedded) > 0 {
		r.handleRunEmbedded(w, req)
		return
	}
	probe, body, ok := r.readRunBody(w, req)
	if !ok {
		return
	}
	r.requests.Add(1)
	// Trace decision, mirroring the backend's: an incoming header
	// propagates, "profile": true and the sampler's share start fresh
	// traces. The same ID is forwarded to every failover attempt.
	var tr *obs.Trace
	if id := req.Header.Get(obs.TraceHeader); id != "" || probe.Profile || r.sampler.Sample() {
		tr = obs.NewTrace(id)
	}
	status, respBody, hdr, err := r.proxyRun(req.Context(), probe.Source, body, tr)
	if tr != nil {
		tr.Finish()
		r.traces.Add(tr.View())
	}
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "router: " + err.Error()})
		return
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(respBody)
}

func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	if r.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: ErrDraining.Error()})
		return
	}
	probe, body, ok := r.readRunBody(w, req)
	if !ok {
		return
	}
	id, err := r.jobs.submit(probe.Source, body)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	r.submitted.Add(1)
	view, _ := r.jobs.view(id)
	writeJSON(w, http.StatusAccepted, view)
}

func (r *Router) handleResult(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	id := strings.TrimPrefix(req.URL.Path, "/result/")
	view, ok := r.jobs.view(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Stats(req.Context()))
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if r.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	for _, b := range r.backends {
		if b.healthy.Load() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no healthy backend"})
}

// asyncWorker drains the job queue: one take is one attempt. A
// transport-level failure requeues the job (up to AsyncAttempts, and
// always during drain — shutdown must not turn retryable jobs into
// failures); any answer from a live backend completes it.
func (r *Router) asyncWorker() {
	defer r.wg.Done()
	for {
		j := r.jobs.take()
		if j == nil {
			return
		}
		ctx, cancel := context.WithTimeout(r.drainCtx, r.cfg.AsyncTimeout)
		status, respBody, _, err := r.proxyRun(ctx, j.source, j.body, nil)
		cancel()
		if err != nil {
			if r.jobs.isClosed() || j.attempts < r.cfg.AsyncAttempts {
				r.jobs.requeue(j)
			} else {
				r.jobs.fail(j, fmt.Sprintf("after %d attempts: %v", j.attempts, err))
			}
			continue
		}
		r.jobs.complete(j, status, respBody)
	}
}

// BackendStats is one replica's slice of RouterStats. Cache is the
// backend's own /stats cache section, fetched live; nil when the
// backend was unreachable at snapshot time.
type BackendStats struct {
	URL      string      `json:"url"`
	Healthy  bool        `json:"healthy"`
	Routed   int64       `json:"routed"`
	Failures int64       `json:"failures"`
	Cache    *CacheStats `json:"cache,omitempty"`
}

// RouterStats is the fleet-wide snapshot returned by GET /stats. The
// top-level Cache section sums the reachable backends' counters, in
// the same shape a single pslserved reports — so cmd/loadgen computes
// hit rates against a router exactly as against one backend.
type RouterStats struct {
	Requests   int64          `json:"requests"`
	Submitted  int64          `json:"submitted"`
	Retries    int64          `json:"retries"`
	Unroutable int64          `json:"unroutable"`
	Cache      CacheStats     `json:"cache"`
	Backends   []BackendStats `json:"backends"`
	Jobs       JobStats       `json:"jobs"`
	Runtime    RuntimeStats   `json:"runtime"`
}

// Stats snapshots the router and polls every backend's /stats (500ms
// cap) to aggregate the fleet-wide cache counters.
func (r *Router) Stats(ctx context.Context) RouterStats {
	st := RouterStats{
		Requests:   r.requests.Load(),
		Submitted:  r.submitted.Load(),
		Retries:    r.retries.Load(),
		Unroutable: r.unroutable.Load(),
		Jobs:       r.jobs.stats(),
		Runtime:    runtimeStats(r.start, 0),
	}
	ctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
	defer cancel()
	// Deterministic order: ring-building order is the config order.
	for _, u := range r.order {
		b := r.backends[u]
		bs := BackendStats{
			URL:      b.url,
			Healthy:  b.healthy.Load(),
			Routed:   b.routed.Load(),
			Failures: b.failures.Load(),
		}
		if cs := r.fetchBackendCache(ctx, b); cs != nil {
			bs.Cache = cs
			st.Cache.Hits += cs.Hits
			st.Cache.Misses += cs.Misses
			st.Cache.Evictions += cs.Evictions
			st.Cache.Compiles += cs.Compiles
			st.Cache.Entries += cs.Entries
			st.Cache.Shards += cs.Shards
			st.Cache.Capacity += cs.Capacity
		}
		st.Backends = append(st.Backends, bs)
	}
	return st
}

func (r *Router) fetchBackendCache(ctx context.Context, b *routerBackend) *CacheStats {
	if b.local != nil {
		cs := b.local.Stats().Cache
		return &cs
	}
	url := b.url
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/stats", nil)
	if err != nil {
		return nil
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil
	}
	return &st.Cache
}
