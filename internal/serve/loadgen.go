// The closed-loop load generator behind cmd/loadgen and the
// BENCH_serve.json trajectory. Two phases against a running service:
//
//  1. cold — every corpus program is POSTed once, sequentially,
//     measuring first-touch latency (full lex/parse/check/compile);
//  2. hot — Concurrency workers run closed-loop (next request only
//     after the previous response) for Duration, drawing corpus
//     programs at random; a ColdRatio fraction of requests mutates the
//     source with a unique comment, forcing a content-hash miss, so
//     the hot phase exercises the hot/cold mix rather than a pure
//     cache residency test. An AutoRate fraction is sent with
//     "auto": true (planner-parallelized execution), so the parallel
//     path carries load too, not just the serial one; a BytecodeRate
//     fraction is sent with "engine": "bytecode", so the flat VM
//     carries load alongside the default closure engine.
//
// Hit rates come from diffing the server's /stats around the hot
// phase; latencies are measured client-side per request.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Program is one corpus entry for load generation.
type Program struct {
	Name   string
	Source string
	Fn     string // "" = main
}

// LoadCorpus reads every .psl file under dir as a Program whose entry
// point is main — the shape of this repository's testdata corpus.
func LoadCorpus(dir string) ([]Program, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.psl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var out []Program
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		out = append(out, Program{Name: filepath.Base(name), Source: string(src)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: no .psl programs under %s", dir)
	}
	return out, nil
}

// LoadConfig configures one generator run.
type LoadConfig struct {
	// URL is the service base ("http://127.0.0.1:8080").
	URL    string
	Corpus []Program
	// Concurrency is the closed-loop worker count (0 = 8).
	Concurrency int
	// Duration is the hot-phase length (0 = 2s).
	Duration time.Duration
	// ColdRatio is the fraction of hot-phase requests sent with a
	// never-seen source (forced cache miss).
	ColdRatio float64
	// AutoRate is the fraction of hot-phase requests sent with
	// "auto": true — planner-parallelized execution on AutoPEs workers
	// — so the parallel path is load-tested alongside the serial one.
	// When set, the cold phase also first-touches each program's auto
	// variant, so hot auto requests hit the cache like serial ones.
	AutoRate float64
	// AutoPEs is the worker-pool size auto requests ask for (0 = 2 —
	// deliberately small: with Concurrency closed-loop workers in
	// flight, per-request pools multiply).
	AutoPEs int
	// BytecodeRate is the fraction of hot-phase requests sent with
	// "engine": "bytecode", load-testing the flat VM alongside the
	// default closure engine. No extra cold phase is needed: the
	// compiled-program cache is engine-independent (one compile
	// populates both backends), so bytecode requests hit the same
	// cache entries as serial ones.
	BytecodeRate float64
	// TraceRate is the fraction of hot-phase requests sent with
	// "profile": true, exercising the tracing path under load. A
	// profiled request whose Response carries no trace counts as an
	// error — the observability contract is part of what the load gate
	// checks.
	TraceRate float64
	// Seed makes the workers' corpus draws reproducible.
	Seed int64
	// Client overrides the HTTP client (nil = a pooled default).
	Client *http.Client
	// FleetBackends annotates the result row with the backend count the
	// target URL fronts (0 = a single pslserved, no router). Metadata
	// only — the generator always talks to one URL; pointing it at a
	// pslrouter is what makes the run a fleet run.
	FleetBackends int
}

// LoadResult is one generator run's report (the BENCH_serve.json row).
type LoadResult struct {
	Concurrency int     `json:"concurrency"`
	ColdRatio   float64 `json:"cold_ratio"`
	// Backends echoes FleetBackends: the number of pslserved replicas
	// behind the target URL (0 = direct single process).
	Backends int `json:"backends,omitempty"`
	// AutoRate echoes the configured auto mix; AutoRequests counts the
	// hot-phase requests actually sent with "auto": true.
	AutoRate     float64 `json:"auto_rate"`
	AutoRequests int64   `json:"auto_requests"`
	// BytecodeRate echoes the configured engine mix; BytecodeRequests
	// counts the hot-phase requests actually sent with
	// "engine": "bytecode".
	BytecodeRate     float64 `json:"bytecode_rate"`
	BytecodeRequests int64   `json:"bytecode_requests"`
	// TraceRate echoes the configured profile mix; ProfiledRequests
	// counts the hot-phase requests actually sent with "profile": true
	// (each verified to return a trace).
	TraceRate        float64 `json:"trace_rate"`
	ProfiledRequests int64   `json:"profiled_requests"`
	// Requests/Errors cover the hot phase; an error is any non-200,
	// non-503 status or a Response with ok=false. 503s are the pool's
	// admission back-pressure — the worker backs off and retries, and
	// the attempt is counted under Rejected instead.
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	Rejected   int64   `json:"rejected"`
	DurationMS int64   `json:"duration_ms"`
	RPS        float64 `json:"rps"`
	// HotHitRate is Δhits/(Δhits+Δmisses) across the hot phase, from
	// the server's own cache counters.
	HotHitRate float64 `json:"hot_hit_rate"`
	P50US      int64   `json:"p50_us"`
	P95US      int64   `json:"p95_us"`
	P99US      int64   `json:"p99_us"`
	// ColdMeanUS is the mean first-touch latency from the cold phase.
	ColdMeanUS int64 `json:"cold_mean_us"`
}

// coldSeq distinguishes forced-miss sources across workers and runs in
// one process (each mutation must be globally fresh to be a miss).
var coldSeq atomic.Int64

// RunLoad drives one cold+hot generator run against a service.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if len(cfg.Corpus) == 0 {
		return nil, fmt.Errorf("serve: empty corpus")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		// The per-request Timeout is the generator's own watchdog: a
		// wedged server (the very regression a CI load gate exists to
		// catch) must fail the run, not hang it until the job timeout.
		client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Concurrency * 2,
				MaxIdleConnsPerHost: cfg.Concurrency * 2,
			},
		}
	}

	if cfg.AutoPEs <= 0 {
		cfg.AutoPEs = 2
	}
	res := &LoadResult{Concurrency: cfg.Concurrency, ColdRatio: cfg.ColdRatio,
		AutoRate: cfg.AutoRate, BytecodeRate: cfg.BytecodeRate,
		TraceRate: cfg.TraceRate, Backends: cfg.FleetBackends}

	// Cold phase: first touch of every corpus program — and, when the
	// hot phase will send auto requests, of every program's planned
	// variant, so the auto mix measures the hot path rather than
	// repeated first-touch planning.
	type coldReq struct {
		name string
		req  Request
	}
	coldReqs := make([]coldReq, 0, 2*len(cfg.Corpus))
	for _, p := range cfg.Corpus {
		coldReqs = append(coldReqs, coldReq{p.Name, Request{Source: p.Source, Fn: p.Fn}})
		if cfg.AutoRate > 0 {
			coldReqs = append(coldReqs, coldReq{p.Name + " (auto)",
				Request{Source: p.Source, Fn: p.Fn, Auto: true, PEs: cfg.AutoPEs}})
		}
	}
	var coldSum int64
	for _, c := range coldReqs {
		start := time.Now()
		resp, status, _, err := postRun(ctx, client, cfg.URL, c.req)
		if err != nil {
			return nil, fmt.Errorf("cold %s: %w", c.name, err)
		}
		if status != http.StatusOK || !resp.OK {
			return nil, fmt.Errorf("cold %s: status %d, error %q", c.name, status, resp.Error)
		}
		coldSum += time.Since(start).Microseconds()
	}
	res.ColdMeanUS = coldSum / int64(len(coldReqs))

	before, err := fetchStats(ctx, client, cfg.URL)
	if err != nil {
		return nil, err
	}

	// Hot phase: closed-loop workers over the hot/cold key mix.
	hctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	latencies := make([][]int64, cfg.Concurrency)
	var requests, errors, rejected, autoReqs, bcReqs, profiled atomic.Int64
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			for hctx.Err() == nil {
				p := cfg.Corpus[rng.Intn(len(cfg.Corpus))]
				src := p.Source
				if cfg.ColdRatio > 0 && rng.Float64() < cfg.ColdRatio {
					src += fmt.Sprintf("\n// cold-miss %d\n", coldSeq.Add(1))
				}
				req := Request{Source: src, Fn: p.Fn}
				if cfg.AutoRate > 0 && rng.Float64() < cfg.AutoRate {
					req.Auto = true
					req.PEs = cfg.AutoPEs
				}
				if cfg.BytecodeRate > 0 && rng.Float64() < cfg.BytecodeRate {
					req.Engine = "bytecode"
				}
				if cfg.TraceRate > 0 && rng.Float64() < cfg.TraceRate {
					req.Profile = true
				}
				t0 := time.Now()
				resp, status, hdr, err := postRun(hctx, client, cfg.URL, req)
				if hctx.Err() != nil && err != nil {
					break // the phase deadline cut this request off mid-flight
				}
				if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
					// Back-pressure: honor the server's Retry-After instead
					// of hammering a service that just said it is full.
					rejected.Add(1)
					select {
					case <-time.After(retryAfterDelay(hdr, 2*time.Millisecond)):
					case <-hctx.Done():
					}
					continue
				}
				requests.Add(1)
				if req.Auto {
					autoReqs.Add(1)
				}
				if req.Engine == "bytecode" {
					bcReqs.Add(1)
				}
				if req.Profile {
					profiled.Add(1)
				}
				latencies[w] = append(latencies[w], time.Since(t0).Microseconds())
				if err != nil || status != http.StatusOK || !resp.OK ||
					(req.Profile && resp.Trace == nil) {
					errors.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchStats(ctx, client, cfg.URL)
	if err != nil {
		return nil, err
	}

	res.Requests = requests.Load()
	res.Errors = errors.Load()
	res.Rejected = rejected.Load()
	res.AutoRequests = autoReqs.Load()
	res.BytecodeRequests = bcReqs.Load()
	res.ProfiledRequests = profiled.Load()
	res.DurationMS = elapsed.Milliseconds()
	if elapsed > 0 {
		res.RPS = float64(res.Requests) / elapsed.Seconds()
	}
	dh := after.Cache.Hits - before.Cache.Hits
	dm := after.Cache.Misses - before.Cache.Misses
	if dh+dm > 0 {
		res.HotHitRate = float64(dh) / float64(dh+dm)
	}
	var all []int64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50US = percentile(all, 0.50)
	res.P95US = percentile(all, 0.95)
	res.P99US = percentile(all, 0.99)
	return res, nil
}

// percentile reads the p-quantile of an ascending-sorted slice.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// retryAfterDelay converts a rejection's Retry-After header (integer
// seconds, per the servers in this repository) into a backoff,
// capped at 5s so a buggy header cannot park a worker; fallback covers
// absent or malformed values.
func retryAfterDelay(h http.Header, fallback time.Duration) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h.Get("Retry-After")))
	if err != nil || secs < 0 {
		return fallback
	}
	d := time.Duration(secs) * time.Second
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

func postRun(ctx context.Context, client *http.Client, base string, req Request) (Response, int, http.Header, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return Response{}, 0, nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(base, "/")+"/run", bytes.NewReader(body))
	if err != nil {
		return Response{}, 0, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := client.Do(hreq)
	if err != nil {
		return Response{}, 0, nil, err
	}
	defer hresp.Body.Close()
	var resp Response
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return Response{}, hresp.StatusCode, hresp.Header, err
	}
	return resp, hresp.StatusCode, hresp.Header, nil
}

// WaitReady polls /healthz until the service answers 200 or ctx dies —
// so a generator started alongside the server needs no sleep.
func WaitReady(ctx context.Context, client *http.Client, base string) error {
	if client == nil {
		client = http.DefaultClient
	}
	url := strings.TrimRight(base, "/") + "/healthz"
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("serve: service at %s not ready: %w", base, ctx.Err())
		}
	}
}

func fetchStats(ctx context.Context, client *http.Client, base string) (Stats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(base, "/")+"/stats", nil)
	if err != nil {
		return Stats{}, err
	}
	hresp, err := client.Do(hreq)
	if err != nil {
		return Stats{}, err
	}
	defer hresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		return Stats{}, err
	}
	return st, nil
}
