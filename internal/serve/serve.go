// Package serve is the PSL execution service: the long-lived,
// concurrent counterpart of the one-shot cmd pipeline. Where every
// prior layer of this repository runs one program per process
// invocation — paying lex/parse/check/compile on every run — serve
// amortizes the whole front end across requests and makes *throughput
// under load* the performance story:
//
//   - a sharded, content-hash-keyed LRU cache of checked programs
//     (cache.go) whose compiled closure code is pre-built at insert
//     (interp.Precompile), so a repeat request skips lexing, parsing,
//     checking, slot resolution, and codegen entirely — it binds a
//     frame and runs. Concurrent cold misses for one source are
//     singleflighted: one build, everyone waits on it.
//   - per-request sandboxing (execute below): wall-clock deadline via
//     context cancellation plus step, allocation, and output-byte
//     budgets, enforced inside both execution engines so the
//     tree-walking oracle remains a valid differential check for the
//     served configuration too.
//   - an admission-controlled worker pool (pool.go): a bounded queue
//     in front of a fixed worker set, rejecting (rather than
//     buffering) load beyond the queue, with graceful drain on Close.
//   - a stats surface (stats.go, GET /stats): cache hit/miss/eviction
//     and compile counts, queue depth, and a request-latency
//     histogram — the numbers cmd/loadgen turns into BENCH_serve.json.
//   - auto-parallelized execution ("auto": true): the planner
//     (transform.AutoParallelize) runs the dependence test on every
//     loop of the submitted program and strip-mines the approved ones;
//     the planned variant is cached as its own entry keyed by
//     (source, width), so hot auto requests skip analysis, planning,
//     and compilation exactly like hot serial requests skip the front
//     end. The Response carries the plan: which loops run parallel,
//     and why the rest were rejected.
//
// cmd/pslserved exposes a Server over HTTP (http.go); cmd/loadgen
// drives it closed-loop (loadgen.go). DESIGN.md's R4 row records the
// resulting throughput trajectory.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/parexec"
	"repro/internal/transform"
)

// Config sizes a Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of concurrently executing requests
	// (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue in front of the workers;
	// a request arriving with the queue full is rejected with ErrBusy
	// (0 = 4×Workers).
	QueueDepth int
	// TenantQueueDepth is the per-tenant admission quota: how many of a
	// single tenant's requests may be queued at once. A tenant at its
	// quota is rejected with ErrTenantBusy even while the global queue
	// has room, so one tenant cannot crowd out the rest; dispatch across
	// tenants with queued work is round-robin (fair queuing). 0 =
	// QueueDepth, i.e. no per-tenant bound beyond the global one.
	TenantQueueDepth int
	// CacheEntries is the compiled-program cache capacity across all
	// shards (0 = 128 entries). Capacity is split evenly per shard and
	// rounded up, so the effective total is
	// ceil(CacheEntries/CacheShards)×CacheShards — Stats reports the
	// effective number.
	CacheEntries int
	// CacheShards is the shard count of the program cache (0 = 8).
	CacheShards int
	// MaxPEs caps the worker-pool size a parallel request may ask for
	// (0 = 32); requests beyond it are rejected as malformed. Without
	// a cap a single request could spawn unbounded goroutines, which
	// no other sandbox budget bounds.
	MaxPEs int
	// MaxStripWidth caps the strip width an auto request may ask for
	// (0 = 256). Width only sets loop constants — runtime stays
	// bounded by the sandbox budgets — but each distinct width is a
	// separate cache variant, so the cap also bounds how many variants
	// one source can pin.
	MaxStripWidth int
	// DefaultTimeout is the per-request wall-clock budget when the
	// request does not name one (0 = 5s); MaxTimeout caps what a
	// request may ask for (0 = 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSourceBytes bounds request source size (0 = 1 MiB).
	MaxSourceBytes int
	// MaxSteps / MaxAllocs / MaxOutputBytes are the per-request
	// sandbox budgets handed to the interpreter
	// (0 = 50M steps / 1M allocations / 1 MiB of print output).
	MaxSteps       int64
	MaxAllocs      int64
	MaxOutputBytes int64
	// TraceRate samples requests for tracing: a fraction in (0, 1]
	// traces roughly that share of requests (deterministically, every
	// Nth) into the /debug/traces ring. 0 disables sampling — the hot
	// path then takes no clock readings and allocates nothing for
	// tracing. Requests with "profile": true or an X-PSL-Trace header
	// are always traced, regardless of the rate.
	TraceRate float64
	// TraceBuffer bounds the /debug/traces ring (0 = 64 traces).
	TraceBuffer int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 8
	}
	if c.MaxPEs <= 0 {
		c.MaxPEs = 32
	}
	if c.MaxStripWidth <= 0 {
		c.MaxStripWidth = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 50_000_000
	}
	if c.MaxAllocs <= 0 {
		c.MaxAllocs = 1_000_000
	}
	if c.MaxOutputBytes <= 0 {
		c.MaxOutputBytes = 1 << 20
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = 64
	}
	return c
}

// Request is one execution request (the POST /run body).
type Request struct {
	// Source is the PSL program text; its content hash is the cache
	// key, so byte-identical sources share one compiled program.
	Source string `json:"source"`
	// Fn is the function to call (default "main").
	Fn string `json:"fn,omitempty"`
	// Args are the call arguments; integral JSON numbers become PSL
	// ints, fractional ones reals.
	Args []json.Number `json:"args,omitempty"`
	// Engine selects the interpreter engine: "compiled" (the
	// default), "bytecode" (the flat register-bank VM), or "walk"
	// (the differential oracle).
	Engine string `json:"engine,omitempty"`
	// Parallel runs forall regions on the parexec worker pool with PEs
	// workers (0 = GOMAXPROCS) under the Sched policy ("block",
	// "cyclic", or "dynamic" with Chunk; default dynamic(1)).
	Parallel bool   `json:"parallel,omitempty"`
	PEs      int    `json:"pes,omitempty"`
	Sched    string `json:"sched,omitempty"`
	Chunk    int    `json:"chunk,omitempty"`
	// Auto asks the planner to decide what is parallel: every while
	// loop of the program goes through the dependence test, approved
	// loops are strip-mined, and the transformed program runs on the
	// parexec pool (PEs/Sched/Chunk as with Parallel). The Response
	// carries the plan. The planned variant is cached like any other
	// program — keyed by (source, width) — so hot auto requests do no
	// analysis, planning, or compilation.
	Auto bool `json:"auto,omitempty"`
	// Width overrides the strip width for Auto (0 = 4× the effective
	// PE count, capped by the server's MaxStripWidth).
	Width int `json:"width,omitempty"`
	// Tenant attributes the request for admission: each tenant has its
	// own quota of queue slots (Config.TenantQueueDepth) and its own
	// fair-queuing turn. Empty is fine — anonymous requests share one
	// tenant.
	Tenant string `json:"tenant,omitempty"`
	// Seed feeds the deterministic rand() builtin.
	Seed uint64 `json:"seed,omitempty"`
	// TimeoutMS requests a specific wall-clock budget instead of the
	// server default — smaller or larger, capped at Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Profile asks for the request's span tree (and, for parallel and
	// auto requests, the per-forall efficiency report) in the Response.
	// A profiled request is always traced, regardless of TraceRate.
	Profile bool `json:"profile,omitempty"`
	// TraceID is the propagated trace identifier, carried between
	// processes in the X-PSL-Trace header (obs.TraceHeader), not the
	// JSON body: the router stamps one ID on a request and reuses it
	// across failover retries, so the backend spans of every attempt
	// stitch into one logical trace. A request with a TraceID is always
	// traced.
	TraceID string `json:"-"`
}

// Response reports one execution (the POST /run reply).
type Response struct {
	OK bool `json:"ok"`
	// Result is the returned value rendered like print() would
	// ("0" for procedures); Kind names its type.
	Result string `json:"result,omitempty"`
	Kind   string `json:"kind,omitempty"`
	// Output is the program's print() stream.
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
	// Cached reports whether the program came from the compiled cache
	// (true on every hot-path request).
	Cached    bool  `json:"cached"`
	Steps     int64 `json:"steps"`
	Allocs    int64 `json:"allocs"`
	ElapsedUS int64 `json:"elapsed_us"`
	// Plan reports what the auto-parallelization planner did (Auto
	// requests only).
	Plan *PlanSummary `json:"plan,omitempty"`
	// Trace is the request's span tree (Profile requests only).
	Trace *obs.TraceView `json:"trace,omitempty"`
	// Efficiency is the per-forall-site parallel-efficiency report
	// (Profile requests that ran parallel or auto): the measured
	// counterpart of Plan — per-PE busy time, barrier wait, and task
	// counts for every forall the program actually dispatched.
	Efficiency []obs.SiteReport `json:"efficiency,omitempty"`
}

// PlanSummary is the wire form of the planner's report: which loops
// run parallel and why the rest do not.
type PlanSummary struct {
	Width        int        `json:"width"`
	Parallelized []PlanLoop `json:"parallelized"`
	Rejected     []PlanLoop `json:"rejected"`
}

// PlanLoop is one while loop's verdict. Fn/Loop/Line locate it in the
// submitted source; Helper names the generated iteration procedure
// (parallelized loops), Reason says why the loop stays serial
// (rejected loops — the dependence test's verdict, or absorption into
// an enclosing parallelized loop). For parallelized loops, Vectorized
// reports whether the strip additionally lowered to a batched SPMD
// kernel; when it did not, VectorReason carries the classifier's
// concrete why-not.
type PlanLoop struct {
	Fn           string `json:"fn"`
	Loop         int    `json:"loop"`
	Line         int    `json:"line"`
	Helper       string `json:"helper,omitempty"`
	Reason       string `json:"reason,omitempty"`
	Vectorized   bool   `json:"vectorized,omitempty"`
	VectorReason string `json:"vector_reason,omitempty"`
}

// planSummary converts the planner's report to the wire form.
func planSummary(p *transform.Plan) *PlanSummary {
	ps := &PlanSummary{Width: p.Width}
	for _, lp := range p.Loops {
		pl := PlanLoop{Fn: lp.Func, Loop: lp.Index, Line: lp.Pos.Line}
		switch {
		case lp.Parallelized:
			pl.Helper = lp.Helper
			pl.Vectorized = lp.Vectorized
			if !lp.Vectorized {
				pl.VectorReason = lp.VectorReason
			}
			ps.Parallelized = append(ps.Parallelized, pl)
		case lp.Absorbed:
			pl.Reason = "runs serially inside the parallel iterations of " + lp.AbsorbedInto
			ps.Rejected = append(ps.Rejected, pl)
		default:
			pl.Reason = lp.ReasonText()
			ps.Rejected = append(ps.Rejected, pl)
		}
	}
	return ps
}

// Admission errors (ErrBusy and ErrDraining map to HTTP 503,
// ErrTenantBusy to 429 — the tenant is over quota, the service is not
// overloaded — all with Retry-After).
var (
	// ErrBusy rejects a request that found the admission queue full.
	ErrBusy = errors.New("serve: queue full")
	// ErrTenantBusy rejects a request whose tenant has exhausted its
	// own quota of queue slots.
	ErrTenantBusy = errors.New("serve: tenant quota exceeded")
	// ErrDraining rejects requests arriving after Close began.
	ErrDraining = errors.New("serve: draining")
)

// RequestError marks a malformed request (mapped to HTTP 400).
type RequestError struct{ Msg string }

func (e *RequestError) Error() string { return e.Msg }

func badRequest(format string, args ...any) error {
	return &RequestError{Msg: fmt.Sprintf(format, args...)}
}

// Server is the execution service. Create with New, expose over HTTP
// with Handler, retire with Close (drains in-flight requests).
type Server struct {
	cfg   Config
	cache *cache
	pool  *pool
	start time.Time

	// sampler decides which untagged requests get traced (nil when
	// TraceRate is 0 — the not-traced decision is then a nil compare);
	// traces is the bounded ring /debug/traces reads.
	sampler *obs.Sampler
	traces  *obs.Ring

	draining  atomic.Bool
	requests  atomic.Int64 // every Run call
	invalid   atomic.Int64 // rejected before admission (malformed)
	rejected  atomic.Int64 // admission rejections (queue full / draining)
	abandoned atomic.Int64 // admitted but cancelled by the client while queued
	errors    atomic.Int64 // executed requests that failed
	latency   *histogram   // executed requests only
}

// New builds a Server from cfg (zero value = all defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		cache:   newCache(cfg.CacheEntries, cfg.CacheShards),
		pool:    newPool(cfg.Workers, cfg.QueueDepth, cfg.TenantQueueDepth),
		start:   time.Now(),
		sampler: obs.NewSampler(cfg.TraceRate),
		traces:  obs.NewRing(cfg.TraceBuffer),
		latency: newHistogram(),
	}
}

// Close stops admission and drains: queued and running requests finish,
// then the workers exit. Subsequent Run calls return ErrDraining.
func (s *Server) Close() {
	s.draining.Store(true)
	s.pool.close()
}

// Run validates, admits, and executes one request. The returned error
// is nil for every request that reached execution (Response.OK
// distinguishes success); non-nil errors are admission rejections
// (ErrBusy, ErrDraining) or *RequestError for malformed requests.
func (s *Server) Run(ctx context.Context, req Request) (Response, error) {
	s.requests.Add(1)
	if s.draining.Load() {
		s.rejected.Add(1)
		return Response{}, ErrDraining
	}
	if req.Source == "" {
		s.invalid.Add(1)
		return Response{}, badRequest("empty source")
	}
	if len(req.Source) > s.cfg.MaxSourceBytes {
		s.invalid.Add(1)
		return Response{}, badRequest("source is %d bytes, cap is %d", len(req.Source), s.cfg.MaxSourceBytes)
	}
	eng, err := interp.ParseEngine(req.Engine)
	if err != nil {
		s.invalid.Add(1)
		return Response{}, badRequest("%v", err)
	}
	var pol parexec.Policy
	if req.Parallel || req.Auto {
		if req.PEs < 0 || req.PEs > s.cfg.MaxPEs {
			s.invalid.Add(1)
			return Response{}, badRequest("pes %d out of range [0, %d]", req.PEs, s.cfg.MaxPEs)
		}
		if req.Sched != "" {
			if pol, err = parexec.ParsePolicy(req.Sched, req.Chunk); err != nil {
				s.invalid.Add(1)
				return Response{}, badRequest("%v", err)
			}
		}
	}
	// Resolve the auto strip width up front: the resolved width is part
	// of the cache key, so two requests that mean the same width share
	// one planned variant.
	width := 0
	if req.Auto {
		if req.Width < 0 || req.Width > s.cfg.MaxStripWidth {
			s.invalid.Add(1)
			return Response{}, badRequest("width %d out of range [0, %d]", req.Width, s.cfg.MaxStripWidth)
		}
		width = req.Width
		if width == 0 {
			pes := req.PEs
			if pes <= 0 {
				pes = runtime.GOMAXPROCS(0)
				if pes > s.cfg.MaxPEs {
					pes = s.cfg.MaxPEs
				}
			}
			width = transform.DefaultWidth(pes)
			if width > s.cfg.MaxStripWidth {
				width = s.cfg.MaxStripWidth
			}
		}
	}
	args, err := convertArgs(req.Args)
	if err != nil {
		s.invalid.Add(1)
		return Response{}, err
	}

	// Trace decision: profiled requests, requests carrying a propagated
	// ID, and the sampler's share. With all three off this is two
	// compares and a nil check — no clocks, no allocations — which is
	// the overhead contract the serve alloc test pins.
	var tr *obs.Trace
	if req.Profile || req.TraceID != "" || s.sampler.Sample() {
		tr = obs.NewTrace(req.TraceID)
	}

	var resp Response
	adm := tr.Start("admission")
	j := &job{
		ctx:    ctx,
		done:   make(chan struct{}),
		tenant: req.Tenant,
		fn: func() {
			adm.End()
			resp = s.execute(ctx, req, eng, pol, width, args, tr)
		},
	}
	if err := s.pool.submit(j); err != nil {
		s.rejected.Add(1)
		return Response{}, err
	}
	<-j.done
	if j.skipped {
		// The client abandoned the request while it was queued; nothing
		// executed, so this is neither an execution error nor a latency
		// sample — it gets its own counter.
		s.abandoned.Add(1)
		s.finishTrace(tr, &resp, req.Profile)
		return Response{Error: fmt.Sprintf("serve: cancelled while queued: %v", ctx.Err())}, nil
	}
	s.finishTrace(tr, &resp, req.Profile)
	return resp, nil
}

// finishTrace closes a request's trace, stores it in the debug ring,
// and — for profiled requests — attaches the span tree to the
// response. No-op when the request was not traced.
func (s *Server) finishTrace(tr *obs.Trace, resp *Response, profile bool) {
	if tr == nil {
		return
	}
	tr.Finish()
	v := tr.View()
	s.traces.Add(v)
	if profile {
		resp.Trace = &v
	}
}

// execute runs one admitted request on the calling worker: cache
// lookup (compiling — and for auto requests, planning — at most once
// per distinct variant), then a sandboxed run — deadline, step,
// allocation, and output budgets all active in whichever engine and
// mode the request selected.
func (s *Server) execute(ctx context.Context, req Request, eng interp.Engine, pol parexec.Policy, width int, args []interp.Value, tr *obs.Trace) Response {
	start := time.Now()
	done := func(resp Response) Response {
		el := time.Since(start)
		resp.ElapsedUS = el.Microseconds()
		s.latency.observe(el)
		if !resp.OK {
			s.errors.Add(1)
		}
		return resp
	}

	// The wall-clock budget starts before the cache lookup, so it also
	// bounds time spent waiting on another request's in-flight build of
	// the same source. The build itself (parse/check/codegen) is not
	// preemptible, but its input is bounded by MaxSourceBytes.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < s.cfg.MaxTimeout {
			timeout = d
		} else {
			timeout = s.cfg.MaxTimeout
		}
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	key := serialKey(req.Source)
	if req.Auto {
		key = autoKey(req.Source, width)
	}
	// The cache span covers the lookup including any singleflight wait
	// on another request's in-flight build; the parse/plan/compile
	// children appear only when THIS request ran the cold build (the
	// closure runs on the winner's goroutine).
	cacheSp := tr.Start("cache")
	cp, plan, cached, err := s.cache.get(rctx, key, func() (*interp.CompiledProgram, *transform.Plan, error) {
		parseSp := cacheSp.Start("parse")
		p, err := lang.Parse(req.Source)
		parseSp.End()
		if err != nil {
			return nil, nil, err
		}
		var plan *transform.Plan
		if req.Auto {
			// The whole front half of the paper runs here, once per
			// (source, width): path-matrix analysis, dependence tests on
			// every loop, strip-mining of the approved ones. The entry
			// pins the plan next to the code, so hot auto requests get
			// their report for free.
			planSp := cacheSp.Start("plan")
			plan, err = transform.AutoParallelize(p, width)
			planSp.End()
			if err != nil {
				return nil, nil, err
			}
			p = plan.Program
		}
		// Build and pin the closure code now, while we hold the cold
		// path: the entry owns its code, so hits never recompile even
		// when interp's bounded code cache churns under cold traffic.
		compileSp := cacheSp.Start("compile")
		pinned := interp.CompileProgram(p)
		compileSp.End()
		if pinned.Err() != nil {
			return nil, nil, pinned.Err()
		}
		return pinned, plan, nil
	})
	if cacheSp != nil {
		cacheSp.SetAttr("hit", fmt.Sprintf("%t", cached))
		cacheSp.End()
	}
	if err != nil {
		// Distinguish "this request's deadline expired while waiting on
		// another request's in-flight build" from a genuine front-end
		// failure — the program didn't fail to compile.
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return done(Response{Cached: cached,
				Error: fmt.Sprintf("serve: cancelled while waiting for compile: %v", err)})
		}
		return done(Response{Cached: cached, Error: fmt.Sprintf("compile: %v", err)})
	}

	fn := req.Fn
	if fn == "" {
		fn = "main"
	}
	var out bytes.Buffer
	var v interp.Value
	var st interp.Stats
	var rerr error
	execSp := tr.Start("execute")
	var prof *obs.ForallProfiler
	if req.Parallel || req.Auto {
		if tr != nil {
			prof = obs.NewForallProfiler()
		}
		v, st, rerr = parexec.Run(cp.Program(), parexec.Options{
			Interp:         eng,
			Compiled:       cp,
			PEs:            req.PEs,
			Sched:          pol,
			Seed:           req.Seed,
			Output:         &out,
			MaxSteps:       s.cfg.MaxSteps,
			Ctx:            rctx,
			MaxAllocs:      s.cfg.MaxAllocs,
			MaxOutputBytes: s.cfg.MaxOutputBytes,
			Profiler:       prof,
		}, fn, args...)
	} else {
		v, st, rerr = interp.RunCompiled(cp, interp.Config{
			Engine:         eng,
			Seed:           req.Seed,
			Output:         &out,
			MaxSteps:       s.cfg.MaxSteps,
			Ctx:            rctx,
			MaxAllocs:      s.cfg.MaxAllocs,
			MaxOutputBytes: s.cfg.MaxOutputBytes,
		}, fn, args...)
	}
	execSp.End()

	mergeSp := tr.Start("merge")
	resp := Response{
		OK:     rerr == nil,
		Cached: cached,
		Output: out.String(),
		Steps:  st.Steps,
		Allocs: st.Allocations,
	}
	if plan != nil {
		resp.Plan = planSummary(plan)
	}
	if req.Profile && prof != nil {
		resp.Efficiency = efficiencyReport(prof, resp.Plan)
	}
	if rerr != nil {
		resp.Error = rerr.Error()
	} else {
		resp.Result = v.String()
		resp.Kind = kindName(v)
	}
	mergeSp.End()
	return done(resp)
}

// efficiencyReport joins the profiler's per-site measurements with the
// planner's loop table: a site and a plan loop share the source line
// (the strip-mined forall is stamped with the original loop's
// position), so the report can name the function each forall came
// from. Parallel (non-auto) requests have no plan; their sites report
// the line alone.
func efficiencyReport(prof *obs.ForallProfiler, plan *PlanSummary) []obs.SiteReport {
	rep := prof.Report()
	if plan != nil {
		byLine := make(map[int]string, len(plan.Parallelized))
		for _, lp := range plan.Parallelized {
			byLine[lp.Line] = lp.Fn
		}
		for i := range rep {
			rep[i].Fn = byLine[rep[i].Line]
		}
	}
	return rep
}

// convertArgs maps JSON numbers onto PSL values: integral → int,
// fractional → real.
func convertArgs(nums []json.Number) ([]interp.Value, error) {
	args := make([]interp.Value, len(nums))
	for i, n := range nums {
		if iv, err := n.Int64(); err == nil {
			args[i] = interp.IntVal(iv)
			continue
		}
		fv, err := n.Float64()
		if err != nil {
			return nil, badRequest("arg %d: %q is not a number", i, string(n))
		}
		args[i] = interp.RealVal(fv)
	}
	return args, nil
}

func kindName(v interp.Value) string {
	switch v.Kind {
	case interp.KindInt:
		return "int"
	case interp.KindReal:
		return "real"
	case interp.KindBool:
		return "bool"
	case interp.KindString:
		return "string"
	case interp.KindPtr:
		return "ptr"
	}
	return "?"
}
