// The admission-controlled worker pool: a fixed set of worker
// goroutines behind bounded per-tenant queues. Admission is
// non-blocking — a request that finds the global queue full is
// rejected immediately (ErrBusy) rather than buffered, and a tenant
// that has already filled its own quota is rejected (ErrTenantBusy)
// even when the global queue has room — so one tenant cannot starve
// the fleet. Dispatch is fair-queued: workers take the head of each
// queued tenant's FIFO in round-robin order, so a tenant with one
// queued request waits behind at most one request per other active
// tenant, not behind a flood. Requests without a tenant share the ""
// tenant, which keeps the single-tenant behavior identical to the old
// single-FIFO pool. close() drains: everything admitted runs to
// completion, then the workers exit.
package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// job is one admitted request. The worker runs fn — unless ctx died
// while the job sat in the queue, in which case it sets skipped — and
// closes done either way; the submitter blocks on done.
type job struct {
	ctx     context.Context
	fn      func()
	done    chan struct{}
	skipped bool
	tenant  string
}

// tenantQ is one tenant's FIFO of queued jobs. It exists only while
// the tenant has jobs queued: created on first enqueue, deleted (and
// unseated from the round-robin order) when its last job is taken, so
// the pool's memory is bounded by queued work, not by tenant history.
type tenantQ struct {
	name string
	jobs []*job
}

type pool struct {
	mu     sync.Mutex
	cond   *sync.Cond // signals workers that queued > 0 or closed
	closed bool

	queues map[string]*tenantQ
	order  []*tenantQ // tenants with queued jobs, in round-robin order
	next   int        // round-robin cursor into order
	queued int        // total queued jobs across tenants

	depth     int // global queue capacity
	perTenant int // per-tenant queue capacity (the admission quota)

	tenantRejected int64 // quota rejections (guarded by mu)

	wg      sync.WaitGroup
	workers int
	running atomic.Int64
}

func newPool(workers, depth, perTenant int) *pool {
	if perTenant <= 0 || perTenant > depth {
		perTenant = depth
	}
	p := &pool{
		queues:    make(map[string]*tenantQ),
		depth:     depth,
		perTenant: perTenant,
		workers:   workers,
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// submit admits j or rejects it without blocking.
func (p *pool) submit(j *job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrDraining
	}
	if p.queued >= p.depth {
		return ErrBusy
	}
	q := p.queues[j.tenant]
	if q != nil && len(q.jobs) >= p.perTenant {
		p.tenantRejected++
		return ErrTenantBusy
	}
	if q == nil {
		q = &tenantQ{name: j.tenant}
		p.queues[j.tenant] = q
		// Seat the tenant at the back of the rotation: it is served
		// after each already-active tenant gets one turn.
		p.order = append(p.order, q)
	}
	q.jobs = append(q.jobs, j)
	p.queued++
	p.cond.Signal()
	return nil
}

// take blocks until a job is available and returns the next one in
// round-robin tenant order; ok is false once the pool is closed and
// fully drained.
func (p *pool) take() (j *job, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.queued == 0 && !p.closed {
		p.cond.Wait()
	}
	if p.queued == 0 {
		return nil, false
	}
	if p.next >= len(p.order) {
		p.next = 0
	}
	q := p.order[p.next]
	j = q.jobs[0]
	q.jobs = q.jobs[1:]
	p.queued--
	if len(q.jobs) == 0 {
		p.order = append(p.order[:p.next], p.order[p.next+1:]...)
		delete(p.queues, q.name)
		// next now indexes the following tenant already.
	} else {
		p.next++
	}
	return j, true
}

func (p *pool) worker() {
	defer p.wg.Done()
	for {
		j, ok := p.take()
		if !ok {
			return
		}
		if j.ctx != nil && j.ctx.Err() != nil {
			j.skipped = true
		} else {
			p.running.Add(1)
			j.fn()
			p.running.Add(-1)
		}
		close(j.done)
	}
}

// close stops admission, lets queued and running jobs finish, and
// waits for the workers to exit.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// QueueStats is the pool section of Stats.
type QueueStats struct {
	Depth    int `json:"depth"` // jobs waiting (snapshot)
	Capacity int `json:"capacity"`
	Running  int `json:"running"` // jobs executing (snapshot)
	Workers  int `json:"workers"`
	// Tenants is the number of tenants with queued jobs (snapshot);
	// TenantQuota the per-tenant queue capacity; TenantRejected the
	// admissions refused because the tenant's own queue was full.
	Tenants        int   `json:"tenants"`
	TenantQuota    int   `json:"tenant_quota"`
	TenantRejected int64 `json:"tenant_rejected"`
}

func (p *pool) stats() QueueStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return QueueStats{
		Depth:          p.queued,
		Capacity:       p.depth,
		Running:        int(p.running.Load()),
		Workers:        p.workers,
		Tenants:        len(p.queues),
		TenantQuota:    p.perTenant,
		TenantRejected: p.tenantRejected,
	}
}
