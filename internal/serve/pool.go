// The admission-controlled worker pool: a fixed set of worker
// goroutines behind a bounded queue. Admission is non-blocking — a
// request that finds the queue full is rejected immediately (ErrBusy)
// rather than buffered, which keeps latency bounded under overload
// and makes the rejection rate a first-class stat. close() drains:
// everything admitted runs to completion, then the workers exit.
package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// job is one admitted request. The worker runs fn — unless ctx died
// while the job sat in the queue, in which case it sets skipped — and
// closes done either way; the submitter blocks on done.
type job struct {
	ctx     context.Context
	fn      func()
	done    chan struct{}
	skipped bool
}

type pool struct {
	mu      sync.Mutex // guards closed + the jobs send in submit
	closed  bool
	jobs    chan *job
	wg      sync.WaitGroup
	workers int
	running atomic.Int64
}

func newPool(workers, depth int) *pool {
	p := &pool{jobs: make(chan *job, depth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		if j.ctx != nil && j.ctx.Err() != nil {
			j.skipped = true
		} else {
			p.running.Add(1)
			j.fn()
			p.running.Add(-1)
		}
		close(j.done)
	}
}

// submit admits j or rejects it without blocking.
func (p *pool) submit(j *job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrDraining
	}
	select {
	case p.jobs <- j:
		return nil
	default:
		return ErrBusy
	}
}

// close stops admission, lets queued and running jobs finish, and
// waits for the workers to exit.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// QueueStats is the pool section of Stats.
type QueueStats struct {
	Depth    int `json:"depth"` // jobs waiting (snapshot)
	Capacity int `json:"capacity"`
	Running  int `json:"running"` // jobs executing (snapshot)
	Workers  int `json:"workers"`
}

func (p *pool) stats() QueueStats {
	return QueueStats{
		Depth:    len(p.jobs),
		Capacity: cap(p.jobs),
		Running:  int(p.running.Load()),
		Workers:  p.workers,
	}
}
