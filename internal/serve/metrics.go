// The Prometheus surface: GET /metrics on pslserved and pslrouter
// render the same Stats / RouterStats snapshots the JSON /stats
// endpoints serve, in text exposition format. The metrics are derived
// from the snapshot — there is no second set of counters to drift from
// the JSON numbers, and scraping costs one snapshot, same as /stats.
package serve

import (
	"fmt"
	"net/http"

	"repro/internal/obs"
)

// promLatency renders a LatencyStats as a Prometheus histogram. The
// snapshot omits empty buckets, so the counts are re-spread over the
// full bound list (the exposition format wants every bucket,
// cumulative).
func promLatency(p *obs.Prom, name, help string, ls LatencyStats) {
	counts := make([]int64, len(latencyBoundsUS))
	var overflow int64
	for _, b := range ls.Buckets {
		if b.LeUS == 0 {
			overflow = b.Count
			continue
		}
		for i, bound := range latencyBoundsUS {
			if bound == b.LeUS {
				counts[i] = b.Count
				break
			}
		}
	}
	p.HistogramUS(name, help, latencyBoundsUS, counts, overflow, ls.Count, ls.SumUS)
}

func promRuntime(p *obs.Prom, rt RuntimeStats) {
	p.Gauge("psl_uptime_seconds", "Seconds since the process started serving.", float64(rt.UptimeMS)/1e3)
	p.Gauge("psl_gomaxprocs", "GOMAXPROCS of the serving process.", float64(rt.GoMaxProcs))
	p.Gauge("psl_num_cpu", "Logical CPUs visible to the process.", float64(rt.NumCPU))
	if rt.PEs > 0 {
		p.Gauge("psl_pes", "Worker-pool size (concurrently executing requests).", float64(rt.PEs))
	}
}

// writeMetrics renders one backend's Stats.
func writeMetrics(p *obs.Prom, st Stats) {
	p.Counter("psl_requests_total", "Run calls, including rejected and invalid ones.", float64(st.Requests))
	p.Counter("psl_invalid_requests_total", "Requests rejected as malformed.", float64(st.Invalid))
	p.Counter("psl_rejected_requests_total", "Admission rejections (queue full or draining).", float64(st.Rejected))
	p.Counter("psl_abandoned_requests_total", "Admitted requests cancelled by the client while queued.", float64(st.Abandoned))
	p.Counter("psl_request_errors_total", "Executed requests that failed.", float64(st.Errors))
	p.Counter("psl_cache_hits_total", "Program cache hits.", float64(st.Cache.Hits))
	p.Counter("psl_cache_misses_total", "Program cache misses.", float64(st.Cache.Misses))
	p.Counter("psl_cache_evictions_total", "Program cache evictions.", float64(st.Cache.Evictions))
	p.Counter("psl_cache_compiles_total", "Front-end builds (parse + check + codegen).", float64(st.Cache.Compiles))
	p.Gauge("psl_cache_entries", "Programs currently cached.", float64(st.Cache.Entries))
	p.Gauge("psl_cache_capacity", "Program cache capacity.", float64(st.Cache.Capacity))
	p.Gauge("psl_queue_depth", "Requests waiting for a worker.", float64(st.Queue.Depth))
	p.Gauge("psl_queue_capacity", "Admission queue capacity.", float64(st.Queue.Capacity))
	p.Gauge("psl_queue_running", "Requests executing now.", float64(st.Queue.Running))
	p.Gauge("psl_queue_workers", "Worker count.", float64(st.Queue.Workers))
	p.Gauge("psl_queue_tenants", "Tenants with queued requests.", float64(st.Queue.Tenants))
	p.Counter("psl_tenant_rejected_total", "Admissions refused because the tenant's quota was full.", float64(st.Queue.TenantRejected))
	promLatency(p, "psl_request_latency_seconds", "Latency of executed requests.", st.Latency)
	promRuntime(p, st.Runtime)
}

// writeRouterMetrics renders the router's RouterStats, with per-backend
// series labeled by backend URL.
func writeRouterMetrics(p *obs.Prom, st RouterStats) {
	p.Counter("psl_router_requests_total", "Requests the router received.", float64(st.Requests))
	p.Counter("psl_router_submitted_total", "Async jobs submitted.", float64(st.Submitted))
	p.Counter("psl_router_retries_total", "Failover retries to another backend.", float64(st.Retries))
	p.Counter("psl_router_unroutable_total", "Requests with no healthy backend to try.", float64(st.Unroutable))
	p.Counter("psl_router_cache_hits_total", "Fleet-aggregate program cache hits.", float64(st.Cache.Hits))
	p.Counter("psl_router_cache_misses_total", "Fleet-aggregate program cache misses.", float64(st.Cache.Misses))
	p.Counter("psl_router_cache_compiles_total", "Fleet-aggregate front-end builds.", float64(st.Cache.Compiles))
	healthy := make([]obs.Labeled, 0, len(st.Backends))
	routed := make([]obs.Labeled, 0, len(st.Backends))
	failures := make([]obs.Labeled, 0, len(st.Backends))
	for _, b := range st.Backends {
		l := fmt.Sprintf("backend=%q", obs.EscapeLabel(b.URL))
		h := 0.0
		if b.Healthy {
			h = 1
		}
		healthy = append(healthy, obs.Labeled{Labels: l, Value: h})
		routed = append(routed, obs.Labeled{Labels: l, Value: float64(b.Routed)})
		failures = append(failures, obs.Labeled{Labels: l, Value: float64(b.Failures)})
	}
	p.LabeledGauge("psl_router_backend_healthy", "1 while the backend passes health checks.", healthy)
	p.LabeledCounter("psl_router_backend_routed_total", "Requests routed to the backend.", routed)
	p.LabeledCounter("psl_router_backend_failures_total", "Transport failures talking to the backend.", failures)
	p.Counter("psl_router_jobs_submitted_total", "Jobs accepted by the async ledger.", float64(st.Jobs.Submitted))
	p.Gauge("psl_router_jobs_queued", "Jobs waiting for dispatch.", float64(st.Jobs.Queued))
	p.Gauge("psl_router_jobs_running", "Jobs dispatched and running.", float64(st.Jobs.Running))
	p.Counter("psl_router_jobs_done_total", "Jobs completed.", float64(st.Jobs.Done))
	p.Counter("psl_router_jobs_failed_total", "Jobs that exhausted their retries.", float64(st.Jobs.Failed))
	p.Counter("psl_router_jobs_requeues_total", "Job requeues after a backend loss.", float64(st.Jobs.Requeues))
	promRuntime(p, st.Runtime)
}

const promContentType = "text/plain; version=0.0.4; charset=utf-8"

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", promContentType)
	writeMetrics(obs.NewProm(w), s.Stats())
}

// handleTraces serves the bounded ring of recent traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.traces.Snapshot())
}
