package serve

import (
	"fmt"
	"testing"
)

func ringBackends(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://backend-%d:8080", i)
	}
	return out
}

// ringKeys is the deterministic key population the ring properties are
// measured over — stand-ins for program content hashes.
func ringKeys(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = ringHash(fmt.Sprintf("program-key-%d", i))
	}
	return out
}

// TestRingBalance: across fleets of 3–16 backends, every backend's key
// share stays within 15% of uniform — the property that makes
// cache-affinity sharding also a load-spreading strategy.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(100_000)
	for n := 3; n <= 16; n++ {
		backends := ringBackends(n)
		ring := newHashRing(backends, 0)
		counts := map[string]int{}
		for _, k := range keys {
			counts[ring.owner(k, nil)]++
		}
		mean := float64(len(keys)) / float64(n)
		for _, b := range backends {
			dev := (float64(counts[b]) - mean) / mean
			if dev < -0.15 || dev > 0.15 {
				t.Errorf("%d backends: %s owns %d keys, %.1f%% off uniform (%.0f)",
					n, b, counts[b], 100*dev, mean)
			}
		}
	}
}

// TestRingMinimalDisruption: adding one backend to an N-fleet moves
// only keys that the new backend now owns — nothing shuffles between
// surviving backends — and the moved count is close to the ideal
// keys/(N+1). Removing it restores the exact prior assignment.
func TestRingMinimalDisruption(t *testing.T) {
	keys := ringKeys(100_000)
	for _, n := range []int{3, 8, 15} {
		small := ringBackends(n)
		grown := ringBackends(n + 1)
		newcomer := grown[n]
		before := newHashRing(small, 0)
		after := newHashRing(grown, 0)

		moved := 0
		for _, k := range keys {
			was, is := before.owner(k, nil), after.owner(k, nil)
			if was == is {
				continue
			}
			moved++
			if is != newcomer {
				t.Fatalf("%d backends: key %x moved %s -> %s, not to the newcomer", n, k, was, is)
			}
		}
		// Ideal is keys/(N+1); allow vnode-placement variance plus slack,
		// which still stays far under the keys/N rehash-everything bound.
		ideal := float64(len(keys)) / float64(n+1)
		if float64(moved) > 1.35*ideal {
			t.Errorf("%d backends: grow moved %d keys, want ≈%.0f (≤%.0f)", n, moved, ideal, 1.35*ideal)
		}
		if moved == 0 {
			t.Errorf("%d backends: grow moved no keys — the newcomer owns nothing", n)
		}

		// Shrink (the newcomer leaves): assignments return exactly to the
		// N-backend ring — only the departed backend's keys move, and a
		// recovered replica gets its old keys (and cache entries) back.
		for _, k := range keys {
			alive := func(b string) bool { return b != newcomer }
			if got, want := after.owner(k, alive), before.owner(k, nil); got != want {
				t.Fatalf("%d backends: shrink reassigned key %x to %s, want %s", n, k, got, want)
			}
		}
	}
}

// TestRingOwnerEdgeCases: empty rings own nothing, predicates that
// reject everyone own nothing, and a single backend owns everything.
func TestRingOwnerEdgeCases(t *testing.T) {
	if got := (&hashRing{}).owner(42, nil); got != "" {
		t.Errorf("empty ring owner = %q", got)
	}
	ring := newHashRing(ringBackends(3), 8)
	if got := ring.owner(42, func(string) bool { return false }); got != "" {
		t.Errorf("all-rejected owner = %q", got)
	}
	solo := newHashRing(ringBackends(1), 8)
	for _, k := range ringKeys(100) {
		if got := solo.owner(k, nil); got != "http://backend-0:8080" {
			t.Fatalf("single-backend ring owner = %q", got)
		}
	}
}
