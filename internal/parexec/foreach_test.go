package parexec

import (
	"sync/atomic"
	"testing"
)

// TestForEachCoversAllIndices: every index in [0, n) runs exactly once,
// for serial, modest, and oversubscribed PE counts.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, tc := range []struct{ pes, n int }{
		{1, 17},  // serial fallback
		{3, 100}, // fewer PEs than work
		{8, 5},   // more PEs than work
		{0, 64},  // pes<=0 means GOMAXPROCS
		{4, 0},   // no work at all
		{4, 1},   // single item
	} {
		hits := make([]int64, tc.n)
		ForEach(tc.pes, tc.n, func(k int) {
			atomic.AddInt64(&hits[k], 1)
		})
		for k, h := range hits {
			if h != 1 {
				t.Errorf("pes=%d n=%d: index %d ran %d times, want 1", tc.pes, tc.n, k, h)
			}
		}
	}
}

// TestForEachConcurrent: with several PEs the callbacks genuinely
// overlap-safely aggregate — a race here would trip the -race runs of
// the planner, which batches depend.AnalyzeLoop calls through ForEach.
func TestForEachConcurrent(t *testing.T) {
	var sum int64
	const n = 10000
	ForEach(4, n, func(k int) {
		atomic.AddInt64(&sum, int64(k))
	})
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}
