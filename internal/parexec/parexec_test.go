package parexec_test

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/parexec"
)

// testdataPEs are the pool sizes the determinism tests sweep.
var testdataPEs = []int{2, 4, 8}

// testPolicies are the scheduling policies the determinism tests sweep
// (every policy must preserve the bit-identical guarantee). The two
// dynamic entries exercise both the chunk=1 engine default and a
// multi-iteration chunk.
var testPolicies = []parexec.Policy{
	parexec.StaticBlock,
	parexec.StaticCyclic,
	parexec.Dynamic(1),
	parexec.Dynamic(3),
}

func compileTestdata(t *testing.T, name string) *core.Compilation {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return c
}

// TestPolyscaleDeterministic: the strip-mined §3.3.2 program returns
// the serial checksum for every pool size and scheduling policy. The
// strip width is 4×PEs so the policies actually differ (at width=PEs
// every policy degenerates to one iteration per PE).
func TestPolyscaleDeterministic(t *testing.T) {
	c := compileTestdata(t, "polyscale.psl")
	want, _, err := c.Run(core.RunConfig{}, "main")
	if err != nil {
		t.Fatal(err)
	}
	for _, pes := range testdataPEs {
		par, err := c.StripMine("scale", 0, 4*pes)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range testPolicies {
			got, st, err := par.RunParallel(core.RunConfig{Sched: pol}, pes, "main")
			if err != nil {
				t.Fatal(err)
			}
			if got.I != want.I {
				t.Errorf("pes=%d sched=%s: %d, want %d", pes, pol.Name(), got.I, want.I)
			}
			if st.Barriers == 0 {
				t.Errorf("pes=%d sched=%s: no barriers counted — did the pool run?", pes, pol.Name())
			}
		}
	}
}

// TestForceWorkloadDeterministic: the R2 Barnes-Hut force loop
// (nbody.BarnesHutForcePSL) produces the serial checksum bit-for-bit
// under every scheduling policy at every pool size — the acceptance
// property `cmd/experiments -real` asserts at full scale.
func TestForceWorkloadDeterministic(t *testing.T) {
	c, err := core.Compile(nbody.BarnesHutForcePSL)
	if err != nil {
		t.Fatal(err)
	}
	args := []interp.Value{interp.IntVal(48), interp.RealVal(0.5)}
	want, _, err := c.Run(core.RunConfig{Seed: 7}, nbody.ForceFunc, args...)
	if err != nil {
		t.Fatal(err)
	}
	if want.F == 0 {
		t.Fatal("serial checksum is zero — no forces computed?")
	}
	for _, pes := range testdataPEs {
		par, err := c.StripMine(nbody.ForceFunc, nbody.ForceLoop, 4*pes)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range testPolicies {
			got, _, err := par.RunParallel(core.RunConfig{Seed: 7, Sched: pol}, pes, nbody.ForceFunc, args...)
			if err != nil {
				t.Fatal(err)
			}
			if got.F != want.F {
				t.Errorf("pes=%d sched=%s: checksum %g, want %g", pes, pol.Name(), got.F, want.F)
			}
		}
	}
}

// TestPolicyCoverage: every policy hands out each iteration exactly
// once, for ranges that are smaller than, equal to, larger than, and
// not divisible by the PE count.
func TestPolicyCoverage(t *testing.T) {
	for _, pol := range testPolicies {
		for _, tc := range []struct {
			from, to int64
			pes      int
		}{
			{0, 0, 4}, {0, 2, 4}, {0, 3, 4}, {0, 14, 4}, {5, 21, 3}, {0, 63, 8}, {0, 6, 1},
		} {
			seen := make(map[int64]int)
			asn := pol.Assign(tc.from, tc.to, tc.pes)
			for pe := 0; pe < tc.pes; pe++ {
				for {
					k, ok := asn.Next(pe)
					if !ok {
						break
					}
					seen[k]++
				}
			}
			for k := tc.from; k <= tc.to; k++ {
				if seen[k] != 1 {
					t.Errorf("%s [%d,%d] pes=%d: iteration %d handed out %d times",
						pol.Name(), tc.from, tc.to, tc.pes, k, seen[k])
				}
			}
			if int64(len(seen)) != tc.to-tc.from+1 {
				t.Errorf("%s [%d,%d] pes=%d: %d distinct iterations, want %d",
					pol.Name(), tc.from, tc.to, tc.pes, len(seen), tc.to-tc.from+1)
			}
		}
	}
}

// TestTestdataProgramsUnderPool: every root testdata program (including
// the untransformed ones, which exercise the serial path through the
// engine) produces its serial result on the pool.
func TestTestdataProgramsUnderPool(t *testing.T) {
	for _, tc := range []struct {
		name string
		want int64
	}{
		{"polyscale.psl", 0}, {"violations.psl", 1234}, {"orthlist.psl", 385},
	} {
		c := compileTestdata(t, tc.name)
		want, _, err := c.Run(core.RunConfig{}, "main")
		if err != nil {
			t.Fatal(err)
		}
		if tc.want != 0 && want.I != tc.want {
			t.Fatalf("%s: serial main = %d, want %d", tc.name, want.I, tc.want)
		}
		for _, pes := range testdataPEs {
			got, _, err := c.RunParallel(core.RunConfig{}, pes, "main")
			if err != nil {
				t.Fatal(err)
			}
			if got.I != want.I {
				t.Errorf("%s pes=%d: %d, want %d", tc.name, pes, got.I, want.I)
			}
		}
	}
}

// unevenSrc prints from a forall whose iterations do wildly different
// amounts of work, so completion order differs from iteration order:
// the merged stream must still come out in iteration order.
const unevenSrc = `
type Cell [X]
{ int v;
  Cell *next is uniquely forward along X;
};

procedure work(int i) {
  var int spin = (17 - i) * 4000;
  var int j = 0;
  var int acc = 0;
  while j < spin {
    acc = acc + j;
    j = j + 1;
  }
  print(i, acc);
}

procedure main() {
  forall i = 0 to 17 {
    work(i);
  }
}
`

// TestOutputMergedInIterationOrder: parallel print() output is
// bit-identical to the serial stream.
func TestOutputMergedInIterationOrder(t *testing.T) {
	prog, err := lang.Parse(unevenSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The serial reference is Simulated mode: it executes forall
	// iterations sequentially in iteration order (Real mode without a
	// scheduler interleaves goroutine output nondeterministically).
	var serial bytes.Buffer
	if _, _, err := interp.Run(prog, interp.Config{Mode: interp.Simulated, PEs: 1, Output: &serial}, "main"); err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 {
		t.Fatal("serial run printed nothing")
	}
	for _, pes := range testdataPEs {
		for _, pol := range testPolicies {
			var par bytes.Buffer
			_, st, err := parexec.Run(prog, parexec.Options{PEs: pes, Sched: pol, Output: &par}, "main")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial.Bytes(), par.Bytes()) {
				t.Errorf("pes=%d sched=%s: output diverged\nserial:\n%s\nparallel:\n%s",
					pes, pol.Name(), serial.String(), par.String())
			}
			if st.Barriers != 1 {
				t.Errorf("pes=%d sched=%s: barriers = %d, want 1", pes, pol.Name(), st.Barriers)
			}
		}
	}
}

// TestParsePolicy: the flag-surface names resolve, and garbage is
// rejected with the accepted names in the message.
func TestParsePolicy(t *testing.T) {
	for _, name := range parexec.PolicyNames() {
		p, err := parexec.ParsePolicy(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("ParsePolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := parexec.ParsePolicy(" Block ", 1); err != nil || p.Name() != "block" {
		t.Errorf("ParsePolicy is not case/space-insensitive: %v, %v", p, err)
	}
	if _, err := parexec.ParsePolicy("guided", 1); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestBarnesHutParallelMatchesSerial: the full §4.3 pipeline — both BH
// loops strip-mined — integrates to the same trajectories on the pool.
func TestBarnesHutParallelMatchesSerial(t *testing.T) {
	c, err := core.Compile(nbody.BarnesHutPSL)
	if err != nil {
		t.Fatal(err)
	}
	args := []interp.Value{
		interp.IntVal(24), interp.IntVal(2), interp.RealVal(0.5), interp.RealVal(0.01),
	}
	want, _, err := c.Run(core.RunConfig{Seed: 7}, "simulate", args...)
	if err != nil {
		t.Fatal(err)
	}
	for _, pes := range testdataPEs {
		p1, err := c.StripMine(nbody.TimestepFunc, nbody.BHL1, pes)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := p1.StripMine(nbody.TimestepFunc, nbody.BHL2, pes)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := p2.RunParallel(core.RunConfig{Seed: 7}, pes, "simulate", args...)
		if err != nil {
			t.Fatal(err)
		}
		wn, gn := want.N, got.N
		for wn != nil {
			if gn == nil {
				t.Fatalf("pes=%d: parallel particle list too short", pes)
			}
			for _, f := range []string{"posx", "posy", "posz", "velx"} {
				wv, err := interp.Field(interp.PtrVal(wn), f)
				if err != nil {
					t.Fatal(err)
				}
				gv, err := interp.Field(interp.PtrVal(gn), f)
				if err != nil {
					t.Fatal(err)
				}
				if wv.F != gv.F {
					t.Fatalf("pes=%d: %s diverged: %g vs %g", pes, f, wv.F, gv.F)
				}
			}
			wn, gn = wn.Ptrs["next"][0], gn.Ptrs["next"][0]
		}
		if gn != nil {
			t.Fatalf("pes=%d: parallel particle list too long", pes)
		}
		// Two strip-mined loops × two timesteps = 4 barriers minimum
		// (the outer while trips several times per step).
		if st.Barriers < 4 {
			t.Errorf("pes=%d: barriers = %d, want >= 4", pes, st.Barriers)
		}
	}
}

// TestMeasuredSpeedup: on a host with enough cores, the pool must beat
// serial interpretation on the measured workload. The threshold is
// deliberately below the ~2.5x a quiet 4-core host shows, to keep CI
// timing noise from flaking the suite.
func TestMeasuredSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	c, err := core.Compile(parexec.PolyNormalizePSL)
	if err != nil {
		t.Fatal(err)
	}
	const pes = 4
	par, err := c.StripMine(parexec.NormalizeFunc, parexec.NormalizeLoop, pes)
	if err != nil {
		t.Fatal(err)
	}
	args := []interp.Value{interp.IntVal(2000), interp.RealVal(1.001)}
	best := func(run func() error) time.Duration {
		var b time.Duration
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			if err := run(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); b == 0 || d < b {
				b = d
			}
		}
		return b
	}
	serial := best(func() error {
		_, _, err := c.Run(core.RunConfig{}, "run", args...)
		return err
	})
	parallel := best(func() error {
		_, _, err := par.RunParallel(core.RunConfig{}, pes, "run", args...)
		return err
	})
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, parallel(%d) %v: speedup %.2fx", serial, pes, parallel, speedup)
	if speedup < 1.2 {
		t.Errorf("speedup %.2fx at %d PEs on %d CPUs; want >= 1.2x", speedup, pes, runtime.NumCPU())
	}
}

// TestErrorPropagates: a failing iteration surfaces as the run's error.
func TestErrorPropagates(t *testing.T) {
	const src = `
procedure main(int d) {
  forall i = 0 to 7 {
    var int x = 10 / (i - d);
    print(x);
  }
}
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, _, err = parexec.Run(prog, parexec.Options{PEs: 4, Output: &out}, "main", interp.IntVal(3))
	if err == nil {
		t.Fatal("division by zero in iteration 3 must fail the run")
	}
	// Output mirrors the serial stream: iterations before the failing
	// one printed, nothing after.
	if got, want := out.String(), "-3\n-5\n-10\n"; got != want {
		t.Errorf("output on error path = %q, want %q", got, want)
	}
}

// TestReturnInsideForallRejected: the scheduler path reports the same
// error Simulated mode does instead of silently dropping the return.
func TestReturnInsideForallRejected(t *testing.T) {
	const src = `
function int main() {
  forall i = 0 to 3 {
    return i;
  }
  return -1;
}
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = parexec.Run(prog, parexec.Options{PEs: 2}, "main")
	if err == nil {
		t.Fatal("return inside forall must be an error")
	}
}

// TestEngineReuse: one engine, many runs, stable results.
func TestEngineReuse(t *testing.T) {
	c := compileTestdata(t, "polyscale.psl")
	par, err := c.StripMine("scale", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := parexec.New(par.Program, parexec.Options{PEs: 4})
	var first int64
	for i := 0; i < 3; i++ {
		v, _, err := e.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = v.I
		} else if v.I != first {
			t.Fatalf("run %d: %d, want %d", i, v.I, first)
		}
	}
}

// TestForallProfilerRecordsSite: a profiled parallel run reports one
// site, keyed to the line of the source while loop that strip-mining
// replaced (line 30 of polyscale.psl), with task and barrier counts
// matching the engine's own accounting.
func TestForallProfilerRecordsSite(t *testing.T) {
	c := compileTestdata(t, "polyscale.psl")
	const width = 8
	par, err := c.StripMine("scale", 0, width)
	if err != nil {
		t.Fatal(err)
	}
	prof := obs.NewForallProfiler()
	want, _, err := c.Run(core.RunConfig{}, "main")
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := par.RunParallel(core.RunConfig{Profiler: prof}, 2, "main")
	if err != nil {
		t.Fatal(err)
	}
	if got.I != want.I {
		t.Fatalf("profiled run changed the result: %d, want %d", got.I, want.I)
	}
	rep := prof.Report()
	if len(rep) != 1 {
		t.Fatalf("%d sites, want 1: %+v", len(rep), rep)
	}
	r := rep[0]
	if r.Line != 30 {
		t.Errorf("site line %d, want 30 (the source while loop)", r.Line)
	}
	if r.PEs != 2 {
		t.Errorf("PEs %d, want 2", r.PEs)
	}
	if r.Barriers != st.Barriers {
		t.Errorf("barriers %d, engine counted %d", r.Barriers, st.Barriers)
	}
	if r.Tasks != st.Barriers*width {
		t.Errorf("tasks %d, want %d (barriers × strip width)", r.Tasks, st.Barriers*width)
	}
	if r.BusyPct <= 0 || r.BusyPct > 100 {
		t.Errorf("busy %.2f%%, want in (0, 100]", r.BusyPct)
	}
	if r.Imbalance < 1 {
		t.Errorf("imbalance %.3f, want >= 1", r.Imbalance)
	}
	if len(r.PerPE) != 2 {
		t.Fatalf("per-PE rows: %+v", r.PerPE)
	}
	var tasks int64
	for _, pe := range r.PerPE {
		tasks += pe.Tasks
	}
	if tasks != r.Tasks {
		t.Errorf("per-PE tasks sum %d, site total %d", tasks, r.Tasks)
	}
}
