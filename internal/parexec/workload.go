package parexec

// PolyNormalizePSL is the measured-speedup workload: the §3.3.2
// polynomial program scaled so one loop iteration carries enough work
// (an O(exp) power loop, exp in [100, 164)) for real parallelism to
// pay for the pool's scheduling overhead. normalize's while loop is
// loop #0 — the strip-mining target; every iteration writes only its
// own node's val field, so the dependence test approves it.
//
// run(n, x) builds the n-term polynomial, normalizes it, and folds the
// values into a checksum, which parallel runs must reproduce exactly.
const PolyNormalizePSL = `
type OneWayList [X]
{ int coef, exp;
  real val;
  OneWayList *next is uniquely forward along X;
};

function OneWayList * poly(int n) {
  var OneWayList *head = NULL;
  var int i = 0;
  while i < n {
    var OneWayList *t = new OneWayList;
    t->coef = i + 1;
    t->exp = 100 + i % 64;
    t->next = head;
    head = t;
    i = i + 1;
  }
  return head;
}

procedure normalize(OneWayList *head, real x) {
  var OneWayList *p = head;
  while p != NULL {
    var real v = 1.0;
    var int e = 0;
    while e < p->exp {
      v = v * x;
      e = e + 1;
    }
    p->val = p->coef * v;
    p = p->next;
  }
}

function real checksum(OneWayList *head) {
  var real s = 0.0;
  var OneWayList *p = head;
  while p != NULL {
    s = s + p->val;
    p = p->next;
  }
  return s;
}

function real run(int n, real x) {
  var OneWayList *h = poly(n);
  normalize(h, x);
  return checksum(h);
}
`

// NormalizeFunc is the procedure holding the strip-mining target.
const NormalizeFunc = "normalize"

// NormalizeLoop is the loop index of the target within NormalizeFunc.
const NormalizeLoop = 0
