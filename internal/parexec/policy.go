package parexec

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Policy decides which PE executes which iteration of a parallel
// forall — the scheduling lever of the paper's §4.3.3 discussion and
// the X2 ablation (the "simple static scheduling" the paper blames for
// part of its sublinearity, versus the self-scheduling alternatives it
// cites). A Policy only chooses the iteration→PE mapping; the engine's
// deterministic merge (per-iteration output buffers flushed in
// iteration order, heap writes disjoint by the dependence test) is
// identical under every policy, so the bit-identical-to-serial
// guarantee does not depend on the schedule.
type Policy interface {
	// Name is the stable identifier used by flags and table labels
	// ("block", "cyclic", "dynamic").
	Name() string
	// Assign returns the iteration assignment for one forall over the
	// inclusive range [from, to] executed by pes workers.
	Assign(from, to int64, pes int) Assignment
}

// Assignment hands out one forall's iterations to its workers. Worker
// pe calls Next(pe) repeatedly until ok is false. Calls with distinct
// pe values may be concurrent; calls for one pe are sequential. An
// Assignment must hand out every iteration of the range exactly once
// across all PEs.
type Assignment interface {
	Next(pe int) (k int64, ok bool)
}

// StaticBlock assigns each PE one contiguous chunk of ⌈n/pes⌉
// iterations (PE 0 the first chunk, and so on). Matches the simulated
// machine's interp.Block mapping. Lowest scheduling overhead, worst
// load balance when iteration costs are skewed toward one end of the
// range.
var StaticBlock Policy = blockPolicy{}

// StaticCyclic assigns iteration k to PE (k-from) mod pes — the
// paper's "simple static scheduling" (§4.4's sublinearity source (1)),
// and the mapping the simulated Sequent uses by default
// (interp.Cyclic). Good balance for smoothly varying iteration costs.
var StaticCyclic Policy = cyclicPolicy{}

// Dynamic returns a dynamic self-scheduling policy: idle PEs claim the
// next unclaimed chunk of `chunk` iterations from a shared cursor, so
// the schedule adapts to load at the cost of one atomic operation per
// chunk. chunk < 1 is treated as 1. Dynamic(1) is the engine default
// and reproduces the original task-queue behavior of the PR 1 pool.
func Dynamic(chunk int) Policy {
	if chunk < 1 {
		chunk = 1
	}
	return dynamicPolicy{chunk: int64(chunk)}
}

// PolicyNames lists the accepted ParsePolicy names in display order.
func PolicyNames() []string { return []string{"block", "cyclic", "dynamic"} }

// ParsePolicy resolves a policy name from the command line ("block",
// "cyclic", or "dynamic"; chunk applies to dynamic only).
func ParsePolicy(name string, chunk int) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "block":
		return StaticBlock, nil
	case "cyclic":
		return StaticCyclic, nil
	case "dynamic":
		return Dynamic(chunk), nil
	}
	return nil, fmt.Errorf("parexec: unknown scheduling policy %q (want %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// ---------------------------------------------------------------------------
// Static block

type blockPolicy struct{}

func (blockPolicy) Name() string { return "block" }

func (blockPolicy) Assign(from, to int64, pes int) Assignment {
	n := to - from + 1
	chunk := (n + int64(pes) - 1) / int64(pes)
	a := &staticAssign{cur: make([]span, pes)}
	for pe := range a.cur {
		lo := from + int64(pe)*chunk
		hi := lo + chunk
		if hi > to+1 {
			hi = to + 1
		}
		if lo > to {
			lo, hi = 0, 0
		}
		a.cur[pe] = span{lo: lo, hi: hi, stride: 1}
	}
	return a
}

// ---------------------------------------------------------------------------
// Static cyclic

type cyclicPolicy struct{}

func (cyclicPolicy) Name() string { return "cyclic" }

func (cyclicPolicy) Assign(from, to int64, pes int) Assignment {
	a := &staticAssign{cur: make([]span, pes)}
	for pe := range a.cur {
		a.cur[pe] = span{lo: from + int64(pe), hi: to + 1, stride: int64(pes)}
	}
	return a
}

// span is one PE's remaining iterations: lo, lo+stride, ... below hi.
type span struct {
	lo, hi, stride int64
}

// staticAssign serves precomputed per-PE spans; each slot is touched
// only by its own PE, so no synchronization is needed.
type staticAssign struct {
	cur []span
}

func (a *staticAssign) Next(pe int) (int64, bool) {
	s := &a.cur[pe]
	if s.lo >= s.hi {
		return 0, false
	}
	k := s.lo
	s.lo += s.stride
	return k, true
}

// ---------------------------------------------------------------------------
// Dynamic self-scheduling

type dynamicPolicy struct {
	chunk int64
}

func (p dynamicPolicy) Name() string { return "dynamic" }

func (p dynamicPolicy) Assign(from, to int64, pes int) Assignment {
	return &dynamicAssign{from: from, to: to, chunk: p.chunk, cur: make([]span, pes)}
}

// dynamicAssign shares one claim cursor; per-PE spans buffer the chunk
// each worker is currently draining (each slot touched only by its own
// PE).
type dynamicAssign struct {
	from, to int64
	chunk    int64
	next     atomic.Int64 // next unclaimed offset from `from`
	cur      []span
}

func (a *dynamicAssign) Next(pe int) (int64, bool) {
	s := &a.cur[pe]
	if s.lo >= s.hi {
		off := a.next.Add(a.chunk) - a.chunk
		lo := a.from + off
		if lo > a.to {
			return 0, false
		}
		hi := lo + a.chunk
		if hi > a.to+1 {
			hi = a.to + 1
		}
		s.lo, s.hi = lo, hi
	}
	k := s.lo
	s.lo++
	return k, true
}
