package parexec

import (
	"runtime"
	"sync"
)

// ForEach runs fn(0), …, fn(n-1) on a pool of pes worker goroutines,
// self-scheduled with the package's Dynamic policy — the same machinery
// that schedules transformed forall loops, here applied to the
// toolchain's own work (e.g. the planner testing independent loops in
// parallel). fn must be safe to call concurrently; ForEach returns when
// every call has completed. pes ≤ 0 means GOMAXPROCS.
func ForEach(pes, n int, fn func(k int)) {
	if n <= 0 {
		return
	}
	if pes <= 0 {
		pes = runtime.GOMAXPROCS(0)
	}
	if pes > n {
		pes = n
	}
	if pes == 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	asn := Dynamic(1).Assign(0, int64(n-1), pes)
	var wg sync.WaitGroup
	for pe := 0; pe < pes; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			for {
				k, ok := asn.Next(pe)
				if !ok {
					return
				}
				fn(int(k))
			}
		}(pe)
	}
	wg.Wait()
}
