// Package parexec executes transformed PSL programs with real
// goroutine parallelism: it is the hardware counterpart of the
// simulated Sequent in package sequent.
//
// The engine runs a program on a root interpreter whose parallel
// forall loops — the regions transform.StripMine emits — are handed to
// a fixed pool of worker goroutines (one per PE, default GOMAXPROCS).
// Each worker executes iterations on an interpreter forked from the
// root: the program is shared and immutable, step/allocation counters
// and the deterministic RNG are shared atomics, and heap writes are
// partitioned by construction — the dependence test only licenses
// loops whose iterations write disjoint nodes (and at field
// granularity, disjoint fields), so no locking of the heap is needed.
//
// Which PE runs which iteration is decided by a pluggable Policy
// (§4.3.3 / experiment X2): StaticBlock, StaticCyclic (the paper's
// "simple static scheduling"), or Dynamic self-scheduling with a
// configurable chunk size. The policy affects only load balance and
// scheduling overhead, never the result — see Policy.
//
// Every forall is a barrier, mirroring the paper's FOR1/FOR2 structure
// (§4.3.3): the pool finishes all PE iteration procedures (FOR2 bodies)
// before the serial outer loop advances the induction pointer (FOR1).
// print() output from iterations is captured in per-iteration buffers
// and flushed in iteration order at the barrier, so a parallel run's
// output stream — and its result, since the heap writes are disjoint —
// is bit-identical to the serial run's under every scheduling policy.
//
// One caveat: the rand() builtin draws from a single shared stream in
// completion order, so a forall body that calls rand() receives
// scheduling-dependent draws and loses the bit-identical guarantee.
// None of the paper's parallel loops use rand; programs that want
// determinism must keep rand() out of parallel regions.
package parexec

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/obs"
)

// Options configures an Engine.
type Options struct {
	// Interp selects the interpreter engine the pool runs on
	// (default interp.EngineCompiled; interp.EngineBytecode is the
	// flat register-bank VM; interp.EngineWalk is the tree-walking
	// oracle). Results are bit-identical across all three — the
	// engines differ only in speed.
	Interp interp.Engine
	// Compiled, if non-nil, supplies the program's pinned closure code
	// (interp.CompileProgram) instead of the per-program code cache —
	// the serving layer's guarantee that cached programs never
	// recompile. Must have been built from the same program the Engine
	// was created with.
	Compiled *interp.CompiledProgram
	// PEs is the number of worker goroutines (0 = GOMAXPROCS).
	PEs int
	// Sched maps forall iterations to PEs (nil = Dynamic(1),
	// self-scheduling one iteration at a time — the behavior of the
	// original task-queue pool).
	Sched Policy
	// Seed for the deterministic rand() builtin.
	Seed uint64
	// Output receives the merged print() stream (nil discards).
	Output io.Writer
	// MaxSteps bounds execution (0 = interpreter default).
	MaxSteps int64
	// Ctx, if non-nil, cancels the run (deadline or explicit cancel);
	// root and workers all poll it. See interp.Config.Ctx.
	Ctx context.Context
	// MaxAllocs bounds `new` allocations across the run (0 = unlimited).
	MaxAllocs int64
	// MaxOutputBytes bounds total print() bytes (0 = unlimited). The
	// budget is charged when an iteration prints into its buffer, so it
	// also caps memory held by the deterministic output merge.
	MaxOutputBytes int64
	// Profiler, if non-nil, receives per-barrier parallel-efficiency
	// measurements (per-PE busy time, barrier wait, task counts) keyed
	// by the forall's source line. Nil disables measurement entirely:
	// the worker loop takes no clock readings and allocates nothing
	// extra per barrier.
	Profiler *obs.ForallProfiler
}

// Engine runs programs with a goroutine-backed worker pool. An Engine
// is cheap; each Run call builds its own pool and tears it down, so
// one Engine may be reused for many runs — concurrently too, provided
// Options.Output is nil (concurrent runs would otherwise interleave
// unsynchronized writes to the shared writer).
type Engine struct {
	prog *lang.Program
	opt  Options
}

// New creates an engine for a checked, normalized program.
func New(prog *lang.Program, opt Options) *Engine {
	return &Engine{prog: prog, opt: opt}
}

// PEs reports the worker-pool size a Run will use.
func (e *Engine) PEs() int {
	if e.opt.PEs > 0 {
		return e.opt.PEs
	}
	return runtime.GOMAXPROCS(0)
}

// Sched reports the scheduling policy a Run will use.
func (e *Engine) Sched() Policy {
	if e.opt.Sched != nil {
		return e.opt.Sched
	}
	return Dynamic(1)
}

// Run executes fn on the pool and returns its result, with Stats whose
// Barriers field counts the parallel regions joined.
func (e *Engine) Run(fn string, args ...interp.Value) (interp.Value, interp.Stats, error) {
	out := e.opt.Output
	if out == nil {
		out = io.Discard
	}
	pes := e.PEs()
	rs := &runState{tasks: make([]chan task, pes), out: out, pes: pes, sched: e.Sched(), prof: e.opt.Profiler}
	for i := range rs.tasks {
		rs.tasks[i] = make(chan task)
	}
	icfg := interp.Config{
		Engine:         e.opt.Interp,
		Mode:           interp.Real,
		Seed:           e.opt.Seed,
		Output:         out,
		MaxSteps:       e.opt.MaxSteps,
		Ctx:            e.opt.Ctx,
		MaxAllocs:      e.opt.MaxAllocs,
		MaxOutputBytes: e.opt.MaxOutputBytes,
		Forall:         rs.forall,
		Strip:          rs.strip,
	}
	var root *interp.Interp
	if e.opt.Compiled != nil {
		root = interp.NewCompiled(e.opt.Compiled, icfg)
	} else {
		root = interp.New(e.prog, icfg)
	}

	// One channel per worker, so PE p's assignment stream always runs
	// on worker p: two streams can never collapse onto one goroutine
	// (which would serialize a static policy's chunks and distort the
	// measured schedule).
	var workers sync.WaitGroup
	for i := 0; i < pes; i++ {
		workers.Add(1)
		w := root.Fork(io.Discard)
		go func(ch <-chan task) {
			defer workers.Done()
			for t := range ch {
				if t.strip != nil {
					// A vectorized strip's compute share: the closure
					// owns its lane range, error slot, and timing.
					t.strip(t.pe)
					t.wg.Done()
					continue
				}
				for {
					k, ok := t.asn.Next(t.pe)
					if !ok {
						break
					}
					i := k - t.from
					w.SetOutput(t.bufs[i])
					if t.busy != nil {
						t0 := time.Now()
						t.errs[i] = t.run(w, k)
						t.busy[t.pe] += int64(time.Since(t0))
						t.ntasks[t.pe]++
					} else {
						t.errs[i] = t.run(w, k)
					}
					w.SetOutput(nil)
				}
				if t.done != nil {
					// Offset from dispatch at which this PE's stream
					// drained: the gap to the barrier is its wait time.
					t.done[t.pe] = int64(time.Since(t.start))
				}
				t.wg.Done()
			}
		}(rs.tasks[i])
	}
	v, err := root.Call(fn, args...)
	for _, ch := range rs.tasks {
		close(ch)
	}
	workers.Wait()

	st := root.Stats()
	st.Barriers = rs.barriers
	return v, st, err
}

// Run is the one-shot convenience: execute fn on a fresh engine.
func Run(prog *lang.Program, opt Options, fn string, args ...interp.Value) (interp.Value, interp.Stats, error) {
	return New(prog, opt).Run(fn, args...)
}

// ---------------------------------------------------------------------------
// Pool internals

// task is one PE's share of one forall: the worker drains its
// Assignment stream, writing iteration k's output into bufs[k-from]
// and its error into errs[k-from] (each slot owned by exactly one
// iteration, so no locking).
type task struct {
	pe   int
	asn  Assignment
	from int64
	bufs []*bytes.Buffer
	errs []error
	run  func(w *interp.Interp, k int64) error
	wg   *sync.WaitGroup

	// strip, when non-nil, replaces the iteration stream entirely: the
	// worker runs this one closure (a vectorized strip's compute phase
	// over the PE's lane range) and hits the barrier. All other task
	// fields except pe and wg are unused.
	strip func(pe int)

	// Profiling slots (nil when no profiler is installed — the nil
	// check is the only per-iteration cost of having the hooks in
	// place). Each slice index is owned by exactly one PE, so the
	// workers write without locks; start anchors the done offsets.
	busy   []int64
	done   []int64
	ntasks []int64
	start  time.Time
}

// runState is the per-Run scheduler the root interpreter calls for
// every parallel forall. It lives on the interpreting goroutine; only
// the per-worker task channels cross into the workers.
type runState struct {
	tasks    []chan task // tasks[pe] feeds worker pe
	out      io.Writer
	pes      int
	sched    Policy
	barriers int64
	bufPool  sync.Pool
	prof     *obs.ForallProfiler
}

func (rs *runState) getBuf() *bytes.Buffer {
	if b, ok := rs.bufPool.Get().(*bytes.Buffer); ok {
		b.Reset()
		return b
	}
	return new(bytes.Buffer)
}

// strip runs one vectorized strip (interp.StripScheduler): gather
// serially on the interpreting goroutine, compute split across the
// pool in contiguous lane chunks (slab granularity — each PE sweeps
// one sub-range of every slab, not one iteration at a time), scatter
// serially after the barrier. Any phase error aborts the strip before
// the heap is written and before the barrier or profiler see it: the
// interpreter then falls back to the scalar path, whose barrier
// rs.forall counts instead — so a strip never double-counts.
func (rs *runState) strip(pos lang.Pos, lanes int, s interp.KernelStrip) error {
	var gatherNS, scatterNS int64
	var start time.Time
	if rs.prof != nil {
		start = time.Now()
	}
	if rs.prof != nil {
		t0 := time.Now()
		if err := s.Gather(); err != nil {
			return err
		}
		gatherNS = int64(time.Since(t0))
	} else if err := s.Gather(); err != nil {
		return err
	}

	pes := rs.pes
	if pes > lanes {
		pes = lanes
	}
	chunk := (lanes + pes - 1) / pes
	errs := make([]error, pes)
	var busy, ntasks []int64
	if rs.prof != nil {
		busy = make([]int64, rs.pes)
		ntasks = make([]int64, rs.pes)
	}
	var wg sync.WaitGroup
	wg.Add(pes)
	for pe := 0; pe < pes; pe++ {
		lo := pe * chunk
		hi := lo + chunk
		if hi > lanes {
			hi = lanes
		}
		slot := pe
		rs.tasks[pe] <- task{pe: pe, wg: &wg, strip: func(p int) {
			if busy != nil {
				t0 := time.Now()
				errs[slot] = s.Compute(lo, hi)
				busy[p] += int64(time.Since(t0))
				ntasks[p]++
			} else {
				errs[slot] = s.Compute(lo, hi)
			}
		}}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if rs.prof != nil {
		t0 := time.Now()
		if err := s.Scatter(); err != nil {
			return err
		}
		scatterNS = int64(time.Since(t0))
	} else if err := s.Scatter(); err != nil {
		return err
	}
	rs.barriers++
	if rs.prof != nil {
		rs.prof.RecordKernel(pos.Line, int64(time.Since(start)), gatherNS, scatterNS, busy, ntasks)
	}
	return nil
}

// forall asks the scheduling policy for an iteration→PE assignment,
// hands each PE its stream, and blocks until all complete — the
// per-step barrier. Iteration output is then flushed in index order
// and the first failing iteration (in index order, matching where a
// serial run would have stopped) decides the error.
func (rs *runState) forall(pos lang.Pos, from, to int64, run func(w *interp.Interp, k int64) error) error {
	n := int(to - from + 1)
	bufs := make([]*bytes.Buffer, n)
	for i := range bufs {
		bufs[i] = rs.getBuf()
	}
	errs := make([]error, n)
	asn := rs.sched.Assign(from, to, rs.pes)
	t := task{asn: asn, from: from, bufs: bufs, errs: errs, run: run}
	if rs.prof != nil {
		t.busy = make([]int64, rs.pes)
		t.done = make([]int64, rs.pes)
		t.ntasks = make([]int64, rs.pes)
		t.start = time.Now()
	}
	var wg sync.WaitGroup
	wg.Add(rs.pes)
	t.wg = &wg
	for pe := 0; pe < rs.pes; pe++ {
		t.pe = pe
		rs.tasks[pe] <- t
	}
	wg.Wait()
	rs.barriers++
	if rs.prof != nil {
		rs.prof.Record(pos.Line, int64(time.Since(t.start)), t.busy, t.done, t.ntasks)
	}

	// First failing iteration, in index order: a serial run would have
	// stopped there, so only earlier iterations' output is flushed.
	failed := -1
	for i, err := range errs {
		if err != nil {
			failed = i
			break
		}
	}
	var writeErr error
	for i, b := range bufs {
		if (failed < 0 || i < failed) && b.Len() > 0 && writeErr == nil {
			if _, err := rs.out.Write(b.Bytes()); err != nil {
				writeErr = fmt.Errorf("parexec: merging output: %w", err)
			}
		}
		rs.bufPool.Put(b)
	}
	if failed >= 0 {
		return errs[failed]
	}
	return writeErr
}
