// Package parexec executes transformed PSL programs with real
// goroutine parallelism: it is the hardware counterpart of the
// simulated Sequent in package sequent.
//
// The engine runs a program on a root interpreter whose parallel
// forall loops — the regions transform.StripMine emits — are handed to
// a fixed pool of worker goroutines (one per PE, default GOMAXPROCS).
// Each worker executes iterations on an interpreter forked from the
// root: the program is shared and immutable, step/allocation counters
// and the deterministic RNG are shared atomics, and heap writes are
// partitioned by construction — the dependence test only licenses
// loops whose iterations write disjoint nodes (and at field
// granularity, disjoint fields), so no locking of the heap is needed.
//
// Every forall is a barrier, mirroring the paper's FOR1/FOR2 structure
// (§4.3.3): the pool finishes all PE iteration procedures (FOR2 bodies)
// before the serial outer loop advances the induction pointer (FOR1).
// print() output from iterations is captured in per-iteration buffers
// and flushed in iteration order at the barrier, so a parallel run's
// output stream — and its result, since the heap writes are disjoint —
// is bit-identical to the serial run's.
//
// One caveat: the rand() builtin draws from a single shared stream in
// completion order, so a forall body that calls rand() receives
// scheduling-dependent draws and loses the bit-identical guarantee.
// None of the paper's parallel loops use rand; programs that want
// determinism must keep rand() out of parallel regions.
package parexec

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/interp"
	"repro/internal/lang"
)

// Options configures an Engine.
type Options struct {
	// PEs is the number of worker goroutines (0 = GOMAXPROCS).
	PEs int
	// Seed for the deterministic rand() builtin.
	Seed uint64
	// Output receives the merged print() stream (nil discards).
	Output io.Writer
	// MaxSteps bounds execution (0 = interpreter default).
	MaxSteps int64
}

// Engine runs programs with a goroutine-backed worker pool. An Engine
// is cheap; each Run call builds its own pool and tears it down, so one
// Engine may be reused (even concurrently) for many runs.
type Engine struct {
	prog *lang.Program
	opt  Options
}

// New creates an engine for a checked, normalized program.
func New(prog *lang.Program, opt Options) *Engine {
	return &Engine{prog: prog, opt: opt}
}

// PEs reports the worker-pool size a Run will use.
func (e *Engine) PEs() int {
	if e.opt.PEs > 0 {
		return e.opt.PEs
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes fn on the pool and returns its result, with Stats whose
// Barriers field counts the parallel regions joined.
func (e *Engine) Run(fn string, args ...interp.Value) (interp.Value, interp.Stats, error) {
	out := e.opt.Output
	if out == nil {
		out = io.Discard
	}
	rs := &runState{tasks: make(chan task), out: out}
	root := interp.New(e.prog, interp.Config{
		Mode:     interp.Real,
		Seed:     e.opt.Seed,
		Output:   out,
		MaxSteps: e.opt.MaxSteps,
		Forall:   rs.forall,
	})

	var workers sync.WaitGroup
	for i := 0; i < e.PEs(); i++ {
		workers.Add(1)
		w := root.Fork(io.Discard)
		go func() {
			defer workers.Done()
			for t := range rs.tasks {
				w.SetOutput(t.buf)
				*t.err = t.run(w, t.k)
				w.SetOutput(nil)
				t.wg.Done()
			}
		}()
	}
	v, err := root.Call(fn, args...)
	close(rs.tasks)
	workers.Wait()

	st := root.Stats()
	st.Barriers = rs.barriers
	return v, st, err
}

// Run is the one-shot convenience: execute fn on a fresh engine.
func Run(prog *lang.Program, opt Options, fn string, args ...interp.Value) (interp.Value, interp.Stats, error) {
	return New(prog, opt).Run(fn, args...)
}

// ---------------------------------------------------------------------------
// Pool internals

// task is one forall iteration handed to the pool.
type task struct {
	k   int64
	buf *bytes.Buffer
	run func(w *interp.Interp, k int64) error
	err *error
	wg  *sync.WaitGroup
}

// runState is the per-Run scheduler the root interpreter calls for
// every parallel forall. It lives on the interpreting goroutine; only
// the tasks channel crosses into the workers.
type runState struct {
	tasks    chan task
	out      io.Writer
	barriers int64
	bufPool  sync.Pool
}

func (rs *runState) getBuf() *bytes.Buffer {
	if b, ok := rs.bufPool.Get().(*bytes.Buffer); ok {
		b.Reset()
		return b
	}
	return new(bytes.Buffer)
}

// forall schedules the iterations [from, to] onto the pool and blocks
// until all complete — the per-step barrier. Iteration output is then
// flushed in index order and the first failing iteration (in index
// order, matching where a serial run would have stopped) decides the
// error.
func (rs *runState) forall(from, to int64, run func(w *interp.Interp, k int64) error) error {
	n := int(to - from + 1)
	bufs := make([]*bytes.Buffer, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for k := from; k <= to; k++ {
		i := int(k - from)
		bufs[i] = rs.getBuf()
		rs.tasks <- task{k: k, buf: bufs[i], run: run, err: &errs[i], wg: &wg}
	}
	wg.Wait()
	rs.barriers++

	// First failing iteration, in index order: a serial run would have
	// stopped there, so only earlier iterations' output is flushed.
	failed := -1
	for i, err := range errs {
		if err != nil {
			failed = i
			break
		}
	}
	var writeErr error
	for i, b := range bufs {
		if (failed < 0 || i < failed) && b.Len() > 0 && writeErr == nil {
			if _, err := rs.out.Write(b.Bytes()); err != nil {
				writeErr = fmt.Errorf("parexec: merging output: %w", err)
			}
		}
		rs.bufPool.Put(b)
	}
	if failed >= 0 {
		return errs[failed]
	}
	return writeErr
}
