// Package depend decides whether the iterations of a pointer-chasing
// loop are independent — the paper's §4.3.2 test that licenses the
// strip-mining transformation of §4.3.3.
//
// A loop "while p != NULL { body; p = p->f }" parallelizes when:
//
//  1. the advance provably visits a new node every iteration (general
//     path matrix analysis: p' and p never alias, connected by a
//     forward path along a uniquely-forward dimension);
//  2. the ADDS declaration the advance relies on is valid at the loop
//     (no active violations on the traversed dimension);
//  3. the body performs no pointer-field stores (it does not rearrange
//     the structure);
//  4. at field granularity, the body's writes cannot collide across
//     iterations: writes land only on the iteration's own node (region
//     "p", unmoved), and any other access to a possibly-overlapping
//     region touches disjoint fields — exactly why BHL1 parallelizes:
//     compute_force writes only force fields of p while reading only
//     mass/position fields of the tree;
//  5. the body carries no scalar loop-carried dependences (no writes to
//     scalars declared outside the loop).
package depend

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/effects"
	"repro/internal/lang"
)

// Report explains the parallelizability verdict for one loop.
type Report struct {
	Func         string
	Loop         *lang.WhileStmt
	Induction    string
	AdvanceField string
	Advance      *lang.AssignStmt
	// Parallelizable is the verdict.
	Parallelizable bool
	// Reasons lists the checks that failed (empty when parallelizable)
	// or, on success, the facts that licensed the transformation.
	Reasons []string
}

// String renders a one-line verdict plus reasons.
func (r *Report) String() string {
	verdict := "PARALLELIZABLE"
	if !r.Parallelizable {
		verdict = "NOT PARALLELIZABLE"
	}
	return fmt.Sprintf("%s.%s over %s: %s\n  %s",
		r.Func, loopDesc(r), r.AdvanceField, verdict, strings.Join(r.Reasons, "\n  "))
}

func loopDesc(r *Report) string {
	if r.Induction == "" {
		return "loop"
	}
	return "while " + r.Induction + " != NULL"
}

// AnalyzeLoop runs the full dependence test on the n-th while loop of
// function fnName, using a shared analysis result and effect analyzer
// (construct them once per program with analysis.Analyze /
// effects.NewAnalyzer).
//
// Concurrency contract: AnalyzeLoop only reads fr and eff — the
// path-matrix queries return entries by value and BlockSummary builds
// a fresh Summary from the memoized per-function tables — so
// independent loops may be tested from concurrent goroutines against
// the same fr/eff pair, PROVIDED no analysis update (analysis.Cache
// .Update, effects.Analyzer.Update) runs concurrently. The planner
// relies on this to batch a pass's dependence tests on the parexec
// pool; updates happen strictly between batches.
func AnalyzeLoop(prog *lang.Program, fr *analysis.FuncResult, eff *effects.Analyzer, fnName string, loopIndex int) (*Report, error) {
	fn := prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("depend: no function %q", fnName)
	}
	loop, err := analysis.FindLoop(fn, loopIndex)
	if err != nil {
		return nil, err
	}
	return analyzeLoop(prog, fr, eff, fn, loop)
}

func analyzeLoop(prog *lang.Program, fr *analysis.FuncResult, eff *effects.Analyzer, fn *lang.FuncDecl, loop *lang.WhileStmt) (*Report, error) {
	rep := &Report{Func: fn.Name, Loop: loop}

	// --- Recognize the canonical pointer-chasing form.
	ind, ok := inductionOfCond(loop.Cond)
	if !ok {
		rep.Reasons = append(rep.Reasons, "loop condition is not `p != NULL`")
		return rep, nil
	}
	rep.Induction = ind
	adv, field, ok := advanceOf(loop.Body, ind)
	if !ok {
		rep.Reasons = append(rep.Reasons, "loop body does not end with `"+ind+" = "+ind+"->f`")
		return rep, nil
	}
	rep.Advance, rep.AdvanceField = adv, field

	// --- 1. The induction pointer strictly advances.
	if !fr.InductionStrictlyAdvances(loop, ind) {
		rep.Reasons = append(rep.Reasons,
			fmt.Sprintf("analysis cannot prove %s visits a new node each iteration (p' may alias p)", ind))
		return rep, nil
	}

	// --- 2. The declaration is valid at the loop.
	elem := inductionElem(loop, ind)
	decl := prog.Universe.Decl(elem)
	var dim string
	if decl != nil {
		if pf := decl.Pointer(field); pf != nil {
			dim = pf.Dim
		}
	}
	if before, ok := fr.Before[lang.Stmt(loop)]; ok && decl != nil && dim != "" {
		if !before.Valid(elem, dim) {
			rep.Reasons = append(rep.Reasons,
				fmt.Sprintf("the %s declaration is not valid at the loop (active violation on dimension %s)", elem, dim))
			return rep, nil
		}
	}

	// --- Effects of the body, excluding the advance itself.
	body := bodyWithoutAdvance(loop.Body, adv)
	anchors := anchorsFor(fn, loop, ind)
	sum := eff.BlockSummary(body, anchors)

	// --- 3. No structure mutation.
	if pw := sum.PointerWrites(); len(pw) > 0 {
		rep.Reasons = append(rep.Reasons,
			fmt.Sprintf("body rearranges the structure (%d pointer-field store(s), e.g. %s)", len(pw), pw[0]))
		return rep, nil
	}

	// --- 5. No scalar loop-carried dependences.
	if v, ok := outerScalarWrite(loop.Body, adv); ok {
		rep.Reasons = append(rep.Reasons,
			fmt.Sprintf("body writes outer scalar %q (loop-carried dependence)", v))
		return rep, nil
	}

	// --- 4. Field-granularity write/collision check.
	if conflict, why := crossIterationConflict(sum, ind); conflict {
		rep.Reasons = append(rep.Reasons, why)
		return rep, nil
	}

	rep.Parallelizable = true
	rep.Reasons = append(rep.Reasons,
		fmt.Sprintf("%s advances along %s (uniquely forward): iterations visit distinct nodes", ind, field),
		"body performs no pointer-field stores",
		"writes land only on the iteration's own node; overlapping reads touch disjoint fields",
	)
	return rep, nil
}

// AnalyzeAllLoops reports on every while loop in the function.
func AnalyzeAllLoops(prog *lang.Program, fnName string) ([]*Report, error) {
	fr, err := analysis.Analyze(prog, fnName)
	if err != nil {
		return nil, err
	}
	eff := effects.NewAnalyzer(prog)
	fn := prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("depend: no function %q", fnName)
	}
	var reports []*Report
	var loops []*lang.WhileStmt
	lang.Walk(fn.Body, func(s lang.Stmt) bool {
		if w, ok := s.(*lang.WhileStmt); ok {
			loops = append(loops, w)
		}
		return true
	})
	for _, w := range loops {
		rep, err := analyzeLoop(prog, fr, eff, fn, w)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// inductionOfCond recognizes "p != NULL" / "NULL != p".
func inductionOfCond(cond lang.Expr) (string, bool) {
	be, ok := cond.(*lang.BinExpr)
	if !ok || be.Op != lang.NEQ {
		return "", false
	}
	if id, ok := be.X.(*lang.Ident); ok {
		if _, isNull := be.Y.(*lang.NullLit); isNull {
			return id.Name, true
		}
	}
	if id, ok := be.Y.(*lang.Ident); ok {
		if _, isNull := be.X.(*lang.NullLit); isNull {
			return id.Name, true
		}
	}
	return "", false
}

// advanceOf recognizes a final "p = p->f;" in the body.
func advanceOf(body *lang.Block, ind string) (*lang.AssignStmt, string, bool) {
	if len(body.Stmts) == 0 {
		return nil, "", false
	}
	as, ok := body.Stmts[len(body.Stmts)-1].(*lang.AssignStmt)
	if !ok {
		return nil, "", false
	}
	lhs, ok := as.LHS.(*lang.Ident)
	if !ok || lhs.Name != ind {
		return nil, "", false
	}
	fe, ok := as.RHS.(*lang.FieldExpr)
	if !ok || fe.Base() == nil || fe.Base().Name != ind || fe.Index != nil {
		return nil, "", false
	}
	return as, fe.Field, true
}

func inductionElem(loop *lang.WhileStmt, ind string) string {
	var elem string
	lang.Walk(loop.Body, func(s lang.Stmt) bool {
		found := false
		lang.WalkExprs(s, func(e lang.Expr) {
			if id, ok := e.(*lang.Ident); ok && id.Name == ind {
				if el, ok := lang.IsPointer(id.Type()); ok {
					elem = el
					found = true
				}
			}
		})
		return !found
	})
	return elem
}

// bodyWithoutAdvance clones the body minus the final advance statement.
func bodyWithoutAdvance(body *lang.Block, adv *lang.AssignStmt) *lang.Block {
	nb := &lang.Block{}
	for _, s := range body.Stmts {
		if s == lang.Stmt(adv) {
			continue
		}
		nb.Stmts = append(nb.Stmts, s)
	}
	return nb
}

// anchorsFor returns the pointer variables visible to the loop body from
// outside: the induction variable plus every pointer identifier used in
// the body that is not declared in it.
func anchorsFor(fn *lang.FuncDecl, loop *lang.WhileStmt, ind string) []string {
	declared := map[string]bool{}
	lang.Walk(loop.Body, func(s lang.Stmt) bool {
		if vs, ok := s.(*lang.VarStmt); ok {
			declared[vs.Name] = true
		}
		return true
	})
	seen := map[string]bool{ind: true}
	out := []string{ind}
	lang.Walk(loop.Body, func(s lang.Stmt) bool {
		lang.WalkExprs(s, func(e lang.Expr) {
			id, ok := e.(*lang.Ident)
			if !ok || seen[id.Name] || declared[id.Name] {
				return
			}
			if _, isPtr := lang.IsPointer(id.Type()); isPtr {
				seen[id.Name] = true
				out = append(out, id.Name)
			}
		})
		return true
	})
	return out
}

// outerScalarWrite finds an assignment to a scalar variable declared
// outside the loop body (other than the advance).
func outerScalarWrite(body *lang.Block, adv *lang.AssignStmt) (string, bool) {
	declared := map[string]bool{}
	lang.Walk(body, func(s lang.Stmt) bool {
		switch s := s.(type) {
		case *lang.VarStmt:
			declared[s.Name] = true
		case *lang.ForStmt:
			declared[s.Var] = true
		}
		return true
	})
	var name string
	lang.Walk(body, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		if !ok || as == adv {
			return true
		}
		id, ok := as.LHS.(*lang.Ident)
		if !ok || declared[id.Name] {
			return true
		}
		if _, isPtr := lang.IsPointer(id.Type()); isPtr {
			return true // pointer reassignments are caught by analysis
		}
		name = id.Name
		return false
	})
	return name, name != ""
}

// crossIterationConflict checks the field-granularity condition: every
// write must be anchored on the induction's own node; any other access
// that may overlap a write's region must touch a different field.
func crossIterationConflict(sum *effects.Summary, ind string) (bool, string) {
	ownNode := func(r effects.Region) bool {
		return r.Anchor == ind && !r.Moved
	}
	fresh := func(r effects.Region) bool {
		return r.Anchor == effects.AnchorFresh
	}
	for _, w := range sum.Writes() {
		if fresh(w.Region) {
			continue // writes to freshly allocated nodes never conflict
		}
		if !ownNode(w.Region) {
			return true, fmt.Sprintf("write %s is not confined to the iteration's own node", w)
		}
		// Own-node write: iterations write distinct nodes, so the only
		// cross-iteration hazard is another iteration *reaching* this
		// node through a moved region and touching the same field.
		for _, a := range sum.Accesses {
			if a == w || fresh(a.Region) {
				continue
			}
			if ownNode(a.Region) {
				continue // same distinct node, no cross-iteration overlap
			}
			if a.Field == w.Field {
				return true, fmt.Sprintf("write %s may collide with %s in another iteration", w, a)
			}
		}
	}
	return false, ""
}
