package depend

import (
	"strings"
	"testing"

	"repro/internal/adds"
	"repro/internal/lang"
)

func reports(t *testing.T, src, fn string) []*Report {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := AnalyzeAllLoops(prog, fn)
	if err != nil {
		t.Fatal(err)
	}
	return reps
}

func TestScaleLoopParallelizable(t *testing.T) {
	reps := reports(t, adds.OneWayListSrc+`
procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->data = p->data * c;
    p = p->next;
  }
}`, "scale")
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	if !reps[0].Parallelizable {
		t.Errorf("scale loop must parallelize:\n%s", reps[0])
	}
	if reps[0].Induction != "p" || reps[0].AdvanceField != "next" {
		t.Errorf("induction=%q field=%q", reps[0].Induction, reps[0].AdvanceField)
	}
}

func TestUnannotatedListRejected(t *testing.T) {
	reps := reports(t, adds.ListNodeSrc+`
procedure scale(ListNode *head, int c) {
  var ListNode *p = head;
  while p != NULL {
    p->coef = p->coef * c;
    p = p->next;
  }
}`, "scale")
	if reps[0].Parallelizable {
		t.Error("unannotated list must not parallelize")
	}
	if !strings.Contains(reps[0].String(), "p' may alias p") {
		t.Errorf("reason should mention aliasing:\n%s", reps[0])
	}
}

func TestStructureMutationRejected(t *testing.T) {
	reps := reports(t, adds.OneWayListSrc+`
procedure chop(OneWayList *head) {
  var OneWayList *p = head;
  while p != NULL {
    p->next = NULL;
    p = p->next;
  }
}`, "chop")
	if reps[0].Parallelizable {
		t.Error("a loop that rearranges the structure must be rejected")
	}
}

func TestScalarReductionRejected(t *testing.T) {
	reps := reports(t, adds.OneWayListSrc+`
function int sum(OneWayList *head) {
  var int s = 0;
  var OneWayList *p = head;
  while p != NULL {
    s = s + p->data;
    p = p->next;
  }
  return s;
}`, "sum")
	if reps[0].Parallelizable {
		t.Error("scalar reduction is a loop-carried dependence")
	}
	if !strings.Contains(reps[0].String(), "outer scalar") {
		t.Errorf("reason should mention the scalar:\n%s", reps[0])
	}
}

func TestNeighborWriteRejected(t *testing.T) {
	// Writing through p->next touches the *next* iteration's node.
	reps := reports(t, adds.OneWayListSrc+`
procedure smear(OneWayList *head) {
  var OneWayList *p = head;
  while p != NULL {
    var OneWayList *q = p->next;
    if q != NULL {
      q->data = p->data;
    }
    p = p->next;
  }
}`, "smear")
	if reps[0].Parallelizable {
		t.Error("writes to neighbouring nodes must be rejected")
	}
}

const polyList = `
type Poly [X]
{ int coef, exp;
  Poly *next is uniquely forward along X;
};`

func TestDisjointFieldsAccepted(t *testing.T) {
	// Reading a field of every node is fine while writing a different
	// field of the own node — the BHL1 pattern.
	reps := reports(t, polyList+`
function int weigh(Poly *node) {
  return node->exp;
}
procedure f(Poly *head) {
  var Poly *p = head;
  while p != NULL {
    p->coef = weigh(head);
    p = p->next;
  }
}`, "f")
	if !reps[0].Parallelizable {
		t.Errorf("disjoint-field pattern must parallelize:\n%s", reps[0])
	}
}

func TestSameFieldGlobalReadRejected(t *testing.T) {
	// Same as above but reading the *same* field that is written.
	reps := reports(t, polyList+`
function int weigh(Poly *node) {
  return node->coef;
}
procedure f(Poly *head) {
  var Poly *p = head;
  while p != NULL {
    p->coef = weigh(head);
    p = p->next;
  }
}`, "f")
	if reps[0].Parallelizable {
		t.Errorf("read of the written field through another handle must conflict:\n%s", reps[0])
	}
}

func TestNonCanonicalLoopsReported(t *testing.T) {
	reps := reports(t, adds.OneWayListSrc+`
procedure f(OneWayList *head, int n) {
  var int i = 0;
  while i < n {
    i = i + 1;
  }
  var OneWayList *p = head;
  while p != NULL {
    print(1);
  }
}`, "f")
	if len(reps) != 2 {
		t.Fatalf("reports = %d", len(reps))
	}
	if reps[0].Parallelizable {
		t.Error("counted loop is not a pointer chase")
	}
	if !strings.Contains(reps[0].String(), "not `p != NULL`") {
		t.Errorf("reason:\n%s", reps[0])
	}
	if reps[1].Parallelizable {
		t.Error("no advance: not the canonical form")
	}
	if !strings.Contains(reps[1].String(), "does not end with") {
		t.Errorf("reason:\n%s", reps[1])
	}
}
