// Package poly implements the paper's §3.1.1 sparse polynomial
// application: a polynomial such as 451x³¹ + 10x¹³ + 4 stored as a
// one-way linked list of (coefficient, exponent) nodes in decreasing
// exponent order.
package poly

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/structures/list"
)

// Term is one polynomial term.
type Term struct {
	Coef int64
	Exp  int
}

// Poly is a sparse polynomial over int64 coefficients. Terms are kept
// in strictly decreasing exponent order with no zero coefficients.
type Poly struct {
	terms *list.List[Term]
}

// New builds a polynomial from terms (any order; duplicates combine).
func New(terms ...Term) *Poly {
	p := &Poly{terms: list.New[Term]()}
	for _, t := range terms {
		p.addTerm(t)
	}
	return p
}

// Zero returns the zero polynomial.
func Zero() *Poly { return New() }

// addTerm merges one term into the ordered list.
func (p *Poly) addTerm(t Term) {
	if t.Coef == 0 {
		return
	}
	head := p.terms.Head()
	if head == nil || t.Exp > head.Data.Exp {
		p.terms.Prepend(t)
		return
	}
	var prev *list.Node[Term]
	for n := head; n != nil; n = n.Next {
		if n.Data.Exp == t.Exp {
			n.Data.Coef += t.Coef
			if n.Data.Coef == 0 {
				exp := t.Exp
				p.terms.Remove(func(x Term) bool { return x.Exp == exp })
			}
			return
		}
		if n.Data.Exp < t.Exp {
			break
		}
		prev = n
	}
	if prev == nil {
		p.terms.Prepend(t)
	} else {
		p.terms.InsertAfter(prev, t)
	}
}

// Terms returns the terms in decreasing exponent order.
func (p *Poly) Terms() []Term { return p.terms.Slice() }

// Len returns the number of nonzero terms.
func (p *Poly) Len() int { return p.terms.Len() }

// IsZero reports whether p has no terms.
func (p *Poly) IsZero() bool { return p.terms.Len() == 0 }

// Degree returns the largest exponent (-1 for the zero polynomial).
func (p *Poly) Degree() int {
	if h := p.terms.Head(); h != nil {
		return h.Data.Exp
	}
	return -1
}

// String renders "451x^31 + 10x^13 + 4".
func (p *Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var parts []string
	for _, t := range p.Terms() {
		switch {
		case t.Exp == 0:
			parts = append(parts, fmt.Sprintf("%d", t.Coef))
		case t.Exp == 1:
			parts = append(parts, fmt.Sprintf("%dx", t.Coef))
		default:
			parts = append(parts, fmt.Sprintf("%dx^%d", t.Coef, t.Exp))
		}
	}
	return strings.Join(parts, " + ")
}

// Scale multiplies every coefficient by c in place — exactly the
// traversal the paper analyzes in §3.3.2.
func (p *Poly) Scale(c int64) {
	if c == 0 {
		p.terms = list.New[Term]()
		return
	}
	p.terms.Each(func(n *list.Node[Term]) {
		n.Data.Coef *= c
	})
}

// ScaleParallel is Scale over the strip-mined traversal (§4.3.3): the
// node processing is what parallelizes, as the analysis proves.
func (p *Poly) ScaleParallel(pes int, c int64) {
	if c == 0 {
		p.terms = list.New[Term]()
		return
	}
	p.terms.ParallelEach(pes, func(n *list.Node[Term]) {
		n.Data.Coef *= c
	})
}

// Add returns p + q.
func (p *Poly) Add(q *Poly) *Poly {
	out := Zero()
	a, b := p.terms.Head(), q.terms.Head()
	for a != nil || b != nil {
		switch {
		case b == nil || (a != nil && a.Data.Exp > b.Data.Exp):
			out.terms.Append(a.Data)
			a = a.Next
		case a == nil || b.Data.Exp > a.Data.Exp:
			out.terms.Append(b.Data)
			b = b.Next
		default:
			if c := a.Data.Coef + b.Data.Coef; c != 0 {
				out.terms.Append(Term{Coef: c, Exp: a.Data.Exp})
			}
			a, b = a.Next, b.Next
		}
	}
	return out
}

// Mul returns p * q.
func (p *Poly) Mul(q *Poly) *Poly {
	out := Zero()
	for a := p.terms.Head(); a != nil; a = a.Next {
		for b := q.terms.Head(); b != nil; b = b.Next {
			out.addTerm(Term{Coef: a.Data.Coef * b.Data.Coef, Exp: a.Data.Exp + b.Data.Exp})
		}
	}
	return out
}

// Derivative returns dp/dx.
func (p *Poly) Derivative() *Poly {
	out := Zero()
	for _, t := range p.Terms() {
		if t.Exp > 0 {
			out.terms.Append(Term{Coef: t.Coef * int64(t.Exp), Exp: t.Exp - 1})
		}
	}
	return out
}

// Eval evaluates p at x.
func (p *Poly) Eval(x float64) float64 {
	var sum float64
	for _, t := range p.Terms() {
		sum += float64(t.Coef) * math.Pow(x, float64(t.Exp))
	}
	return sum
}

// Equal reports structural equality.
func (p *Poly) Equal(q *Poly) bool {
	a, b := p.Terms(), q.Terms()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Verify checks the representation invariants: strictly decreasing
// exponents, no zero coefficients, acyclic unique list.
func (p *Poly) Verify() error {
	if err := p.terms.VerifyAcyclic(); err != nil {
		return err
	}
	if err := p.terms.VerifyUnique(); err != nil {
		return err
	}
	prev := math.MaxInt
	for _, t := range p.Terms() {
		if t.Coef == 0 {
			return fmt.Errorf("poly: zero coefficient at exponent %d", t.Exp)
		}
		if t.Exp >= prev {
			return fmt.Errorf("poly: exponents not strictly decreasing at %d", t.Exp)
		}
		prev = t.Exp
	}
	return nil
}
