package poly

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperExample(t *testing.T) {
	// 451x^31 + 10x^13 + 4 (§3.1.1).
	p := New(Term{4, 0}, Term{451, 31}, Term{10, 13})
	if got := p.String(); got != "451x^31 + 10x^13 + 4" {
		t.Errorf("string = %q", got)
	}
	if p.Degree() != 31 || p.Len() != 3 {
		t.Errorf("degree=%d len=%d", p.Degree(), p.Len())
	}
	if err := p.Verify(); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	p := New(Term{451, 31}, Term{10, 13}, Term{4, 0})
	p.Scale(3)
	want := New(Term{1353, 31}, Term{30, 13}, Term{12, 0})
	if !p.Equal(want) {
		t.Errorf("scaled = %s", p)
	}
	p.Scale(0)
	if !p.IsZero() {
		t.Errorf("scale by 0 = %s", p)
	}
}

func TestScaleParallelMatchesScale(t *testing.T) {
	mk := func() *Poly {
		p := Zero()
		for i := 0; i < 200; i++ {
			p.addTerm(Term{Coef: int64(i + 1), Exp: i})
		}
		return p
	}
	want := mk()
	want.Scale(7)
	for _, pes := range []int{1, 2, 4, 7} {
		got := mk()
		got.ScaleParallel(pes, 7)
		if !got.Equal(want) {
			t.Errorf("pes=%d mismatch", pes)
		}
	}
	z := mk()
	z.ScaleParallel(4, 0)
	if !z.IsZero() {
		t.Error("parallel scale by zero")
	}
}

func TestAdd(t *testing.T) {
	p := New(Term{1, 2}, Term{3, 0})
	q := New(Term{2, 2}, Term{5, 1})
	sum := p.Add(q)
	want := New(Term{3, 2}, Term{5, 1}, Term{3, 0})
	if !sum.Equal(want) {
		t.Errorf("sum = %s", sum)
	}
	// Cancellation drops terms.
	r := New(Term{-3, 2})
	if got := sum.Add(r); got.Len() != 2 || got.Degree() != 1 {
		t.Errorf("cancelled = %s", got)
	}
	if err := sum.Verify(); err != nil {
		t.Error(err)
	}
	if !Zero().Add(Zero()).IsZero() {
		t.Error("0 + 0")
	}
}

func TestMul(t *testing.T) {
	// (x + 1)(x - 1) = x² - 1
	p := New(Term{1, 1}, Term{1, 0})
	q := New(Term{1, 1}, Term{-1, 0})
	got := p.Mul(q)
	want := New(Term{1, 2}, Term{-1, 0})
	if !got.Equal(want) {
		t.Errorf("(x+1)(x-1) = %s", got)
	}
	if !p.Mul(Zero()).IsZero() {
		t.Error("p * 0")
	}
	if err := got.Verify(); err != nil {
		t.Error(err)
	}
}

func TestDerivative(t *testing.T) {
	p := New(Term{451, 31}, Term{10, 13}, Term{4, 0})
	d := p.Derivative()
	want := New(Term{451 * 31, 30}, Term{130, 12})
	if !d.Equal(want) {
		t.Errorf("d/dx = %s", d)
	}
	if !Zero().Derivative().IsZero() {
		t.Error("d0/dx")
	}
}

func TestEval(t *testing.T) {
	p := New(Term{2, 2}, Term{-3, 1}, Term{1, 0}) // 2x² - 3x + 1
	if got := p.Eval(2); math.Abs(got-3) > 1e-12 {
		t.Errorf("p(2) = %g", got)
	}
	if got := Zero().Eval(5); got != 0 {
		t.Errorf("0(5) = %g", got)
	}
}

func TestAddTermMergesAndOrders(t *testing.T) {
	p := New(Term{1, 5}, Term{1, 1}, Term{1, 3}, Term{1, 5})
	if p.Len() != 3 {
		t.Errorf("len = %d (duplicate exponents must merge)", p.Len())
	}
	terms := p.Terms()
	if terms[0].Exp != 5 || terms[0].Coef != 2 {
		t.Errorf("terms = %v", terms)
	}
	if err := p.Verify(); err != nil {
		t.Error(err)
	}
	// Merge to zero removes the node.
	p.addTerm(Term{-2, 5})
	if p.Degree() != 3 {
		t.Errorf("after cancel: %s", p)
	}
}

func TestStringForms(t *testing.T) {
	if got := Zero().String(); got != "0" {
		t.Errorf("zero = %q", got)
	}
	if got := New(Term{5, 1}).String(); got != "5x" {
		t.Errorf("linear = %q", got)
	}
	if got := New(Term{-2, 0}).String(); got != "-2" {
		t.Errorf("const = %q", got)
	}
}

// TestQuickEvalLinearity: (p + q)(x) == p(x) + q(x).
func TestQuickEvalLinearity(t *testing.T) {
	mk := func(coefs []int8) *Poly {
		p := Zero()
		for i, c := range coefs {
			if i >= 8 {
				break
			}
			p.addTerm(Term{Coef: int64(c), Exp: i})
		}
		return p
	}
	f := func(a, b []int8) bool {
		p, q := mk(a), mk(b)
		x := 1.25
		lhs := p.Add(q).Eval(x)
		rhs := p.Eval(x) + q.Eval(x)
		return math.Abs(lhs-rhs) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickMulDegree: deg(p·q) = deg(p) + deg(q) for nonzero p, q with
// no leading-coefficient cancellation (int64 products of int8 leading
// coefficients cannot vanish).
func TestQuickMulDegree(t *testing.T) {
	mk := func(coefs []int8) *Poly {
		p := Zero()
		for i, c := range coefs {
			if i >= 6 {
				break
			}
			p.addTerm(Term{Coef: int64(c), Exp: i})
		}
		return p
	}
	f := func(a, b []int8) bool {
		p, q := mk(a), mk(b)
		if p.IsZero() || q.IsZero() {
			return p.Mul(q).IsZero()
		}
		return p.Mul(q).Degree() == p.Degree()+q.Degree()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickVerifyInvariant: every constructed polynomial satisfies its
// representation invariants.
func TestQuickVerifyInvariant(t *testing.T) {
	f := func(coefs []int8, exps []uint8) bool {
		p := Zero()
		for i := range coefs {
			if i >= len(exps) || i > 20 {
				break
			}
			p.addTerm(Term{Coef: int64(coefs[i]), Exp: int(exps[i] % 32)})
		}
		return p.Verify() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
