// Package orthlist implements the paper's §3.1.3 orthogonal list
// (Figure 3): a sparse matrix whose nonzero elements are threaded into
// per-row lists along the X dimension (across / back) and per-column
// lists along the Y dimension (down / up). X and Y are dependent
// dimensions — one node is reachable along both — but each row (and
// each column) is disjoint from its siblings, which licenses parallel
// row operations.
package orthlist

import (
	"fmt"
	"sync"
)

// Node is one nonzero element with its four links.
type Node struct {
	Row, Col int
	Val      float64
	// Across/Back traverse the X dimension (uniquely forward/backward).
	Across, Back *Node
	// Down/Up traverse the Y dimension.
	Down, Up *Node
}

// Matrix is a sparse rows×cols matrix.
type Matrix struct {
	Rows, Cols int
	rowHead    []*Node
	colHead    []*Node
	nnz        int
}

// New creates an empty rows×cols sparse matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("orthlist: negative dimensions")
	}
	return &Matrix{
		Rows: rows, Cols: cols,
		rowHead: make([]*Node, rows),
		colHead: make([]*Node, cols),
	}
}

// NNZ returns the number of stored nonzeros.
func (m *Matrix) NNZ() int { return m.nnz }

func (m *Matrix) check(r, c int) {
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("orthlist: index (%d,%d) out of %dx%d", r, c, m.Rows, m.Cols))
	}
}

// Get returns the element at (r, c) (zero when absent).
func (m *Matrix) Get(r, c int) float64 {
	m.check(r, c)
	for n := m.rowHead[r]; n != nil && n.Col <= c; n = n.Across {
		if n.Col == c {
			return n.Val
		}
	}
	return 0
}

// Set stores v at (r, c); storing zero removes the element.
func (m *Matrix) Set(r, c int, v float64) {
	m.check(r, c)
	if v == 0 {
		m.remove(r, c)
		return
	}
	// Find or create in the row list.
	var prev *Node
	n := m.rowHead[r]
	for n != nil && n.Col < c {
		prev = n
		n = n.Across
	}
	if n != nil && n.Col == c {
		n.Val = v
		return
	}
	node := &Node{Row: r, Col: c, Val: v}
	// Row splice.
	node.Across = n
	node.Back = prev
	if n != nil {
		n.Back = node
	}
	if prev == nil {
		m.rowHead[r] = node
	} else {
		prev.Across = node
	}
	// Column splice.
	var cprev *Node
	cn := m.colHead[c]
	for cn != nil && cn.Row < r {
		cprev = cn
		cn = cn.Down
	}
	node.Down = cn
	node.Up = cprev
	if cn != nil {
		cn.Up = node
	}
	if cprev == nil {
		m.colHead[c] = node
	} else {
		cprev.Down = node
	}
	m.nnz++
}

func (m *Matrix) remove(r, c int) {
	n := m.rowHead[r]
	for n != nil && n.Col < c {
		n = n.Across
	}
	if n == nil || n.Col != c {
		return
	}
	if n.Back != nil {
		n.Back.Across = n.Across
	} else {
		m.rowHead[r] = n.Across
	}
	if n.Across != nil {
		n.Across.Back = n.Back
	}
	if n.Up != nil {
		n.Up.Down = n.Down
	} else {
		m.colHead[c] = n.Down
	}
	if n.Down != nil {
		n.Down.Up = n.Up
	}
	m.nnz--
}

// RowHead returns the first node of row r.
func (m *Matrix) RowHead(r int) *Node {
	m.check(r, 0)
	return m.rowHead[r]
}

// ColHead returns the first node of column c.
func (m *Matrix) ColHead(c int) *Node {
	m.check(0, c)
	return m.colHead[c]
}

// EachInRow traverses row r forward along X.
func (m *Matrix) EachInRow(r int, fn func(*Node)) {
	for n := m.rowHead[r]; n != nil; n = n.Across {
		fn(n)
	}
}

// EachInCol traverses column c forward along Y.
func (m *Matrix) EachInCol(c int, fn func(*Node)) {
	for n := m.colHead[c]; n != nil; n = n.Down {
		fn(n)
	}
}

// RowSum returns the sum of row r.
func (m *Matrix) RowSum(r int) float64 {
	var s float64
	m.EachInRow(r, func(n *Node) { s += n.Val })
	return s
}

// ColSum returns the sum of column c.
func (m *Matrix) ColSum(c int) float64 {
	var s float64
	m.EachInCol(c, func(n *Node) { s += n.Val })
	return s
}

// Add returns m + o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("orthlist: dimension mismatch")
	}
	out := New(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		a, b := m.rowHead[r], o.rowHead[r]
		for a != nil || b != nil {
			switch {
			case b == nil || (a != nil && a.Col < b.Col):
				out.Set(r, a.Col, a.Val)
				a = a.Across
			case a == nil || b.Col < a.Col:
				out.Set(r, b.Col, b.Val)
				b = b.Across
			default:
				if v := a.Val + b.Val; v != 0 {
					out.Set(r, a.Col, v)
				}
				a, b = a.Across, b.Across
			}
		}
	}
	return out
}

// Mul returns the sparse product m × o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic("orthlist: dimension mismatch")
	}
	out := New(m.Rows, o.Cols)
	for r := 0; r < m.Rows; r++ {
		acc := map[int]float64{}
		for a := m.rowHead[r]; a != nil; a = a.Across {
			for b := o.rowHead[a.Col]; b != nil; b = b.Across {
				acc[b.Col] += a.Val * b.Val
			}
		}
		for c, v := range acc {
			if v != 0 {
				out.Set(r, c, v)
			}
		}
	}
	return out
}

// Transpose returns mᵀ (X and Y dimensions exchange roles).
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		m.EachInRow(r, func(n *Node) {
			out.Set(n.Col, n.Row, n.Val)
		})
	}
	return out
}

// ScaleRowsParallel multiplies every row by its factor using one
// goroutine per strip of rows. Rows are disjoint along X ("parallel
// traversals of different rows along X will never visit the same
// node"), which is exactly the ADDS property that makes this safe.
func (m *Matrix) ScaleRowsParallel(pes int, factor func(row int) float64) {
	if pes < 1 {
		pes = 1
	}
	var wg sync.WaitGroup
	for i := 0; i < pes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := i; r < m.Rows; r += pes {
				f := factor(r)
				for n := m.rowHead[r]; n != nil; n = n.Across {
					n.Val *= f
				}
			}
		}(i)
	}
	wg.Wait()
}

// MulVec returns m·x as a dense vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("orthlist: vector length mismatch")
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var s float64
		for n := m.rowHead[r]; n != nil; n = n.Across {
			s += n.Val * x[n.Col]
		}
		out[r] = s
	}
	return out
}

// Dense converts to a dense [][]float64 (for tests and display).
func (m *Matrix) Dense() [][]float64 {
	out := make([][]float64, m.Rows)
	for r := range out {
		out[r] = make([]float64, m.Cols)
		m.EachInRow(r, func(n *Node) { out[r][n.Col] = n.Val })
	}
	return out
}

// Verify checks the orthogonal-list invariants: row lists strictly
// increasing in column with consistent back links, column lists
// strictly increasing in row with consistent up links, and the same
// node set reachable along both dimensions (the declared dependence of
// X and Y).
func (m *Matrix) Verify() error {
	rowNodes := map[*Node]bool{}
	for r := 0; r < m.Rows; r++ {
		lastCol := -1
		var prev *Node
		for n := m.rowHead[r]; n != nil; n = n.Across {
			if n.Row != r {
				return fmt.Errorf("orthlist: node (%d,%d) threaded into row %d", n.Row, n.Col, r)
			}
			if n.Col <= lastCol {
				return fmt.Errorf("orthlist: row %d not strictly increasing at col %d", r, n.Col)
			}
			if n.Back != prev {
				return fmt.Errorf("orthlist: row %d broken back link at col %d", r, n.Col)
			}
			lastCol = n.Col
			prev = n
			if rowNodes[n] {
				return fmt.Errorf("orthlist: node visited twice along X")
			}
			rowNodes[n] = true
		}
	}
	colNodes := map[*Node]bool{}
	for c := 0; c < m.Cols; c++ {
		lastRow := -1
		var prev *Node
		for n := m.colHead[c]; n != nil; n = n.Down {
			if n.Col != c {
				return fmt.Errorf("orthlist: node (%d,%d) threaded into col %d", n.Row, n.Col, c)
			}
			if n.Row <= lastRow {
				return fmt.Errorf("orthlist: col %d not strictly increasing at row %d", c, n.Row)
			}
			if n.Up != prev {
				return fmt.Errorf("orthlist: col %d broken up link at row %d", c, n.Row)
			}
			lastRow = n.Row
			prev = n
			if colNodes[n] {
				return fmt.Errorf("orthlist: node visited twice along Y")
			}
			colNodes[n] = true
		}
	}
	if len(rowNodes) != len(colNodes) || len(rowNodes) != m.nnz {
		return fmt.Errorf("orthlist: X reaches %d nodes, Y reaches %d, nnz %d",
			len(rowNodes), len(colNodes), m.nnz)
	}
	for n := range rowNodes {
		if !colNodes[n] {
			return fmt.Errorf("orthlist: node (%d,%d) reachable along X but not Y", n.Row, n.Col)
		}
	}
	return nil
}
