package orthlist

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	m := New(4, 5)
	m.Set(1, 2, 3.5)
	m.Set(0, 0, 1)
	m.Set(3, 4, -2)
	if got := m.Get(1, 2); got != 3.5 {
		t.Errorf("get = %g", got)
	}
	if got := m.Get(2, 2); got != 0 {
		t.Errorf("absent = %g", got)
	}
	if m.NNZ() != 3 {
		t.Errorf("nnz = %d", m.NNZ())
	}
	// Overwrite.
	m.Set(1, 2, 9)
	if m.Get(1, 2) != 9 || m.NNZ() != 3 {
		t.Error("overwrite broken")
	}
	// Zero removes.
	m.Set(1, 2, 0)
	if m.Get(1, 2) != 0 || m.NNZ() != 2 {
		t.Error("zero-removal broken")
	}
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
}

func TestRemoveEdgeCases(t *testing.T) {
	m := New(3, 3)
	for c := 0; c < 3; c++ {
		m.Set(1, c, float64(c+1))
		m.Set(c, 1, float64(c+10))
	}
	// Remove head of a row, middle, and a column head.
	m.Set(1, 0, 0)
	m.Set(1, 1, 0)
	m.Set(0, 1, 0)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// Removing an absent element is a no-op.
	before := m.NNZ()
	m.Set(2, 2, 0)
	if m.NNZ() != before {
		t.Error("removing absent changed nnz")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, fn := range []func(){
		func() { m.Get(2, 0) },
		func() { m.Set(0, 2, 1) },
		func() { m.Get(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSums(t *testing.T) {
	m := New(3, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(2, 0, 3)
	if got := m.RowSum(0); got != 3 {
		t.Errorf("row sum = %g", got)
	}
	if got := m.ColSum(0); got != 4 {
		t.Errorf("col sum = %g", got)
	}
	if got := m.RowSum(1); got != 0 {
		t.Errorf("empty row = %g", got)
	}
}

func TestAdd(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 2)
	b := New(2, 2)
	b.Set(0, 0, -1) // cancels
	b.Set(0, 1, 5)
	sum := a.Add(b)
	want := [][]float64{{0, 5}, {0, 2}}
	if !reflect.DeepEqual(sum.Dense(), want) {
		t.Errorf("sum = %v", sum.Dense())
	}
	if sum.NNZ() != 2 {
		t.Errorf("nnz = %d (cancellation must drop the node)", sum.NNZ())
	}
	if err := sum.Verify(); err != nil {
		t.Error(err)
	}
}

func TestMulAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, b := New(5, 7), New(7, 4)
	da := make([][]float64, 5)
	db := make([][]float64, 7)
	for i := range da {
		da[i] = make([]float64, 7)
	}
	for i := range db {
		db[i] = make([]float64, 4)
	}
	for k := 0; k < 12; k++ {
		i, j, v := r.Intn(5), r.Intn(7), float64(r.Intn(9)+1)
		a.Set(i, j, v)
		da[i][j] = v
		i2, j2, v2 := r.Intn(7), r.Intn(4), float64(r.Intn(9)+1)
		b.Set(i2, j2, v2)
		db[i2][j2] = v2
	}
	got := a.Mul(b).Dense()
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			var want float64
			for k := 0; k < 7; k++ {
				want += da[i][k] * db[k][j]
			}
			if math.Abs(got[i][j]-want) > 1e-12 {
				t.Fatalf("(%d,%d) = %g, want %g", i, j, got[i][j], want)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := New(2, 3)
	m.Set(0, 1, 4)
	m.Set(1, 2, 5)
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("shape = %dx%d", tr.Rows, tr.Cols)
	}
	if tr.Get(1, 0) != 4 || tr.Get(2, 1) != 5 {
		t.Errorf("transpose = %v", tr.Dense())
	}
	if err := tr.Verify(); err != nil {
		t.Error(err)
	}
}

func TestMulVec(t *testing.T) {
	m := New(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	got := m.MulVec([]float64{1, 2, 3})
	if !reflect.DeepEqual(got, []float64{7, 6}) {
		t.Errorf("m·x = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	m.MulVec([]float64{1})
}

func TestScaleRowsParallel(t *testing.T) {
	for _, pes := range []int{1, 2, 4, 7} {
		m := New(20, 20)
		for r := 0; r < 20; r++ {
			for c := 0; c < 20; c += r + 1 {
				m.Set(r, c, 1)
			}
		}
		m.ScaleRowsParallel(pes, func(row int) float64 { return float64(row + 1) })
		for r := 0; r < 20; r++ {
			m.EachInRow(r, func(n *Node) {
				if n.Val != float64(r+1) {
					t.Fatalf("pes=%d row %d: val %g", pes, r, n.Val)
				}
			})
		}
		if err := m.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	// pes < 1 falls back.
	m := New(2, 2)
	m.Set(0, 0, 2)
	m.ScaleRowsParallel(0, func(int) float64 { return 3 })
	if m.Get(0, 0) != 6 {
		t.Error("fallback broken")
	}
}

// TestQuickMatchesDenseOracle: random edits keep the orthogonal list
// consistent with a dense matrix and structurally valid.
func TestQuickMatchesDenseOracle(t *testing.T) {
	f := func(ops []uint32) bool {
		m := New(6, 6)
		dense := make([][]float64, 6)
		for i := range dense {
			dense[i] = make([]float64, 6)
		}
		for _, op := range ops {
			r := int(op % 6)
			c := int((op / 6) % 6)
			v := float64(int((op/36)%7)) - 3 // -3..3 incl. 0 (removal)
			m.Set(r, c, v)
			dense[r][c] = v
		}
		if err := m.Verify(); err != nil {
			return false
		}
		return reflect.DeepEqual(m.Dense(), dense)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickTransposeInvolution: (mᵀ)ᵀ == m.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(ops []uint32) bool {
		m := New(5, 7)
		for _, op := range ops {
			m.Set(int(op%5), int((op/5)%7), float64(op%9)+1)
		}
		return reflect.DeepEqual(m.Transpose().Transpose().Dense(), m.Dense())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
