package octree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPoints(seed int64, n int) []Point {
	r := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X:  r.Float64()*200 - 100,
			Y:  r.Float64()*200 - 100,
			Z:  r.Float64()*200 - 100,
			ID: i,
		}
	}
	return pts
}

func build(t *testing.T, pts []Point) *Tree {
	t.Helper()
	tr := New()
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestInsertAndVerify(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 400} {
		tr := build(t, randomPoints(int64(n), n))
		if tr.Len() != n {
			t.Fatalf("n=%d: len=%d", n, tr.Len())
		}
		if err := tr.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestDuplicateRejected(t *testing.T) {
	tr := New()
	if err := tr.Insert(Point{1, 2, 3, 0}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(Point{1, 2, 3, 1}); err == nil {
		t.Error("duplicate accepted")
	}
	if tr.Len() != 1 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestLeavesOrder(t *testing.T) {
	pts := randomPoints(7, 50)
	tr := build(t, pts)
	leaves := tr.Leaves()
	if len(leaves) != 50 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	for i, p := range leaves {
		if p.ID != i {
			t.Fatalf("leaves not in insertion order at %d: %v", i, p)
		}
	}
}

func TestCountInBoxAgainstBruteForce(t *testing.T) {
	pts := randomPoints(11, 300)
	tr := build(t, pts)
	boxes := [][2][3]float64{
		{{-100, -100, -100}, {100, 100, 100}},
		{{0, 0, 0}, {50, 50, 50}},
		{{-25, -25, -25}, {25, 25, 25}},
		{{90, 90, 90}, {99, 99, 99}},
		{{5, 5, 5}, {4, 4, 4}}, // inverted: empty
	}
	for _, box := range boxes {
		lo, hi := box[0], box[1]
		want := 0
		for _, p := range pts {
			if p.X >= lo[0] && p.X <= hi[0] && p.Y >= lo[1] && p.Y <= hi[1] &&
				p.Z >= lo[2] && p.Z <= hi[2] {
				want++
			}
		}
		if got := tr.CountInBox(lo, hi); got != want {
			t.Errorf("box %v: got %d, want %d", box, got, want)
		}
	}
}

func TestNearestAgainstBruteForce(t *testing.T) {
	pts := randomPoints(13, 200)
	tr := build(t, pts)
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		x, y, z := r.Float64()*240-120, r.Float64()*240-120, r.Float64()*240-120
		got, ok := tr.Nearest(x, y, z)
		if !ok {
			t.Fatal("no nearest")
		}
		bestD := 1e18
		var want Point
		for _, p := range pts {
			d := (p.X-x)*(p.X-x) + (p.Y-y)*(p.Y-y) + (p.Z-z)*(p.Z-z)
			if d < bestD {
				bestD, want = d, p
			}
		}
		if got.ID != want.ID {
			t.Errorf("nearest(%g,%g,%g) = %d, want %d", x, y, z, got.ID, want.ID)
		}
	}
	if _, ok := New().Nearest(0, 0, 0); ok {
		t.Error("empty tree has no nearest")
	}
}

// TestQuickInvariants: arbitrary inserts keep the tree valid.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%150) + 1
		tr := New()
		for _, p := range randomPoints(seed, n) {
			if err := tr.Insert(p); err != nil {
				return false
			}
		}
		return tr.Len() == n && tr.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCountConsistent: counting the universe finds every point.
func TestQuickCountConsistent(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		tr := New()
		for _, p := range randomPoints(seed, n) {
			if err := tr.Insert(p); err != nil {
				return false
			}
		}
		return tr.CountInBox([3]float64{-1e9, -1e9, -1e9}, [3]float64{1e9, 1e9, 1e9}) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
