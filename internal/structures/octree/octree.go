// Package octree implements a reusable point octree with the paper's
// Figure 5 shape: a spatial tree along the down dimension whose leaves
// (the stored points) are additionally threaded into a one-way list
// along the leaves dimension. Package nbody builds its own specialized
// octree for the Barnes-Hut workload; this one serves the
// computational-geometry uses the paper's introduction motivates
// (point location, range counting).
package octree

import (
	"fmt"
	"math"
)

// Point is a 3-D point with a payload ID.
type Point struct {
	X, Y, Z float64
	ID      int
}

// Node is an octree node.
type Node struct {
	Center   [3]float64
	Half     float64
	Children [8]*Node
	// Point is set exactly for leaves.
	Point *Point
	// Next threads leaves in insertion order (the leaves dimension).
	Next *Node
}

// IsLeaf reports whether n stores a point.
func (n *Node) IsLeaf() bool { return n.Point != nil }

// Tree is a point octree.
type Tree struct {
	Root *Node
	// FirstLeaf / lastLeaf maintain the leaves list.
	FirstLeaf *Node
	lastLeaf  *Node
	n         int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.n }

func octant(c [3]float64, p Point) int {
	q := 0
	if p.X >= c[0] {
		q |= 1
	}
	if p.Y >= c[1] {
		q |= 2
	}
	if p.Z >= c[2] {
		q |= 4
	}
	return q
}

func octantCenter(n *Node, q int) [3]float64 {
	h := n.Half / 2
	c := n.Center
	if q&1 != 0 {
		c[0] += h
	} else {
		c[0] -= h
	}
	if q&2 != 0 {
		c[1] += h
	} else {
		c[1] -= h
	}
	if q&4 != 0 {
		c[2] += h
	} else {
		c[2] -= h
	}
	return c
}

func (n *Node) contains(p Point) bool {
	return p.X >= n.Center[0]-n.Half && p.X < n.Center[0]+n.Half &&
		p.Y >= n.Center[1]-n.Half && p.Y < n.Center[1]+n.Half &&
		p.Z >= n.Center[2]-n.Half && p.Z < n.Center[2]+n.Half
}

// Insert adds a point (duplicates at the identical position are
// rejected).
func (t *Tree) Insert(p Point) error {
	leaf := &Node{Point: &p}
	if t.Root == nil {
		t.Root = &Node{Center: [3]float64{p.X, p.Y, p.Z}, Half: 1}
		q := octant(t.Root.Center, p)
		t.Root.Children[q] = leaf
		t.thread(leaf)
		return nil
	}
	// Expand upward until the point fits.
	for !t.Root.contains(p) {
		r := t.Root
		h := r.Half
		nc := [3]float64{r.Center[0] - h, r.Center[1] - h, r.Center[2] - h}
		if p.X >= r.Center[0] {
			nc[0] = r.Center[0] + h
		}
		if p.Y >= r.Center[1] {
			nc[1] = r.Center[1] + h
		}
		if p.Z >= r.Center[2] {
			nc[2] = r.Center[2] + h
		}
		nr := &Node{Center: nc, Half: 2 * h}
		nr.Children[octant(nc, Point{X: r.Center[0], Y: r.Center[1], Z: r.Center[2]})] = r
		t.Root = nr
	}
	// Descend.
	cur := t.Root
	for {
		q := octant(cur.Center, p)
		child := cur.Children[q]
		if child == nil {
			cur.Children[q] = leaf
			t.thread(leaf)
			return nil
		}
		if !child.IsLeaf() {
			cur = child
			continue
		}
		other := *child.Point
		if other.X == p.X && other.Y == p.Y && other.Z == p.Z {
			return fmt.Errorf("octree: duplicate point at (%g,%g,%g)", p.X, p.Y, p.Z)
		}
		sub := &Node{Center: octantCenter(cur, q), Half: cur.Half / 2}
		sub.Children[octant(sub.Center, other)] = child
		cur.Children[q] = sub
		cur = sub
	}
}

func (t *Tree) thread(leaf *Node) {
	if t.lastLeaf == nil {
		t.FirstLeaf = leaf
	} else {
		t.lastLeaf.Next = leaf
	}
	t.lastLeaf = leaf
	t.n++
}

// CountInBox counts points within the axis-aligned box [lo, hi].
func (t *Tree) CountInBox(lo, hi [3]float64) int {
	var count func(n *Node) int
	count = func(n *Node) int {
		if n == nil {
			return 0
		}
		if n.IsLeaf() {
			p := n.Point
			if p.X >= lo[0] && p.X <= hi[0] &&
				p.Y >= lo[1] && p.Y <= hi[1] &&
				p.Z >= lo[2] && p.Z <= hi[2] {
				return 1
			}
			return 0
		}
		// Prune cells disjoint from the box.
		for i := 0; i < 3; i++ {
			if n.Center[i]+n.Half < lo[i] || n.Center[i]-n.Half > hi[i] {
				return 0
			}
		}
		total := 0
		for _, c := range n.Children {
			total += count(c)
		}
		return total
	}
	return count(t.Root)
}

// Nearest returns the stored point closest to (x, y, z) (ok=false for
// an empty tree).
func (t *Tree) Nearest(x, y, z float64) (Point, bool) {
	best := Point{}
	bestD := math.Inf(1)
	found := false
	var visit func(n *Node)
	visit = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			p := n.Point
			d := (p.X-x)*(p.X-x) + (p.Y-y)*(p.Y-y) + (p.Z-z)*(p.Z-z)
			if d < bestD {
				bestD, best, found = d, *p, true
			}
			return
		}
		// Prune cells farther than the current best.
		dx := math.Max(0, math.Abs(n.Center[0]-x)-n.Half)
		dy := math.Max(0, math.Abs(n.Center[1]-y)-n.Half)
		dz := math.Max(0, math.Abs(n.Center[2]-z)-n.Half)
		if dx*dx+dy*dy+dz*dz > bestD {
			return
		}
		for _, c := range n.Children {
			visit(c)
		}
	}
	visit(t.Root)
	return best, found
}

// Leaves returns the points in insertion (leaves-dimension) order.
func (t *Tree) Leaves() []Point {
	var out []Point
	for n := t.FirstLeaf; n != nil; n = n.Next {
		out = append(out, *n.Point)
	}
	return out
}

// Verify checks the Figure 5 invariants: each point sits in exactly one
// leaf reachable along down, the leaves list reaches exactly the same
// nodes (the dimensions are dependent), and both dimensions are unique.
func (t *Tree) Verify() error {
	treeLeaves := map[*Node]bool{}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil {
			return nil
		}
		if n.IsLeaf() {
			if treeLeaves[n] {
				return fmt.Errorf("octree: leaf shared along down")
			}
			treeLeaves[n] = true
			return nil
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	listLeaves := map[*Node]bool{}
	count := 0
	for n := t.FirstLeaf; n != nil; n = n.Next {
		if listLeaves[n] {
			return fmt.Errorf("octree: leaves list revisits a node")
		}
		listLeaves[n] = true
		if !treeLeaves[n] {
			return fmt.Errorf("octree: listed leaf not reachable along down")
		}
		count++
		if count > t.n {
			return fmt.Errorf("octree: leaves list longer than point count")
		}
	}
	if len(treeLeaves) != t.n || count != t.n {
		return fmt.Errorf("octree: %d tree leaves, %d listed, %d points",
			len(treeLeaves), count, t.n)
	}
	return nil
}
