package rangetree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func somePoints() []Point {
	return []Point{
		{1, 5, 0}, {2, 3, 1}, {4, 8, 2}, {5, 1, 3},
		{7, 6, 4}, {8, 2, 5}, {9, 9, 6}, {11, 4, 7},
	}
}

func TestBuildAndVerify(t *testing.T) {
	for n := 1; n <= 40; n++ {
		var pts []Point
		r := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			pts = append(pts, Point{X: r.Float64() * 100, Y: r.Float64() * 100, ID: i})
		}
		tr := Build(pts)
		if tr.Len() != n {
			t.Fatalf("n=%d: len=%d", n, tr.Len())
		}
		if err := tr.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	empty := Build(nil)
	if empty.Len() != 0 || empty.Verify() != nil {
		t.Error("empty tree")
	}
}

func TestLeavesOrder(t *testing.T) {
	tr := Build(somePoints())
	leaves := tr.Leaves()
	for i := 1; i < len(leaves); i++ {
		if leaves[i].X < leaves[i-1].X {
			t.Fatalf("leaves not x-sorted: %v", leaves)
		}
	}
	if len(leaves) != 8 {
		t.Errorf("leaves = %d", len(leaves))
	}
}

func TestQueryX(t *testing.T) {
	tr := Build(somePoints())
	got := tr.QueryX(4, 8)
	ids := idsOf(got)
	if !reflect.DeepEqual(ids, []int{2, 3, 4, 5}) {
		t.Errorf("x in [4,8]: ids = %v", ids)
	}
	if len(tr.QueryX(100, 200)) != 0 {
		t.Error("empty range")
	}
	if len(tr.QueryX(8, 4)) != 0 {
		t.Error("inverted range")
	}
	all := tr.QueryX(-1, 100)
	if len(all) != 8 {
		t.Errorf("full range = %d", len(all))
	}
}

func TestQueryRect(t *testing.T) {
	tr := Build(somePoints())
	// The paper's query: "find all points within the bounding rectangle".
	got := tr.QueryRect(2, 2, 8, 6)
	ids := idsOf(got)
	// Points with x∈[2,8], y∈[2,6]: (2,3), (7,6), (8,2).
	if !reflect.DeepEqual(ids, []int{1, 4, 5}) {
		t.Errorf("rect ids = %v (points %v)", ids, got)
	}
	if tr.CountRect(2, 2, 8, 6) != 3 {
		t.Error("CountRect disagrees")
	}
	if len(tr.QueryRect(5, 5, 4, 6)) != 0 {
		t.Error("inverted rect")
	}
}

func idsOf(pts []Point) []int {
	ids := make([]int, len(pts))
	for i, p := range pts {
		ids[i] = p.ID
	}
	sort.Ints(ids)
	return ids
}

// TestQuickRectAgainstBruteForce: QueryRect matches the O(n) scan.
func TestQuickRectAgainstBruteForce(t *testing.T) {
	f := func(seed int64, nRaw, rect uint8) bool {
		n := int(nRaw%50) + 1
		r := rand.New(rand.NewSource(seed))
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: float64(r.Intn(20)), Y: float64(r.Intn(20)), ID: i}
		}
		tr := Build(pts)
		if tr.Verify() != nil {
			return false
		}
		x1 := float64(rect % 10)
		y1 := float64((rect / 2) % 10)
		x2 := x1 + float64(rect%7)
		y2 := y1 + float64(rect%5)
		got := idsOf(tr.QueryRect(x1, y1, x2, y2))
		var want []int
		for _, p := range pts {
			if p.X >= x1 && p.X <= x2 && p.Y >= y1 && p.Y <= y2 {
				want = append(want, p.ID)
			}
		}
		sort.Ints(want)
		if want == nil {
			want = []int{}
		}
		if got == nil {
			got = []int{}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickXQueryAgainstBruteForce: interval query matches the scan.
func TestQuickXQueryAgainstBruteForce(t *testing.T) {
	f := func(seed int64, nRaw, span uint8) bool {
		n := int(nRaw%60) + 1
		r := rand.New(rand.NewSource(seed))
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: float64(r.Intn(30)), Y: float64(r.Intn(30)), ID: i}
		}
		tr := Build(pts)
		x1 := float64(span % 15)
		x2 := x1 + float64(span%9)
		got := idsOf(tr.QueryX(x1, x2))
		var want []int
		for _, p := range pts {
			if p.X >= x1 && p.X <= x2 {
				want = append(want, p.ID)
			}
		}
		sort.Ints(want)
		if want == nil {
			want = []int{}
		}
		if got == nil {
			got = []int{}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	pts := []Point{{1, 1, 0}, {1, 1, 1}, {1, 2, 2}, {2, 1, 3}}
	tr := Build(pts)
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.QueryRect(1, 1, 1, 1)); got != 2 {
		t.Errorf("duplicates found = %d", got)
	}
}
