// Package rangetree implements the paper's §3.1.3 two-dimensional range
// tree (Figure 4): a binary tree over x (the down dimension) whose
// leaves are threaded into a two-way linked list (the leaves
// dimension), where every internal node carries a secondary binary tree
// over y (the sub dimension) of the points below it. The sub dimension
// is independent of down and of leaves — the declaration's
// "where sub||down, sub||leaves" — because secondary-tree nodes are
// fresh copies, never shared with the primary structure.
package rangetree

import (
	"fmt"
	"sort"
)

// Point is a 2-D point with an optional payload.
type Point struct {
	X, Y float64
	ID   int
}

// Node is a primary-tree node (internal or leaf).
type Node struct {
	// Left/Right are the down-dimension children (uniquely forward).
	Left, Right *Node
	// Subtree is the secondary y-tree over this node's points
	// (uniquely forward along the independent sub dimension).
	Subtree *YNode
	// Next/Prev thread leaf nodes into the leaves dimension.
	Next, Prev *Node
	// MinX and MaxX bound the x-values stored in this subtree.
	MinX, MaxX float64
	// Point is set exactly for leaves.
	Point *Point
}

// IsLeaf reports whether n is a leaf.
func (n *Node) IsLeaf() bool { return n.Point != nil }

// YNode is a secondary-tree node over y.
type YNode struct {
	Left, Right *YNode
	Point       *Point
	// MinY and MaxY bound the y-values stored in this subtree.
	MinY, MaxY float64
}

// IsLeaf reports whether y is a leaf.
func (y *YNode) IsLeaf() bool { return y.Point != nil }

// Tree is a 2-D range tree.
type Tree struct {
	Root *Node
	// LeftmostLeaf is the origin of the leaves dimension.
	LeftmostLeaf *Node
	n            int
}

// Build constructs the range tree for the points (copied, then sorted
// by x).
func Build(points []Point) *Tree {
	if len(points) == 0 {
		return &Tree{}
	}
	pts := make([]Point, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	t := &Tree{n: len(pts)}
	var leaves []*Node
	t.Root = buildX(pts, &leaves)
	for i, leaf := range leaves {
		if i > 0 {
			leaves[i-1].Next = leaf
			leaf.Prev = leaves[i-1]
		}
	}
	t.LeftmostLeaf = leaves[0]
	return t
}

func buildX(pts []Point, leaves *[]*Node) *Node {
	if len(pts) == 1 {
		p := pts[0]
		leaf := &Node{Point: &p, MinX: p.X, MaxX: p.X, Subtree: buildY(pts)}
		*leaves = append(*leaves, leaf)
		return leaf
	}
	mid := len(pts) / 2
	n := &Node{
		MinX:    pts[0].X,
		MaxX:    pts[len(pts)-1].X,
		Subtree: buildY(pts),
	}
	n.Left = buildX(pts[:mid], leaves)
	n.Right = buildX(pts[mid:], leaves)
	return n
}

func buildY(pts []Point) *YNode {
	ys := make([]Point, len(pts))
	copy(ys, pts)
	sort.Slice(ys, func(i, j int) bool {
		if ys[i].Y != ys[j].Y {
			return ys[i].Y < ys[j].Y
		}
		return ys[i].X < ys[j].X
	})
	return buildYSorted(ys)
}

func buildYSorted(pts []Point) *YNode {
	if len(pts) == 1 {
		p := pts[0]
		return &YNode{Point: &p, MinY: p.Y, MaxY: p.Y}
	}
	mid := len(pts) / 2
	return &YNode{
		MinY:  pts[0].Y,
		MaxY:  pts[len(pts)-1].Y,
		Left:  buildYSorted(pts[:mid]),
		Right: buildYSorted(pts[mid:]),
	}
}

// Len returns the number of points.
func (t *Tree) Len() int { return t.n }

// QueryX returns the points with x ∈ [x1, x2], by walking down the
// primary tree and then along the leaves dimension — the query the
// paper quotes ("find all points within the interval x1..x2").
func (t *Tree) QueryX(x1, x2 float64) []Point {
	var out []Point
	if t.Root == nil || x1 > x2 {
		return out
	}
	// Find the leftmost leaf with X >= x1 by descending toward the
	// first subtree whose range reaches x1.
	n := t.Root
	for !n.IsLeaf() {
		if n.Left.MaxX >= x1 {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	// It may still be below x1; the leaves list is x-sorted.
	for n != nil && n.Point.X < x1 {
		n = n.Next
	}
	for n != nil && n.Point.X <= x2 {
		out = append(out, *n.Point)
		n = n.Next
	}
	return out
}

// QueryRect returns the points within the rectangle [x1,x2]×[y1,y2]
// using the canonical range-tree decomposition: O(log n) primary
// subtrees, each answered by its secondary y-tree.
func (t *Tree) QueryRect(x1, y1, x2, y2 float64) []Point {
	var out []Point
	if t.Root == nil || x1 > x2 || y1 > y2 {
		return out
	}
	var collectY func(y *YNode)
	collectY = func(y *YNode) {
		if y == nil || y.MaxY < y1 || y.MinY > y2 {
			return // disjoint in y
		}
		if y.IsLeaf() {
			// x-filtering happened structurally: only canonical
			// subtrees fully inside [x1,x2] are queried.
			out = append(out, *y.Point)
			return
		}
		collectY(y.Left)
		collectY(y.Right)
	}
	var visit func(n *Node)
	visit = func(n *Node) {
		if n == nil || n.MaxX < x1 || n.MinX > x2 {
			return // disjoint in x
		}
		if x1 <= n.MinX && n.MaxX <= x2 {
			// Canonical subtree fully inside [x1,x2]: answer with the
			// secondary y-tree.
			collectY(n.Subtree)
			return
		}
		if n.IsLeaf() {
			return // leaf outside the range (covered cases returned above)
		}
		visit(n.Left)
		visit(n.Right)
	}
	visit(t.Root)
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// CountRect counts points in the rectangle without materializing them.
func (t *Tree) CountRect(x1, y1, x2, y2 float64) int {
	return len(t.QueryRect(x1, y1, x2, y2))
}

// Leaves returns the points in leaves-dimension order.
func (t *Tree) Leaves() []Point {
	var out []Point
	for n := t.LeftmostLeaf; n != nil; n = n.Next {
		out = append(out, *n.Point)
	}
	return out
}

// Verify checks the structural invariants behind the ADDS declaration:
// the down dimension is a proper binary tree (unique in-edges), leaves
// are exactly the tree's leaves in x order with consistent next/prev,
// and secondary subtrees are disjoint from the primary structure and
// from each other (the sub||down, sub||leaves independence).
func (t *Tree) Verify() error {
	if t.Root == nil {
		if t.n != 0 {
			return fmt.Errorf("rangetree: nil root with %d points", t.n)
		}
		return nil
	}
	seen := map[*Node]bool{}
	ySeen := map[*YNode]bool{}
	var leaves []*Node
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if seen[n] {
			return fmt.Errorf("rangetree: primary node shared (down not unique)")
		}
		seen[n] = true
		if n.Subtree == nil {
			return fmt.Errorf("rangetree: node lacks a secondary tree")
		}
		var walkY func(y *YNode) error
		walkY = func(y *YNode) error {
			if y == nil {
				return nil
			}
			if ySeen[y] {
				return fmt.Errorf("rangetree: secondary node shared (sub not independent)")
			}
			ySeen[y] = true
			if err := walkY(y.Left); err != nil {
				return err
			}
			return walkY(y.Right)
		}
		if err := walkY(n.Subtree); err != nil {
			return err
		}
		if n.IsLeaf() {
			leaves = append(leaves, n)
			return nil
		}
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("rangetree: internal node with missing child")
		}
		if err := walk(n.Left); err != nil {
			return err
		}
		return walk(n.Right)
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	// Leaves list order matches tree leaf order.
	i := 0
	for n := t.LeftmostLeaf; n != nil; n = n.Next {
		if i >= len(leaves) || leaves[i] != n {
			return fmt.Errorf("rangetree: leaves list diverges from tree order at %d", i)
		}
		if n.Next != nil && n.Next.Prev != n {
			return fmt.Errorf("rangetree: broken next/prev pairing")
		}
		if n.Next != nil && n.Next.Point.X < n.Point.X {
			return fmt.Errorf("rangetree: leaves not x-sorted")
		}
		i++
	}
	if i != len(leaves) || i != t.n {
		return fmt.Errorf("rangetree: %d leaves threaded, %d in tree, %d points", i, len(leaves), t.n)
	}
	return nil
}
