package list

import (
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	l := New(1, 2, 3)
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if !reflect.DeepEqual(l.Slice(), []int{1, 2, 3}) {
		t.Errorf("slice = %v", l.Slice())
	}
	l.Prepend(0)
	l.Append(4)
	if !reflect.DeepEqual(l.Slice(), []int{0, 1, 2, 3, 4}) {
		t.Errorf("slice = %v", l.Slice())
	}
	if l.Head().Data != 0 {
		t.Errorf("head = %v", l.Head().Data)
	}
}

func TestInsertAfterAndRemove(t *testing.T) {
	l := New("a", "c")
	l.InsertAfter(l.Head(), "b")
	if !reflect.DeepEqual(l.Slice(), []string{"a", "b", "c"}) {
		t.Errorf("slice = %v", l.Slice())
	}
	// Inserting after the tail must update the tail.
	var tail *Node[string]
	l.Each(func(n *Node[string]) { tail = n })
	l.InsertAfter(tail, "d")
	l.Append("e")
	if !reflect.DeepEqual(l.Slice(), []string{"a", "b", "c", "d", "e"}) {
		t.Errorf("slice = %v", l.Slice())
	}
	if !l.Remove(func(s string) bool { return s == "c" }) {
		t.Error("remove failed")
	}
	if l.Remove(func(s string) bool { return s == "zz" }) {
		t.Error("remove of absent must be false")
	}
	// Removing the tail updates the tail.
	l.Remove(func(s string) bool { return s == "e" })
	l.Append("f")
	if !reflect.DeepEqual(l.Slice(), []string{"a", "b", "d", "f"}) {
		t.Errorf("slice = %v", l.Slice())
	}
	// Removing the head.
	l.Remove(func(s string) bool { return s == "a" })
	if l.Head().Data != "b" {
		t.Errorf("head = %v", l.Head().Data)
	}
}

func TestReverse(t *testing.T) {
	l := New(1, 2, 3, 4)
	l.Reverse()
	if !reflect.DeepEqual(l.Slice(), []int{4, 3, 2, 1}) {
		t.Errorf("reversed = %v", l.Slice())
	}
	if err := l.VerifyAcyclic(); err != nil {
		t.Error(err)
	}
	if err := l.VerifyUnique(); err != nil {
		t.Error(err)
	}
	l.Append(0)
	if !reflect.DeepEqual(l.Slice(), []int{4, 3, 2, 1, 0}) {
		t.Errorf("append after reverse = %v (tail stale?)", l.Slice())
	}
	empty := New[int]()
	empty.Reverse()
	if empty.Len() != 0 {
		t.Error("empty reverse")
	}
}

func TestMapFilter(t *testing.T) {
	l := New(1, 2, 3, 4, 5)
	doubled := Map(l, func(x int) int { return 2 * x })
	if !reflect.DeepEqual(doubled.Slice(), []int{2, 4, 6, 8, 10}) {
		t.Errorf("map = %v", doubled.Slice())
	}
	even := Filter(l, func(x int) bool { return x%2 == 0 })
	if !reflect.DeepEqual(even.Slice(), []int{2, 4}) {
		t.Errorf("filter = %v", even.Slice())
	}
}

func TestParallelEach(t *testing.T) {
	for _, pes := range []int{1, 2, 4, 7} {
		l := New[int]()
		for i := 0; i < 100; i++ {
			l.Append(i)
		}
		var visited atomic.Int64
		l.ParallelEach(pes, func(n *Node[int]) {
			n.Data *= 3
			visited.Add(1)
		})
		if visited.Load() != 100 {
			t.Errorf("pes=%d: visited %d nodes", pes, visited.Load())
		}
		for i, v := range l.Slice() {
			if v != 3*i {
				t.Fatalf("pes=%d: node %d = %d", pes, i, v)
			}
		}
	}
	// pes < 1 falls back to sequential.
	l := New(1, 2)
	l.ParallelEach(0, func(n *Node[int]) { n.Data++ })
	if !reflect.DeepEqual(l.Slice(), []int{2, 3}) {
		t.Errorf("fallback = %v", l.Slice())
	}
}

func TestVerifyDetectsCycle(t *testing.T) {
	l := New(1, 2, 3)
	var last *Node[int]
	l.Each(func(n *Node[int]) { last = n })
	last.Next = l.Head() // close a cycle
	if err := l.VerifyAcyclic(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestVerifyDetectsSharing(t *testing.T) {
	// A Figure-1 "tournament"-like shape reachable in one walk:
	// x -> y -> z and z -> y gives y two in-edges.
	x := &Node[int]{Data: 1}
	y := &Node[int]{Data: 2}
	z := &Node[int]{Data: 3}
	x.Next = y
	y.Next = z
	z.Next = y
	shared := &List[int]{head: x, n: 3}
	if err := shared.VerifyUnique(); err == nil {
		t.Error("sharing not detected")
	}
}

func TestQuickAppendOrder(t *testing.T) {
	f := func(xs []int) bool {
		l := New(xs...)
		return reflect.DeepEqual(l.Slice(), append([]int{}, xs...)) &&
			l.Len() == len(xs) &&
			l.VerifyAcyclic() == nil && l.VerifyUnique() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickReverseInvolution(t *testing.T) {
	f := func(xs []int) bool {
		l := New(xs...)
		l.Reverse()
		l.Reverse()
		return reflect.DeepEqual(l.Slice(), append([]int{}, xs...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDList(t *testing.T) {
	l := NewD(1, 2, 3)
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if err := l.VerifyLinks(); err != nil {
		t.Fatal(err)
	}
	var fwd, bwd []int
	l.Forward(func(n *DNode[int]) { fwd = append(fwd, n.Data) })
	l.Backward(func(n *DNode[int]) { bwd = append(bwd, n.Data) })
	if !reflect.DeepEqual(fwd, []int{1, 2, 3}) || !reflect.DeepEqual(bwd, []int{3, 2, 1}) {
		t.Errorf("fwd=%v bwd=%v", fwd, bwd)
	}
	// Remove middle, head, tail.
	l.Remove(l.Head().Next)
	if err := l.VerifyLinks(); err != nil {
		t.Fatal(err)
	}
	l.Remove(l.Head())
	l.Remove(l.Tail())
	if l.Len() != 0 || l.Head() != nil || l.Tail() != nil {
		t.Errorf("not empty: len=%d", l.Len())
	}
	if err := l.VerifyLinks(); err != nil {
		t.Error(err)
	}
}

func TestDListVerifyCatchesBreaks(t *testing.T) {
	l := NewD(1, 2, 3)
	l.Head().Next.Prev = nil // break pairing
	if err := l.VerifyLinks(); err == nil {
		t.Error("broken pairing not detected")
	}
}
