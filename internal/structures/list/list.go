// Package list implements the paper's §3.1.1 one-way and §2.2 two-way
// linked lists as generic Go containers, with runtime verifiers for the
// ADDS properties their declarations promise (acyclicity and uniqueness
// along the X dimension) and a strip-mined parallel traversal that
// mirrors the paper's §4.3.3 transformation.
package list

import (
	"fmt"
	"sync"
)

// Node is a one-way list node ("OneWayList *next is uniquely forward
// along X").
type Node[T any] struct {
	Data T
	Next *Node[T]
}

// List is a one-way linked list with O(1) append.
type List[T any] struct {
	head, tail *Node[T]
	n          int
}

// New builds a list from the given elements.
func New[T any](xs ...T) *List[T] {
	l := &List[T]{}
	for _, x := range xs {
		l.Append(x)
	}
	return l
}

// Len returns the number of nodes.
func (l *List[T]) Len() int { return l.n }

// Head returns the first node (nil when empty).
func (l *List[T]) Head() *Node[T] { return l.head }

// Append adds x at the tail.
func (l *List[T]) Append(x T) *Node[T] {
	node := &Node[T]{Data: x}
	if l.tail == nil {
		l.head, l.tail = node, node
	} else {
		l.tail.Next = node
		l.tail = node
	}
	l.n++
	return node
}

// Prepend adds x at the head.
func (l *List[T]) Prepend(x T) *Node[T] {
	node := &Node[T]{Data: x, Next: l.head}
	l.head = node
	if l.tail == nil {
		l.tail = node
	}
	l.n++
	return node
}

// InsertAfter inserts x after node n (which must belong to the list).
func (l *List[T]) InsertAfter(n *Node[T], x T) *Node[T] {
	node := &Node[T]{Data: x, Next: n.Next}
	n.Next = node
	if l.tail == n {
		l.tail = node
	}
	l.n++
	return node
}

// Remove unlinks the first node for which pred holds and reports
// whether one was removed.
func (l *List[T]) Remove(pred func(T) bool) bool {
	var prev *Node[T]
	for p := l.head; p != nil; p = p.Next {
		if pred(p.Data) {
			if prev == nil {
				l.head = p.Next
			} else {
				prev.Next = p.Next
			}
			if l.tail == p {
				l.tail = prev
			}
			l.n--
			return true
		}
		prev = p
	}
	return false
}

// Each applies fn to every element in order.
func (l *List[T]) Each(fn func(*Node[T])) {
	for p := l.head; p != nil; p = p.Next {
		fn(p)
	}
}

// Slice copies the elements into a slice.
func (l *List[T]) Slice() []T {
	out := make([]T, 0, l.n)
	for p := l.head; p != nil; p = p.Next {
		out = append(out, p.Data)
	}
	return out
}

// Reverse reverses the list in place. (A shape-preserving rearrangement:
// the ADDS abstraction is temporarily broken mid-loop and restored at
// exit, exactly the §3.3.1 pattern.)
func (l *List[T]) Reverse() {
	var prev *Node[T]
	p := l.head
	l.tail = p
	for p != nil {
		next := p.Next
		p.Next = prev
		prev = p
		p = next
	}
	l.head = prev
}

// Map builds a new list by applying fn to each element.
func Map[T, U any](l *List[T], fn func(T) U) *List[U] {
	out := New[U]()
	for p := l.head; p != nil; p = p.Next {
		out.Append(fn(p.Data))
	}
	return out
}

// Filter builds a new list with the elements for which pred holds.
func Filter[T any](l *List[T], pred func(T) bool) *List[T] {
	out := New[T]()
	for p := l.head; p != nil; p = p.Next {
		if pred(p.Data) {
			out.Append(p.Data)
		}
	}
	return out
}

// ParallelEach processes every node with pes workers using the paper's
// strip-mined schedule (§4.3.3): worker i handles nodes i, i+pes, …,
// each skipping ahead speculatively from the shared cursor. fn must not
// touch other nodes (the dependence condition the analysis proves for
// such loops).
func (l *List[T]) ParallelEach(pes int, fn func(*Node[T])) {
	if pes < 1 {
		pes = 1
	}
	p := l.head
	for p != nil {
		var wg sync.WaitGroup
		for i := 0; i < pes; i++ {
			wg.Add(1)
			go func(i int, p *Node[T]) {
				defer wg.Done()
				for k := 1; k <= i && p != nil; k++ { // FOR2
					p = p.Next
				}
				if p != nil {
					fn(p)
				}
			}(i, p)
		}
		wg.Wait()
		for i := 0; i < pes && p != nil; i++ { // FOR1
			p = p.Next
		}
	}
}

// VerifyAcyclic checks the "forward along X" promise at runtime with
// Floyd's algorithm.
func (l *List[T]) VerifyAcyclic() error {
	slow, fast := l.head, l.head
	for fast != nil && fast.Next != nil {
		slow = slow.Next
		fast = fast.Next.Next
		if slow == fast {
			return fmt.Errorf("list: cycle detected (forward-along-X violated)")
		}
	}
	return nil
}

// VerifyUnique checks the "uniquely forward" promise: no node is the
// next of two different nodes reachable from head.
func (l *List[T]) VerifyUnique() error {
	seen := make(map[*Node[T]]bool, l.n)
	for p := l.head; p != nil; p = p.Next {
		if p.Next != nil {
			if seen[p.Next] {
				return fmt.Errorf("list: node has two in-edges (uniquely-forward violated)")
			}
			seen[p.Next] = true
		}
		if seen[p] && p == l.head {
			return fmt.Errorf("list: head has an in-edge")
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Two-way lists (§2.2's TwoWayList)

// DNode is a doubly linked node ("next uniquely forward, prev backward
// along X").
type DNode[T any] struct {
	Data T
	Next *DNode[T]
	Prev *DNode[T]
}

// DList is a two-way linked list.
type DList[T any] struct {
	head, tail *DNode[T]
	n          int
}

// NewD builds a two-way list from elements.
func NewD[T any](xs ...T) *DList[T] {
	l := &DList[T]{}
	for _, x := range xs {
		l.Append(x)
	}
	return l
}

// Len returns the number of nodes.
func (l *DList[T]) Len() int { return l.n }

// Head returns the first node.
func (l *DList[T]) Head() *DNode[T] { return l.head }

// Tail returns the last node.
func (l *DList[T]) Tail() *DNode[T] { return l.tail }

// Append adds x at the tail.
func (l *DList[T]) Append(x T) *DNode[T] {
	node := &DNode[T]{Data: x, Prev: l.tail}
	if l.tail == nil {
		l.head = node
	} else {
		l.tail.Next = node
	}
	l.tail = node
	l.n++
	return node
}

// Remove unlinks a node.
func (l *DList[T]) Remove(node *DNode[T]) {
	if node.Prev != nil {
		node.Prev.Next = node.Next
	} else {
		l.head = node.Next
	}
	if node.Next != nil {
		node.Next.Prev = node.Prev
	} else {
		l.tail = node.Prev
	}
	node.Next, node.Prev = nil, nil
	l.n--
}

// Forward traverses head→tail (never visits a node twice: the §2.2
// property that enables parallel processing).
func (l *DList[T]) Forward(fn func(*DNode[T])) {
	for p := l.head; p != nil; p = p.Next {
		fn(p)
	}
}

// Backward traverses tail→head.
func (l *DList[T]) Backward(fn func(*DNode[T])) {
	for p := l.tail; p != nil; p = p.Prev {
		fn(p)
	}
}

// VerifyLinks checks next/prev consistency — the invariant the ADDS
// forward/backward pair promises.
func (l *DList[T]) VerifyLinks() error {
	if l.head != nil && l.head.Prev != nil {
		return fmt.Errorf("dlist: head has a prev")
	}
	count := 0
	for p := l.head; p != nil; p = p.Next {
		count++
		if count > l.n {
			return fmt.Errorf("dlist: cycle detected")
		}
		if p.Next != nil && p.Next.Prev != p {
			return fmt.Errorf("dlist: broken next/prev pairing")
		}
	}
	if count != l.n {
		return fmt.Errorf("dlist: length %d, walked %d", l.n, count)
	}
	return nil
}
