package bignum

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestPaperExample(t *testing.T) {
	// The paper stores 3,298,991 as 991 → 298 → 3 (three digits per
	// node, least significant first).
	b := New(3298991)
	if b.Limbs() != 3 {
		t.Errorf("limbs = %d, want 3", b.Limbs())
	}
	if b.String() != "3298991" {
		t.Errorf("string = %q", b.String())
	}
}

func TestParseAndString(t *testing.T) {
	cases := []string{"0", "7", "999", "1000", "123456789012345678901234567890"}
	for _, s := range cases {
		b, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if b.String() != s {
			t.Errorf("round trip %q -> %q", s, b.String())
		}
	}
	if _, err := Parse("12a4"); err == nil {
		t.Error("bad digit accepted")
	}
	if MustParse("0000123").String() != "123" {
		t.Error("leading zeros not trimmed")
	}
	if MustParse("").String() != "0" {
		t.Error("empty is zero")
	}
}

func TestArithmeticBasics(t *testing.T) {
	a, b := New(999999), New(1)
	if got := a.Add(b).String(); got != "1000000" {
		t.Errorf("add = %s", got)
	}
	if got := a.Sub(New(999000)).String(); got != "999" {
		t.Errorf("sub = %s", got)
	}
	if got := New(123456).Mul(New(789012)).String(); got != "97408265472" {
		t.Errorf("mul = %s", got)
	}
	if got := New(999).MulSmall(999).String(); got != "998001" {
		t.Errorf("mulsmall = %s", got)
	}
	if New(5).Cmp(New(7)) != -1 || New(7).Cmp(New(5)) != 1 || New(5).Cmp(New(5)) != 0 {
		t.Error("cmp broken")
	}
	if New(1000).Cmp(New(999)) != 1 {
		t.Error("cmp across limb counts broken")
	}
}

func TestSubPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Sub(New(2))
}

func TestZeroHandling(t *testing.T) {
	z := New(0)
	if !z.IsZero() || z.String() != "0" || z.Limbs() != 0 {
		t.Errorf("zero: %v %q %d", z.IsZero(), z.String(), z.Limbs())
	}
	if !z.Mul(New(123)).IsZero() {
		t.Error("0 * x")
	}
	if !New(123).MulSmall(0).IsZero() {
		t.Error("x * 0")
	}
	if got := z.Add(New(5)).String(); got != "5" {
		t.Errorf("0 + 5 = %s", got)
	}
	if got := New(5).Sub(New(5)); !got.IsZero() {
		t.Errorf("5 - 5 = %s", got)
	}
}

func TestInt64(t *testing.T) {
	v, ok := New(9876543210).Int64()
	if !ok || v != 9876543210 {
		t.Errorf("Int64 = %d, %v", v, ok)
	}
	if _, ok := Factorial(50).Int64(); ok {
		t.Error("50! must overflow int64")
	}
}

func TestFibAndFactorial(t *testing.T) {
	if got := Fib(10).String(); got != "55" {
		t.Errorf("fib(10) = %s", got)
	}
	// fib(100) from a reliable table.
	if got := Fib(100).String(); got != "354224848179261915075" {
		t.Errorf("fib(100) = %s", got)
	}
	if got := Factorial(10).String(); got != "3628800" {
		t.Errorf("10! = %s", got)
	}
	if got := Factorial(25).String(); got != "15511210043330985984000000" {
		t.Errorf("25! = %s", got)
	}
}

// Property tests against math/big.

func TestQuickAddMatchesBig(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := New(int64(a)), New(int64(b))
		want := new(big.Int).Add(big.NewInt(int64(a)), big.NewInt(int64(b)))
		return x.Add(y).String() == want.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulMatchesBig(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := New(int64(a)), New(int64(b))
		want := new(big.Int).Mul(big.NewInt(int64(a)), big.NewInt(int64(b)))
		return x.Mul(y).String() == want.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubMatchesBig(t *testing.T) {
	f := func(a, b uint32) bool {
		hi, lo := a, b
		if hi < lo {
			hi, lo = lo, hi
		}
		x, y := New(int64(hi)), New(int64(lo))
		want := new(big.Int).Sub(big.NewInt(int64(hi)), big.NewInt(int64(lo)))
		return x.Sub(y).String() == want.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCmpAntisymmetric(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := New(int64(a)), New(int64(b))
		return x.Cmp(y) == -y.Cmp(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLargeChainAgainstBig(t *testing.T) {
	// A longer deterministic mixed workload cross-checked limb by limb.
	x := New(1)
	bx := big.NewInt(1)
	for k := 1; k <= 60; k++ {
		x = x.MulSmall(k).Add(New(int64(k * k)))
		bx.Mul(bx, big.NewInt(int64(k)))
		bx.Add(bx, big.NewInt(int64(k*k)))
		if x.String() != bx.String() {
			t.Fatalf("diverged at k=%d: %s vs %s", k, x, bx)
		}
	}
}
