// Package bignum implements the paper's §3.1.1 bignum application: an
// arbitrary-precision unsigned integer stored as a one-way linked list
// of fixed-width digit groups, least significant group first ("the
// integer is stored in reverse order for ease of manipulation" — the
// paper's 3,298,991 example stores 991 → 298 → 3).
package bignum

import (
	"fmt"
	"strings"

	"repro/internal/structures/list"
)

// Base is the per-node digit group: three decimal digits, as in the
// paper's figure.
const Base = 1000

// Int is an arbitrary-precision unsigned integer. The zero value is 0.
type Int struct {
	// limbs holds groups of three decimal digits, least significant
	// first. An empty list represents zero. No trailing zero limbs.
	limbs *list.List[int]
}

// New returns the bignum for a non-negative int64.
func New(v int64) *Int {
	if v < 0 {
		panic("bignum: negative value")
	}
	b := &Int{limbs: list.New[int]()}
	for v > 0 {
		b.limbs.Append(int(v % Base))
		v /= Base
	}
	return b
}

// Parse reads a decimal string of arbitrary length.
func Parse(s string) (*Int, error) {
	s = strings.TrimLeft(s, "0")
	b := &Int{limbs: list.New[int]()}
	if s == "" {
		return b, nil
	}
	for i := len(s); i > 0; i -= 3 {
		lo := i - 3
		if lo < 0 {
			lo = 0
		}
		var limb int
		for _, c := range s[lo:i] {
			if c < '0' || c > '9' {
				return nil, fmt.Errorf("bignum: bad digit %q", c)
			}
			limb = limb*10 + int(c-'0')
		}
		b.limbs.Append(limb)
	}
	return b, nil
}

// MustParse is Parse that panics on error.
func MustParse(s string) *Int {
	b, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return b
}

// IsZero reports whether b == 0.
func (b *Int) IsZero() bool { return b.limbs == nil || b.limbs.Len() == 0 }

// Limbs returns the number of digit-group nodes.
func (b *Int) Limbs() int {
	if b.limbs == nil {
		return 0
	}
	return b.limbs.Len()
}

// String renders the decimal representation.
func (b *Int) String() string {
	if b.IsZero() {
		return "0"
	}
	limbs := b.limbs.Slice()
	var sb strings.Builder
	for i := len(limbs) - 1; i >= 0; i-- {
		if i == len(limbs)-1 {
			fmt.Fprintf(&sb, "%d", limbs[i])
		} else {
			fmt.Fprintf(&sb, "%03d", limbs[i])
		}
	}
	return sb.String()
}

// trim drops trailing zero limbs (most significant zeros).
func trim(limbs []int) []int {
	for len(limbs) > 0 && limbs[len(limbs)-1] == 0 {
		limbs = limbs[:len(limbs)-1]
	}
	return limbs
}

func fromLimbs(limbs []int) *Int {
	return &Int{limbs: list.New(trim(limbs)...)}
}

// Add returns b + c.
func (b *Int) Add(c *Int) *Int {
	p, q := head(b), head(c)
	var out []int
	carry := 0
	for p != nil || q != nil || carry > 0 {
		sum := carry
		if p != nil {
			sum += p.Data
			p = p.Next
		}
		if q != nil {
			sum += q.Data
			q = q.Next
		}
		out = append(out, sum%Base)
		carry = sum / Base
	}
	return fromLimbs(out)
}

// Sub returns b - c; it panics if c > b (unsigned arithmetic).
func (b *Int) Sub(c *Int) *Int {
	if b.Cmp(c) < 0 {
		panic("bignum: negative result")
	}
	p, q := head(b), head(c)
	var out []int
	borrow := 0
	for p != nil {
		d := p.Data - borrow
		if q != nil {
			d -= q.Data
			q = q.Next
		}
		borrow = 0
		if d < 0 {
			d += Base
			borrow = 1
		}
		out = append(out, d)
		p = p.Next
	}
	return fromLimbs(out)
}

// Mul returns b * c (schoolbook over the limb lists).
func (b *Int) Mul(c *Int) *Int {
	if b.IsZero() || c.IsZero() {
		return New(0)
	}
	bl, cl := b.limbs.Slice(), c.limbs.Slice()
	out := make([]int, len(bl)+len(cl))
	for i, x := range bl {
		carry := 0
		for j, y := range cl {
			t := out[i+j] + x*y + carry
			out[i+j] = t % Base
			carry = t / Base
		}
		out[i+len(cl)] += carry
	}
	return fromLimbs(out)
}

// MulSmall returns b * k for a small non-negative factor — the paper's
// "multiply each coefficient by a constant" shape, a single traversal.
func (b *Int) MulSmall(k int) *Int {
	if k < 0 {
		panic("bignum: negative factor")
	}
	if k == 0 || b.IsZero() {
		return New(0)
	}
	var out []int
	carry := 0
	for p := head(b); p != nil; p = p.Next {
		t := p.Data*k + carry
		out = append(out, t%Base)
		carry = t / Base
	}
	for carry > 0 {
		out = append(out, carry%Base)
		carry /= Base
	}
	return fromLimbs(out)
}

// Cmp returns -1, 0, or 1 as b < c, b == c, b > c.
func (b *Int) Cmp(c *Int) int {
	bl, cl := b.Limbs(), c.Limbs()
	if bl != cl {
		if bl < cl {
			return -1
		}
		return 1
	}
	bs, cs := sliceOf(b), sliceOf(c)
	for i := bl - 1; i >= 0; i-- {
		if bs[i] != cs[i] {
			if bs[i] < cs[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Int64 converts to int64, or reports overflow.
func (b *Int) Int64() (int64, bool) {
	var v int64
	limbs := sliceOf(b)
	for i := len(limbs) - 1; i >= 0; i-- {
		if v > (1<<62)/Base {
			return 0, false
		}
		v = v*Base + int64(limbs[i])
	}
	return v, true
}

// Fib returns the n-th Fibonacci number — a workload that grows lists
// node by node, exercising the structure the way the paper motivates.
func Fib(n int) *Int {
	a, b := New(0), New(1)
	for i := 0; i < n; i++ {
		a, b = b, a.Add(b)
	}
	return a
}

// Factorial returns n!.
func Factorial(n int) *Int {
	out := New(1)
	for k := 2; k <= n; k++ {
		out = out.MulSmall(k)
	}
	return out
}

func head(b *Int) *list.Node[int] {
	if b.limbs == nil {
		return nil
	}
	return b.limbs.Head()
}

func sliceOf(b *Int) []int {
	if b.limbs == nil {
		return nil
	}
	return b.limbs.Slice()
}
