// Package interp executes checked, normalized PSL programs. It is the
// semantic reference for the whole reproduction: package parexec runs
// forall regions on real goroutines through the Forall hook, and
// package sequent replays runs on the 1992 machine model through
// Simulated mode.
//
// Execution has two engines behind Config.Engine: the default
// compiled engine (closures over internal/compile's slot-resolved IR;
// see compiled.go) and the tree-walking oracle in this file. They are
// bit-identical in results, output, and simulated cycle accounting —
// the equivalence suite and FuzzCompileVsWalk enforce it — and differ
// only in speed.
//
// Paper provenance: speculative traversability — loading a pointer
// field through NULL yields NULL — is §3.2 (the transformed code's
// unguarded FOR1/FOR2 advances rely on it; StrictNull disables it for
// tests); runtime shape checks against ADDS declarations are §2.2;
// Simulated mode's cost accounting (max-over-PEs per forall plus a
// barrier, CostModel cycles) implements the §4.4 measurement setup,
// with Scheduling choosing the §4.3.3 static iteration→PE mapping.
package interp

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/adds"
	"repro/internal/bytecode"
	"repro/internal/lang"
)

// Engine selects the execution engine behind Run and Interp.Call.
type Engine int

// Execution engines. EngineCompiled is the zero value, so it is the
// default everywhere an empty Config is used.
const (
	// EngineCompiled executes the slot-resolved closure code built from
	// internal/compile's IR: flat slot frames instead of scope maps,
	// field offsets instead of field-name hashing, pre-resolved calls.
	// Results, printed output, and simulated cycle counts are
	// bit-identical to the tree-walker's (asserted by the engine
	// equivalence suite); it is just faster.
	EngineCompiled Engine = iota
	// EngineWalk executes the AST directly — the original tree-walking
	// interpreter, kept as the differential-testing oracle.
	EngineWalk
	// EngineBytecode executes flat bytecode (internal/bytecode) over
	// typed per-function register banks — no closure dispatch, no boxed
	// intermediates. Same results, output, accounting, and error text
	// as the other two engines (the three-way equivalence grid and
	// FuzzBytecodeVsCompiled enforce it); it is just faster still.
	EngineBytecode
	// EngineKernel is the bytecode VM plus the SPMD vector path: strips
	// the classifier proved vectorizable (ForallSite.Kernel != nil)
	// execute as batched struct-of-arrays kernels — fields gathered
	// into flat slabs, the body run as fused whole-slab operations with
	// execution masks, results scattered back at the barrier.
	// Everything else (and every fallback: faults, step-budget
	// pressure, StrictNull runs) executes on the bytecode VM, so
	// results, output, accounting, and error text stay bit-identical to
	// the other engines.
	EngineKernel
)

// String names the engine ("compiled", "bytecode", "kernel", "walk").
func (e Engine) String() string {
	switch e {
	case EngineWalk:
		return "walk"
	case EngineBytecode:
		return "bytecode"
	case EngineKernel:
		return "kernel"
	}
	return "compiled"
}

// EngineNames lists the accepted ParseEngine names in display order.
func EngineNames() []string { return []string{"compiled", "bytecode", "kernel", "walk"} }

// ParseEngine resolves an engine name from the command line.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "compiled", "":
		return EngineCompiled, nil
	case "bytecode":
		return EngineBytecode, nil
	case "kernel":
		return EngineKernel, nil
	case "walk":
		return EngineWalk, nil
	}
	return 0, fmt.Errorf("interp: unknown engine %q (want compiled, bytecode, kernel, walk)", name)
}

// Mode selects how forall loops execute.
type Mode int

// Execution modes.
const (
	// Real runs forall iterations in goroutines.
	Real Mode = iota
	// Simulated runs everything sequentially, charging cycles from the
	// cost model; forall charges max-over-PEs plus a barrier.
	Simulated
)

// Scheduling selects how a simulated forall assigns iterations to PEs.
type Scheduling int

// Scheduling policies for Simulated mode.
const (
	// Cyclic assigns iteration k to PE k mod PEs (the paper's "simple
	// static scheduling").
	Cyclic Scheduling = iota
	// Block assigns contiguous chunks of iterations to PEs.
	Block
)

// CostModel assigns cycle costs to operations (Simulated mode).
type CostModel struct {
	VarAccess  int64 // read/write a local
	FieldLoad  int64 // p->f read
	FieldStore int64 // p->f write
	IntOp      int64 // integer ALU op
	RealOp     int64 // floating op
	Sqrt       int64
	Branch     int64
	CallOver   int64 // call/return overhead
	Alloc      int64
	Barrier    int64 // forall join cost (Sequent sync is slow)
}

// DefaultCosts approximates a bus-based 1980s multiprocessor: memory
// operations dominate, synchronization is expensive.
func DefaultCosts() CostModel {
	return CostModel{
		VarAccess:  1,
		FieldLoad:  6,
		FieldStore: 6,
		IntOp:      1,
		RealOp:     4,
		Sqrt:       40,
		Branch:     2,
		CallOver:   20,
		Alloc:      40,
		Barrier:    6000,
	}
}

// Config configures an interpreter.
type Config struct {
	// Engine selects the execution engine (default EngineCompiled; the
	// tree-walker remains available as the differential oracle).
	Engine     Engine
	Mode       Mode
	Sched      Scheduling
	PEs        int // simulated PE count (0: one PE per iteration)
	Costs      CostModel
	Output     io.Writer
	Seed       uint64
	MaxSteps   int64 // 0 = default guard
	MaxDepth   int   // 0 = default (4096)
	StrictNull bool  // disable speculative traversability (for tests)
	// Ctx, if non-nil, cancels the run: a deadline or explicit cancel
	// makes Call return an error. Both engines poll it on the step
	// path, at stepFlushChunk granularity, so a runaway loop is cut
	// within a few hundred statements. The sandbox budgets below plus
	// Ctx are what the serving layer (internal/serve) relies on to run
	// untrusted programs.
	Ctx context.Context
	// MaxAllocs bounds `new` node allocations across the run and all
	// its forks (0 = unlimited). Shared, like the allocation counter,
	// so parallel iterations draw from one budget.
	MaxAllocs int64
	// MaxOutputBytes bounds the total bytes print() may emit across
	// the run and all its forks (0 = unlimited). Enforced before the
	// write, so the cap also bounds buffered parallel output.
	MaxOutputBytes int64
	// ShapeChecks enables runtime validation of ADDS shape promises on
	// every pointer store (the paper's §2.2 debugging checks).
	ShapeChecks bool
	// ShapeChecksFatal turns a detected violation into an execution
	// error instead of a log entry.
	ShapeChecksFatal bool
	// ShapeWalkLimit bounds the cycle-check walk (0 = 100000 nodes).
	ShapeWalkLimit int
	// Forall, if non-nil and Mode == Real, schedules every parallel
	// forall instead of the default goroutine-per-iteration strategy.
	// It receives the inclusive iteration bounds and a run function
	// that executes one iteration on the given worker interpreter
	// (obtain workers with Fork). Forks clear this hook, so nested
	// foralls inside a scheduled iteration fall back to the default
	// strategy rather than re-entering the scheduler.
	Forall ForallScheduler
	// Strip, if non-nil and Engine == EngineKernel, schedules the
	// gather/compute/scatter phases of each vectorized strip instead of
	// the inline serial execution — parexec installs it to split the
	// compute phase across PEs at slab granularity. Forks clear this
	// hook along with Forall.
	Strip StripScheduler
}

// ForallScheduler executes the iterations [from, to] of a parallel
// loop, calling run(w, k) exactly once per k on a worker interpreter w.
// run is safe to call from multiple goroutines concurrently as long as
// each call gets its own worker. The scheduler must not return before
// every iteration has completed (it is the loop's barrier). pos is the
// source position of the forall — for loops generated by strip-mining
// it is the original loop's position — so profilers can key
// measurements to the planner's loop table.
type ForallScheduler func(pos lang.Pos, from, to int64, run func(w *Interp, k int64) error) error

// StripScheduler executes one vectorized strip. Gather must run first
// (serially — it walks the pointer chain and fills the slabs), then
// Compute over disjoint lane sub-ranges (safe to call concurrently on
// different ranges), then Scatter (serially — it commits the strip's
// step accounting and writes the stored fields back). lanes is the
// strip width; pos is the forall's source position (the planner's
// key). Any error aborts the strip: the interpreter falls back to the
// scalar path, which re-executes the strip from unmodified heap state
// (Scatter is the only phase that writes it).
type StripScheduler func(pos lang.Pos, lanes int, s KernelStrip) error

// KernelStrip is one vectorized strip's phase closures, handed to a
// StripScheduler.
type KernelStrip struct {
	Gather  func() error
	Compute func(lo, hi int) error // lane range [lo, hi)
	Scatter func() error
}

// Stats reports execution counters.
type Stats struct {
	Cycles      int64 // elapsed simulated cycles (Simulated mode)
	WorkCycles  int64 // total work including all PEs
	Steps       int64
	Allocations int64
	Barriers    int64
}

// Interp executes one program.
type Interp struct {
	prog  *lang.Program
	cfg   Config
	out   io.Writer
	outMu *sync.Mutex

	// sh is shared between an interpreter and all its forks so that
	// step accounting, allocation ids, the deterministic RNG, and the
	// shape-check log stay global across parallel workers.
	sh *state

	// cycles is the current accounting bucket (Simulated mode only;
	// single-threaded there).
	cycles   int64
	work     int64
	barriers int64

	maxSteps  int64
	maxDepth  int
	maxAllocs int64
	maxOutput int64
	// ctx is the optional cancellation signal (Config.Ctx), polled at
	// stepFlushChunk granularity on both engines' step paths.
	ctx context.Context

	// code is the closure program when cfg.Engine == EngineCompiled;
	// compileErr records why compilation failed (surfaced at Call).
	code       *compiledProg
	compileErr error
	// bc is the flat program when cfg.Engine == EngineBytecode; bcErr
	// records why lowering failed (surfaced at Call).
	bc    *bytecode.Program
	bcErr error
	// bcPool recycles bytecode register files, like framePool for the
	// closure engine's slot frames.
	bcPool []*bcFrame
	// kern is the kernel engine's reusable slab storage (kernel.go),
	// lazily built on the first vectorized strip.
	kern *kernState
	// stepsLocal batches the compiled engine's statement count between
	// flushes to the shared atomic (each Interp executes on one
	// goroutine at a time, so the field needs no synchronization).
	stepsLocal int64
	// cdepth is the compiled engine's live call depth.
	cdepth int
	// framePool recycles call frames (slot slices). Frames never
	// escape their call — parallel iterations copy, never retain — so
	// a per-Interp free list is safe and keeps the recursive hot path
	// (compute_force) off the allocator.
	framePool [][]Value
}

// getFrame returns a frame of n slots, reusing the top pooled frame
// when it is large enough (a too-small top frame is left in place for
// smaller calls rather than discarded). Reused slots may hold stale
// values; every slot is written before it is read (the checker
// enforces declare-before-use and VarSet re-initializes on every
// scope entry).
func (ip *Interp) getFrame(n int) []Value {
	if l := len(ip.framePool); l > 0 && cap(ip.framePool[l-1]) >= n {
		fr := ip.framePool[l-1]
		ip.framePool = ip.framePool[:l-1]
		return fr[:n]
	}
	return make([]Value, n)
}

func (ip *Interp) putFrame(fr []Value) {
	if len(ip.framePool) < 64 {
		ip.framePool = append(ip.framePool, fr)
	}
}

// state holds the counters an interpreter shares with its forks.
type state struct {
	rngState uint64

	steps    atomic.Int64
	allocs   atomic.Int64
	nextID   atomic.Int64
	outBytes atomic.Int64

	shapeMu  sync.Mutex
	shapeLog []ShapeViolation
}

// New creates an interpreter for a checked, normalized program.
func New(prog *lang.Program, cfg Config) *Interp {
	ip := newInterp(prog, cfg)
	switch ip.cfg.Engine {
	case EngineCompiled:
		e := compiledFor(prog)
		ip.code, ip.compileErr = e.code, e.err
	case EngineBytecode, EngineKernel:
		e := compiledFor(prog)
		ip.bc, ip.bcErr = e.bc, e.bcErr
	}
	return ip
}

// newInterp builds an interpreter without resolving closure code; New
// attaches it from the code cache, NewCompiled from a pinned handle.
func newInterp(prog *lang.Program, cfg Config) *Interp {
	if cfg.Output == nil {
		cfg.Output = io.Discard
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 4_000_000_000
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 4096
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCosts()
	}
	ip := &Interp{
		prog:      prog,
		cfg:       cfg,
		out:       cfg.Output,
		outMu:     &sync.Mutex{},
		sh:        &state{rngState: cfg.Seed*2862933555777941757 + 3037000493},
		maxSteps:  cfg.MaxSteps,
		maxDepth:  cfg.MaxDepth,
		maxAllocs: cfg.MaxAllocs,
		maxOutput: cfg.MaxOutputBytes,
		ctx:       cfg.Ctx,
	}
	return ip
}

// Fork returns a worker interpreter over the same program, sharing the
// parent's counters, RNG, and shape-check log. If out is non-nil the
// fork prints there through its own mutex (the parallel executor hands
// each iteration a private buffer and merges them deterministically);
// with nil it shares the parent's writer and lock. The fork drops the
// parent's Forall scheduler so a nested parallel loop cannot re-enter
// the worker pool that is running it. A fork must execute at most one
// call at a time.
func (ip *Interp) Fork(out io.Writer) *Interp {
	nf := &Interp{
		prog:       ip.prog,
		cfg:        ip.cfg,
		out:        ip.out,
		outMu:      ip.outMu,
		sh:         ip.sh,
		maxSteps:   ip.maxSteps,
		maxDepth:   ip.maxDepth,
		maxAllocs:  ip.maxAllocs,
		maxOutput:  ip.maxOutput,
		ctx:        ip.ctx,
		code:       ip.code,
		compileErr: ip.compileErr,
		bc:         ip.bc,
		bcErr:      ip.bcErr,
	}
	nf.cfg.Forall = nil
	nf.cfg.Strip = nil
	if out != nil {
		nf.out = out
		nf.outMu = &sync.Mutex{}
	}
	return nf
}

// SetOutput redirects this interpreter's print() stream (nil discards).
// Not safe to call while the interpreter is executing; it exists for
// worker loops that swap in a fresh buffer between tasks.
func (ip *Interp) SetOutput(out io.Writer) {
	if out == nil {
		out = io.Discard
	}
	ip.out = out
}

// Stats returns execution counters so far.
func (ip *Interp) Stats() Stats {
	return Stats{
		Cycles:      ip.cycles,
		WorkCycles:  ip.work,
		Steps:       ip.sh.steps.Load(),
		Allocations: ip.sh.allocs.Load(),
		Barriers:    ip.barriers,
	}
}

// Call invokes the named function with the given arguments and returns
// its result (zero Value for procedures).
func (ip *Interp) Call(fn string, args ...Value) (Value, error) {
	f := ip.prog.Func(fn)
	if f == nil {
		return Value{}, fmt.Errorf("interp: no function %q", fn)
	}
	if len(args) != len(f.Params) {
		return Value{}, fmt.Errorf("interp: %s expects %d args, got %d", fn, len(f.Params), len(args))
	}
	// A context that is already dead fails here, before any execution,
	// so both engines report an identical error at an identical point.
	if ip.ctx != nil {
		if err := ip.ctx.Err(); err != nil {
			return Value{}, fmt.Errorf("interp: run cancelled: %v", err)
		}
	}
	switch ip.cfg.Engine {
	case EngineCompiled:
		if ip.compileErr != nil {
			return Value{}, fmt.Errorf("interp: compiled engine: %w", ip.compileErr)
		}
		v, err := ip.callCompiled(ip.code.byName[fn], args)
		if ferr := ip.flushSteps(f.Pos()); err == nil && ferr != nil {
			err = ferr
		}
		return v, err
	case EngineBytecode, EngineKernel:
		if ip.bcErr != nil {
			return Value{}, fmt.Errorf("interp: bytecode engine: %w", ip.bcErr)
		}
		v, err := ip.callBytecode(ip.bc.Func(fn), args)
		if ferr := ip.flushSteps(f.Pos()); err == nil && ferr != nil {
			err = ferr
		}
		return v, err
	}
	return ip.callFunc(f, args, 0)
}

// Run is a convenience: interpret fn and return stats.
func Run(prog *lang.Program, cfg Config, fn string, args ...Value) (Value, Stats, error) {
	ip := New(prog, cfg)
	v, err := ip.Call(fn, args...)
	return v, ip.Stats(), err
}

// charge adds cycles in Simulated mode.
func (ip *Interp) charge(c int64) {
	if ip.cfg.Mode == Simulated {
		ip.cycles += c
		ip.work += c
	}
}

func (ip *Interp) step(pos lang.Pos) error {
	n := ip.sh.steps.Add(1)
	if n > ip.maxSteps {
		return fmt.Errorf("%s: interp: step limit exceeded (%d)", pos, ip.maxSteps)
	}
	// Poll cancellation at the same granularity the compiled engine
	// does (flushSteps): every stepFlushChunk statements.
	if ip.ctx != nil && n&(stepFlushChunk-1) == 0 {
		if err := ip.ctx.Err(); err != nil {
			return fmt.Errorf("%s: interp: run cancelled: %v", pos, err)
		}
	}
	return nil
}

// stepFlushChunk is how many compiled-engine statements run between
// flushes of the local step count to the shared atomic. Batching keeps
// the hot loop off the shared cache line (which parallel workers would
// otherwise contend on every statement); the step limit is still
// enforced, at chunk granularity.
const stepFlushChunk = 256

// stepC is the compiled engine's per-statement accounting.
func (ip *Interp) stepC(pos lang.Pos) error {
	ip.stepsLocal++
	if ip.stepsLocal >= stepFlushChunk {
		return ip.flushSteps(pos)
	}
	return nil
}

// flushSteps publishes the batched statement count. The shared total
// is exact whenever an Interp is quiescent (Call returned, or a
// parallel iteration completed), which is when Stats is read.
func (ip *Interp) flushSteps(pos lang.Pos) error {
	if ip.stepsLocal == 0 {
		return nil
	}
	n := ip.stepsLocal
	ip.stepsLocal = 0
	if ip.sh.steps.Add(n) > ip.maxSteps {
		return fmt.Errorf("%s: interp: step limit exceeded (%d)", pos, ip.maxSteps)
	}
	if ip.ctx != nil {
		if err := ip.ctx.Err(); err != nil {
			return fmt.Errorf("%s: interp: run cancelled: %v", pos, err)
		}
	}
	return nil
}

// rand is a SplitMix64-style deterministic generator. It is safe for
// concurrent use (atomic state).
func (ip *Interp) rand() float64 {
	for {
		old := atomic.LoadUint64(&ip.sh.rngState)
		z := old + 0x9e3779b97f4a7c15
		if !atomic.CompareAndSwapUint64(&ip.sh.rngState, old, z) {
			continue
		}
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
}

// ---------------------------------------------------------------------------
// Frames

type frame struct {
	fn     *lang.FuncDecl
	scopes []map[string]*Value
}

func (fr *frame) push() { fr.scopes = append(fr.scopes, map[string]*Value{}) }
func (fr *frame) pop()  { fr.scopes = fr.scopes[:len(fr.scopes)-1] }

func (fr *frame) declare(name string, v Value) {
	val := v
	fr.scopes[len(fr.scopes)-1][name] = &val
}

func (fr *frame) lookup(name string) (*Value, bool) {
	for i := len(fr.scopes) - 1; i >= 0; i-- {
		if v, ok := fr.scopes[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

// snapshot returns a frame whose scopes copy the current bindings;
// parallel iterations get independent frames so concurrent variable
// writes cannot race (heap writes are the program's responsibility —
// the dependence test guarantees transformed code is race-free).
//
// Cost note: this rebuilds every scope map of the live frame on every
// forall iteration fork — the dominant allocation source of walker
// parallel runs (~330k allocs per R2 force run vs ~1.5k for the
// compiled engine, whose slot-frame fork is one slice copy; see
// DESIGN.md's R3 section and BENCH_interp.json). Kept as-is: the
// walker is the oracle, and oracles should stay simple.
func (fr *frame) snapshot() *frame {
	nf := &frame{fn: fr.fn}
	for _, sc := range fr.scopes {
		nsc := make(map[string]*Value, len(sc))
		for k, v := range sc {
			val := *v
			nsc[k] = &val
		}
		nf.scopes = append(nf.scopes, nsc)
	}
	return nf
}

// ---------------------------------------------------------------------------
// Execution

type ctrl int

const (
	ctrlNext ctrl = iota
	ctrlReturn
)

func (ip *Interp) callFunc(f *lang.FuncDecl, args []Value, depth int) (Value, error) {
	if depth > ip.maxDepth {
		return Value{}, fmt.Errorf("interp: recursion depth exceeded in %s", f.Name)
	}
	ip.charge(ip.cfg.Costs.CallOver)
	fr := &frame{fn: f}
	fr.push()
	for i, prm := range f.Params {
		fr.declare(prm.Name, coerce(args[i], prm.Type))
	}
	c, rv, err := ip.execBlock(f.Body, fr, depth)
	if err != nil {
		return Value{}, err
	}
	if c == ctrlReturn {
		if f.Result != nil {
			return coerce(rv, f.Result), nil
		}
		return Value{}, nil
	}
	if f.Result != nil {
		return Value{}, fmt.Errorf("interp: function %s fell off the end without returning", f.Name)
	}
	return Value{}, nil
}

func (ip *Interp) execBlock(b *lang.Block, fr *frame, depth int) (ctrl, Value, error) {
	fr.push()
	defer fr.pop()
	for _, s := range b.Stmts {
		c, rv, err := ip.execStmt(s, fr, depth)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		if c == ctrlReturn {
			return c, rv, nil
		}
	}
	return ctrlNext, Value{}, nil
}

func (ip *Interp) execStmt(s lang.Stmt, fr *frame, depth int) (ctrl, Value, error) {
	if err := ip.step(s.Pos()); err != nil {
		return ctrlNext, Value{}, err
	}
	switch s := s.(type) {
	case *lang.Block:
		return ip.execBlock(s, fr, depth)

	case *lang.VarStmt:
		v := zeroValue(s.DeclType)
		if s.Init != nil {
			iv, err := ip.eval(s.Init, fr, depth)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			v = coerce(iv, s.DeclType)
		}
		ip.charge(ip.cfg.Costs.VarAccess)
		fr.declare(s.Name, v)
		return ctrlNext, Value{}, nil

	case *lang.AssignStmt:
		return ctrlNext, Value{}, ip.execAssign(s, fr, depth)

	case *lang.WhileStmt:
		for {
			cond, err := ip.eval(s.Cond, fr, depth)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			ip.charge(ip.cfg.Costs.Branch)
			if !cond.B {
				return ctrlNext, Value{}, nil
			}
			c, rv, err := ip.execBlock(s.Body, fr, depth)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			if c == ctrlReturn {
				return c, rv, nil
			}
			if err := ip.step(s.Pos()); err != nil {
				return ctrlNext, Value{}, err
			}
		}

	case *lang.IfStmt:
		cond, err := ip.eval(s.Cond, fr, depth)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		ip.charge(ip.cfg.Costs.Branch)
		if cond.B {
			return ip.execBlock(s.Then, fr, depth)
		}
		if s.Else != nil {
			return ip.execBlock(s.Else, fr, depth)
		}
		return ctrlNext, Value{}, nil

	case *lang.ReturnStmt:
		if s.Value == nil {
			return ctrlReturn, Value{}, nil
		}
		v, err := ip.eval(s.Value, fr, depth)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		return ctrlReturn, v, nil

	case *lang.CallStmt:
		_, err := ip.evalCall(s.Call, fr, depth)
		return ctrlNext, Value{}, err

	case *lang.ForStmt:
		return ip.execFor(s, fr, depth)
	}
	return ctrlNext, Value{}, fmt.Errorf("%s: interp: unknown statement %T", s.Pos(), s)
}

func (ip *Interp) execAssign(s *lang.AssignStmt, fr *frame, depth int) error {
	rv, err := ip.eval(s.RHS, fr, depth)
	if err != nil {
		return err
	}
	switch lhs := s.LHS.(type) {
	case *lang.Ident:
		slot, ok := fr.lookup(lhs.Name)
		if !ok {
			return fmt.Errorf("%s: interp: undefined variable %q", s.Pos(), lhs.Name)
		}
		ip.charge(ip.cfg.Costs.VarAccess)
		*slot = coerce(rv, lhs.Type())
		return nil
	case *lang.FieldExpr:
		base, err := ip.eval(lhs.X, fr, depth)
		if err != nil {
			return err
		}
		if base.N == nil {
			return fmt.Errorf("%s: interp: store through NULL pointer", s.Pos())
		}
		ip.charge(ip.cfg.Costs.FieldStore)
		node := base.N
		if _, isPtr := lang.IsPointer(lhs.Type()); isPtr {
			idx := 0
			if lhs.Index != nil {
				iv, err := ip.eval(lhs.Index, fr, depth)
				if err != nil {
					return err
				}
				idx = int(iv.I)
			}
			arr := node.Ptrs[lhs.Field]
			if idx < 0 || idx >= len(arr) {
				return fmt.Errorf("%s: interp: index %d out of range for %s.%s[%d]", s.Pos(), idx, node.Type, lhs.Field, len(arr))
			}
			old := arr[idx]
			arr[idx] = rv.N
			if ip.cfg.ShapeChecks {
				return ip.checkStore(s.Pos(), node, lhs.Field, old, rv.N)
			}
			return nil
		}
		slot, ok := node.Data[lhs.Field]
		if !ok {
			return fmt.Errorf("%s: interp: %s has no data field %q", s.Pos(), node.Type, lhs.Field)
		}
		*slot = coerce(rv, lhs.Type())
		return nil
	}
	return fmt.Errorf("%s: interp: bad assignment target %T", s.Pos(), s.LHS)
}

func (ip *Interp) execFor(s *lang.ForStmt, fr *frame, depth int) (ctrl, Value, error) {
	fromV, err := ip.eval(s.From, fr, depth)
	if err != nil {
		return ctrlNext, Value{}, err
	}
	toV, err := ip.eval(s.To, fr, depth)
	if err != nil {
		return ctrlNext, Value{}, err
	}
	from, to := fromV.I, toV.I

	if !s.Parallel {
		for k := from; k <= to; k++ {
			fr.push()
			fr.declare(s.Var, IntVal(k))
			c, rv, err := ip.execBlock(s.Body, fr, depth)
			fr.pop()
			if err != nil {
				return ctrlNext, Value{}, err
			}
			if c == ctrlReturn {
				return c, rv, nil
			}
			ip.charge(ip.cfg.Costs.Branch + ip.cfg.Costs.IntOp)
			// One step per trip, like while: without it an empty loop
			// body evades the MaxSteps runaway guard entirely.
			if err := ip.step(s.Pos()); err != nil {
				return ctrlNext, Value{}, err
			}
		}
		return ctrlNext, Value{}, nil
	}

	// Parallel loop.
	n := to - from + 1
	if n <= 0 {
		return ctrlNext, Value{}, nil
	}
	if ip.cfg.Mode == Simulated {
		return ctrlNext, Value{}, ip.simulatedForall(s, fr, depth, from, to)
	}

	// Real mode with an installed scheduler (parexec's worker pool):
	// hand the iterations over; the scheduler is the barrier.
	if ip.cfg.Forall != nil {
		run := func(w *Interp, k int64) error {
			nf := fr.snapshot()
			nf.push()
			nf.declare(s.Var, IntVal(k))
			c, _, err := w.execBlock(s.Body, nf, depth)
			if err == nil && c == ctrlReturn {
				err = fmt.Errorf("%s: interp: return inside forall is not allowed", s.Pos())
			}
			return err
		}
		return ctrlNext, Value{}, ip.cfg.Forall(s.Pos(), from, to, run)
	}

	// Real mode: one goroutine per iteration with a snapshot frame.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for k := from; k <= to; k++ {
		wg.Add(1)
		go func(k int64) {
			defer wg.Done()
			nf := fr.snapshot()
			nf.push()
			nf.declare(s.Var, IntVal(k))
			_, _, err := ip.execBlock(s.Body, nf, depth)
			errs[k-from] = err
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ctrlNext, Value{}, err
		}
	}
	return ctrlNext, Value{}, nil
}

// simulatedForall is the walker's entry to the shared simForall
// skeleton: push a scope per iteration and execute the AST body.
func (ip *Interp) simulatedForall(s *lang.ForStmt, fr *frame, depth int, from, to int64) error {
	return ip.simForall(from, to, s.Pos(), ip.step, func(k int64) (ctrl, error) {
		fr.push()
		fr.declare(s.Var, IntVal(k))
		c, _, err := ip.execBlock(s.Body, fr, depth)
		fr.pop()
		return c, err
	})
}

// simForall executes a simulated parallel loop's iterations
// sequentially, assigning them to PEs and charging elapsed =
// max(PE busy time) + barrier. It is the single copy of the Sequent
// model's forall accounting (PE mapping, per-iteration cycle rewind,
// barrier charge), shared by both engines so the bit-identical-cycles
// contract cannot drift: each engine supplies only its iteration body
// (runIter) and its step-guard flavor (the walker counts steps on the
// shared atomic immediately; the compiled engine batches).
func (ip *Interp) simForall(from, to int64, pos lang.Pos, step func(lang.Pos) error, runIter func(k int64) (ctrl, error)) error {
	n := int(to - from + 1)
	pes := ip.cfg.PEs
	if pes <= 0 {
		pes = n
	}
	busy := make([]int64, pes)
	outerCycles := ip.cycles
	for k := from; k <= to; k++ {
		var pe int
		switch ip.cfg.Sched {
		case Block:
			chunk := (n + pes - 1) / pes
			pe = int(k-from) / chunk
		default: // Cyclic
			pe = int(k-from) % pes
		}
		if pe >= pes {
			pe = pes - 1
		}
		// Run the iteration, measuring its cycle delta.
		start := ip.cycles
		c, err := runIter(k)
		if err != nil {
			return err
		}
		if c == ctrlReturn {
			return fmt.Errorf("%s: interp: return inside forall is not allowed", pos)
		}
		busy[pe] += ip.cycles - start
		ip.cycles = start // rewind; we charge max at the end
		// One step per iteration (the MaxSteps guard, as in serial for).
		if err := step(pos); err != nil {
			return err
		}
	}
	maxBusy := int64(0)
	for _, b := range busy {
		if b > maxBusy {
			maxBusy = b
		}
	}
	ip.cycles = outerCycles + maxBusy + ip.cfg.Costs.Barrier
	ip.work += ip.cfg.Costs.Barrier // busy time was already added to work
	ip.barriers++
	return nil
}

// ---------------------------------------------------------------------------
// Expressions

func (ip *Interp) eval(e lang.Expr, fr *frame, depth int) (Value, error) {
	switch e := e.(type) {
	case *lang.Ident:
		slot, ok := fr.lookup(e.Name)
		if !ok {
			return Value{}, fmt.Errorf("%s: interp: undefined variable %q", e.Pos(), e.Name)
		}
		ip.charge(ip.cfg.Costs.VarAccess)
		return *slot, nil

	case *lang.IntLit:
		return IntVal(e.Val), nil
	case *lang.RealLit:
		return RealVal(e.Val), nil
	case *lang.StrLit:
		return StrVal(e.Val), nil
	case *lang.BoolLit:
		return BoolVal(e.Val), nil
	case *lang.NullLit:
		return NullVal(), nil

	case *lang.NewExpr:
		return ip.alloc(e.TypeName)

	case *lang.FieldExpr:
		return ip.evalField(e, fr, depth)

	case *lang.CallExpr:
		return ip.evalCall(e, fr, depth)

	case *lang.BinExpr:
		return ip.evalBin(e, fr, depth)

	case *lang.UnExpr:
		v, err := ip.eval(e.X, fr, depth)
		if err != nil {
			return Value{}, err
		}
		switch e.Op {
		case lang.MINUS:
			if v.Kind == KindInt {
				ip.charge(ip.cfg.Costs.IntOp)
				return IntVal(-v.I), nil
			}
			ip.charge(ip.cfg.Costs.RealOp)
			return RealVal(-v.F), nil
		case lang.NOT:
			ip.charge(ip.cfg.Costs.IntOp)
			return BoolVal(!v.B), nil
		}
	}
	return Value{}, fmt.Errorf("%s: interp: unknown expression %T", e.Pos(), e)
}

func (ip *Interp) alloc(typeName string) (Value, error) {
	decl := ip.prog.Universe.Decl(typeName)
	if decl == nil {
		return Value{}, fmt.Errorf("interp: new of unknown type %q", typeName)
	}
	return ip.allocNode(decl, typeName)
}

// allocNode builds a fresh record with both addressing views (name
// maps for the walker and inspectors, positional slices for the
// compiled engine) over one backing store. The MaxAllocs budget is
// checked on the shared counter, so parallel iterations draw from one
// pool and the failing allocation is deterministic in serial runs.
func (ip *Interp) allocNode(decl *adds.Decl, typeName string) (Value, error) {
	ip.charge(ip.cfg.Costs.Alloc)
	if n := ip.sh.allocs.Add(1); ip.maxAllocs > 0 && n > ip.maxAllocs {
		return Value{}, fmt.Errorf("interp: allocation limit exceeded (%d)", ip.maxAllocs)
	}
	n := &Node{
		Type: typeName,
		Data: make(map[string]*Value, len(decl.Data)),
		Ptrs: make(map[string][]*Node, len(decl.Pointers)),
		vals: make([]Value, len(decl.Data)),
		parr: make([][]*Node, len(decl.Pointers)),
		id:   ip.sh.nextID.Add(1),
	}
	for i, df := range decl.Data {
		switch df.Type {
		case "real":
			n.vals[i] = RealVal(0)
		case "bool":
			n.vals[i] = BoolVal(false)
		default:
			n.vals[i] = IntVal(0)
		}
		n.Data[df.Name] = &n.vals[i]
	}
	for i, pf := range decl.Pointers {
		n.parr[i] = make([]*Node, pf.Count)
		n.Ptrs[pf.Name] = n.parr[i]
	}
	return PtrVal(n), nil
}

// printLine renders print() arguments the one way both engines must
// (space-separated, newline-terminated) and writes the line under the
// output lock. The MaxOutputBytes budget is charged on the shared
// counter before writing, so a run over budget fails without emitting
// the overflowing line; underlying writer errors are ignored, as they
// always were — only the byte budget aborts execution.
func (ip *Interp) printLine(pos lang.Pos, args []Value) error {
	var b strings.Builder
	for i, a := range args {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.String())
	}
	b.WriteByte('\n')
	line := b.String()
	if ip.maxOutput > 0 && ip.sh.outBytes.Add(int64(len(line))) > ip.maxOutput {
		return fmt.Errorf("%s: interp: output limit exceeded (%d bytes)", pos, ip.maxOutput)
	}
	ip.outMu.Lock()
	io.WriteString(ip.out, line)
	ip.outMu.Unlock()
	return nil
}

func (ip *Interp) evalField(e *lang.FieldExpr, fr *frame, depth int) (Value, error) {
	base, err := ip.eval(e.X, fr, depth)
	if err != nil {
		return Value{}, err
	}
	_, isPtr := lang.IsPointer(e.Type())
	if base.N == nil {
		if isPtr && !ip.cfg.StrictNull {
			// Speculative traversability (§3.2): walking a pointer
			// field past the end of a structure yields NULL.
			return NullVal(), nil
		}
		return Value{}, fmt.Errorf("%s: interp: field %s read through NULL pointer", e.Pos(), e.Field)
	}
	ip.charge(ip.cfg.Costs.FieldLoad)
	node := base.N
	if isPtr {
		idx := 0
		if e.Index != nil {
			iv, err := ip.eval(e.Index, fr, depth)
			if err != nil {
				return Value{}, err
			}
			idx = int(iv.I)
		}
		arr := node.Ptrs[e.Field]
		if idx < 0 || idx >= len(arr) {
			return Value{}, fmt.Errorf("%s: interp: index %d out of range for %s.%s[%d]", e.Pos(), idx, node.Type, e.Field, len(arr))
		}
		return PtrVal(arr[idx]), nil
	}
	v, ok := node.Data[e.Field]
	if !ok {
		return Value{}, fmt.Errorf("%s: interp: %s has no data field %q", e.Pos(), node.Type, e.Field)
	}
	return *v, nil
}

func (ip *Interp) evalCall(e *lang.CallExpr, fr *frame, depth int) (Value, error) {
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := ip.eval(a, fr, depth)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	switch e.Func {
	case "sqrt":
		ip.charge(ip.cfg.Costs.Sqrt)
		return RealVal(math.Sqrt(args[0].AsReal())), nil
	case "abs":
		ip.charge(ip.cfg.Costs.RealOp)
		return RealVal(math.Abs(args[0].AsReal())), nil
	case "rand":
		ip.charge(ip.cfg.Costs.RealOp)
		return RealVal(ip.rand()), nil
	case "print":
		return Value{}, ip.printLine(e.Pos(), args)
	}
	f := ip.prog.Func(e.Func)
	if f == nil {
		return Value{}, fmt.Errorf("%s: interp: call to unknown function %q", e.Pos(), e.Func)
	}
	return ip.callFunc(f, args, depth+1)
}

func (ip *Interp) evalBin(e *lang.BinExpr, fr *frame, depth int) (Value, error) {
	// Short-circuit logic first.
	if e.Op == lang.AND || e.Op == lang.OR {
		x, err := ip.eval(e.X, fr, depth)
		if err != nil {
			return Value{}, err
		}
		ip.charge(ip.cfg.Costs.IntOp)
		if e.Op == lang.AND && !x.B {
			return BoolVal(false), nil
		}
		if e.Op == lang.OR && x.B {
			return BoolVal(true), nil
		}
		return ip.eval(e.Y, fr, depth)
	}
	x, err := ip.eval(e.X, fr, depth)
	if err != nil {
		return Value{}, err
	}
	y, err := ip.eval(e.Y, fr, depth)
	if err != nil {
		return Value{}, err
	}

	// Pointer comparison.
	if x.Kind == KindPtr || y.Kind == KindPtr {
		ip.charge(ip.cfg.Costs.IntOp)
		eq := x.N == y.N
		if e.Op == lang.EQ {
			return BoolVal(eq), nil
		}
		return BoolVal(!eq), nil
	}

	// String comparison (strings mostly exist as print arguments, but
	// == / != between them is well-typed and must compare contents,
	// not fall through to the always-zero integer fields).
	if x.Kind == KindString && y.Kind == KindString {
		ip.charge(ip.cfg.Costs.IntOp)
		switch e.Op {
		case lang.EQ:
			return BoolVal(x.S == y.S), nil
		case lang.NEQ:
			return BoolVal(x.S != y.S), nil
		}
		return Value{}, fmt.Errorf("%s: interp: bad string op %s", e.Pos(), e.Op)
	}

	// Numeric / bool scalar ops.
	real2 := x.Kind == KindReal || y.Kind == KindReal
	if real2 {
		ip.charge(ip.cfg.Costs.RealOp)
		a, b := x.AsReal(), y.AsReal()
		switch e.Op {
		case lang.PLUS:
			return RealVal(a + b), nil
		case lang.MINUS:
			return RealVal(a - b), nil
		case lang.STAR:
			return RealVal(a * b), nil
		case lang.SLASH:
			return RealVal(a / b), nil
		case lang.EQ:
			return BoolVal(a == b), nil
		case lang.NEQ:
			return BoolVal(a != b), nil
		case lang.LT:
			return BoolVal(a < b), nil
		case lang.LE:
			return BoolVal(a <= b), nil
		case lang.GT:
			return BoolVal(a > b), nil
		case lang.GE:
			return BoolVal(a >= b), nil
		}
		return Value{}, fmt.Errorf("%s: interp: bad real op %s", e.Pos(), e.Op)
	}
	if x.Kind == KindBool && y.Kind == KindBool {
		ip.charge(ip.cfg.Costs.IntOp)
		switch e.Op {
		case lang.EQ:
			return BoolVal(x.B == y.B), nil
		case lang.NEQ:
			return BoolVal(x.B != y.B), nil
		}
		return Value{}, fmt.Errorf("%s: interp: bad bool op %s", e.Pos(), e.Op)
	}
	ip.charge(ip.cfg.Costs.IntOp)
	a, b := x.I, y.I
	switch e.Op {
	case lang.PLUS:
		return IntVal(a + b), nil
	case lang.MINUS:
		return IntVal(a - b), nil
	case lang.STAR:
		return IntVal(a * b), nil
	case lang.SLASH:
		if b == 0 {
			return Value{}, fmt.Errorf("%s: interp: integer division by zero", e.Pos())
		}
		return IntVal(a / b), nil
	case lang.PERCENT:
		if b == 0 {
			return Value{}, fmt.Errorf("%s: interp: integer modulo by zero", e.Pos())
		}
		return IntVal(a % b), nil
	case lang.EQ:
		return BoolVal(a == b), nil
	case lang.NEQ:
		return BoolVal(a != b), nil
	case lang.LT:
		return BoolVal(a < b), nil
	case lang.LE:
		return BoolVal(a <= b), nil
	case lang.GT:
		return BoolVal(a > b), nil
	case lang.GE:
		return BoolVal(a >= b), nil
	}
	return Value{}, fmt.Errorf("%s: interp: bad int op %s", e.Pos(), e.Op)
}

// ---------------------------------------------------------------------------
// Heap inspection helpers (used by tests and examples)

// Field reads any data field of a node as a Value.
func Field(v Value, field string) (Value, error) {
	if v.N == nil {
		return Value{}, fmt.Errorf("interp: Field on NULL")
	}
	fv, ok := v.N.Data[field]
	if !ok {
		return Value{}, fmt.Errorf("interp: no field %q", field)
	}
	return *fv, nil
}

// FieldInt reads an int data field of a node.
func FieldInt(v Value, field string) (int64, error) {
	fv, err := Field(v, field)
	return fv.I, err
}

// FieldReal reads a real data field of a node.
func FieldReal(v Value, field string) (float64, error) {
	fv, err := Field(v, field)
	return fv.AsReal(), err
}

// FieldPtr reads a pointer field (index 0) of a node.
func FieldPtr(v Value, field string) (Value, error) {
	if v.N == nil {
		return Value{}, fmt.Errorf("interp: FieldPtr on NULL")
	}
	arr, ok := v.N.Ptrs[field]
	if !ok || len(arr) == 0 {
		return Value{}, fmt.Errorf("interp: no pointer field %q", field)
	}
	return PtrVal(arr[0]), nil
}

// ListInts walks a list via `next`, reading an int field from each node
// (bounded by limit to catch accidental cycles).
func ListInts(head Value, field string, limit int) ([]int64, error) {
	var out []int64
	n := head.N
	for n != nil {
		if limit--; limit < 0 {
			return nil, fmt.Errorf("interp: list longer than limit (cycle?)")
		}
		v, ok := n.Data[field]
		if !ok {
			return nil, fmt.Errorf("interp: node lacks field %q", field)
		}
		out = append(out, v.I)
		next := n.Ptrs["next"]
		if len(next) == 0 {
			break
		}
		n = next[0]
	}
	return out, nil
}

// SortedFields lists a node's data fields (for debugging output).
func SortedFields(v Value) []string {
	if v.N == nil {
		return nil
	}
	out := make([]string, 0, len(v.N.Data))
	for k := range v.N.Data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
