package interp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/nbody"
)

// TestNestedForallSimulated: a forall inside a forall accounts time
// sensibly (inner barrier charged within the iteration's cost).
func TestNestedForallSimulated(t *testing.T) {
	src := `
procedure inner(int j) {
  var int s = 0;
  for k = 1 to 50 { s = s + k; }
}
procedure main() {
  forall i = 0 to 3 {
    forall j = 0 to 3 {
      inner(j);
    }
  }
}`
	prog := lang.MustParse(src)
	ip := New(prog, Config{Mode: Simulated, PEs: 4})
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	st := ip.Stats()
	if st.Barriers != 5 { // 4 inner + 1 outer
		t.Errorf("barriers = %d, want 5", st.Barriers)
	}
	if st.Cycles <= 0 || st.WorkCycles < st.Cycles {
		t.Errorf("cycles=%d work=%d", st.Cycles, st.WorkCycles)
	}
}

// TestForallReturnRejectedSimulated: return inside a simulated forall is
// an error (it has no sensible parallel semantics).
func TestForallReturnRejectedSimulated(t *testing.T) {
	src := `
function int main() {
  forall i = 0 to 3 {
    return 1;
  }
  return 0;
}`
	prog := lang.MustParse(src)
	ip := New(prog, Config{Mode: Simulated, PEs: 2})
	if _, err := ip.Call("main"); err == nil || !strings.Contains(err.Error(), "forall") {
		t.Errorf("expected forall-return error, got %v", err)
	}
}

// TestPrintPointerForms: NULL and node values print deterministically.
func TestPrintPointerForms(t *testing.T) {
	src := `
type T [X] { int v; T *next is uniquely forward along X; };
procedure main() {
  var T *p = NULL;
  print(p);
  p = new T;
  print(p);
}`
	prog := lang.MustParse(src)
	var out bytes.Buffer
	ip := New(prog, Config{Output: &out})
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "NULL" {
		t.Errorf("null printed as %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "<T#") {
		t.Errorf("node printed as %q", lines[1])
	}
}

// TestCallArityMismatch: calling with wrong arg count via the API fails.
func TestCallArityMismatch(t *testing.T) {
	prog := lang.MustParse(`procedure f(int a) { }`)
	ip := New(prog, Config{})
	if _, err := ip.Call("f"); err == nil {
		t.Error("arity mismatch must error")
	}
	if _, err := ip.Call("nosuch"); err == nil {
		t.Error("unknown function must error")
	}
}

// TestFunctionFallsOffEnd: a function that can fail to return is a
// runtime error when it does.
func TestFunctionFallsOffEnd(t *testing.T) {
	prog := lang.MustParse(`
function int f(bool b) {
  if b {
    return 1;
  }
}`)
	ip := New(prog, Config{})
	if _, err := ip.Call("f", BoolVal(false)); err == nil || !strings.Contains(err.Error(), "fell off") {
		t.Errorf("expected fall-off error, got %v", err)
	}
	if v, err := ip.Call("f", BoolVal(true)); err != nil || v.I != 1 {
		t.Errorf("true path: %v %v", v, err)
	}
}

// TestFormatRoundTripBarnesHut: the printer output of the full
// Barnes-Hut program re-parses and runs to the same trajectories.
func TestFormatRoundTripBarnesHut(t *testing.T) {
	prog := lang.MustParse(nbody.BarnesHutPSL)
	text := lang.Format(prog)
	prog2, err := lang.Parse(text)
	if err != nil {
		t.Fatalf("formatted Barnes-Hut does not re-parse: %v", err)
	}
	run := func(p *lang.Program) Value {
		ip := New(p, Config{Seed: 7})
		v, err := ip.Call("simulate", IntVal(16), IntVal(1), RealVal(0.5), RealVal(0.01))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	v1, v2 := run(prog), run(prog2)
	x1 := v1.N.Data["posx"].AsReal()
	x2 := v2.N.Data["posx"].AsReal()
	if x1 != x2 {
		t.Errorf("round-tripped program diverges: %g vs %g", x1, x2)
	}
}

// TestSimulatedDeterminism: identical configs give identical cycle
// counts (the property the table harness depends on).
func TestSimulatedDeterminism(t *testing.T) {
	prog := lang.MustParse(nbody.BarnesHutPSL)
	run := func() int64 {
		ip := New(prog, Config{Mode: Simulated, PEs: 3, Seed: 11})
		if _, err := ip.Call("simulate", IntVal(20), IntVal(1), RealVal(0.5), RealVal(0.01)); err != nil {
			t.Fatal(err)
		}
		return ip.Stats().Cycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("simulated cycles not deterministic: %d vs %d", a, b)
	}
}
