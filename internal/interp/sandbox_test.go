// Sandbox tests: the per-run budgets (MaxSteps, MaxAllocs,
// MaxOutputBytes) and Ctx cancellation that the serving layer
// (internal/serve) relies on to run untrusted programs, asserted
// equivalent across all three engines — the error paths stay inside
// the "three engines, two oracles" contract. Also the
// compile-once/share-everywhere contract behind internal/compile's
// immutability note: one compiled program (closure and bytecode
// backends alike) executed from 16 goroutines under the race
// detector.
package interp

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lang"
)

// sandboxEngines is the full engine matrix the budget trips are
// asserted identical across.
var sandboxEngines = []Engine{EngineWalk, EngineCompiled, EngineBytecode}

const sandboxSrc = `
type Cell [X]
{ int v;
  Cell *next is uniquely forward along X;
};

function int alloc_bomb(int n) {
  var int i = 0;
  while i < n {
    var Cell *t = new Cell;
    t->v = i;
    i = i + 1;
  }
  return i;
}

function int print_bomb(int n) {
  var int i = 0;
  while i < n {
    print("line", i);
    i = i + 1;
  }
  return i;
}

function int spin(int n) {
  var int i = 0;
  while i < n {
    i = i + 1;
  }
  return i;
}
`

// runAll executes fn under every engine with the same config and
// returns (error string, output) per engine, indexed like
// sandboxEngines.
func runAll(t *testing.T, cfg Config, fn string, args ...Value) (errs [3]string, outs [3]string) {
	t.Helper()
	prog, err := lang.Parse(sandboxSrc)
	if err != nil {
		t.Fatal(err)
	}
	for i, eng := range sandboxEngines {
		var out bytes.Buffer
		c := cfg
		c.Engine = eng
		c.Output = &out
		ip := New(prog, c)
		_, err := ip.Call(fn, args...)
		if err != nil {
			errs[i] = err.Error()
		}
		outs[i] = out.String()
	}
	return errs, outs
}

// TestMaxAllocsEquivalence: the allocation budget trips at the same
// deterministic allocation in every engine, with the same message.
func TestMaxAllocsEquivalence(t *testing.T) {
	errs, _ := runAll(t, Config{MaxAllocs: 10}, "alloc_bomb", IntVal(100))
	for i, e := range errs {
		if !strings.Contains(e, "allocation limit exceeded (10)") {
			t.Errorf("engine %s: error %q, want allocation limit", sandboxEngines[i], e)
		}
		if e != errs[0] {
			t.Errorf("engines disagree: %s %q vs %s %q", sandboxEngines[0], errs[0], sandboxEngines[i], e)
		}
	}
	// Under the budget, the same program runs to completion.
	errs, _ = runAll(t, Config{MaxAllocs: 100}, "alloc_bomb", IntVal(100))
	for i, e := range errs {
		if e != "" {
			t.Errorf("engine %s: within budget should succeed: %q", sandboxEngines[i], e)
		}
	}
}

// TestMaxStepsEquivalence: the step limit trips in every engine with
// the same message. The walker may attribute the chunk flush to a
// neighboring statement (limits fire at engine-specific instants, the
// long-standing fuzzer carve-out), but the two lowered engines share
// the closure engine's statement granularity exactly, so compiled and
// bytecode must agree to the position.
func TestMaxStepsEquivalence(t *testing.T) {
	errs, _ := runAll(t, Config{MaxSteps: 1000}, "spin", IntVal(1_000_000))
	for i, e := range errs {
		if !strings.Contains(e, "step limit exceeded (1000)") {
			t.Errorf("engine %s: error %q, want step limit", sandboxEngines[i], e)
		}
	}
	if errs[1] != errs[2] {
		t.Errorf("lowered engines disagree: compiled %q vs bytecode %q", errs[1], errs[2])
	}
	errs, _ = runAll(t, Config{MaxSteps: 10_000_000}, "spin", IntVal(1000))
	for i, e := range errs {
		if e != "" {
			t.Errorf("engine %s: within budget should succeed: %q", sandboxEngines[i], e)
		}
	}
}

// TestMaxOutputBytesEquivalence: the output cap aborts every engine at
// the same print with the same message, and the bytes emitted before
// the cap are identical.
func TestMaxOutputBytesEquivalence(t *testing.T) {
	errs, outs := runAll(t, Config{MaxOutputBytes: 20}, "print_bomb", IntVal(100))
	for i, e := range errs {
		if !strings.Contains(e, "output limit exceeded (20 bytes)") {
			t.Errorf("engine %s: error %q, want output limit", sandboxEngines[i], e)
		}
		if e != errs[0] {
			t.Errorf("engines disagree: %s %q vs %s %q", sandboxEngines[0], errs[0], sandboxEngines[i], e)
		}
		if outs[i] != outs[0] {
			t.Errorf("partial output differs: %s %q vs %s %q", sandboxEngines[0], outs[0], sandboxEngines[i], outs[i])
		}
	}
	if len(outs[0]) > 20 {
		t.Errorf("emitted %d bytes, cap is 20: %q", len(outs[0]), outs[0])
	}
}

// TestCtxCancelledAtEntry: a context that is dead before Call starts
// fails identically in every engine, before any execution.
func TestCtxCancelledAtEntry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs, outs := runAll(t, Config{Ctx: ctx}, "spin", IntVal(10))
	want := "interp: run cancelled: context canceled"
	for i, e := range errs {
		if e != want {
			t.Errorf("engine %s: error %q, want %q", sandboxEngines[i], e, want)
		}
		if outs[i] != "" {
			t.Errorf("engine %s: produced output %q before cancelled start", sandboxEngines[i], outs[i])
		}
	}
}

// TestCtxDeadlineMidRun: a deadline expiring mid-run cuts a long loop
// off in every engine, well before the step limit would.
func TestCtxDeadlineMidRun(t *testing.T) {
	prog, err := lang.Parse(sandboxSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range sandboxEngines {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		ip := New(prog, Config{Engine: eng, Ctx: ctx})
		start := time.Now()
		_, err := ip.Call("spin", IntVal(4_000_000_000))
		cancel()
		if err == nil || !strings.Contains(err.Error(), "run cancelled") {
			t.Fatalf("engine %s: err = %v, want mid-run cancellation", eng, err)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Errorf("engine %s: cancellation took %v", eng, el)
		}
	}
}

// sharedAcrossGoroutines enforces internal/compile's immutability
// contract for one engine: code is built exactly once (via
// Precompile, the serving layer's cache-insert path) and then
// executed concurrently from 16 goroutines sharing the same program.
// Run under -race in CI; results and output must agree across all
// goroutines, with zero compile work during execution.
func sharedAcrossGoroutines(t *testing.T, eng Engine) {
	t.Helper()
	prog, err := lang.Parse(sandboxSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Precompile(prog); err != nil {
		t.Fatal(err)
	}
	before := CompileCount()
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]int64, goroutines)
	outputs := make([]string, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out bytes.Buffer
			ip := New(prog, Config{Engine: eng, Output: &out})
			v, err := ip.Call("print_bomb", IntVal(50))
			results[i], outputs[i], errs[i] = v.I, out.String(), err
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != 50 || outputs[i] != outputs[0] {
			t.Errorf("goroutine %d: result %d output %q diverged", i, results[i], outputs[i])
		}
	}
	if n := CompileCount() - before; n != 0 {
		t.Errorf("%d extra compiles during concurrent execution; cache hits must do zero compile work", n)
	}
}

func TestCompiledProgramSharedAcrossGoroutines(t *testing.T) {
	sharedAcrossGoroutines(t, EngineCompiled)
}

// TestBytecodeProgramSharedAcrossGoroutines: the bytecode Program is
// immutable after lowering; 16 goroutines execute the same flat code
// concurrently, each over its own register banks.
func TestBytecodeProgramSharedAcrossGoroutines(t *testing.T) {
	sharedAcrossGoroutines(t, EngineBytecode)
}
