// Sandbox tests: the per-run budgets (MaxAllocs, MaxOutputBytes) and
// Ctx cancellation that the serving layer (internal/serve) relies on
// to run untrusted programs, asserted equivalent across both engines —
// the new error paths stay inside the "two engines, one oracle"
// contract. Also the compile-once/share-everywhere contract behind
// internal/compile's immutability note: one compiled program executed
// from 16 goroutines under the race detector.
package interp

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lang"
)

const sandboxSrc = `
type Cell [X]
{ int v;
  Cell *next is uniquely forward along X;
};

function int alloc_bomb(int n) {
  var int i = 0;
  while i < n {
    var Cell *t = new Cell;
    t->v = i;
    i = i + 1;
  }
  return i;
}

function int print_bomb(int n) {
  var int i = 0;
  while i < n {
    print("line", i);
    i = i + 1;
  }
  return i;
}

function int spin(int n) {
  var int i = 0;
  while i < n {
    i = i + 1;
  }
  return i;
}
`

// runBoth executes fn under both engines with the same config and
// returns (error string, output) per engine.
func runBoth(t *testing.T, cfg Config, fn string, args ...Value) (errs [2]string, outs [2]string) {
	t.Helper()
	prog, err := lang.Parse(sandboxSrc)
	if err != nil {
		t.Fatal(err)
	}
	for i, eng := range []Engine{EngineWalk, EngineCompiled} {
		var out bytes.Buffer
		c := cfg
		c.Engine = eng
		c.Output = &out
		ip := New(prog, c)
		_, err := ip.Call(fn, args...)
		if err != nil {
			errs[i] = err.Error()
		}
		outs[i] = out.String()
	}
	return errs, outs
}

// TestMaxAllocsEquivalence: the allocation budget trips at the same
// deterministic allocation in both engines, with the same message.
func TestMaxAllocsEquivalence(t *testing.T) {
	errs, _ := runBoth(t, Config{MaxAllocs: 10}, "alloc_bomb", IntVal(100))
	for i, e := range errs {
		if !strings.Contains(e, "allocation limit exceeded (10)") {
			t.Errorf("engine %d: error %q, want allocation limit", i, e)
		}
	}
	if errs[0] != errs[1] {
		t.Errorf("engines disagree: walk %q vs compiled %q", errs[0], errs[1])
	}
	// Under the budget, the same program runs to completion.
	errs, _ = runBoth(t, Config{MaxAllocs: 100}, "alloc_bomb", IntVal(100))
	if errs[0] != "" || errs[1] != "" {
		t.Errorf("within budget should succeed: %q / %q", errs[0], errs[1])
	}
}

// TestMaxOutputBytesEquivalence: the output cap aborts both engines at
// the same print with the same message, and the bytes emitted before
// the cap are identical.
func TestMaxOutputBytesEquivalence(t *testing.T) {
	errs, outs := runBoth(t, Config{MaxOutputBytes: 20}, "print_bomb", IntVal(100))
	for i, e := range errs {
		if !strings.Contains(e, "output limit exceeded (20 bytes)") {
			t.Errorf("engine %d: error %q, want output limit", i, e)
		}
	}
	if errs[0] != errs[1] {
		t.Errorf("engines disagree: walk %q vs compiled %q", errs[0], errs[1])
	}
	if outs[0] != outs[1] {
		t.Errorf("partial output differs: walk %q vs compiled %q", outs[0], outs[1])
	}
	if len(outs[0]) > 20 {
		t.Errorf("emitted %d bytes, cap is 20: %q", len(outs[0]), outs[0])
	}
}

// TestCtxCancelledAtEntry: a context that is dead before Call starts
// fails identically in both engines, before any execution.
func TestCtxCancelledAtEntry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs, outs := runBoth(t, Config{Ctx: ctx}, "spin", IntVal(10))
	want := "interp: run cancelled: context canceled"
	for i, e := range errs {
		if e != want {
			t.Errorf("engine %d: error %q, want %q", i, e, want)
		}
		if outs[i] != "" {
			t.Errorf("engine %d: produced output %q before cancelled start", i, outs[i])
		}
	}
}

// TestCtxDeadlineMidRun: a deadline expiring mid-run cuts a long loop
// off in both engines, well before the step limit would.
func TestCtxDeadlineMidRun(t *testing.T) {
	prog, err := lang.Parse(sandboxSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{EngineWalk, EngineCompiled} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		ip := New(prog, Config{Engine: eng, Ctx: ctx})
		start := time.Now()
		_, err := ip.Call("spin", IntVal(4_000_000_000))
		cancel()
		if err == nil || !strings.Contains(err.Error(), "run cancelled") {
			t.Fatalf("engine %s: err = %v, want mid-run cancellation", eng, err)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Errorf("engine %s: cancellation took %v", eng, el)
		}
	}
}

// TestCompiledProgramSharedAcrossGoroutines enforces internal/compile's
// immutability contract: closure code is built exactly once (via
// Precompile, the serving layer's cache-insert path) and then executed
// concurrently from 16 goroutines sharing the same program. Run under
// -race in CI; results and output must agree across all goroutines.
func TestCompiledProgramSharedAcrossGoroutines(t *testing.T) {
	prog, err := lang.Parse(sandboxSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Precompile(prog); err != nil {
		t.Fatal(err)
	}
	before := CompileCount()
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]int64, goroutines)
	outputs := make([]string, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out bytes.Buffer
			ip := New(prog, Config{Engine: EngineCompiled, Output: &out})
			v, err := ip.Call("print_bomb", IntVal(50))
			results[i], outputs[i], errs[i] = v.I, out.String(), err
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != 50 || outputs[i] != outputs[0] {
			t.Errorf("goroutine %d: result %d output %q diverged", i, results[i], outputs[i])
		}
	}
	if n := CompileCount() - before; n != 0 {
		t.Errorf("%d extra compiles during concurrent execution; cache hits must do zero compile work", n)
	}
}
