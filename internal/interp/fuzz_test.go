// FuzzCompileVsWalk / FuzzBytecodeVsCompiled: differential fuzzing of
// the three execution engines. Any program the front end accepts must
// behave identically under the tree-walking oracle, the compiled
// closure engine, and the flat bytecode VM — same value, same printed
// output, same error/no-error outcome, and (in simulated mode) the
// same cycle/step/allocation counters. This is the property that lets
// later PRs refactor the execution core freely: the walker defines
// the semantics, the fuzzers hunt for programs where a fast path
// disagrees. The two fuzzers compose: compiled is pinned to the
// walker, bytecode is pinned to compiled, so a bytecode-vs-walker
// divergence cannot hide.
package interp_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/parexec"
)

// fuzzMaxSteps bounds each engine run. Runaway programs hit the limit
// in both engines; the limit is detected at slightly different
// instants (the compiled engine batches step accounting), so
// limit-hit runs only compare error-ness, not counters.
const fuzzMaxSteps = 100_000

func seedPrograms(f *testing.F) {
	f.Helper()
	for _, name := range []string{"polyscale.psl", "violations.psl", "orthlist.psl"} {
		src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add(`
type L [X] { int v; L *next is uniquely forward along X; };
function int main() {
  var L *h = NULL;
  var int i = 0;
  while i < 5 {
    var L *t = new L;
    t->v = i * i;
    t->next = h;
    h = t;
    i = i + 1;
  }
  var int s = 0;
  var L *p = h;
  while p != NULL { s = s + p->v; p = p->next; }
  print("sum", s, 1.5 / 2.0, true);
  return s % 7;
}`)
	f.Add(`
function real main() {
  var real s = 0.0;
  for i = 1 to 6 { s = s + sqrt(i) + rand(); }
  if s > 3.0 || !(s == 0.0) { s = -s; }
  return abs(s);
}`)
}

// pickEntry chooses a function to drive: main if present, otherwise
// the first function whose parameters are all scalars (pointers get
// NULL semantics we'd rather not guess arguments for).
func pickEntry(prog *lang.Program) (string, []interp.Value, bool) {
	if f := prog.Func("main"); f != nil && len(f.Params) == 0 {
		return "main", nil, true
	}
	for _, f := range prog.Funcs {
		args := make([]interp.Value, 0, len(f.Params))
		ok := true
		for _, prm := range f.Params {
			switch t := prm.Type.(type) {
			case *lang.Scalar:
				switch t.Kind {
				case lang.KindInt:
					args = append(args, interp.IntVal(3))
				case lang.KindReal:
					args = append(args, interp.RealVal(1.25))
				case lang.KindBool:
					args = append(args, interp.BoolVal(true))
				default:
					args = append(args, interp.StrVal("s"))
				}
			case *lang.Pointer:
				args = append(args, interp.NullVal())
			default:
				ok = false
			}
		}
		if ok {
			return f.Name, args, true
		}
	}
	return "", nil, false
}

// hasParallelLoop reports whether any function contains a forall; the
// fuzzer skips real-mode runs for those (an attacker-sized forall
// would spawn a goroutine per iteration before the step limit bites).
func hasParallelLoop(prog *lang.Program) bool {
	for _, f := range prog.Funcs {
		found := false
		lang.Walk(f.Body, func(s lang.Stmt) bool {
			if fs, ok := s.(*lang.ForStmt); ok && fs.Parallel {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

type engineOutcome struct {
	v     interp.Value
	stats interp.Stats
	out   string
	err   error
}

func runOne(prog *lang.Program, eng interp.Engine, mode interp.Mode, fn string, args []interp.Value) engineOutcome {
	var out bytes.Buffer
	v, st, err := interp.Run(prog, interp.Config{
		Engine:   eng,
		Mode:     mode,
		PEs:      3,
		Seed:     11,
		Output:   &out,
		MaxSteps: fuzzMaxSteps,
		MaxDepth: 256,
	}, fn, args...)
	return engineOutcome{v: v, stats: st, out: out.String(), err: err}
}

func isLimitErr(err error) bool {
	return err != nil && (strings.Contains(err.Error(), "step limit") ||
		strings.Contains(err.Error(), "recursion depth"))
}

func compareOutcomes(t *testing.T, label string, a, b interp.Engine, w, c engineOutcome) {
	t.Helper()
	// Resource-limit errors fire at engine-specific instants; only
	// agreement on "some limit was hit" is required.
	if isLimitErr(w.err) || isLimitErr(c.err) {
		if !isLimitErr(w.err) || !isLimitErr(c.err) {
			t.Fatalf("%s: limit asymmetry: %s err=%v, %s err=%v", label, a, w.err, b, c.err)
		}
		return
	}
	if (w.err != nil) != (c.err != nil) {
		t.Fatalf("%s: error asymmetry: %s err=%v, %s err=%v", label, a, w.err, b, c.err)
	}
	if w.err != nil {
		return
	}
	if w.v.String() != c.v.String() {
		t.Fatalf("%s: value divergence: %s %s, %s %s", label, a, w.v, b, c.v)
	}
	if w.out != c.out {
		t.Fatalf("%s: output divergence:\n%s %q\n%s %q", label, a, w.out, b, c.out)
	}
	if w.stats != c.stats {
		t.Fatalf("%s: stats divergence: %s %+v, %s %+v", label, a, w.stats, b, c.stats)
	}
}

// fuzzDiff runs src under the engine pair (a = reference, b = engine
// under test) and fails on any observable divergence.
func fuzzDiff(t *testing.T, src string, a, b interp.Engine) {
	prog, err := lang.Parse(src)
	if err != nil {
		return
	}
	fn, args, ok := pickEntry(prog)
	if !ok {
		return
	}
	// Simulated mode exercises the full cost accounting (including
	// simulatedForall's rewind) and is safe for any forall size.
	w := runOne(prog, a, interp.Simulated, fn, args)
	c := runOne(prog, b, interp.Simulated, fn, args)
	compareOutcomes(t, "simulated", a, b, w, c)

	if hasParallelLoop(prog) {
		return
	}
	w = runOne(prog, a, interp.Real, fn, args)
	c = runOne(prog, b, interp.Real, fn, args)
	compareOutcomes(t, "real", a, b, w, c)
}

func FuzzCompileVsWalk(f *testing.F) {
	seedPrograms(f)
	f.Fuzz(func(t *testing.T, src string) {
		fuzzDiff(t, src, interp.EngineWalk, interp.EngineCompiled)
	})
}

// FuzzBytecodeVsCompiled pins the R6 bytecode VM to the closure
// engine the same way the closure engine is pinned to the walker.
// Compiled is the reference here (not the walker) so a failure
// bisects immediately: this fuzzer failing alone means the lowering
// or the VM is wrong; both fuzzers failing means the closure engine
// drifted from the semantics.
func FuzzBytecodeVsCompiled(f *testing.F) {
	seedPrograms(f)
	f.Fuzz(func(t *testing.T, src string) {
		fuzzDiff(t, src, interp.EngineCompiled, interp.EngineBytecode)
	})
}

// stripPatternSeed is the exact shape transform.StripMine emits — a
// forall whose body is one helper call, the helper doing a skip-to-lane
// walk plus NULL guard — so the kernel classifier accepts it and the
// fuzzer starts from a program that actually exercises the vector path
// (gather, masked compute, scatter, and the scalar fallback).
const stripPatternSeed = `
type C [L] { int tag; real w; C *next is uniquely forward along L; };
procedure _scale_it(int _pe, C *p, real k) {
  for _k = 1 to _pe { p = p->next; }
  if p != NULL {
    if p->tag % 3 == 0 { p->w = p->w * k + 1.0; } else { p->tag = p->tag - 2; }
  }
}
function real main() {
  var C *head = NULL;
  var int i = 0;
  while i < 11 {
    var C *t = new C;
    t->tag = i;
    t->w = 0.5 + i;
    t->next = head;
    head = t;
    i = i + 1;
  }
  var C *p = head;
  while p != NULL {
    forall _pe = 0 to 3 { _scale_it(_pe, p, 1.25); }
    for _pe = 0 to 3 { p = p->next; }
  }
  var real acc = 0.0;
  p = head;
  while p != NULL { acc = acc + p->w + p->tag; p = p->next; }
  return acc;
}`

// fuzzKernelParallel is the real-mode leg of FuzzKernelVsBytecode:
// forall programs route through parexec (2 PEs) — the deployment path
// on which the kernel engine's vector strips actually run — instead of
// the goroutine-per-iteration Real mode fuzzDiff skips. A simulated
// dry run gates the leg: it executes every forall iteration serially
// under the step budget, so a fuzzer-sized forall is rejected before
// parexec would allocate its per-iteration output buffers.
func fuzzKernelParallel(t *testing.T, src string) {
	prog, err := lang.Parse(src)
	if err != nil {
		return
	}
	fn, args, ok := pickEntry(prog)
	if !ok || !hasParallelLoop(prog) {
		return
	}
	if dry := runOne(prog, interp.EngineBytecode, interp.Simulated, fn, args); dry.err != nil {
		return
	}
	run := func(eng interp.Engine) engineOutcome {
		var out bytes.Buffer
		v, st, err := parexec.Run(prog, parexec.Options{
			Interp:   eng,
			PEs:      2,
			Seed:     11,
			Output:   &out,
			MaxSteps: fuzzMaxSteps,
		}, fn, args...)
		return engineOutcome{v: v, stats: st, out: out.String(), err: err}
	}
	w := run(interp.EngineBytecode)
	c := run(interp.EngineKernel)
	compareOutcomes(t, "parexec", interp.EngineBytecode, interp.EngineKernel, w, c)
}

// FuzzKernelVsBytecode pins the SPMD kernel engine to the bytecode VM
// it extends. The VM is the reference: a failure here alone means the
// kernel lowering, a mask, or the slab gather/scatter is wrong; this
// and FuzzBytecodeVsCompiled failing together means the drift is in
// the shared scalar core.
func FuzzKernelVsBytecode(f *testing.F) {
	seedPrograms(f)
	f.Add(stripPatternSeed)
	f.Fuzz(func(t *testing.T, src string) {
		fuzzDiff(t, src, interp.EngineBytecode, interp.EngineKernel)
		fuzzKernelParallel(t, src)
	})
}

// TestForallDepthParity: a forall body's recursion budget is the
// enclosing call chain's remaining depth in BOTH engines (the
// compiled engine once reset workers to depth 0, silently granting
// forall bodies the full MaxDepth the walker would refuse). Sweeping
// MaxDepth across the boundary must flip both engines at the same
// value.
func TestForallDepthParity(t *testing.T) {
	prog, err := lang.Parse(`
function int rec(int n) {
  if n <= 0 { return 0; }
  return rec(n - 1);
}
procedure p() {
  forall i = 0 to 1 {
    var int x = rec(6);
    x = x;
  }
}
function int main() {
  p();
  return 1;
}`)
	if err != nil {
		t.Fatal(err)
	}
	sawOK, sawErr := false, false
	for maxDepth := 2; maxDepth <= 16; maxDepth++ {
		var outcome [3]error
		for i, eng := range []interp.Engine{interp.EngineWalk, interp.EngineCompiled, interp.EngineBytecode} {
			_, _, err := interp.Run(prog, interp.Config{Engine: eng, MaxDepth: maxDepth}, "main")
			outcome[i] = err
		}
		if (outcome[0] != nil) != (outcome[1] != nil) || (outcome[0] != nil) != (outcome[2] != nil) {
			t.Errorf("MaxDepth=%d: walk err=%v, compiled err=%v, bytecode err=%v", maxDepth, outcome[0], outcome[1], outcome[2])
		}
		if outcome[0] == nil {
			sawOK = true
		} else {
			sawErr = true
		}
	}
	if !sawOK || !sawErr {
		t.Fatalf("sweep never crossed the depth boundary (ok=%v err=%v) — widen the range", sawOK, sawErr)
	}
}

// TestStringComparison: string == / != compares contents in both
// engines (a fuzz-era fix: both used to fall through to the integer
// branch and compare the always-zero I fields).
func TestStringComparison(t *testing.T) {
	prog, err := lang.Parse(`
function int main() {
  var int s = 0;
  if "a" == "b" { s = s + 1; }
  if "a" == "a" { s = s + 10; }
  if "a" != "b" { s = s + 100; }
  if "" == "" { s = s + 1000; }
  return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []interp.Engine{interp.EngineWalk, interp.EngineCompiled, interp.EngineBytecode} {
		v, _, err := interp.Run(prog, interp.Config{Engine: eng}, "main")
		if err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		if v.I != 1110 {
			t.Errorf("engine %s: main = %d, want 1110", eng, v.I)
		}
	}
}
