// The kernel engine's run-time half: batched SPMD execution of
// vectorized strips (bytecode.Kernel) over struct-of-arrays slabs —
// the fourth engine, beside the closure engine, the tree-walking
// oracle, and the bytecode VM it extends.
//
// A strip executes in three phases. Gather walks the iterated pointer
// chain once, records each lane's node, fills the root execution mask
// (lane is non-NULL), and copies every touched field AoS→SoA into flat
// per-bank slabs; scalar free variables broadcast into whole slabs.
// Compute runs the lowered body as fused whole-slab operations, each
// masked by its governing execution mask — `if` branches become mask
// refinements, never control flow — over any lane sub-range, so
// parexec can split it across PEs. Scatter commits the strip's step
// accounting and writes the stored fields back to the heap, all
// root-active lanes unconditionally: a lane an `if` masked off writes
// back the value it was gathered with, which is exactly the value the
// scalar engines would have left in place.
//
// Execution is transactional: the heap is untouched until Scatter, so
// any fault (a zero divisor in an active lane — possibly a spurious
// one, since kernels evaluate && and || eagerly — a broken advance
// chain, step-budget or depth or cancellation pressure) simply
// discards the slabs and falls back to the scalar bytecode path, which
// re-executes the strip from unmodified state and reproduces the exact
// error text, partial writes, and accounting the other engines
// produce. Success commits step totals bit-identical to the scalar
// engines': 3+2k prologue steps for lane k in closed form plus one
// step per active lane per body statement (mask popcounts).
package interp

import (
	"errors"
	"math"

	"repro/internal/bytecode"
	"repro/internal/lang"
)

// errKernelFault aborts a strip; it is never surfaced (the scalar
// fallback re-raises the real error with the scalar engines' text).
var errKernelFault = errors.New("interp: kernel strip fault")

// kernState is an Interp's reusable slab storage: contiguous per-bank
// backing arrays, re-sliced per strip, so a warm loop allocates
// nothing. One Interp executes one strip at a time (the strip is the
// barrier), so a single state per Interp suffices.
type kernState struct {
	nodes []*Node
	ib    []int64
	fb    []float64
	bb    []bool
	i     [][]int64
	f     [][]float64
	b     [][]bool
	// stepCounts[mask] aggregates how many KStep instructions each
	// execution mask governs, so scatter popcounts each distinct mask
	// once instead of once per statement.
	stepCounts []int64
}

// ensure sizes the slabs for a strip of n lanes.
func (ks *kernState) ensure(k *bytecode.Kernel, n int) {
	if cap(ks.nodes) < n {
		ks.nodes = make([]*Node, n)
	}
	ks.nodes = ks.nodes[:n]
	if need := k.NInt * n; cap(ks.ib) < need {
		ks.ib = make([]int64, need)
	}
	if need := k.NReal * n; cap(ks.fb) < need {
		ks.fb = make([]float64, need)
	}
	if need := k.NBool * n; cap(ks.bb) < need {
		ks.bb = make([]bool, need)
	}
	ks.i = sliceSlabs(ks.i, ks.ib, k.NInt, n)
	ks.f = sliceSlabs(ks.f, ks.fb, k.NReal, n)
	ks.b = sliceSlabs(ks.b, ks.bb, k.NBool, n)
	if cap(ks.stepCounts) < k.NBool {
		ks.stepCounts = make([]int64, k.NBool)
	}
	ks.stepCounts = ks.stepCounts[:k.NBool]
}

func sliceSlabs[T any](dst [][]T, back []T, slabs, n int) [][]T {
	dst = dst[:0]
	for s := 0; s < slabs; s++ {
		dst = append(dst, back[s*n:(s+1)*n])
	}
	return dst
}

// kAdvance follows one link of the gather chain. NULL propagates
// (speculative traversability, §3.2 — the scalar engines' OpLoadNode
// does the same); an empty pointer array faults the strip so the
// scalar path can raise its index error.
func kAdvance(cur *Node, off int32) (*Node, error) {
	if cur == nil {
		return nil, nil
	}
	arr := cur.parr[off]
	if len(arr) == 0 {
		return nil, errKernelFault
	}
	return arr[0], nil
}

// bcForallKernel tries to run one parallel loop as a vectorized strip.
// It reports whether the strip completed on the vector path; false
// means nothing observable happened (no heap writes, no accounting)
// and the caller must run the scalar path.
func (ip *Interp) bcForallKernel(f *bytecode.Func, fr *bcFrame, site *bytecode.ForallSite, pos lang.Pos, lo, hi int64) bool {
	kern := site.Kernel
	n := hi - lo + 1
	lanes := int(n)
	if int64(lanes) != n {
		return false
	}
	// Pre-checks: any condition under which the strip could hit a
	// budget or cancellation mid-flight routes to the scalar path,
	// which raises the exact error at the exact statement.
	if ip.cdepth > ip.maxDepth {
		return false
	}
	if ip.ctx != nil && ip.ctx.Err() != nil {
		return false
	}
	// Per lane k the strip prologue (helper call, skip loop, NULL
	// guard) charges 3+2k steps; the body at most NSteps more.
	prologueSteps := 3*n + (lo+hi)*n
	bound := prologueSteps + int64(kern.NSteps)*n
	if ip.sh.steps.Load()+ip.stepsLocal+bound > ip.maxSteps {
		return false
	}

	ks := ip.kern
	if ks == nil {
		ks = &kernState{}
		ip.kern = ks
	}
	ks.ensure(kern, lanes)
	args := f.Calls[kern.CallSite].Args

	gather := func() error {
		// One chain walk: lane j's node is advance^(lo+j) of the
		// caller's element argument.
		cur := fr.n[args[1].Idx]
		var err error
		for s := int64(0); s < lo; s++ {
			if cur, err = kAdvance(cur, kern.AdvanceOff); err != nil {
				return err
			}
		}
		root := ks.b[kern.RootMask]
		for j := 0; j < lanes; j++ {
			ks.nodes[j] = cur
			root[j] = cur != nil
			if j+1 < lanes {
				if cur, err = kAdvance(cur, kern.AdvanceOff); err != nil {
					return err
				}
			}
		}
		// Field-major copy over the recorded nodes: one bank dispatch
		// per field, not per field per lane.
		for _, fld := range kern.Fields {
			switch fld.Bank {
			case bytecode.BankInt:
				s := ks.i[fld.Slab]
				for j, nd := range ks.nodes {
					if nd != nil {
						s[j] = nd.vals[fld.Off].I
					}
				}
			case bytecode.BankReal:
				s := ks.f[fld.Slab]
				for j, nd := range ks.nodes {
					if nd != nil {
						s[j] = nd.vals[fld.Off].F
					}
				}
			case bytecode.BankBool:
				s := ks.b[fld.Slab]
				for j, nd := range ks.nodes {
					if nd != nil {
						s[j] = nd.vals[fld.Off].B
					}
				}
			}
		}
		// Broadcast the free arguments: variables read the caller
		// register named by the call site's argument list; literal
		// arguments were folded into kconst entries at lowering (their
		// caller registers are only written by body code the kernel
		// path never runs, so they cannot be read here).
		for _, in := range kern.Prologue {
			switch in.Op {
			case bytecode.KParamInt:
				v := fr.i[args[in.B].Idx]
				s := ks.i[in.A]
				for j := range s {
					s[j] = v
				}
			case bytecode.KParamReal:
				v := fr.f[args[in.B].Idx]
				s := ks.f[in.A]
				for j := range s {
					s[j] = v
				}
			case bytecode.KParamBool:
				v := fr.b[args[in.B].Idx]
				s := ks.b[in.A]
				for j := range s {
					s[j] = v
				}
			case bytecode.KConstInt:
				s := ks.i[in.A]
				for j := range s {
					s[j] = in.Imm
				}
			case bytecode.KConstReal:
				s := ks.f[in.A]
				for j := range s {
					s[j] = in.Fv
				}
			case bytecode.KConstBool:
				v := in.Imm != 0
				s := ks.b[in.A]
				for j := range s {
					s[j] = v
				}
			}
		}
		return nil
	}

	compute := func(clo, chi int) error {
		return ks.compute(kern.Code, clo, chi)
	}

	scatter := func() error {
		// Commit the strip's exact step total: the closed-form
		// prologue plus each body statement's active-lane popcount.
		// Masks are single-assignment (every `if` refines into fresh
		// slabs), so counting after compute is exact. The conservative
		// pre-check above already proved the total fits the budget.
		total := prologueSteps
		counts := ks.stepCounts
		for i := range counts {
			counts[i] = 0
		}
		for _, in := range kern.Code {
			if in.Op == bytecode.KStep {
				counts[in.M]++
			}
		}
		for mi, c := range counts {
			if c == 0 {
				continue
			}
			var pop int64
			for _, active := range ks.b[mi] {
				if active {
					pop++
				}
			}
			total += c * pop
		}
		ip.sh.steps.Add(total)
		root := ks.b[kern.RootMask]
		// Writes update Kind and the data word in place rather than
		// assigning a fresh Value: a typed data field invariantly holds
		// its own kind with every other union member zero, so the end
		// state is identical to IntVal/RealVal/BoolVal assignment — minus
		// the write barrier the Value's pointer members would force.
		for _, fld := range kern.Fields {
			if !fld.Stored {
				continue
			}
			switch fld.Bank {
			case bytecode.BankInt:
				s := ks.i[fld.Slab]
				for j := 0; j < lanes; j++ {
					if root[j] {
						v := &ks.nodes[j].vals[fld.Off]
						v.Kind = KindInt
						v.I = s[j]
					}
				}
			case bytecode.BankReal:
				s := ks.f[fld.Slab]
				for j := 0; j < lanes; j++ {
					if root[j] {
						v := &ks.nodes[j].vals[fld.Off]
						v.Kind = KindReal
						v.F = s[j]
					}
				}
			case bytecode.BankBool:
				s := ks.b[fld.Slab]
				for j := 0; j < lanes; j++ {
					if root[j] {
						v := &ks.nodes[j].vals[fld.Off]
						v.Kind = KindBool
						v.B = s[j]
					}
				}
			}
		}
		return nil
	}

	if ip.cfg.Strip != nil {
		return ip.cfg.Strip(pos, lanes, KernelStrip{Gather: gather, Compute: compute, Scatter: scatter}) == nil
	}
	if gather() != nil {
		return false
	}
	if compute(0, lanes) != nil {
		return false
	}
	scatter()
	return true
}

// compute executes the kernel body over the lane range [lo, hi). Every
// op is elementwise over its own range, so disjoint ranges run
// concurrently without synchronization. Ops with no execution mask
// (temp destinations, mask combiners) run whole-slab; the rest test
// their governing mask per lane.
func (ks *kernState) compute(code []bytecode.KInstr, lo, hi int) error {
	for _, in := range code {
		switch in.Op {
		case bytecode.KStep:
			// Accounted at scatter time from the final masks.

		case bytecode.KConstInt:
			a := ks.i[in.A]
			if in.M < 0 {
				av := a[lo:hi]
				for j := range av {
					av[j] = in.Imm
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = in.Imm
				}
			}
		case bytecode.KConstReal:
			a := ks.f[in.A]
			if in.M < 0 {
				av := a[lo:hi]
				for j := range av {
					av[j] = in.Fv
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = in.Fv
				}
			}
		case bytecode.KConstBool:
			a := ks.b[in.A]
			v := in.Imm != 0
			if in.M < 0 {
				av := a[lo:hi]
				for j := range av {
					av[j] = v
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = v
				}
			}
		case bytecode.KMovInt:
			a, b := ks.i[in.A], ks.i[in.B]
			if in.M < 0 {
				av, bv := a[lo:hi], b[lo:hi]
				for j := range av {
					av[j] = bv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j]
				}
			}
		case bytecode.KMovReal:
			a, b := ks.f[in.A], ks.f[in.B]
			if in.M < 0 {
				av, bv := a[lo:hi], b[lo:hi]
				for j := range av {
					av[j] = bv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j]
				}
			}
		case bytecode.KMovBool:
			a, b := ks.b[in.A], ks.b[in.B]
			if in.M < 0 {
				av, bv := a[lo:hi], b[lo:hi]
				for j := range av {
					av[j] = bv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j]
				}
			}
		case bytecode.KIntToReal:
			a, b := ks.f[in.A], ks.i[in.B]
			if in.M < 0 {
				av, bv := a[lo:hi], b[lo:hi]
				for j := range av {
					av[j] = float64(bv[j])
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = float64(b[j])
				}
			}

		case bytecode.KAddInt:
			a, b, c := ks.i[in.A], ks.i[in.B], ks.i[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] + cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] + c[j]
				}
			}
		case bytecode.KSubInt:
			a, b, c := ks.i[in.A], ks.i[in.B], ks.i[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] - cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] - c[j]
				}
			}
		case bytecode.KMulInt:
			a, b, c := ks.i[in.A], ks.i[in.B], ks.i[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] * cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] * c[j]
				}
			}
		case bytecode.KDivInt:
			a, b, c, m := ks.i[in.A], ks.i[in.B], ks.i[in.C], ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					if c[j] == 0 {
						return errKernelFault
					}
					a[j] = b[j] / c[j]
				}
			}
		case bytecode.KModInt:
			a, b, c, m := ks.i[in.A], ks.i[in.B], ks.i[in.C], ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					if c[j] == 0 {
						return errKernelFault
					}
					a[j] = b[j] % c[j]
				}
			}
		case bytecode.KNegInt:
			a, b := ks.i[in.A], ks.i[in.B]
			if in.M < 0 {
				av, bv := a[lo:hi], b[lo:hi]
				for j := range av {
					av[j] = -bv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = -b[j]
				}
			}
		case bytecode.KEqInt:
			a, b, c := ks.b[in.A], ks.i[in.B], ks.i[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] == cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] == c[j]
				}
			}
		case bytecode.KNeInt:
			a, b, c := ks.b[in.A], ks.i[in.B], ks.i[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] != cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] != c[j]
				}
			}
		case bytecode.KLtInt:
			a, b, c := ks.b[in.A], ks.i[in.B], ks.i[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] < cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] < c[j]
				}
			}
		case bytecode.KLeInt:
			a, b, c := ks.b[in.A], ks.i[in.B], ks.i[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] <= cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] <= c[j]
				}
			}
		case bytecode.KGtInt:
			a, b, c := ks.b[in.A], ks.i[in.B], ks.i[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] > cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] > c[j]
				}
			}
		case bytecode.KGeInt:
			a, b, c := ks.b[in.A], ks.i[in.B], ks.i[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] >= cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] >= c[j]
				}
			}

		case bytecode.KAddReal:
			a, b, c := ks.f[in.A], ks.f[in.B], ks.f[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] + cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] + c[j]
				}
			}
		case bytecode.KSubReal:
			a, b, c := ks.f[in.A], ks.f[in.B], ks.f[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] - cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] - c[j]
				}
			}
		case bytecode.KMulReal:
			a, b, c := ks.f[in.A], ks.f[in.B], ks.f[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] * cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] * c[j]
				}
			}
		case bytecode.KDivReal:
			a, b, c := ks.f[in.A], ks.f[in.B], ks.f[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] / cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] / c[j]
				}
			}
		case bytecode.KNegReal:
			a, b := ks.f[in.A], ks.f[in.B]
			if in.M < 0 {
				av, bv := a[lo:hi], b[lo:hi]
				for j := range av {
					av[j] = -bv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = -b[j]
				}
			}
		case bytecode.KEqReal:
			a, b, c := ks.b[in.A], ks.f[in.B], ks.f[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] == cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] == c[j]
				}
			}
		case bytecode.KNeReal:
			a, b, c := ks.b[in.A], ks.f[in.B], ks.f[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] != cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] != c[j]
				}
			}
		case bytecode.KLtReal:
			a, b, c := ks.b[in.A], ks.f[in.B], ks.f[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] < cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] < c[j]
				}
			}
		case bytecode.KLeReal:
			a, b, c := ks.b[in.A], ks.f[in.B], ks.f[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] <= cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] <= c[j]
				}
			}
		case bytecode.KGtReal:
			a, b, c := ks.b[in.A], ks.f[in.B], ks.f[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] > cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] > c[j]
				}
			}
		case bytecode.KGeReal:
			a, b, c := ks.b[in.A], ks.f[in.B], ks.f[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] >= cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] >= c[j]
				}
			}

		case bytecode.KNot:
			a, b := ks.b[in.A], ks.b[in.B]
			if in.M < 0 {
				av, bv := a[lo:hi], b[lo:hi]
				for j := range av {
					av[j] = !bv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = !b[j]
				}
			}
		case bytecode.KEqBool:
			a, b, c := ks.b[in.A], ks.b[in.B], ks.b[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] == cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] == c[j]
				}
			}
		case bytecode.KNeBool:
			a, b, c := ks.b[in.A], ks.b[in.B], ks.b[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] != cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] != c[j]
				}
			}
		case bytecode.KAndBool:
			a, b, c := ks.b[in.A], ks.b[in.B], ks.b[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] && cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] && c[j]
				}
			}
		case bytecode.KOrBool:
			a, b, c := ks.b[in.A], ks.b[in.B], ks.b[in.C]
			if in.M < 0 {
				av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
				for j := range av {
					av[j] = bv[j] || cv[j]
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = b[j] || c[j]
				}
			}

		case bytecode.KSqrt:
			a, b := ks.f[in.A], ks.f[in.B]
			if in.M < 0 {
				av, bv := a[lo:hi], b[lo:hi]
				for j := range av {
					av[j] = math.Sqrt(bv[j])
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = math.Sqrt(b[j])
				}
			}
		case bytecode.KAbs:
			a, b := ks.f[in.A], ks.f[in.B]
			if in.M < 0 {
				av, bv := a[lo:hi], b[lo:hi]
				for j := range av {
					av[j] = math.Abs(bv[j])
				}
				continue
			}
			m := ks.b[in.M]
			for j := lo; j < hi; j++ {
				if m[j] {
					a[j] = math.Abs(b[j])
				}
			}

		case bytecode.KMaskAnd:
			// Unmasked by construction: a false parent lane forces false
			// regardless of the cond slab's (possibly stale) content there.
			a, b, c := ks.b[in.A], ks.b[in.B], ks.b[in.C]
			av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
			for j := range av {
				av[j] = bv[j] && cv[j]
			}
		case bytecode.KMaskAndNot:
			a, b, c := ks.b[in.A], ks.b[in.B], ks.b[in.C]
			av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
			for j := range av {
				av[j] = bv[j] && !cv[j]
			}

		default:
			return errKernelFault
		}
	}
	return nil
}
