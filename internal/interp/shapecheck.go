package interp

import (
	"fmt"

	"repro/internal/adds"
	"repro/internal/lang"
)

// Runtime shape checking implements the paper's §2.2 suggestion that
// ADDS declarations let "the compiler ... generate run-time checks for
// the proper use of dynamic data structures" (and footnote 5's
// debugging switch). When Config.ShapeChecks is on, every pointer
// store is checked against the stored-into field's ADDS annotation:
//
//   - sharing: a store that gives a node a second in-edge along a
//     uniquely-forward dimension;
//   - cycle: a store that closes a cycle along a declared-forward
//     (acyclic) direction, detected by a bounded walk.
//
// Violations are recorded (see ShapeViolations); with
// ShapeChecksFatal they abort execution instead, which is the
// behaviour a debugging build would want.

// ShapeViolation is one runtime shape-check failure.
type ShapeViolation struct {
	Pos  lang.Pos
	Kind string // "sharing" or "cycle"
	Type string
	Dim  string
}

// String renders "3:5: runtime sharing of Octree along down".
func (v ShapeViolation) String() string {
	return fmt.Sprintf("%s: runtime %s of %s along %s", v.Pos, v.Kind, v.Type, v.Dim)
}

// ShapeViolations returns the runtime shape-check log.
func (ip *Interp) ShapeViolations() []ShapeViolation {
	ip.sh.shapeMu.Lock()
	defer ip.sh.shapeMu.Unlock()
	out := make([]ShapeViolation, len(ip.sh.shapeLog))
	copy(out, ip.sh.shapeLog)
	return out
}

func (ip *Interp) recordShape(v ShapeViolation) error {
	ip.sh.shapeMu.Lock()
	ip.sh.shapeLog = append(ip.sh.shapeLog, v)
	ip.sh.shapeMu.Unlock()
	if ip.cfg.ShapeChecksFatal {
		return fmt.Errorf("interp: %s", v)
	}
	return nil
}

// checkStore validates the store node.field[idx] = target against the
// field's ADDS annotation. old is the edge's previous target.
func (ip *Interp) checkStore(pos lang.Pos, node *Node, field string, old, target *Node) error {
	decl := ip.prog.Universe.Decl(node.Type)
	if decl == nil {
		return nil
	}
	pf := decl.Pointer(field)
	if pf == nil || pf.Dir != adds.Forward {
		return nil
	}

	// Uniqueness: maintain per-dimension in-edge counts.
	if pf.Unique {
		if old != nil {
			ip.sh.shapeMu.Lock()
			if old.inEdges != nil {
				old.inEdges[pf.Dim]--
			}
			ip.sh.shapeMu.Unlock()
		}
		if target != nil {
			ip.sh.shapeMu.Lock()
			if target.inEdges == nil {
				target.inEdges = map[string]int{}
			}
			target.inEdges[pf.Dim]++
			count := target.inEdges[pf.Dim]
			ip.sh.shapeMu.Unlock()
			if count > 1 {
				if err := ip.recordShape(ShapeViolation{
					Pos: pos, Kind: "sharing", Type: node.Type, Dim: pf.Dim,
				}); err != nil {
					return err
				}
			}
		}
	}

	// Acyclicity: does the new edge close a forward cycle along the
	// dimension? Bounded DFS from target through forward fields.
	if target != nil && ip.reachesForward(target, node, pf.Dim, ip.cfg.ShapeWalkLimit) {
		if err := ip.recordShape(ShapeViolation{
			Pos: pos, Kind: "cycle", Type: node.Type, Dim: pf.Dim,
		}); err != nil {
			return err
		}
	}
	return nil
}

// reachesForward reports whether dst is reachable from src by following
// forward fields along dim, visiting at most limit nodes.
func (ip *Interp) reachesForward(src, dst *Node, dim string, limit int) bool {
	if limit <= 0 {
		limit = 100000
	}
	seen := map[*Node]bool{}
	stack := []*Node{src}
	for len(stack) > 0 && len(seen) < limit {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == dst {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		decl := ip.prog.Universe.Decl(n.Type)
		if decl == nil {
			continue
		}
		for _, pf := range decl.FieldsAlong(dim, adds.Forward) {
			for _, next := range n.Ptrs[pf.Name] {
				if next != nil {
					stack = append(stack, next)
				}
			}
		}
	}
	return false
}
