// The compiled engine: executes the slot-resolved IR built by
// internal/compile as a tree of pre-bound Go closures.
//
// Where the tree-walker (interp.go) resolves names at every step —
// map-chain scope lookups per variable, field-name hashing per heap
// access, function lookup per call, an interface type switch per AST
// node — the compiled engine does all of that once, at build time:
// variables are frame-slice indices, fields are record offsets
// (Node.vals / Node.parr), calls are direct *compiledFunc references,
// and forking a frame for a parallel iteration is a single slice copy
// instead of the walker's frame.snapshot map rebuild.
//
// The two engines are semantically interchangeable by construction:
// every closure below charges the same CostModel amounts at the same
// dynamic operations and counts the same statements as the walker, so
// results, printed output, allocation ids, and — critically — the
// Simulated mode's cycle accounting (including simulatedForall's
// per-iteration rewind) are bit-identical. The engine equivalence
// suite and FuzzCompileVsWalk enforce this; the walker stays around
// precisely to be that oracle.
//
// The one intentional accounting difference is *step batching*: the
// walker bumps the shared atomic step counter per statement, while the
// compiled engine batches stepFlushChunk statements per flush so that
// parallel workers do not contend on one cache line every statement.
// Totals are identical at every quiescent point (Call return, forall
// iteration end); only the instant at which a MaxSteps overrun is
// detected moves by up to one chunk.
package interp

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/compile"
	"repro/internal/lang"
)

// cExpr evaluates one compiled expression on a frame.
type cExpr func(ip *Interp, fr []Value) (Value, error)

// cStmt executes one compiled statement on a frame.
type cStmt func(ip *Interp, fr []Value) (ctrl, Value, error)

// compiledFunc is one function's closure code.
type compiledFunc struct {
	name   string
	slots  int
	params []compile.Param
	result lang.Type
	body   []cStmt
}

// compiledProg is a program's closure code, shared by every Interp
// (and fork) running the same *lang.Program. The compile.Program IR
// is not retained: closures capture exactly what they need, so the IR
// is garbage once codegen finishes.
type compiledProg struct {
	funcs  []*compiledFunc
	byName map[string]*compiledFunc
}

// ---------------------------------------------------------------------------
// Code cache

// codeCacheEntry holds both backends' artifacts for one program,
// built from a single compile.Compile pass: the closure code and the
// flat bytecode. Building both eagerly keeps the serving layer's
// zero-compile-on-hit contract engine-independent — a cached program
// never compiles again no matter which engine a request selects.
type codeCacheEntry struct {
	code  *compiledProg
	err   error
	bc    *bytecode.Program
	bcErr error
}

// codeCache memoizes closure code per program so that repeated
// interp.New calls (benchmarks, the parexec pool, table sweeps) reuse
// one build. codeCacheLimit bounds it for workloads that compile
// unbounded fresh programs (the fuzzers).
var (
	codeCache     sync.Map // *lang.Program -> *codeCacheEntry
	codeCacheSize atomic.Int64
)

const codeCacheLimit = 512

// compileBuilds counts closure-code builds (misses in the per-program
// code cache). Observability for the serving layer's contract that a
// cache-hit request does zero compile work: internal/serve's tests
// assert the count stays flat across hot requests.
var compileBuilds atomic.Int64

// CompileCount reports how many times closure code has been built
// (process-wide). Cache hits in the per-program code cache do not move
// it.
func CompileCount() int64 { return compileBuilds.Load() }

// Precompile builds and memoizes the compiled engine's closure code
// for prog, so that subsequent New calls with Config.Engine ==
// EngineCompiled skip compilation entirely.
func Precompile(prog *lang.Program) error {
	return compiledFor(prog).err
}

// CompiledProgram pins a program's closure code: unlike the bounded
// per-program code cache (which evicts arbitrarily past
// codeCacheLimit), a handle keeps its code alive for as long as the
// holder does. Long-lived caches — internal/serve's program cache —
// store one per entry, so a cache hit can never recompile no matter
// how much cold traffic churns the code cache underneath. Immutable
// and safe for concurrent use, like everything it references.
type CompiledProgram struct {
	prog *lang.Program
	code *compiledProg
	err  error
	// bc / bcErr pin the bytecode backend's artifact alongside the
	// closures, so the bytecode engine shares the no-recompile
	// guarantee.
	bc    *bytecode.Program
	bcErr error
}

// CompileProgram builds (or reuses) the closure code for prog and
// returns the pinning handle. Err reports a front-end failure.
func CompileProgram(prog *lang.Program) *CompiledProgram {
	e := compiledFor(prog)
	return &CompiledProgram{prog: prog, code: e.code, err: e.err, bc: e.bc, bcErr: e.bcErr}
}

// Err reports why compilation failed (nil on success).
func (cp *CompiledProgram) Err() error { return cp.err }

// Program returns the source program the handle was built from.
func (cp *CompiledProgram) Program() *lang.Program { return cp.prog }

// NewCompiled creates an interpreter over a pinned compiled program.
// Equivalent to New(cp.Program(), cfg) except that the closure code
// comes from the handle, never the code cache — the serving layer's
// hot path. The walk engine ignores the pinned code and walks the AST
// as usual.
func NewCompiled(cp *CompiledProgram, cfg Config) *Interp {
	ip := newInterp(cp.prog, cfg)
	ip.code, ip.compileErr = cp.code, cp.err
	ip.bc, ip.bcErr = cp.bc, cp.bcErr
	return ip
}

// RunCompiled is Run over a pinned compiled program.
func RunCompiled(cp *CompiledProgram, cfg Config, fn string, args ...Value) (Value, Stats, error) {
	ip := NewCompiled(cp, cfg)
	v, err := ip.Call(fn, args...)
	return v, ip.Stats(), err
}

func compiledFor(prog *lang.Program) *codeCacheEntry {
	if v, ok := codeCache.Load(prog); ok {
		return v.(*codeCacheEntry)
	}
	entry := buildCompiled(prog)
	if v, loaded := codeCache.LoadOrStore(prog, entry); loaded {
		// Another goroutine built the same program first; use its copy
		// so the size counter tracks distinct entries only.
		return v.(*codeCacheEntry)
	}
	if codeCacheSize.Add(1) > codeCacheLimit {
		// Evict one arbitrary entry — but never the one just inserted,
		// which is about to be hot — rather than flushing the whole
		// cache: other programs stay compiled and the counter stays
		// exact under concurrent inserts.
		codeCache.Range(func(k, _ any) bool {
			if k == any(prog) {
				return true
			}
			codeCache.Delete(k)
			codeCacheSize.Add(-1)
			return false
		})
	}
	return entry
}

// buildCompiled lowers prog once (compile.Compile) and builds both
// backends from the shared IR: the closure tree and the flat bytecode.
func buildCompiled(prog *lang.Program) *codeCacheEntry {
	compileBuilds.Add(1)
	cp, err := compile.Compile(prog)
	if err != nil {
		return &codeCacheEntry{err: err, bcErr: err}
	}
	cc := &compiledProg{byName: make(map[string]*compiledFunc, len(cp.Funcs))}
	for _, f := range cp.Funcs {
		cf := &compiledFunc{name: f.Name, slots: f.Slots, params: f.Params, result: f.Result}
		cc.funcs = append(cc.funcs, cf)
		cc.byName[f.Name] = cf
	}
	g := &codegen{cc: cc}
	for i, f := range cp.Funcs {
		cc.funcs[i].body = g.seq(f.Body)
	}
	bc, bcErr := bytecode.Compile(cp)
	return &codeCacheEntry{code: cc, bc: bc, bcErr: bcErr}
}

// ---------------------------------------------------------------------------
// Execution

// callCompiled is the external entry (Interp.Call): bind arguments
// into a fresh frame and run.
func (ip *Interp) callCompiled(cf *compiledFunc, args []Value) (Value, error) {
	fr := ip.getFrame(cf.slots)
	for i, prm := range cf.params {
		fr[prm.Slot] = coerce(args[i], prm.Type)
	}
	return ip.callFrame(cf, fr)
}

// callFrame mirrors callFunc over an already-bound frame, returning
// the frame to the pool when the call completes. The recursion guard
// uses the Interp's live call depth (each Interp runs one call chain
// at a time; parallel iterations run on forks with their own depth).
func (ip *Interp) callFrame(cf *compiledFunc, fr []Value) (Value, error) {
	if ip.cdepth > ip.maxDepth {
		ip.putFrame(fr)
		return Value{}, fmt.Errorf("interp: recursion depth exceeded in %s", cf.name)
	}
	ip.charge(ip.cfg.Costs.CallOver)
	ip.cdepth++
	c, rv, err := runSeq(ip, fr, cf.body)
	ip.cdepth--
	ip.putFrame(fr)
	if err != nil {
		return Value{}, err
	}
	if c == ctrlReturn {
		if cf.result != nil {
			return coerce(rv, cf.result), nil
		}
		return Value{}, nil
	}
	if cf.result != nil {
		return Value{}, fmt.Errorf("interp: function %s fell off the end without returning", cf.name)
	}
	return Value{}, nil
}

// runSeq executes a statement sequence (a block body) on a frame.
func runSeq(ip *Interp, fr []Value, body []cStmt) (ctrl, Value, error) {
	for _, st := range body {
		c, rv, err := st(ip, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		if c == ctrlReturn {
			return c, rv, nil
		}
	}
	return ctrlNext, Value{}, nil
}

// ---------------------------------------------------------------------------
// Codegen

type codegen struct {
	cc *compiledProg
}

func (g *codegen) seq(stmts []compile.Stmt) []cStmt {
	out := make([]cStmt, len(stmts))
	for i, s := range stmts {
		out[i] = g.stmt(s)
	}
	return out
}

func (g *codegen) stmt(s compile.Stmt) cStmt {
	pos := s.Pos()
	switch s := s.(type) {
	case *compile.Block:
		body := g.seq(s.Stmts)
		return func(ip *Interp, fr []Value) (ctrl, Value, error) {
			if err := ip.stepC(pos); err != nil {
				return ctrlNext, Value{}, err
			}
			return runSeq(ip, fr, body)
		}

	case *compile.VarSet:
		slot := s.Slot
		typ := s.Type
		zero := zeroValue(typ)
		if s.Init == nil {
			return func(ip *Interp, fr []Value) (ctrl, Value, error) {
				if err := ip.stepC(pos); err != nil {
					return ctrlNext, Value{}, err
				}
				ip.charge(ip.cfg.Costs.VarAccess)
				fr[slot] = zero
				return ctrlNext, Value{}, nil
			}
		}
		init := g.expr(s.Init)
		return func(ip *Interp, fr []Value) (ctrl, Value, error) {
			if err := ip.stepC(pos); err != nil {
				return ctrlNext, Value{}, err
			}
			iv, err := init(ip, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			ip.charge(ip.cfg.Costs.VarAccess)
			fr[slot] = coerce(iv, typ)
			return ctrlNext, Value{}, nil
		}

	case *compile.AssignSlot:
		slot := s.Slot
		typ := s.Type
		rhs := g.expr(s.RHS)
		return func(ip *Interp, fr []Value) (ctrl, Value, error) {
			if err := ip.stepC(pos); err != nil {
				return ctrlNext, Value{}, err
			}
			rv, err := rhs(ip, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			ip.charge(ip.cfg.Costs.VarAccess)
			fr[slot] = coerce(rv, typ)
			return ctrlNext, Value{}, nil
		}

	case *compile.StoreField:
		return g.storeField(s)

	case *compile.While:
		cond := g.expr(s.Cond)
		body := g.seq(s.Body)
		return func(ip *Interp, fr []Value) (ctrl, Value, error) {
			if err := ip.stepC(pos); err != nil {
				return ctrlNext, Value{}, err
			}
			for {
				cv, err := cond(ip, fr)
				if err != nil {
					return ctrlNext, Value{}, err
				}
				ip.charge(ip.cfg.Costs.Branch)
				if !cv.B {
					return ctrlNext, Value{}, nil
				}
				c, rv, err := runSeq(ip, fr, body)
				if err != nil {
					return ctrlNext, Value{}, err
				}
				if c == ctrlReturn {
					return c, rv, nil
				}
				if err := ip.stepC(pos); err != nil {
					return ctrlNext, Value{}, err
				}
			}
		}

	case *compile.If:
		cond := g.expr(s.Cond)
		then := g.seq(s.Then)
		var els []cStmt
		hasElse := s.Else != nil
		if hasElse {
			els = g.seq(s.Else)
		}
		return func(ip *Interp, fr []Value) (ctrl, Value, error) {
			if err := ip.stepC(pos); err != nil {
				return ctrlNext, Value{}, err
			}
			cv, err := cond(ip, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			ip.charge(ip.cfg.Costs.Branch)
			if cv.B {
				return runSeq(ip, fr, then)
			}
			if hasElse {
				return runSeq(ip, fr, els)
			}
			return ctrlNext, Value{}, nil
		}

	case *compile.Return:
		if s.Value == nil {
			return func(ip *Interp, fr []Value) (ctrl, Value, error) {
				if err := ip.stepC(pos); err != nil {
					return ctrlNext, Value{}, err
				}
				return ctrlReturn, Value{}, nil
			}
		}
		val := g.expr(s.Value)
		return func(ip *Interp, fr []Value) (ctrl, Value, error) {
			if err := ip.stepC(pos); err != nil {
				return ctrlNext, Value{}, err
			}
			v, err := val(ip, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			return ctrlReturn, v, nil
		}

	case *compile.CallStmt:
		call := g.expr(s.Call)
		return func(ip *Interp, fr []Value) (ctrl, Value, error) {
			if err := ip.stepC(pos); err != nil {
				return ctrlNext, Value{}, err
			}
			_, err := call(ip, fr)
			return ctrlNext, Value{}, err
		}

	case *compile.For:
		return g.forStmt(s)
	}
	panic(fmt.Sprintf("interp: codegen: unknown statement %T", s))
}

func (g *codegen) storeField(s *compile.StoreField) cStmt {
	pos := s.Pos()
	rhs := g.expr(s.RHS)
	base := g.expr(s.Base)
	off := s.Off
	field := s.Field
	typ := s.Type
	if s.IsPtr {
		var index cExpr
		if s.Index != nil {
			index = g.expr(s.Index)
		}
		return func(ip *Interp, fr []Value) (ctrl, Value, error) {
			if err := ip.stepC(pos); err != nil {
				return ctrlNext, Value{}, err
			}
			rv, err := rhs(ip, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			bv, err := base(ip, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			if bv.N == nil {
				return ctrlNext, Value{}, fmt.Errorf("%s: interp: store through NULL pointer", pos)
			}
			ip.charge(ip.cfg.Costs.FieldStore)
			node := bv.N
			idx := 0
			if index != nil {
				iv, err := index(ip, fr)
				if err != nil {
					return ctrlNext, Value{}, err
				}
				idx = int(iv.I)
			}
			arr := node.parr[off]
			if idx < 0 || idx >= len(arr) {
				return ctrlNext, Value{}, fmt.Errorf("%s: interp: index %d out of range for %s.%s[%d]", pos, idx, node.Type, field, len(arr))
			}
			old := arr[idx]
			arr[idx] = rv.N
			if ip.cfg.ShapeChecks {
				return ctrlNext, Value{}, ip.checkStore(pos, node, field, old, rv.N)
			}
			return ctrlNext, Value{}, nil
		}
	}
	// Data store with a variable base (the normalized common case):
	// fold the base slot read into the store closure.
	if sr, ok := s.Base.(*compile.SlotRef); ok {
		slot := sr.Slot
		return func(ip *Interp, fr []Value) (ctrl, Value, error) {
			if err := ip.stepC(pos); err != nil {
				return ctrlNext, Value{}, err
			}
			rv, err := rhs(ip, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			ip.charge(ip.cfg.Costs.VarAccess)
			n := fr[slot].N
			if n == nil {
				return ctrlNext, Value{}, fmt.Errorf("%s: interp: store through NULL pointer", pos)
			}
			ip.charge(ip.cfg.Costs.FieldStore)
			n.vals[off] = coerce(rv, typ)
			return ctrlNext, Value{}, nil
		}
	}
	return func(ip *Interp, fr []Value) (ctrl, Value, error) {
		if err := ip.stepC(pos); err != nil {
			return ctrlNext, Value{}, err
		}
		rv, err := rhs(ip, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		bv, err := base(ip, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		if bv.N == nil {
			return ctrlNext, Value{}, fmt.Errorf("%s: interp: store through NULL pointer", pos)
		}
		ip.charge(ip.cfg.Costs.FieldStore)
		bv.N.vals[off] = coerce(rv, typ)
		return ctrlNext, Value{}, nil
	}
}

func (g *codegen) forStmt(s *compile.For) cStmt {
	pos := s.Pos()
	from := g.expr(s.From)
	to := g.expr(s.To)
	body := g.seq(s.Body)
	slot := s.Slot

	if !s.Parallel {
		return func(ip *Interp, fr []Value) (ctrl, Value, error) {
			if err := ip.stepC(pos); err != nil {
				return ctrlNext, Value{}, err
			}
			fromV, err := from(ip, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			toV, err := to(ip, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			stepCost := ip.cfg.Costs.Branch + ip.cfg.Costs.IntOp
			for k := fromV.I; k <= toV.I; k++ {
				fr[slot] = IntVal(k)
				c, rv, err := runSeq(ip, fr, body)
				if err != nil {
					return ctrlNext, Value{}, err
				}
				if c == ctrlReturn {
					return c, rv, nil
				}
				ip.charge(stepCost)
				// One step per trip, mirroring the walker's guard.
				if err := ip.stepC(pos); err != nil {
					return ctrlNext, Value{}, err
				}
			}
			return ctrlNext, Value{}, nil
		}
	}

	return func(ip *Interp, fr []Value) (ctrl, Value, error) {
		if err := ip.stepC(pos); err != nil {
			return ctrlNext, Value{}, err
		}
		fromV, err := from(ip, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		toV, err := to(ip, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		lo, hi := fromV.I, toV.I
		n := hi - lo + 1
		if n <= 0 {
			return ctrlNext, Value{}, nil
		}
		if ip.cfg.Mode == Simulated {
			return ctrlNext, Value{}, simForallC(ip, fr, body, slot, pos, lo, hi)
		}

		// The forall executes inside the enclosing function's call, so
		// iterations must see the same remaining recursion budget the
		// walker gives them (it threads the enclosing depth into every
		// iteration); workers seed their live depth from it.
		depth := ip.cdepth

		// Real mode with an installed scheduler (parexec's worker
		// pool): iterations run on worker forks; the slot frame makes
		// the per-iteration fork one slice copy.
		if ip.cfg.Forall != nil {
			run := func(w *Interp, k int64) error {
				nf := make([]Value, len(fr))
				copy(nf, fr)
				nf[slot] = IntVal(k)
				w.cdepth = depth
				c, _, err := runSeq(w, nf, body)
				if err == nil && c == ctrlReturn {
					err = fmt.Errorf("%s: interp: return inside forall is not allowed", pos)
				}
				if ferr := w.flushSteps(pos); err == nil && ferr != nil {
					err = ferr
				}
				return err
			}
			return ctrlNext, Value{}, ip.cfg.Forall(pos, lo, hi, run)
		}

		// Real mode default: one goroutine per iteration. Each gets a
		// fork (for its private step batch) and a frame copy.
		var wg sync.WaitGroup
		errs := make([]error, n)
		for k := lo; k <= hi; k++ {
			wg.Add(1)
			go func(k int64) {
				defer wg.Done()
				w := ip.Fork(nil)
				nf := make([]Value, len(fr))
				copy(nf, fr)
				nf[slot] = IntVal(k)
				w.cdepth = depth
				_, _, err := runSeq(w, nf, body)
				if ferr := w.flushSteps(pos); err == nil && ferr != nil {
					err = ferr
				}
				errs[k-lo] = err
			}(k)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return ctrlNext, Value{}, err
			}
		}
		return ctrlNext, Value{}, nil
	}
}

// simForallC is the compiled engine's entry to the shared simForall
// skeleton (see interp.go): set the loop slot and run the closure
// body per iteration, with the batched step guard.
func simForallC(ip *Interp, fr []Value, body []cStmt, slot int, pos lang.Pos, from, to int64) error {
	return ip.simForall(from, to, pos, ip.stepC, func(k int64) (ctrl, error) {
		fr[slot] = IntVal(k)
		c, _, err := runSeq(ip, fr, body)
		return c, err
	})
}

// ---------------------------------------------------------------------------
// Expressions

func (g *codegen) expr(e compile.Expr) cExpr {
	pos := e.Pos()
	switch e := e.(type) {
	case *compile.SlotRef:
		slot := e.Slot
		return func(ip *Interp, fr []Value) (Value, error) {
			ip.charge(ip.cfg.Costs.VarAccess)
			return fr[slot], nil
		}

	case *compile.IntLit:
		v := IntVal(e.Val)
		return func(*Interp, []Value) (Value, error) { return v, nil }
	case *compile.RealLit:
		v := RealVal(e.Val)
		return func(*Interp, []Value) (Value, error) { return v, nil }
	case *compile.StrLit:
		v := StrVal(e.Val)
		return func(*Interp, []Value) (Value, error) { return v, nil }
	case *compile.BoolLit:
		v := BoolVal(e.Val)
		return func(*Interp, []Value) (Value, error) { return v, nil }
	case *compile.NullLit:
		return func(*Interp, []Value) (Value, error) { return NullVal(), nil }

	case *compile.New:
		decl := e.Decl
		typeName := e.TypeName
		return func(ip *Interp, fr []Value) (Value, error) {
			return ip.allocNode(decl, typeName)
		}

	case *compile.Load:
		return g.load(e)

	case *compile.Call:
		return g.callExpr(e)

	case *compile.Bin:
		return g.bin(e)

	case *compile.Un:
		x := g.expr(e.X)
		switch e.Op {
		case lang.MINUS:
			return func(ip *Interp, fr []Value) (Value, error) {
				v, err := x(ip, fr)
				if err != nil {
					return Value{}, err
				}
				if v.Kind == KindInt {
					ip.charge(ip.cfg.Costs.IntOp)
					return IntVal(-v.I), nil
				}
				ip.charge(ip.cfg.Costs.RealOp)
				return RealVal(-v.F), nil
			}
		case lang.NOT:
			return func(ip *Interp, fr []Value) (Value, error) {
				v, err := x(ip, fr)
				if err != nil {
					return Value{}, err
				}
				ip.charge(ip.cfg.Costs.IntOp)
				return BoolVal(!v.B), nil
			}
		}
		panic(fmt.Sprintf("%s: interp: codegen: unknown unary op %s", pos, e.Op))
	}
	panic(fmt.Sprintf("%s: interp: codegen: unknown expression %T", pos, e))
}

func (g *codegen) load(e *compile.Load) cExpr {
	pos := e.Pos()
	off := e.Off
	field := e.Field

	// Normalization guarantees field bases are plain variables; fold
	// the base's slot read into the access closure (one closure call
	// per p->f instead of two; the VarAccess charge stays).
	if sr, ok := e.X.(*compile.SlotRef); ok {
		slot := sr.Slot
		if e.IsPtr && e.Index == nil {
			return func(ip *Interp, fr []Value) (Value, error) {
				ip.charge(ip.cfg.Costs.VarAccess)
				n := fr[slot].N
				if n == nil {
					if !ip.cfg.StrictNull {
						return NullVal(), nil
					}
					return Value{}, fmt.Errorf("%s: interp: field %s read through NULL pointer", pos, field)
				}
				ip.charge(ip.cfg.Costs.FieldLoad)
				arr := n.parr[off]
				if len(arr) == 0 {
					return Value{}, fmt.Errorf("%s: interp: index 0 out of range for %s.%s[0]", pos, n.Type, field)
				}
				return PtrVal(arr[0]), nil
			}
		}
		if !e.IsPtr {
			return func(ip *Interp, fr []Value) (Value, error) {
				ip.charge(ip.cfg.Costs.VarAccess)
				n := fr[slot].N
				if n == nil {
					return Value{}, fmt.Errorf("%s: interp: field %s read through NULL pointer", pos, field)
				}
				ip.charge(ip.cfg.Costs.FieldLoad)
				return n.vals[off], nil
			}
		}
	}

	x := g.expr(e.X)
	if e.IsPtr {
		var index cExpr
		if e.Index != nil {
			index = g.expr(e.Index)
		}
		return func(ip *Interp, fr []Value) (Value, error) {
			bv, err := x(ip, fr)
			if err != nil {
				return Value{}, err
			}
			if bv.N == nil {
				if !ip.cfg.StrictNull {
					// Speculative traversability (§3.2).
					return NullVal(), nil
				}
				return Value{}, fmt.Errorf("%s: interp: field %s read through NULL pointer", pos, field)
			}
			ip.charge(ip.cfg.Costs.FieldLoad)
			node := bv.N
			idx := 0
			if index != nil {
				iv, err := index(ip, fr)
				if err != nil {
					return Value{}, err
				}
				idx = int(iv.I)
			}
			arr := node.parr[off]
			if idx < 0 || idx >= len(arr) {
				return Value{}, fmt.Errorf("%s: interp: index %d out of range for %s.%s[%d]", pos, idx, node.Type, field, len(arr))
			}
			return PtrVal(arr[idx]), nil
		}
	}
	return func(ip *Interp, fr []Value) (Value, error) {
		bv, err := x(ip, fr)
		if err != nil {
			return Value{}, err
		}
		if bv.N == nil {
			return Value{}, fmt.Errorf("%s: interp: field %s read through NULL pointer", pos, field)
		}
		ip.charge(ip.cfg.Costs.FieldLoad)
		return bv.N.vals[off], nil
	}
}

func (g *codegen) callExpr(e *compile.Call) cExpr {
	argFns := make([]cExpr, len(e.Args))
	for i, a := range e.Args {
		argFns[i] = g.expr(a)
	}
	evalArgs := func(ip *Interp, fr []Value) ([]Value, error) {
		args := make([]Value, len(argFns))
		for i, af := range argFns {
			v, err := af(ip, fr)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return args, nil
	}
	switch e.Builtin {
	case compile.BuiltinSqrt:
		arg := argFns[0]
		return func(ip *Interp, fr []Value) (Value, error) {
			v, err := arg(ip, fr)
			if err != nil {
				return Value{}, err
			}
			ip.charge(ip.cfg.Costs.Sqrt)
			return RealVal(math.Sqrt(v.AsReal())), nil
		}
	case compile.BuiltinAbs:
		arg := argFns[0]
		return func(ip *Interp, fr []Value) (Value, error) {
			v, err := arg(ip, fr)
			if err != nil {
				return Value{}, err
			}
			ip.charge(ip.cfg.Costs.RealOp)
			return RealVal(math.Abs(v.AsReal())), nil
		}
	case compile.BuiltinRand:
		return func(ip *Interp, fr []Value) (Value, error) {
			ip.charge(ip.cfg.Costs.RealOp)
			return RealVal(ip.rand()), nil
		}
	case compile.BuiltinPrint:
		pos := e.Pos()
		return func(ip *Interp, fr []Value) (Value, error) {
			args, err := evalArgs(ip, fr)
			if err != nil {
				return Value{}, err
			}
			return Value{}, ip.printLine(pos, args)
		}
	}
	// User call: evaluate arguments straight into the callee's frame
	// (same evaluation order and charges as the walker's evalCall; the
	// intermediate args slice just never materializes).
	cc := g.cc
	idx := e.FuncIdx
	return func(ip *Interp, fr []Value) (Value, error) {
		cf := cc.funcs[idx]
		nf := ip.getFrame(cf.slots)
		for i, af := range argFns {
			v, err := af(ip, fr)
			if err != nil {
				ip.putFrame(nf)
				return Value{}, err
			}
			prm := &cf.params[i]
			nf[prm.Slot] = coerce(v, prm.Type)
		}
		return ip.callFrame(cf, nf)
	}
}

func (g *codegen) bin(e *compile.Bin) cExpr {
	pos := e.Pos()
	op := e.Op
	x := g.expr(e.X)

	// Short-circuit logic first (Y must not evaluate when X decides).
	if op == lang.AND || op == lang.OR {
		y := g.expr(e.Y)
		isAnd := op == lang.AND
		return func(ip *Interp, fr []Value) (Value, error) {
			xv, err := x(ip, fr)
			if err != nil {
				return Value{}, err
			}
			ip.charge(ip.cfg.Costs.IntOp)
			if isAnd && !xv.B {
				return BoolVal(false), nil
			}
			if !isAnd && xv.B {
				return BoolVal(true), nil
			}
			return y(ip, fr)
		}
	}

	// Every other operator is specialized from the *static* operand
	// types. This is sound because coercion keeps runtime kinds equal
	// to static types everywhere a value is produced (declares,
	// assigns, field stores, parameter binding, returns), so the
	// walker's runtime dispatch lands on exactly the branch chosen
	// here — same result, same cost charge. FuzzCompileVsWalk and the
	// engine equivalence suite hold this invariant down.
	y := g.expr(e.Y)
	xPtr := isPtrType(e.X.Type())
	yPtr := isPtrType(e.Y.Type())
	real2 := isRealType(e.X.Type()) || isRealType(e.Y.Type())
	bool2 := isBoolType(e.X.Type()) && isBoolType(e.Y.Type())
	str2 := isStringType(e.X.Type()) && isStringType(e.Y.Type())
	switch {
	case str2:
		eq := op == lang.EQ
		return func(ip *Interp, fr []Value) (Value, error) {
			xv, err := x(ip, fr)
			if err != nil {
				return Value{}, err
			}
			yv, err := y(ip, fr)
			if err != nil {
				return Value{}, err
			}
			ip.charge(ip.cfg.Costs.IntOp)
			return BoolVal((xv.S == yv.S) == eq), nil
		}
	case xPtr || yPtr:
		eq := op == lang.EQ
		return func(ip *Interp, fr []Value) (Value, error) {
			xv, err := x(ip, fr)
			if err != nil {
				return Value{}, err
			}
			yv, err := y(ip, fr)
			if err != nil {
				return Value{}, err
			}
			ip.charge(ip.cfg.Costs.IntOp)
			return BoolVal((xv.N == yv.N) == eq), nil
		}
	case real2:
		return g.realBin(op, x, y)
	case bool2:
		eq := op == lang.EQ
		return func(ip *Interp, fr []Value) (Value, error) {
			xv, err := x(ip, fr)
			if err != nil {
				return Value{}, err
			}
			yv, err := y(ip, fr)
			if err != nil {
				return Value{}, err
			}
			ip.charge(ip.cfg.Costs.IntOp)
			return BoolVal((xv.B == yv.B) == eq), nil
		}
	default:
		return g.intBin(op, x, y, pos)
	}
}

// realBin emits one closure per real operator (mixed int/real
// operands widen through AsReal, as in the walker).
func (g *codegen) realBin(op lang.Token, x, y cExpr) cExpr {
	eval := func(ip *Interp, fr []Value) (float64, float64, error) {
		xv, err := x(ip, fr)
		if err != nil {
			return 0, 0, err
		}
		yv, err := y(ip, fr)
		if err != nil {
			return 0, 0, err
		}
		ip.charge(ip.cfg.Costs.RealOp)
		return xv.AsReal(), yv.AsReal(), nil
	}
	switch op {
	case lang.PLUS:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return RealVal(a + b), err
		}
	case lang.MINUS:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return RealVal(a - b), err
		}
	case lang.STAR:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return RealVal(a * b), err
		}
	case lang.SLASH:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return RealVal(a / b), err
		}
	case lang.EQ:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return BoolVal(a == b), err
		}
	case lang.NEQ:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return BoolVal(a != b), err
		}
	case lang.LT:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return BoolVal(a < b), err
		}
	case lang.LE:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return BoolVal(a <= b), err
		}
	case lang.GT:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return BoolVal(a > b), err
		}
	case lang.GE:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return BoolVal(a >= b), err
		}
	}
	panic(fmt.Sprintf("interp: codegen: bad real op %s", op))
}

// intBin emits one closure per integer operator.
func (g *codegen) intBin(op lang.Token, x, y cExpr, pos lang.Pos) cExpr {
	eval := func(ip *Interp, fr []Value) (int64, int64, error) {
		xv, err := x(ip, fr)
		if err != nil {
			return 0, 0, err
		}
		yv, err := y(ip, fr)
		if err != nil {
			return 0, 0, err
		}
		ip.charge(ip.cfg.Costs.IntOp)
		return xv.I, yv.I, nil
	}
	switch op {
	case lang.PLUS:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return IntVal(a + b), err
		}
	case lang.MINUS:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return IntVal(a - b), err
		}
	case lang.STAR:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return IntVal(a * b), err
		}
	case lang.SLASH:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			if err != nil {
				return Value{}, err
			}
			if b == 0 {
				return Value{}, fmt.Errorf("%s: interp: integer division by zero", pos)
			}
			return IntVal(a / b), nil
		}
	case lang.PERCENT:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			if err != nil {
				return Value{}, err
			}
			if b == 0 {
				return Value{}, fmt.Errorf("%s: interp: integer modulo by zero", pos)
			}
			return IntVal(a % b), nil
		}
	case lang.EQ:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return BoolVal(a == b), err
		}
	case lang.NEQ:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return BoolVal(a != b), err
		}
	case lang.LT:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return BoolVal(a < b), err
		}
	case lang.LE:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return BoolVal(a <= b), err
		}
	case lang.GT:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return BoolVal(a > b), err
		}
	case lang.GE:
		return func(ip *Interp, fr []Value) (Value, error) {
			a, b, err := eval(ip, fr)
			return BoolVal(a >= b), err
		}
	}
	panic(fmt.Sprintf("interp: codegen: bad int op %s", op))
}

func isPtrType(t lang.Type) bool {
	_, ok := t.(*lang.Pointer)
	return ok
}

func isRealType(t lang.Type) bool {
	s, ok := t.(*lang.Scalar)
	return ok && s.Kind == lang.KindReal
}

func isBoolType(t lang.Type) bool {
	s, ok := t.(*lang.Scalar)
	return ok && s.Kind == lang.KindBool
}

func isStringType(t lang.Type) bool {
	s, ok := t.(*lang.Scalar)
	return ok && s.Kind == lang.KindString
}
