// Package interp executes PSL programs. It provides the two execution
// modes the reproduction needs:
//
//   - Real mode: forall loops run their iterations in goroutines, so
//     transformed programs exhibit genuine parallelism on the host.
//
//   - Simulated mode: execution is sequential but every operation is
//     charged cycles from a cost model; a forall charges the maximum
//     over its iterations (assigned to PEs by static cyclic scheduling)
//     plus a barrier cost. This is the deterministic "Sequent" machine
//     model used to regenerate the paper's §4.4 tables (see package
//     sequent).
//
// Speculative traversability (§3.2) is honoured: loading a pointer
// field through NULL yields NULL instead of faulting, which the
// transformed code's unguarded advances (FOR1/FOR2 in §4.3.3) rely on.
// Data-field access through NULL remains an error.
package interp

import (
	"fmt"

	"repro/internal/lang"
)

// Kind tags a runtime value.
type Kind int

// Value kinds.
const (
	KindInt Kind = iota
	KindReal
	KindBool
	KindString
	KindPtr
)

// Node is a heap record instance. Fields have two addressing modes
// over one shared backing store: by name through the Data/Ptrs maps
// (the tree-walker and external inspectors) and by declaration offset
// through vals/parr (the compiled engine, whose IR pre-resolves field
// names to indices into the record declaration). Data[decl.Data[i].Name]
// points at vals[i] and Ptrs[decl.Pointers[i].Name] shares parr[i]'s
// backing array, so a store through either view is seen by both.
type Node struct {
	Type string
	// Data holds scalar fields. The map is fully populated at
	// allocation and never structurally modified afterwards: stores
	// mutate the pointed-to Value in place. That keeps concurrent
	// access to *different* fields of one node race-free, which the
	// parallel executor relies on (the dependence test guarantees no
	// two iterations touch the same field of the same node).
	Data map[string]*Value
	// Ptrs holds pointer fields; each entry has the declared Count
	// length (1 for plain pointers).
	Ptrs map[string][]*Node
	// vals is the positional backing of Data, indexed like decl.Data.
	vals []Value
	// parr is the positional view of Ptrs, indexed like decl.Pointers.
	parr [][]*Node
	// id is a stable allocation number for deterministic printing.
	id int64
	// inEdges counts in-edges per uniquely-forward dimension when
	// runtime shape checks are enabled.
	inEdges map[string]int
}

// Value is a PSL runtime value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	B    bool
	S    string
	N    *Node
}

// Convenience constructors.
func IntVal(i int64) Value    { return Value{Kind: KindInt, I: i} }
func RealVal(f float64) Value { return Value{Kind: KindReal, F: f} }
func BoolVal(b bool) Value    { return Value{Kind: KindBool, B: b} }
func StrVal(s string) Value   { return Value{Kind: KindString, S: s} }
func PtrVal(n *Node) Value    { return Value{Kind: KindPtr, N: n} }
func NullVal() Value          { return Value{Kind: KindPtr} }
func (v Value) IsNull() bool  { return v.Kind == KindPtr && v.N == nil }
func (v Value) AsReal() float64 {
	if v.Kind == KindInt {
		return float64(v.I)
	}
	return v.F
}

// String renders the value for print().
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindReal:
		return fmt.Sprintf("%g", v.F)
	case KindBool:
		return fmt.Sprintf("%t", v.B)
	case KindString:
		return v.S
	case KindPtr:
		if v.N == nil {
			return "NULL"
		}
		return fmt.Sprintf("<%s#%d>", v.N.Type, v.N.id)
	}
	return "?"
}

// zeroValue returns the zero of a static type.
func zeroValue(t lang.Type) Value {
	switch t := t.(type) {
	case *lang.Scalar:
		switch t.Kind {
		case lang.KindInt:
			return IntVal(0)
		case lang.KindReal:
			return RealVal(0)
		case lang.KindBool:
			return BoolVal(false)
		default:
			return StrVal("")
		}
	case *lang.Pointer:
		return NullVal()
	}
	return Value{}
}

// coerce adapts a value to a destination type (int→real widening).
func coerce(v Value, t lang.Type) Value {
	if s, ok := t.(*lang.Scalar); ok && s.Kind == lang.KindReal && v.Kind == KindInt {
		return RealVal(float64(v.I))
	}
	return v
}
