package interp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lang"
)

func run(t *testing.T, src, fn string, args ...Value) (Value, string) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	ip := New(prog, Config{Output: &out, Seed: 1})
	v, err := ip.Call(fn, args...)
	if err != nil {
		t.Fatalf("run %s: %v", fn, err)
	}
	return v, out.String()
}

const listSrc = `
type List [X]
{ int v;
  List *next is uniquely forward along X;
};

function List * build(int n) {
  var List *head = NULL;
  var int i = n;
  while i > 0 {
    var List *node = new List;
    node->v = i;
    node->next = head;
    head = node;
    i = i - 1;
  }
  return head;
}

function int sum(List *head) {
  var int s = 0;
  var List *p = head;
  while p != NULL {
    s = s + p->v;
    p = p->next;
  }
  return s;
}
`

func TestListBuildAndSum(t *testing.T) {
	v, _ := run(t, listSrc+`
function int main() {
  var List *h = build(10);
  return sum(h);
}`, "main")
	if v.I != 55 {
		t.Errorf("sum = %d, want 55", v.I)
	}
}

func TestArithmeticAndPrint(t *testing.T) {
	_, out := run(t, `
procedure main() {
  var int i = 7 % 3;
  var real r = 1.5 * 4.0;
  var bool b = 3 < 4 && !(2 >= 5);
  print(i, r, b, "done");
  print(10 / 3, -2, sqrt(16.0), abs(-3.5));
}`, "main")
	want := "1 6 true done\n3 -2 4 3.5\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestSpeculativeTraversability(t *testing.T) {
	// Walking next past the end yields NULL rather than faulting (§3.2).
	v, _ := run(t, listSrc+`
function bool main() {
  var List *h = build(2);
  var List *p = h;
  var int i = 0;
  while i < 10 {
    p = p->next;
    i = i + 1;
  }
  return p == NULL;
}`, "main")
	if !v.B {
		t.Error("speculative walk should settle at NULL")
	}
}

func TestStrictNullMode(t *testing.T) {
	prog := lang.MustParse(listSrc + `
function List * main() {
  var List *p = NULL;
  return p->next;
}`)
	ip := New(prog, Config{StrictNull: true})
	if _, err := ip.Call("main"); err == nil {
		t.Error("StrictNull must fault on NULL traversal")
	}
	ip2 := New(prog, Config{})
	if v, err := ip2.Call("main"); err != nil || !v.IsNull() {
		t.Errorf("speculative mode: v=%v err=%v", v, err)
	}
}

func TestDataFieldThroughNullFaults(t *testing.T) {
	prog := lang.MustParse(listSrc + `
function int main() {
  var List *p = NULL;
  return p->v;
}`)
	ip := New(prog, Config{})
	if _, err := ip.Call("main"); err == nil {
		t.Error("data-field read through NULL must fault even speculatively")
	}
}

func TestForLoops(t *testing.T) {
	v, _ := run(t, `
function int main() {
  var int s = 0;
  for i = 1 to 5 {
    s = s + i;
  }
  for i = 5 to 1 {
    s = s + 100;   // empty range: from > to
  }
  return s;
}`, "main")
	if v.I != 15 {
		t.Errorf("s = %d, want 15", v.I)
	}
}

func TestForallRealMode(t *testing.T) {
	// Parallel iterations write disjoint nodes; result must equal the
	// sequential sum.
	src := listSrc + `
procedure scale_at(int i, List *head) {
  var List *p = head;
  for k = 1 to i {
    p = p->next;
  }
  if p != NULL {
    p->v = p->v * 2;
  }
}

function int main() {
  var List *h = build(8);
  forall i = 0 to 7 {
    scale_at(i, h);
  }
  return sum(h);
}`
	v, _ := run(t, src, "main")
	if v.I != 72 { // 2 * 36
		t.Errorf("parallel scaled sum = %d, want 72", v.I)
	}
}

func TestForallSimulatedTiming(t *testing.T) {
	src := `
procedure work(int i) {
  var int s = 0;
  for k = 1 to 1000 {
    s = s + k;
  }
}

procedure main() {
  forall i = 0 to 3 {
    work(i);
  }
}`
	prog := lang.MustParse(src)

	run := func(pes int) int64 {
		ip := New(prog, Config{Mode: Simulated, PEs: pes})
		if _, err := ip.Call("main"); err != nil {
			t.Fatal(err)
		}
		return ip.Stats().Cycles
	}
	t1, t2, t4 := run(1), run(2), run(4)
	if !(t4 < t2 && t2 < t1) {
		t.Errorf("simulated cycles must shrink with PEs: %d, %d, %d", t1, t2, t4)
	}
	// 4 identical iterations on 4 PEs: elapsed ≈ 1 iteration + barrier;
	// on 1 PE: 4 iterations + barrier. The (deliberately large) barrier
	// cost keeps the observed gap below the ideal 4x.
	if t1 < 2*t4 {
		t.Errorf("expected a clear parallel win, got t1=%d t4=%d", t1, t4)
	}
	// Work is conserved (modulo the barrier accounting).
	ip := New(prog, Config{Mode: Simulated, PEs: 4})
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	st := ip.Stats()
	if st.WorkCycles <= st.Cycles {
		t.Errorf("work %d should exceed elapsed %d on 4 PEs", st.WorkCycles, st.Cycles)
	}
	if st.Barriers != 1 {
		t.Errorf("barriers = %d, want 1", st.Barriers)
	}
}

func TestRecursion(t *testing.T) {
	v, _ := run(t, `
function int fib(int n) {
  if n < 2 {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}
function int main() {
  return fib(15);
}`, "main")
	if v.I != 610 {
		t.Errorf("fib(15) = %d, want 610", v.I)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	prog := lang.MustParse(`
function int inf(int n) {
  return inf(n + 1);
}`)
	ip := New(prog, Config{MaxDepth: 100})
	if _, err := ip.Call("inf", IntVal(0)); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("expected depth error, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	prog := lang.MustParse(`
procedure main() {
  var int i = 0;
  while true {
    i = i + 1;
  }
}`)
	ip := New(prog, Config{MaxSteps: 1000})
	if _, err := ip.Call("main"); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("expected step limit error, got %v", err)
	}
}

func TestRandDeterminism(t *testing.T) {
	src := `
function real main() {
  var real s = 0.0;
  for i = 1 to 100 {
    var real r = rand();
    if r < 0.0 {
      s = s - 1000.0;
    }
    if r >= 1.0 {
      s = s + 1000.0;
    }
    s = s + r;
  }
  return s;
}`
	prog := lang.MustParse(src)
	v1, err := New(prog, Config{Seed: 42}).Call("main")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := New(prog, Config{Seed: 42}).Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if v1.F != v2.F {
		t.Errorf("rand not deterministic: %g vs %g", v1.F, v2.F)
	}
	if v1.F < 20 || v1.F > 80 {
		t.Errorf("mean of 100 uniforms suspicious: %g", v1.F)
	}
	v3, err := New(prog, Config{Seed: 43}).Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if v3.F == v1.F {
		t.Error("different seeds should give different streams")
	}
}

func TestPointerArrays(t *testing.T) {
	v, _ := run(t, `
type Tree [down]
{ int v;
  Tree *kids[4] is uniquely forward along down;
};

function int total(Tree *t) {
  if t == NULL {
    return 0;
  }
  var int s = t->v;
  for i = 0 to 3 {
    s = s + total(t->kids[i]);
  }
  return s;
}

function int main() {
  var Tree *root = new Tree;
  root->v = 1;
  for i = 0 to 3 {
    var Tree *c = new Tree;
    c->v = 10;
    root->kids[i] = c;
  }
  return total(root);
}`, "main")
	if v.I != 41 {
		t.Errorf("total = %d, want 41", v.I)
	}
}

func TestIndexOutOfRange(t *testing.T) {
	prog := lang.MustParse(`
type Tree [down]
{ int v;
  Tree *kids[4] is uniquely forward along down;
};
function Tree * main() {
  var Tree *root = new Tree;
  return root->kids[9];
}`)
	if _, err := New(prog, Config{}).Call("main"); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("expected range error, got %v", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	prog := lang.MustParse(`
function int main() {
  var int z = 0;
  return 3 / z;
}`)
	if _, err := New(prog, Config{}).Call("main"); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("expected div-zero error, got %v", err)
	}
}

func TestHelpers(t *testing.T) {
	prog := lang.MustParse(listSrc)
	ip := New(prog, Config{})
	h, err := ip.Call("build", IntVal(3))
	if err != nil {
		t.Fatal(err)
	}
	vals, err := ListInts(h, "v", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0] != 1 || vals[2] != 3 {
		t.Errorf("list = %v", vals)
	}
	if _, err := ListInts(h, "v", 1); err == nil {
		t.Error("limit must trip")
	}
	if n, _ := FieldInt(h, "v"); n != 1 {
		t.Errorf("FieldInt = %d", n)
	}
	nx, err := FieldPtr(h, "next")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := FieldInt(nx, "v"); n != 2 {
		t.Errorf("next v = %d", n)
	}
	if ip.Stats().Allocations != 3 {
		t.Errorf("allocations = %d", ip.Stats().Allocations)
	}
}

func TestBlockScheduling(t *testing.T) {
	// 8 iterations, 2 PEs: block gives PE0 iterations 0-3. With equal
	// work the elapsed time matches cyclic.
	src := `
procedure work(int i) {
  var int s = 0;
  for k = 1 to 100 { s = s + k; }
}
procedure main() {
  forall i = 0 to 7 { work(i); }
}`
	prog := lang.MustParse(src)
	ipC := New(prog, Config{Mode: Simulated, PEs: 2, Sched: Cyclic})
	if _, err := ipC.Call("main"); err != nil {
		t.Fatal(err)
	}
	ipB := New(prog, Config{Mode: Simulated, PEs: 2, Sched: Block})
	if _, err := ipB.Call("main"); err != nil {
		t.Fatal(err)
	}
	if ipC.Stats().Cycles != ipB.Stats().Cycles {
		t.Errorf("uniform work: cyclic %d vs block %d should match", ipC.Stats().Cycles, ipB.Stats().Cycles)
	}
}
