package interp

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/nbody"
)

const checkListSrc = `
type List [X]
{ int v;
  List *next is uniquely forward along X;
};
`

func TestShapeCheckCycle(t *testing.T) {
	prog := lang.MustParse(checkListSrc + `
procedure main() {
  var List *a = new List;
  var List *b = new List;
  a->next = b;
  b->next = a;   // closes a forward cycle
}`)
	ip := New(prog, Config{ShapeChecks: true})
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	vs := ip.ShapeViolations()
	if len(vs) != 1 || vs[0].Kind != "cycle" {
		t.Fatalf("violations = %v", vs)
	}
	if !strings.Contains(vs[0].String(), "cycle of List along X") {
		t.Errorf("message = %s", vs[0])
	}
}

func TestShapeCheckSharing(t *testing.T) {
	prog := lang.MustParse(checkListSrc + `
procedure main() {
  var List *a = new List;
  var List *b = new List;
  var List *n = new List;
  a->next = n;
  b->next = n;   // n acquires a second in-edge along X
}`)
	ip := New(prog, Config{ShapeChecks: true})
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	vs := ip.ShapeViolations()
	if len(vs) != 1 || vs[0].Kind != "sharing" {
		t.Fatalf("violations = %v", vs)
	}
}

func TestShapeCheckRepairedSharingIsClean(t *testing.T) {
	// The §3.3.1 subtree-move pattern at runtime: sharing appears and
	// the repairing store removes the extra in-edge; only the transient
	// event is logged.
	prog := lang.MustParse(`
type Tree [down]
{ int v;
  Tree *left, *right is uniquely forward along down;
};
procedure main() {
  var Tree *p1 = new Tree;
  var Tree *p2 = new Tree;
  var Tree *c = new Tree;
  p2->left = c;
  p1->left = p2->left;   // transient sharing
  p2->left = NULL;       // repair
  var Tree *d = new Tree;
  p2->left = d;          // no new violation
}`)
	ip := New(prog, Config{ShapeChecks: true})
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	vs := ip.ShapeViolations()
	if len(vs) != 1 || vs[0].Kind != "sharing" {
		t.Fatalf("expected exactly the transient sharing event, got %v", vs)
	}
}

func TestShapeCheckFatal(t *testing.T) {
	prog := lang.MustParse(checkListSrc + `
procedure main() {
  var List *a = new List;
  a->next = a;
}`)
	ip := New(prog, Config{ShapeChecks: true, ShapeChecksFatal: true})
	if _, err := ip.Call("main"); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("fatal mode should abort with a cycle error, got %v", err)
	}
}

func TestShapeCheckCleanProgram(t *testing.T) {
	prog := lang.MustParse(checkListSrc + `
function List * build(int n) {
  var List *head = NULL;
  var int i = 0;
  while i < n {
    var List *node = new List;
    node->next = head;
    head = node;
    i = i + 1;
  }
  return head;
}
procedure main() {
  var List *h = build(100);
  var List *p = h;
  while p != NULL {
    p->v = 1;
    p = p->next;
  }
}`)
	ip := New(prog, Config{ShapeChecks: true, ShapeChecksFatal: true})
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	if vs := ip.ShapeViolations(); len(vs) != 0 {
		t.Errorf("clean program flagged: %v", vs)
	}
}

func TestShapeCheckBarnesHutCleanExceptInsertTransient(t *testing.T) {
	// The full Barnes-Hut run under runtime checks: insert_particle's
	// documented transient sharing appears (once per subdivision) and
	// nothing else; in particular, no cycles ever.
	prog := lang.MustParse(nbody.BarnesHutPSL)
	ip := New(prog, Config{ShapeChecks: true, Seed: 7})
	if _, err := ip.Call("simulate", IntVal(24), IntVal(1), RealVal(0.5), RealVal(0.01)); err != nil {
		t.Fatal(err)
	}
	for _, v := range ip.ShapeViolations() {
		if v.Kind != "sharing" || v.Dim != "down" {
			t.Errorf("unexpected runtime violation: %s", v)
		}
	}
}
