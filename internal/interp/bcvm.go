// The bytecode engine: a switch-loop VM over internal/bytecode's flat
// instruction arrays and typed register banks — the third engine,
// behind the closure engine (compiled.go) and the tree-walking oracle
// (interp.go).
//
// Where the closure engine pays a Go closure call per IR node and
// moves every intermediate through a Kind-tagged Value, this VM runs a
// for-loop over []Instr with direct slice indexing into per-frame
// []int64 / []float64 / []bool / []string / []*Node banks: hot
// arithmetic (R1 polyscale, R2 force) touches no interface, builds no
// Value, and allocates nothing once the frame pool is warm.
//
// Semantics are pinned to the closure engine — same results, printed
// output, error text, Simulated cycle totals (at statement
// granularity; see the bytecode package comment for why ordering
// within a statement may differ), step batching, and sandbox budgets.
// The three-way equivalence grid, FuzzBytecodeVsCompiled, and the
// sandbox-parity suite enforce this.
package interp

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/lang"
)

// bcFrame is one call's register file. The ret* fields carry the
// return value out of runBC (one per bank, so no boxing on return).
type bcFrame struct {
	i []int64
	f []float64
	b []bool
	s []string
	n []*Node

	retI int64
	retF float64
	retB bool
	retS string
	retN *Node
}

// getBCFrame returns a frame sized for f, reusing pooled bank storage
// when capacities allow. Banks are not zeroed: every register is
// written before it is read (slot homes by declare-before-use, temps
// and hidden loop counters by construction).
func (ip *Interp) getBCFrame(f *bytecode.Func) *bcFrame {
	var fr *bcFrame
	if l := len(ip.bcPool); l > 0 {
		fr = ip.bcPool[l-1]
		ip.bcPool = ip.bcPool[:l-1]
	} else {
		fr = new(bcFrame)
	}
	if cap(fr.i) >= f.NInt {
		fr.i = fr.i[:f.NInt]
	} else {
		fr.i = make([]int64, f.NInt)
	}
	if cap(fr.f) >= f.NReal {
		fr.f = fr.f[:f.NReal]
	} else {
		fr.f = make([]float64, f.NReal)
	}
	if cap(fr.b) >= f.NBool {
		fr.b = fr.b[:f.NBool]
	} else {
		fr.b = make([]bool, f.NBool)
	}
	if cap(fr.s) >= f.NStr {
		fr.s = fr.s[:f.NStr]
	} else {
		fr.s = make([]string, f.NStr)
	}
	if cap(fr.n) >= f.NNode {
		fr.n = fr.n[:f.NNode]
	} else {
		fr.n = make([]*Node, f.NNode)
	}
	return fr
}

func (ip *Interp) putBCFrame(fr *bcFrame) {
	if len(ip.bcPool) < 64 {
		ip.bcPool = append(ip.bcPool, fr)
	}
}

// copyBanksFrom makes fr an independent copy of src's banks (a
// parallel iteration's private frame, mirroring the closure engine's
// per-iteration slice copy).
func (fr *bcFrame) copyBanksFrom(src *bcFrame) {
	copy(fr.i, src.i)
	copy(fr.f, src.f)
	copy(fr.b, src.b)
	copy(fr.s, src.s)
	copy(fr.n, src.n)
}

// bcRet carries a call's return value across the frame-pool boundary.
type bcRet struct {
	i int64
	f float64
	b bool
	s string
	n *Node
}

// callBytecode is the external entry (Interp.Call): bind arguments
// into a fresh frame by bank and run.
func (ip *Interp) callBytecode(f *bytecode.Func, args []Value) (Value, error) {
	fr := ip.getBCFrame(f)
	for i, p := range f.Params {
		v := coerce(args[i], p.Type)
		switch p.Reg.Bank {
		case bytecode.BankInt:
			fr.i[p.Reg.Idx] = v.I
		case bytecode.BankReal:
			fr.f[p.Reg.Idx] = v.F
		case bytecode.BankBool:
			fr.b[p.Reg.Idx] = v.B
		case bytecode.BankStr:
			fr.s[p.Reg.Idx] = v.S
		case bytecode.BankNode:
			fr.n[p.Reg.Idx] = v.N
		}
	}
	r, err := ip.callBC(f, fr)
	if err != nil || f.Result == nil {
		return Value{}, err
	}
	switch bytecode.BankOf(f.Result) {
	case bytecode.BankInt:
		return IntVal(r.i), nil
	case bytecode.BankReal:
		return RealVal(r.f), nil
	case bytecode.BankBool:
		return BoolVal(r.b), nil
	case bytecode.BankStr:
		return StrVal(r.s), nil
	case bytecode.BankNode:
		return PtrVal(r.n), nil
	}
	return Value{}, nil
}

// callBC mirrors callFrame: depth guard, call overhead, run, pool the
// frame, fell-off-the-end check.
func (ip *Interp) callBC(f *bytecode.Func, fr *bcFrame) (bcRet, error) {
	if ip.cdepth > ip.maxDepth {
		ip.putBCFrame(fr)
		return bcRet{}, fmt.Errorf("interp: recursion depth exceeded in %s", f.Name)
	}
	ip.charge(ip.cfg.Costs.CallOver)
	ip.cdepth++
	c, err := ip.runBC(f, fr, 0, int32(len(f.Code)))
	ip.cdepth--
	r := bcRet{i: fr.retI, f: fr.retF, b: fr.retB, s: fr.retS, n: fr.retN}
	ip.putBCFrame(fr)
	if err != nil {
		return bcRet{}, err
	}
	if c == ctrlReturn {
		return r, nil
	}
	if f.Result != nil {
		return bcRet{}, fmt.Errorf("interp: function %s fell off the end without returning", f.Name)
	}
	return bcRet{}, nil
}

// runBC executes code in [pc, end) on a frame. Jump targets are
// absolute instruction indices; error positions come from the
// function's parallel Pos table.
//
// Charging is branchless: cm is the configured cost model in Simulated
// mode and the zero model in Real mode, so the unconditional
// cycles/work adds contribute nothing when accounting is off (the same
// observable behavior as charge()'s mode check, without a branch per
// instruction).
func (ip *Interp) runBC(f *bytecode.Func, fr *bcFrame, pc, end int32) (ctrl, error) {
	var cm CostModel
	if ip.cfg.Mode == Simulated {
		cm = ip.cfg.Costs
	}
	code := f.Code
	for pc < end {
		in := &code[pc]
		ipc := pc
		pc++
		switch in.Op {
		case bytecode.OpConstInt:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.i[in.A] = in.Imm
		case bytecode.OpConstReal:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.f[in.A] = in.Fv
		case bytecode.OpConstBool:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = in.Imm != 0
		case bytecode.OpConstStr:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.s[in.A] = f.Strs[in.B]
		case bytecode.OpConstNull:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.n[in.A] = nil
		case bytecode.OpMovInt:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.i[in.A] = fr.i[in.B]
		case bytecode.OpMovReal:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.f[in.A] = fr.f[in.B]
		case bytecode.OpMovBool:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.b[in.B]
		case bytecode.OpMovStr:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.s[in.A] = fr.s[in.B]
		case bytecode.OpMovNode:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.n[in.A] = fr.n[in.B]
		case bytecode.OpIntToReal:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.f[in.A] = float64(fr.i[in.B])

		case bytecode.OpStep:
			if err := ip.stepC(f.Pos[ipc]); err != nil {
				return ctrlNext, err
			}
		case bytecode.OpJump:
			pc = int32(in.Imm)
		case bytecode.OpBr:
			c := int64(in.D)*cm.VarAccess + cm.Branch
			ip.cycles += c
			ip.work += c
			if !fr.b[in.A] {
				pc = int32(in.Imm)
			}
		case bytecode.OpScAnd:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			if !fr.b[in.A] {
				pc = int32(in.Imm)
			}
		case bytecode.OpScOr:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			if fr.b[in.A] {
				pc = int32(in.Imm)
			}
		case bytecode.OpForHead:
			if fr.i[in.A] > fr.i[in.B] {
				pc = int32(in.Imm)
			} else {
				fr.i[in.C] = fr.i[in.A]
			}
		case bytecode.OpForTail:
			c := cm.Branch + cm.IntOp
			ip.cycles += c
			ip.work += c
			if err := ip.stepC(f.Pos[ipc]); err != nil {
				return ctrlNext, err
			}
			fr.i[in.A]++
			pc = int32(in.Imm)

		case bytecode.OpForall:
			site := &f.Foralls[in.A]
			pc = site.BodyEnd
			if c, err := ip.bcForall(f, fr, site, f.Pos[ipc]); err != nil || c == ctrlReturn {
				return c, err
			}

		case bytecode.OpCall:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			site := &f.Calls[in.A]
			callee := ip.bc.Funcs[site.FuncIdx]
			nf := ip.getBCFrame(callee)
			for j := range site.Args {
				a := site.Args[j]
				p := callee.Params[j].Reg.Idx
				switch a.Bank {
				case bytecode.BankInt:
					nf.i[p] = fr.i[a.Idx]
				case bytecode.BankReal:
					nf.f[p] = fr.f[a.Idx]
				case bytecode.BankBool:
					nf.b[p] = fr.b[a.Idx]
				case bytecode.BankStr:
					nf.s[p] = fr.s[a.Idx]
				case bytecode.BankNode:
					nf.n[p] = fr.n[a.Idx]
				}
			}
			r, err := ip.callBC(callee, nf)
			if err != nil {
				return ctrlNext, err
			}
			switch site.Dst.Bank {
			case bytecode.BankNone:
			case bytecode.BankInt:
				fr.i[site.Dst.Idx] = r.i
			case bytecode.BankReal:
				fr.f[site.Dst.Idx] = r.f
			case bytecode.BankBool:
				fr.b[site.Dst.Idx] = r.b
			case bytecode.BankStr:
				fr.s[site.Dst.Idx] = r.s
			case bytecode.BankNode:
				fr.n[site.Dst.Idx] = r.n
			}

		case bytecode.OpPrint:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			site := &f.Prints[in.A]
			args := make([]Value, len(site.Args))
			for j, a := range site.Args {
				switch a.Bank {
				case bytecode.BankInt:
					args[j] = IntVal(fr.i[a.Idx])
				case bytecode.BankReal:
					args[j] = RealVal(fr.f[a.Idx])
				case bytecode.BankBool:
					args[j] = BoolVal(fr.b[a.Idx])
				case bytecode.BankStr:
					args[j] = StrVal(fr.s[a.Idx])
				case bytecode.BankNode:
					args[j] = PtrVal(fr.n[a.Idx])
				}
			}
			if err := ip.printLine(f.Pos[ipc], args); err != nil {
				return ctrlNext, err
			}

		case bytecode.OpReturnVoid:
			return ctrlReturn, nil
		case bytecode.OpReturnInt:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.retI = fr.i[in.A]
			return ctrlReturn, nil
		case bytecode.OpReturnReal:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.retF = fr.f[in.A]
			return ctrlReturn, nil
		case bytecode.OpReturnBool:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.retB = fr.b[in.A]
			return ctrlReturn, nil
		case bytecode.OpReturnStr:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.retS = fr.s[in.A]
			return ctrlReturn, nil
		case bytecode.OpReturnNode:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			fr.retN = fr.n[in.A]
			return ctrlReturn, nil

		case bytecode.OpAddInt:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.i[in.A] = fr.i[in.B] + fr.i[in.C]
		case bytecode.OpSubInt:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.i[in.A] = fr.i[in.B] - fr.i[in.C]
		case bytecode.OpMulInt:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.i[in.A] = fr.i[in.B] * fr.i[in.C]
		case bytecode.OpDivInt:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			if fr.i[in.C] == 0 {
				return ctrlNext, fmt.Errorf("%s: interp: integer division by zero", f.Pos[ipc])
			}
			fr.i[in.A] = fr.i[in.B] / fr.i[in.C]
		case bytecode.OpModInt:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			if fr.i[in.C] == 0 {
				return ctrlNext, fmt.Errorf("%s: interp: integer modulo by zero", f.Pos[ipc])
			}
			fr.i[in.A] = fr.i[in.B] % fr.i[in.C]
		case bytecode.OpNegInt:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.i[in.A] = -fr.i[in.B]
		case bytecode.OpEqInt:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.i[in.B] == fr.i[in.C]
		case bytecode.OpNeInt:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.i[in.B] != fr.i[in.C]
		case bytecode.OpLtInt:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.i[in.B] < fr.i[in.C]
		case bytecode.OpLeInt:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.i[in.B] <= fr.i[in.C]
		case bytecode.OpGtInt:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.i[in.B] > fr.i[in.C]
		case bytecode.OpGeInt:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.i[in.B] >= fr.i[in.C]

		case bytecode.OpAddReal:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.f[in.A] = fr.f[in.B] + fr.f[in.C]
		case bytecode.OpSubReal:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.f[in.A] = fr.f[in.B] - fr.f[in.C]
		case bytecode.OpMulReal:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.f[in.A] = fr.f[in.B] * fr.f[in.C]
		case bytecode.OpDivReal:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.f[in.A] = fr.f[in.B] / fr.f[in.C]
		case bytecode.OpNegReal:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.f[in.A] = -fr.f[in.B]
		case bytecode.OpEqReal:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.f[in.B] == fr.f[in.C]
		case bytecode.OpNeReal:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.f[in.B] != fr.f[in.C]
		case bytecode.OpLtReal:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.f[in.B] < fr.f[in.C]
		case bytecode.OpLeReal:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.f[in.B] <= fr.f[in.C]
		case bytecode.OpGtReal:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.f[in.B] > fr.f[in.C]
		case bytecode.OpGeReal:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.f[in.B] >= fr.f[in.C]

		case bytecode.OpNot:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = !fr.b[in.B]
		case bytecode.OpEqBool:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.b[in.B] == fr.b[in.C]
		case bytecode.OpNeBool:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.b[in.B] != fr.b[in.C]
		case bytecode.OpEqStr:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.s[in.B] == fr.s[in.C]
		case bytecode.OpNeStr:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.s[in.B] != fr.s[in.C]
		case bytecode.OpEqNode:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.n[in.B] == fr.n[in.C]
		case bytecode.OpNeNode:
			c := int64(in.D)*cm.VarAccess + cm.IntOp
			ip.cycles += c
			ip.work += c
			fr.b[in.A] = fr.n[in.B] != fr.n[in.C]

		case bytecode.OpNew:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			site := &f.News[in.B]
			v, err := ip.allocNode(site.Decl, site.TypeName)
			if err != nil {
				return ctrlNext, err
			}
			fr.n[in.A] = v.N

		case bytecode.OpLoadInt:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			n := fr.n[in.B]
			if n == nil {
				return ctrlNext, fmt.Errorf("%s: interp: field %s read through NULL pointer", f.Pos[ipc], f.Names[in.Imm])
			}
			ip.cycles += cm.FieldLoad
			ip.work += cm.FieldLoad
			fr.i[in.A] = n.vals[in.C].I
		case bytecode.OpLoadReal:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			n := fr.n[in.B]
			if n == nil {
				return ctrlNext, fmt.Errorf("%s: interp: field %s read through NULL pointer", f.Pos[ipc], f.Names[in.Imm])
			}
			ip.cycles += cm.FieldLoad
			ip.work += cm.FieldLoad
			fr.f[in.A] = n.vals[in.C].F
		case bytecode.OpLoadBool:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			n := fr.n[in.B]
			if n == nil {
				return ctrlNext, fmt.Errorf("%s: interp: field %s read through NULL pointer", f.Pos[ipc], f.Names[in.Imm])
			}
			ip.cycles += cm.FieldLoad
			ip.work += cm.FieldLoad
			fr.b[in.A] = n.vals[in.C].B

		case bytecode.OpLoadNode:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			n := fr.n[in.B]
			if n == nil {
				if !ip.cfg.StrictNull {
					// Speculative traversability (§3.2): NULL reads as
					// NULL, without the FieldLoad charge.
					fr.n[in.A] = nil
					continue
				}
				return ctrlNext, fmt.Errorf("%s: interp: field %s read through NULL pointer", f.Pos[ipc], f.Names[in.Imm])
			}
			ip.cycles += cm.FieldLoad
			ip.work += cm.FieldLoad
			arr := n.parr[in.C]
			if len(arr) == 0 {
				return ctrlNext, fmt.Errorf("%s: interp: index 0 out of range for %s.%s[0]", f.Pos[ipc], n.Type, f.Names[in.Imm])
			}
			fr.n[in.A] = arr[0]

		case bytecode.OpLoadNodeIdxBegin:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			n := fr.n[in.B]
			if n == nil {
				if !ip.cfg.StrictNull {
					// NULL base: skip the index expression entirely.
					fr.n[in.A] = nil
					pc = int32(in.Imm)
					continue
				}
				return ctrlNext, fmt.Errorf("%s: interp: field %s read through NULL pointer", f.Pos[ipc], f.Names[in.C])
			}
			ip.cycles += cm.FieldLoad
			ip.work += cm.FieldLoad
		case bytecode.OpLoadNodeIdx:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			off, name := bytecode.UnpackOffName(in.Imm)
			n := fr.n[in.B]
			idx := fr.i[in.C]
			arr := n.parr[off]
			if idx < 0 || idx >= int64(len(arr)) {
				return ctrlNext, fmt.Errorf("%s: interp: index %d out of range for %s.%s[%d]", f.Pos[ipc], idx, n.Type, f.Names[name], len(arr))
			}
			fr.n[in.A] = arr[idx]

		case bytecode.OpStoreInt:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			n := fr.n[in.A]
			if n == nil {
				return ctrlNext, fmt.Errorf("%s: interp: store through NULL pointer", f.Pos[ipc])
			}
			ip.cycles += cm.FieldStore
			ip.work += cm.FieldStore
			n.vals[in.C] = IntVal(fr.i[in.B])
		case bytecode.OpStoreReal:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			n := fr.n[in.A]
			if n == nil {
				return ctrlNext, fmt.Errorf("%s: interp: store through NULL pointer", f.Pos[ipc])
			}
			ip.cycles += cm.FieldStore
			ip.work += cm.FieldStore
			n.vals[in.C] = RealVal(fr.f[in.B])
		case bytecode.OpStoreBool:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			n := fr.n[in.A]
			if n == nil {
				return ctrlNext, fmt.Errorf("%s: interp: store through NULL pointer", f.Pos[ipc])
			}
			ip.cycles += cm.FieldStore
			ip.work += cm.FieldStore
			n.vals[in.C] = BoolVal(fr.b[in.B])

		case bytecode.OpStoreNode:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			n := fr.n[in.A]
			if n == nil {
				return ctrlNext, fmt.Errorf("%s: interp: store through NULL pointer", f.Pos[ipc])
			}
			ip.cycles += cm.FieldStore
			ip.work += cm.FieldStore
			arr := n.parr[in.C]
			if len(arr) == 0 {
				return ctrlNext, fmt.Errorf("%s: interp: index 0 out of range for %s.%s[0]", f.Pos[ipc], n.Type, f.Names[in.Imm])
			}
			old := arr[0]
			arr[0] = fr.n[in.B]
			if ip.cfg.ShapeChecks {
				if err := ip.checkStore(f.Pos[ipc], n, f.Names[in.Imm], old, fr.n[in.B]); err != nil {
					return ctrlNext, err
				}
			}

		case bytecode.OpStoreNodeIdxBegin:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			if fr.n[in.A] == nil {
				return ctrlNext, fmt.Errorf("%s: interp: store through NULL pointer", f.Pos[ipc])
			}
			ip.cycles += cm.FieldStore
			ip.work += cm.FieldStore
		case bytecode.OpStoreNodeIdx:
			c := int64(in.D) * cm.VarAccess
			ip.cycles += c
			ip.work += c
			off, name := bytecode.UnpackOffName(in.Imm)
			n := fr.n[in.A]
			idx := fr.i[in.C]
			arr := n.parr[off]
			if idx < 0 || idx >= int64(len(arr)) {
				return ctrlNext, fmt.Errorf("%s: interp: index %d out of range for %s.%s[%d]", f.Pos[ipc], idx, n.Type, f.Names[name], len(arr))
			}
			old := arr[idx]
			arr[idx] = fr.n[in.B]
			if ip.cfg.ShapeChecks {
				if err := ip.checkStore(f.Pos[ipc], n, f.Names[name], old, fr.n[in.B]); err != nil {
					return ctrlNext, err
				}
			}

		case bytecode.OpSqrt:
			c := int64(in.D)*cm.VarAccess + cm.Sqrt
			ip.cycles += c
			ip.work += c
			fr.f[in.A] = math.Sqrt(fr.f[in.B])
		case bytecode.OpAbs:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.f[in.A] = math.Abs(fr.f[in.B])
		case bytecode.OpRand:
			c := int64(in.D)*cm.VarAccess + cm.RealOp
			ip.cycles += c
			ip.work += c
			fr.f[in.A] = ip.rand()

		default:
			return ctrlNext, fmt.Errorf("%s: interp: bytecode: bad opcode %d", f.Pos[ipc], in.Op)
		}
	}
	return ctrlNext, nil
}

// bcForall runs one parallel loop, mirroring the closure engine's
// three paths: Simulated (shared frame, per-iteration cycle rewind via
// simForall), Real with an installed scheduler (parexec's pool), and
// Real default (one goroutine per iteration). An empty range is a
// no-op before any of them — no barrier, no charges.
func (ip *Interp) bcForall(f *bytecode.Func, fr *bcFrame, site *bytecode.ForallSite, pos lang.Pos) (ctrl, error) {
	lo, hi := fr.i[site.From], fr.i[site.To]
	n := hi - lo + 1
	if n <= 0 {
		return ctrlNext, nil
	}
	if ip.cfg.Mode == Simulated {
		return ctrlNext, ip.simForall(lo, hi, pos, ip.stepC, func(k int64) (ctrl, error) {
			fr.i[site.Var] = k
			return ip.runBC(f, fr, site.BodyStart, site.BodyEnd)
		})
	}

	// The vector path: a strip the classifier proved vectorizable runs
	// as a batched SoA kernel (kernel.go). StrictNull runs are excluded
	// — the kernel's speculative gather walk assumes NULL propagation —
	// and any in-flight fault or budget concern makes bcForallKernel
	// report false having touched nothing, falling through to the
	// scalar paths below.
	if ip.cfg.Engine == EngineKernel && site.Kernel != nil && !ip.cfg.StrictNull {
		if ip.bcForallKernel(f, fr, site, pos, lo, hi) {
			return ctrlNext, nil
		}
	}

	// Iterations must see the enclosing call's remaining recursion
	// budget (the walker threads its depth into every iteration).
	depth := ip.cdepth

	if ip.cfg.Forall != nil {
		run := func(w *Interp, k int64) error {
			nf := w.getBCFrame(f)
			nf.copyBanksFrom(fr)
			nf.i[site.Var] = k
			w.cdepth = depth
			c, err := w.runBC(f, nf, site.BodyStart, site.BodyEnd)
			w.putBCFrame(nf)
			if err == nil && c == ctrlReturn {
				err = fmt.Errorf("%s: interp: return inside forall is not allowed", pos)
			}
			if ferr := w.flushSteps(pos); err == nil && ferr != nil {
				err = ferr
			}
			return err
		}
		return ctrlNext, ip.cfg.Forall(pos, lo, hi, run)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for k := lo; k <= hi; k++ {
		wg.Add(1)
		go func(k int64) {
			defer wg.Done()
			w := ip.Fork(nil)
			nf := w.getBCFrame(f)
			nf.copyBanksFrom(fr)
			nf.i[site.Var] = k
			w.cdepth = depth
			_, err := w.runBC(f, nf, site.BodyStart, site.BodyEnd)
			if ferr := w.flushSteps(pos); err == nil && ferr != nil {
				err = ferr
			}
			errs[k-lo] = err
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ctrlNext, err
		}
	}
	return ctrlNext, nil
}
