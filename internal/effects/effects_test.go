package effects

import (
	"strings"
	"testing"

	"repro/internal/adds"
	"repro/internal/lang"
)

func summaries(t *testing.T, src string) (*lang.Program, *Analyzer) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog, NewAnalyzer(prog)
}

func hasAccess(s *Summary, substr string) bool {
	for _, a := range s.Accesses {
		if strings.Contains(a.String(), substr) {
			return true
		}
	}
	return false
}

func TestDirectFieldAccesses(t *testing.T) {
	_, an := summaries(t, adds.OneWayListSrc+`
procedure f(OneWayList *p, int c) {
  p->data = p->data * c;
}`)
	sum := an.FuncSummary("f")
	if !hasAccess(sum, "W p.data") {
		t.Errorf("missing write:\n%s", sum)
	}
	if !hasAccess(sum, "R p.data") {
		t.Errorf("missing read:\n%s", sum)
	}
	if len(sum.PointerWrites()) != 0 {
		t.Errorf("no pointer writes expected:\n%s", sum)
	}
}

func TestMovedRegions(t *testing.T) {
	_, an := summaries(t, adds.OneWayListSrc+`
procedure f(OneWayList *head) {
  var OneWayList *p = head;
  while p != NULL {
    p->data = 0;
    p = p->next;
  }
}`)
	sum := an.FuncSummary("f")
	// p ranges over head and everything reachable along X: the write
	// must appear against both the unmoved and the moved region.
	if !hasAccess(sum, "W head.data") {
		t.Errorf("missing unmoved write:\n%s", sum)
	}
	if !hasAccess(sum, "W head.X*.data") {
		t.Errorf("missing moved write:\n%s", sum)
	}
}

func TestPointerWriteDetected(t *testing.T) {
	_, an := summaries(t, adds.OneWayListSrc+`
procedure f(OneWayList *a, OneWayList *b) {
  a->next = b;
}`)
	pw := an.FuncSummary("f").PointerWrites()
	if len(pw) != 1 || pw[0].Field != "next" {
		t.Errorf("pointer writes = %v", pw)
	}
}

func TestCalleeSubstitution(t *testing.T) {
	_, an := summaries(t, adds.OneWayListSrc+`
procedure zero(OneWayList *x) {
  x->data = 0;
}
procedure f(OneWayList *head) {
  var OneWayList *p = head->next;
  zero(p);
}`)
	sum := an.FuncSummary("f")
	// zero's write to x rebases onto head.X* (p = head->next moved).
	if !hasAccess(sum, "W head.X*.data") {
		t.Errorf("callee write not rebased:\n%s", sum)
	}
}

func TestRecursiveSummaryConverges(t *testing.T) {
	_, an := summaries(t, adds.BinTreeSrc+`
procedure touch(BinTree *t) {
  if t != NULL {
    t->data = 1;
    touch(t->left);
    touch(t->right);
  }
}`)
	sum := an.FuncSummary("touch")
	if !hasAccess(sum, "W t.data") {
		t.Errorf("missing direct write:\n%s", sum)
	}
	if !hasAccess(sum, "W t.down*.data") {
		t.Errorf("missing recursive write over down:\n%s", sum)
	}
}

func TestFreshAnchor(t *testing.T) {
	_, an := summaries(t, adds.OneWayListSrc+`
procedure f() {
  var OneWayList *n = new OneWayList;
  n->data = 5;
}`)
	sum := an.FuncSummary("f")
	found := false
	for _, a := range sum.Accesses {
		if a.Kind == Write && a.Region.Anchor == AnchorFresh {
			found = true
		}
	}
	if !found {
		t.Errorf("write to fresh node must be fresh-anchored:\n%s", sum)
	}
}

func TestBlockSummaryWithAnchors(t *testing.T) {
	prog, an := summaries(t, adds.OneWayListSrc+`
procedure f(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->data = p->data * c;
    p = p->next;
  }
}`)
	fn := prog.Func("f")
	var loop *lang.WhileStmt
	lang.Walk(fn.Body, func(s lang.Stmt) bool {
		if w, ok := s.(*lang.WhileStmt); ok {
			loop = w
			return false
		}
		return true
	})
	// Anchored on p itself (the loop view): the body writes p.data.
	sum := an.BlockSummary(loop.Body, []string{"p", "head"})
	if !hasAccess(sum, "W p.data") {
		t.Errorf("loop-anchored write missing:\n%s", sum)
	}
}

func TestCallResultRegions(t *testing.T) {
	_, an := summaries(t, adds.OneWayListSrc+`
function OneWayList * find(OneWayList *h) {
  return h;
}
procedure f(OneWayList *head) {
  var OneWayList *p = find(head);
  p->data = 1;
}`)
	sum := an.FuncSummary("f")
	// p may point anywhere reachable from head.
	if !hasAccess(sum, "W head.") && !hasAccess(sum, "W head ") {
		t.Errorf("call-result write should anchor at head (moved):\n%s", sum)
	}
}

func TestRegionString(t *testing.T) {
	r := Region{Anchor: "p"}
	if r.String() != "p" {
		t.Errorf("unmoved = %q", r.String())
	}
	r2 := Region{Anchor: "p", Dims: "down,leaves", Moved: true}
	if r2.String() != "p.down.leaves*" {
		t.Errorf("moved = %q", r2.String())
	}
	r3 := Region{Anchor: "p", Moved: true}
	if r3.String() != "p.?*" {
		t.Errorf("dimless = %q", r3.String())
	}
}

func TestJoinDims(t *testing.T) {
	if got := joinDims("", "down"); got != "down" {
		t.Errorf("joinDims = %q", got)
	}
	if got := joinDims("leaves", "down"); got != "down,leaves" {
		t.Errorf("joinDims = %q", got)
	}
	if got := joinDims("down,leaves", "down"); got != "down,leaves" {
		t.Errorf("joinDims = %q", got)
	}
}

func TestWritesReadsFilters(t *testing.T) {
	_, an := summaries(t, adds.OneWayListSrc+`
procedure f(OneWayList *p) {
  p->data = p->data + 1;
}`)
	sum := an.FuncSummary("f")
	if len(sum.Writes()) == 0 || len(sum.Reads()) == 0 {
		t.Errorf("filters broken:\n%s", sum)
	}
	for _, w := range sum.Writes() {
		if w.Kind != Write {
			t.Error("Writes returned a read")
		}
	}
}
