// Package effects computes interprocedural read/write effect summaries
// for PSL code at field granularity, anchored to pointer variables.
//
// An access such as "reads the mass field of every node reachable from
// node along the down dimension" is represented as
//
//	Access{Anchor: "node", Dims: {"down"}, Moved: true, Field: "mass", Kind: Read}
//
// Summaries are closed over the call graph (recursion converges because
// the dimension and field sets are finite). Package depend combines
// these summaries with the path matrix analysis to decide whether the
// iterations of a pointer-chasing loop are independent — the paper's
// §4.3.2 argument that BHL1 parallelizes because compute_force writes
// only the force field of its own particle while reading only
// mass/position fields of the tree.
package effects

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// AccessKind distinguishes reads from writes.
type AccessKind int

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

// String names the kind.
func (k AccessKind) String() string {
	if k == Write {
		return "W"
	}
	return "R"
}

// Special anchors.
const (
	// AnchorFresh marks accesses to nodes allocated inside the analyzed
	// code; they cannot conflict with pre-existing structure.
	AnchorFresh = "<fresh>"
	// AnchorUnknown marks accesses whose base pointer could not be
	// traced to an anchor; they conflict with everything.
	AnchorUnknown = "<unknown>"
)

// Region abstracts where a pointer may point, relative to an anchor
// variable: the anchor's node itself (Moved=false), or any node
// reachable from it by traversing the listed dimensions (Moved=true).
type Region struct {
	Anchor string
	Dims   string // sorted, comma-joined dimension names; "" if unmoved
	Moved  bool
}

// String renders "node.down*" style.
func (r Region) String() string {
	if !r.Moved {
		return r.Anchor
	}
	if r.Dims == "" {
		return r.Anchor + ".?*"
	}
	return r.Anchor + "." + strings.ReplaceAll(r.Dims, ",", ".") + "*"
}

func joinDims(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	set := map[string]bool{}
	for _, d := range strings.Split(a, ",") {
		set[d] = true
	}
	for _, d := range strings.Split(b, ",") {
		set[d] = true
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// Access is one field access of a region.
type Access struct {
	Region Region
	// Field is the accessed field name; "" for pointer-structure
	// mutation records (see IsPointer).
	Field string
	Kind  AccessKind
	// IsPointer marks accesses to pointer (shape) fields rather than
	// data fields.
	IsPointer bool
}

// String renders "W node.down*.mass".
func (a Access) String() string {
	p := ""
	if a.IsPointer {
		p = "!"
	}
	return fmt.Sprintf("%s %s.%s%s", a.Kind, a.Region, a.Field, p)
}

// Summary is the effect set of a function or block.
type Summary struct {
	Accesses []Access
}

// add inserts an access, deduplicating.
func (s *Summary) add(a Access) bool {
	for _, x := range s.Accesses {
		if x == a {
			return false
		}
	}
	s.Accesses = append(s.Accesses, a)
	return true
}

// Writes returns the write accesses.
func (s *Summary) Writes() []Access {
	var out []Access
	for _, a := range s.Accesses {
		if a.Kind == Write {
			out = append(out, a)
		}
	}
	return out
}

// Reads returns the read accesses.
func (s *Summary) Reads() []Access {
	var out []Access
	for _, a := range s.Accesses {
		if a.Kind == Read {
			out = append(out, a)
		}
	}
	return out
}

// PointerWrites returns writes to pointer fields (structure mutation).
func (s *Summary) PointerWrites() []Access {
	var out []Access
	for _, a := range s.Accesses {
		if a.Kind == Write && a.IsPointer {
			out = append(out, a)
		}
	}
	return out
}

// String lists the accesses, sorted, one per line.
func (s *Summary) String() string {
	lines := make([]string, len(s.Accesses))
	for i, a := range s.Accesses {
		lines[i] = a.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Analyzer computes summaries over one program.
type Analyzer struct {
	prog      *lang.Program
	summaries map[string]*Summary
	// callees is the caller→callee graph, kept so Update can limit
	// recomputation to the functions a rewrite can actually affect.
	callees map[string]map[string]bool
}

// NewAnalyzer prepares function summaries for the program, closing them
// over the call graph.
func NewAnalyzer(prog *lang.Program) *Analyzer {
	a := &Analyzer{
		prog:      prog,
		summaries: make(map[string]*Summary),
		callees:   make(map[string]map[string]bool),
	}
	for _, f := range prog.Funcs {
		a.summaries[f.Name] = &Summary{}
		a.callees[f.Name] = calleesOf(f)
	}
	a.solve(nil)
	return a
}

// calleesOf collects the non-builtin functions f calls.
func calleesOf(f *lang.FuncDecl) map[string]bool {
	out := map[string]bool{}
	lang.Walk(f.Body, func(s lang.Stmt) bool {
		lang.WalkExprs(s, func(e lang.Expr) {
			if call, ok := e.(*lang.CallExpr); ok {
				if lang.Builtins[call.Func] == nil {
					out[call.Func] = true
				}
			}
		})
		return true
	})
	return out
}

// solve runs the summary fixed point. With a nil restriction every
// function participates; otherwise only the listed functions are
// recomputed, reading the (stable) summaries of the rest.
func (a *Analyzer) solve(only map[string]bool) {
	// Fixed point: recompute each function's summary, substituting
	// callee summaries, until nothing changes.
	for {
		changed := false
		for _, f := range a.prog.Funcs {
			if only != nil && !only[f.Name] {
				continue
			}
			anchors := make([]string, 0, len(f.Params))
			for _, prm := range f.Params {
				if _, ok := lang.IsPointer(prm.Type); ok {
					anchors = append(anchors, prm.Name)
				}
			}
			ns := a.analyzeBlock(f.Body, anchors)
			for _, acc := range ns.Accesses {
				if a.summaries[f.Name].add(acc) {
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// Update re-derives summaries after an in-place rewrite that touched
// exactly the named functions, returning the sorted names of every
// function whose summary was recomputed. A function's summary depends
// only on its own body and its (transitive) callees' summaries, so the
// set that can change is the touched functions plus their transitive
// callers; those summaries are reset (the fixed point is
// accumulate-only, so stale accesses must not survive a body that lost
// them) and re-solved against the unchanged remainder.
func (a *Analyzer) Update(touched ...string) []string {
	dirty := map[string]bool{}
	var seed []string
	for _, name := range touched {
		f := a.prog.Func(name)
		if f == nil {
			delete(a.summaries, name)
			delete(a.callees, name)
			seed = append(seed, name)
			continue
		}
		a.callees[name] = calleesOf(f)
		dirty[name] = true
		seed = append(seed, name)
	}
	// Transitive callers over the reverse graph.
	callers := map[string][]string{}
	for caller, cs := range a.callees {
		for callee := range cs {
			callers[callee] = append(callers[callee], caller)
		}
	}
	for len(seed) > 0 {
		name := seed[0]
		seed = seed[1:]
		for _, caller := range callers[name] {
			if !dirty[caller] {
				dirty[caller] = true
				seed = append(seed, caller)
			}
		}
	}
	for name := range dirty {
		a.summaries[name] = &Summary{}
	}
	a.solve(dirty)
	out := make([]string, 0, len(dirty))
	for name := range dirty {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FuncSummary returns the closed summary for a function.
func (a *Analyzer) FuncSummary(name string) *Summary {
	return a.summaries[name]
}

// BlockSummary computes the effect summary of a block with the given
// anchor variables (e.g. a loop body anchored on its induction pointer
// and the enclosing function's parameters).
func (a *Analyzer) BlockSummary(b *lang.Block, anchors []string) *Summary {
	return a.analyzeBlock(b, anchors)
}

// env maps pointer variables to the regions they may point into.
type env map[string][]Region

func (e env) add(v string, r Region) bool {
	for _, x := range e[v] {
		if x == r {
			return false
		}
	}
	e[v] = append(e[v], r)
	return true
}

func (a *Analyzer) dimOf(elem, field string) string {
	_, pf := a.prog.Universe.FieldDecl(elem, field)
	if pf == nil {
		return ""
	}
	return pf.Dim
}

// analyzeBlock runs a flow-insensitive effect collection over the block:
// variable regions grow monotonically to a fixed point (loops need no
// special handling), then every field access is emitted against its
// base's regions.
func (a *Analyzer) analyzeBlock(b *lang.Block, anchors []string) *Summary {
	ev := env{}
	for _, v := range anchors {
		ev.add(v, Region{Anchor: v})
	}

	// Grow regions to a fixed point.
	for {
		changed := false
		lang.Walk(b, func(s lang.Stmt) bool {
			var name string
			var rhs lang.Expr
			switch s := s.(type) {
			case *lang.VarStmt:
				if _, ok := lang.IsPointer(s.DeclType); !ok {
					return true
				}
				name, rhs = s.Name, s.Init
			case *lang.AssignStmt:
				id, ok := s.LHS.(*lang.Ident)
				if !ok {
					return true
				}
				if _, ok := lang.IsPointer(id.Type()); !ok {
					return true
				}
				name, rhs = id.Name, s.RHS
			default:
				return true
			}
			if rhs == nil {
				return true
			}
			for _, r := range a.rhsRegions(rhs, ev) {
				if ev.add(name, r) {
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	// Emit accesses.
	sum := &Summary{}
	lang.Walk(b, func(s lang.Stmt) bool {
		// Writes via assignment LHS.
		if as, ok := s.(*lang.AssignStmt); ok {
			if fe, ok := as.LHS.(*lang.FieldExpr); ok {
				_, isPtr := lang.IsPointer(fe.Type())
				a.emitFieldAccess(sum, fe, Write, isPtr, ev)
			}
		}
		// Reads via every other field expression, and callee effects.
		lang.WalkExprs(s, func(e lang.Expr) {
			switch e := e.(type) {
			case *lang.FieldExpr:
				if as, ok := s.(*lang.AssignStmt); ok && as.LHS == e {
					return // already counted as a write
				}
				_, isPtr := lang.IsPointer(e.Type())
				a.emitFieldAccess(sum, e, Read, isPtr, ev)
			case *lang.CallExpr:
				a.emitCall(sum, e, ev)
			}
		})
		return true
	})
	return sum
}

// rhsRegions computes the regions a pointer RHS may point into.
func (a *Analyzer) rhsRegions(rhs lang.Expr, ev env) []Region {
	switch rhs := rhs.(type) {
	case *lang.NullLit:
		return nil
	case *lang.NewExpr:
		return []Region{{Anchor: AnchorFresh}}
	case *lang.Ident:
		if rs, ok := ev[rhs.Name]; ok {
			return rs
		}
		return []Region{{Anchor: AnchorUnknown}}
	case *lang.FieldExpr:
		base := rhs.Base()
		if base == nil {
			return []Region{{Anchor: AnchorUnknown}}
		}
		elem, _ := lang.IsPointer(base.Type())
		dim := a.dimOf(elem, rhs.Field)
		var out []Region
		rs, ok := ev[base.Name]
		if !ok {
			rs = []Region{{Anchor: AnchorUnknown}}
		}
		for _, r := range rs {
			out = append(out, Region{
				Anchor: r.Anchor,
				Dims:   joinDims(r.Dims, dim),
				Moved:  true,
			})
		}
		return out
	case *lang.CallExpr:
		// The result may point anywhere the pointer arguments reach.
		var out []Region
		for _, arg := range rhs.Args {
			if id, ok := arg.(*lang.Ident); ok {
				if _, isPtr := lang.IsPointer(id.Type()); isPtr {
					for _, r := range a.rhsRegions(id, ev) {
						out = append(out, Region{Anchor: r.Anchor, Dims: r.Dims, Moved: true})
					}
					continue
				}
			}
			if fe, ok := arg.(*lang.FieldExpr); ok {
				if _, isPtr := lang.IsPointer(fe.Type()); isPtr {
					for _, r := range a.rhsRegions(fe, ev) {
						out = append(out, Region{Anchor: r.Anchor, Dims: r.Dims, Moved: true})
					}
				}
			}
		}
		if out == nil {
			out = []Region{{Anchor: AnchorFresh}}
		}
		return out
	}
	return []Region{{Anchor: AnchorUnknown}}
}

func (a *Analyzer) emitFieldAccess(sum *Summary, fe *lang.FieldExpr, kind AccessKind, isPtr bool, ev env) {
	base := fe.Base()
	regions := []Region{{Anchor: AnchorUnknown}}
	if base != nil {
		if rs, ok := ev[base.Name]; ok {
			regions = rs
		}
	}
	for _, r := range regions {
		sum.add(Access{Region: r, Field: fe.Field, Kind: kind, IsPointer: isPtr})
	}
	// An indexed access also reads the index expression; scalar reads of
	// locals are not tracked (they cannot conflict across iterations
	// unless heap-carried).
}

// emitCall substitutes the callee's summary, rebasing parameter-anchored
// accesses onto the caller's argument regions.
func (a *Analyzer) emitCall(sum *Summary, call *lang.CallExpr, ev env) {
	if lang.Builtins[call.Func] != nil {
		return
	}
	callee := a.prog.Func(call.Func)
	calleeSum := a.summaries[call.Func]
	if callee == nil || calleeSum == nil {
		sum.add(Access{Region: Region{Anchor: AnchorUnknown}, Kind: Write, IsPointer: true})
		return
	}
	// Map parameter name -> argument regions.
	argRegions := map[string][]Region{}
	for i, prm := range callee.Params {
		if _, ok := lang.IsPointer(prm.Type); !ok {
			continue
		}
		if i < len(call.Args) {
			argRegions[prm.Name] = a.rhsRegions(call.Args[i], ev)
		}
	}
	for _, acc := range calleeSum.Accesses {
		bases, ok := argRegions[acc.Region.Anchor]
		if !ok {
			// Fresh/unknown-anchored callee accesses pass through.
			sum.add(acc)
			continue
		}
		for _, b := range bases {
			sum.add(Access{
				Region: Region{
					Anchor: b.Anchor,
					Dims:   joinDims(b.Dims, acc.Region.Dims),
					Moved:  b.Moved || acc.Region.Moved,
				},
				Field:     acc.Field,
				Kind:      acc.Kind,
				IsPointer: acc.IsPointer,
			})
		}
	}
}
