package effects

import (
	"testing"

	"repro/internal/adds"
	"repro/internal/lang"
)

const updateTestSrc = adds.OneWayListSrc + `
procedure leaf(OneWayList *p) {
  p->data = 1;
}
procedure mid(OneWayList *p) {
  leaf(p);
}
procedure lone(OneWayList *p) {
  p->data = 2;
}
`

// TestUpdateResetsAndCascades: Update must rebuild a touched function's
// summary from its new body (no stale accesses — the fixed point only
// accumulates, so leftovers would persist forever) and re-close every
// transitive caller, leaving unrelated functions untouched.
func TestUpdateResetsAndCascades(t *testing.T) {
	prog, err := lang.Parse(updateTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(prog)
	if s := a.FuncSummary("mid").String(); !containsWrite(a.FuncSummary("mid"), "data") {
		t.Fatalf("mid summary missing inherited data write: %s", s)
	}
	loneBefore := a.FuncSummary("lone")

	// Rewrite leaf to write next instead of data.
	variant, err := lang.Parse(adds.OneWayListSrc + `
procedure leaf(OneWayList *p) {
  p->next = NULL;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog.Func("leaf").Body = variant.Func("leaf").Body

	redone := a.Update("leaf")
	got := map[string]bool{}
	for _, n := range redone {
		got[n] = true
	}
	if !got["leaf"] || !got["mid"] {
		t.Errorf("Update should re-summarize leaf and its caller mid, got %v", redone)
	}
	if got["lone"] {
		t.Errorf("Update re-summarized unrelated function lone: %v", redone)
	}
	if a.FuncSummary("lone") != loneBefore {
		t.Error("unrelated function lone lost its memoized summary")
	}
	for _, fn := range []string{"leaf", "mid"} {
		s := a.FuncSummary(fn)
		if containsWrite(s, "data") {
			t.Errorf("%s kept a stale data write after the rewrite: %s", fn, s)
		}
		if !containsWrite(s, "next") {
			t.Errorf("%s missing the new next write: %s", fn, s)
		}
	}
}

func containsWrite(s *Summary, field string) bool {
	for _, w := range s.Writes() {
		if w.Field == field {
			return true
		}
	}
	return false
}
