// Package core is the public face of the ADDS reproduction: a pipeline
// that compiles PSL source (parse → type check → normalize), runs
// general path matrix analysis and abstraction validation, answers
// parallelizability queries, applies the paper's transformations, and
// executes programs on the real-parallel interpreter or the simulated
// Sequent machine.
//
// Typical use:
//
//	c, err := core.Compile(src)
//	reports, _ := c.LoopReports("timestep")
//	par, _ := c.StripMine("timestep", 0, 4)
//	v, stats, _ := par.Run(core.RunConfig{}, "simulate", args...)
//
// Or let the planner decide what is parallel (the paper's actual
// pitch — the annotations license the compiler, not the caller):
//
//	auto, _ := c.AutoParallel(0)        // plan every loop, default width
//	fmt.Println(auto.Plan)              // what ran parallel, what didn't, why
//	v, stats, _ = auto.RunParallel(core.RunConfig{}, 4, "simulate", args...)
package core

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/analysis/conservative"
	"repro/internal/analysis/klimit"
	"repro/internal/depend"
	"repro/internal/effects"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/parexec"
	"repro/internal/transform"
)

// Compilation is a compiled PSL program with its analyses.
type Compilation struct {
	// Program is the checked, normalized program.
	Program *lang.Program
	// Analysis is the general path matrix result for every function.
	Analysis *analysis.Result
	// Effects is the interprocedural effect analyzer.
	Effects *effects.Analyzer

	// auto caches planned variants per strip width, so repeated
	// AutoParallel calls (the serving layer's hot path) re-plan
	// nothing. Guarded by autoMu; lazily allocated.
	autoMu sync.Mutex
	auto   map[int]*AutoPlan
}

// Compile parses, checks, normalizes, and analyzes PSL source.
func Compile(src string) (*Compilation, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(prog)
}

// Analyze wraps an already-parsed program.
func Analyze(prog *lang.Program) (*Compilation, error) {
	res, err := analysis.New(prog).AnalyzeAll()
	if err != nil {
		return nil, err
	}
	return &Compilation{
		Program:  prog,
		Analysis: res,
		Effects:  effects.NewAnalyzer(prog),
	}, nil
}

// FuncResult returns the path-matrix analysis of one function.
func (c *Compilation) FuncResult(fn string) (*analysis.FuncResult, error) {
	fr, ok := c.Analysis.Funcs[fn]
	if !ok {
		return nil, fmt.Errorf("core: no function %q", fn)
	}
	return fr, nil
}

// ExitViolations returns the abstraction violations active at a
// function's exit (empty means the declaration is valid on return —
// §3.3.1's modular guarantee).
func (c *Compilation) ExitViolations(fn string) ([]analysis.ViolationKey, error) {
	fr, err := c.FuncResult(fn)
	if err != nil {
		return nil, err
	}
	return fr.Exit.ViolationKeys(), nil
}

// LoopReports runs the dependence test on every while loop of fn.
func (c *Compilation) LoopReports(fn string) ([]*depend.Report, error) {
	fr, err := c.FuncResult(fn)
	if err != nil {
		return nil, err
	}
	f := c.Program.Func(fn)
	var loops []*lang.WhileStmt
	lang.Walk(f.Body, func(s lang.Stmt) bool {
		if w, ok := s.(*lang.WhileStmt); ok {
			loops = append(loops, w)
		}
		return true
	})
	var out []*depend.Report
	for i := range loops {
		rep, err := depend.AnalyzeLoop(c.Program, fr, c.Effects, fn, i)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// StripMine applies §4.3.3's transformation to the loopIndex-th while
// loop of fn with the given strip width (forall iterations per trip of
// the outer loop; the paper uses width = PEs, the scheduling policies
// in parexec want width > PEs) and returns a new compilation of the
// transformed program.
func (c *Compilation) StripMine(fn string, loopIndex, width int) (*Compilation, error) {
	res, err := transform.StripMine(c.Program, fn, loopIndex, width)
	if err != nil {
		return nil, err
	}
	return Analyze(res.Program)
}

// AutoPlan is an auto-parallelized program: a full Compilation of the
// transformed program plus the planner's per-loop report.
type AutoPlan struct {
	*Compilation
	// Plan records which loops were strip-mined and why the rest were
	// rejected (Plan.Program is the same program this Compilation wraps).
	Plan *transform.Plan
}

// AutoParallel plans the whole program: every while loop of every
// function goes through the dependence test, every approved loop is
// strip-mined with the given width (widthHint <= 0 selects
// transform.DefaultWidth for this host — 4 iterations per PE), and the
// transformed program comes back as a new Compilation alongside the
// structured plan. Planned variants are cached per resolved width on
// this Compilation, so only the first call per width pays for
// planning; that first call is itself incremental — the planner
// memoizes per-function analysis and re-analyzes only the functions
// each rewrite touches (see internal/transform), so cold-path plan
// cost grows with approved loops, not with program size squared. The
// serial Compilation is untouched either way.
func (c *Compilation) AutoParallel(widthHint int) (*AutoPlan, error) {
	width := widthHint
	if width <= 0 {
		width = transform.DefaultWidth(0)
	}
	c.autoMu.Lock()
	defer c.autoMu.Unlock()
	if ap, ok := c.auto[width]; ok {
		return ap, nil
	}
	plan, err := transform.AutoParallelize(c.Program, width)
	if err != nil {
		return nil, err
	}
	comp, err := Analyze(plan.Program)
	if err != nil {
		return nil, err
	}
	ap := &AutoPlan{Compilation: comp, Plan: plan}
	if c.auto == nil {
		c.auto = make(map[int]*AutoPlan)
	}
	c.auto[width] = ap
	return ap, nil
}

// Unroll applies the [HG92] unrolling transformation.
func (c *Compilation) Unroll(fn string, loopIndex, factor int) (*Compilation, error) {
	prog, err := transform.Unroll(c.Program, fn, loopIndex, factor)
	if err != nil {
		return nil, err
	}
	return Analyze(prog)
}

// RunConfig selects the execution mode for Run.
type RunConfig struct {
	// Engine selects the interpreter engine (default
	// interp.EngineCompiled, the slot-resolved closure code;
	// interp.EngineBytecode, the flat register-bank VM lowered from
	// the same IR; interp.EngineWalk is the tree-walking oracle). The
	// engines are bit-identical in results, output, and simulated
	// cycle counts.
	Engine interp.Engine
	// Simulate runs on the deterministic machine model instead of
	// real goroutines.
	Simulate bool
	// PEs is the simulated PE count (Simulate mode).
	PEs int
	// Sched is the iteration→PE scheduling policy for RunParallel
	// (nil = parexec's default, dynamic self-scheduling with chunk 1).
	Sched parexec.Policy
	// Seed for the deterministic rand() builtin.
	Seed uint64
	// Output receives print() output (nil discards).
	Output io.Writer
	// Ctx, if non-nil, cancels the run: deadline or explicit cancel
	// aborts execution with an error (see interp.Config.Ctx). The
	// sandbox budgets below plus Ctx are what the serving layer
	// (internal/serve) uses to bound untrusted programs.
	Ctx context.Context
	// MaxSteps bounds executed statements (0 = interpreter default).
	MaxSteps int64
	// MaxAllocs bounds `new` node allocations (0 = unlimited).
	MaxAllocs int64
	// MaxOutputBytes bounds total print() output (0 = unlimited).
	MaxOutputBytes int64
	// Profiler, if non-nil, collects per-forall-site parallel-efficiency
	// measurements during RunParallel (ignored by the other run modes —
	// only the parexec pool has per-PE timings to report).
	Profiler *obs.ForallProfiler
}

// Run executes fn with the given arguments.
func (c *Compilation) Run(cfg RunConfig, fn string, args ...interp.Value) (interp.Value, interp.Stats, error) {
	mode := interp.Real
	if cfg.Simulate {
		mode = interp.Simulated
	}
	return interp.Run(c.Program, interp.Config{
		Engine:         cfg.Engine,
		Mode:           mode,
		PEs:            cfg.PEs,
		Seed:           cfg.Seed,
		Output:         cfg.Output,
		Ctx:            cfg.Ctx,
		MaxSteps:       cfg.MaxSteps,
		MaxAllocs:      cfg.MaxAllocs,
		MaxOutputBytes: cfg.MaxOutputBytes,
	}, fn, args...)
}

// RunParallel executes fn with real goroutine parallelism: the
// program's forall regions (the ones StripMine emits) run on a
// parexec worker pool of pes PEs (0 = one worker per logical CPU),
// with cfg.Sched deciding which PE runs which iteration. Result and
// print() output are bit-identical to a serial Run under every policy,
// with one exception: rand() inside a forall body draws from the
// shared stream in scheduling order (see package parexec).
func (c *Compilation) RunParallel(cfg RunConfig, pes int, fn string, args ...interp.Value) (interp.Value, interp.Stats, error) {
	return parexec.Run(c.Program, parexec.Options{
		Interp:         cfg.Engine,
		PEs:            pes,
		Sched:          cfg.Sched,
		Seed:           cfg.Seed,
		Output:         cfg.Output,
		Ctx:            cfg.Ctx,
		MaxSteps:       cfg.MaxSteps,
		MaxAllocs:      cfg.MaxAllocs,
		MaxOutputBytes: cfg.MaxOutputBytes,
		Profiler:       cfg.Profiler,
	}, fn, args...)
}

// RunChecked is Run with the paper's §2.2 runtime shape checks
// enabled: every pointer store is validated against its field's ADDS
// annotation, and the violations observed during execution are
// returned alongside the result.
func (c *Compilation) RunChecked(cfg RunConfig, fn string, args ...interp.Value) (interp.Value, interp.Stats, []interp.ShapeViolation, error) {
	mode := interp.Real
	if cfg.Simulate {
		mode = interp.Simulated
	}
	ip := interp.New(c.Program, interp.Config{
		Engine:         cfg.Engine,
		Mode:           mode,
		PEs:            cfg.PEs,
		Seed:           cfg.Seed,
		Output:         cfg.Output,
		Ctx:            cfg.Ctx,
		MaxSteps:       cfg.MaxSteps,
		MaxAllocs:      cfg.MaxAllocs,
		MaxOutputBytes: cfg.MaxOutputBytes,
		ShapeChecks:    true,
	})
	v, err := ip.Call(fn, args...)
	return v, ip.Stats(), ip.ShapeViolations(), err
}

// Source renders the (possibly transformed) program back to PSL.
func (c *Compilation) Source() string { return lang.Format(c.Program) }

// MatrixAfter renders the path matrix just after the first assignment
// in fn whose canonical text equals stmtText (e.g. "p = p->next;") —
// used to print the paper's example matrices.
func (c *Compilation) MatrixAfter(fn, stmtText string) (string, error) {
	fr, err := c.FuncResult(fn)
	if err != nil {
		return "", err
	}
	as, err := analysis.FindAssign(c.Program.Func(fn), stmtText)
	if err != nil {
		return "", err
	}
	st, ok := fr.After[lang.Stmt(as)]
	if !ok {
		return "", fmt.Errorf("core: no state recorded after %q", stmtText)
	}
	return st.PM.String(), nil
}

// MatrixBeforeLoop renders the path matrix just before the n-th while
// loop of fn.
func (c *Compilation) MatrixBeforeLoop(fn string, loopIndex int) (string, error) {
	fr, err := c.FuncResult(fn)
	if err != nil {
		return "", err
	}
	loop, err := analysis.FindLoop(c.Program.Func(fn), loopIndex)
	if err != nil {
		return "", err
	}
	st, ok := fr.Before[lang.Stmt(loop)]
	if !ok {
		return "", fmt.Errorf("core: loop not reached")
	}
	return st.PM.String(), nil
}

// ---------------------------------------------------------------------------
// Baseline comparison (experiment X1)

// BaselineVerdicts compares the three analyses on one loop: the
// conservative baseline, the k-limited storage-graph baseline, and the
// paper's ADDS + general path matrix analysis.
type BaselineVerdicts struct {
	Func         string
	LoopIndex    int
	Conservative bool
	KLimited     bool
	ADDS         bool
	ADDSReport   *depend.Report
}

// String renders one comparison row.
func (v *BaselineVerdicts) String() string {
	return fmt.Sprintf("%-24s loop#%d  conservative=%-3s  k-limited=%-3s  ADDS+GPM=%-3s",
		v.Func, v.LoopIndex, yn(v.Conservative), yn(v.KLimited), yn(v.ADDS))
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// CompareBaselines runs all three analyses on the loopIndex-th while
// loop of fn and reports who can parallelize it.
func (c *Compilation) CompareBaselines(fn string, loopIndex int) (*BaselineVerdicts, error) {
	cons := conservative.New(c.Program)
	cv, err := cons.LoopParallelizable(fn, loopIndex)
	if err != nil {
		return nil, err
	}
	kl := klimit.New(c.Program, klimit.DefaultK)
	kv, err := kl.LoopParallelizable(fn, loopIndex)
	if err != nil {
		return nil, err
	}
	fr, err := c.FuncResult(fn)
	if err != nil {
		return nil, err
	}
	rep, err := depend.AnalyzeLoop(c.Program, fr, c.Effects, fn, loopIndex)
	if err != nil {
		return nil, err
	}
	return &BaselineVerdicts{
		Func:         fn,
		LoopIndex:    loopIndex,
		Conservative: cv.Parallelizable,
		KLimited:     kv.Parallelizable,
		ADDS:         rep.Parallelizable,
		ADDSReport:   rep,
	}, nil
}

// FormatVerdictTable renders a set of comparisons as the X1 table.
func FormatVerdictTable(rows []*BaselineVerdicts) string {
	var b strings.Builder
	b.WriteString("loop                             conservative  k-limited  ADDS+GPM\n")
	for _, v := range rows {
		fmt.Fprintf(&b, "%-24s loop#%d  %-12s  %-9s  %s\n",
			v.Func, v.LoopIndex, yn(v.Conservative), yn(v.KLimited), yn(v.ADDS))
	}
	return b.String()
}
