package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/adds"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/nbody"
)

const scaleSrc = adds.OneWayListSrc + `
function OneWayList * build(int n) {
  var OneWayList *head = NULL;
  var int i = n;
  while i > 0 {
    var OneWayList *node = new OneWayList;
    node->data = i;
    node->next = head;
    head = node;
    i = i - 1;
  }
  return head;
}

procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->data = p->data * c;
    p = p->next;
  }
}

function int total(OneWayList *head) {
  var int s = 0;
  var OneWayList *p = head;
  while p != NULL {
    s = s + p->data;
    p = p->next;
  }
  return s;
}

function int main(int n, int c) {
  var OneWayList *h = build(n);
  scale(h, c);
  print("scaled", n, "nodes");
  return total(h);
}
`

func TestCompileAndRun(t *testing.T) {
	c, err := Compile(scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	v, stats, err := c.Run(RunConfig{Output: &out}, "main", interp.IntVal(10), interp.IntVal(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 110 {
		t.Errorf("main = %d, want 110", v.I)
	}
	if !strings.Contains(out.String(), "scaled 10 nodes") {
		t.Errorf("output = %q", out.String())
	}
	if stats.Allocations != 10 {
		t.Errorf("allocations = %d", stats.Allocations)
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile("procedure f() { x = 1; }"); err == nil {
		t.Error("bad program accepted")
	}
}

func TestLoopReports(t *testing.T) {
	c, err := Compile(scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := c.LoopReports("scale")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || !reps[0].Parallelizable {
		t.Errorf("scale report: %v", reps)
	}
	reps, err = c.LoopReports("total")
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].Parallelizable {
		t.Error("reduction must not parallelize")
	}
	if _, err := c.LoopReports("nosuch"); err == nil {
		t.Error("unknown function must error")
	}
}

func TestStripMineViaCore(t *testing.T) {
	c, err := Compile(scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := c.Run(RunConfig{}, "main", interp.IntVal(23), interp.IntVal(3))
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.StripMine("scale", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := par.Run(RunConfig{Simulate: true, PEs: 4}, "main", interp.IntVal(23), interp.IntVal(3))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != want.I {
		t.Errorf("transformed result %d, want %d", got.I, want.I)
	}
	if !strings.Contains(par.Source(), "forall") {
		t.Error("transformed source lacks forall")
	}
	// The original compilation is untouched.
	if strings.Contains(c.Source(), "forall") {
		t.Error("StripMine mutated the original")
	}
}

func TestUnrollViaCore(t *testing.T) {
	c, err := Compile(scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	un, err := c.Unroll("scale", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := un.Run(RunConfig{}, "main", interp.IntVal(17), interp.IntVal(2))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 17*18 { // sum(1..17)*2
		t.Errorf("unrolled result %d", got.I)
	}
	// The unrolled body repeats; the original compilation is untouched.
	if n := strings.Count(lang.FormatFunc(un.Program.Func("scale")), "p = p->next;"); n != 3 {
		t.Errorf("unrolled scale has %d advances, want 3", n)
	}
	if strings.Count(lang.FormatFunc(c.Program.Func("scale")), "p = p->next;") != 1 {
		t.Error("Unroll mutated the original")
	}
	// Error paths: bad factor, unapprovable loop, unknown function.
	if _, err := c.Unroll("scale", 0, 1); err == nil {
		t.Error("factor < 2 must fail")
	}
	if _, err := c.Unroll("total", 0, 2); err == nil {
		t.Error("reduction loop must be refused")
	}
	if _, err := c.Unroll("nosuch", 0, 2); err == nil {
		t.Error("unknown function must fail")
	}
}

// TestAutoParallelViaCore: the planner through the pipeline API — plan
// report, per-width caching, and bit-identical execution.
func TestAutoParallelViaCore(t *testing.T) {
	c, err := Compile(scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := c.AutoParallel(8)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Plan.Parallelized != 1 || auto.Plan.Width != 8 {
		t.Fatalf("plan: %s", auto.Plan)
	}
	if !strings.Contains(auto.Source(), "forall") {
		t.Error("planned source lacks forall")
	}
	if strings.Contains(c.Source(), "forall") {
		t.Error("AutoParallel mutated the original")
	}
	// The planned variant equals the hand-tuned transformation.
	hand, err := c.StripMine("scale", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Source() != hand.Source() {
		t.Errorf("auto variant diverged from hand-tuned StripMine:\n%s", auto.Source())
	}
	// Same width is cached (same handle); a new width plans anew.
	again, err := c.AutoParallel(8)
	if err != nil {
		t.Fatal(err)
	}
	if again != auto {
		t.Error("repeated AutoParallel(8) should return the cached plan")
	}
	wider, err := c.AutoParallel(16)
	if err != nil {
		t.Fatal(err)
	}
	if wider == auto || wider.Plan.Width != 16 {
		t.Errorf("AutoParallel(16) returned width %d", wider.Plan.Width)
	}
	// Parallel execution of the planned program reproduces the serial run.
	var wantOut, gotOut bytes.Buffer
	want, _, err := c.Run(RunConfig{Output: &wantOut}, "main", interp.IntVal(23), interp.IntVal(3))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := auto.RunParallel(RunConfig{Output: &gotOut}, 4, "main", interp.IntVal(23), interp.IntVal(3))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != want.I || gotOut.String() != wantOut.String() {
		t.Errorf("auto parallel run diverged: %d %q vs %d %q", got.I, gotOut.String(), want.I, wantOut.String())
	}
}

func TestMatrixRendering(t *testing.T) {
	c, err := Compile(scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.MatrixAfter("scale", "p = p->next;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "next") || !strings.Contains(m, "p'") {
		t.Errorf("matrix:\n%s", m)
	}
	before, err := c.MatrixBeforeLoop("scale", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(before, "=") {
		t.Errorf("before-loop matrix:\n%s", before)
	}
	if _, err := c.MatrixAfter("scale", "q = q->next;"); err == nil {
		t.Error("missing statement must error")
	}
}

func TestExitViolations(t *testing.T) {
	src := adds.BinTreeSrc + `
procedure bad(BinTree *a, BinTree *b) {
  a->left = b->left;
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := c.ExitViolations("bad")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Errorf("violations = %v", keys)
	}
}

func TestCompareBaselines(t *testing.T) {
	c, err := Compile(scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.CompareBaselines("scale", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Conservative || v.KLimited || !v.ADDS {
		t.Errorf("verdicts: %s", v)
	}
	table := FormatVerdictTable([]*BaselineVerdicts{v})
	if !strings.Contains(table, "ADDS+GPM") || !strings.Contains(table, "yes") {
		t.Errorf("table:\n%s", table)
	}
}

func TestBarnesHutThroughCore(t *testing.T) {
	c, err := Compile(nbody.BarnesHutPSL)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := c.LoopReports(nbody.TimestepFunc)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || !reps[0].Parallelizable || !reps[1].Parallelizable {
		t.Fatalf("BHL1/BHL2 reports: %v", reps)
	}
	keys, err := c.ExitViolations("build_tree")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Errorf("build_tree violations: %v", keys)
	}
}
