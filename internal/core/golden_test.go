package core

import (
	"testing"

	"repro/internal/nbody"
)

// Golden tests pin the exact rendered matrices for the paper's two
// example programs, so any change to the analysis or the formatter that
// would alter the published artifacts is caught.

const goldenPolySrc = `
type OneWayList [X]
{ int coef, exp;
  OneWayList *next is uniquely forward along X;
};

procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->coef = p->coef * c;
    p = p->next;
  }
}`

func TestGoldenPM1Matrix(t *testing.T) {
	c, err := Compile(goldenPolySrc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.MatrixAfter("scale", "p = p->next;")
	if err != nil {
		t.Fatal(err)
	}
	want := "" +
		"     | head | p     | p'      \n" +
		"head | =    | next+ | =?,next*\n" +
		"p    |      | =     |         \n" +
		"p'   | =?   | next  | =       \n"
	if got != want {
		t.Errorf("PM1 matrix changed:\n--- got\n%s--- want\n%s", got, want)
	}
}

func TestGoldenPM2Matrix(t *testing.T) {
	c, err := Compile(nbody.BarnesHutPSL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.MatrixAfter("timestep", "p = p->next;")
	if err != nil {
		t.Fatal(err)
	}
	want := "" +
		"          | particles | root | p     | p'      \n" +
		"particles | =         | =?   | next+ | =?,next*\n" +
		"root      | =?        | =    | =?    | =?      \n" +
		"p         |           | =?   | =     |         \n" +
		"p'        | =?        | =?   | next  | =       \n"
	if got != want {
		t.Errorf("PM2 matrix changed:\n--- got\n%s--- want\n%s", got, want)
	}
}

func TestGoldenBeforeLoopMatrix(t *testing.T) {
	c, err := Compile(goldenPolySrc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.MatrixBeforeLoop("scale", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := "" +
		"     | head | p\n" +
		"head | =    | =\n" +
		"p    | =    | =\n"
	if got != want {
		t.Errorf("before-loop matrix changed:\n--- got\n%s--- want\n%s", got, want)
	}
}
