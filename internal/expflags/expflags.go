// Package expflags defines the command-line surface of
// cmd/experiments in one importable place, so that the doc-drift
// check (docdrift_test.go at the repository root) can verify that
// every `go run ./cmd/experiments ...` command quoted in README.md,
// DESIGN.md, and docs/ARCHITECTURE.md parses against the flag set the
// binary actually has. cmd/experiments registers exactly this set and
// nothing else.
package expflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/interp"
	"repro/internal/parexec"
)

// Flags is the parsed flag values of cmd/experiments. See DESIGN.md's
// experiment index for the IDs each selector regenerates.
type Flags struct {
	Tables  bool   // -t: T1/T2 simulated Sequent tables (§4.4)
	Fig     int    // -fig N: figures F1..F5
	PM      int    // -pm N: path-matrix experiments PM1..PM3
	X       int    // -x N: supplementary experiments X1..X3
	Real    bool   // -real: measured wall-clock R1 (poly) and R2 (Barnes-Hut)
	All     bool   // -all: everything
	Measure int    // -measure: simulated time steps per table cell
	PEs     string // -pes: comma-separated pool sizes for R1/R2
	Sched   string // -sched: R2 scheduling policy ("all" sweeps every policy)
	Chunk   int    // -chunk: R2 dynamic self-scheduling chunk size
	Engine  string // -engine: interpreter engine for R1/R2 ("compiled" or "walk")
}

// Register installs the cmd/experiments flag set on fs and returns the
// value struct the flags write into.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Tables, "t", false, "T1/T2 tables (simulated Sequent)")
	fs.IntVar(&f.Fig, "fig", 0, "figure number (1-5)")
	fs.IntVar(&f.PM, "pm", 0, "path-matrix experiment (1-3)")
	fs.IntVar(&f.X, "x", 0, "supplementary experiment (1-3)")
	fs.BoolVar(&f.Real, "real", false, "R1/R2: measured wall-clock speedups (parexec)")
	fs.BoolVar(&f.All, "all", false, "run everything")
	fs.IntVar(&f.Measure, "measure", 1, "measured steps per table cell")
	fs.StringVar(&f.PEs, "pes", "2,4,8", "comma-separated worker-pool sizes for -real (R1 and R2)")
	fs.StringVar(&f.Sched, "sched", "all",
		"scheduling policy for the R2 table: block, cyclic, dynamic, or all")
	fs.IntVar(&f.Chunk, "chunk", 1, "chunk size for R2's dynamic self-scheduling")
	fs.StringVar(&f.Engine, "engine", "compiled",
		fmt.Sprintf("interpreter engine for the R1/R2 measured tables: %s (R3 always measures both)",
			strings.Join(interp.EngineNames(), " or ")))
	return f
}

// EngineKind resolves the -engine flag.
func (f *Flags) EngineKind() (interp.Engine, error) {
	return interp.ParseEngine(strings.ToLower(strings.TrimSpace(f.Engine)))
}

// PEList parses the -pes flag into pool sizes.
func (f *Flags) PEList() ([]int, error) {
	var out []int
	for _, s := range strings.Split(f.PEs, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("expflags: -pes wants positive integers, got %q", s)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("expflags: -pes is empty")
	}
	return out, nil
}

// Policies resolves the -sched/-chunk flags into the scheduling
// policies to measure ("all" sweeps block, cyclic, and dynamic).
func (f *Flags) Policies() ([]parexec.Policy, error) {
	if strings.EqualFold(strings.TrimSpace(f.Sched), "all") {
		var out []parexec.Policy
		for _, name := range parexec.PolicyNames() {
			p, err := parexec.ParsePolicy(name, f.Chunk)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		return out, nil
	}
	p, err := parexec.ParsePolicy(f.Sched, f.Chunk)
	if err != nil {
		return nil, err
	}
	return []parexec.Policy{p}, nil
}
