// Package expflags defines the command-line surfaces of the
// repository's binaries — cmd/experiments, cmd/pslserved, and
// cmd/loadgen — in one importable place, so that the doc-drift check
// (docdrift_test.go at the repository root) can verify that every
// `go run ./cmd/... ...` command quoted in README.md, DESIGN.md, and
// docs/ARCHITECTURE.md parses against the flag set the binary
// actually has. Each cmd registers exactly its set and nothing else.
package expflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/interp"
	"repro/internal/parexec"
	"repro/internal/serve"
)

// Flags is the parsed flag values of cmd/experiments. See DESIGN.md's
// experiment index for the IDs each selector regenerates.
type Flags struct {
	Tables   bool   // -t: T1/T2 simulated Sequent tables (§4.4)
	Fig      int    // -fig N: figures F1..F5
	PM       int    // -pm N: path-matrix experiments PM1..PM3
	X        int    // -x N: supplementary experiments X1..X3
	Real     bool   // -real: measured wall-clock R1 (poly) and R2 (Barnes-Hut)
	PlanCost bool   // -plancost: R7 planner-cost scaling on the generated many-loop program
	All      bool   // -all: everything
	Measure  int    // -measure: simulated time steps per table cell
	PEs      string // -pes: comma-separated pool sizes for R1/R2
	Sched    string // -sched: R2 scheduling policy ("all" sweeps every policy)
	Chunk    int    // -chunk: R2 dynamic self-scheduling chunk size
	Engine   string // -engine: interpreter engine for R1/R2 ("compiled", "bytecode", or "walk")
}

// Register installs the cmd/experiments flag set on fs and returns the
// value struct the flags write into.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Tables, "t", false, "T1/T2 tables (simulated Sequent)")
	fs.IntVar(&f.Fig, "fig", 0, "figure number (1-5)")
	fs.IntVar(&f.PM, "pm", 0, "path-matrix experiment (1-3)")
	fs.IntVar(&f.X, "x", 0, "supplementary experiment (1-3)")
	fs.BoolVar(&f.Real, "real", false, "R1/R2: measured wall-clock speedups (parexec)")
	fs.BoolVar(&f.PlanCost, "plancost", false,
		"R7: auto-parallelization planner cost scaling on generated many-loop programs")
	fs.BoolVar(&f.All, "all", false, "run everything")
	fs.IntVar(&f.Measure, "measure", 1, "measured steps per table cell")
	fs.StringVar(&f.PEs, "pes", "2,4,8", "comma-separated worker-pool sizes for -real (R1 and R2)")
	fs.StringVar(&f.Sched, "sched", "all",
		"scheduling policy for the R2 table: block, cyclic, dynamic, or all")
	fs.IntVar(&f.Chunk, "chunk", 1, "chunk size for R2's dynamic self-scheduling")
	fs.StringVar(&f.Engine, "engine", "compiled",
		fmt.Sprintf("interpreter engine for the R1/R2 measured tables: %s (R3 always measures all three)",
			strings.Join(interp.EngineNames(), " or ")))
	return f
}

// EngineKind resolves the -engine flag.
func (f *Flags) EngineKind() (interp.Engine, error) {
	return interp.ParseEngine(strings.ToLower(strings.TrimSpace(f.Engine)))
}

// PEList parses the -pes flag into pool sizes.
func (f *Flags) PEList() ([]int, error) {
	var out []int
	for _, s := range strings.Split(f.PEs, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("expflags: -pes wants positive integers, got %q", s)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("expflags: -pes is empty")
	}
	return out, nil
}

// Policies resolves the -sched/-chunk flags into the scheduling
// policies to measure ("all" sweeps block, cyclic, and dynamic).
func (f *Flags) Policies() ([]parexec.Policy, error) {
	if strings.EqualFold(strings.TrimSpace(f.Sched), "all") {
		var out []parexec.Policy
		for _, name := range parexec.PolicyNames() {
			p, err := parexec.ParsePolicy(name, f.Chunk)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		return out, nil
	}
	p, err := parexec.ParsePolicy(f.Sched, f.Chunk)
	if err != nil {
		return nil, err
	}
	return []parexec.Policy{p}, nil
}

// ---------------------------------------------------------------------------
// cmd/pslserved

// ServeFlags is the parsed flag values of cmd/pslserved.
type ServeFlags struct {
	Addr         string        // -addr: listen address
	Workers      int           // -workers: executing requests (0 = GOMAXPROCS)
	Queue        int           // -queue: admission queue depth (0 = 4×workers)
	CacheEntries int           // -cache: compiled-program cache capacity
	CacheShards  int           // -shards: cache shard count
	Timeout      time.Duration // -timeout: default per-request wall clock
	MaxSteps     int64         // -max-steps: per-request statement budget
	MaxAllocs    int64         // -max-allocs: per-request allocation budget
	MaxOutput    int64         // -max-output: per-request print() byte budget
	MaxWidth     int           // -max-width: auto-parallelize strip-width cap
	TenantQueue  int           // -tenant-queue: per-tenant admission quota
	TraceRate    float64       // -trace-rate: fraction of requests traced into /debug/traces
}

// RegisterServe installs the cmd/pslserved flag set on fs.
func RegisterServe(fs *flag.FlagSet) *ServeFlags {
	f := &ServeFlags{}
	fs.StringVar(&f.Addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&f.Workers, "workers", 0, "concurrently executing requests (0 = GOMAXPROCS)")
	fs.IntVar(&f.Queue, "queue", 0, "admission queue depth (0 = 4×workers)")
	fs.IntVar(&f.CacheEntries, "cache", 0, "compiled-program cache entries (0 = 128)")
	fs.IntVar(&f.CacheShards, "shards", 0, "program cache shards (0 = 8)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "default per-request wall-clock budget (0 = 5s)")
	fs.Int64Var(&f.MaxSteps, "max-steps", 0, "per-request statement budget (0 = 50M)")
	fs.Int64Var(&f.MaxAllocs, "max-allocs", 0, "per-request allocation budget (0 = 1M)")
	fs.Int64Var(&f.MaxOutput, "max-output", 0, "per-request print() byte budget (0 = 1MiB)")
	fs.IntVar(&f.MaxWidth, "max-width", 0, "strip-width cap for auto-parallelized requests (0 = 256)")
	fs.IntVar(&f.TenantQueue, "tenant-queue", 0, "per-tenant queued-request quota (0 = whole queue)")
	fs.Float64Var(&f.TraceRate, "trace-rate", 0,
		"fraction of requests traced into /debug/traces (0 = only profiled ones)")
	return f
}

// ServerConfig maps the flags onto a serve.Config (zeros keep the
// server defaults).
func (f *ServeFlags) ServerConfig() serve.Config {
	return serve.Config{
		Workers:          f.Workers,
		QueueDepth:       f.Queue,
		CacheEntries:     f.CacheEntries,
		CacheShards:      f.CacheShards,
		DefaultTimeout:   f.Timeout,
		MaxSteps:         f.MaxSteps,
		MaxAllocs:        f.MaxAllocs,
		MaxOutputBytes:   f.MaxOutput,
		MaxStripWidth:    f.MaxWidth,
		TenantQueueDepth: f.TenantQueue,
		TraceRate:        f.TraceRate,
	}
}

// ---------------------------------------------------------------------------
// cmd/pslrouter

// RouterFlags is the parsed flag values of cmd/pslrouter.
type RouterFlags struct {
	Addr           string        // -addr: listen address
	Backends       string        // -backends: comma-separated pslserved base URLs
	Replicas       int           // -replicas: virtual nodes per backend on the hash ring
	HealthInterval time.Duration // -health-interval: /healthz probe period
	Retries        int           // -retries: extra backends tried after a transport failure
	AsyncWorkers   int           // -async-workers: async job queue drainers
	AsyncQueue     int           // -async-queue: queued async-job backlog cap
	AsyncAttempts  int           // -async-attempts: attempts before an async job fails
	AsyncTimeout   time.Duration // -async-timeout: per-attempt wall clock for async jobs
	TraceRate      float64       // -trace-rate: fraction of proxied requests traced
}

// RegisterRouter installs the cmd/pslrouter flag set on fs.
func RegisterRouter(fs *flag.FlagSet) *RouterFlags {
	f := &RouterFlags{}
	fs.StringVar(&f.Addr, "addr", "127.0.0.1:8090", "listen address")
	fs.StringVar(&f.Backends, "backends", "http://127.0.0.1:8080",
		"comma-separated pslserved base URLs to shard across")
	fs.IntVar(&f.Replicas, "replicas", 0, "virtual nodes per backend on the hash ring (0 = 512)")
	fs.DurationVar(&f.HealthInterval, "health-interval", 0, "backend /healthz probe period (0 = 250ms)")
	fs.IntVar(&f.Retries, "retries", 0,
		"extra backends a request tries after a transport failure (0 = 2, -1 = none)")
	fs.IntVar(&f.AsyncWorkers, "async-workers", 0, "async job queue drainers (0 = 4)")
	fs.IntVar(&f.AsyncQueue, "async-queue", 0, "queued async-job backlog cap (0 = 256)")
	fs.IntVar(&f.AsyncAttempts, "async-attempts", 0, "attempts before an async job is failed (0 = 3)")
	fs.DurationVar(&f.AsyncTimeout, "async-timeout", 0, "per-attempt wall clock for async jobs (0 = 60s)")
	fs.Float64Var(&f.TraceRate, "trace-rate", 0,
		"fraction of proxied requests traced into /debug/traces (0 = only profiled ones)")
	return f
}

// BackendList splits the -backends flag into base URLs.
func (f *RouterFlags) BackendList() ([]string, error) {
	var out []string
	for _, u := range strings.Split(f.Backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("expflags: -backends is empty")
	}
	return out, nil
}

// RouterConfig maps the flags onto a serve.RouterConfig (zeros keep the
// router defaults).
func (f *RouterFlags) RouterConfig() (serve.RouterConfig, error) {
	backends, err := f.BackendList()
	if err != nil {
		return serve.RouterConfig{}, err
	}
	return serve.RouterConfig{
		Backends:        backends,
		Replicas:        f.Replicas,
		HealthInterval:  f.HealthInterval,
		Retries:         f.Retries,
		AsyncWorkers:    f.AsyncWorkers,
		AsyncQueueDepth: f.AsyncQueue,
		AsyncAttempts:   f.AsyncAttempts,
		AsyncTimeout:    f.AsyncTimeout,
		TraceRate:       f.TraceRate,
	}, nil
}

// ---------------------------------------------------------------------------
// cmd/loadgen

// LoadgenFlags is the parsed flag values of cmd/loadgen.
type LoadgenFlags struct {
	Addr           string        // -addr: service base URL
	Corpus         string        // -corpus: directory of .psl programs
	Concurrency    int           // -concurrency: closed-loop workers
	Duration       time.Duration // -duration: hot-phase length
	Cold           float64       // -cold: forced-miss fraction of hot requests
	AutoRate       float64       // -auto-rate: fraction of hot requests sent with auto:true
	BytecodeRate   float64       // -bytecode-rate: fraction of hot requests run on the bytecode VM
	Seed           int64         // -seed: corpus-draw RNG seed
	RequireHotRate float64       // -require-hot-rate: exit nonzero below this hit rate
	FailOnError    bool          // -fail-on-error: exit nonzero on any request error
	TraceRate      float64       // -trace-rate: fraction of hot requests sent with profile:true
}

// RegisterLoadgen installs the cmd/loadgen flag set on fs.
func RegisterLoadgen(fs *flag.FlagSet) *LoadgenFlags {
	f := &LoadgenFlags{}
	fs.StringVar(&f.Addr, "addr", "http://127.0.0.1:8080", "pslserved base URL")
	fs.StringVar(&f.Corpus, "corpus", "testdata", "directory of .psl programs to serve")
	fs.IntVar(&f.Concurrency, "concurrency", 8, "closed-loop worker count")
	fs.DurationVar(&f.Duration, "duration", 2*time.Second, "hot-phase duration")
	fs.Float64Var(&f.Cold, "cold", 0.02, "fraction of hot-phase requests with never-seen source")
	fs.Float64Var(&f.AutoRate, "auto-rate", 0,
		"fraction of hot-phase requests sent with auto:true (planner-parallelized execution)")
	fs.Float64Var(&f.BytecodeRate, "bytecode-rate", 0,
		"fraction of hot-phase requests sent with engine:bytecode (flat register-bank VM)")
	fs.Int64Var(&f.Seed, "seed", 1, "RNG seed for corpus draws")
	fs.Float64Var(&f.RequireHotRate, "require-hot-rate", 0,
		"fail (exit 1) if the hot-phase cache-hit rate is below this")
	fs.BoolVar(&f.FailOnError, "fail-on-error", false, "fail (exit 1) if any request errored")
	fs.Float64Var(&f.TraceRate, "trace-rate", 0,
		"fraction of hot-phase requests sent with profile:true (the response must carry a trace)")
	return f
}
