package tablefmt

import (
	"strings"
	"testing"
)

func TestFormatBasic(t *testing.T) {
	tb := New("TIMES ms", 500, 2000).
		AddRow("seq", 1.5, 12.25).
		AddRow("par(4)", 0.5, 3.138)
	got := tb.Format(2)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count = %d, want 3 (header + 2 rows):\n%s", len(lines), got)
	}
	for _, want := range []string{"TIMES ms", "N = 500", "N = 2000"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("header %q missing %q", lines[0], want)
		}
	}
	if !strings.Contains(lines[1], "seq") || !strings.Contains(lines[1], "1.50") || !strings.Contains(lines[1], "12.25") {
		t.Errorf("row 1 = %q, want seq/1.50/12.25", lines[1])
	}
	if !strings.Contains(lines[2], "par(4)") || !strings.Contains(lines[2], "3.14") {
		t.Errorf("row 2 = %q, want par(4) with 3.14 (prec-2 rounding)", lines[2])
	}
}

// TestFormatPrecision: prec controls digits after the decimal point.
func TestFormatPrecision(t *testing.T) {
	tb := New("X", 1).AddRow("r", 2.71828)
	if got := tb.Format(0); !strings.Contains(got, "| 3 ") {
		t.Errorf("prec 0: %q does not round to 3", got)
	}
	if got := tb.Format(3); !strings.Contains(got, "2.718") {
		t.Errorf("prec 3: %q missing 2.718", got)
	}
}

// TestFormatEmptyTable: a table with no rows renders just the header,
// and one with no columns renders just the label column.
func TestFormatEmptyTable(t *testing.T) {
	got := New("EMPTY", 10, 20).Format(1)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("empty table: %d lines, want header only:\n%s", len(lines), got)
	}
	got = New("NOCOLS").AddRow("r", 1).Format(1)
	lines = strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("no-column table: %d lines, want 2:\n%s", len(lines), got)
	}
	if strings.Contains(got, "N =") {
		t.Errorf("no-column table printed an N header: %q", got)
	}
}

// TestFormatRaggedRows: rows shorter than the column list zero-fill the
// missing cells; rows longer than the column list drop the extras — a
// ragged input never panics or misaligns the grid.
func TestFormatRaggedRows(t *testing.T) {
	tb := New("RAGGED", 1, 2, 3).
		AddRow("short", 9).
		AddRow("long", 1, 2, 3, 4, 5)
	got := tb.Format(0)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3:\n%s", len(lines), got)
	}
	if n := strings.Count(lines[1], "|"); n != 3 {
		t.Errorf("short row has %d cells, want 3: %q", n, lines[1])
	}
	if !strings.Contains(lines[1], "9") || strings.Count(lines[1], "0") < 2 {
		t.Errorf("short row %q should zero-fill the two missing cells", lines[1])
	}
	if n := strings.Count(lines[2], "|"); n != 3 {
		t.Errorf("long row has %d cells, want 3 (extras dropped): %q", n, lines[2])
	}
	if strings.Contains(lines[2], "4") || strings.Contains(lines[2], "5") {
		t.Errorf("long row %q leaked cells beyond the columns", lines[2])
	}
}

// TestAddRowChains: AddRow returns the table for chaining.
func TestAddRowChains(t *testing.T) {
	tb := New("C", 1)
	if tb.AddRow("a", 1) != tb {
		t.Error("AddRow did not return the receiver")
	}
}
