// Package tablefmt renders the paper-style evaluation grids — a label
// column followed by one column per problem size N — used by both the
// simulated Sequent tables (package sequent, §4.4 TIMES/SPEEDUP) and
// the measured real-hardware tables (cmd/experiments -real).
package tablefmt

import (
	"fmt"
	"strings"
)

// Table is one grid: Label heads the corner cell, Columns are the N
// values, and each row pairs a configuration label with one cell per N.
type Table struct {
	Label   string
	Columns []int
	rows    []row
}

type row struct {
	label string
	cells []float64
}

// New starts a grid with the given corner label and N columns.
func New(label string, columns ...int) *Table {
	return &Table{Label: label, Columns: columns}
}

// AddRow appends a configuration row; cells align with Columns.
func (t *Table) AddRow(label string, cells ...float64) *Table {
	t.rows = append(t.rows, row{label: label, cells: cells})
	return t
}

// Format renders the grid with prec digits after the decimal point.
func (t *Table) Format(prec int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s", t.Label)
	for _, n := range t.Columns {
		fmt.Fprintf(&b, "| N = %-6d ", n)
	}
	b.WriteString("\n")
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-9s", r.label)
		for i := range t.Columns {
			var cell float64
			if i < len(r.cells) {
				cell = r.cells[i]
			}
			fmt.Fprintf(&b, "| %-10.*f ", prec, cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
