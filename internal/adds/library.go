package adds

// This file holds the canonical ADDS declarations used throughout the
// paper; they are referenced by tests, examples and the experiment
// harness. Each is written exactly in the paper's surface syntax (§3.1
// and §4.3.1) and parsed on first use.

// OneWayListSrc is the paper's §3.1.1 one-way linked-list declaration —
// a single dimension X traversed uniquely forward by next.
const OneWayListSrc = `
type OneWayList [X]
{ int data;
  OneWayList *next is uniquely forward along X;
};`

// ListNodeSrc is the paper's *unannotated* polynomial node (§3.1.1):
// the same physical record as OneWayList but with no shape information,
// so next defaults to the unknown direction on dimension D. This is the
// declaration under which Figure 1's cyclic and tournament structures
// are legal.
const ListNodeSrc = `
type ListNode
{ int coef, exp;
  ListNode *next;
};`

// TwoWayListSrc is the doubly linked list from §2.2: forward/backward
// pair along one dimension.
const TwoWayListSrc = `
type TwoWayList [X]
{ int data;
  TwoWayList *next is uniquely forward along X;
  TwoWayList *prev is backward along X;
};`

// BinTreeSrc is the binary tree from §2.2/§3.3.1: left and right are
// uniquely forward along one dimension, so all subtrees are disjoint.
const BinTreeSrc = `
type BinTree [down]
{ int data;
  BinTree *left, *right is uniquely forward along down;
};`

// OrthListSrc is the orthogonal list (sparse matrix) from §3.1.3,
// Figure 3: two dependent dimensions X and Y.
const OrthListSrc = `
type OrthList [X][Y]
{ int data;
  OrthList *across is uniquely forward along X;
  OrthList *back   is backward along X;
  OrthList *down   is uniquely forward along Y;
  OrthList *up     is backward along Y;
};`

// TwoDRangeTreeSrc is the 2-D range tree from §3.1.3, Figure 4: three
// dimensions where sub is independent of both down and leaves.
const TwoDRangeTreeSrc = `
type TwoDRangeTree [down][sub][leaves] where sub||down, sub||leaves
{ int data;
  TwoDRangeTree *left, *right is uniquely forward along down;
  TwoDRangeTree *subtree      is uniquely forward along sub;
  TwoDRangeTree *next         is uniquely forward along leaves;
  TwoDRangeTree *prev         is backward along leaves;
};`

// OctreeSrc is the Barnes-Hut octree from §4.3.1, Figure 5: the down
// dimension forms the spatial tree, the leaves dimension threads the
// particles into a one-way list. The dimensions are dependent (the
// default), because leaf nodes are reachable along both.
const OctreeSrc = `
type Octree [down][leaves]
{ real mass;
  real posx, posy, posz;
  real forcex, forcey, forcez;
  int  node_type;
  Octree *subtrees[8] is uniquely forward along down;
  Octree *next        is uniquely forward along leaves;
};`

// Library parses every canonical declaration above into one universe.
func Library() *Universe {
	return MustParse(OneWayListSrc + ListNodeSrc + TwoWayListSrc +
		BinTreeSrc + OrthListSrc + TwoDRangeTreeSrc + OctreeSrc)
}
