package adds

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses one or more ADDS type declarations written in the paper's
// surface syntax, for example:
//
//	type TwoDRangeTree [down][sub][leaves] where sub||down, sub||leaves
//	{ int data;
//	  TwoDRangeTree *left, *right is uniquely forward along down;
//	  TwoDRangeTree *subtree      is uniquely forward along sub;
//	  TwoDRangeTree *next         is uniquely forward along leaves;
//	  TwoDRangeTree *prev         is backward along leaves;
//	};
//
// Comments run from "//" to end of line. The returned universe has been
// checked for dangling pointer targets.
func Parse(src string) (*Universe, error) {
	p := &declParser{lex: newDeclLexer(src)}
	u := NewUniverse()
	for {
		p.lex.skipSpace()
		if p.lex.eof() {
			break
		}
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if err := u.Add(d); err != nil {
			return nil, err
		}
	}
	if err := u.Check(); err != nil {
		return nil, err
	}
	return u, nil
}

// ParseDecl parses exactly one declaration.
func ParseDecl(src string) (*Decl, error) {
	p := &declParser{lex: newDeclLexer(src)}
	d, err := p.parseDecl()
	if err != nil {
		return nil, err
	}
	p.lex.skipSpace()
	if !p.lex.eof() {
		return nil, fmt.Errorf("adds: trailing input after declaration at line %d", p.lex.line)
	}
	return d, nil
}

// MustParse is Parse that panics on error; intended for static
// declarations in examples and tests.
func MustParse(src string) *Universe {
	u, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return u
}

type declLexer struct {
	src  string
	pos  int
	line int
}

func newDeclLexer(src string) *declLexer {
	return &declLexer{src: src, line: 1}
}

func (l *declLexer) eof() bool { return l.pos >= len(l.src) }

func (l *declLexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *declLexer) peek() byte {
	if l.eof() {
		return 0
	}
	return l.src[l.pos]
}

// next returns the next token: an identifier, a number, "||", or a single
// punctuation byte.
func (l *declLexer) next() (string, error) {
	l.skipSpace()
	if l.eof() {
		return "", fmt.Errorf("adds: unexpected end of input at line %d", l.line)
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return l.src[start:l.pos], nil
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return l.src[start:l.pos], nil
	case c == '|' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '|':
		l.pos += 2
		return "||", nil
	case strings.IndexByte("[]{};,*", c) >= 0:
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("adds: unexpected character %q at line %d", c, l.line)
}

func (l *declLexer) peekToken() (string, error) {
	save, saveLine := l.pos, l.line
	tok, err := l.next()
	l.pos, l.line = save, saveLine
	return tok, err
}

func (l *declLexer) expect(want string) error {
	tok, err := l.next()
	if err != nil {
		return err
	}
	if tok != want {
		return fmt.Errorf("adds: expected %q, found %q at line %d", want, tok, l.line)
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type declParser struct {
	lex *declLexer
}

func (p *declParser) parseDecl() (*Decl, error) {
	if err := p.lex.expect("type"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Decl{Name: name}

	// Optional dimension list: [X][Y]...
	for {
		tok, err := p.lex.peekToken()
		if err != nil {
			return nil, err
		}
		if tok != "[" {
			break
		}
		p.lex.next()
		dim, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.lex.expect("]"); err != nil {
			return nil, err
		}
		d.Dims = append(d.Dims, dim)
	}
	if len(d.Dims) == 0 {
		d.Dims = []string{DefaultDimension}
	}

	// Optional independence clause: where a||b, c||d
	tok, err := p.lex.peekToken()
	if err != nil {
		return nil, err
	}
	if tok == "where" {
		p.lex.next()
		for {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.lex.expect("||"); err != nil {
				return nil, err
			}
			b, err := p.ident()
			if err != nil {
				return nil, err
			}
			d.Indep = append(d.Indep, [2]string{a, b})
			tok, err := p.lex.peekToken()
			if err != nil {
				return nil, err
			}
			if tok != "," {
				break
			}
			p.lex.next()
		}
	}

	if err := p.lex.expect("{"); err != nil {
		return nil, err
	}
	for {
		tok, err := p.lex.peekToken()
		if err != nil {
			return nil, err
		}
		if tok == "}" {
			p.lex.next()
			break
		}
		if err := p.parseField(d); err != nil {
			return nil, err
		}
	}
	// Optional trailing semicolon (the paper writes "};").
	if tok, err := p.lex.peekToken(); err == nil && tok == ";" {
		p.lex.next()
	}
	return d, nil
}

// parseField parses one field declaration line, which may declare several
// names: "int coef, exp;" or "T *left, *right is uniquely forward along d;".
func (p *declParser) parseField(d *Decl) error {
	typeName, err := p.ident()
	if err != nil {
		return err
	}
	tok, err := p.lex.peekToken()
	if err != nil {
		return err
	}
	isPointer := tok == "*"
	if isPointer {
		p.lex.next()
	}

	type pending struct {
		name  string
		count int
	}
	var names []pending
	for {
		name, err := p.ident()
		if err != nil {
			return err
		}
		count := 1
		tok, err := p.lex.peekToken()
		if err != nil {
			return err
		}
		if tok == "[" {
			p.lex.next()
			numTok, err := p.lex.next()
			if err != nil {
				return err
			}
			n, convErr := strconv.Atoi(numTok)
			if convErr != nil || n < 1 {
				return fmt.Errorf("adds: %s.%s: bad array count %q at line %d", d.Name, name, numTok, p.lex.line)
			}
			count = n
			if err := p.lex.expect("]"); err != nil {
				return err
			}
		}
		names = append(names, pending{name, count})
		tok, err = p.lex.peekToken()
		if err != nil {
			return err
		}
		if tok != "," {
			break
		}
		p.lex.next()
		// In a pointer group every declarator carries its own '*'
		// ("T *left, *right is ..."); a missing or extra '*' mixes
		// pointer and data declarators, which C-style declarations
		// would silently mistype, so reject it.
		tok, err = p.lex.peekToken()
		if err != nil {
			return err
		}
		if (tok == "*") != isPointer {
			return fmt.Errorf("adds: %s: mixed data and pointer declarators at line %d", d.Name, p.lex.line)
		}
		if isPointer {
			p.lex.next()
		}
	}

	if !isPointer {
		for _, n := range names {
			if n.count != 1 {
				return fmt.Errorf("adds: %s.%s: array data fields are not supported", d.Name, n.name)
			}
			d.Data = append(d.Data, DataField{Name: n.name, Type: typeName})
		}
		return p.lex.expect(";")
	}

	// Optional annotation.
	dim, dir, unique := "", Unknown, false
	tok, err = p.lex.peekToken()
	if err != nil {
		return err
	}
	if tok == "is" {
		p.lex.next()
		tok, err = p.lex.next()
		if err != nil {
			return err
		}
		if tok == "uniquely" {
			unique = true
			tok, err = p.lex.next()
			if err != nil {
				return err
			}
		}
		switch tok {
		case "forward":
			dir = Forward
		case "backward":
			dir = Backward
		default:
			return fmt.Errorf("adds: %s: expected forward/backward, found %q at line %d", d.Name, tok, p.lex.line)
		}
		if err := p.lex.expect("along"); err != nil {
			return err
		}
		dim, err = p.ident()
		if err != nil {
			return err
		}
	}
	if dim == "" {
		// Unannotated recursive pointer: default dimension, unknown
		// (possibly cyclic) direction. The default dimension must exist.
		dim = DefaultDimension
		if !d.HasDim(dim) {
			d.Dims = append(d.Dims, dim)
		}
	}
	for _, n := range names {
		d.Pointers = append(d.Pointers, PointerField{
			Name:   n.name,
			Type:   typeName,
			Count:  n.count,
			Dim:    dim,
			Dir:    dir,
			Unique: unique,
		})
	}
	return p.lex.expect(";")
}

func (p *declParser) ident() (string, error) {
	tok, err := p.lex.next()
	if err != nil {
		return "", err
	}
	if !isIdentStart(rune(tok[0])) {
		return "", fmt.Errorf("adds: expected identifier, found %q at line %d", tok, p.lex.line)
	}
	switch tok {
	case "type", "where", "is", "uniquely", "forward", "backward", "along":
		return "", fmt.Errorf("adds: keyword %q used as identifier at line %d", tok, p.lex.line)
	}
	return tok, nil
}
