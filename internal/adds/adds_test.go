package adds

import (
	"strings"
	"testing"
)

func TestParseOneWayList(t *testing.T) {
	d, err := ParseDecl(OneWayListSrc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "OneWayList" {
		t.Errorf("name = %q, want OneWayList", d.Name)
	}
	if len(d.Dims) != 1 || d.Dims[0] != "X" {
		t.Errorf("dims = %v, want [X]", d.Dims)
	}
	if len(d.Data) != 1 || d.Data[0].Name != "data" || d.Data[0].Type != "int" {
		t.Errorf("data fields = %+v", d.Data)
	}
	f := d.Pointer("next")
	if f == nil {
		t.Fatal("no pointer field next")
	}
	if f.Dim != "X" || f.Dir != Forward || !f.Unique || f.Count != 1 {
		t.Errorf("next = %+v, want uniquely forward along X", *f)
	}
}

func TestParseDefaultDimension(t *testing.T) {
	d, err := ParseDecl(ListNodeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Dims) != 1 || d.Dims[0] != DefaultDimension {
		t.Errorf("dims = %v, want [%s]", d.Dims, DefaultDimension)
	}
	if len(d.Data) != 2 {
		t.Fatalf("data fields = %+v, want coef and exp", d.Data)
	}
	f := d.Pointer("next")
	if f == nil {
		t.Fatal("no pointer field next")
	}
	if f.Dir != Unknown || f.Unique {
		t.Errorf("unannotated field should be unknown/non-unique, got %+v", *f)
	}
}

func TestParseMultiNamePointerGroup(t *testing.T) {
	d, err := ParseDecl(BinTreeSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"left", "right"} {
		f := d.Pointer(name)
		if f == nil {
			t.Fatalf("missing field %s", name)
		}
		if f.Dim != "down" || f.Dir != Forward || !f.Unique {
			t.Errorf("%s = %+v, want uniquely forward along down", name, *f)
		}
	}
}

func TestParseIndependenceClause(t *testing.T) {
	d, err := ParseDecl(TwoDRangeTreeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Dims); got != 3 {
		t.Fatalf("dims = %v", d.Dims)
	}
	if !d.Independent("sub", "down") || !d.Independent("down", "sub") {
		t.Error("sub||down not recorded (should be symmetric)")
	}
	if !d.Independent("sub", "leaves") {
		t.Error("sub||leaves not recorded")
	}
	if d.Independent("down", "leaves") {
		t.Error("down and leaves must be dependent (default)")
	}
	if d.Independent("down", "down") {
		t.Error("a dimension is never independent of itself")
	}
}

func TestParsePointerArray(t *testing.T) {
	d, err := ParseDecl(OctreeSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := d.Pointer("subtrees")
	if f == nil {
		t.Fatal("missing subtrees")
	}
	if f.Count != 8 {
		t.Errorf("subtrees count = %d, want 8", f.Count)
	}
	if f.Dim != "down" || !f.Unique || f.Dir != Forward {
		t.Errorf("subtrees = %+v", *f)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"missing type kw", `foo X {};`, "expected \"type\""},
		{"bad dim ref", `type T [X] { T *n is forward along Y; };`, "undeclared dimension"},
		{"dup field", `type T [X] { int a; int a; };`, "declared twice"},
		{"dup dim", `type T [X][X] { int a; };`, "declared twice"},
		{"indep undeclared", `type T [X] where X||Y { int a; };`, "undeclared dimension"},
		{"indep self", `type T [X] where X||X { int a; };`, "independent of itself"},
		{"keyword ident", `type forward [X] { int a; };`, "keyword"},
		{"bad array count", `type T [X] { T *n[0] is forward along X; };`, "bad array count"},
		{"dangling target", `type T [X] { U *n is forward along X; };`, "undeclared type"},
		{"mixed declarators", `type T [X] { T *a, b; };`, "mixed data and pointer"},
		{"missing along", `type T [X] { T *n is forward X; };`, "expected \"along\""},
		{"truncated", `type T [X] { int a;`, "unexpected end"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", c.src, c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	// String() output must re-parse to an equivalent declaration.
	for _, src := range []string{
		OneWayListSrc, ListNodeSrc, TwoWayListSrc, BinTreeSrc,
		OrthListSrc, TwoDRangeTreeSrc, OctreeSrc,
	} {
		d1, err := ParseDecl(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		d2, err := ParseDecl(d1.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", d1.String(), err)
		}
		if d1.String() != d2.String() {
			t.Errorf("round trip mismatch:\n%s\nvs\n%s", d1, d2)
		}
	}
}

func TestAcyclic(t *testing.T) {
	lib := Library()
	owl := lib.Decl("OneWayList")
	if !owl.Acyclic("next") {
		t.Error("OneWayList.next must be acyclic")
	}
	ln := lib.Decl("ListNode")
	if ln.Acyclic("next") {
		t.Error("unannotated ListNode.next must not be provably acyclic")
	}
	twl := lib.Decl("TwoWayList")
	if !twl.Acyclic("next") || !twl.Acyclic("prev") {
		t.Error("each direction of TwoWayList alone is acyclic")
	}
	if twl.Acyclic("next", "prev") {
		t.Error("mixing next and prev can cycle; Acyclic must reject")
	}
	ol := lib.Decl("OrthList")
	if !ol.Acyclic("across") || !ol.Acyclic("down") {
		t.Error("orthogonal list forward fields are acyclic")
	}
	if ol.Acyclic("across", "down") {
		t.Error("across and down traverse different dimensions; not provably acyclic together")
	}
	bt := lib.Decl("BinTree")
	if !bt.Acyclic("left", "right") {
		t.Error("left+right along one dimension are jointly acyclic")
	}
	if bt.Acyclic() != true {
		t.Error("empty field set is trivially acyclic")
	}
	if bt.Acyclic("nosuch") {
		t.Error("unknown field is not acyclic")
	}
}

func TestUniqueAlong(t *testing.T) {
	lib := Library()
	if !lib.Decl("OneWayList").UniqueAlong("X") {
		t.Error("OneWayList unique along X")
	}
	if !lib.Decl("Octree").UniqueAlong("down") || !lib.Decl("Octree").UniqueAlong("leaves") {
		t.Error("Octree unique along both dimensions")
	}
	if lib.Decl("ListNode").UniqueAlong(DefaultDimension) {
		t.Error("unannotated next is not unique")
	}
	// A dimension with no forward fields is not "unique".
	d := MustParse(`type B [X] { int v; B *back is backward along X; };`).Decl("B")
	if d.UniqueAlong("X") {
		t.Error("dimension with only backward fields is not UniqueAlong")
	}
	// Non-unique forward field defeats the property.
	d2 := MustParse(`type C [X] { int v; C *a is forward along X; };`).Decl("C")
	if d2.UniqueAlong("X") {
		t.Error("forward but not uniquely forward must not be UniqueAlong")
	}
}

func TestDisjointSiblings(t *testing.T) {
	lib := Library()
	if !lib.Decl("BinTree").DisjointSiblings("left", "right") {
		t.Error("binary tree subtrees are disjoint")
	}
	if !lib.Decl("Octree").DisjointSiblings("subtrees") {
		t.Error("octree subtrees are disjoint")
	}
	if lib.Decl("ListNode").DisjointSiblings("next") {
		t.Error("unannotated field has no disjointness guarantee")
	}
	if lib.Decl("TwoWayList").DisjointSiblings("next", "prev") {
		t.Error("prev is backward; sibling disjointness requires uniquely forward")
	}
	if lib.Decl("BinTree").DisjointSiblings() {
		t.Error("empty set is not disjoint-siblings")
	}
}

func TestCrossDimensionDisjoint(t *testing.T) {
	rt := Library().Decl("TwoDRangeTree")
	if !rt.CrossDimensionDisjoint("sub", "down") {
		t.Error("sub||down declared independent")
	}
	if rt.CrossDimensionDisjoint("down", "leaves") {
		t.Error("down and leaves are dependent")
	}
	oc := Library().Decl("Octree")
	if oc.CrossDimensionDisjoint("down", "leaves") {
		t.Error("octree dims are dependent: leaves reachable along both")
	}
}

func TestPathNeverRevisits(t *testing.T) {
	lib := Library()
	if !lib.Decl("OneWayList").PathNeverRevisits("next") {
		t.Error("one-way list traversal never revisits")
	}
	if lib.Decl("ListNode").PathNeverRevisits("next") {
		t.Error("unknown direction may revisit")
	}
	if lib.Decl("TwoWayList").PathNeverRevisits("next", "prev") {
		t.Error("mixed directions may revisit")
	}
	if lib.Decl("BinTree").PathNeverRevisits() {
		t.Error("empty traversal has no guarantee by convention")
	}
}

func TestUniverse(t *testing.T) {
	u := Library()
	if u.Len() != 7 {
		t.Fatalf("library has %d decls, want 7", u.Len())
	}
	if u.Decl("Octree") == nil || u.Decl("NoSuch") != nil {
		t.Error("Decl lookup broken")
	}
	d, f := u.FieldDecl("Octree", "next")
	if d == nil || f == nil || f.Dim != "leaves" {
		t.Errorf("FieldDecl(Octree, next) = %v, %v", d, f)
	}
	if _, f := u.FieldDecl("Octree", "nosuch"); f != nil {
		t.Error("FieldDecl should return nil for unknown field")
	}
	if _, f := u.FieldDecl("NoSuch", "next"); f != nil {
		t.Error("FieldDecl should return nil for unknown type")
	}
	types := u.SortedTypes()
	for i := 1; i < len(types); i++ {
		if types[i-1] >= types[i] {
			t.Errorf("SortedTypes not sorted: %v", types)
		}
	}
	// Duplicate type rejected.
	if err := u.Add(&Decl{Name: "Octree", Dims: []string{"d"}}); err == nil {
		t.Error("duplicate Add must fail")
	}
}

func TestValidateDirect(t *testing.T) {
	bad := []Decl{
		{Name: ""},
		{Name: "T", Dims: []string{""}},
		{Name: "T", Dims: []string{"X"}, Pointers: []PointerField{{Name: "f", Type: "T", Count: 1, Dim: "X", Dir: Unknown, Unique: true}}},
		{Name: "T", Dims: []string{"X"}, Pointers: []PointerField{{Name: "f", Type: "T", Count: 0, Dim: "X"}}},
		{Name: "T", Dims: []string{"X"}, Pointers: []PointerField{{Name: "f", Type: "T", Count: 1, Dim: ""}}},
		{Name: "T", Dims: []string{"X"}, Data: []DataField{{Name: "", Type: "int"}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid decl %+v", i, bad[i])
		}
	}
	good := Decl{Name: "T", Dims: []string{"X"}, Pointers: []PointerField{{Name: "f", Type: "T", Count: 1, Dim: "X", Dir: Forward, Unique: true}}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected valid decl: %v", err)
	}
}

func TestFieldsAlong(t *testing.T) {
	ol := Library().Decl("OrthList")
	fwdX := ol.FieldsAlong("X", Forward)
	if len(fwdX) != 1 || fwdX[0].Name != "across" {
		t.Errorf("FieldsAlong(X, Forward) = %+v", fwdX)
	}
	backY := ol.FieldsAlong("Y", Backward)
	if len(backY) != 1 || backY[0].Name != "up" {
		t.Errorf("FieldsAlong(Y, Backward) = %+v", backY)
	}
	if got := ol.FieldsAlong("Z", Forward); got != nil {
		t.Errorf("unknown dimension should yield nil, got %+v", got)
	}
}
