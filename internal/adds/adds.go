// Package adds implements the Abstract Description of Data Structures
// (ADDS) mechanism from Hummel, Nicolau & Hendren (ICPP 1992).
//
// An ADDS declaration augments a recursive record type with shape
// information: the structure's named dimensions, the dimension and
// direction each recursive pointer field traverses, whether forward
// traversals along a dimension are unique (at most one in-edge per node),
// and which dimensions are independent of each other.
//
// The compiler-facing queries (Acyclic, UniqueAlong, Independent,
// PathNeverRevisits, ...) are what the general path matrix analysis in
// package analysis consumes to sharpen alias information and to validate
// the abstraction against shape-changing stores.
package adds

import (
	"fmt"
	"sort"
	"strings"
)

// Direction is the declared traversal direction of a pointer field along
// its dimension.
type Direction int

const (
	// Unknown is the default direction: the field may traverse the
	// dimension in any manner, including forming cycles.
	Unknown Direction = iota
	// Forward declares that following the field moves one unit away from
	// the dimension's origin; forward-only traversals are acyclic.
	Forward
	// Backward declares that following the field moves one unit back
	// toward the dimension's origin; backward-only traversals are acyclic.
	Backward
)

// String returns the ADDS surface syntax for the direction.
func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	default:
		return "unknown"
	}
}

// DefaultDimension is the implicit dimension assigned to recursive pointer
// fields that carry no ADDS annotation. Its direction is Unknown, which is
// the paper's conservative default ("possibly cyclic").
const DefaultDimension = "D"

// DataField is a non-pointer field of the record (its type is opaque to
// the shape analysis; only its name matters for field-granularity
// dependence testing).
type DataField struct {
	Name string
	Type string
}

// PointerField is a recursive pointer field together with its ADDS
// annotation.
type PointerField struct {
	Name string
	// Type is the target record type name. For self-recursive structures
	// it equals the declaring type's name, but mutually recursive
	// structures are permitted.
	Type string
	// Count is the number of pointers the field holds: 1 for a plain
	// pointer, n for a pointer array such as "Octree *subtrees[8]".
	Count int
	// Dim is the dimension the field traverses (DefaultDimension if the
	// field carries no annotation).
	Dim string
	// Dir is the declared direction along Dim.
	Dir Direction
	// Unique reports a "uniquely forward" (or "uniquely backward")
	// annotation: along Dim, every node is pointed to by at most one
	// pointer held in fields of this declaration group.
	Unique bool
}

// Decl is a complete ADDS declaration for one record type.
type Decl struct {
	Name string
	// Dims lists the declared dimensions in source order. A declaration
	// without explicit dimensions has the single DefaultDimension.
	Dims []string
	// Indep holds the dimension pairs declared independent via a
	// "where a||b" clause. Dimensions are dependent by default.
	Indep [][2]string
	// Data holds the non-pointer fields in source order.
	Data []DataField
	// Pointers holds the recursive pointer fields in source order.
	Pointers []PointerField
}

// Validate checks internal consistency of the declaration: dimensions
// referenced by fields or independence clauses must be declared, field
// names must be unique, pointer-array counts must be positive, and a field
// may traverse only one dimension in one direction (enforced structurally
// by PointerField, re-checked here for parser output).
func (d *Decl) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("adds: declaration has no type name")
	}
	dims := make(map[string]bool, len(d.Dims))
	for _, dim := range d.Dims {
		if dim == "" {
			return fmt.Errorf("adds: %s: empty dimension name", d.Name)
		}
		if dims[dim] {
			return fmt.Errorf("adds: %s: dimension %q declared twice", d.Name, dim)
		}
		dims[dim] = true
	}
	for _, pair := range d.Indep {
		for _, dim := range pair {
			if !dims[dim] {
				return fmt.Errorf("adds: %s: independence clause names undeclared dimension %q", d.Name, dim)
			}
		}
		if pair[0] == pair[1] {
			return fmt.Errorf("adds: %s: dimension %q declared independent of itself", d.Name, pair[0])
		}
	}
	names := make(map[string]bool)
	for _, f := range d.Data {
		if f.Name == "" {
			return fmt.Errorf("adds: %s: data field with empty name", d.Name)
		}
		if names[f.Name] {
			return fmt.Errorf("adds: %s: field %q declared twice", d.Name, f.Name)
		}
		names[f.Name] = true
	}
	for _, f := range d.Pointers {
		if f.Name == "" {
			return fmt.Errorf("adds: %s: pointer field with empty name", d.Name)
		}
		if names[f.Name] {
			return fmt.Errorf("adds: %s: field %q declared twice", d.Name, f.Name)
		}
		names[f.Name] = true
		if f.Count < 1 {
			return fmt.Errorf("adds: %s: field %q has non-positive count %d", d.Name, f.Name, f.Count)
		}
		if f.Dim == "" {
			return fmt.Errorf("adds: %s: field %q has no dimension", d.Name, f.Name)
		}
		if !dims[f.Dim] {
			return fmt.Errorf("adds: %s: field %q traverses undeclared dimension %q", d.Name, f.Name, f.Dim)
		}
		if f.Unique && f.Dir == Unknown {
			return fmt.Errorf("adds: %s: field %q is uniquely-directed but has unknown direction", d.Name, f.Name)
		}
	}
	return nil
}

// Pointer returns the pointer field with the given name, or nil.
func (d *Decl) Pointer(name string) *PointerField {
	for i := range d.Pointers {
		if d.Pointers[i].Name == name {
			return &d.Pointers[i]
		}
	}
	return nil
}

// DataField returns the data field with the given name, or nil.
func (d *Decl) DataField(name string) *DataField {
	for i := range d.Data {
		if d.Data[i].Name == name {
			return &d.Data[i]
		}
	}
	return nil
}

// HasDim reports whether dim is a declared dimension of d.
func (d *Decl) HasDim(dim string) bool {
	for _, x := range d.Dims {
		if x == dim {
			return true
		}
	}
	return false
}

// Independent reports whether dimensions a and b were declared independent
// ("where a||b"). Dimensions are dependent by default; a dimension is
// never independent of itself.
func (d *Decl) Independent(a, b string) bool {
	if a == b {
		return false
	}
	for _, pair := range d.Indep {
		if (pair[0] == a && pair[1] == b) || (pair[0] == b && pair[1] == a) {
			return true
		}
	}
	return false
}

// FieldsAlong returns the pointer fields that traverse dim in the given
// direction, in source order.
func (d *Decl) FieldsAlong(dim string, dir Direction) []PointerField {
	var out []PointerField
	for _, f := range d.Pointers {
		if f.Dim == dim && f.Dir == dir {
			out = append(out, f)
		}
	}
	return out
}

// Acyclic reports whether following only the named fields can never form a
// cycle according to the declaration. This holds exactly when all the
// fields traverse a single dimension and they all move in the same
// declared (non-Unknown) direction: the paper's "the term forward by
// itself declares an acyclic shape". An empty field set is trivially
// acyclic.
func (d *Decl) Acyclic(fields ...string) bool {
	dim, dir := "", Unknown
	for _, name := range fields {
		f := d.Pointer(name)
		if f == nil || f.Dir == Unknown {
			return false
		}
		if dim == "" {
			dim, dir = f.Dim, f.Dir
			continue
		}
		if f.Dim != dim || f.Dir != dir {
			return false
		}
	}
	return true
}

// UniqueAlong reports whether every forward field along dim is declared
// unique, i.e. each node has at most one in-edge along the dimension.
// This is the tree/list disjointness property: forward traversals starting
// from distinct, non-aliased nodes can never meet. It is false when the
// dimension has no forward fields at all.
func (d *Decl) UniqueAlong(dim string) bool {
	fwd := d.FieldsAlong(dim, Forward)
	if len(fwd) == 0 {
		return false
	}
	for _, f := range fwd {
		if !f.Unique {
			return false
		}
	}
	return true
}

// PathNeverRevisits reports whether a traversal that repeatedly follows
// any of the named fields is guaranteed never to visit the same node
// twice. This is the property that licenses parallel processing of the
// nodes of a pointer-chasing loop (footnote 1 of the paper). It is
// exactly Acyclic: same dimension, same declared direction.
func (d *Decl) PathNeverRevisits(fields ...string) bool {
	if len(fields) == 0 {
		return false
	}
	return d.Acyclic(fields...)
}

// DisjointSiblings reports whether two distinct pointers held in the named
// fields of a *single* node always target distinct, unshared substructures
// along the fields' dimension — the binary-tree "all subtrees of n are
// disjoint" property. It requires every named field to be uniquely forward
// along one common dimension.
func (d *Decl) DisjointSiblings(fields ...string) bool {
	if len(fields) == 0 {
		return false
	}
	dim := ""
	for _, name := range fields {
		f := d.Pointer(name)
		if f == nil || f.Dir != Forward || !f.Unique {
			return false
		}
		if dim == "" {
			dim = f.Dim
		} else if f.Dim != dim {
			return false
		}
	}
	return true
}

// CrossDimensionDisjoint reports whether a node reached by a forward
// traversal along dimension a can never be reached by a forward traversal
// along dimension b (and vice versa). True only for declared-independent
// dimension pairs, e.g. sub||down in the 2-D range tree.
func (d *Decl) CrossDimensionDisjoint(a, b string) bool {
	return d.Independent(a, b)
}

// String renders the declaration in ADDS surface syntax, suitable for
// re-parsing.
func (d *Decl) String() string {
	var b strings.Builder
	b.WriteString("type ")
	b.WriteString(d.Name)
	if !(len(d.Dims) == 1 && d.Dims[0] == DefaultDimension) {
		for _, dim := range d.Dims {
			fmt.Fprintf(&b, " [%s]", dim)
		}
	}
	if len(d.Indep) > 0 {
		b.WriteString(" where ")
		parts := make([]string, len(d.Indep))
		for i, pair := range d.Indep {
			parts[i] = pair[0] + "||" + pair[1]
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString(" {\n")
	for _, f := range d.Data {
		fmt.Fprintf(&b, "  %s %s;\n", f.Type, f.Name)
	}
	for _, f := range d.Pointers {
		fmt.Fprintf(&b, "  %s *%s", f.Type, f.Name)
		if f.Count > 1 {
			fmt.Fprintf(&b, "[%d]", f.Count)
		}
		if f.Dir != Unknown {
			b.WriteString(" is ")
			if f.Unique {
				b.WriteString("uniquely ")
			}
			fmt.Fprintf(&b, "%s along %s", f.Dir, f.Dim)
		}
		b.WriteString(";\n")
	}
	b.WriteString("};")
	return b.String()
}

// Universe is a set of ADDS declarations, indexed by type name. Analyses
// operate over a universe so that mutually recursive structures and
// programs with several structures are handled uniformly.
type Universe struct {
	decls map[string]*Decl
	order []string
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe {
	return &Universe{decls: make(map[string]*Decl)}
}

// Add validates the declaration and installs it, rejecting duplicates and
// dangling pointer-field target types already present with mismatched
// names. Target types may be forward-declared: Add does not require the
// target to exist yet; call Check after all declarations are added.
func (u *Universe) Add(d *Decl) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if _, dup := u.decls[d.Name]; dup {
		return fmt.Errorf("adds: type %q declared twice", d.Name)
	}
	u.decls[d.Name] = d
	u.order = append(u.order, d.Name)
	return nil
}

// Check verifies that every pointer field's target type is declared in the
// universe.
func (u *Universe) Check() error {
	for _, name := range u.order {
		d := u.decls[name]
		for _, f := range d.Pointers {
			if _, ok := u.decls[f.Type]; !ok {
				return fmt.Errorf("adds: %s.%s targets undeclared type %q", d.Name, f.Name, f.Type)
			}
		}
	}
	return nil
}

// Decl returns the declaration for the named type, or nil.
func (u *Universe) Decl(name string) *Decl {
	return u.decls[name]
}

// Types returns the declared type names in insertion order.
func (u *Universe) Types() []string {
	out := make([]string, len(u.order))
	copy(out, u.order)
	return out
}

// Len returns the number of declarations.
func (u *Universe) Len() int { return len(u.order) }

// FieldDecl resolves "typeName.fieldName" to the owning declaration and
// pointer field, or (nil, nil) if either is unknown.
func (u *Universe) FieldDecl(typeName, fieldName string) (*Decl, *PointerField) {
	d := u.decls[typeName]
	if d == nil {
		return nil, nil
	}
	f := d.Pointer(fieldName)
	if f == nil {
		return nil, nil
	}
	return d, f
}

// SortedTypes returns the declared type names sorted lexically (for
// deterministic reporting).
func (u *Universe) SortedTypes() []string {
	out := u.Types()
	sort.Strings(out)
	return out
}
