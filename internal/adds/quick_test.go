package adds

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomDecl builds a structurally valid random declaration.
func randomDecl(r *rand.Rand) *Decl {
	nDims := r.Intn(3) + 1
	d := &Decl{Name: fmt.Sprintf("T%d", r.Intn(1000))}
	for i := 0; i < nDims; i++ {
		d.Dims = append(d.Dims, fmt.Sprintf("d%d", i))
	}
	// Random independence pairs among distinct dims.
	for i := 0; i < nDims; i++ {
		for j := i + 1; j < nDims; j++ {
			if r.Intn(3) == 0 {
				d.Indep = append(d.Indep, [2]string{d.Dims[i], d.Dims[j]})
			}
		}
	}
	nData := r.Intn(3)
	for i := 0; i < nData; i++ {
		d.Data = append(d.Data, DataField{
			Name: fmt.Sprintf("v%d", i),
			Type: []string{"int", "real", "bool"}[r.Intn(3)],
		})
	}
	nPtr := r.Intn(4) + 1
	for i := 0; i < nPtr; i++ {
		dir := Direction(r.Intn(3))
		f := PointerField{
			Name:  fmt.Sprintf("f%d", i),
			Type:  d.Name,
			Count: 1 + r.Intn(4),
			Dim:   d.Dims[r.Intn(nDims)],
			Dir:   dir,
		}
		if dir == Unknown {
			// The surface syntax has no way to put an unannotated
			// field on a named dimension; such fields always live on
			// the default dimension.
			f.Dim = DefaultDimension
			if !d.HasDim(DefaultDimension) {
				d.Dims = append(d.Dims, DefaultDimension)
			}
		} else if r.Intn(2) == 0 {
			f.Unique = true
		}
		d.Pointers = append(d.Pointers, f)
	}
	return d
}

type declGen struct{ D *Decl }

func (declGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(declGen{D: randomDecl(r)})
}

// TestQuickDeclRoundTrip: String() output re-parses to an equivalent
// declaration for arbitrary valid declarations.
func TestQuickDeclRoundTrip(t *testing.T) {
	f := func(g declGen) bool {
		if err := g.D.Validate(); err != nil {
			return false
		}
		text := g.D.String()
		d2, err := ParseDecl(text)
		if err != nil {
			t.Logf("re-parse failed for:\n%s\n%v", text, err)
			return false
		}
		return d2.String() == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickAcyclicConsistency: Acyclic over a single field agrees with
// the field's declared direction.
func TestQuickAcyclicConsistency(t *testing.T) {
	f := func(g declGen) bool {
		for _, pf := range g.D.Pointers {
			if g.D.Acyclic(pf.Name) != (pf.Dir != Unknown) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickIndependenceSymmetric: Independent is symmetric and
// irreflexive for arbitrary declarations.
func TestQuickIndependenceSymmetric(t *testing.T) {
	f := func(g declGen) bool {
		for _, a := range g.D.Dims {
			if g.D.Independent(a, a) {
				return false
			}
			for _, b := range g.D.Dims {
				if g.D.Independent(a, b) != g.D.Independent(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickUniverseRoundTrip: multiple declarations survive a
// parse-print-parse cycle through a universe.
func TestQuickUniverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(3) + 1
		src := ""
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			d := randomDecl(r)
			d.Name = fmt.Sprintf("U%d", i)
			for j := range d.Pointers {
				d.Pointers[j].Type = d.Name
			}
			if seen[d.Name] {
				continue
			}
			seen[d.Name] = true
			src += d.String() + "\n"
		}
		u, err := Parse(src)
		if err != nil {
			t.Logf("parse failed:\n%s\n%v", src, err)
			return false
		}
		return u.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
