package nbody

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/depend"
	"repro/internal/effects"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/transform"
)

func parseBH(t *testing.T) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(BarnesHutPSL)
	if err != nil {
		t.Fatalf("Barnes-Hut PSL does not parse: %v", err)
	}
	return prog
}

// TestBHValidates: the octree abstraction is valid at timestep's loops —
// build_tree/expand_box/insert_particle leave no active violations
// (§4.3.2's validation argument).
func TestBHValidates(t *testing.T) {
	prog := parseBH(t)
	for _, fn := range []string{"expand_box", "insert_particle", "build_tree", TimestepFunc} {
		fr, err := analysis.Analyze(prog, fn)
		if err != nil {
			t.Fatalf("analyze %s: %v", fn, err)
		}
		if n := len(fr.Exit.Violations); n != 0 {
			t.Errorf("%s exits with %d active violation(s): %v", fn, n, fr.Exit.ViolationKeys())
		}
	}
}

// TestBHInsertTemporarySharing: insert_particle temporarily breaks the
// down-dimension uniqueness (the competitor is shared between the old
// and new subtree) and repairs it before the iteration ends.
func TestBHInsertTemporarySharing(t *testing.T) {
	prog := parseBH(t)
	fr, err := analysis.Analyze(prog, "insert_particle")
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("insert_particle")
	// Find the store sub->subtrees[cq] = child and the repairing store
	// t->subtrees[q] = sub.
	var sharingStore, repairStore *lang.AssignStmt
	lang.Walk(fn.Body, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		if !ok {
			return true
		}
		fe, ok := as.LHS.(*lang.FieldExpr)
		if !ok || fe.Base() == nil {
			return true
		}
		rhs, ok := as.RHS.(*lang.Ident)
		if !ok {
			return true
		}
		if fe.Base().Name == "sub" && rhs.Name == "child" {
			sharingStore = as
		}
		if fe.Base().Name == "t" && rhs.Name == "sub" {
			repairStore = as
		}
		return true
	})
	if sharingStore == nil || repairStore == nil {
		t.Fatal("could not locate the sharing/repair stores")
	}
	afterShare := fr.After[sharingStore]
	if afterShare == nil {
		t.Fatal("no state after sharing store")
	}
	if afterShare.Valid("Octree", "down") {
		t.Error("expected a temporary sharing violation after sub->subtrees[cq] = child")
	}
	afterRepair := fr.After[repairStore]
	if afterRepair == nil {
		t.Fatal("no state after repair store")
	}
	if !afterRepair.Valid("Octree", "down") {
		t.Errorf("the repair store must clear the violation; still active: %v", afterRepair.ViolationKeys())
	}
}

// TestBHLoopsParallelizable reproduces the §4.3.2 verdict: BHL1 and
// BHL2 are parallelizable; the build loop is not (it mutates the tree).
func TestBHLoopsParallelizable(t *testing.T) {
	prog := parseBH(t)
	fr, err := analysis.Analyze(prog, TimestepFunc)
	if err != nil {
		t.Fatal(err)
	}
	eff := effects.NewAnalyzer(prog)
	for _, loop := range []int{BHL1, BHL2} {
		rep, err := depend.AnalyzeLoop(prog, fr, eff, TimestepFunc, loop)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Parallelizable {
			t.Errorf("BHL%d must parallelize:\n%s", loop+1, rep)
		}
	}
	// The tree-building loop in build_tree must NOT parallelize.
	frB, err := analysis.Analyze(prog, "build_tree")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := depend.AnalyzeLoop(prog, frB, eff, "build_tree", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parallelizable {
		t.Errorf("build_tree's loop mutates the structure and must be rejected:\n%s", rep)
	}
}

// runSim runs simulate(n, steps) and returns the particle positions.
func runSim(t *testing.T, prog *lang.Program, mode interp.Mode, n, steps int) [][3]float64 {
	t.Helper()
	ip := interp.New(prog, interp.Config{Seed: 7, Mode: mode, PEs: 4})
	v, err := ip.Call("simulate", interp.IntVal(int64(n)), interp.IntVal(int64(steps)),
		interp.RealVal(0.5), interp.RealVal(0.01))
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	var out [][3]float64
	node := v.N
	for node != nil {
		x := node.Data["posx"].AsReal()
		y := node.Data["posy"].AsReal()
		z := node.Data["posz"].AsReal()
		out = append(out, [3]float64{x, y, z})
		node = node.Ptrs["next"][0]
	}
	return out
}

// TestBHSequentialRun: the interpreted simulation runs and moves
// particles plausibly (finite positions, actually updated).
func TestBHSequentialRun(t *testing.T) {
	prog := parseBH(t)
	pos := runSim(t, prog, interp.Real, 32, 2)
	if len(pos) != 32 {
		t.Fatalf("expected 32 particles, got %d", len(pos))
	}
	for i, p := range pos {
		for _, c := range p {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("particle %d has non-finite position %v", i, p)
			}
		}
	}
}

// TestBHStripMinedMatchesSequential: the transformed program computes
// exactly the same particle trajectories (both loops strip-mined).
func TestBHStripMinedMatchesSequential(t *testing.T) {
	prog := parseBH(t)
	want := runSim(t, prog, interp.Real, 24, 2)

	// Strip-mine BHL1 then BHL2 (indices shift as loops are replaced by
	// while loops again — BHL2 remains while loop #1).
	r1, err := transform.StripMine(prog, TimestepFunc, BHL1, 4)
	if err != nil {
		t.Fatalf("strip-mine BHL1: %v", err)
	}
	r2, err := transform.StripMine(r1.Program, TimestepFunc, BHL2, 4)
	if err != nil {
		t.Fatalf("strip-mine BHL2: %v", err)
	}

	for _, mode := range []interp.Mode{interp.Real, interp.Simulated} {
		got := runSim(t, r2.Program, mode, 24, 2)
		if len(got) != len(want) {
			t.Fatalf("mode %v: particle count %d vs %d", mode, len(got), len(want))
		}
		for i := range want {
			for c := 0; c < 3; c++ {
				if math.Abs(got[i][c]-want[i][c]) > 1e-9 {
					t.Fatalf("mode %v: particle %d coord %d: %g vs %g", mode, i, c, got[i][c], want[i][c])
				}
			}
		}
	}
}

// TestBHSimulatedSpeedup: the Sequent-style simulation shows sublinear
// speedup that grows with PEs — the shape of the paper's §4.4 table.
func TestBHSimulatedSpeedup(t *testing.T) {
	prog := parseBH(t)

	cycles := func(p *lang.Program, pes int) int64 {
		ip := interp.New(p, interp.Config{Seed: 7, Mode: interp.Simulated, PEs: pes})
		_, err := ip.Call("simulate", interp.IntVal(64), interp.IntVal(1),
			interp.RealVal(0.5), interp.RealVal(0.01))
		if err != nil {
			t.Fatal(err)
		}
		return ip.Stats().Cycles
	}

	seq := cycles(prog, 1)

	mk := func(pes int) *lang.Program {
		r1, err := transform.StripMine(prog, TimestepFunc, BHL1, pes)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := transform.StripMine(r1.Program, TimestepFunc, BHL2, pes)
		if err != nil {
			t.Fatal(err)
		}
		return r2.Program
	}
	par4 := cycles(mk(4), 4)
	par7 := cycles(mk(7), 7)

	s4 := float64(seq) / float64(par4)
	s7 := float64(seq) / float64(par7)
	t.Logf("seq=%d par4=%d par7=%d speedup4=%.2f speedup7=%.2f", seq, par4, par7, s4, s7)
	if s4 <= 1.3 {
		t.Errorf("par(4) speedup %.2f too small", s4)
	}
	if s7 <= s4 {
		t.Errorf("par(7) speedup %.2f should exceed par(4) %.2f", s7, s4)
	}
	if s4 >= 4.0 || s7 >= 7.0 {
		t.Errorf("speedups must be sublinear: s4=%.2f s7=%.2f", s4, s7)
	}
}
