// Package nbody implements the paper's §4 evaluation workload: the
// Barnes-Hut N-body simulation over an ADDS-declared octree.
//
// It provides the program in two forms:
//
//   - BarnesHutPSL: the original pointer program written in PSL,
//     faithful to §4.1/§4.3 (build_tree via expand_box and
//     insert_particle, the BHL1/BHL2 loops, an octree whose leaves are
//     threaded into a one-way list). This is what the analysis
//     validates, the dependence test approves, and StripMine
//     parallelizes; the Sequent simulator times it.
//
//   - A native Go implementation (see nbody.go) with sequential,
//     strip-mined-parallel, and O(N²) direct drivers, used for real
//     wall-clock measurements and as a cross-check of the interpreted
//     results.
package nbody

// BarnesHutPSL is the Barnes-Hut tree code in PSL. Loop BHL1 is while
// loop #0 of procedure timestep; BHL2 is loop #1.
const BarnesHutPSL = `
// Barnes-Hut N-body simulation (paper section 4).
// The octree declaration is exactly the paper's section 4.3.1, with the
// box geometry and particle state as data fields.
type Octree [down][leaves]
{ real mass;
  real posx, posy, posz;
  real velx, vely, velz;
  real forcex, forcey, forcez;
  real cx, cy, cz, half;
  int  node_type;              // 0 = particle (leaf), 1 = internal
  Octree *subtrees[8] is uniquely forward along down;
  Octree *next        is uniquely forward along leaves;
};

// quadrant_of_point returns which of the 8 children of an internal node
// covers the point (x, y, z).
function int quadrant_of_point(Octree *t, real x, real y, real z) {
  var int q = 0;
  if x >= t->cx { q = q + 1; }
  if y >= t->cy { q = q + 2; }
  if z >= t->cz { q = q + 4; }
  return q;
}

function real quad_cx(Octree *t, int q) {
  if q % 2 == 1 { return t->cx + t->half / 2.0; }
  return t->cx - t->half / 2.0;
}

function real quad_cy(Octree *t, int q) {
  if (q / 2) % 2 == 1 { return t->cy + t->half / 2.0; }
  return t->cy - t->half / 2.0;
}

function real quad_cz(Octree *t, int q) {
  if (q / 4) % 2 == 1 { return t->cz + t->half / 2.0; }
  return t->cz - t->half / 2.0;
}

function Octree * new_internal(real x, real y, real z, real h) {
  var Octree *n = new Octree;
  n->node_type = 1;
  n->cx = x;
  n->cy = y;
  n->cz = z;
  n->half = h;
  return n;
}

// outside reports whether particle p falls outside t's box.
function bool outside(Octree *t, Octree *p) {
  if p->posx <  t->cx - t->half { return true; }
  if p->posx >= t->cx + t->half { return true; }
  if p->posy <  t->cy - t->half { return true; }
  if p->posy >= t->cy + t->half { return true; }
  if p->posz <  t->cz - t->half { return true; }
  if p->posz >= t->cz + t->half { return true; }
  return false;
}

// expand_box extends the tree upward, adding nodes until the tree
// represents a space large enough to include p (section 4.3.2).
function Octree * expand_box(Octree *p, Octree *root) {
  if root == NULL {
    return new_internal(p->posx, p->posy, p->posz, 1.0);
  }
  var Octree *r = root;
  while outside(r, p) {
    var real h = r->half;
    var real nx = r->cx - h;
    var real ny = r->cy - h;
    var real nz = r->cz - h;
    if p->posx >= r->cx { nx = r->cx + h; }
    if p->posy >= r->cy { ny = r->cy + h; }
    if p->posz >= r->cz { nz = r->cz + h; }
    var Octree *nr = new_internal(nx, ny, nz, h * 2.0);
    var int q = quadrant_of_point(nr, r->cx, r->cy, r->cz);
    nr->subtrees[q] = r;
    r = nr;
  }
  return r;
}

// insert_particle goes down the tree looking for p's quadrant; if the
// quadrant is occupied by another particle, the quadrant is subdivided
// until the two particles fall in different quadrants (section 4.3.2).
// Note the temporary sharing: the competitor child is stored under the
// new subtree while the original tree still points at it; the final
// store of sub into t repairs the abstraction.
procedure insert_particle(Octree *p, Octree *root) {
  var Octree *t = root;
  var bool done = false;
  while !done {
    var int q = quadrant_of_point(t, p->posx, p->posy, p->posz);
    var Octree *child = t->subtrees[q];
    if child == NULL {
      t->subtrees[q] = p;
      done = true;
    } else {
      if child->node_type == 1 {
        t = child;
      } else {
        // Two particles in one quadrant: subdivide. Nudge exact
        // coincidences apart so subdivision terminates.
        if child->posx == p->posx {
          if child->posy == p->posy {
            if child->posz == p->posz {
              p->posx = p->posx + t->half * 0.001 + 0.0000001;
            }
          }
        }
        var Octree *sub = new_internal(quad_cx(t, q), quad_cy(t, q), quad_cz(t, q), t->half / 2.0);
        var int cq = quadrant_of_point(sub, child->posx, child->posy, child->posz);
        sub->subtrees[cq] = child;   // temporary sharing with t->subtrees[q]
        t->subtrees[q] = sub;        // repair: sub replaces child
        t = sub;
      }
    }
  }
}

// build_tree builds the octree bottom-up from the particle list
// (section 4.3.2).
function Octree * build_tree(Octree *particles) {
  var Octree *p = particles;
  var Octree *root = NULL;
  while p != NULL {
    root = expand_box(p, root);
    insert_particle(p, root);
    p = p->next;
  }
  return root;
}

// compute_mass aggregates total mass and center of mass bottom-up so
// that internal nodes can stand in for their particles.
procedure compute_mass(Octree *t) {
  if t == NULL { return; }
  if t->node_type == 0 { return; }
  var real m = 0.0;
  var real mx = 0.0;
  var real my = 0.0;
  var real mz = 0.0;
  for i = 0 to 7 {
    var Octree *c = t->subtrees[i];
    if c != NULL {
      compute_mass(c);
      m = m + c->mass;
      mx = mx + c->mass * c->posx;
      my = my + c->mass * c->posy;
      mz = mz + c->mass * c->posz;
    }
  }
  t->mass = m;
  if m > 0.0 {
    t->posx = mx / m;
    t->posy = my / m;
    t->posz = mz / m;
  }
}

// add_pair_force accumulates the gravitational pull of a point mass at
// (x, y, z) into p's force vector (softened to avoid singularities).
procedure add_pair_force(Octree *p, real m, real x, real y, real z) {
  var real dx = x - p->posx;
  var real dy = y - p->posy;
  var real dz = z - p->posz;
  var real d2 = dx * dx + dy * dy + dz * dz + 0.0001;
  var real d = sqrt(d2);
  var real f = m * p->mass / (d2 * d);
  p->forcex = p->forcex + f * dx;
  p->forcey = p->forcey + f * dy;
  p->forcez = p->forcez + f * dz;
}

// compute_force recursively descends the tree, finding nodes to include
// in the force calculation; once a node is WELL-SEPARATED its subtrees
// are ignored (section 4.1).
procedure compute_force(Octree *p, Octree *node, real theta) {
  if node == NULL { return; }
  if node->node_type == 0 {
    if node != p {
      add_pair_force(p, node->mass, node->posx, node->posy, node->posz);
    }
    return;
  }
  var real dx = node->posx - p->posx;
  var real dy = node->posy - p->posy;
  var real dz = node->posz - p->posz;
  var real dist = sqrt(dx * dx + dy * dy + dz * dz) + 0.000001;
  if node->half * 2.0 / dist < theta {
    add_pair_force(p, node->mass, node->posx, node->posy, node->posz);
  } else {
    for i = 0 to 7 {
      compute_force(p, node->subtrees[i], theta);
    }
  }
}

// compute_new_vel_pos updates the velocity and position vectors given
// the new force upon the particle (section 4.1).
procedure compute_new_vel_pos(Octree *p, real dt) {
  var real ax = p->forcex / p->mass;
  var real ay = p->forcey / p->mass;
  var real az = p->forcez / p->mass;
  p->velx = p->velx + ax * dt;
  p->vely = p->vely + ay * dt;
  p->velz = p->velz + az * dt;
  p->posx = p->posx + p->velx * dt;
  p->posy = p->posy + p->vely * dt;
  p->posz = p->posz + p->velz * dt;
}

// make_particles builds the particle list: fresh leaves threaded along
// the leaves dimension.
function Octree * make_particles(int n) {
  var Octree *head = NULL;
  var int i = 0;
  while i < n {
    var Octree *p = new Octree;
    p->node_type = 0;
    p->mass = 1.0 + rand();
    p->posx = rand() * 100.0 - 50.0;
    p->posy = rand() * 100.0 - 50.0;
    p->posz = rand() * 100.0 - 50.0;
    p->velx = rand() * 0.1 - 0.05;
    p->vely = rand() * 0.1 - 0.05;
    p->velz = rand() * 0.1 - 0.05;
    p->next = head;
    head = p;
    i = i + 1;
  }
  return head;
}

// timestep applies one simulation step: rebuild the tree (L2 moved the
// particles), then BHL1 computes forces and BHL2 integrates.
procedure timestep(Octree *particles, real theta, real dt) {
  var Octree *root = build_tree(particles);
  compute_mass(root);
  var Octree *p = particles;
  while p != NULL {            // BHL1
    p->forcex = 0.0;
    p->forcey = 0.0;
    p->forcez = 0.0;
    compute_force(p, root, theta);
    p = p->next;
  }
  p = particles;
  while p != NULL {            // BHL2
    compute_new_vel_pos(p, dt);
    p = p->next;
  }
}

// simulate runs the full N-body simulation for the given number of time
// steps and returns the particle list for inspection.
function Octree * simulate(int n, int steps, real theta, real dt) {
  var Octree *particles = make_particles(n);
  var int s = 0;
  while s < steps {
    timestep(particles, theta, dt);
    s = s + 1;
  }
  return particles;
}
`

// TimestepFunc is the function containing BHL1 and BHL2.
const TimestepFunc = "timestep"

// Loop indices within timestep.
const (
	BHL1 = 0
	BHL2 = 1
)

// forceDriver appends the R2 measurement driver to the Barnes-Hut
// program: run_forces builds the octree serially, then runs the
// BHL1-shaped force loop — the strip-mining target — over the particle
// list, and folds the force vectors into a checksum that a parallel
// run must reproduce bit-for-bit. It exists because the full
// `simulate` driver rebuilds the tree every step (serial work that
// drowns the parallel region at interpreter speed); run_forces
// isolates the paper's hot loop, whose per-particle compute_force
// descent is heavy enough (O(#interactions) tree visits, sqrt per
// visit) for real goroutine speedup.
//
// rand() is only called in make_particles, before the parallel region,
// so the deterministic-merge guarantee (see package parexec) holds.
const forceDriver = `
// force_checksum folds the force vectors into one number, in list
// order, so serial and parallel runs are comparable bit-for-bit.
function real force_checksum(Octree *particles) {
  var real s = 0.0;
  var Octree *p = particles;
  while p != NULL {
    s = s + p->forcex + p->forcey + p->forcez;
    p = p->next;
  }
  return s;
}

// run_forces is the R2 workload driver: serial tree build, then the
// force-computation loop (FCL, loop #0 — the same shape as BHL1).
function real run_forces(int n, real theta) {
  var Octree *particles = make_particles(n);
  var Octree *root = build_tree(particles);
  compute_mass(root);
  var Octree *p = particles;
  while p != NULL {             // FCL: the strip-mining target
    p->forcex = 0.0;
    p->forcey = 0.0;
    p->forcez = 0.0;
    compute_force(p, root, theta);
    p = p->next;
  }
  return force_checksum(particles);
}
`

// BarnesHutForcePSL is the Barnes-Hut program plus the run_forces
// driver: the measured-speedup Barnes-Hut workload (experiment R2, the
// real-hardware counterpart of the paper's §4.4 tables).
const BarnesHutForcePSL = BarnesHutPSL + forceDriver

// ForceFunc is the function containing the R2 force-computation loop.
const ForceFunc = "run_forces"

// ForceLoop is the loop index of the strip-mining target within
// ForceFunc (the FCL loop; force_checksum's fold stays serial).
const ForceLoop = 0

// vecForceDriver appends the vector-kernel measurement driver:
// run_pair_forces runs a force loop whose body is straight-line
// arithmetic over the particle's own fields — forces against two fixed
// attractors instead of a tree descent — so the kernel classifier can
// vectorize it (no calls, no allocation, no pointer-chasing beyond the
// element; conditionals become execution masks). run_forces above is the honest contrast:
// its body calls the recursive compute_force, so the planner approves
// it but the classifier must reject it with "body calls function
// compute_force". The attractor position derives from the arguments by
// scalar arithmetic (no reduction loop). The outer steps loop repeats
// the sweep so the vectorizable work dominates the serial setup
// (make_particles / force_checksum) in timing runs; its induction is an
// integer counter, not a pointer chase, so the strip-miner never
// targets it — the VFL is loop index 1 in walk order.
const vecForceDriver = `
// run_pair_forces is the vector-kernel workload driver: pairwise
// forces against a fixed attractor, repeated steps times; the inner
// sweep is the one vectorizable loop (VFL).
function real run_pair_forces(int n, int steps, real theta) {
  var Octree *particles = make_particles(n);
  var real ax = 17.0 * theta;
  var real ay = 0.0 - 9.0 * theta;
  var real az = 4.5 + theta;
  var real bx = 0.0 - 23.0 * theta;
  var real by = 11.0 * theta;
  var real bz = 0.0 - 6.5 - theta;
  var real cm = 250.0 + 3.0 * theta;
  var real cm2 = 90.0 + theta;
  var real cut = 100.0 * theta;
  var int s = 0;
  while s < steps {
    var Octree *p = particles;
    while p != NULL {             // VFL: the vector-kernel target
      var real dx = ax - p->posx;
      var real dy = ay - p->posy;
      var real dz = az - p->posz;
      var real d2 = dx * dx + dy * dy + dz * dz + 0.0001;
      var real d = sqrt(d2);
      var real f = cm * p->mass / (d2 * d);
      if d2 > cut {
        f = f * 0.5;
      }
      var real ex = bx - p->posx;
      var real ey = by - p->posy;
      var real ez = bz - p->posz;
      var real e2 = ex * ex + ey * ey + ez * ez + 0.0001;
      var real e = sqrt(e2);
      var real g = cm2 * p->mass / (e2 * e);
      if e2 > cut {
        g = g * 0.25;
      }
      p->forcex = p->forcex + f * dx + g * ex;
      p->forcey = p->forcey + f * dy + g * ey;
      p->forcez = p->forcez + f * dz + g * ez;
      p = p->next;
    }
    s = s + 1;
  }
  return force_checksum(particles);
}
`

// VecForcePSL is the Barnes-Hut force program plus the pairwise driver:
// the vector-kernel workload (kernel-engine speedup floor and the
// kernel equivalence grid).
const VecForcePSL = BarnesHutForcePSL + vecForceDriver

// VecForceFunc is the function containing the vectorizable force loop.
const VecForceFunc = "run_pair_forces"

// VecForceLoop is the loop index of the vectorizable loop within
// VecForceFunc: index 0 is the outer steps counter, index 1 the VFL
// pointer sweep (the checksum fold stays serial).
const VecForceLoop = 1
