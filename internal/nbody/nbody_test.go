package nbody

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTreeInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 17, 128, 500} {
		s := NewUniform(n, 42, 0.5, 0.01)
		s.BuildTree()
		if got := CountLeaves(s.Root); got != n {
			t.Errorf("n=%d: tree has %d leaves", n, got)
		}
		if err := s.CheckTree(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestPlummerTree(t *testing.T) {
	s := NewPlummer(300, 9, 0.5, 0.01)
	s.BuildTree()
	if got := CountLeaves(s.Root); got != 300 {
		t.Errorf("leaves = %d", got)
	}
	if err := s.CheckTree(); err != nil {
		t.Error(err)
	}
	// The condensed profile should produce a deeper tree than uniform.
	u := NewUniform(300, 9, 0.5, 0.01)
	u.BuildTree()
	if TreeDepth(s.Root) <= TreeDepth(u.Root)/2 {
		t.Logf("plummer depth %d, uniform depth %d", TreeDepth(s.Root), TreeDepth(u.Root))
	}
}

func TestMassConservedInTree(t *testing.T) {
	s := NewUniform(200, 7, 0.5, 0.01)
	s.BuildTree()
	var want float64
	for _, b := range s.Bodies {
		want += b.Mass
	}
	if math.Abs(s.Root.Mass-want) > 1e-9*want {
		t.Errorf("root mass %g, bodies sum %g", s.Root.Mass, want)
	}
}

// TestQuickInsertion: random bodies always produce a structurally valid
// tree with the right leaf count.
func TestQuickInsertion(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		s := NewUniform(n, seed, 0.5, 0.01)
		s.BuildTree()
		return CountLeaves(s.Root) == n && s.CheckTree() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickOctantGeometry: octantCenter and octant are inverse-ish —
// the center of octant q lies in octant q.
func TestQuickOctantGeometry(t *testing.T) {
	f := func(cx, cy, cz float64, hRaw uint8, qRaw uint8) bool {
		if math.IsNaN(cx) || math.IsNaN(cy) || math.IsNaN(cz) ||
			math.IsInf(cx, 0) || math.IsInf(cy, 0) || math.IsInf(cz, 0) ||
			math.Abs(cx) > 1e12 || math.Abs(cy) > 1e12 || math.Abs(cz) > 1e12 {
			return true
		}
		h := float64(hRaw%100) + 1
		q := int(qRaw % 8)
		n := &Node{Center: Vec3{cx, cy, cz}, Half: h}
		c := octantCenter(n, q)
		return octant(n.Center, c) == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBHApproximatesDirect: for small theta the Barnes-Hut force is
// close to the O(N²) direct force.
func TestBHApproximatesDirect(t *testing.T) {
	n := 150
	bh := NewUniform(n, 5, 0.3, 0.01)
	direct := NewUniform(n, 5, 0.3, 0.01)

	bh.BuildTree()
	for _, b := range bh.Bodies {
		b.Force = Vec3{}
		bh.forceOn(b, bh.Root)
	}
	for _, b := range direct.Bodies {
		b.Force = Vec3{}
	}
	for i, a := range direct.Bodies {
		for j, b := range direct.Bodies {
			if i != j {
				direct.addPairForce(a, b.Mass, b.Pos)
			}
		}
	}
	var relErrSum float64
	for i := range bh.Bodies {
		fb, fd := bh.Bodies[i].Force, direct.Bodies[i].Force
		diff := fb.Sub(fd).Norm()
		if fd.Norm() > 1e-12 {
			relErrSum += diff / fd.Norm()
		}
	}
	avg := relErrSum / float64(n)
	if avg > 0.05 {
		t.Errorf("average relative force error %.3f > 5%%", avg)
	}
}

// TestParallelMatchesSequential: the strip-mined drivers compute
// identical trajectories (forces are per-body; no reduction order
// differences).
func TestParallelMatchesSequential(t *testing.T) {
	ref := NewUniform(120, 3, 0.5, 0.01)
	for i := 0; i < 3; i++ {
		ref.Step()
	}
	for _, driver := range []string{"par", "pool"} {
		for _, pes := range []int{2, 4, 7} {
			s := NewUniform(120, 3, 0.5, 0.01)
			if err := s.Run(driver, 3, pes); err != nil {
				t.Fatal(err)
			}
			for i := range ref.Bodies {
				if ref.Bodies[i].Pos != s.Bodies[i].Pos {
					t.Fatalf("%s(%d): body %d position %v vs %v",
						driver, pes, i, s.Bodies[i].Pos, ref.Bodies[i].Pos)
				}
			}
		}
	}
}

func TestMomentumRoughlyConserved(t *testing.T) {
	s := NewUniform(100, 11, 0.5, 0.001)
	before := s.TotalMomentum()
	for i := 0; i < 5; i++ {
		s.Step()
	}
	after := s.TotalMomentum()
	// Barnes-Hut approximation breaks exact symmetry; drift must stay
	// small relative to the velocity scale (~0.05 per body).
	if after.Sub(before).Norm() > 0.5 {
		t.Errorf("momentum drift %v too large", after.Sub(before))
	}
}

func TestRunUnknownDriver(t *testing.T) {
	s := NewUniform(4, 1, 0.5, 0.01)
	if err := s.Run("warp", 1, 2); err == nil {
		t.Error("unknown driver must error")
	}
}

func TestDirectStepMovesBodies(t *testing.T) {
	s := NewUniform(30, 2, 0.5, 0.01)
	orig := make([]Vec3, len(s.Bodies))
	for i, b := range s.Bodies {
		orig[i] = b.Pos
	}
	s.DirectStep()
	moved := 0
	for i, b := range s.Bodies {
		if b.Pos != orig[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no body moved")
	}
}

func TestVecOps(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if !reflect.DeepEqual(v.Add(w), Vec3{5, 7, 9}) {
		t.Error("Add")
	}
	if !reflect.DeepEqual(w.Sub(v), Vec3{3, 3, 3}) {
		t.Error("Sub")
	}
	if !reflect.DeepEqual(v.Scale(2), Vec3{2, 4, 6}) {
		t.Error("Scale")
	}
	if math.Abs(Vec3{3, 4, 0}.Norm()-5) > 1e-12 {
		t.Error("Norm")
	}
}

// TestDeterministicGenerator: same seed, same bodies.
func TestDeterministicGenerator(t *testing.T) {
	a := NewUniform(10, 99, 0.5, 0.01)
	b := NewUniform(10, 99, 0.5, 0.01)
	for i := range a.Bodies {
		if a.Bodies[i].Pos != b.Bodies[i].Pos {
			t.Fatal("generator not deterministic")
		}
	}
	c := NewUniform(10, 100, 0.5, 0.01)
	same := true
	for i := range a.Bodies {
		if a.Bodies[i].Pos != c.Bodies[i].Pos {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

// TestQuickExpandBoxContains: after expansion the root always contains
// the body.
func TestQuickExpandBoxContains(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		root := &Node{Center: Vec3{0, 0, 0}, Half: 1}
		b := &Body{Pos: Vec3{r.Float64()*2000 - 1000, r.Float64()*2000 - 1000, r.Float64()*2000 - 1000}}
		root = expandBox(b, root)
		if !root.contains(b.Pos) {
			t.Fatalf("expanded root %v half %g does not contain %v", root.Center, root.Half, b.Pos)
		}
	}
}

func TestThetaSweepMonotone(t *testing.T) {
	rows := ThetaSweep(300, 7, []float64{0.2, 0.5, 1.0})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanRelErr < rows[i-1].MeanRelErr {
			t.Errorf("error must grow with theta: %v then %v", rows[i-1], rows[i])
		}
		if rows[i].Interactions >= rows[i-1].Interactions {
			t.Errorf("work must shrink with theta: %v then %v", rows[i-1], rows[i])
		}
	}
	if rows[0].MeanRelErr > 0.01 {
		t.Errorf("theta=0.2 error %.4f too large", rows[0].MeanRelErr)
	}
	if rows[0].DirectPairs != 300*299 {
		t.Errorf("direct pairs = %d", rows[0].DirectPairs)
	}
}
