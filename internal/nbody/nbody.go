package nbody

import (
	"fmt"
	"math"
	"sync"
)

// Vec3 is a 3-vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.X*v.X + v.Y*v.Y + v.Z*v.Z) }

// Body is one particle. Next threads the particles into the one-way
// leaves list of the paper's octree declaration.
type Body struct {
	Mass  float64
	Pos   Vec3
	Vel   Vec3
	Force Vec3
	Next  *Body
}

// Node is an octree node: an internal cell (with its bounding box and
// aggregated mass) or a leaf holding one body.
type Node struct {
	// Center and Half describe the cell's box.
	Center Vec3
	Half   float64
	// Mass and COM aggregate the subtree (for leaves: the body).
	Mass float64
	COM  Vec3
	// Children are the eight octants (nil for leaves).
	Children [8]*Node
	// Body is non-nil exactly for leaves.
	Body *Body
}

// IsLeaf reports whether the node holds a single body.
func (n *Node) IsLeaf() bool { return n.Body != nil }

// System is an N-body simulation instance.
type System struct {
	Bodies []*Body
	Head   *Body // the leaves list
	Theta  float64
	Dt     float64
	// Root is the most recent tree (rebuilt every step).
	Root *Node
	// Eps2 is the softening length squared.
	Eps2 float64
	// Interactions counts pair-force evaluations when CountWork is set
	// (sequential drivers only; not synchronized).
	Interactions int64
	// CountWork enables interaction counting.
	CountWork bool
}

// splitmix is the same deterministic generator the interpreter uses.
type splitmix struct{ state uint64 }

func (r *splitmix) next() float64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// NewUniform creates n bodies uniformly distributed in a 100³ box with
// random masses in [1, 2) and small random velocities, matching the PSL
// make_particles generator.
func NewUniform(n int, seed uint64, theta, dt float64) *System {
	r := &splitmix{state: seed*2862933555777941757 + 3037000493}
	s := &System{Theta: theta, Dt: dt, Eps2: 0.0001}
	var head *Body
	for i := 0; i < n; i++ {
		b := &Body{
			Mass: 1.0 + r.next(),
			Pos:  Vec3{r.next()*100 - 50, r.next()*100 - 50, r.next()*100 - 50},
			Vel:  Vec3{r.next()*0.1 - 0.05, r.next()*0.1 - 0.05, r.next()*0.1 - 0.05},
		}
		b.Next = head
		head = b
	}
	// The PSL generator prepends, so walk the list to register bodies in
	// traversal order.
	s.Head = head
	for b := head; b != nil; b = b.Next {
		s.Bodies = append(s.Bodies, b)
	}
	return s
}

// NewPlummer creates a centrally condensed cluster (a Plummer-like
// profile), the distribution real tree-code papers exercise; it stresses
// the tree with highly non-uniform depth.
func NewPlummer(n int, seed uint64, theta, dt float64) *System {
	r := &splitmix{state: seed*2862933555777941757 + 3037000493}
	s := &System{Theta: theta, Dt: dt, Eps2: 0.0001}
	var head *Body
	for i := 0; i < n; i++ {
		// Sample radius from the Plummer cumulative mass profile.
		m := 0.1 + 0.8*r.next()
		radius := 10.0 / math.Sqrt(math.Pow(m, -2.0/3.0)-1)
		u, v := r.next(), r.next()
		thetaA := math.Acos(2*u - 1)
		phi := 2 * math.Pi * v
		b := &Body{
			Mass: 1.0,
			Pos: Vec3{
				radius * math.Sin(thetaA) * math.Cos(phi),
				radius * math.Sin(thetaA) * math.Sin(phi),
				radius * math.Cos(thetaA),
			},
			Vel: Vec3{r.next()*0.02 - 0.01, r.next()*0.02 - 0.01, r.next()*0.02 - 0.01},
		}
		b.Next = head
		head = b
	}
	s.Head = head
	for b := head; b != nil; b = b.Next {
		s.Bodies = append(s.Bodies, b)
	}
	return s
}

// ---------------------------------------------------------------------------
// Tree construction (expand_box + insert_particle, §4.3.2)

func octant(center Vec3, p Vec3) int {
	q := 0
	if p.X >= center.X {
		q |= 1
	}
	if p.Y >= center.Y {
		q |= 2
	}
	if p.Z >= center.Z {
		q |= 4
	}
	return q
}

func octantCenter(n *Node, q int) Vec3 {
	h := n.Half / 2
	c := n.Center
	if q&1 != 0 {
		c.X += h
	} else {
		c.X -= h
	}
	if q&2 != 0 {
		c.Y += h
	} else {
		c.Y -= h
	}
	if q&4 != 0 {
		c.Z += h
	} else {
		c.Z -= h
	}
	return c
}

func (n *Node) contains(p Vec3) bool {
	return p.X >= n.Center.X-n.Half && p.X < n.Center.X+n.Half &&
		p.Y >= n.Center.Y-n.Half && p.Y < n.Center.Y+n.Half &&
		p.Z >= n.Center.Z-n.Half && p.Z < n.Center.Z+n.Half
}

// expandBox grows the tree upward until p's position fits (§4.3.2).
func expandBox(b *Body, root *Node) *Node {
	if root == nil {
		return &Node{Center: b.Pos, Half: 1}
	}
	r := root
	for !r.contains(b.Pos) {
		h := r.Half
		c := r.Center
		nc := Vec3{c.X - h, c.Y - h, c.Z - h}
		if b.Pos.X >= c.X {
			nc.X = c.X + h
		}
		if b.Pos.Y >= c.Y {
			nc.Y = c.Y + h
		}
		if b.Pos.Z >= c.Z {
			nc.Z = c.Z + h
		}
		nr := &Node{Center: nc, Half: 2 * h}
		nr.Children[octant(nc, c)] = r
		r = nr
	}
	return r
}

// insertBody descends the tree looking for b's quadrant, subdividing
// occupied quadrants (§4.3.2).
func insertBody(b *Body, root *Node) {
	t := root
	for {
		q := octant(t.Center, b.Pos)
		child := t.Children[q]
		if child == nil {
			t.Children[q] = &Node{Body: b, Mass: b.Mass, COM: b.Pos}
			return
		}
		if !child.IsLeaf() {
			t = child
			continue
		}
		// Occupied by another particle: subdivide (nudging exact
		// coincidences apart, as the PSL version does).
		other := child.Body
		if other.Pos == b.Pos {
			b.Pos.X += t.Half*0.001 + 1e-7
		}
		sub := &Node{Center: octantCenter(t, q), Half: t.Half / 2}
		sub.Children[octant(sub.Center, other.Pos)] = child
		t.Children[q] = sub
		t = sub
	}
}

// BuildTree rebuilds the octree from the leaves list (§4.3.2's
// build_tree) and computes the mass aggregation.
func (s *System) BuildTree() *Node {
	var root *Node
	for b := s.Head; b != nil; b = b.Next {
		root = expandBox(b, root)
		insertBody(b, root)
	}
	computeMass(root)
	s.Root = root
	return root
}

func computeMass(n *Node) {
	if n == nil || n.IsLeaf() {
		return
	}
	var m float64
	var mx, my, mz float64
	for _, c := range n.Children {
		if c == nil {
			continue
		}
		computeMass(c)
		m += c.Mass
		mx += c.Mass * c.COM.X
		my += c.Mass * c.COM.Y
		mz += c.Mass * c.COM.Z
	}
	n.Mass = m
	if m > 0 {
		n.COM = Vec3{mx / m, my / m, mz / m}
	}
}

// ---------------------------------------------------------------------------
// Force computation

// forceOn accumulates the force on b from the subtree rooted at node
// (§4.1's compute_force).
func (s *System) forceOn(b *Body, node *Node) {
	if node == nil {
		return
	}
	if node.IsLeaf() {
		if node.Body != b {
			s.addPairForce(b, node.Mass, node.COM)
		}
		return
	}
	d := node.COM.Sub(b.Pos).Norm() + 1e-6
	if node.Half*2/d < s.Theta {
		s.addPairForce(b, node.Mass, node.COM) // well separated
		return
	}
	for _, c := range node.Children {
		s.forceOn(b, c)
	}
}

func (s *System) addPairForce(b *Body, m float64, at Vec3) {
	if s.CountWork {
		s.Interactions++
	}
	d := at.Sub(b.Pos)
	d2 := d.X*d.X + d.Y*d.Y + d.Z*d.Z + s.Eps2
	inv := m * b.Mass / (d2 * math.Sqrt(d2))
	b.Force = b.Force.Add(d.Scale(inv))
}

// integrate applies §4.1's compute_new_vel_pos.
func (s *System) integrate(b *Body) {
	a := b.Force.Scale(1 / b.Mass)
	b.Vel = b.Vel.Add(a.Scale(s.Dt))
	b.Pos = b.Pos.Add(b.Vel.Scale(s.Dt))
}

// ---------------------------------------------------------------------------
// Drivers

// Step runs one sequential Barnes-Hut time step: rebuild, BHL1, BHL2.
func (s *System) Step() {
	s.BuildTree()
	for b := s.Head; b != nil; b = b.Next { // BHL1
		b.Force = Vec3{}
		s.forceOn(b, s.Root)
	}
	for b := s.Head; b != nil; b = b.Next { // BHL2
		s.integrate(b)
	}
}

// StepParallel runs one time step with BHL1 and BHL2 strip-mined across
// pes goroutines using the same static cyclic schedule as the
// transformed PSL code: worker i processes particles i, i+pes, i+2·pes…
// by skipping ahead along the leaves list (FOR2) while the main loop
// advances pes nodes per trip (FOR1).
func (s *System) StepParallel(pes int) {
	s.BuildTree()
	s.parallelOverList(pes, func(b *Body) {
		b.Force = Vec3{}
		s.forceOn(b, s.Root)
	})
	s.parallelOverList(pes, func(b *Body) {
		s.integrate(b)
	})
}

// parallelOverList is the runtime shape of §4.3.3's transformed loop.
func (s *System) parallelOverList(pes int, work func(*Body)) {
	p := s.Head
	for p != nil {
		var wg sync.WaitGroup
		for i := 0; i < pes; i++ {
			wg.Add(1)
			go func(i int, p *Body) {
				defer wg.Done()
				// FOR2: skip ahead i nodes, speculatively.
				for k := 1; k <= i && p != nil; k++ {
					p = p.Next
				}
				if p != nil {
					work(p)
				}
			}(i, p)
		}
		wg.Wait()
		// FOR1: serial advance by pes nodes (speculative past the end).
		for i := 0; i < pes && p != nil; i++ {
			p = p.Next
		}
	}
}

// StepParallelPool is StepParallel with long-lived workers (one per PE
// processing a cyclic slice of the body array). It computes identical
// forces with far less goroutine churn; the ablation benchmarks compare
// the two (the paper's point (4): granularity was not tuned).
func (s *System) StepParallelPool(pes int) {
	s.BuildTree()
	var wg sync.WaitGroup
	for i := 0; i < pes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := i; j < len(s.Bodies); j += pes {
				b := s.Bodies[j]
				b.Force = Vec3{}
				s.forceOn(b, s.Root)
			}
		}(i)
	}
	wg.Wait()
	wg = sync.WaitGroup{}
	for i := 0; i < pes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := i; j < len(s.Bodies); j += pes {
				s.integrate(s.Bodies[j])
			}
		}(i)
	}
	wg.Wait()
}

// DirectStep runs one O(N²) time step — the paper's §4.1 "obvious
// implementation", the baseline Barnes-Hut improves on.
func (s *System) DirectStep() {
	for _, b := range s.Bodies {
		b.Force = Vec3{}
	}
	for i, a := range s.Bodies {
		for j, b := range s.Bodies {
			if i == j {
				continue
			}
			s.addPairForce(a, b.Mass, b.Pos)
		}
	}
	for _, b := range s.Bodies {
		s.integrate(b)
	}
}

// Run advances the system `steps` steps with the given driver:
// "seq", "par", "pool", or "direct". pes is ignored for seq/direct.
func (s *System) Run(driver string, steps, pes int) error {
	for i := 0; i < steps; i++ {
		switch driver {
		case "seq":
			s.Step()
		case "par":
			s.StepParallel(pes)
		case "pool":
			s.StepParallelPool(pes)
		case "direct":
			s.DirectStep()
		default:
			return fmt.Errorf("nbody: unknown driver %q", driver)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Diagnostics

// ThetaRow is one row of the accuracy/work sweep.
type ThetaRow struct {
	Theta        float64
	MeanRelErr   float64 // mean relative force error vs the O(N²) direct method
	Interactions int64   // pair-force evaluations for one force pass
	DirectPairs  int64   // N(N-1), the direct method's work
}

// ThetaSweep quantifies Barnes-Hut's central design choice: larger
// well-separated thresholds do less work and lose accuracy. It runs
// one force computation per theta over the same particle set and
// compares against the direct method.
func ThetaSweep(n int, seed uint64, thetas []float64) []ThetaRow {
	direct := NewUniform(n, seed, 0, 0.01)
	for _, b := range direct.Bodies {
		b.Force = Vec3{}
	}
	for i, a := range direct.Bodies {
		for j, b := range direct.Bodies {
			if i != j {
				direct.addPairForce(a, b.Mass, b.Pos)
			}
		}
	}
	var rows []ThetaRow
	for _, theta := range thetas {
		s := NewUniform(n, seed, theta, 0.01)
		s.CountWork = true
		s.BuildTree()
		for _, b := range s.Bodies {
			b.Force = Vec3{}
			s.forceOn(b, s.Root)
		}
		var relErr float64
		for i := range s.Bodies {
			fd := direct.Bodies[i].Force
			if d := fd.Norm(); d > 1e-12 {
				relErr += s.Bodies[i].Force.Sub(fd).Norm() / d
			}
		}
		rows = append(rows, ThetaRow{
			Theta:        theta,
			MeanRelErr:   relErr / float64(n),
			Interactions: s.Interactions,
			DirectPairs:  int64(n) * int64(n-1),
		})
	}
	return rows
}

// TotalMomentum returns Σ m·v (approximately conserved).
func (s *System) TotalMomentum() Vec3 {
	var p Vec3
	for _, b := range s.Bodies {
		p = p.Add(b.Vel.Scale(b.Mass))
	}
	return p
}

// CountLeaves walks the tree and counts bodies (must equal len(Bodies)).
func CountLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += CountLeaves(c)
	}
	return total
}

// TreeDepth returns the maximum depth.
func TreeDepth(n *Node) int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := TreeDepth(c); d > max {
			max = d
		}
	}
	return max + 1
}

// CheckTree verifies structural invariants: every leaf body lies inside
// its ancestors' boxes, children occupy their octants, and each body
// appears exactly once.
func (s *System) CheckTree() error {
	seen := map[*Body]bool{}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil {
			return nil
		}
		if n.IsLeaf() {
			if seen[n.Body] {
				return fmt.Errorf("nbody: body appears twice in the tree")
			}
			seen[n.Body] = true
			return nil
		}
		for q, c := range n.Children {
			if c == nil {
				continue
			}
			if !c.IsLeaf() {
				// expandBox and octantCenter derive child centers by
				// different (mathematically equal) expressions, so
				// compare with a tolerance scaled to the cell size.
				want := octantCenter(n, q)
				eps := n.Half * 1e-9
				if math.Abs(c.Center.X-want.X) > eps ||
					math.Abs(c.Center.Y-want.Y) > eps ||
					math.Abs(c.Center.Z-want.Z) > eps {
					return fmt.Errorf("nbody: child %d center %v, want %v", q, c.Center, want)
				}
				if math.Abs(c.Half-n.Half/2) > eps {
					return fmt.Errorf("nbody: child %d half %g, want %g", q, c.Half, n.Half/2)
				}
			} else if octant(n.Center, c.Body.Pos) != q {
				return fmt.Errorf("nbody: leaf in wrong octant")
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(s.Root); err != nil {
		return err
	}
	if len(seen) != len(s.Bodies) {
		return fmt.Errorf("nbody: tree holds %d bodies, system has %d", len(seen), len(s.Bodies))
	}
	return nil
}
