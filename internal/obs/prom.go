package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prom writes the Prometheus text exposition format (version 0.0.4 —
// the format every Prometheus scraper accepts). It is deliberately a
// writer over an existing stats snapshot, not an instrumentation
// library: pslserved and pslrouter build their /metrics pages from the
// same Stats structs their JSON /stats endpoints serialize, so the two
// surfaces cannot report different numbers.
type Prom struct {
	w   io.Writer
	err error
}

// NewProm wraps w.
func NewProm(w io.Writer) *Prom { return &Prom{w: w} }

// Err reports the first write error (the handlers ignore it — a
// half-written scrape is the client's problem — but tests check it).
func (p *Prom) Err() error { return p.err }

func (p *Prom) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// EscapeLabel escapes a label value per the exposition format.
func EscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func (p *Prom) head(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter writes one unlabeled counter.
func (p *Prom) Counter(name, help string, v float64) {
	p.head(name, "counter", help)
	p.printf("%s %s\n", name, formatValue(v))
}

// Gauge writes one unlabeled gauge.
func (p *Prom) Gauge(name, help string, v float64) {
	p.head(name, "gauge", help)
	p.printf("%s %s\n", name, formatValue(v))
}

// Labeled is one sample of a labeled series: Labels is the rendered
// label set without braces, e.g. `backend="http://host:8080"` (values
// escaped with EscapeLabel).
type Labeled struct {
	Labels string
	Value  float64
}

// LabeledCounter writes a counter family with one sample per entry.
func (p *Prom) LabeledCounter(name, help string, samples []Labeled) {
	p.head(name, "counter", help)
	for _, s := range samples {
		p.printf("%s{%s} %s\n", name, s.Labels, formatValue(s.Value))
	}
}

// LabeledGauge writes a gauge family with one sample per entry.
func (p *Prom) LabeledGauge(name, help string, samples []Labeled) {
	p.head(name, "gauge", help)
	for _, s := range samples {
		p.printf("%s{%s} %s\n", name, s.Labels, formatValue(s.Value))
	}
}

// HistogramUS writes a histogram whose buckets are microsecond upper
// bounds with per-bucket (non-cumulative) counts; the overflow count
// covers samples above the last bound. Bounds are converted to
// seconds — the Prometheus base unit — and counts are accumulated into
// the cumulative form the format requires, with the implicit +Inf
// bucket equal to the total count.
func (p *Prom) HistogramUS(name, help string, boundsUS []int64, counts []int64, overflow, count, sumUS int64) {
	p.head(name, "histogram", help)
	var cum int64
	for i, b := range boundsUS {
		if i < len(counts) {
			cum += counts[i]
		}
		p.printf("%s_bucket{le=\"%s\"} %d\n", name, formatValue(float64(b)/1e6), cum)
	}
	cum += overflow
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	p.printf("%s_sum %s\n", name, formatValue(float64(sumUS)/1e6))
	p.printf("%s_count %d\n", name, count)
}
