package obs

import (
	"fmt"
	"sort"
	"sync"
)

// ForallProfiler accumulates parallel-efficiency measurements per
// forall site. parexec calls Record once per barrier with the raw
// per-PE timings; Report derives the scores the paper's claim is
// ultimately about: did the loop the planner approved actually keep
// its PEs busy?
//
// Sites are keyed by source line — the same line transform's Plan
// reports for the while loop it strip-mined (the generated forall is
// stamped with the original loop's position) — so a plan entry and a
// profile row join on one key with no side channel.
type ForallProfiler struct {
	mu    sync.Mutex
	sites map[int]*siteAgg
}

type siteAgg struct {
	line     int
	pes      int
	barriers int64
	wallNS   int64
	busyNS   []int64 // per PE
	waitNS   []int64 // per PE: barrier end − PE's last task end
	tasks    []int64 // per PE
	// kernel marks sites whose strips executed on the vector path
	// (RecordKernel); gather/scatter are then the serial slab phases'
	// accumulated wall time.
	kernel    bool
	gatherNS  int64
	scatterNS int64
}

// NewForallProfiler builds an empty profiler.
func NewForallProfiler() *ForallProfiler {
	return &ForallProfiler{sites: make(map[int]*siteAgg)}
}

// Record adds one barrier's measurements for the forall at line:
// wallNS is the dispatch-to-barrier wall clock, busyNS[pe] the summed
// task execution time on pe, doneNS[pe] the offset (from dispatch) at
// which pe drained its assignment stream, tasks[pe] the iterations pe
// executed. Nil-safe, so callers thread an optional profiler without
// branching. Slices are copied-from, not retained.
func (p *ForallProfiler) Record(line int, wallNS int64, busyNS, doneNS, tasks []int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	agg := p.sites[line]
	if agg == nil {
		agg = &siteAgg{
			line:   line,
			pes:    len(busyNS),
			busyNS: make([]int64, len(busyNS)),
			waitNS: make([]int64, len(busyNS)),
			tasks:  make([]int64, len(busyNS)),
		}
		p.sites[line] = agg
	}
	agg.barriers++
	agg.wallNS += wallNS
	for pe := range busyNS {
		if pe >= agg.pes {
			break // defensive: PE count changed mid-run (not expected)
		}
		agg.busyNS[pe] += busyNS[pe]
		agg.tasks[pe] += tasks[pe]
		if w := wallNS - doneNS[pe]; w > 0 {
			agg.waitNS[pe] += w
		}
	}
}

// RecordKernel adds one vectorized strip's measurements for the forall
// at line: wallNS is gather-to-scatter wall clock, gatherNS/scatterNS
// the serial slab phases, busyNS[pe] the PE's compute-share time,
// tasks[pe] its chunk count (0 or 1 per strip). There is no per-PE
// wait measurement — the compute split is a single contiguous chunk
// per PE, so the imbalance column already tells the story. Nil-safe;
// slices are copied-from, not retained.
func (p *ForallProfiler) RecordKernel(line int, wallNS, gatherNS, scatterNS int64, busyNS, tasks []int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	agg := p.sites[line]
	if agg == nil {
		agg = &siteAgg{
			line:   line,
			pes:    len(busyNS),
			busyNS: make([]int64, len(busyNS)),
			waitNS: make([]int64, len(busyNS)),
			tasks:  make([]int64, len(busyNS)),
		}
		p.sites[line] = agg
	}
	agg.kernel = true
	agg.barriers++
	agg.wallNS += wallNS
	agg.gatherNS += gatherNS
	agg.scatterNS += scatterNS
	for pe := range busyNS {
		if pe >= agg.pes {
			break
		}
		agg.busyNS[pe] += busyNS[pe]
		agg.tasks[pe] += tasks[pe]
	}
}

// PEReport is one PE's share of a site report.
type PEReport struct {
	Tasks  int64 `json:"tasks"`
	BusyUS int64 `json:"busy_us"`
	WaitUS int64 `json:"wait_us"`
}

// SiteReport is the per-forall-site efficiency report: the measured
// counterpart of one Plan loop entry.
type SiteReport struct {
	// Line is the source line of the loop (the planner's key); Fn is
	// filled in by callers that hold the plan (the profiler itself only
	// sees positions).
	Line int    `json:"line"`
	Fn   string `json:"fn,omitempty"`
	// Barriers counts forall dispatches at this site; Tasks the
	// iterations executed across all PEs and barriers.
	Barriers int64 `json:"barriers"`
	Tasks    int64 `json:"tasks"`
	PEs      int   `json:"pes"`
	WallUS   int64 `json:"wall_us"`
	// BusyPct is aggregate PE utilization: Σ busy / (PEs × wall) × 100.
	// WaitPct is the share of PE-time spent waiting at the barrier
	// after the PE's own stream drained. Busy + wait < 100 in general —
	// the remainder is scheduling overhead (assignment, channel
	// handoff, output buffering).
	BusyPct float64 `json:"busy_pct"`
	WaitPct float64 `json:"wait_pct"`
	// Imbalance is max PE busy time over mean PE busy time: 1.0 is a
	// perfectly balanced schedule, 2.0 means the slowest PE carried
	// twice the average load. 0 when nothing ran.
	Imbalance float64    `json:"imbalance"`
	PerPE     []PEReport `json:"per_pe,omitempty"`
	// Kernel marks a site whose strips ran on the vector path; the
	// serial gather/scatter slab phases are then reported so the
	// planned-vs-achieved table can show where the barrier time went
	// (per-task wait columns don't exist for whole-slab compute).
	Kernel    bool  `json:"kernel,omitempty"`
	GatherUS  int64 `json:"gather_us,omitempty"`
	ScatterUS int64 `json:"scatter_us,omitempty"`
}

// String renders one table-ish line of the report.
func (r SiteReport) String() string {
	at := fmt.Sprintf("line %d", r.Line)
	if r.Fn != "" {
		at = fmt.Sprintf("%s (line %d)", r.Fn, r.Line)
	}
	line := fmt.Sprintf("%-24s pes=%d barriers=%d tasks=%d busy=%.1f%% wait=%.1f%% imbalance=%.2f",
		at, r.PEs, r.Barriers, r.Tasks, r.BusyPct, r.WaitPct, r.Imbalance)
	if r.Kernel {
		line += fmt.Sprintf(" kernel gather=%dus scatter=%dus", r.GatherUS, r.ScatterUS)
	}
	return line
}

// Report derives the per-site scores, sorted by line. Nil-safe (nil →
// nil).
func (p *ForallProfiler) Report() []SiteReport {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SiteReport, 0, len(p.sites))
	for _, agg := range p.sites {
		r := SiteReport{
			Line:      agg.line,
			Barriers:  agg.barriers,
			PEs:       agg.pes,
			WallUS:    agg.wallNS / 1e3,
			Kernel:    agg.kernel,
			GatherUS:  agg.gatherNS / 1e3,
			ScatterUS: agg.scatterNS / 1e3,
		}
		var busySum, waitSum, busyMax int64
		for pe := 0; pe < agg.pes; pe++ {
			r.Tasks += agg.tasks[pe]
			busySum += agg.busyNS[pe]
			waitSum += agg.waitNS[pe]
			if agg.busyNS[pe] > busyMax {
				busyMax = agg.busyNS[pe]
			}
			r.PerPE = append(r.PerPE, PEReport{
				Tasks:  agg.tasks[pe],
				BusyUS: agg.busyNS[pe] / 1e3,
				WaitUS: agg.waitNS[pe] / 1e3,
			})
		}
		if denom := agg.wallNS * int64(agg.pes); denom > 0 {
			r.BusyPct = 100 * float64(busySum) / float64(denom)
			r.WaitPct = 100 * float64(waitSum) / float64(denom)
		}
		if busySum > 0 {
			mean := float64(busySum) / float64(agg.pes)
			r.Imbalance = float64(busyMax) / mean
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}
