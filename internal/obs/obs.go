// Package obs is the observability layer of the repository: request
// tracing, parallel-efficiency profiling, and metrics export. Every
// other layer produces the signal — serve records per-request stage
// spans, parexec records per-PE forall timings, the routers record
// per-attempt failover spans — and this package owns the shared
// vocabulary those layers speak:
//
//   - Trace / Span (trace.go in spirit, this file): a cheap
//     monotonic-clock span tree recorded per request. The whole API is
//     nil-safe — a nil *Trace or *Span swallows every call — so the
//     instrumented hot paths carry no "if tracing" branches beyond the
//     single decision to allocate a Trace. When sampling is off that
//     decision is a plain field compare: zero atomics, zero
//     allocations (internal/serve pins it with an alloc test).
//   - Sampler (sampler.go): the 1-in-N trace-rate decision.
//   - Ring (ring.go): a bounded buffer of recent trace snapshots,
//     served at GET /debug/traces.
//   - ForallProfiler (prof.go): per-forall-site parallel-efficiency
//     accounting — per-PE busy time, barrier wait, task counts, and
//     the derived efficiency/imbalance scores — keyed by the source
//     line the planner's Plan reports, so "the planner approved this
//     loop" and "here is its measured PE utilization" join on one key.
//   - Prom (prom.go): the Prometheus text exposition writer behind
//     GET /metrics on pslserved and pslrouter.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceHeader is the HTTP header that propagates a trace ID from
// pslrouter to its backends (and from any client that wants to stitch
// a request into its own trace): a backend that receives it records
// its spans under the caller's ID, so the router's per-attempt spans
// and the owning backend's per-stage spans form one fleet-wide trace.
const TraceHeader = "X-PSL-Trace"

// NewID returns a fresh 16-hex-digit trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a
		// time-derived ID keeps tracing alive rather than panicking.
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// Trace is one request's span record: an ID, a monotonic start
// instant, and a tree of spans measured as offsets from that start.
// All methods are safe on a nil receiver (no-ops), safe for concurrent
// use, and cheap — the mutex is only ever contended when a request is
// actually being traced.
type Trace struct {
	id string
	t0 time.Time

	mu     sync.Mutex
	spans  []*Span
	wallUS int64 // set by Finish; 0 while the trace is open
}

// NewTrace starts a trace. id == "" generates one; a non-empty id is
// adopted verbatim (the propagated-from-the-router case).
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewID()
	}
	return &Trace{id: id, t0: time.Now()}
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a root span. Returns nil (harmless) on a nil trace.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, Name: name, start: time.Now()}
	s.StartUS = s.start.Sub(t.t0).Microseconds()
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Finish stamps the trace's wall time and closes any span left open.
// Idempotent; later spans are still accepted (they would simply extend
// past the recorded wall — callers finish before snapshotting).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	if t.wallUS == 0 {
		t.wallUS = now.Sub(t.t0).Microseconds()
	}
	for _, s := range t.spans {
		s.finishOpen(now)
	}
	t.mu.Unlock()
}

// View snapshots the trace for serialization. Safe to call while spans
// are still being recorded (open spans report their duration so far).
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TraceView{
		ID:          t.id,
		StartUnixUS: t.t0.UnixMicro(),
		WallUS:      t.wallUS,
	}
	if v.WallUS == 0 {
		v.WallUS = now.Sub(t.t0).Microseconds()
	}
	v.Spans = make([]SpanView, len(t.spans))
	for i, s := range t.spans {
		v.Spans[i] = s.view(now)
	}
	return v
}

// Span is one timed stage of a trace. Exported fields are fixed at
// Start; duration and children are guarded by the owning trace's
// mutex.
type Span struct {
	tr *Trace

	Name    string
	StartUS int64

	start    time.Time
	durUS    int64 // -1 while open
	attrs    map[string]string
	children []*Span
}

// Start opens a child span. Nil-safe.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, Name: name, start: time.Now()}
	c.StartUS = c.start.Sub(s.tr.t0).Microseconds()
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End closes the span. Nil-safe; idempotent (first End wins).
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.tr.mu.Lock()
	if s.durUS == 0 {
		if d := now.Sub(s.start).Microseconds(); d > 0 {
			s.durUS = d
		} else {
			s.durUS = -1 // closed, sub-microsecond
		}
	}
	s.tr.mu.Unlock()
}

// SetAttr attaches a key/value annotation. Nil-safe.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
	s.tr.mu.Unlock()
}

// finishOpen closes the span (and its children) at now if still open.
// Caller holds the trace mutex.
func (s *Span) finishOpen(now time.Time) {
	if s.durUS == 0 {
		if d := now.Sub(s.start).Microseconds(); d > 0 {
			s.durUS = d
		} else {
			s.durUS = -1
		}
	}
	for _, c := range s.children {
		c.finishOpen(now)
	}
}

// view deep-copies the span subtree. Caller holds the trace mutex.
func (s *Span) view(now time.Time) SpanView {
	v := SpanView{Name: s.Name, StartUS: s.StartUS, DurUS: s.durUS}
	switch {
	case v.DurUS == 0: // still open: duration so far
		v.DurUS = now.Sub(s.start).Microseconds()
	case v.DurUS < 0: // closed, rounded to zero
		v.DurUS = 0
	}
	if len(s.attrs) > 0 {
		v.Attrs = make(map[string]string, len(s.attrs))
		for k, val := range s.attrs {
			v.Attrs[k] = val
		}
	}
	for _, c := range s.children {
		v.Children = append(v.Children, c.view(now))
	}
	return v
}

// TraceView is the wire form of a trace: what POST /run returns under
// "trace" for profiled requests and what GET /debug/traces lists.
type TraceView struct {
	ID          string     `json:"id"`
	StartUnixUS int64      `json:"start_unix_us"`
	WallUS      int64      `json:"wall_us"`
	Spans       []SpanView `json:"spans,omitempty"`
}

// SpanView is the wire form of one span.
type SpanView struct {
	Name     string            `json:"name"`
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanView        `json:"children,omitempty"`
}
