package obs

import "sync"

// Ring is a bounded buffer of recent trace snapshots: every sampled or
// profiled request pushes its TraceView, GET /debug/traces reads the
// newest ones. Memory is bounded by the capacity — old traces are
// overwritten, never accumulated — so leaving tracing on in production
// costs a fixed buffer, not a leak.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceView
	next int
	n    int
}

// NewRing builds a ring holding up to capacity traces (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]TraceView, capacity)}
}

// Add records a trace snapshot, evicting the oldest when full.
// Nil-safe.
func (r *Ring) Add(v TraceView) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the buffered traces, newest first. Nil-safe.
func (r *Ring) Snapshot() []TraceView {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceView, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len reports how many traces are buffered. Nil-safe.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
