package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceSpanTree: spans nest, offsets are monotonic, Finish closes
// open spans, and the view is a self-contained deep copy.
func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("")
	if tr.ID() == "" || len(tr.ID()) != 16 {
		t.Fatalf("generated ID %q, want 16 hex digits", tr.ID())
	}
	a := tr.Start("admission")
	time.Sleep(2 * time.Millisecond)
	a.End()
	b := tr.Start("execute")
	c := b.Start("cache")
	time.Sleep(1 * time.Millisecond)
	c.SetAttr("hit", "true")
	c.End()
	// b left open: Finish must close it.
	tr.Finish()

	v := tr.View()
	if v.WallUS <= 0 {
		t.Fatalf("wall %d, want > 0", v.WallUS)
	}
	if len(v.Spans) != 2 {
		t.Fatalf("got %d root spans, want 2", len(v.Spans))
	}
	adm, ex := v.Spans[0], v.Spans[1]
	if adm.Name != "admission" || ex.Name != "execute" {
		t.Fatalf("span names %q, %q", adm.Name, ex.Name)
	}
	if adm.DurUS <= 0 {
		t.Errorf("admission dur %d, want > 0", adm.DurUS)
	}
	if ex.StartUS < adm.StartUS {
		t.Errorf("execute starts (%d) before admission (%d)", ex.StartUS, adm.StartUS)
	}
	if ex.DurUS <= 0 {
		t.Errorf("open span not closed by Finish: dur %d", ex.DurUS)
	}
	if len(ex.Children) != 1 || ex.Children[0].Name != "cache" {
		t.Fatalf("execute children: %+v", ex.Children)
	}
	if got := ex.Children[0].Attrs["hit"]; got != "true" {
		t.Errorf("cache attr hit = %q, want true", got)
	}
	// Spans within the recorded wall.
	for _, s := range v.Spans {
		if s.StartUS+s.DurUS > v.WallUS+1 {
			t.Errorf("span %s [%d +%d] exceeds wall %d", s.Name, s.StartUS, s.DurUS, v.WallUS)
		}
	}
}

// TestTraceAdoptedID: a propagated ID is used verbatim (the router →
// backend stitching contract).
func TestTraceAdoptedID(t *testing.T) {
	tr := NewTrace("deadbeef00112233")
	if tr.ID() != "deadbeef00112233" {
		t.Fatalf("adopted ID %q", tr.ID())
	}
}

// TestTraceNilSafe: the whole API is a no-op on nil receivers — the
// contract that lets instrumented code skip "if tracing" branches.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Error("nil trace has an ID")
	}
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil trace returned a span")
	}
	s.End()
	s.SetAttr("k", "v")
	c := s.Start("child")
	c.End()
	tr.Finish()
	if v := tr.View(); v.ID != "" || len(v.Spans) != 0 {
		t.Errorf("nil trace view: %+v", v)
	}
	var sampler *Sampler
	if sampler.Sample() {
		t.Error("nil sampler sampled")
	}
	var ring *Ring
	ring.Add(TraceView{})
	if ring.Snapshot() != nil || ring.Len() != 0 {
		t.Error("nil ring not empty")
	}
	var prof *ForallProfiler
	prof.Record(1, 1, nil, nil, nil)
	if prof.Report() != nil {
		t.Error("nil profiler reported")
	}
}

// TestSampler: rate 0 never fires, rate 1 always, rate 0.25 exactly
// 1-in-4 (deterministic counter, not a coin flip).
func TestSampler(t *testing.T) {
	if s := NewSampler(0); s != nil {
		t.Fatal("rate 0 should build a nil sampler")
	}
	s := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !s.Sample() {
			t.Fatal("rate 1 must always sample")
		}
	}
	s = NewSampler(0.25)
	got := 0
	for i := 0; i < 400; i++ {
		if s.Sample() {
			got++
		}
	}
	if got != 100 {
		t.Fatalf("rate 0.25 sampled %d of 400, want exactly 100", got)
	}
	if r := s.Rate(); r != 0.25 {
		t.Fatalf("Rate() = %v, want 0.25", r)
	}
}

// TestRing: bounded, newest-first, overwrites oldest.
func TestRing(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(TraceView{WallUS: int64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("len %d, want 3", r.Len())
	}
	snap := r.Snapshot()
	want := []int64{5, 4, 3}
	for i, v := range snap {
		if v.WallUS != want[i] {
			t.Fatalf("snapshot[%d].WallUS = %d, want %d (%+v)", i, v.WallUS, want[i], snap)
		}
	}
}

// TestForallProfilerMath: known timings produce the documented busy%,
// wait%, and imbalance scores, aggregated across barriers.
func TestForallProfilerMath(t *testing.T) {
	p := NewForallProfiler()
	// 2 PEs, wall 100µs: PE0 busy 80µs done at 90µs, PE1 busy 40µs
	// done at 50µs → busy = (80+40)/200 = 60%, wait = (10+50)/200 =
	// 30%, imbalance = 80/60 = 1.333.
	us := int64(1000) // ns per µs
	p.Record(7, 100*us, []int64{80 * us, 40 * us}, []int64{90 * us, 50 * us}, []int64{8, 4})
	p.Record(7, 100*us, []int64{80 * us, 40 * us}, []int64{90 * us, 50 * us}, []int64{8, 4})
	rep := p.Report()
	if len(rep) != 1 {
		t.Fatalf("%d sites, want 1", len(rep))
	}
	r := rep[0]
	if r.Line != 7 || r.PEs != 2 || r.Barriers != 2 || r.Tasks != 24 {
		t.Fatalf("header fields: %+v", r)
	}
	approx := func(got, want float64) bool { return got > want-0.01 && got < want+0.01 }
	if !approx(r.BusyPct, 60) {
		t.Errorf("busy %.2f%%, want 60%%", r.BusyPct)
	}
	if !approx(r.WaitPct, 30) {
		t.Errorf("wait %.2f%%, want 30%%", r.WaitPct)
	}
	if !approx(r.Imbalance, 80.0/60.0) {
		t.Errorf("imbalance %.3f, want %.3f", r.Imbalance, 80.0/60.0)
	}
	if len(r.PerPE) != 2 || r.PerPE[0].Tasks != 16 || r.PerPE[1].BusyUS != 80 {
		t.Errorf("per-PE rows: %+v", r.PerPE)
	}
	if !strings.Contains(r.String(), "imbalance=1.33") {
		t.Errorf("String() = %q", r.String())
	}

	// A second site sorts after by line.
	p.Record(3, 10*us, []int64{5 * us}, []int64{5 * us}, []int64{1})
	rep = p.Report()
	if len(rep) != 2 || rep[0].Line != 3 || rep[1].Line != 7 {
		t.Fatalf("sites not sorted by line: %+v", rep)
	}
}

// TestForallProfilerConcurrent: Record and Report race-free under -race.
func TestForallProfilerConcurrent(t *testing.T) {
	p := NewForallProfiler()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Record(9, 100, []int64{50, 50}, []int64{60, 60}, []int64{1, 1})
				_ = p.Report()
			}
		}()
	}
	wg.Wait()
	rep := p.Report()
	if len(rep) != 1 || rep[0].Barriers != 800 {
		t.Fatalf("after concurrent records: %+v", rep)
	}
}

// TestPromFormat: the text exposition output is exactly what a
// Prometheus scraper expects — HELP/TYPE heads, cumulative histogram
// buckets with a +Inf cap, seconds units.
func TestPromFormat(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b)
	p.Counter("psl_requests_total", "Requests.", 42)
	p.Gauge("psl_queue_depth", "Queue depth.", 3)
	p.LabeledGauge("psl_backend_healthy", "Backend health.", []Labeled{
		{Labels: `backend="a"`, Value: 1},
		{Labels: `backend="b"`, Value: 0},
	})
	p.HistogramUS("psl_latency_seconds", "Latency.",
		[]int64{100, 1000}, []int64{5, 3}, 2, 10, 12345)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# HELP psl_requests_total Requests.\n# TYPE psl_requests_total counter\npsl_requests_total 42\n",
		"# TYPE psl_queue_depth gauge\npsl_queue_depth 3\n",
		`psl_backend_healthy{backend="a"} 1`,
		`psl_backend_healthy{backend="b"} 0`,
		`psl_latency_seconds_bucket{le="0.0001"} 5`,
		`psl_latency_seconds_bucket{le="0.001"} 8`,
		`psl_latency_seconds_bucket{le="+Inf"} 10`,
		"psl_latency_seconds_sum 0.012345\n",
		"psl_latency_seconds_count 10\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if got := EscapeLabel(`a"b\c`); got != `a\"b\\c` {
		t.Errorf("EscapeLabel = %q", got)
	}
}
