package obs

import "sync/atomic"

// Sampler makes the trace-rate decision: Sample() answers true for
// roughly rate × the calls, deterministically (every Nth call, N =
// round(1/rate)) rather than randomly, so a load test at -trace-rate
// 0.1 traces a predictable 1-in-10 and a test at rate 1 traces
// everything. A nil Sampler, or one built with rate <= 0, never
// samples and costs a nil/zero compare — no atomics — which is what
// keeps the not-sampled hot path free (the serve alloc test pins it).
type Sampler struct {
	every int64
	n     atomic.Int64
}

// NewSampler builds a sampler for rate (clamped to [0, 1]).
// rate <= 0 returns nil: never sample, zero cost.
func NewSampler(rate float64) *Sampler {
	if rate <= 0 {
		return nil
	}
	if rate >= 1 {
		return &Sampler{every: 1}
	}
	every := int64(1/rate + 0.5)
	if every < 1 {
		every = 1
	}
	return &Sampler{every: every}
}

// Sample decides one request. Nil-safe.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	if s.every == 1 {
		return true
	}
	return s.n.Add(1)%s.every == 0
}

// Rate reports the effective sampling rate (0 on nil).
func (s *Sampler) Rate() float64 {
	if s == nil {
		return 0
	}
	return 1 / float64(s.every)
}
