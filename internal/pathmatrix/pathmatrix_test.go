package pathmatrix

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAliasJoin(t *testing.T) {
	cases := []struct{ a, b, want Alias }{
		{NoAlias, NoAlias, NoAlias},
		{DefiniteAlias, DefiniteAlias, DefiniteAlias},
		{NoAlias, DefiniteAlias, PossibleAlias},
		{DefiniteAlias, NoAlias, PossibleAlias},
		{PossibleAlias, NoAlias, PossibleAlias},
		{PossibleAlias, DefiniteAlias, PossibleAlias},
		{PossibleAlias, PossibleAlias, PossibleAlias},
	}
	for _, c := range cases {
		if got := JoinAlias(c.a, c.b); got != c.want {
			t.Errorf("JoinAlias(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDescString(t *testing.T) {
	if got := ExactDesc("next", 1).String(); got != "next" {
		t.Errorf("exact = %q", got)
	}
	if got := PlusDesc("next").String(); got != "next+" {
		t.Errorf("plus = %q", got)
	}
	if got := PlusDesc("b", "a").String(); got != "(a.b)+" {
		t.Errorf("multi = %q", got)
	}
	if got := PlusDesc("a", "a").String(); got != "a+" {
		t.Errorf("dedup = %q", got)
	}
}

func TestEntryAddRemove(t *testing.T) {
	var e Entry
	e.AddDesc(ExactDesc("next", 7))
	e.AddDesc(PlusDesc("next"))
	e.AddDesc(PlusDesc("next")) // duplicate ignored
	if len(e.Descs) != 2 {
		t.Fatalf("descs = %v", e.Descs)
	}
	if id, ok := e.HasExact("next"); !ok || id != 7 {
		t.Errorf("HasExact = %d,%v", id, ok)
	}
	// Re-adding an exact with a new edge ID replaces the old edge.
	e.AddDesc(ExactDesc("next", 9))
	if id, _ := e.HasExact("next"); id != 9 {
		t.Errorf("edge replace: id = %d, want 9", id)
	}
	removed := e.RemoveExact("next")
	if !reflect.DeepEqual(removed, []int{9}) {
		t.Errorf("removed = %v", removed)
	}
	if _, ok := e.HasExact("next"); ok {
		t.Error("exact not removed")
	}
	if !e.HasPath() {
		t.Error("plus path should remain")
	}
}

func TestRemovePathsUsing(t *testing.T) {
	var e Entry
	e.AddDesc(ExactDesc("left", 3))
	e.AddDesc(PlusDesc("left", "right"))
	e.AddDesc(PlusDesc("next"))
	removed := e.RemovePathsUsing("left")
	if !reflect.DeepEqual(removed, []int{3}) {
		t.Errorf("removed = %v", removed)
	}
	if len(e.Descs) != 1 || e.Descs[0].String() != "next+" {
		t.Errorf("descs = %v", e.Descs)
	}
}

func TestEntryString(t *testing.T) {
	var e Entry
	if e.String() != "" {
		t.Errorf("zero entry prints %q", e.String())
	}
	e.Alias = PossibleAlias
	e.AddDesc(PlusDesc("next"))
	if e.String() != "=?,next+" {
		t.Errorf("entry = %q", e.String())
	}
	e2 := Entry{Alias: DefiniteAlias}
	if e2.String() != "=" {
		t.Errorf("def = %q", e2.String())
	}
}

func TestJoinEntrySemantics(t *testing.T) {
	// Same edge identity stays exact.
	a := Entry{Alias: NoAlias}
	a.AddDesc(ExactDesc("next", 5))
	b := Entry{Alias: NoAlias}
	b.AddDesc(ExactDesc("next", 5))
	j := JoinEntry(a, b)
	if _, ok := j.HasExact("next"); !ok {
		t.Error("same edge must stay exact across join")
	}
	// Different identities weaken to plus.
	c := Entry{Alias: NoAlias}
	c.AddDesc(ExactDesc("next", 6))
	j2 := JoinEntry(a, c)
	if _, ok := j2.HasExact("next"); ok {
		t.Error("different edges must weaken")
	}
	if !j2.HasPath() {
		t.Error("weakened join must keep a plus path")
	}
	// Paths survive only when present on both sides.
	d := Entry{Alias: NoAlias}
	j3 := JoinEntry(a, d)
	if j3.HasPath() {
		t.Error("one-sided path must not survive join")
	}
	// Alias weakening.
	if JoinEntry(Entry{Alias: DefiniteAlias}, Entry{}).Alias != PossibleAlias {
		t.Error("definite vs no must weaken to possible")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := New("head", "p")
	if got := m.Get("head", "head").Alias; got != DefiniteAlias {
		t.Errorf("diagonal = %v", got)
	}
	if !m.Get("head", "p").IsZero() {
		t.Error("off-diagonal should start zero")
	}
	m.Update("head", "p", func(e *Entry) { e.AddDesc(PlusDesc("next")) })
	if !m.Get("head", "p").HasPath() {
		t.Error("update lost")
	}
	m.Kill("p")
	if m.Get("head", "p").HasPath() {
		t.Error("kill must clear relationships")
	}
	if m.Get("p", "p").Alias != DefiniteAlias {
		t.Error("kill must keep self alias")
	}
	if !m.HasHandle("p") {
		t.Error("kill must keep the handle")
	}
	m.RemoveHandle("p")
	if m.HasHandle("p") {
		t.Error("handle not removed")
	}
	if len(m.Handles()) != 1 {
		t.Errorf("handles = %v", m.Handles())
	}
}

func TestRemoveHandleCompaction(t *testing.T) {
	m := New("a", "b", "c")
	m.Update("a", "c", func(e *Entry) { e.Alias = PossibleAlias })
	m.Update("c", "b", func(e *Entry) { e.AddDesc(PlusDesc("f")) })
	m.RemoveHandle("b")
	if got := m.Get("a", "c").Alias; got != PossibleAlias {
		t.Errorf("a-c lost after compaction: %v", got)
	}
	if m.Get("c", "a").Alias != NoAlias {
		t.Error("c-a should be zero")
	}
	m.AddHandle("d")
	m.Update("d", "a", func(e *Entry) { e.Alias = DefiniteAlias })
	if m.Get("d", "a").Alias != DefiniteAlias {
		t.Error("post-compaction add broken")
	}
}

func TestCopyRelationships(t *testing.T) {
	m := New("head", "p", "q")
	m.Update("head", "q", func(e *Entry) { e.AddDesc(PlusDesc("next")) })
	m.Kill("p")
	m.CopyRelationships("p", "head")
	if m.Get("p", "q").String() != "next+" {
		t.Errorf("p-q = %q", m.Get("p", "q"))
	}
	if m.Get("p", "head").Alias != DefiniteAlias || m.Get("head", "p").Alias != DefiniteAlias {
		t.Error("copy must set mutual definite alias")
	}
}

func TestAliases(t *testing.T) {
	m := New("a", "b", "c")
	m.Update("a", "b", func(e *Entry) { e.Alias = DefiniteAlias })
	m.Update("a", "c", func(e *Entry) { e.Alias = PossibleAlias })
	if got := m.Aliases("a", false); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("definite aliases = %v", got)
	}
	if got := m.Aliases("a", true); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Errorf("all aliases = %v", got)
	}
}

func TestMatrixJoinHandleUnion(t *testing.T) {
	a := New("p", "q")
	a.Update("p", "q", func(e *Entry) { e.Alias = DefiniteAlias })
	b := New("p")
	j := Join(a, b)
	if !j.HasHandle("q") {
		t.Fatal("join must union handles")
	}
	// q only existed in a, so its entries carry over unweakened.
	if j.Get("p", "q").Alias != DefiniteAlias {
		t.Errorf("p-q = %v", j.Get("p", "q"))
	}
	// Shared entries weaken.
	b2 := New("p", "q")
	j2 := Join(a, b2)
	if j2.Get("p", "q").Alias != PossibleAlias {
		t.Errorf("shared weaken: %v", j2.Get("p", "q"))
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New("x", "y")
	a.Update("x", "y", func(e *Entry) { e.AddDesc(ExactDesc("f", 1)) })
	b := a.Clone()
	if !Equal(a, b) {
		t.Error("clone must equal original")
	}
	b.Update("x", "y", func(e *Entry) { e.Alias = PossibleAlias })
	if Equal(a, b) {
		t.Error("mutated clone must differ")
	}
	if Equal(a, New("x")) {
		t.Error("different handle sets must differ")
	}
	c := New("y", "x") // same handles, different order
	c.Update("x", "y", func(e *Entry) { e.AddDesc(ExactDesc("f", 1)) })
	if !Equal(a, c) {
		t.Error("handle order must not affect equality")
	}
}

func TestStringFormat(t *testing.T) {
	m := New("head", "p", "p'")
	m.Update("head", "p", func(e *Entry) { e.AddDesc(PlusDesc("next")) })
	m.Update("p'", "p", func(e *Entry) { e.AddDesc(ExactDesc("next", 1)) })
	s := m.String()
	for _, want := range []string{"head", "p'", "next+", "next", "="} {
		if !strings.Contains(s, want) {
			t.Errorf("matrix string missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("expected header + 3 rows, got %d lines:\n%s", len(lines), s)
	}
}

// ---------------------------------------------------------------------------
// Property tests

func randomEntry(r *rand.Rand) Entry {
	e := Entry{Alias: Alias(r.Intn(3))}
	fields := []string{"next", "left", "right", "subtrees"}
	for i, n := 0, r.Intn(3); i < n; i++ {
		f := fields[r.Intn(len(fields))]
		if r.Intn(2) == 0 {
			e.AddDesc(ExactDesc(f, r.Intn(4)+1))
		} else {
			e.AddDesc(PlusDesc(f))
		}
	}
	return e
}

// entryGen makes Entry usable with testing/quick.
type entryGen struct{ E Entry }

func (entryGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(entryGen{E: randomEntry(r)})
}

func TestQuickJoinCommutative(t *testing.T) {
	f := func(a, b entryGen) bool {
		return EqualEntry(JoinEntry(a.E, b.E), JoinEntry(b.E, a.E))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinIdempotent(t *testing.T) {
	f := func(a entryGen) bool {
		return EqualEntry(JoinEntry(a.E, a.E), a.E)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinMonotoneAliases(t *testing.T) {
	// The alias component of a join is never stronger (more definite)
	// than PossibleAlias when the inputs disagree, and a NoAlias result
	// implies both inputs were NoAlias: the non-alias guarantee is never
	// manufactured.
	f := func(a, b entryGen) bool {
		j := JoinEntry(a.E, b.E)
		if j.Alias == NoAlias && (a.E.Alias != NoAlias || b.E.Alias != NoAlias) {
			return false
		}
		if j.Alias == DefiniteAlias && (a.E.Alias != DefiniteAlias || b.E.Alias != DefiniteAlias) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinPathsShrink(t *testing.T) {
	// Every descriptor in the join must be justified on both sides: by a
	// descriptor over the same fields, or — for star descriptors — by a
	// definite alias (a zero-length path). Definite paths are never
	// invented.
	f := func(a, b entryGen) bool {
		j := JoinEntry(a.E, b.E)
		justified := func(e Entry, d Desc) bool {
			if d.Star && e.Alias == DefiniteAlias {
				return true
			}
			for _, x := range e.Descs {
				if sameFields(x, d) {
					return true
				}
			}
			return false
		}
		for _, d := range j.Descs {
			if !justified(a.E, d) || !justified(b.E, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinConvergence(t *testing.T) {
	// Repeated joining against a fixed sequence of entries converges:
	// join(acc, x) applied twice with the same x is stable. This is the
	// property the loop fixed point relies on.
	f := func(a, b entryGen) bool {
		once := JoinEntry(a.E, b.E)
		twice := JoinEntry(once, b.E)
		thrice := JoinEntry(twice, b.E)
		return EqualEntry(twice, thrice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMatrixJoinCommutative(t *testing.T) {
	f := func(a, b, c, d entryGen) bool {
		m1 := New("p", "q")
		m1.Set("p", "q", a.E)
		m1.Set("q", "p", b.E)
		m2 := New("p", "q")
		m2.Set("p", "q", c.E)
		m2.Set("q", "p", d.E)
		return Equal(Join(m1, m2), Join(m2, m1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
