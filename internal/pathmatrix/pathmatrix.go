// Package pathmatrix implements the path matrix abstraction of Hendren &
// Nicolau, extended per Hummel/Nicolau/Hendren (ICPP 1992) to "general"
// path matrices driven by ADDS declarations.
//
// A path matrix PM is indexed by the live pointer handles (variables,
// plus primed handles such as p' that denote a variable's value in the
// previous loop iteration). The entry PM(r, s) records the relationship
// from the node pointed to by r to the node pointed to by s:
//
//   - an alias component: NoAlias (the exploitable guarantee: r and s
//     definitely point to different nodes), PossibleAlias (printed "=?"),
//     or DefiniteAlias (printed "=");
//   - a set of definite path descriptors: Exact descriptors record a
//     single currently-existing edge ("r->f == s right now"; printed
//     "f"), and Plus descriptors record a path of one or more links
//     through a set of fields (printed "f+").
//
// Exact descriptors carry an edge identity so that abstraction
// violations (package analysis) can be cleared when the specific edge
// that witnessed them is destroyed, mirroring the paper's "an entry is
// added to the path matrix encoding the violation ... later the entry is
// removed" (§3.3.1).
//
// The package is deliberately declaration-agnostic: it stores and joins
// relationships. Interpreting fields against ADDS dimensions and
// directions is the analysis's job.
package pathmatrix

import (
	"fmt"
	"sort"
	"strings"
)

// Alias is the alias component of an entry.
type Alias int

// Alias values. The zero value is NoAlias: an absent entry guarantees
// the two handles are not aliases (the paper's "empty entry ... does
// guarantee that the two pointers are not aliases").
const (
	NoAlias Alias = iota
	PossibleAlias
	DefiniteAlias
)

// String renders the paper's notation.
func (a Alias) String() string {
	switch a {
	case DefiniteAlias:
		return "="
	case PossibleAlias:
		return "=?"
	default:
		return ""
	}
}

// JoinAlias is the least upper bound of two alias values: facts that
// differ across paths weaken to PossibleAlias.
func JoinAlias(a, b Alias) Alias {
	if a == b {
		return a
	}
	return PossibleAlias
}

// Desc is one definite path descriptor. Its kind is one of:
//
//   - exact (Exact=true): a single, currently-existing edge via
//     Fields[0] (printed "f");
//   - plus (Exact=false, Star=false): a definite path of one or more
//     links over the field set (printed "f+");
//   - star (Star=true): a definite path of zero or more links (printed
//     "f*"). Zero links means the endpoints coincide, so a star entry
//     carries no non-alias guarantee by itself; it exists so that the
//     loop-head join of "=" (zero steps) with "f+" (≥1 steps) keeps the
//     path information that lets the next load re-derive "f+".
type Desc struct {
	// Fields is the sorted set of field names the path uses.
	Fields []string
	// Exact marks a single, currently-existing edge via Fields[0].
	// len(Fields) == 1 when Exact.
	Exact bool
	// Star marks a ≥0-length path.
	Star bool
	// EdgeID identifies an exact edge for join bookkeeping; 0 otherwise.
	EdgeID int
	// Index is the source text of the index expression for exact edges
	// through pointer-array fields ("q" in p->subtrees[q]); "" for
	// plain pointer fields. The sentinel "?" marks an index the
	// analysis cannot compare.
	Index string
}

// ExactDesc returns an exact single-edge descriptor.
func ExactDesc(field string, edgeID int) Desc {
	return Desc{Fields: []string{field}, Exact: true, EdgeID: edgeID}
}

// ExactIndexedDesc returns an exact edge through one element of a
// pointer-array field.
func ExactIndexedDesc(field, index string, edgeID int) Desc {
	return Desc{Fields: []string{field}, Exact: true, EdgeID: edgeID, Index: index}
}

// PlusDesc returns a ≥1-link path descriptor over the given fields.
func PlusDesc(fields ...string) Desc {
	fs := append([]string(nil), fields...)
	sort.Strings(fs)
	fs = dedupSorted(fs)
	return Desc{Fields: fs}
}

// StarDesc returns a ≥0-link path descriptor over the given fields.
func StarDesc(fields ...string) Desc {
	d := PlusDesc(fields...)
	d.Star = true
	return d
}

func dedupSorted(fs []string) []string {
	out := fs[:0]
	for i, f := range fs {
		if i == 0 || f != fs[i-1] {
			out = append(out, f)
		}
	}
	return out
}

// String renders "f" (or "f[q]") for exact edges, "f+" / "(f.g)+" for
// ≥1 paths, and "f*" / "(f.g)*" for ≥0 paths.
func (d Desc) String() string {
	if d.Exact {
		if d.Index != "" {
			return d.Fields[0] + "[" + d.Index + "]"
		}
		return d.Fields[0]
	}
	suffix := "+"
	if d.Star {
		suffix = "*"
	}
	if len(d.Fields) == 1 {
		return d.Fields[0] + suffix
	}
	return "(" + strings.Join(d.Fields, ".") + ")" + suffix
}

// sameFields reports whether the two descriptors use the same field set.
func sameFields(a, b Desc) bool {
	if len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	return true
}

// HasField reports whether the descriptor's field set contains f.
func (d Desc) HasField(f string) bool {
	for _, x := range d.Fields {
		if x == f {
			return true
		}
	}
	return false
}

// Entry is one cell of the matrix.
type Entry struct {
	Alias Alias
	Descs []Desc
}

// IsZero reports whether the entry carries no information beyond the
// non-alias guarantee.
func (e Entry) IsZero() bool { return e.Alias == NoAlias && len(e.Descs) == 0 }

// HasExact returns the edge ID of an exact descriptor via the plain
// (non-array) field f, if any.
func (e Entry) HasExact(f string) (int, bool) {
	for _, d := range e.Descs {
		if d.Exact && d.Fields[0] == f && d.Index == "" {
			return d.EdgeID, true
		}
	}
	return 0, false
}

// HasExactField reports whether any exact edge uses field f, indexed or
// not.
func (e Entry) HasExactField(f string) bool {
	for _, d := range e.Descs {
		if d.Exact && d.Fields[0] == f {
			return true
		}
	}
	return false
}

// HasPath reports whether the entry records any definite path (exact or
// plus).
func (e Entry) HasPath() bool { return len(e.Descs) > 0 }

// AddDesc adds a descriptor, deduplicating by field set and kind. An
// exact descriptor subsumes nothing and is never subsumed: both an exact
// edge and a plus path over the same field may coexist (q->f == s and
// also a longer f-path from q to s cannot both hold for trees, but can
// for general graphs until validated).
func (e *Entry) AddDesc(d Desc) {
	for i, x := range e.Descs {
		if x.Exact == d.Exact && x.Star == d.Star && x.Index == d.Index && sameFields(x, d) {
			if d.Exact {
				// Replace: the newer edge identity wins (the statement
				// that created it overwrote the field).
				e.Descs[i] = d
			}
			return
		}
	}
	e.Descs = append(e.Descs, d)
	e.dropSubsumedStars()
	e.normalize()
}

func (e *Entry) normalize() {
	sort.Slice(e.Descs, func(i, j int) bool {
		a, b := e.Descs[i], e.Descs[j]
		if a.Exact != b.Exact {
			return a.Exact
		}
		if a.Star != b.Star {
			return b.Star
		}
		as, bs := strings.Join(a.Fields, "."), strings.Join(b.Fields, ".")
		if as != bs {
			return as < bs
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.EdgeID < b.EdgeID
	})
}

// RemoveExact deletes exact descriptors via field f (any index),
// returning the IDs of the removed edges.
func (e *Entry) RemoveExact(f string) []int {
	var removed []int
	out := e.Descs[:0]
	for _, d := range e.Descs {
		if d.Exact && d.Fields[0] == f {
			removed = append(removed, d.EdgeID)
			continue
		}
		out = append(out, d)
	}
	e.Descs = out
	if len(e.Descs) == 0 {
		e.Descs = nil
	}
	return removed
}

// RemovePathsUsing deletes every descriptor whose field set contains f
// (both exact and plus), returning removed exact edge IDs. Used by the
// store rule to invalidate paths that may run through an overwritten
// edge.
func (e *Entry) RemovePathsUsing(f string) []int {
	var removed []int
	out := e.Descs[:0]
	for _, d := range e.Descs {
		if d.HasField(f) {
			if d.Exact {
				removed = append(removed, d.EdgeID)
			}
			continue
		}
		out = append(out, d)
	}
	e.Descs = out
	if len(e.Descs) == 0 {
		e.Descs = nil
	}
	return removed
}

// RemoveExactsIndexedBy deletes exact descriptors whose index text
// equals idx (used when the index variable is reassigned and the
// recorded element identity goes stale).
func (e *Entry) RemoveExactsIndexedBy(idx string) {
	out := e.Descs[:0]
	for _, d := range e.Descs {
		if d.Exact && d.Index == idx {
			continue
		}
		out = append(out, d)
	}
	e.Descs = out
	if len(e.Descs) == 0 {
		e.Descs = nil
	}
}

// RemoveNonExactUsing deletes plus/star descriptors whose field set
// contains f, keeping exact edges (which are known to emanate from a
// different node than the one being stored through).
func (e *Entry) RemoveNonExactUsing(f string) {
	out := e.Descs[:0]
	for _, d := range e.Descs {
		if !d.Exact && d.HasField(f) {
			continue
		}
		out = append(out, d)
	}
	e.Descs = out
	if len(e.Descs) == 0 {
		e.Descs = nil
	}
}

// Clone deep-copies the entry.
func (e Entry) Clone() Entry {
	ne := Entry{Alias: e.Alias}
	if len(e.Descs) > 0 {
		ne.Descs = make([]Desc, len(e.Descs))
		for i, d := range e.Descs {
			ne.Descs[i] = Desc{Fields: append([]string(nil), d.Fields...),
				Exact: d.Exact, Star: d.Star, EdgeID: d.EdgeID, Index: d.Index}
		}
	}
	return ne
}

// JoinEntry computes the least upper bound of two entries: alias
// components weaken via JoinAlias; definite paths survive only if both
// sides record them (or one side is a definite alias, which acts as a
// zero-length path and joins with any path into a star). Exact
// descriptors with the same edge identity stay exact; exact edges
// established separately on each side weaken to a plus path.
func JoinEntry(a, b Entry) Entry {
	out := Entry{Alias: JoinAlias(a.Alias, b.Alias)}
	for _, da := range a.Descs {
		for _, db := range b.Descs {
			if !sameFields(da, db) {
				continue
			}
			switch {
			case da.Star || db.Star:
				out.AddDesc(StarDesc(da.Fields...))
			case da.Exact && db.Exact && da.EdgeID == db.EdgeID && da.Index == db.Index:
				out.AddDesc(da)
			case da.Exact == db.Exact && !da.Exact:
				out.AddDesc(da)
			default:
				// exact vs plus, or exact vs different exact: weaken.
				out.AddDesc(PlusDesc(da.Fields...))
			}
		}
	}
	// A definite alias is a zero-length path: joined with the other
	// side's paths it yields ≥0 paths, preserving reachability facts
	// across loop-head joins. Fields already covered by the pairwise
	// rules are skipped so that join stays idempotent.
	hasFields := func(e Entry, d Desc) bool {
		for _, x := range e.Descs {
			if sameFields(x, d) {
				return true
			}
		}
		return false
	}
	if a.Alias == DefiniteAlias {
		for _, db := range b.Descs {
			if !hasFields(a, db) {
				out.AddDesc(StarDesc(db.Fields...))
			}
		}
	}
	if b.Alias == DefiniteAlias {
		for _, da := range a.Descs {
			if !hasFields(b, da) {
				out.AddDesc(StarDesc(da.Fields...))
			}
		}
	}
	// Star subsumption: drop a star when a plus over the same fields is
	// present (≥1 implies ≥0) to keep entries small and displays clean.
	out.dropSubsumedStars()
	return out
}

func (e *Entry) dropSubsumedStars() {
	keep := e.Descs[:0]
	for _, d := range e.Descs {
		if d.Star {
			subsumed := false
			for _, x := range e.Descs {
				if !x.Star && !x.Exact && sameFields(x, d) {
					subsumed = true
					break
				}
			}
			if subsumed {
				continue
			}
		}
		keep = append(keep, d)
	}
	e.Descs = keep
	if len(e.Descs) == 0 {
		e.Descs = nil
	}
}

// EqualEntry reports structural equality (used for fixed-point checks).
func EqualEntry(a, b Entry) bool {
	if a.Alias != b.Alias || len(a.Descs) != len(b.Descs) {
		return false
	}
	for i := range a.Descs {
		da, db := a.Descs[i], b.Descs[i]
		if da.Exact != db.Exact || da.Star != db.Star || da.EdgeID != db.EdgeID ||
			da.Index != db.Index || !sameFields(da, db) {
			return false
		}
	}
	return true
}

// String renders the entry in the paper's notation: "=", "=?", "next",
// "next+", or combinations separated by commas.
func (e Entry) String() string {
	var parts []string
	if s := e.Alias.String(); s != "" {
		parts = append(parts, s)
	}
	for _, d := range e.Descs {
		parts = append(parts, d.String())
	}
	return strings.Join(parts, ",")
}

// ---------------------------------------------------------------------------
// Matrix

// Matrix is a path matrix over a set of handles.
type Matrix struct {
	handles []string
	index   map[string]int
	cells   map[[2]int]Entry
}

// New returns a matrix over the given handles. Diagonal entries are
// DefiniteAlias (every handle aliases itself); all others are zero
// (NoAlias): callers establish initial relationships explicitly.
func New(handles ...string) *Matrix {
	m := &Matrix{index: make(map[string]int), cells: make(map[[2]int]Entry)}
	for _, h := range handles {
		m.AddHandle(h)
	}
	return m
}

// Handles returns the handle names in insertion order.
func (m *Matrix) Handles() []string {
	return append([]string(nil), m.handles...)
}

// HasHandle reports whether h is tracked.
func (m *Matrix) HasHandle(h string) bool {
	_, ok := m.index[h]
	return ok
}

// AddHandle introduces a handle with a definite self-alias and no other
// relationships. Adding an existing handle is a no-op.
func (m *Matrix) AddHandle(h string) {
	if _, ok := m.index[h]; ok {
		return
	}
	i := len(m.handles)
	m.handles = append(m.handles, h)
	m.index[h] = i
	m.cells[[2]int{i, i}] = Entry{Alias: DefiniteAlias}
}

// RemoveHandle deletes a handle and all its relationships.
func (m *Matrix) RemoveHandle(h string) {
	i, ok := m.index[h]
	if !ok {
		return
	}
	for k := range m.cells {
		if k[0] == i || k[1] == i {
			delete(m.cells, k)
		}
	}
	// Compact indices: rebuild.
	handles := append([]string(nil), m.handles[:i]...)
	handles = append(handles, m.handles[i+1:]...)
	old := m.cells
	oldIndexOf := func(n int) int {
		if n >= i {
			return n + 1
		}
		return n
	}
	m.handles = handles
	m.index = make(map[string]int, len(handles))
	for j, h := range handles {
		m.index[h] = j
	}
	m.cells = make(map[[2]int]Entry, len(old))
	for j := range handles {
		for k := range handles {
			if e, ok := old[[2]int{oldIndexOf(j), oldIndexOf(k)}]; ok {
				m.cells[[2]int{j, k}] = e
			}
		}
	}
}

// Kill resets all of h's relationships (but keeps the handle): used when
// h is reassigned or set to NULL. The self entry returns to definite.
func (m *Matrix) Kill(h string) {
	i, ok := m.index[h]
	if !ok {
		return
	}
	for k := range m.cells {
		if k[0] == i || k[1] == i {
			delete(m.cells, k)
		}
	}
	m.cells[[2]int{i, i}] = Entry{Alias: DefiniteAlias}
}

// Get returns the entry from r to s (zero entry if either is untracked).
func (m *Matrix) Get(r, s string) Entry {
	i, ok := m.index[r]
	if !ok {
		return Entry{}
	}
	j, ok := m.index[s]
	if !ok {
		return Entry{}
	}
	return m.cells[[2]int{i, j}]
}

// Set stores the entry from r to s. Both handles must be tracked.
func (m *Matrix) Set(r, s string, e Entry) {
	i, ok := m.index[r]
	if !ok {
		panic(fmt.Sprintf("pathmatrix: Set: unknown handle %q", r))
	}
	j, ok := m.index[s]
	if !ok {
		panic(fmt.Sprintf("pathmatrix: Set: unknown handle %q", s))
	}
	if e.IsZero() && i != j {
		delete(m.cells, [2]int{i, j})
		return
	}
	m.cells[[2]int{i, j}] = e
}

// Update applies fn to the entry from r to s and stores the result.
func (m *Matrix) Update(r, s string, fn func(*Entry)) {
	e := m.Get(r, s).Clone()
	fn(&e)
	m.Set(r, s, e)
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	n := &Matrix{
		handles: append([]string(nil), m.handles...),
		index:   make(map[string]int, len(m.index)),
		cells:   make(map[[2]int]Entry, len(m.cells)),
	}
	for k, v := range m.index {
		n.index[k] = v
	}
	for k, v := range m.cells {
		n.cells[k] = v.Clone()
	}
	return n
}

// Join computes the least upper bound of two matrices over the union of
// their handle sets. A handle present on only one side contributes its
// entries weakened against the zero entry (alias facts weaken to
// PossibleAlias unless both sides agree).
func Join(a, b *Matrix) *Matrix {
	out := New()
	for _, h := range a.handles {
		out.AddHandle(h)
	}
	for _, h := range b.handles {
		out.AddHandle(h)
	}
	for _, r := range out.handles {
		for _, s := range out.handles {
			var e Entry
			inA := a.HasHandle(r) && a.HasHandle(s)
			inB := b.HasHandle(r) && b.HasHandle(s)
			switch {
			case inA && inB:
				e = JoinEntry(a.Get(r, s), b.Get(r, s))
			case inA:
				e = a.Get(r, s).Clone()
			case inB:
				e = b.Get(r, s).Clone()
			}
			out.Set(r, s, e)
		}
	}
	return out
}

// Equal reports whether the two matrices have identical handle sets and
// entries (fixed-point test).
func Equal(a, b *Matrix) bool {
	if len(a.handles) != len(b.handles) {
		return false
	}
	for _, h := range a.handles {
		if !b.HasHandle(h) {
			return false
		}
	}
	for _, r := range a.handles {
		for _, s := range a.handles {
			if !EqualEntry(a.Get(r, s), b.Get(r, s)) {
				return false
			}
		}
	}
	return true
}

// CopyRelationships makes dst's relationships identical to src's
// (including the mutual definite alias), as required by "dst = src".
// dst's previous relationships must already be killed.
func (m *Matrix) CopyRelationships(dst, src string) {
	for _, h := range m.handles {
		if h == dst || h == src {
			continue
		}
		m.Set(dst, h, m.Get(src, h).Clone())
		m.Set(h, dst, m.Get(h, src).Clone())
	}
	m.Set(dst, src, Entry{Alias: DefiniteAlias})
	m.Set(src, dst, Entry{Alias: DefiniteAlias})
	m.Set(dst, dst, Entry{Alias: DefiniteAlias})
}

// Aliases enumerates handles h with a definite or possible alias to r
// (excluding r itself).
func (m *Matrix) Aliases(r string, includePossible bool) []string {
	var out []string
	for _, h := range m.handles {
		if h == r {
			continue
		}
		a := m.Get(r, h).Alias
		if a == DefiniteAlias || (includePossible && a == PossibleAlias) {
			out = append(out, h)
		}
	}
	return out
}

// String renders the matrix as the paper prints them:
//
//	        | head    | p       | p'
//	head    | =       | next+   |
//	p       |         | =       |
//	p'      |         | next    | =
func (m *Matrix) String() string {
	cols := make([]int, len(m.handles)+1)
	for _, h := range m.handles {
		if len(h) > cols[0] {
			cols[0] = len(h)
		}
	}
	grid := make([][]string, len(m.handles))
	for i, r := range m.handles {
		grid[i] = make([]string, len(m.handles))
		for j, s := range m.handles {
			cell := m.Get(r, s).String()
			grid[i][j] = cell
			if len(cell) > cols[j+1] {
				cols[j+1] = len(cell)
			}
			if len(s) > cols[j+1] {
				cols[j+1] = len(s)
			}
		}
	}
	var b strings.Builder
	pad := func(s string, w int) string {
		return s + strings.Repeat(" ", w-len(s))
	}
	b.WriteString(pad("", cols[0]))
	for j, s := range m.handles {
		b.WriteString(" | ")
		b.WriteString(pad(s, cols[j+1]))
	}
	b.WriteString("\n")
	for i, r := range m.handles {
		b.WriteString(pad(r, cols[0]))
		for j := range m.handles {
			b.WriteString(" | ")
			b.WriteString(pad(grid[i][j], cols[j+1]))
		}
		b.WriteString("\n")
	}
	return b.String()
}
