// Package sequent models the paper's evaluation platform — a Sequent
// shared-memory multiprocessor — on top of the PSL interpreter's
// simulated mode. It exists to regenerate the paper's §4.4 TIMES and
// SPEEDUP tables deterministically.
//
// The model captures exactly the effects the paper cites for its
// sublinear speedups: (1) simple static scheduling of iterations onto
// PEs, (3) slow synchronization (a large barrier cost per parallel
// region), and (4) no granularity tuning — plus the serial pointer
// advance (FOR1) and the per-PE skip-ahead (FOR2) that the strip-mining
// transformation introduces.
//
// Absolute seconds depend on a clock-rate calibration (the substitution
// documented in DESIGN.md); the shape of the tables — who wins, by what
// factor, how the factor grows with N and PEs — is what reproduces.
package sequent

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/nbody"
	"repro/internal/tablefmt"
	"repro/internal/transform"
)

// DefaultClockHz approximates a Sequent Symmetry node (16 MHz 80386).
const DefaultClockHz = 16e6

// Machine is a simulated Sequent configuration.
type Machine struct {
	PEs     int
	ClockHz float64
	Costs   interp.CostModel
	Sched   interp.Scheduling
	Seed    uint64
}

// NewMachine returns a machine with default costs and clock.
func NewMachine(pes int) Machine {
	return Machine{PEs: pes, ClockHz: DefaultClockHz, Costs: interp.DefaultCosts(), Seed: 7}
}

// RunResult is one simulated execution.
type RunResult struct {
	Cycles  int64
	Seconds float64
	Stats   interp.Stats
}

// Run executes fn on the machine and converts cycles to seconds.
func (m Machine) Run(prog *lang.Program, fn string, args ...interp.Value) (RunResult, error) {
	ip := interp.New(prog, interp.Config{
		Mode:  interp.Simulated,
		PEs:   m.PEs,
		Sched: m.Sched,
		Costs: m.Costs,
		Seed:  m.Seed,
	})
	if _, err := ip.Call(fn, args...); err != nil {
		return RunResult{}, err
	}
	st := ip.Stats()
	return RunResult{Cycles: st.Cycles, Seconds: float64(st.Cycles) / m.ClockHz, Stats: st}, nil
}

// ---------------------------------------------------------------------------
// The §4.4 table harness

// TableConfig parameterizes the Barnes-Hut experiment.
type TableConfig struct {
	// Ns are the particle counts (paper: 128, 512, 1024).
	Ns []int
	// Steps is the number of reported time steps (paper: 80).
	Steps int
	// MeasureSteps is how many steps are actually simulated; the
	// per-step cost is constant, so times scale linearly to Steps.
	// 0 means simulate all Steps.
	MeasureSteps int
	// PEs lists the parallel configurations (paper: 4 and 7).
	PEs []int
	// Theta is the well-separated threshold; Dt the integration step.
	Theta, Dt float64
	// Sched chooses the static schedule (paper: simple static = Cyclic).
	Sched interp.Scheduling
	// Costs overrides the machine cost model (zero = defaults).
	Costs interp.CostModel
	Seed  uint64
	// CalibrateSeconds, if nonzero, scales the clock so that the
	// sequential N = Ns[0] run takes exactly this many seconds
	// (the paper's 188 s for N=128) — making absolute numbers
	// comparable while leaving every ratio untouched.
	CalibrateSeconds float64
}

// DefaultTableConfig reproduces the paper's parameters with a reduced
// measurement window (1 measured step, scaled to 80).
func DefaultTableConfig() TableConfig {
	return TableConfig{
		Ns:               []int{128, 512, 1024},
		Steps:            80,
		MeasureSteps:     1,
		PEs:              []int{4, 7},
		Theta:            0.5,
		Dt:               0.01,
		Seed:             7,
		CalibrateSeconds: 188,
	}
}

// TableRow is one N's measurements.
type TableRow struct {
	N       int
	Seq     float64
	Par     map[int]float64 // PEs -> seconds
	Speedup map[int]float64 // PEs -> seq/par
}

// Table is the full experiment result.
type Table struct {
	Config TableConfig
	Rows   []TableRow
}

// BarnesHutTable runs the paper's §4.4 experiment: the PSL Barnes-Hut
// program, sequential and strip-mined for each PE count, over each N.
func BarnesHutTable(cfg TableConfig) (*Table, error) {
	prog, err := lang.Parse(nbody.BarnesHutPSL)
	if err != nil {
		return nil, err
	}
	measure := cfg.MeasureSteps
	if measure <= 0 {
		measure = cfg.Steps
	}
	scale := float64(cfg.Steps) / float64(measure)
	costs := cfg.Costs
	if costs == (interp.CostModel{}) {
		costs = interp.DefaultCosts()
	}

	// Transform once per PE configuration: BHL1 then BHL2.
	parallel := make(map[int]*lang.Program, len(cfg.PEs))
	for _, pes := range cfg.PEs {
		r1, err := transform.StripMine(prog, nbody.TimestepFunc, nbody.BHL1, pes)
		if err != nil {
			return nil, fmt.Errorf("strip-mining BHL1 for %d PEs: %w", pes, err)
		}
		r2, err := transform.StripMine(r1.Program, nbody.TimestepFunc, nbody.BHL2, pes)
		if err != nil {
			return nil, fmt.Errorf("strip-mining BHL2 for %d PEs: %w", pes, err)
		}
		parallel[pes] = r2.Program
	}

	clock := DefaultClockHz
	table := &Table{Config: cfg}
	for _, n := range cfg.Ns {
		args := []interp.Value{
			interp.IntVal(int64(n)), interp.IntVal(int64(measure)),
			interp.RealVal(cfg.Theta), interp.RealVal(cfg.Dt),
		}
		seqM := Machine{PEs: 1, ClockHz: clock, Costs: costs, Sched: cfg.Sched, Seed: cfg.Seed}
		seq, err := seqM.Run(prog, "simulate", args...)
		if err != nil {
			return nil, fmt.Errorf("sequential N=%d: %w", n, err)
		}
		if cfg.CalibrateSeconds > 0 && n == cfg.Ns[0] {
			// Choose the clock so the first sequential run matches the
			// paper's absolute seconds; ratios are unaffected.
			clock = float64(seq.Cycles) * scale / cfg.CalibrateSeconds
			seqM.ClockHz = clock
			seq.Seconds = float64(seq.Cycles) / clock
		}
		seq.Seconds = float64(seq.Cycles) / clock
		row := TableRow{N: n, Seq: seq.Seconds * scale,
			Par: map[int]float64{}, Speedup: map[int]float64{}}
		for _, pes := range cfg.PEs {
			m := Machine{PEs: pes, ClockHz: clock, Costs: costs, Sched: cfg.Sched, Seed: cfg.Seed}
			res, err := m.Run(parallel[pes], "simulate", args...)
			if err != nil {
				return nil, fmt.Errorf("parallel(%d) N=%d: %w", pes, n, err)
			}
			row.Par[pes] = res.Seconds * scale
			row.Speedup[pes] = row.Seq / row.Par[pes]
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// FormatTimes renders the paper's TIMES table.
func (t *Table) FormatTimes() string {
	g := tablefmt.New("TIMES", t.ns()...)
	g.AddRow("seq", t.cells(func(r TableRow) float64 { return r.Seq })...)
	for _, pes := range t.Config.PEs {
		pes := pes
		g.AddRow(fmt.Sprintf("par(%d)", pes),
			t.cells(func(r TableRow) float64 { return r.Par[pes] })...)
	}
	return g.Format(0)
}

// FormatSpeedups renders the paper's SPEEDUP table.
func (t *Table) FormatSpeedups() string {
	g := tablefmt.New("SPEEDUP", t.ns()...)
	g.AddRow("seq", t.cells(func(TableRow) float64 { return 1.0 })...)
	for _, pes := range t.Config.PEs {
		pes := pes
		g.AddRow(fmt.Sprintf("par(%d)", pes),
			t.cells(func(r TableRow) float64 { return r.Speedup[pes] })...)
	}
	return g.Format(1)
}

func (t *Table) ns() []int {
	out := make([]int, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r.N
	}
	return out
}

func (t *Table) cells(get func(TableRow) float64) []float64 {
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = get(r)
	}
	return out
}
