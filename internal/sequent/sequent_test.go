package sequent

import (
	"strings"
	"testing"

	"repro/internal/interp"
)

// smallConfig keeps unit tests fast: small N, one measured step.
func smallConfig() TableConfig {
	cfg := DefaultTableConfig()
	cfg.Ns = []int{32, 64}
	cfg.PEs = []int{4, 7}
	cfg.MeasureSteps = 1
	cfg.Steps = 80
	cfg.CalibrateSeconds = 188
	return cfg
}

func TestBarnesHutTableShape(t *testing.T) {
	table, err := BarnesHutTable(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Calibration anchors the first sequential time.
	if got := table.Rows[0].Seq; got < 187 || got > 189 {
		t.Errorf("calibrated seq seconds = %g, want ≈188", got)
	}
	for _, r := range table.Rows {
		s4, s7 := r.Speedup[4], r.Speedup[7]
		if s4 <= 1 || s7 <= 1 {
			t.Errorf("N=%d: speedups must exceed 1: %g, %g", r.N, s4, s7)
		}
		if s7 <= s4 {
			t.Errorf("N=%d: par(7) %g must beat par(4) %g", r.N, s7, s4)
		}
		if s4 >= 4 || s7 >= 7 {
			t.Errorf("N=%d: speedups must be sublinear: %g, %g", r.N, s4, s7)
		}
		if r.Par[4] >= r.Seq || r.Par[7] >= r.Par[4] {
			t.Errorf("N=%d: times must order seq > par4 > par7: %g, %g, %g",
				r.N, r.Seq, r.Par[4], r.Par[7])
		}
	}
	// The paper's trend: speedup grows with N (relative sync overhead
	// shrinks).
	if table.Rows[1].Speedup[4] <= table.Rows[0].Speedup[4] {
		t.Errorf("par(4) speedup should grow with N: %g then %g",
			table.Rows[0].Speedup[4], table.Rows[1].Speedup[4])
	}
}

func TestTableFormatting(t *testing.T) {
	table, err := BarnesHutTable(TableConfig{
		Ns: []int{16}, Steps: 80, MeasureSteps: 1, PEs: []int{4},
		Theta: 0.5, Dt: 0.01, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	times := table.FormatTimes()
	for _, want := range []string{"TIMES", "N = 16", "seq", "par(4)"} {
		if !strings.Contains(times, want) {
			t.Errorf("times table missing %q:\n%s", want, times)
		}
	}
	speeds := table.FormatSpeedups()
	if !strings.Contains(speeds, "SPEEDUP") || !strings.Contains(speeds, "1.0") {
		t.Errorf("speedup table malformed:\n%s", speeds)
	}
}

func TestMachineRun(t *testing.T) {
	m := NewMachine(2)
	if m.ClockHz != DefaultClockHz || m.PEs != 2 {
		t.Errorf("machine = %+v", m)
	}
	// Seconds must equal cycles/clock.
	cfg := TableConfig{Ns: []int{8}, Steps: 1, MeasureSteps: 1, PEs: []int{2},
		Theta: 0.5, Dt: 0.01, Seed: 7}
	table, err := BarnesHutTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if table.Rows[0].Seq <= 0 {
		t.Error("sequential seconds must be positive")
	}
}

func TestSchedulingAblation(t *testing.T) {
	// Block vs cyclic scheduling both work; with BH's irregular
	// per-particle costs the elapsed times generally differ.
	base := smallConfig()
	base.Ns = []int{48}
	base.CalibrateSeconds = 0

	cyc, err := BarnesHutTable(base)
	if err != nil {
		t.Fatal(err)
	}
	blk := base
	blk.Sched = interp.Block
	blkT, err := BarnesHutTable(blk)
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Rows[0].Par[4] <= 0 || blkT.Rows[0].Par[4] <= 0 {
		t.Error("both schedules must produce positive times")
	}
}
