package lang

import (
	"strings"
	"testing"
)

// fuzzSeeds are small but representative PSL programs: every statement
// form, ADDS annotation shape, literal kind, and operator the grammar
// has, so the fuzzer starts from meaningful corners of the language.
var fuzzSeeds = []string{
	"",
	"function int f() { return 1; }",
	`type OneWayList [X]
{ int coef, exp;
  real val;
  OneWayList *next is uniquely forward along X;
};
function OneWayList * poly(int n) {
  var OneWayList *head = NULL;
  var int i = 0;
  while i < n {
    var OneWayList *t = new OneWayList;
    t->coef = i + 1;
    t->next = head;
    head = t;
    i = i + 1;
  }
  return head;
}`,
	`type Orth [X][Y] where X||Y
{ real v;
  Orth *across is uniquely forward along X;
  Orth *down   is uniquely forward along Y;
  Orth *back   is backward along X;
};
procedure p(Orth *o) {
  if o != NULL && o->v >= 0.5 { o->v = -o->v / 2.0; } else { o->v = abs(o->v); }
}`,
	`type T { T *kids[8]; int n; };
function real g(T *t, int k) {
  var real s = 1.5e-3;
  for i = 0 to 7 { s = s + t->kids[i]->n; }
  forall i = 0 to 7 { print("k", i, s, true, NULL); }
  while !(s > 100.0) { s = s * 2.0 + sqrt(s) + rand(); }
  return s;
}`,
	"procedure q() { print(\"a\\nb\\t\\\"c\\\\\"); }",
	"function int mod(int a, int b) { return a % b == 0 && 3 <> 4; }",
}

// FuzzLexer: the lexer never panics and either yields lexemes ending
// in EOF or reports an error.
func FuzzLexer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		lexemes, err := LexAll(src)
		if err != nil {
			return
		}
		if len(lexemes) == 0 || lexemes[len(lexemes)-1].Tok != EOF {
			t.Fatalf("LexAll succeeded without trailing EOF: %v", lexemes)
		}
	})
}

// FuzzParser: parsing never panics, and whatever parses (checked and
// normalized) round-trips through the printer — print → parse → print
// reaches a fixed point on the first print. This is the property that
// keeps Format output usable as input (the transformed programs the
// harness prints are real PSL).
func FuzzParser(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Parse(src)
		if err != nil {
			return
		}
		s1 := Format(p1)
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("printed program no longer parses: %v\n--- printed ---\n%s", err, s1)
		}
		s2 := Format(p2)
		if s1 != s2 {
			t.Fatalf("print→parse→print not stable:\n--- first ---\n%s\n--- second ---\n%s", s1, s2)
		}
	})
}

// TestQuotePSL pins the printer's escape set to what the lexer accepts.
func TestQuotePSL(t *testing.T) {
	for _, raw := range []string{
		"", "plain", "a\nb", "tab\there", `quote"inside`, `back\slash`,
		"raw\x01bytes\x7f", "mixed \\ \" \n \t end",
	} {
		quoted := quotePSL(raw)
		lexemes, err := LexAll(quoted)
		if err != nil {
			t.Fatalf("%q: quoted form %s does not lex: %v", raw, quoted, err)
		}
		if len(lexemes) != 2 || lexemes[0].Tok != STRING || lexemes[0].Text != raw {
			t.Fatalf("%q: round-trip through %s gave %v", raw, quoted, lexemes)
		}
	}
	if !strings.Contains(quotePSL("a\nb"), `\n`) {
		t.Error("newline must print escaped")
	}
}
