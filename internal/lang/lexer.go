package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexeme is one scanned token with its source text and position.
type Lexeme struct {
	Tok  Token
	Text string
	Pos  Pos
}

func (l Lexeme) String() string {
	if l.Tok == IDENT || l.Tok == INT || l.Tok == REAL || l.Tok == STRING {
		return fmt.Sprintf("%s(%q)", l.Tok, l.Text)
	}
	return l.Tok.String()
}

// Lexer scans PSL source text into lexemes. Comments run from "//" to end
// of line and from "/*" to "*/".
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekByte2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByte2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			open := Pos{l.line, l.col}
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return fmt.Errorf("%s: unterminated block comment", open)
			}
		default:
			return nil
		}
	}
	return nil
}

// Next scans and returns the next lexeme. At end of input it returns an
// EOF lexeme (repeatedly, if called again).
func (l *Lexer) Next() (Lexeme, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Lexeme{Tok: ILLEGAL}, err
	}
	pos := Pos{l.line, l.col}
	if l.pos >= len(l.src) {
		return Lexeme{Tok: EOF, Pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if kw, ok := keywordMap[text]; ok {
			return Lexeme{Tok: kw, Text: text, Pos: pos}, nil
		}
		return Lexeme{Tok: IDENT, Text: text, Pos: pos}, nil

	case c >= '0' && c <= '9':
		start := l.pos
		isReal := false
		for l.pos < len(l.src) {
			c := l.peekByte()
			if c >= '0' && c <= '9' {
				l.advance()
				continue
			}
			if c == '.' && !isReal && l.peekByte2() >= '0' && l.peekByte2() <= '9' {
				isReal = true
				l.advance()
				continue
			}
			if (c == 'e' || c == 'E') && l.pos > start {
				// Exponent part: e[+-]?digits
				save, saveLine, saveCol := l.pos, l.line, l.col
				l.advance()
				if l.peekByte() == '+' || l.peekByte() == '-' {
					l.advance()
				}
				if d := l.peekByte(); d >= '0' && d <= '9' {
					isReal = true
					for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
						l.advance()
					}
					continue
				}
				l.pos, l.line, l.col = save, saveLine, saveCol
			}
			break
		}
		tok := INT
		if isReal {
			tok = REAL
		}
		return Lexeme{Tok: tok, Text: l.src[start:l.pos], Pos: pos}, nil

	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Lexeme{Tok: ILLEGAL}, fmt.Errorf("%s: unterminated string literal", pos)
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' {
				if l.pos >= len(l.src) {
					return Lexeme{Tok: ILLEGAL}, fmt.Errorf("%s: unterminated string escape", pos)
				}
				e := l.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					return Lexeme{Tok: ILLEGAL}, fmt.Errorf("%s: unknown string escape \\%c", pos, e)
				}
				continue
			}
			sb.WriteByte(c)
		}
		return Lexeme{Tok: STRING, Text: sb.String(), Pos: pos}, nil
	}

	// Operators and punctuation.
	two := func(tok Token, text string) (Lexeme, error) {
		l.advance()
		l.advance()
		return Lexeme{Tok: tok, Text: text, Pos: pos}, nil
	}
	one := func(tok Token) (Lexeme, error) {
		l.advance()
		return Lexeme{Tok: tok, Text: string(c), Pos: pos}, nil
	}
	switch c {
	case '(':
		return one(LPAREN)
	case ')':
		return one(RPAREN)
	case '{':
		return one(LBRACE)
	case '}':
		return one(RBRACE)
	case '[':
		return one(LBRACK)
	case ']':
		return one(RBRACK)
	case ';':
		return one(SEMI)
	case ',':
		return one(COMMA)
	case '+':
		return one(PLUS)
	case '*':
		return one(STAR)
	case '/':
		return one(SLASH)
	case '%':
		return one(PERCENT)
	case '-':
		if l.peekByte2() == '>' {
			return two(ARROW, "->")
		}
		return one(MINUS)
	case '=':
		if l.peekByte2() == '=' {
			return two(EQ, "==")
		}
		return one(ASSIGN)
	case '!':
		if l.peekByte2() == '=' {
			return two(NEQ, "!=")
		}
		return one(NOT)
	case '<':
		if l.peekByte2() == '=' {
			return two(LE, "<=")
		}
		if l.peekByte2() == '>' {
			// The paper writes "p <> NULL"; accept it as !=.
			return two(NEQ, "<>")
		}
		return one(LT)
	case '>':
		if l.peekByte2() == '=' {
			return two(GE, ">=")
		}
		return one(GT)
	case '&':
		if l.peekByte2() == '&' {
			return two(AND, "&&")
		}
	case '|':
		if l.peekByte2() == '|' {
			return two(OR, "||")
		}
	}
	return Lexeme{Tok: ILLEGAL}, fmt.Errorf("%s: unexpected character %q", pos, c)
}

// LexAll scans the entire input, returning all lexemes up to and including
// the EOF lexeme.
func LexAll(src string) ([]Lexeme, error) {
	lx := NewLexer(src)
	var out []Lexeme
	for {
		lex, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, lex)
		if lex.Tok == EOF {
			return out, nil
		}
	}
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
