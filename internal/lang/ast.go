package lang

import (
	"fmt"

	"repro/internal/adds"
)

// ---------------------------------------------------------------------------
// Types

// Type is the type of a PSL expression: a scalar or a pointer to an
// ADDS-declared record type.
type Type interface {
	typeNode()
	String() string
}

// ScalarKind enumerates PSL's scalar types.
type ScalarKind int

// Scalar kinds.
const (
	KindInt ScalarKind = iota
	KindReal
	KindBool
	KindString
)

// Scalar is a scalar type.
type Scalar struct{ Kind ScalarKind }

func (*Scalar) typeNode() {}

func (s *Scalar) String() string {
	switch s.Kind {
	case KindInt:
		return "int"
	case KindReal:
		return "real"
	case KindBool:
		return "bool"
	default:
		return "string"
	}
}

// Singleton scalar types. Compare types with TypeEq, not ==, although the
// checker always uses these singletons.
var (
	Int    = &Scalar{KindInt}
	Real   = &Scalar{KindReal}
	Bool   = &Scalar{KindBool}
	String = &Scalar{KindString}
)

// Pointer is a pointer-to-record type. Elem names an ADDS declaration.
type Pointer struct{ Elem string }

func (*Pointer) typeNode() {}

func (p *Pointer) String() string { return p.Elem + "*" }

// PointerTo returns the pointer type for the named record.
func PointerTo(elem string) *Pointer { return &Pointer{Elem: elem} }

// TypeEq reports whether two types are identical.
func TypeEq(a, b Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	switch a := a.(type) {
	case *Scalar:
		b, ok := b.(*Scalar)
		return ok && a.Kind == b.Kind
	case *Pointer:
		b, ok := b.(*Pointer)
		return ok && a.Elem == b.Elem
	}
	return false
}

// IsPointer reports whether t is a pointer type, returning the record name.
func IsPointer(t Type) (string, bool) {
	p, ok := t.(*Pointer)
	if !ok {
		return "", false
	}
	return p.Elem, true
}

// ---------------------------------------------------------------------------
// AST nodes

// Node is any AST node.
type Node interface {
	Pos() Pos
}

// Expr is an expression node. Type() is valid after type checking.
type Expr interface {
	Node
	exprNode()
	Type() Type
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

type exprBase struct {
	pos Pos
	typ Type
}

func (e *exprBase) Pos() Pos   { return e.pos }
func (e *exprBase) Type() Type { return e.typ }

// SetType records the checked type of the expression. Exposed so that
// passes building synthetic AST (the normalizer and transformations) can
// keep the tree typed.
func (e *exprBase) SetType(t Type) { e.typ = t }

// Ident is a variable reference.
type Ident struct {
	exprBase
	Name string
}

func (*Ident) exprNode() {}

// NewIdent constructs a typed identifier at a position.
func NewIdent(name string, t Type, pos Pos) *Ident {
	id := &Ident{Name: name}
	id.pos = pos
	id.typ = t
	return id
}

// FieldExpr is a pointer field access X->Field, optionally indexed
// (X->Field[Index]) for pointer-array fields such as subtrees[i].
// After normalization X is always an *Ident.
type FieldExpr struct {
	exprBase
	X     Expr
	Field string
	Index Expr // nil unless the field is a pointer array
}

func (*FieldExpr) exprNode() {}

// Base returns the base identifier of a normalized field access, or nil
// if the access is not normalized.
func (f *FieldExpr) Base() *Ident {
	id, _ := f.X.(*Ident)
	return id
}

// CallExpr is a function call.
type CallExpr struct {
	exprBase
	Func string
	Args []Expr
}

func (*CallExpr) exprNode() {}

// NewExpr allocates a record: new T.
type NewExpr struct {
	exprBase
	TypeName string
}

func (*NewExpr) exprNode() {}

// NullLit is the NULL literal. Its type is assigned from context by the
// checker.
type NullLit struct{ exprBase }

func (*NullLit) exprNode() {}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

func (*IntLit) exprNode() {}

// NewIntLit constructs a typed integer literal.
func NewIntLit(v int64, pos Pos) *IntLit {
	l := &IntLit{Val: v}
	l.pos = pos
	l.typ = Int
	return l
}

// RealLit is a real literal.
type RealLit struct {
	exprBase
	Val float64
}

func (*RealLit) exprNode() {}

// StrLit is a string literal (only meaningful as a print argument).
type StrLit struct {
	exprBase
	Val string
}

func (*StrLit) exprNode() {}

// BoolLit is true or false.
type BoolLit struct {
	exprBase
	Val bool
}

func (*BoolLit) exprNode() {}

// BinExpr is a binary operation.
type BinExpr struct {
	exprBase
	Op   Token
	X, Y Expr
}

func (*BinExpr) exprNode() {}

// UnExpr is a unary operation (MINUS or NOT).
type UnExpr struct {
	exprBase
	Op Token
	X  Expr
}

func (*UnExpr) exprNode() {}

// ---------------------------------------------------------------------------
// Statements

type stmtBase struct{ pos Pos }

func (s *stmtBase) Pos() Pos { return s.pos }

// SetPos stamps the statement's source position. Transforms use it to
// attribute synthesized statements (e.g. the forall that strip-mining
// generates) to the source loop they came from, so positions in error
// messages and profiles point at code the user wrote.
func (s *stmtBase) SetPos(p Pos) { s.pos = p }

// Block is a brace-delimited statement sequence.
type Block struct {
	stmtBase
	Stmts []Stmt
}

func (*Block) stmtNode() {}

// VarStmt declares a local variable with an optional initializer:
// "var OneWayList *p = head;".
type VarStmt struct {
	stmtBase
	Name     string
	DeclType Type
	Init     Expr // may be nil
}

func (*VarStmt) stmtNode() {}

// AssignStmt assigns RHS to LHS. LHS is an *Ident or a *FieldExpr.
type AssignStmt struct {
	stmtBase
	LHS Expr
	RHS Expr
}

func (*AssignStmt) stmtNode() {}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body *Block
}

func (*WhileStmt) stmtNode() {}

// IfStmt is a conditional with optional else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

func (*IfStmt) stmtNode() {}

// ReturnStmt returns from a function; Value is nil in procedures.
type ReturnStmt struct {
	stmtBase
	Value Expr
}

func (*ReturnStmt) stmtNode() {}

// CallStmt is a call evaluated for effect.
type CallStmt struct {
	stmtBase
	Call *CallExpr
}

func (*CallStmt) stmtNode() {}

// ForStmt is a counted loop "for i = a to b { ... }" inclusive of both
// bounds. Parallel marks a forall loop, whose iterations execute
// concurrently (the transformation target of §4.3.3).
type ForStmt struct {
	stmtBase
	Var      string
	From, To Expr
	Body     *Block
	Parallel bool
}

func (*ForStmt) stmtNode() {}

// ---------------------------------------------------------------------------
// Declarations

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDecl is a function or procedure definition.
type FuncDecl struct {
	pos    Pos
	Name   string
	Params []Param
	Result Type // nil for procedures
	Body   *Block
}

// Pos returns the declaration's source position.
func (f *FuncDecl) Pos() Pos { return f.pos }

// IsProcedure reports whether f returns nothing.
func (f *FuncDecl) IsProcedure() bool { return f.Result == nil }

// Program is a parsed, checked PSL program: the ADDS universe of its type
// declarations plus its functions.
type Program struct {
	Universe *adds.Universe
	Funcs    []*FuncDecl
	funcMap  map[string]*FuncDecl
}

// Func returns the named function, or nil.
func (p *Program) Func(name string) *FuncDecl {
	return p.funcMap[name]
}

// AddFunc installs a function (used by transformations that synthesize
// helper procedures). It returns an error on duplicates.
func (p *Program) AddFunc(f *FuncDecl) error {
	if _, dup := p.funcMap[f.Name]; dup {
		return fmt.Errorf("lang: function %q already defined", f.Name)
	}
	p.Funcs = append(p.Funcs, f)
	p.funcMap[f.Name] = f
	return nil
}

// Clone returns a deep copy of the program. Transformations clone before
// rewriting so the original stays available for comparison runs.
func (p *Program) Clone() *Program {
	q := &Program{Universe: p.Universe, funcMap: make(map[string]*FuncDecl)}
	for _, f := range p.Funcs {
		cf := cloneFunc(f)
		q.Funcs = append(q.Funcs, cf)
		q.funcMap[cf.Name] = cf
	}
	return q
}

func cloneFunc(f *FuncDecl) *FuncDecl {
	nf := &FuncDecl{pos: f.pos, Name: f.Name, Result: f.Result}
	nf.Params = append([]Param(nil), f.Params...)
	nf.Body = CloneBlock(f.Body)
	return nf
}

// CloneBlock deep-copies a block.
func CloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	nb := &Block{}
	nb.pos = b.pos
	for _, s := range b.Stmts {
		nb.Stmts = append(nb.Stmts, CloneStmt(s))
	}
	return nb
}

// CloneStmt deep-copies a statement.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Block:
		return CloneBlock(s)
	case *VarStmt:
		ns := &VarStmt{Name: s.Name, DeclType: s.DeclType, Init: CloneExpr(s.Init)}
		ns.pos = s.pos
		return ns
	case *AssignStmt:
		ns := &AssignStmt{LHS: CloneExpr(s.LHS), RHS: CloneExpr(s.RHS)}
		ns.pos = s.pos
		return ns
	case *WhileStmt:
		ns := &WhileStmt{Cond: CloneExpr(s.Cond), Body: CloneBlock(s.Body)}
		ns.pos = s.pos
		return ns
	case *IfStmt:
		ns := &IfStmt{Cond: CloneExpr(s.Cond), Then: CloneBlock(s.Then), Else: CloneBlock(s.Else)}
		ns.pos = s.pos
		return ns
	case *ReturnStmt:
		ns := &ReturnStmt{Value: CloneExpr(s.Value)}
		ns.pos = s.pos
		return ns
	case *CallStmt:
		ns := &CallStmt{Call: CloneExpr(s.Call).(*CallExpr)}
		ns.pos = s.pos
		return ns
	case *ForStmt:
		ns := &ForStmt{Var: s.Var, From: CloneExpr(s.From), To: CloneExpr(s.To),
			Body: CloneBlock(s.Body), Parallel: s.Parallel}
		ns.pos = s.pos
		return ns
	}
	panic(fmt.Sprintf("lang: CloneStmt: unknown statement %T", s))
}

// CloneExpr deep-copies an expression, preserving checked types.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *Ident:
		ne := &Ident{Name: e.Name}
		ne.exprBase = e.exprBase
		return ne
	case *FieldExpr:
		ne := &FieldExpr{X: CloneExpr(e.X), Field: e.Field, Index: CloneExpr(e.Index)}
		ne.exprBase = e.exprBase
		return ne
	case *CallExpr:
		ne := &CallExpr{Func: e.Func}
		ne.exprBase = e.exprBase
		for _, a := range e.Args {
			ne.Args = append(ne.Args, CloneExpr(a))
		}
		return ne
	case *NewExpr:
		ne := &NewExpr{TypeName: e.TypeName}
		ne.exprBase = e.exprBase
		return ne
	case *NullLit:
		ne := &NullLit{}
		ne.exprBase = e.exprBase
		return ne
	case *IntLit:
		ne := &IntLit{Val: e.Val}
		ne.exprBase = e.exprBase
		return ne
	case *RealLit:
		ne := &RealLit{Val: e.Val}
		ne.exprBase = e.exprBase
		return ne
	case *StrLit:
		ne := &StrLit{Val: e.Val}
		ne.exprBase = e.exprBase
		return ne
	case *BoolLit:
		ne := &BoolLit{Val: e.Val}
		ne.exprBase = e.exprBase
		return ne
	case *BinExpr:
		ne := &BinExpr{Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y)}
		ne.exprBase = e.exprBase
		return ne
	case *UnExpr:
		ne := &UnExpr{Op: e.Op, X: CloneExpr(e.X)}
		ne.exprBase = e.exprBase
		return ne
	}
	panic(fmt.Sprintf("lang: CloneExpr: unknown expression %T", e))
}

// Walk calls fn for every statement in the block, recursing into nested
// blocks, in source order. If fn returns false the walk stops.
func Walk(b *Block, fn func(Stmt) bool) bool {
	if b == nil {
		return true
	}
	for _, s := range b.Stmts {
		if !fn(s) {
			return false
		}
		switch s := s.(type) {
		case *Block:
			if !Walk(s, fn) {
				return false
			}
		case *WhileStmt:
			if !Walk(s.Body, fn) {
				return false
			}
		case *IfStmt:
			if !Walk(s.Then, fn) || !Walk(s.Else, fn) {
				return false
			}
		case *ForStmt:
			if !Walk(s.Body, fn) {
				return false
			}
		}
	}
	return true
}

// WalkExprs calls fn for every expression appearing in the statement
// (not recursing into nested statements).
func WalkExprs(s Stmt, fn func(Expr)) {
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch e := e.(type) {
		case *FieldExpr:
			walkExpr(e.X)
			walkExpr(e.Index)
		case *CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *BinExpr:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *UnExpr:
			walkExpr(e.X)
		}
	}
	switch s := s.(type) {
	case *VarStmt:
		walkExpr(s.Init)
	case *AssignStmt:
		walkExpr(s.LHS)
		walkExpr(s.RHS)
	case *WhileStmt:
		walkExpr(s.Cond)
	case *IfStmt:
		walkExpr(s.Cond)
	case *ReturnStmt:
		walkExpr(s.Value)
	case *CallStmt:
		walkExpr(s.Call)
	case *ForStmt:
		walkExpr(s.From)
		walkExpr(s.To)
	}
}
