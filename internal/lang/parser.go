package lang

import (
	"fmt"
	"strconv"

	"repro/internal/adds"
)

// Parse lexes, parses, checks, and normalizes a PSL program. The result
// is fully typed and in canonical pointer form (every pointer access is a
// single step from a named variable).
func Parse(src string) (*Program, error) {
	p, err := ParseRaw(src)
	if err != nil {
		return nil, err
	}
	if err := Check(p); err != nil {
		return nil, err
	}
	if err := Normalize(p); err != nil {
		return nil, err
	}
	// Normalization introduces temporaries; re-check to type them and to
	// guarantee the canonical-form invariants hold.
	if err := Check(p); err != nil {
		return nil, fmt.Errorf("lang: internal: post-normalize check failed: %w", err)
	}
	return p, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseRaw parses without checking or normalizing.
func ParseRaw(src string) (*Program, error) {
	lexemes, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{lexemes: lexemes}
	prog := &Program{Universe: adds.NewUniverse(), funcMap: make(map[string]*FuncDecl)}
	for p.peek().Tok != EOF {
		switch p.peek().Tok {
		case TYPE:
			d, err := p.parseTypeDecl()
			if err != nil {
				return nil, err
			}
			if err := prog.Universe.Add(d); err != nil {
				return nil, err
			}
		case FUNCTION, PROCEDURE:
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			if err := prog.AddFunc(f); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected type, function, or procedure, found %s", p.peek())
		}
	}
	if err := prog.Universe.Check(); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	lexemes []Lexeme
	i       int
}

func (p *parser) peek() Lexeme { return p.lexemes[p.i] }
func (p *parser) peek2() Lexeme {
	if p.i+1 < len(p.lexemes) {
		return p.lexemes[p.i+1]
	}
	return p.lexemes[len(p.lexemes)-1]
}

func (p *parser) next() Lexeme {
	lex := p.lexemes[p.i]
	if lex.Tok != EOF {
		p.i++
	}
	return lex
}

func (p *parser) accept(tok Token) bool {
	if p.peek().Tok == tok {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(tok Token) (Lexeme, error) {
	lex := p.peek()
	if lex.Tok != tok {
		return lex, p.errf("expected %s, found %s", tok, lex)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// Type declarations (ADDS)

func (p *parser) parseTypeDecl() (*adds.Decl, error) {
	if _, err := p.expect(TYPE); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &adds.Decl{Name: name.Text}
	for p.peek().Tok == LBRACK {
		p.next()
		dim, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
		d.Dims = append(d.Dims, dim.Text)
	}
	if len(d.Dims) == 0 {
		d.Dims = []string{adds.DefaultDimension}
	}
	if p.accept(WHERE) {
		for {
			a, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(OR); err != nil { // "||"
				return nil, err
			}
			b, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			d.Indep = append(d.Indep, [2]string{a.Text, b.Text})
			if !p.accept(COMMA) {
				break
			}
		}
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	for p.peek().Tok != RBRACE {
		if err := p.parseFieldDecl(d); err != nil {
			return nil, err
		}
	}
	p.next() // }
	p.accept(SEMI)
	return d, nil
}

func (p *parser) parseFieldDecl(d *adds.Decl) error {
	var typeName string
	switch p.peek().Tok {
	case INTKW, REALKW, BOOLKW, IDENT:
		typeName = p.next().Text
	default:
		return p.errf("expected field type, found %s", p.peek())
	}
	isPointer := p.accept(STAR)
	type pending struct {
		name  string
		count int
	}
	var names []pending
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		count := 1
		if p.accept(LBRACK) {
			num, err := p.expect(INT)
			if err != nil {
				return err
			}
			// maxPtrArray bounds pointer-array fields: the paper's
			// structures top out at 8 (the octree); anything huge is a
			// typo or an allocation bomb (every `new` materializes the
			// whole array).
			const maxPtrArray = 1024
			n, convErr := strconv.Atoi(num.Text)
			if convErr != nil || n < 1 || n > maxPtrArray {
				return p.errf("bad array count %q (1..%d)", num.Text, maxPtrArray)
			}
			count = n
			if _, err := p.expect(RBRACK); err != nil {
				return err
			}
		}
		names = append(names, pending{name.Text, count})
		if !p.accept(COMMA) {
			break
		}
		if isPointer {
			if _, err := p.expect(STAR); err != nil {
				return err
			}
		}
	}
	if !isPointer {
		for _, n := range names {
			if n.count != 1 {
				return p.errf("array data fields are not supported: %s.%s", d.Name, n.name)
			}
			d.Data = append(d.Data, adds.DataField{Name: n.name, Type: typeName})
		}
		_, err := p.expect(SEMI)
		return err
	}
	dim, dir, unique := "", adds.Unknown, false
	if p.accept(IS) {
		if p.accept(UNIQUELY) {
			unique = true
		}
		switch p.peek().Tok {
		case FORWARD:
			dir = adds.Forward
		case BACKWARD:
			dir = adds.Backward
		default:
			return p.errf("expected forward or backward, found %s", p.peek())
		}
		p.next()
		if _, err := p.expect(ALONG); err != nil {
			return err
		}
		dimTok, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		dim = dimTok.Text
	}
	if dim == "" {
		dim = adds.DefaultDimension
		if !d.HasDim(dim) {
			d.Dims = append(d.Dims, dim)
		}
	}
	for _, n := range names {
		d.Pointers = append(d.Pointers, adds.PointerField{
			Name: n.name, Type: typeName, Count: n.count,
			Dim: dim, Dir: dir, Unique: unique,
		})
	}
	_, err := p.expect(SEMI)
	return err
}

// ---------------------------------------------------------------------------
// Functions

// parseType parses "int", "real", "bool", or "Name *".
func (p *parser) parseType() (Type, error) {
	switch p.peek().Tok {
	case INTKW:
		p.next()
		return Int, nil
	case REALKW:
		p.next()
		return Real, nil
	case BOOLKW:
		p.next()
		return Bool, nil
	case IDENT:
		name := p.next().Text
		if _, err := p.expect(STAR); err != nil {
			return nil, fmt.Errorf("%v (record types are used only through pointers)", err)
		}
		return PointerTo(name), nil
	}
	return nil, p.errf("expected a type, found %s", p.peek())
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	kw := p.next() // FUNCTION or PROCEDURE
	f := &FuncDecl{pos: kw.Pos}
	if kw.Tok == FUNCTION {
		// function <rettype> <name>(params) { ... }
		rt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		f.Result = rt
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	f.Name = name.Text
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	if p.peek().Tok != RPAREN {
		for {
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, Param{Name: pn.Text, Type: t})
			if !p.accept(COMMA) {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseBlock() (*Block, error) {
	open, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &Block{}
	b.pos = open.Pos
	for p.peek().Tok != RBRACE {
		if p.peek().Tok == EOF {
			return nil, p.errf("unterminated block opened at %s", open.Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch p.peek().Tok {
	case VAR:
		return p.parseVarStmt()
	case WHILE:
		kw := p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		s := &WhileStmt{Cond: cond, Body: body}
		s.pos = kw.Pos
		return s, nil
	case IF:
		kw := p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Cond: cond, Then: then}
		s.pos = kw.Pos
		if p.accept(ELSE) {
			if p.peek().Tok == IF {
				// else if: wrap the nested if in a block.
				nested, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				eb := &Block{}
				eb.pos = nested.Pos()
				eb.Stmts = []Stmt{nested}
				s.Else = eb
			} else {
				els, err := p.parseBlock()
				if err != nil {
					return nil, err
				}
				s.Else = els
			}
		}
		return s, nil
	case RETURN:
		kw := p.next()
		s := &ReturnStmt{}
		s.pos = kw.Pos
		if p.peek().Tok != SEMI {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Value = v
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return s, nil
	case FOR, FORALL:
		kw := p.next()
		v, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		from, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TO); err != nil {
			return nil, err
		}
		to, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		s := &ForStmt{Var: v.Text, From: from, To: to, Body: body, Parallel: kw.Tok == FORALL}
		s.pos = kw.Pos
		return s, nil
	case LBRACE:
		return p.parseBlock()
	default:
		// Assignment or call statement: parse a postfix expression first.
		lhs, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		if p.peek().Tok == ASSIGN {
			eq := p.next()
			switch lhs.(type) {
			case *Ident, *FieldExpr:
			default:
				return nil, fmt.Errorf("%s: cannot assign to this expression", eq.Pos)
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
			s := &AssignStmt{LHS: lhs, RHS: rhs}
			s.pos = lhs.Pos()
			return s, nil
		}
		call, ok := lhs.(*CallExpr)
		if !ok {
			return nil, p.errf("expected assignment or call statement")
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		s := &CallStmt{Call: call}
		s.pos = call.Pos()
		return s, nil
	}
}

func (p *parser) parseVarStmt() (Stmt, error) {
	kw := p.next() // var
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	s := &VarStmt{Name: name.Text, DeclType: t}
	s.pos = kw.Pos
	if p.accept(ASSIGN) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Expressions

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().Tok == OR {
		op := p.next()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		b := &BinExpr{Op: OR, X: x, Y: y}
		b.pos = op.Pos
		x = b
	}
	return x, nil
}

func (p *parser) parseAnd() (Expr, error) {
	x, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.peek().Tok == AND {
		op := p.next()
		y, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		b := &BinExpr{Op: AND, X: x, Y: y}
		b.pos = op.Pos
		x = b
	}
	return x, nil
}

func (p *parser) parseEquality() (Expr, error) {
	x, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for p.peek().Tok == EQ || p.peek().Tok == NEQ {
		op := p.next()
		y, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		b := &BinExpr{Op: op.Tok, X: x, Y: y}
		b.pos = op.Pos
		x = b
	}
	return x, nil
}

func (p *parser) parseRelational() (Expr, error) {
	x, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.peek().Tok
		if tok != LT && tok != LE && tok != GT && tok != GE {
			return x, nil
		}
		op := p.next()
		y, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		b := &BinExpr{Op: op.Tok, X: x, Y: y}
		b.pos = op.Pos
		x = b
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	x, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.peek().Tok == PLUS || p.peek().Tok == MINUS {
		op := p.next()
		y, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		b := &BinExpr{Op: op.Tok, X: x, Y: y}
		b.pos = op.Pos
		x = b
	}
	return x, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().Tok == STAR || p.peek().Tok == SLASH || p.peek().Tok == PERCENT {
		op := p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		b := &BinExpr{Op: op.Tok, X: x, Y: y}
		b.pos = op.Pos
		x = b
	}
	return x, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek().Tok {
	case MINUS, NOT:
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		u := &UnExpr{Op: op.Tok, X: x}
		u.pos = op.Pos
		return u, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().Tok == ARROW {
		arrow := p.next()
		field, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		fe := &FieldExpr{X: x, Field: field.Text}
		fe.pos = arrow.Pos
		if p.accept(LBRACK) {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			fe.Index = idx
		}
		x = fe
	}
	return x, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	lex := p.peek()
	switch lex.Tok {
	case IDENT:
		p.next()
		if p.peek().Tok == LPAREN {
			p.next()
			call := &CallExpr{Func: lex.Text}
			call.pos = lex.Pos
			if p.peek().Tok != RPAREN {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(COMMA) {
						break
					}
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return call, nil
		}
		id := &Ident{Name: lex.Text}
		id.pos = lex.Pos
		return id, nil
	case INT:
		p.next()
		v, err := strconv.ParseInt(lex.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad integer literal %q", lex.Pos, lex.Text)
		}
		e := &IntLit{Val: v}
		e.pos = lex.Pos
		return e, nil
	case REAL:
		p.next()
		v, err := strconv.ParseFloat(lex.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad real literal %q", lex.Pos, lex.Text)
		}
		e := &RealLit{Val: v}
		e.pos = lex.Pos
		return e, nil
	case STRING:
		p.next()
		e := &StrLit{Val: lex.Text}
		e.pos = lex.Pos
		return e, nil
	case TRUE, FALSE:
		p.next()
		e := &BoolLit{Val: lex.Tok == TRUE}
		e.pos = lex.Pos
		return e, nil
	case NULLKW:
		p.next()
		e := &NullLit{}
		e.pos = lex.Pos
		return e, nil
	case NEW:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		e := &NewExpr{TypeName: name.Text}
		e.pos = lex.Pos
		return e, nil
	case LPAREN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected an expression, found %s", lex)
}
