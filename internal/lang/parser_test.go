package lang

import (
	"strings"
	"testing"

	"repro/internal/adds"
)

// polySrc is the paper's §3.3.2 polynomial-scaling loop, in PSL.
const polySrc = `
type OneWayList [X]
{ int coef, exp;
  OneWayList *next is uniquely forward along X;
};

procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->coef = p->coef * c;
    p = p->next;
  }
}
`

func TestParsePolyLoop(t *testing.T) {
	p, err := Parse(polySrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Universe.Decl("OneWayList") == nil {
		t.Fatal("missing type declaration")
	}
	f := p.Func("scale")
	if f == nil {
		t.Fatal("missing function scale")
	}
	if !f.IsProcedure() {
		t.Error("scale is a procedure")
	}
	if len(f.Params) != 2 {
		t.Fatalf("params = %+v", f.Params)
	}
	if elem, ok := IsPointer(f.Params[0].Type); !ok || elem != "OneWayList" {
		t.Errorf("param 0 type = %v", f.Params[0].Type)
	}
	if !TypeEq(f.Params[1].Type, Int) {
		t.Errorf("param 1 type = %v", f.Params[1].Type)
	}
	// Body: var, while.
	if len(f.Body.Stmts) != 2 {
		t.Fatalf("body = %v", f.Body.Stmts)
	}
	w, ok := f.Body.Stmts[1].(*WhileStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T", f.Body.Stmts[1])
	}
	if len(w.Body.Stmts) != 2 {
		t.Fatalf("loop body has %d stmts", len(w.Body.Stmts))
	}
}

func TestParseFunctionWithResult(t *testing.T) {
	src := `
type T [X] { int v; T *next is uniquely forward along X; };
function T * last(T *p) {
  while p->next != NULL {
    p = p->next;
  }
  return p;
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("last")
	if f == nil || f.IsProcedure() {
		t.Fatal("last should be a function")
	}
	if elem, ok := IsPointer(f.Result); !ok || elem != "T" {
		t.Errorf("result type = %v", f.Result)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
procedure f(int n) {
  var int s = 0;
  for i = 1 to n {
    s = s + i;
  }
  forall j = 0 to 3 {
    print(j);
  }
  if s > 10 {
    print("big");
  } else if s > 5 {
    print("mid");
  } else {
    print("small");
  }
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Func("f").Body.Stmts
	if len(body) != 4 {
		t.Fatalf("body has %d stmts", len(body))
	}
	if fs := body[1].(*ForStmt); fs.Parallel {
		t.Error("for must not be parallel")
	}
	if fs := body[2].(*ForStmt); !fs.Parallel {
		t.Error("forall must be parallel")
	}
	ifs := body[3].(*IfStmt)
	if ifs.Else == nil {
		t.Fatal("missing else")
	}
	if _, ok := ifs.Else.Stmts[0].(*IfStmt); !ok {
		t.Error("else-if not nested as IfStmt in else block")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"stray token", `42`, "expected type, function, or procedure"},
		{"undeclared var", `procedure f() { x = 1; }`, "undeclared variable"},
		{"undeclared type param", `procedure f(T *p) { }`, "undeclared type"},
		{"bad field", polySrc + `procedure g(OneWayList *p) { p->nosuch = 1; }`, "no field"},
		{"call unknown", `procedure f() { g(); }`, "undefined function"},
		{"assign type", `procedure f() { var int i = 0; i = true; }`, "cannot assign"},
		{"non-bool cond", `procedure f() { var int i = 0; while i { } }`, "condition must be bool"},
		{"return in proc", `procedure f() { return 1; }`, "cannot return a value"},
		{"missing return value", polySrc + `function OneWayList * g(OneWayList *p) { return; }`, "must return a value"},
		{"arity", polySrc + `procedure g(OneWayList *p) { scale(p); }`, "expects 2 arguments"},
		{"null to int", `procedure f() { var int i = 0; i = NULL; }`, "NULL requires a pointer"},
		{"redeclare", `procedure f() { var int i = 0; var int i = 1; }`, "redeclared"},
		{"shadow builtin", `procedure sqrt() { }`, "shadows a builtin"},
		{"dup function", `procedure f() { } procedure f() { }`, "already defined"},
		{"index non-array", polySrc + `procedure g(OneWayList *p) { p = p->next[0]; }`, "not an array"},
		{"record by value", `type T [X] { int v; T *n is forward along X; }; procedure f(T p) { }`, "record types are used only through pointers"},
		{"assign to literal", `procedure f() { 3 = 4; }`, "cannot assign to this expression"},
		{"unterminated block", `procedure f() {`, "unterminated block"},
		{"mod real", `procedure f() { var real r = 1.0 % 2.0; }`, "requires int operands"},
		{"not on int", `procedure f() { var bool b = !3; }`, "requires bool"},
		{"compare ptr int", polySrc + `procedure g(OneWayList *p) { if p == 3 { } }`, "cannot compare"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error with %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestParsePointerArrayField(t *testing.T) {
	src := adds.OctreeSrc + `
procedure visit(Octree *n, int i) {
  var Octree *c = n->subtrees[i];
  if c != NULL {
    visit(c, 0);
  }
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	vs := prog.Func("visit").Body.Stmts[0].(*VarStmt)
	fe := vs.Init.(*FieldExpr)
	if fe.Index == nil {
		t.Error("subtrees access must carry an index")
	}
	// Missing index must fail.
	_, err = Parse(adds.OctreeSrc + `procedure f(Octree *n) { var Octree *c = n->subtrees; }`)
	if err == nil || !strings.Contains(err.Error(), "index is required") {
		t.Errorf("expected index-required error, got %v", err)
	}
}

func TestNormalizeChains(t *testing.T) {
	src := polySrc + `
procedure g(OneWayList *head) {
  var OneWayList *q = head->next->next;
  head->next->coef = 7;
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// After normalization every FieldExpr base is an Ident.
	bad := 0
	for _, f := range prog.Funcs {
		Walk(f.Body, func(s Stmt) bool {
			WalkExprs(s, func(e Expr) {
				if fe, ok := e.(*FieldExpr); ok {
					if fe.Base() == nil {
						bad++
					}
				}
			})
			return true
		})
	}
	if bad > 0 {
		t.Errorf("%d field accesses remain chained after normalization", bad)
	}
	// g must have gained temporaries.
	text := FormatFunc(prog.Func("g"))
	if !strings.Contains(text, "_t") {
		t.Errorf("expected temporaries in normalized g:\n%s", text)
	}
}

func TestNormalizeWhileCondHoisting(t *testing.T) {
	src := polySrc + `
procedure g(OneWayList *head) {
  while head->next->next != NULL {
    head = head->next;
  }
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Func("g")
	// The hoisted load must be re-evaluated at the end of the loop body:
	// find a while loop whose body ends with an assignment to a temp.
	var found bool
	Walk(g.Body, func(s Stmt) bool {
		w, ok := s.(*WhileStmt)
		if !ok {
			return true
		}
		last := w.Body.Stmts[len(w.Body.Stmts)-1]
		if as, ok := last.(*AssignStmt); ok {
			if id, ok := as.LHS.(*Ident); ok && strings.HasPrefix(id.Name, "_t") {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Errorf("hoisted condition temp not re-evaluated at body end:\n%s", FormatFunc(g))
	}
	// Semantics sanity: the loop condition itself is now a single-step load.
	// (Verified structurally above; interpreter tests verify behaviour.)
}

func TestNormalizeStoreRHS(t *testing.T) {
	src := polySrc + `
procedure g(OneWayList *p) {
  p->next = new OneWayList;
  p->next = p->next->next;
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Every pointer store must have Ident or NULL on the RHS.
	Walk(prog.Func("g").Body, func(s Stmt) bool {
		as, ok := s.(*AssignStmt)
		if !ok {
			return true
		}
		fe, ok := as.LHS.(*FieldExpr)
		if !ok {
			return true
		}
		if _, isPtr := IsPointer(fe.Type()); !isPtr {
			return true
		}
		switch as.RHS.(type) {
		case *Ident, *NullLit:
		default:
			t.Errorf("pointer store RHS is %T, want Ident or NULL", as.RHS)
		}
		return true
	})
}

func TestFormatRoundTrip(t *testing.T) {
	prog, err := Parse(polySrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(prog)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of formatted output failed: %v\n%s", err, text)
	}
	if Format(prog2) != text {
		t.Errorf("format not stable:\n--- first\n%s\n--- second\n%s", text, Format(prog2))
	}
}

func TestCloneIndependence(t *testing.T) {
	prog := MustParse(polySrc)
	clone := prog.Clone()
	// Mutate the clone; original must be unaffected.
	clone.Func("scale").Body.Stmts = nil
	if len(prog.Func("scale").Body.Stmts) == 0 {
		t.Error("Clone shares statement storage with original")
	}
	if err := clone.AddFunc(&FuncDecl{Name: "extra", Body: &Block{}}); err != nil {
		t.Fatal(err)
	}
	if prog.Func("extra") != nil {
		t.Error("AddFunc on clone affected original")
	}
	if err := clone.AddFunc(&FuncDecl{Name: "extra", Body: &Block{}}); err == nil {
		t.Error("duplicate AddFunc must fail")
	}
}

func TestImplicitWidening(t *testing.T) {
	src := `
procedure f() {
  var real r = 1;
  r = r + 2;
  var real s = sqrt(4);
  print(r, s);
}`
	if _, err := Parse(src); err != nil {
		t.Fatalf("int→real widening should be accepted: %v", err)
	}
}
