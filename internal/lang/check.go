package lang

import (
	"fmt"
)

// Builtin describes a built-in function. A nil Params slice means the
// builtin is variadic and accepts any argument types (print). A nil
// Result marks a procedure.
type Builtin struct {
	Name   string
	Params []Type
	Result Type
}

// Builtins is the table of PSL built-in functions.
//
//	sqrt(real) real   — square root
//	abs(real)  real   — absolute value
//	rand()     real   — deterministic pseudo-random in [0,1)
//	print(...)        — write arguments to the interpreter's output
var Builtins = map[string]*Builtin{
	"sqrt":  {Name: "sqrt", Params: []Type{Real}, Result: Real},
	"abs":   {Name: "abs", Params: []Type{Real}, Result: Real},
	"rand":  {Name: "rand", Params: []Type{}, Result: Real},
	"print": {Name: "print", Params: nil, Result: nil},
}

// Check type-checks the program in place, annotating every expression
// with its type. It verifies ADDS field references, assignment and call
// compatibility (with implicit int→real widening), condition types, and
// return correctness.
func Check(p *Program) error {
	return CheckFuncs(p, p.Funcs...)
}

// CheckFuncs type-checks only the listed functions (in place, like
// Check). Checking is per-function: a function's body needs only the
// declared signatures of its callees and the program's ADDS universe,
// never a callee's checked body — so re-checking just the functions a
// transformation touched is sound and leaves every other function's
// expression types (and AST identity) untouched.
func CheckFuncs(p *Program, fns ...*FuncDecl) error {
	c := &checker{prog: p}
	for _, f := range fns {
		if Builtins[f.Name] != nil {
			return fmt.Errorf("%s: function %q shadows a builtin", f.Pos(), f.Name)
		}
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	prog   *Program
	fn     *FuncDecl
	scopes []map[string]Type
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]Type{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, t Type, pos Pos) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return fmt.Errorf("%s: %q redeclared in this scope", pos, name)
	}
	top[name] = t
	return nil
}

func (c *checker) lookup(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.scopes = nil
	c.pushScope()
	for _, prm := range f.Params {
		if err := c.validType(prm.Type, f.Pos()); err != nil {
			return err
		}
		if err := c.declare(prm.Name, prm.Type, f.Pos()); err != nil {
			return err
		}
	}
	if f.Result != nil {
		if err := c.validType(f.Result, f.Pos()); err != nil {
			return err
		}
	}
	return c.checkBlock(f.Body)
}

// validType rejects pointer types to undeclared records.
func (c *checker) validType(t Type, pos Pos) error {
	if elem, ok := IsPointer(t); ok {
		if c.prog.Universe.Decl(elem) == nil {
			return fmt.Errorf("%s: pointer to undeclared type %q", pos, elem)
		}
	}
	return nil
}

func (c *checker) checkBlock(b *Block) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		return c.checkBlock(s)

	case *VarStmt:
		if err := c.validType(s.DeclType, s.Pos()); err != nil {
			return err
		}
		if s.Init != nil {
			if err := c.checkExpr(s.Init); err != nil {
				return err
			}
			if err := c.assignable(s.DeclType, s.Init); err != nil {
				return fmt.Errorf("%s: cannot initialize %q: %v", s.Pos(), s.Name, err)
			}
		}
		return c.declare(s.Name, s.DeclType, s.Pos())

	case *AssignStmt:
		if err := c.checkExpr(s.LHS); err != nil {
			return err
		}
		switch lhs := s.LHS.(type) {
		case *Ident:
		case *FieldExpr:
			_ = lhs
		default:
			return fmt.Errorf("%s: invalid assignment target", s.Pos())
		}
		if err := c.checkExpr(s.RHS); err != nil {
			return err
		}
		if err := c.assignable(s.LHS.Type(), s.RHS); err != nil {
			return fmt.Errorf("%s: %v", s.Pos(), err)
		}
		return nil

	case *WhileStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		return c.checkBlock(s.Body)

	case *IfStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkBlock(s.Else)
		}
		return nil

	case *ReturnStmt:
		if c.fn.Result == nil {
			if s.Value != nil {
				return fmt.Errorf("%s: procedure %q cannot return a value", s.Pos(), c.fn.Name)
			}
			return nil
		}
		if s.Value == nil {
			return fmt.Errorf("%s: function %q must return a value", s.Pos(), c.fn.Name)
		}
		if err := c.checkExpr(s.Value); err != nil {
			return err
		}
		if err := c.assignable(c.fn.Result, s.Value); err != nil {
			return fmt.Errorf("%s: bad return: %v", s.Pos(), err)
		}
		return nil

	case *CallStmt:
		return c.checkExpr(s.Call)

	case *ForStmt:
		if err := c.checkExpr(s.From); err != nil {
			return err
		}
		if err := c.checkExpr(s.To); err != nil {
			return err
		}
		if !TypeEq(s.From.Type(), Int) || !TypeEq(s.To.Type(), Int) {
			return fmt.Errorf("%s: for-loop bounds must be int", s.Pos())
		}
		c.pushScope()
		defer c.popScope()
		if err := c.declare(s.Var, Int, s.Pos()); err != nil {
			return err
		}
		return c.checkBlock(s.Body)
	}
	return fmt.Errorf("%s: unknown statement %T", s.Pos(), s)
}

func (c *checker) checkCond(e Expr) error {
	if err := c.checkExpr(e); err != nil {
		return err
	}
	if !TypeEq(e.Type(), Bool) {
		return fmt.Errorf("%s: condition must be bool, got %s", e.Pos(), e.Type())
	}
	return nil
}

// assignable checks that value can be assigned to a target of type dst,
// applying implicit int→real widening and giving NULL the destination
// pointer type.
func (c *checker) assignable(dst Type, value Expr) error {
	if null, ok := value.(*NullLit); ok {
		if _, isPtr := IsPointer(dst); !isPtr {
			return fmt.Errorf("NULL requires a pointer target, have %s", dst)
		}
		null.SetType(dst)
		return nil
	}
	src := value.Type()
	if TypeEq(dst, src) {
		return nil
	}
	if TypeEq(dst, Real) && TypeEq(src, Int) {
		return nil // implicit widening
	}
	return fmt.Errorf("cannot assign %s to %s", src, dst)
}

func (c *checker) checkExpr(e Expr) error {
	switch e := e.(type) {
	case *Ident:
		t, ok := c.lookup(e.Name)
		if !ok {
			return fmt.Errorf("%s: undeclared variable %q", e.Pos(), e.Name)
		}
		e.SetType(t)
		return nil

	case *FieldExpr:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		elem, ok := IsPointer(e.X.Type())
		if !ok {
			return fmt.Errorf("%s: -> requires a pointer, have %s", e.Pos(), e.X.Type())
		}
		decl := c.prog.Universe.Decl(elem)
		if decl == nil {
			return fmt.Errorf("%s: unknown record type %q", e.Pos(), elem)
		}
		if pf := decl.Pointer(e.Field); pf != nil {
			if pf.Count > 1 && e.Index == nil {
				return fmt.Errorf("%s: field %s.%s is a pointer array; an index is required", e.Pos(), elem, e.Field)
			}
			if pf.Count == 1 && e.Index != nil {
				return fmt.Errorf("%s: field %s.%s is not an array", e.Pos(), elem, e.Field)
			}
			if e.Index != nil {
				if err := c.checkExpr(e.Index); err != nil {
					return err
				}
				if !TypeEq(e.Index.Type(), Int) {
					return fmt.Errorf("%s: array index must be int", e.Pos())
				}
			}
			e.SetType(PointerTo(pf.Type))
			return nil
		}
		if df := decl.DataField(e.Field); df != nil {
			if e.Index != nil {
				return fmt.Errorf("%s: data field %s.%s is not an array", e.Pos(), elem, e.Field)
			}
			t, err := scalarTypeOf(df.Type)
			if err != nil {
				return fmt.Errorf("%s: field %s.%s: %v", e.Pos(), elem, e.Field, err)
			}
			e.SetType(t)
			return nil
		}
		return fmt.Errorf("%s: type %q has no field %q", e.Pos(), elem, e.Field)

	case *CallExpr:
		return c.checkCall(e)

	case *NewExpr:
		if c.prog.Universe.Decl(e.TypeName) == nil {
			return fmt.Errorf("%s: new of undeclared type %q", e.Pos(), e.TypeName)
		}
		e.SetType(PointerTo(e.TypeName))
		return nil

	case *NullLit:
		// Type assigned from context (assignable / comparison); leave nil
		// here, verified where used.
		return nil

	case *IntLit:
		e.SetType(Int)
		return nil
	case *RealLit:
		e.SetType(Real)
		return nil
	case *StrLit:
		e.SetType(String)
		return nil
	case *BoolLit:
		e.SetType(Bool)
		return nil

	case *BinExpr:
		return c.checkBin(e)

	case *UnExpr:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		switch e.Op {
		case MINUS:
			if !TypeEq(e.X.Type(), Int) && !TypeEq(e.X.Type(), Real) {
				return fmt.Errorf("%s: unary - requires int or real", e.Pos())
			}
			e.SetType(e.X.Type())
		case NOT:
			if !TypeEq(e.X.Type(), Bool) {
				return fmt.Errorf("%s: ! requires bool", e.Pos())
			}
			e.SetType(Bool)
		default:
			return fmt.Errorf("%s: unknown unary operator %s", e.Pos(), e.Op)
		}
		return nil
	}
	return fmt.Errorf("%s: unknown expression %T", e.Pos(), e)
}

func (c *checker) checkCall(e *CallExpr) error {
	for _, a := range e.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
	}
	if b, ok := Builtins[e.Func]; ok {
		if b.Params != nil {
			if len(e.Args) != len(b.Params) {
				return fmt.Errorf("%s: %s expects %d arguments, got %d", e.Pos(), b.Name, len(b.Params), len(e.Args))
			}
			for i, a := range e.Args {
				if err := c.assignable(b.Params[i], a); err != nil {
					return fmt.Errorf("%s: argument %d of %s: %v", e.Pos(), i+1, b.Name, err)
				}
			}
		} else {
			// Variadic builtin (print): NULL arguments are displayed as
			// pointers of unknown type.
			for _, a := range e.Args {
				if n, ok := a.(*NullLit); ok {
					n.SetType(PointerTo(""))
				}
			}
		}
		e.SetType(b.Result)
		return nil
	}
	f := c.prog.Func(e.Func)
	if f == nil {
		return fmt.Errorf("%s: call to undefined function %q", e.Pos(), e.Func)
	}
	if len(e.Args) != len(f.Params) {
		return fmt.Errorf("%s: %s expects %d arguments, got %d", e.Pos(), f.Name, len(f.Params), len(e.Args))
	}
	for i, a := range e.Args {
		if err := c.assignable(f.Params[i].Type, a); err != nil {
			return fmt.Errorf("%s: argument %d of %s: %v", e.Pos(), i+1, f.Name, err)
		}
	}
	e.SetType(f.Result)
	return nil
}

func (c *checker) checkBin(e *BinExpr) error {
	if err := c.checkExpr(e.X); err != nil {
		return err
	}
	if err := c.checkExpr(e.Y); err != nil {
		return err
	}
	xt, yt := e.X.Type(), e.Y.Type()

	switch e.Op {
	case AND, OR:
		if !TypeEq(xt, Bool) || !TypeEq(yt, Bool) {
			return fmt.Errorf("%s: %s requires bool operands", e.Pos(), e.Op)
		}
		e.SetType(Bool)
		return nil

	case EQ, NEQ:
		// Pointer comparison, including NULL on either side.
		xNull, yNull := isNull(e.X), isNull(e.Y)
		switch {
		case xNull && yNull:
			e.X.(*NullLit).SetType(PointerTo(""))
			e.Y.(*NullLit).SetType(PointerTo(""))
		case xNull:
			if _, ok := IsPointer(yt); !ok {
				return fmt.Errorf("%s: NULL compared against non-pointer %s", e.Pos(), yt)
			}
			e.X.(*NullLit).SetType(yt)
		case yNull:
			if _, ok := IsPointer(xt); !ok {
				return fmt.Errorf("%s: NULL compared against non-pointer %s", e.Pos(), xt)
			}
			e.Y.(*NullLit).SetType(xt)
		default:
			if !comparable2(xt, yt) {
				return fmt.Errorf("%s: cannot compare %s and %s", e.Pos(), xt, yt)
			}
		}
		e.SetType(Bool)
		return nil

	case LT, LE, GT, GE:
		if !numeric(xt) || !numeric(yt) {
			return fmt.Errorf("%s: %s requires numeric operands", e.Pos(), e.Op)
		}
		e.SetType(Bool)
		return nil

	case PLUS, MINUS, STAR, SLASH:
		if !numeric(xt) || !numeric(yt) {
			return fmt.Errorf("%s: %s requires numeric operands", e.Pos(), e.Op)
		}
		if TypeEq(xt, Real) || TypeEq(yt, Real) {
			e.SetType(Real)
		} else {
			e.SetType(Int)
		}
		return nil

	case PERCENT:
		if !TypeEq(xt, Int) || !TypeEq(yt, Int) {
			return fmt.Errorf("%s: %% requires int operands", e.Pos())
		}
		e.SetType(Int)
		return nil
	}
	return fmt.Errorf("%s: unknown binary operator %s", e.Pos(), e.Op)
}

func isNull(e Expr) bool {
	_, ok := e.(*NullLit)
	return ok
}

func numeric(t Type) bool { return TypeEq(t, Int) || TypeEq(t, Real) }

// comparable2 reports whether == / != is defined between the two types:
// identical scalars, numeric pairs, or identical pointer types.
func comparable2(a, b Type) bool {
	if numeric(a) && numeric(b) {
		return true
	}
	return TypeEq(a, b)
}

func scalarTypeOf(name string) (Type, error) {
	switch name {
	case "int":
		return Int, nil
	case "real":
		return Real, nil
	case "bool":
		return Bool, nil
	}
	return nil, fmt.Errorf("unknown scalar type %q", name)
}
