package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders the program back to PSL source text: ADDS type
// declarations first, then functions, in their original order.
func Format(p *Program) string {
	var b strings.Builder
	for _, name := range p.Universe.Types() {
		b.WriteString(p.Universe.Decl(name).String())
		b.WriteString("\n\n")
	}
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(FormatFunc(f))
	}
	return b.String()
}

// FormatFunc renders one function definition.
func FormatFunc(f *FuncDecl) string {
	var b strings.Builder
	if f.IsProcedure() {
		b.WriteString("procedure ")
	} else {
		fmt.Fprintf(&b, "function %s ", f.Result)
	}
	b.WriteString(f.Name)
	b.WriteString("(")
	for i, prm := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", paramType(prm.Type), prm.Name)
	}
	b.WriteString(") ")
	printBlock(&b, f.Body, 0)
	b.WriteString("\n")
	return b.String()
}

// paramType renders "Octree *" style for pointers, plain for scalars.
func paramType(t Type) string {
	if elem, ok := IsPointer(t); ok {
		return elem + " *"
	}
	return t.String()
}

// FormatStmt renders a single statement at the given indent level.
func FormatStmt(s Stmt, indent int) string {
	var b strings.Builder
	printStmt(&b, s, indent)
	return b.String()
}

func ind(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("  ")
	}
}

func printBlock(b *strings.Builder, blk *Block, indent int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		printStmt(b, s, indent+1)
	}
	ind(b, indent)
	b.WriteString("}")
}

func printStmt(b *strings.Builder, s Stmt, indent int) {
	ind(b, indent)
	switch s := s.(type) {
	case *Block:
		printBlock(b, s, indent)
		b.WriteString("\n")
	case *VarStmt:
		if elem, ok := IsPointer(s.DeclType); ok {
			fmt.Fprintf(b, "var %s *%s", elem, s.Name)
		} else {
			fmt.Fprintf(b, "var %s %s", s.DeclType, s.Name)
		}
		if s.Init != nil {
			fmt.Fprintf(b, " = %s", FormatExpr(s.Init))
		}
		b.WriteString(";\n")
	case *AssignStmt:
		fmt.Fprintf(b, "%s = %s;\n", FormatExpr(s.LHS), FormatExpr(s.RHS))
	case *WhileStmt:
		fmt.Fprintf(b, "while %s ", FormatExpr(s.Cond))
		printBlock(b, s.Body, indent)
		b.WriteString("\n")
	case *IfStmt:
		fmt.Fprintf(b, "if %s ", FormatExpr(s.Cond))
		printBlock(b, s.Then, indent)
		if s.Else != nil {
			b.WriteString(" else ")
			printBlock(b, s.Else, indent)
		}
		b.WriteString("\n")
	case *ReturnStmt:
		if s.Value == nil {
			b.WriteString("return;\n")
		} else {
			fmt.Fprintf(b, "return %s;\n", FormatExpr(s.Value))
		}
	case *CallStmt:
		fmt.Fprintf(b, "%s;\n", FormatExpr(s.Call))
	case *ForStmt:
		kw := "for"
		if s.Parallel {
			kw = "forall"
		}
		fmt.Fprintf(b, "%s %s = %s to %s ", kw, s.Var, FormatExpr(s.From), FormatExpr(s.To))
		printBlock(b, s.Body, indent)
		b.WriteString("\n")
	default:
		fmt.Fprintf(b, "/* unknown stmt %T */\n", s)
	}
}

// FormatExpr renders an expression with minimal parentheses (fully
// parenthesized binaries to keep the printer simple and unambiguous).
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case *Ident:
		return e.Name
	case *FieldExpr:
		s := FormatExpr(e.X) + "->" + e.Field
		if e.Index != nil {
			s += "[" + FormatExpr(e.Index) + "]"
		}
		return s
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = FormatExpr(a)
		}
		return e.Func + "(" + strings.Join(args, ", ") + ")"
	case *NewExpr:
		return "new " + e.TypeName
	case *NullLit:
		return "NULL"
	case *IntLit:
		return strconv.FormatInt(e.Val, 10)
	case *RealLit:
		s := strconv.FormatFloat(e.Val, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *StrLit:
		return quotePSL(e.Val)
	case *BoolLit:
		if e.Val {
			return "true"
		}
		return "false"
	case *BinExpr:
		return "(" + FormatExpr(e.X) + " " + e.Op.String() + " " + FormatExpr(e.Y) + ")"
	case *UnExpr:
		return e.Op.String() + FormatExpr(e.X)
	}
	return fmt.Sprintf("/* unknown expr %T */", e)
}

// quotePSL renders a string literal in PSL's own escape set — \n, \t,
// \", \\ — leaving every other byte raw (the lexer accepts arbitrary
// raw bytes inside a literal, including newlines). Go's strconv.Quote
// would emit escapes like \x01 that PSL does not lex, breaking the
// parse→print→parse round trip the fuzzer enforces.
func quotePSL(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
