package lang

import (
	"strings"
	"testing"
)

func toks(t *testing.T, src string) []Lexeme {
	t.Helper()
	out, err := LexAll(src)
	if err != nil {
		t.Fatalf("LexAll(%q): %v", src, err)
	}
	return out
}

func TestLexBasics(t *testing.T) {
	got := toks(t, `p = p->next;`)
	want := []Token{IDENT, ASSIGN, IDENT, ARROW, IDENT, SEMI, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if got[i].Tok != w {
			t.Errorf("token %d = %s, want %s", i, got[i], w)
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := `== != <= >= < > <> && || ! + - * / % -> =`
	want := []Token{EQ, NEQ, LE, GE, LT, GT, NEQ, AND, OR, NOT, PLUS, MINUS, STAR, SLASH, PERCENT, ARROW, ASSIGN, EOF}
	got := toks(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i, w := range want {
		if got[i].Tok != w {
			t.Errorf("token %d = %s, want %s", i, got[i], w)
		}
	}
}

func TestLexPaperDiamond(t *testing.T) {
	// The paper writes "while p <> NULL": <> lexes as !=.
	got := toks(t, `while p <> NULL`)
	if got[2].Tok != NEQ {
		t.Errorf("<> lexed as %s, want !=", got[2])
	}
	if got[3].Tok != NULLKW {
		t.Errorf("NULL lexed as %s", got[3])
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		tok  Token
		text string
	}{
		{"42", INT, "42"},
		{"0", INT, "0"},
		{"3.25", REAL, "3.25"},
		{"1e9", REAL, "1e9"},
		{"2.5e-3", REAL, "2.5e-3"},
		{"7E+2", REAL, "7E+2"},
	}
	for _, c := range cases {
		got := toks(t, c.src)
		if got[0].Tok != c.tok || got[0].Text != c.text {
			t.Errorf("lex(%q) = %s, want %s %q", c.src, got[0], c.tok, c.text)
		}
	}
	// "3." followed by non-digit must not absorb the dot.
	if _, err := LexAll("3.x"); err == nil {
		// 3 then illegal '.': expect an error
		t.Error("expected error lexing '3.x'")
	}
	// "1e" with no exponent digits stays INT followed by IDENT.
	got := toks(t, "1e")
	if got[0].Tok != INT || got[1].Tok != IDENT {
		t.Errorf("lex(1e) = %v", got)
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	got := toks(t, `"a\nb\t\"q\"\\"`)
	if got[0].Tok != STRING {
		t.Fatalf("got %v", got[0])
	}
	if got[0].Text != "a\nb\t\"q\"\\" {
		t.Errorf("string = %q", got[0].Text)
	}
	if _, err := LexAll(`"unterminated`); err == nil {
		t.Error("expected unterminated string error")
	}
	if _, err := LexAll(`"bad \z"`); err == nil {
		t.Error("expected unknown escape error")
	}
}

func TestLexComments(t *testing.T) {
	got := toks(t, "a // line comment\n /* block\n comment */ b")
	if len(got) != 3 || got[0].Text != "a" || got[1].Text != "b" {
		t.Errorf("comments not skipped: %v", got)
	}
	if _, err := LexAll("/* unterminated"); err == nil {
		t.Error("expected unterminated comment error")
	}
}

func TestLexKeywords(t *testing.T) {
	src := "type function procedure var while if else return for forall to new NULL true false is uniquely forward backward along where int real bool"
	got := toks(t, src)
	want := []Token{TYPE, FUNCTION, PROCEDURE, VAR, WHILE, IF, ELSE, RETURN, FOR, FORALL, TO, NEW, NULLKW, TRUE, FALSE, IS, UNIQUELY, FORWARD, BACKWARD, ALONG, WHERE, INTKW, REALKW, BOOLKW, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Tok != w {
			t.Errorf("token %d = %s, want %s", i, got[i], w)
		}
	}
}

func TestLexPositions(t *testing.T) {
	got := toks(t, "a\n  b")
	if got[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v", got[0].Pos)
	}
	if got[1].Pos != (Pos{2, 3}) {
		t.Errorf("b at %v, want 2:3", got[1].Pos)
	}
}

func TestLexIllegal(t *testing.T) {
	for _, src := range []string{"#", "$", "&x", "|x", "@"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) succeeded, want error", src)
		} else if !strings.Contains(err.Error(), "unexpected character") && !strings.Contains(err.Error(), "1:") {
			t.Errorf("LexAll(%q) error lacks position: %v", src, err)
		}
	}
}
