package lang

import (
	"fmt"
)

// Normalize rewrites the (checked) program into canonical pointer form:
//
//  1. every field access is a single step from a named variable
//     (FieldExpr.X is an *Ident) — chains like p->next->next introduce
//     temporaries;
//  2. every store into a pointer field has a named variable or NULL on
//     the right-hand side (p->f = q, p->f = NULL) — allocations, calls,
//     and loads on the right of a store are hoisted into temporaries.
//
// These are exactly the statement forms the paper's pointer rules cover
// (§3.3). Temporaries are named _t1, _t2, ... avoiding collisions with
// existing names. The program must be re-checked after normalization to
// type the introduced statements.
func Normalize(p *Program) error {
	for _, f := range p.Funcs {
		n := &normalizer{prog: p, used: collectNames(p, f)}
		body, err := n.block(f.Body)
		if err != nil {
			return err
		}
		f.Body = body
	}
	return nil
}

func collectNames(p *Program, f *FuncDecl) map[string]bool {
	used := make(map[string]bool)
	for _, prm := range f.Params {
		used[prm.Name] = true
	}
	Walk(f.Body, func(s Stmt) bool {
		switch s := s.(type) {
		case *VarStmt:
			used[s.Name] = true
		case *ForStmt:
			used[s.Var] = true
		}
		WalkExprs(s, func(e Expr) {
			if id, ok := e.(*Ident); ok {
				used[id.Name] = true
			}
		})
		return true
	})
	return used
}

type normalizer struct {
	prog *Program
	used map[string]bool
	n    int
}

func (nm *normalizer) fresh() string {
	for {
		nm.n++
		name := fmt.Sprintf("_t%d", nm.n)
		if !nm.used[name] {
			nm.used[name] = true
			return name
		}
	}
}

// hoist creates "var <type> name = e;" and returns the replacement ident.
func (nm *normalizer) hoist(e Expr, pre *[]Stmt) (*Ident, error) {
	t := e.Type()
	if t == nil {
		return nil, fmt.Errorf("%s: cannot hoist untyped expression (program not checked?)", e.Pos())
	}
	name := nm.fresh()
	vs := &VarStmt{Name: name, DeclType: t, Init: e}
	vs.pos = e.Pos()
	*pre = append(*pre, vs)
	return NewIdent(name, t, e.Pos()), nil
}

// expr flattens nested field chains inside e, appending hoisted
// temporaries to pre, and returns the rewritten expression.
func (nm *normalizer) expr(e Expr, pre *[]Stmt) (Expr, error) {
	switch e := e.(type) {
	case nil:
		return nil, nil
	case *FieldExpr:
		x, err := nm.expr(e.X, pre)
		if err != nil {
			return nil, err
		}
		if _, ok := x.(*Ident); !ok {
			id, err := nm.hoist(x, pre)
			if err != nil {
				return nil, err
			}
			x = id
		}
		e.X = x
		if e.Index != nil {
			idx, err := nm.expr(e.Index, pre)
			if err != nil {
				return nil, err
			}
			e.Index = idx
		}
		return e, nil
	case *CallExpr:
		for i, a := range e.Args {
			na, err := nm.expr(a, pre)
			if err != nil {
				return nil, err
			}
			e.Args[i] = na
		}
		return e, nil
	case *BinExpr:
		x, err := nm.expr(e.X, pre)
		if err != nil {
			return nil, err
		}
		y, err := nm.expr(e.Y, pre)
		if err != nil {
			return nil, err
		}
		e.X, e.Y = x, y
		return e, nil
	case *UnExpr:
		x, err := nm.expr(e.X, pre)
		if err != nil {
			return nil, err
		}
		e.X = x
		return e, nil
	default:
		return e, nil
	}
}

// isSimpleRHS reports whether e may appear on the right of a pointer
// store without hoisting.
func isSimpleRHS(e Expr) bool {
	switch e.(type) {
	case *Ident, *NullLit:
		return true
	}
	return false
}

func (nm *normalizer) block(b *Block) (*Block, error) {
	if b == nil {
		return nil, nil
	}
	out := &Block{}
	out.pos = b.pos
	for _, s := range b.Stmts {
		stmts, err := nm.stmt(s)
		if err != nil {
			return nil, err
		}
		out.Stmts = append(out.Stmts, stmts...)
	}
	return out, nil
}

func (nm *normalizer) stmt(s Stmt) ([]Stmt, error) {
	var pre []Stmt
	switch s := s.(type) {
	case *Block:
		nb, err := nm.block(s)
		if err != nil {
			return nil, err
		}
		return []Stmt{nb}, nil

	case *VarStmt:
		if s.Init != nil {
			init, err := nm.expr(s.Init, &pre)
			if err != nil {
				return nil, err
			}
			s.Init = init
		}
		return append(pre, s), nil

	case *AssignStmt:
		lhs, err := nm.expr(s.LHS, &pre)
		if err != nil {
			return nil, err
		}
		rhs, err := nm.expr(s.RHS, &pre)
		if err != nil {
			return nil, err
		}
		// A store into a pointer field must have a simple RHS.
		if fe, ok := lhs.(*FieldExpr); ok {
			if _, isPtr := IsPointer(fe.Type()); isPtr && !isSimpleRHS(rhs) {
				id, err := nm.hoist(rhs, &pre)
				if err != nil {
					return nil, err
				}
				rhs = id
			}
		}
		s.LHS, s.RHS = lhs, rhs
		return append(pre, s), nil

	case *WhileStmt:
		// Hoisting from a while condition must re-evaluate the hoisted
		// loads on every iteration: declare temps before the loop,
		// assign before the loop and again at the end of the body.
		var condPre []Stmt
		cond, err := nm.expr(s.Cond, &condPre)
		if err != nil {
			return nil, err
		}
		s.Cond = cond
		body, err := nm.block(s.Body)
		if err != nil {
			return nil, err
		}
		s.Body = body
		if len(condPre) == 0 {
			return []Stmt{s}, nil
		}
		var out []Stmt
		for _, ps := range condPre {
			vs, ok := ps.(*VarStmt)
			if !ok {
				return nil, fmt.Errorf("%s: internal: condition hoisting produced %T", s.Pos(), ps)
			}
			decl := &VarStmt{Name: vs.Name, DeclType: vs.DeclType, Init: vs.Init}
			decl.pos = vs.pos
			out = append(out, decl)
			// Re-evaluate at the end of each iteration.
			assign := &AssignStmt{
				LHS: NewIdent(vs.Name, vs.DeclType, vs.pos),
				RHS: CloneExpr(vs.Init),
			}
			assign.pos = vs.pos
			s.Body.Stmts = append(s.Body.Stmts, assign)
		}
		return append(out, s), nil

	case *IfStmt:
		cond, err := nm.expr(s.Cond, &pre)
		if err != nil {
			return nil, err
		}
		s.Cond = cond
		then, err := nm.block(s.Then)
		if err != nil {
			return nil, err
		}
		s.Then = then
		if s.Else != nil {
			els, err := nm.block(s.Else)
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
		return append(pre, s), nil

	case *ReturnStmt:
		if s.Value != nil {
			v, err := nm.expr(s.Value, &pre)
			if err != nil {
				return nil, err
			}
			s.Value = v
		}
		return append(pre, s), nil

	case *CallStmt:
		call, err := nm.expr(s.Call, &pre)
		if err != nil {
			return nil, err
		}
		s.Call = call.(*CallExpr)
		return append(pre, s), nil

	case *ForStmt:
		from, err := nm.expr(s.From, &pre)
		if err != nil {
			return nil, err
		}
		to, err := nm.expr(s.To, &pre)
		if err != nil {
			return nil, err
		}
		s.From, s.To = from, to
		body, err := nm.block(s.Body)
		if err != nil {
			return nil, err
		}
		s.Body = body
		return append(pre, s), nil
	}
	return nil, fmt.Errorf("%s: unknown statement %T", s.Pos(), s)
}
