// Package lang implements PSL, the small imperative pointer language the
// paper's analysis operates on. PSL provides exactly the constructs the
// paper uses: ADDS-annotated record types, pointer statements in the
// canonical forms (p = q, p = q->f, p->f = q, p = new T, p = NULL),
// scalar/field arithmetic, while/if control flow, recursive functions,
// and — as a transformation target — parallel forall loops.
//
// The package contains the lexer, parser, AST, type checker, a
// normalizer that rewrites chained pointer accesses into canonical
// single-step statements, and a source printer.
package lang

import "fmt"

// Token identifies a lexical token kind.
type Token int

// Token kinds.
const (
	ILLEGAL Token = iota
	EOF

	IDENT  // p, compute_force
	INT    // 42
	REAL   // 3.14
	STRING // "hello"

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	SEMI     // ;
	COMMA    // ,
	ARROW    // ->
	ASSIGN   // =
	EQ       // ==
	NEQ      // !=
	LT       // <
	LE       // <=
	GT       // >
	GE       // >=
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	NOT      // !
	AND      // &&
	OR       // ||
	DBLPIPE  // || in ADDS where-clause context (same token as OR)
	keywords // marker: everything after is a keyword

	TYPE
	FUNCTION
	PROCEDURE
	VAR
	WHILE
	IF
	ELSE
	RETURN
	FOR
	FORALL
	TO
	NEW
	NULLKW
	TRUE
	FALSE
	IS
	UNIQUELY
	FORWARD
	BACKWARD
	ALONG
	WHERE
	INTKW
	REALKW
	BOOLKW
)

var tokenNames = map[Token]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF",
	IDENT: "identifier", INT: "int literal", REAL: "real literal", STRING: "string literal",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]",
	SEMI: ";", COMMA: ",", ARROW: "->", ASSIGN: "=",
	EQ: "==", NEQ: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	NOT: "!", AND: "&&", OR: "||",
	TYPE: "type", FUNCTION: "function", PROCEDURE: "procedure", VAR: "var",
	WHILE: "while", IF: "if", ELSE: "else", RETURN: "return",
	FOR: "for", FORALL: "forall", TO: "to", NEW: "new", NULLKW: "NULL",
	TRUE: "true", FALSE: "false",
	IS: "is", UNIQUELY: "uniquely", FORWARD: "forward", BACKWARD: "backward",
	ALONG: "along", WHERE: "where",
	INTKW: "int", REALKW: "real", BOOLKW: "bool",
}

// String returns a human-readable name for the token.
func (t Token) String() string {
	if s, ok := tokenNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Token(%d)", int(t))
}

var keywordMap = map[string]Token{
	"type": TYPE, "function": FUNCTION, "procedure": PROCEDURE, "var": VAR,
	"while": WHILE, "if": IF, "else": ELSE, "return": RETURN,
	"for": FOR, "forall": FORALL, "to": TO, "new": NEW, "NULL": NULLKW,
	"true": TRUE, "false": FALSE,
	"is": IS, "uniquely": UNIQUELY, "forward": FORWARD, "backward": BACKWARD,
	"along": ALONG, "where": WHERE,
	"int": INTKW, "real": REALKW, "bool": BOOLKW,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position was set.
func (p Pos) IsValid() bool { return p.Line > 0 }
