// Structural tests for the lowering pass, plus golden disassembly
// snapshots. The semantic contract (bit-identical results and cycle
// accounting against the walker and the closure engine) is pinned by
// the three-way grid in the repository root (equivalence_test.go) and
// the differential fuzzer in internal/interp; this file checks the
// invariants the VM relies on — well-formed jump targets, in-range
// site-table and register references — and freezes the instruction
// selection itself under testdata/*.golden so codegen changes are
// reviewed as diffs.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/bytecode -run TestDisassembleGolden -update
package bytecode

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/compile"
	"repro/internal/lang"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

var goldenFiles = []string{"kernels", "links", "strips"}

func compileFile(t *testing.T, name string) *Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := compile.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := Compile(cp)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestDisassembleGolden(t *testing.T) {
	for _, name := range goldenFiles {
		name := name
		t.Run(name, func(t *testing.T) {
			got := Disassemble(compileFile(t, name+".psl"))
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/bytecode -run TestDisassembleGolden -update` to create the snapshots)", err)
			}
			if got != string(want) {
				t.Errorf("disassembly drifted from %s.\nIf the codegen change is intentional, rerun with -update.\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}

// bankSize returns the register count of one bank of f.
func bankSize(f *Func, b Bank) int32 {
	switch b {
	case BankInt:
		return int32(f.NInt)
	case BankReal:
		return int32(f.NReal)
	case BankBool:
		return int32(f.NBool)
	case BankStr:
		return int32(f.NStr)
	case BankNode:
		return int32(f.NNode)
	}
	return 0
}

func checkReg(t *testing.T, f *Func, what string, r Reg) {
	t.Helper()
	if r.Bank == BankNone {
		t.Errorf("%s/%s: unbanked register", f.Name, what)
		return
	}
	if r.Idx < 0 || r.Idx >= bankSize(f, r.Bank) {
		t.Errorf("%s/%s: register %s%d out of bank range %d", f.Name, what, r.Bank, r.Idx, bankSize(f, r.Bank))
	}
}

// TestCompileInvariants checks the well-formedness the VM assumes and
// never re-verifies at run time: Pos parallel to Code, jump targets
// inside the function, site-table references in range, parameters
// homed inside their banks.
func TestCompileInvariants(t *testing.T) {
	for _, name := range goldenFiles {
		bp := compileFile(t, name+".psl")
		for _, f := range bp.Funcs {
			if len(f.Pos) != len(f.Code) {
				t.Fatalf("%s: Pos length %d != Code length %d", f.Name, len(f.Pos), len(f.Code))
			}
			n := int64(len(f.Code))
			for _, p := range f.Params {
				checkReg(t, f, "param "+p.Name, p.Reg)
			}
			for pc, in := range f.Code {
				switch in.Op {
				case OpJump, OpBr, OpScAnd, OpScOr, OpForHead, OpForTail, OpLoadNodeIdxBegin:
					if in.Imm < 0 || in.Imm > n {
						t.Errorf("%s@%d: %s target %d outside [0,%d]", f.Name, pc, in.Op, in.Imm, n)
					}
				case OpForall:
					s := f.Foralls[in.A]
					if s.BodyStart < 0 || s.BodyEnd < s.BodyStart || int64(s.BodyEnd) > n {
						t.Errorf("%s@%d: forall body [%d,%d) outside [0,%d]", f.Name, pc, s.BodyStart, s.BodyEnd, n)
					}
				case OpCall:
					s := f.Calls[in.A]
					if int(s.FuncIdx) < 0 || int(s.FuncIdx) >= len(bp.Funcs) {
						t.Errorf("%s@%d: call FuncIdx %d out of range", f.Name, pc, s.FuncIdx)
					}
					callee := bp.Funcs[s.FuncIdx]
					if len(s.Args) != len(callee.Params) {
						t.Errorf("%s@%d: call to %s with %d args, want %d", f.Name, pc, callee.Name, len(s.Args), len(callee.Params))
					}
					for i, a := range s.Args {
						checkReg(t, f, "call arg", a)
						if i < len(callee.Params) && a.Bank != callee.Params[i].Reg.Bank {
							t.Errorf("%s@%d: call arg %d bank %s != param bank %s", f.Name, pc, i, a.Bank, callee.Params[i].Reg.Bank)
						}
					}
					if s.Dst.Bank != BankNone {
						checkReg(t, f, "call dst", s.Dst)
					}
				case OpPrint:
					for _, a := range f.Prints[in.A].Args {
						checkReg(t, f, "print arg", a)
					}
				case OpNew:
					if int(in.B) < 0 || int(in.B) >= len(f.News) {
						t.Errorf("%s@%d: new site %d out of range", f.Name, pc, in.B)
					}
				case OpConstStr:
					if int(in.B) < 0 || int(in.B) >= len(f.Strs) {
						t.Errorf("%s@%d: string pool index %d out of range", f.Name, pc, in.B)
					}
				}
				if in.D < 0 {
					t.Errorf("%s@%d: negative VarAccess fold %d", f.Name, pc, in.D)
				}
			}
		}
	}
}

// TestBankOf pins the slot-type → bank mapping the whole lowering
// hangs off.
func TestBankOf(t *testing.T) {
	cases := []struct {
		typ  lang.Type
		want Bank
	}{
		{lang.Int, BankInt},
		{lang.Real, BankReal},
		{lang.Bool, BankBool},
		{lang.String, BankStr},
		{&lang.Pointer{Elem: "Grid"}, BankNode},
		{nil, BankNone},
	}
	for _, c := range cases {
		if got := BankOf(c.typ); got != c.want {
			t.Errorf("BankOf(%v) = %v, want %v", c.typ, got, c.want)
		}
	}
}

// TestFuncLookup pins Program.Func's behavior for present and absent
// names.
func TestFuncLookup(t *testing.T) {
	bp := compileFile(t, "links.psl")
	if f := bp.Func("scale"); f == nil || f.Name != "scale" {
		t.Fatalf("Func(scale) = %v", f)
	}
	if f := bp.Func("nonexistent"); f != nil {
		t.Fatalf("Func(nonexistent) = %v, want nil", f)
	}
}
