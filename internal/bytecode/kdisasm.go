// Kernel disassembly: the vector half of disasm.go, pinned by the same
// golden files.
package bytecode

import (
	"fmt"
	"strings"
)

// kopNames is the kernel mnemonic table, indexed by KOp.
var kopNames = [kopCount]string{
	KParamInt:  "kparam.int",
	KParamReal: "kparam.real",
	KParamBool: "kparam.bool",

	KConstInt:  "kconst.int",
	KConstReal: "kconst.real",
	KConstBool: "kconst.bool",
	KMovInt:    "kmov.int",
	KMovReal:   "kmov.real",
	KMovBool:   "kmov.bool",
	KIntToReal: "ki2r",

	KAddInt: "kadd.int",
	KSubInt: "ksub.int",
	KMulInt: "kmul.int",
	KDivInt: "kdiv.int",
	KModInt: "kmod.int",
	KNegInt: "kneg.int",
	KEqInt:  "keq.int",
	KNeInt:  "kne.int",
	KLtInt:  "klt.int",
	KLeInt:  "kle.int",
	KGtInt:  "kgt.int",
	KGeInt:  "kge.int",

	KAddReal: "kadd.real",
	KSubReal: "ksub.real",
	KMulReal: "kmul.real",
	KDivReal: "kdiv.real",
	KNegReal: "kneg.real",
	KEqReal:  "keq.real",
	KNeReal:  "kne.real",
	KLtReal:  "klt.real",
	KLeReal:  "kle.real",
	KGtReal:  "kgt.real",
	KGeReal:  "kge.real",

	KNot:     "knot",
	KEqBool:  "keq.bool",
	KNeBool:  "kne.bool",
	KAndBool: "kand.bool",
	KOrBool:  "kor.bool",

	KSqrt: "ksqrt",
	KAbs:  "kabs",

	KMaskAnd:    "kmask.and",
	KMaskAndNot: "kmask.andnot",
	KStep:       "kstep",
}

// String returns the kernel opcode mnemonic.
func (o KOp) String() string {
	if int(o) < len(kopNames) && kopNames[o] != "" {
		return kopNames[o]
	}
	return fmt.Sprintf("kop(%d)", int(o))
}

// vecVerdict is the suffix on a forall site line: the strip's
// vectorization verdict, with the concrete reason when rejected.
func vecVerdict(s ForallSite) string {
	if s.Kernel != nil {
		return " vec=kernel"
	}
	if s.VectorReason != "" {
		return fmt.Sprintf(" vec=no (%s)", s.VectorReason)
	}
	return ""
}

// disasmKernel renders one forall site's kernel block.
func disasmKernel(sb *strings.Builder, site int, k *Kernel) {
	fmt.Fprintf(sb, "  forall[%d] kernel: helper=%d call=%d advance=%s@%d steps/lane=%d\n",
		site, k.HelperIdx, k.CallSite, k.AdvanceName, k.AdvanceOff, k.NSteps)
	fmt.Fprintf(sb, "    slabs: int=%d real=%d bool=%d rootmask=b%d\n", k.NInt, k.NReal, k.NBool, k.RootMask)
	var fields []string
	for _, f := range k.Fields {
		star := ""
		if f.Stored {
			star = "*"
		}
		fields = append(fields, fmt.Sprintf("%s%d=%s@%d%s", f.Bank, f.Slab, f.Name, f.Off, star))
	}
	fmt.Fprintf(sb, "    fields: %s\n", strings.Join(fields, " "))
	fmt.Fprintf(sb, "    prologue:\n")
	for pc, in := range k.Prologue {
		fmt.Fprintf(sb, "    %4d  %s\n", pc, kinstrText(in))
	}
	fmt.Fprintf(sb, "    code:\n")
	for pc, in := range k.Code {
		fmt.Fprintf(sb, "    %4d  %s\n", pc, kinstrText(in))
	}
}

// kmask renders the governing-mask suffix, quiet when unmasked.
func kmask(m int32) string {
	if m == kNoMask {
		return ""
	}
	return fmt.Sprintf("  @b%d", m)
}

func kinstrText(in KInstr) string {
	op := in.Op.String()
	switch in.Op {
	case KParamInt:
		return fmt.Sprintf("%-16s i%d, arg[%d]", op, in.A, in.B)
	case KParamReal:
		return fmt.Sprintf("%-16s f%d, arg[%d]", op, in.A, in.B)
	case KParamBool:
		return fmt.Sprintf("%-16s b%d, arg[%d]", op, in.A, in.B)

	case KConstInt:
		return fmt.Sprintf("%-16s i%d, %d%s", op, in.A, in.Imm, kmask(in.M))
	case KConstReal:
		return fmt.Sprintf("%-16s f%d, %g%s", op, in.A, in.Fv, kmask(in.M))
	case KConstBool:
		return fmt.Sprintf("%-16s b%d, %t%s", op, in.A, in.Imm != 0, kmask(in.M))
	case KMovInt:
		return fmt.Sprintf("%-16s i%d, i%d%s", op, in.A, in.B, kmask(in.M))
	case KMovReal:
		return fmt.Sprintf("%-16s f%d, f%d%s", op, in.A, in.B, kmask(in.M))
	case KMovBool:
		return fmt.Sprintf("%-16s b%d, b%d%s", op, in.A, in.B, kmask(in.M))
	case KIntToReal:
		return fmt.Sprintf("%-16s f%d, i%d%s", op, in.A, in.B, kmask(in.M))

	case KAddInt, KSubInt, KMulInt, KDivInt, KModInt:
		return fmt.Sprintf("%-16s i%d, i%d, i%d%s", op, in.A, in.B, in.C, kmask(in.M))
	case KNegInt:
		return fmt.Sprintf("%-16s i%d, i%d%s", op, in.A, in.B, kmask(in.M))
	case KEqInt, KNeInt, KLtInt, KLeInt, KGtInt, KGeInt:
		return fmt.Sprintf("%-16s b%d, i%d, i%d%s", op, in.A, in.B, in.C, kmask(in.M))

	case KAddReal, KSubReal, KMulReal, KDivReal:
		return fmt.Sprintf("%-16s f%d, f%d, f%d%s", op, in.A, in.B, in.C, kmask(in.M))
	case KNegReal:
		return fmt.Sprintf("%-16s f%d, f%d%s", op, in.A, in.B, kmask(in.M))
	case KEqReal, KNeReal, KLtReal, KLeReal, KGtReal, KGeReal:
		return fmt.Sprintf("%-16s b%d, f%d, f%d%s", op, in.A, in.B, in.C, kmask(in.M))

	case KNot:
		return fmt.Sprintf("%-16s b%d, b%d%s", op, in.A, in.B, kmask(in.M))
	case KEqBool, KNeBool, KAndBool, KOrBool:
		return fmt.Sprintf("%-16s b%d, b%d, b%d%s", op, in.A, in.B, in.C, kmask(in.M))

	case KSqrt, KAbs:
		return fmt.Sprintf("%-16s f%d, f%d%s", op, in.A, in.B, kmask(in.M))

	case KMaskAnd, KMaskAndNot:
		return fmt.Sprintf("%-16s b%d, b%d, b%d", op, in.A, in.B, in.C)
	case KStep:
		return fmt.Sprintf("%-16s%s", op, kmask(in.M))
	}
	return fmt.Sprintf("%-16s A=%d B=%d C=%d Imm=%d", op, in.A, in.B, in.C, in.Imm)
}
