// kernel.go — the SPMD vector-kernel IR and its classifier/lowering:
// the fourth execution path's compile-time half.
//
// When a forall has the exact shape transform.StripMine emits — one
// helper call per lane, the helper skipping k links along one pointer
// field and guarding the body on NULL — and the guarded body is
// straight-line arithmetic over the element's own data fields (no
// calls, no allocation, no pointer-chasing beyond the element;
// conditionals allowed), the strip admits a data-layout transform:
// gather the touched fields AoS→SoA into flat slabs, execute the body
// as fused whole-slab operations with execution masks for `if`
// branches, and scatter the stored fields back at the barrier.
// classifyKernel recognizes the pattern during lowering and attaches
// the Kernel to its ForallSite; rejected strips carry a concrete
// VectorReason instead, which transform's planner surfaces per loop.
// The run-time half (slab pools, mask evaluation, the transactional
// fallback) lives in internal/interp's kernel engine.
//
// Accounting parity: kernels only run in Real mode (the interpreter's
// dispatcher delegates Simulated strips to simForall), where the cost
// model is zero and the only observable counters of a print-free,
// allocation-free body are statement steps. The strip prologue (the
// helper call, the skip loop, the NULL guard) contributes 3+2k steps
// for lane k — charged in closed form by the runner — and every
// guarded-body statement lowers to one KStep over its governing mask,
// so per-strip step totals are bit-identical to the scalar engines'.
package bytecode

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/lang"
)

// KOp is a vector-kernel opcode. Except for the prologue broadcasts
// and the mask combiners, every op is elementwise over the strip's
// lanes and executes only where its mask slab (KInstr.M) is true.
type KOp uint8

// Kernel opcodes. Register operands (A, B, C) are slab indices within
// the bank the mnemonic names; M is the governing bool-slab mask
// (kNoMask on the unmasked ops).
const (
	kopInvalid KOp = iota

	// Prologue broadcasts: fill a whole slab from one caller scalar,
	// read through the strip call site's argument list (B is the
	// argument index). Unmasked — they run once per strip, serially,
	// during the gather phase.
	KParamInt  // I[A][*] = caller int arg B
	KParamReal // F[A][*] = caller real arg B
	KParamBool // B[A][*] = caller bool arg B

	// Masked constants and moves.
	KConstInt  // I[A][i] = Imm
	KConstReal // F[A][i] = Fv
	KConstBool // B[A][i] = Imm != 0
	KMovInt    // I[A][i] = I[B][i]
	KMovReal   // F[A][i] = F[B][i]
	KMovBool   // B[A][i] = B[B][i]
	KIntToReal // F[A][i] = float64(I[B][i])

	// Integer ALU.
	KAddInt // I[A][i] = I[B][i] + I[C][i]
	KSubInt
	KMulInt
	KDivInt // faults the strip on a zero divisor in an active lane
	KModInt // faults the strip on a zero divisor in an active lane
	KNegInt // I[A][i] = -I[B][i]
	KEqInt  // B[A][i] = I[B][i] == I[C][i]
	KNeInt
	KLtInt
	KLeInt
	KGtInt
	KGeInt

	// Real ALU (IEEE, fault-free).
	KAddReal // F[A][i] = F[B][i] + F[C][i]
	KSubReal
	KMulReal
	KDivReal
	KNegReal // F[A][i] = -F[B][i]
	KEqReal  // B[A][i] = F[B][i] == F[C][i]
	KNeReal
	KLtReal
	KLeReal
	KGtReal
	KGeReal

	// Bool ops. KAndBool/KOrBool evaluate both sides eagerly — sound
	// because classified bodies are pure, and a spurious divide fault
	// on a lane the scalar path would short-circuit past only costs
	// the transactional fallback, never correctness.
	KNot    // B[A][i] = !B[B][i]
	KEqBool // B[A][i] = B[B][i] == B[C][i]
	KNeBool
	KAndBool // B[A][i] = B[B][i] && B[C][i]
	KOrBool  // B[A][i] = B[B][i] || B[C][i]

	// Builtins.
	KSqrt // F[A][i] = sqrt(F[B][i])
	KAbs  // F[A][i] = abs(F[B][i])

	// Mask combiners (unmasked, full lane range; a false parent mask
	// forces false regardless of the cond slab's garbage lanes).
	KMaskAnd    // B[A][i] = B[B][i] && B[C][i]
	KMaskAndNot // B[A][i] = B[B][i] && !B[C][i]

	// Accounting: one statement executed on every active lane.
	KStep // steps += popcount(B[M])

	kopCount
)

// kNoMask marks an unmasked instruction (prologue, mask combiners).
const kNoMask = int32(-1)

// KInstr is one kernel instruction. A, B, C are slab indices; M the
// mask slab (kNoMask when unmasked).
type KInstr struct {
	Op      KOp
	A, B, C int32
	M       int32
	Imm     int64
	Fv      float64
}

// KField is one element field the kernel touches, gathered into (and,
// when Stored, scattered back from) a slab. Every touched field is
// gathered — including store-only fields — so the scatter can write
// all root-active lanes unconditionally: lanes an `if` masked off
// write back the value they were gathered with.
type KField struct {
	Off    int32  // offset within the element's data fields
	Name   string // field name (disassembly)
	Bank   Bank   // BankInt, BankReal, or BankBool
	Slab   int32  // slab index within the bank
	Stored bool   // written by the body: scattered at the barrier
}

// Kernel is one vectorizable strip's lowered form, attached to its
// ForallSite by classifyKernel.
type Kernel struct {
	// HelperIdx is the strip helper's function index; CallSite indexes
	// the enclosing Func.Calls entry of the per-lane helper call, whose
	// Args are the caller registers the prologue broadcasts read (and
	// Args[1] the chain-start element pointer).
	HelperIdx int32
	CallSite  int32
	// AdvanceOff is the pointer-field offset the skip loop advances
	// along (the gather phase walks this chain once for the strip).
	AdvanceOff  int32
	AdvanceName string

	Fields []KField
	// Slab counts per bank; RootMask is the bool slab holding the
	// lane-is-non-NULL mask the guarded body executes under.
	NInt, NReal, NBool int
	RootMask           int32

	Prologue []KInstr // param broadcasts, run serially at gather
	Code     []KInstr // the guarded body, elementwise and masked
	// NSteps counts KStep instructions in Code: the per-lane upper
	// bound used for the runner's conservative step-budget pre-check.
	NSteps int32
}

// rejectErr is a classifier rejection: its text is the concrete
// per-loop VectorReason the plan report surfaces.
type rejectErr string

func (e rejectErr) Error() string { return string(e) }

const kNotStrip = rejectErr("loop body is not a strip-mined iteration pattern")

// classifyKernel runs after a forall body has been lowered (nCalls is
// len(f.Calls) before the body). It returns the strip's kernel, or the
// reason it is not vectorizable.
func (b *builder) classifyKernel(s *compile.For, nCalls int) (*Kernel, string) {
	k, err := b.tryKernel(s, nCalls)
	if err != nil {
		return nil, err.Error()
	}
	return k, ""
}

func (b *builder) tryKernel(s *compile.For, nCalls int) (*Kernel, error) {
	// The strip shape: the forall body is exactly one call
	// helper(_pe, elem, frees...) ...
	if len(s.Body) != 1 {
		return nil, kNotStrip
	}
	cs, ok := s.Body[0].(*compile.CallStmt)
	if !ok {
		return nil, kNotStrip
	}
	call := cs.Call
	if call.Builtin != compile.NotBuiltin || len(call.Args) < 2 || len(b.f.Calls) != nCalls+1 {
		return nil, kNotStrip
	}
	pe, ok := call.Args[0].(*compile.SlotRef)
	if !ok || pe.Slot != s.Slot {
		return nil, kNotStrip
	}
	ind, ok := call.Args[1].(*compile.SlotRef)
	if !ok || !isPtr(ind.Type()) {
		return nil, kNotStrip
	}
	callee := b.cp.Funcs[call.FuncIdx]
	if len(callee.Params) != len(call.Args) || len(callee.Body) != 2 {
		return nil, kNotStrip
	}
	peSlot := callee.Params[0].Slot
	elemSlot := callee.Params[1].Slot

	// ... whose body is the skip loop `for _k = 1 to _pe { elem =
	// elem->adv }` followed by the NULL guard `if elem != NULL {...}`.
	skip, ok := callee.Body[0].(*compile.For)
	if !ok || skip.Parallel || len(skip.Body) != 1 {
		return nil, kNotStrip
	}
	fromLit, ok := skip.From.(*compile.IntLit)
	if !ok || fromLit.Val != 1 {
		return nil, kNotStrip
	}
	toRef, ok := skip.To.(*compile.SlotRef)
	if !ok || toRef.Slot != peSlot {
		return nil, kNotStrip
	}
	adv, ok := skip.Body[0].(*compile.AssignSlot)
	if !ok || adv.Slot != elemSlot {
		return nil, kNotStrip
	}
	advLoad, ok := adv.RHS.(*compile.Load)
	if !ok || !advLoad.IsPtr || advLoad.Index != nil {
		return nil, kNotStrip
	}
	advBase, ok := advLoad.X.(*compile.SlotRef)
	if !ok || advBase.Slot != elemSlot {
		return nil, kNotStrip
	}
	guard, ok := callee.Body[1].(*compile.If)
	if !ok || len(guard.Else) != 0 {
		return nil, kNotStrip
	}
	cond, ok := guard.Cond.(*compile.Bin)
	if !ok || cond.Op != lang.NEQ {
		return nil, kNotStrip
	}
	condX, ok := cond.X.(*compile.SlotRef)
	if !ok || condX.Slot != elemSlot {
		return nil, kNotStrip
	}
	if _, ok := cond.Y.(*compile.NullLit); !ok {
		return nil, kNotStrip
	}

	kb := &kbuilder{
		callee:   callee,
		args:     call.Args,
		peSlot:   peSlot,
		elemSlot: elemSlot,
		slotSlab: make([]int32, callee.Slots),
		slotBank: make([]Bank, callee.Slots),
		fieldIdx: map[int32]int32{},
		k: &Kernel{
			HelperIdx:   int32(call.FuncIdx),
			CallSite:    int32(nCalls),
			AdvanceOff:  int32(advLoad.Off),
			AdvanceName: advLoad.Field,
		},
	}
	for i := range kb.slotSlab {
		kb.slotSlab[i] = -1
	}
	if err := kb.lower(guard.Then); err != nil {
		return nil, err
	}
	return kb.k, nil
}

// ---------------------------------------------------------------------------
// Lowering

// kbuilder lowers one guarded strip body to kernel code. It mirrors
// the scalar builder's register discipline over slabs: variable slots
// and gathered fields own permanent slabs, expression temporaries
// reuse a per-statement watermark, and `if` masks are permanent (they
// outlive the statement that computes them).
type kbuilder struct {
	callee   *compile.Func
	args     []compile.Expr // strip call-site arguments, one per param
	peSlot   int
	elemSlot int
	k        *Kernel

	slotSlab []int32 // variable slot -> slab (-1: not vectorizable as data)
	slotBank []Bank
	fieldIdx map[int32]int32 // data-field offset -> index into k.Fields

	permTop [6]int32
	tempTop [6]int32
	maxTop  [6]int32
}

func (kb *kbuilder) allocPerm(bank Bank) int32 {
	s := kb.permTop[bank]
	kb.permTop[bank]++
	if kb.tempTop[bank] < kb.permTop[bank] {
		kb.tempTop[bank] = kb.permTop[bank]
	}
	if kb.permTop[bank] > kb.maxTop[bank] {
		kb.maxTop[bank] = kb.permTop[bank]
	}
	return s
}

func (kb *kbuilder) temp(bank Bank) int32 {
	s := kb.tempTop[bank]
	kb.tempTop[bank]++
	if kb.tempTop[bank] > kb.maxTop[bank] {
		kb.maxTop[bank] = kb.tempTop[bank]
	}
	return s
}

func (kb *kbuilder) resetTemps() { kb.tempTop = kb.permTop }

// kDstBank gives each value-producing op's destination bank; ops with
// no register destination (KStep, the mask combiners) are absent.
func kDstBank(op KOp) (Bank, bool) {
	switch op {
	case KConstInt, KMovInt, KAddInt, KSubInt, KMulInt, KDivInt, KModInt, KNegInt:
		return BankInt, true
	case KConstReal, KMovReal, KIntToReal, KAddReal, KSubReal, KMulReal, KDivReal, KNegReal, KSqrt, KAbs:
		return BankReal, true
	case KEqInt, KNeInt, KLtInt, KLeInt, KGtInt, KGeInt,
		KEqReal, KNeReal, KLtReal, KLeReal, KGtReal, KGeReal,
		KConstBool, KMovBool, KNot, KEqBool, KNeBool, KAndBool, KOrBool:
		return BankBool, true
	}
	return 0, false
}

// emit appends one instruction, dropping the execution mask when it is
// provably unobservable: a temp destination is consumed within the same
// statement under the same mask and never read by a masked-off lane, so
// any op that cannot fault runs whole-slab. Int division and modulus
// keep their masks — the per-lane zero check must only see active
// lanes. (During statement codegen every permanent slab is already
// allocated — masks before the condition, fields and variables in
// pre-passes — so dst >= permTop identifies a temp exactly.)
func (kb *kbuilder) emit(in KInstr) {
	if in.M != kNoMask && in.Op != KDivInt && in.Op != KModInt {
		if bank, ok := kDstBank(in.Op); ok && in.A >= kb.permTop[bank] {
			in.M = kNoMask
		}
	}
	kb.k.Code = append(kb.k.Code, in)
}

func (kb *kbuilder) lower(body []compile.Stmt) error {
	kb.k.RootMask = kb.allocPerm(BankBool)
	// Broadcast the helper's scalar free-variable parameters. _pe and
	// the element pointer are positional (the lane index and the gather
	// chain); node or string extras stay unslabbed and reject on use.
	// The kernel never executes the call site's argument expressions,
	// so each extra argument must be a shape it can reproduce without
	// evaluation: a variable (broadcast the caller register) or a
	// literal (broadcast the constant). Anything else — a field load, a
	// nested call — could fault or cost steps when the scalar engines
	// evaluate it per lane, and rejects the strip.
	for i, p := range kb.callee.Params {
		bank := BankOf(p.Type)
		kb.slotBank[p.Slot] = bank
		if i < 2 {
			continue
		}
		arg := kb.args[i]
		switch bank {
		case BankInt, BankReal, BankBool:
		default:
			if _, ok := arg.(*compile.SlotRef); !ok {
				return rejectErr("strip call argument is not a variable or literal")
			}
			continue
		}
		in := KInstr{A: kb.allocPerm(bank), M: kNoMask}
		kb.slotSlab[p.Slot] = in.A
		switch a := arg.(type) {
		case *compile.SlotRef:
			switch bank {
			case BankInt:
				in.Op = KParamInt
			case BankReal:
				in.Op = KParamReal
			case BankBool:
				in.Op = KParamBool
			}
			in.B = int32(i)
		case *compile.IntLit:
			if bank == BankReal {
				in.Op, in.Fv = KConstReal, float64(a.Val)
			} else {
				in.Op, in.Imm = KConstInt, a.Val
			}
		case *compile.RealLit:
			in.Op, in.Fv = KConstReal, a.Val
		case *compile.BoolLit:
			in.Op = KConstBool
			if a.Val {
				in.Imm = 1
			}
		default:
			return rejectErr("strip call argument is not a variable or literal")
		}
		kb.k.Prologue = append(kb.k.Prologue, in)
	}
	// Pre-passes allocate every declaration's slab and every touched
	// field's slab before code generation, so no permanent slab is
	// ever allocated mid-statement (above a live temporary).
	if err := kb.assignSlabs(body); err != nil {
		return err
	}
	if err := kb.scanFieldStmts(body); err != nil {
		return err
	}
	if err := kb.stmts(body, kb.k.RootMask); err != nil {
		return err
	}
	kb.k.NInt = int(kb.maxTop[BankInt])
	kb.k.NReal = int(kb.maxTop[BankReal])
	kb.k.NBool = int(kb.maxTop[BankBool])
	return nil
}

// assignSlabs gives every variable declared in the guarded body a
// permanent slab (lane-local storage). Loop bodies are skipped: the
// statement pass rejects the loop before anything inside it is used.
func (kb *kbuilder) assignSlabs(stmts []compile.Stmt) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *compile.Block:
			if err := kb.assignSlabs(s.Stmts); err != nil {
				return err
			}
		case *compile.VarSet:
			switch bank := BankOf(s.Type); bank {
			case BankInt, BankReal, BankBool:
				kb.slotSlab[s.Slot] = kb.allocPerm(bank)
				kb.slotBank[s.Slot] = bank
			case BankStr:
				return rejectErr("string-valued expression")
			default:
				if _, ok := s.Init.(*compile.New); ok {
					return rejectErr("allocates")
				}
				return rejectErr("pointer-chasing access")
			}
		case *compile.If:
			if err := kb.assignSlabs(s.Then); err != nil {
				return err
			}
			if err := kb.assignSlabs(s.Else); err != nil {
				return err
			}
		}
	}
	return nil
}

// scanFieldStmts registers every valid element-field access so field
// slabs exist before code generation. Invalid accesses are left for
// the statement pass, which rejects them with a concrete reason.
func (kb *kbuilder) scanFieldStmts(stmts []compile.Stmt) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *compile.Block:
			if err := kb.scanFieldStmts(s.Stmts); err != nil {
				return err
			}
		case *compile.VarSet:
			if s.Init != nil {
				if err := kb.scanFieldExpr(s.Init); err != nil {
					return err
				}
			}
		case *compile.AssignSlot:
			if err := kb.scanFieldExpr(s.RHS); err != nil {
				return err
			}
		case *compile.StoreField:
			if base, ok := s.Base.(*compile.SlotRef); ok && base.Slot == kb.elemSlot && !s.IsPtr && s.Index == nil {
				fi, err := kb.field(s.Off, s.Field, BankOf(s.Type))
				if err != nil {
					return err
				}
				kb.k.Fields[fi].Stored = true
			}
			if err := kb.scanFieldExpr(s.RHS); err != nil {
				return err
			}
		case *compile.If:
			if err := kb.scanFieldExpr(s.Cond); err != nil {
				return err
			}
			if err := kb.scanFieldStmts(s.Then); err != nil {
				return err
			}
			if err := kb.scanFieldStmts(s.Else); err != nil {
				return err
			}
		case *compile.CallStmt:
			for _, a := range s.Call.Args {
				if err := kb.scanFieldExpr(a); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (kb *kbuilder) scanFieldExpr(e compile.Expr) error {
	switch e := e.(type) {
	case *compile.Load:
		if base, ok := e.X.(*compile.SlotRef); ok && base.Slot == kb.elemSlot && !e.IsPtr && e.Index == nil {
			_, err := kb.field(e.Off, e.Field, BankOf(e.Type()))
			return err
		}
		return kb.scanFieldExpr(e.X)
	case *compile.Bin:
		if err := kb.scanFieldExpr(e.X); err != nil {
			return err
		}
		return kb.scanFieldExpr(e.Y)
	case *compile.Un:
		return kb.scanFieldExpr(e.X)
	case *compile.Call:
		for _, a := range e.Args {
			if err := kb.scanFieldExpr(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// field registers one element data field, allocating its slab on first
// touch. Offsets are unique across an element's data fields, so the
// offset alone keys the table.
func (kb *kbuilder) field(off int, name string, bank Bank) (int, error) {
	switch bank {
	case BankInt, BankReal, BankBool:
	case BankStr:
		return 0, rejectErr("string-valued expression")
	default:
		return 0, rejectErr("pointer-chasing access")
	}
	if i, ok := kb.fieldIdx[int32(off)]; ok {
		return int(i), nil
	}
	slab := kb.allocPerm(bank)
	kb.fieldIdx[int32(off)] = int32(len(kb.k.Fields))
	kb.k.Fields = append(kb.k.Fields, KField{Off: int32(off), Name: name, Bank: bank, Slab: slab})
	return len(kb.k.Fields) - 1, nil
}

// ---------------------------------------------------------------------------
// Statements

func (kb *kbuilder) stmts(stmts []compile.Stmt, m int32) error {
	for _, s := range stmts {
		if err := kb.stmt(s, m); err != nil {
			return err
		}
	}
	return nil
}

func (kb *kbuilder) stmt(s compile.Stmt, m int32) error {
	kb.resetTemps()
	// Every statement charges one step per active lane, mirroring the
	// scalar engines' per-statement OpStep (blocks charge one too, then
	// each child charges its own).
	kb.emit(KInstr{Op: KStep, M: m})
	kb.k.NSteps++
	switch s := s.(type) {
	case *compile.Block:
		return kb.stmts(s.Stmts, m)

	case *compile.VarSet:
		dst := kb.slotSlab[s.Slot]
		if s.Init == nil {
			switch kb.slotBank[s.Slot] {
			case BankInt:
				kb.emit(KInstr{Op: KConstInt, A: dst, M: m})
			case BankReal:
				kb.emit(KInstr{Op: KConstReal, A: dst, M: m})
			case BankBool:
				kb.emit(KInstr{Op: KConstBool, A: dst, M: m})
			}
			return nil
		}
		return kb.assign(dst, s.Type, s.Init, m)

	case *compile.AssignSlot:
		dst, _, err := kb.slabFor(s.Slot)
		if err != nil {
			return err
		}
		return kb.assign(dst, s.Type, s.RHS, m)

	case *compile.StoreField:
		return kb.store(s, m)

	case *compile.If:
		// Mask slabs are permanent and allocated before the condition's
		// temporaries, so they can never collide with a live temp.
		thenM := kb.allocPerm(BankBool)
		elseM := kNoMask
		if len(s.Else) > 0 {
			elseM = kb.allocPerm(BankBool)
		}
		cond, bank, err := kb.operand(s.Cond, m)
		if err != nil {
			return err
		}
		if bank != BankBool {
			return kNotStrip
		}
		kb.emit(KInstr{Op: KMaskAnd, A: thenM, B: m, C: cond, M: kNoMask})
		if elseM != kNoMask {
			kb.emit(KInstr{Op: KMaskAndNot, A: elseM, B: m, C: cond, M: kNoMask})
		}
		if err := kb.stmts(s.Then, thenM); err != nil {
			return err
		}
		if elseM != kNoMask {
			return kb.stmts(s.Else, elseM)
		}
		return nil

	case *compile.While:
		return rejectErr("body contains a loop")
	case *compile.For:
		return rejectErr("body contains a loop")
	case *compile.Return:
		return rejectErr("body returns")

	case *compile.CallStmt:
		e := s.Call
		switch e.Builtin {
		case compile.BuiltinPrint:
			return rejectErr("body prints")
		case compile.BuiltinRand:
			return rejectErr("body calls rand()")
		case compile.BuiltinSqrt, compile.BuiltinAbs:
			// Evaluated for effect only; the result is discarded.
			_, _, err := kb.operand(e, m)
			return err
		}
		return rejectErr(fmt.Sprintf("body calls function %s", e.Name))
	}
	return kNotStrip
}

func (kb *kbuilder) assign(dst int32, typ lang.Type, e compile.Expr, m int32) error {
	if isReal(typ) && !isReal(e.Type()) {
		return kb.evalIntoReal(e, dst, m)
	}
	return kb.evalInto(e, dst, m)
}

func (kb *kbuilder) store(s *compile.StoreField, m int32) error {
	if s.IsPtr {
		return rejectErr("pointer-chasing access")
	}
	if s.Index != nil {
		return rejectErr("indexed field access")
	}
	base, ok := s.Base.(*compile.SlotRef)
	if !ok || base.Slot != kb.elemSlot {
		return rejectErr("pointer-chasing access")
	}
	fi, err := kb.field(s.Off, s.Field, BankOf(s.Type))
	if err != nil {
		return err
	}
	return kb.assign(kb.k.Fields[fi].Slab, s.Type, s.RHS, m)
}

// ---------------------------------------------------------------------------
// Expressions

// slabFor resolves a variable slot to its slab, rejecting the slots a
// kernel cannot model as lane-local data.
func (kb *kbuilder) slabFor(slot int) (int32, Bank, error) {
	if slot == kb.peSlot {
		return 0, 0, rejectErr("uses the strip PE index")
	}
	if slot == kb.elemSlot {
		return 0, 0, rejectErr("pointer-chasing access")
	}
	if kb.slotSlab[slot] < 0 {
		switch kb.slotBank[slot] {
		case BankNode:
			return 0, 0, rejectErr("pointer-chasing access")
		case BankStr:
			return 0, 0, rejectErr("string-valued expression")
		}
		return 0, 0, kNotStrip
	}
	return kb.slotSlab[slot], kb.slotBank[slot], nil
}

// loadSlab resolves an element data-field load to the field's slab.
func (kb *kbuilder) loadSlab(e *compile.Load) (int32, Bank, error) {
	if e.IsPtr {
		return 0, 0, rejectErr("pointer-chasing access")
	}
	if e.Index != nil {
		return 0, 0, rejectErr("indexed field access")
	}
	base, ok := e.X.(*compile.SlotRef)
	if !ok || base.Slot != kb.elemSlot {
		return 0, 0, rejectErr("pointer-chasing access")
	}
	fi, err := kb.field(e.Off, e.Field, BankOf(e.Type()))
	if err != nil {
		return 0, 0, err
	}
	f := kb.k.Fields[fi]
	return f.Slab, f.Bank, nil
}

// operand yields a slab holding e's value: variables and element
// fields in place, everything else evaluated into a temporary.
func (kb *kbuilder) operand(e compile.Expr, m int32) (int32, Bank, error) {
	switch e := e.(type) {
	case *compile.SlotRef:
		return kb.slabFor(e.Slot)
	case *compile.Load:
		return kb.loadSlab(e)
	}
	bank := BankOf(e.Type())
	switch bank {
	case BankInt, BankReal, BankBool:
	case BankStr:
		return 0, 0, rejectErr("string-valued expression")
	default:
		return 0, 0, rejectErr("pointer-chasing access")
	}
	t := kb.temp(bank)
	if err := kb.evalInto(e, t, m); err != nil {
		return 0, 0, err
	}
	return t, bank, nil
}

// realOperand is operand for a real context: statically-int operands
// get the int→real widening here.
func (kb *kbuilder) realOperand(e compile.Expr, m int32) (int32, error) {
	if isReal(e.Type()) {
		sl, _, err := kb.operand(e, m)
		return sl, err
	}
	if lit, ok := e.(*compile.IntLit); ok {
		t := kb.temp(BankReal)
		kb.emit(KInstr{Op: KConstReal, A: t, Fv: float64(lit.Val), M: m})
		return t, nil
	}
	sl, _, err := kb.operand(e, m)
	if err != nil {
		return 0, err
	}
	t := kb.temp(BankReal)
	kb.emit(KInstr{Op: KIntToReal, A: t, B: sl, M: m})
	return t, nil
}

func (kb *kbuilder) evalIntoReal(e compile.Expr, dst int32, m int32) error {
	if isReal(e.Type()) {
		return kb.evalInto(e, dst, m)
	}
	if lit, ok := e.(*compile.IntLit); ok {
		kb.emit(KInstr{Op: KConstReal, A: dst, Fv: float64(lit.Val), M: m})
		return nil
	}
	sl, _, err := kb.operand(e, m)
	if err != nil {
		return err
	}
	kb.emit(KInstr{Op: KIntToReal, A: dst, B: sl, M: m})
	return nil
}

func kmov(bank Bank) KOp {
	switch bank {
	case BankInt:
		return KMovInt
	case BankReal:
		return KMovReal
	}
	return KMovBool
}

func (kb *kbuilder) evalInto(e compile.Expr, dst int32, m int32) error {
	switch e := e.(type) {
	case *compile.SlotRef:
		sl, bank, err := kb.slabFor(e.Slot)
		if err != nil {
			return err
		}
		kb.emit(KInstr{Op: kmov(bank), A: dst, B: sl, M: m})
		return nil
	case *compile.Load:
		sl, bank, err := kb.loadSlab(e)
		if err != nil {
			return err
		}
		kb.emit(KInstr{Op: kmov(bank), A: dst, B: sl, M: m})
		return nil

	case *compile.IntLit:
		kb.emit(KInstr{Op: KConstInt, A: dst, Imm: e.Val, M: m})
		return nil
	case *compile.RealLit:
		kb.emit(KInstr{Op: KConstReal, A: dst, Fv: e.Val, M: m})
		return nil
	case *compile.BoolLit:
		imm := int64(0)
		if e.Val {
			imm = 1
		}
		kb.emit(KInstr{Op: KConstBool, A: dst, Imm: imm, M: m})
		return nil
	case *compile.StrLit:
		return rejectErr("string-valued expression")
	case *compile.NullLit:
		return rejectErr("pointer-chasing access")
	case *compile.New:
		return rejectErr("allocates")

	case *compile.Call:
		switch e.Builtin {
		case compile.BuiltinSqrt:
			r, err := kb.realOperand(e.Args[0], m)
			if err != nil {
				return err
			}
			kb.emit(KInstr{Op: KSqrt, A: dst, B: r, M: m})
			return nil
		case compile.BuiltinAbs:
			r, err := kb.realOperand(e.Args[0], m)
			if err != nil {
				return err
			}
			kb.emit(KInstr{Op: KAbs, A: dst, B: r, M: m})
			return nil
		case compile.BuiltinRand:
			return rejectErr("body calls rand()")
		case compile.BuiltinPrint:
			return rejectErr("body prints")
		}
		return rejectErr(fmt.Sprintf("body calls function %s", e.Name))

	case *compile.Bin:
		return kb.bin(e, dst, m)

	case *compile.Un:
		switch e.Op {
		case lang.MINUS:
			if isReal(e.X.Type()) {
				r, err := kb.realOperand(e.X, m)
				if err != nil {
					return err
				}
				kb.emit(KInstr{Op: KNegReal, A: dst, B: r, M: m})
				return nil
			}
			sl, _, err := kb.operand(e.X, m)
			if err != nil {
				return err
			}
			kb.emit(KInstr{Op: KNegInt, A: dst, B: sl, M: m})
			return nil
		case lang.NOT:
			sl, _, err := kb.operand(e.X, m)
			if err != nil {
				return err
			}
			kb.emit(KInstr{Op: KNot, A: dst, B: sl, M: m})
			return nil
		}
		return kNotStrip
	}
	return kNotStrip
}

func (kb *kbuilder) bin(e *compile.Bin, dst int32, m int32) error {
	op := e.Op
	if op == lang.AND || op == lang.OR {
		rx, _, err := kb.operand(e.X, m)
		if err != nil {
			return err
		}
		ry, _, err := kb.operand(e.Y, m)
		if err != nil {
			return err
		}
		kop := KAndBool
		if op == lang.OR {
			kop = KOrBool
		}
		kb.emit(KInstr{Op: kop, A: dst, B: rx, C: ry, M: m})
		return nil
	}

	xt, yt := e.X.Type(), e.Y.Type()
	switch {
	case isStr(xt) || isStr(yt):
		return rejectErr("string-valued expression")
	case isPtr(xt) || isPtr(yt):
		return rejectErr("pointer-chasing access")
	case isReal(xt) || isReal(yt):
		return kb.realBin(e, dst, m)
	case isBool(xt) && isBool(yt):
		rx, _, err := kb.operand(e.X, m)
		if err != nil {
			return err
		}
		ry, _, err := kb.operand(e.Y, m)
		if err != nil {
			return err
		}
		kop := KEqBool
		if op == lang.NEQ {
			kop = KNeBool
		} else if op != lang.EQ {
			return kNotStrip
		}
		kb.emit(KInstr{Op: kop, A: dst, B: rx, C: ry, M: m})
		return nil
	default:
		return kb.intBin(e, dst, m)
	}
}

func (kb *kbuilder) realBin(e *compile.Bin, dst int32, m int32) error {
	rx, err := kb.realOperand(e.X, m)
	if err != nil {
		return err
	}
	ry, err := kb.realOperand(e.Y, m)
	if err != nil {
		return err
	}
	var op KOp
	switch e.Op {
	case lang.PLUS:
		op = KAddReal
	case lang.MINUS:
		op = KSubReal
	case lang.STAR:
		op = KMulReal
	case lang.SLASH:
		op = KDivReal
	case lang.EQ:
		op = KEqReal
	case lang.NEQ:
		op = KNeReal
	case lang.LT:
		op = KLtReal
	case lang.LE:
		op = KLeReal
	case lang.GT:
		op = KGtReal
	case lang.GE:
		op = KGeReal
	default:
		return kNotStrip
	}
	kb.emit(KInstr{Op: op, A: dst, B: rx, C: ry, M: m})
	return nil
}

func (kb *kbuilder) intBin(e *compile.Bin, dst int32, m int32) error {
	rx, _, err := kb.operand(e.X, m)
	if err != nil {
		return err
	}
	ry, _, err := kb.operand(e.Y, m)
	if err != nil {
		return err
	}
	var op KOp
	switch e.Op {
	case lang.PLUS:
		op = KAddInt
	case lang.MINUS:
		op = KSubInt
	case lang.STAR:
		op = KMulInt
	case lang.SLASH:
		op = KDivInt
	case lang.PERCENT:
		op = KModInt
	case lang.EQ:
		op = KEqInt
	case lang.NEQ:
		op = KNeInt
	case lang.LT:
		op = KLtInt
	case lang.LE:
		op = KLeInt
	case lang.GT:
		op = KGtInt
	case lang.GE:
		op = KGeInt
	default:
		return kNotStrip
	}
	kb.emit(KInstr{Op: op, A: dst, B: rx, C: ry, M: m})
	return nil
}
