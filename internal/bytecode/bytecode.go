// Package bytecode lowers the slot-resolved IR of internal/compile
// into a flat instruction array executed by internal/interp's
// switch-loop VM — the third execution engine, behind the closure
// engine and the tree-walking oracle.
//
// Where the closure engine still pays a Go closure call per IR node
// and boxes every intermediate in an interface-free but Kind-tagged
// Value, the bytecode form is a []Instr per function plus *typed
// register banks*: every variable slot and expression temporary lives
// in a per-function []int64, []float64, []bool, []string, or []*Node
// bank chosen from its static type (sound because the interpreter's
// coercion rule keeps runtime kinds equal to static types). Hot
// arithmetic therefore runs as direct slice indexing over unboxed
// machine words — no closure dispatch, no Value construction, no
// interface traffic. The register-file layout follows the
// Vars{Ints, Floats, ...} shape of the interpreter literature (see
// SNIPPETS.md's rpyth exemplar).
//
// # Cost-accounting parity
//
// The lowering must let the VM reproduce the walker's Simulated-mode
// cycle accounting bit-for-bit at every success-path quiescent point.
// CostModel amounts are per-Config, so instructions cannot carry
// precomputed cycle totals; instead each instruction charges its own
// operation cost at run time, and the D operand carries the number of
// folded VarAccess charges (slot operands read directly from their
// home registers, so the read's VarAccess charge is folded into the
// consuming instruction rather than spending an instruction on it).
// Within one statement the charge *order* may differ from the closure
// engine's, but per-statement totals are identical, which is the
// granularity at which cycles are observable (simForall rewinds at
// iteration boundaries; Stats is read at quiescence).
//
// A Program is immutable once Compile returns, like the compile IR it
// is built from: one Program is shared without locks by every
// interpreter and worker fork executing it.
package bytecode

import (
	"fmt"

	"repro/internal/adds"
	"repro/internal/compile"
	"repro/internal/lang"
)

// Bank identifies a typed register bank within a function frame.
type Bank uint8

// Register banks. BankNone marks an absent register (a discarded call
// result).
const (
	BankNone Bank = iota
	BankInt       // []int64
	BankReal      // []float64
	BankBool      // []bool
	BankStr       // []string
	BankNode      // []*interp Node
)

// String names the bank's register prefix in disassembly ("i", "f",
// "b", "s", "n").
func (b Bank) String() string {
	switch b {
	case BankInt:
		return "i"
	case BankReal:
		return "f"
	case BankBool:
		return "b"
	case BankStr:
		return "s"
	case BankNode:
		return "n"
	}
	return "_"
}

// Reg addresses one register: a bank and an index within it.
type Reg struct {
	Bank Bank
	Idx  int32
}

// Op is a VM opcode.
type Op uint8

// Opcodes. Unless noted otherwise every instruction charges
// D × VarAccess cycles (its folded slot-read/assign charges) on top of
// the operation cost listed.
const (
	opInvalid Op = iota

	// Constants and moves (no operation cost beyond the folded D).
	OpConstInt  // I[A] = Imm
	OpConstReal // F[A] = Fv
	OpConstBool // B[A] = (Imm != 0)
	OpConstStr  // S[A] = Strs[B]
	OpConstNull // N[A] = nil
	OpMovInt    // I[A] = I[B]
	OpMovReal   // F[A] = F[B]
	OpMovBool   // B[A] = B[B]
	OpMovStr    // S[A] = S[B]
	OpMovNode   // N[A] = N[B]
	OpIntToReal // F[A] = float64(I[B]) (static int→real coercion)

	// Control flow.
	OpStep    // one statement against the MaxSteps/ctx guard
	OpJump    // pc = Imm
	OpBr      // charge Branch; if !B[A] pc = Imm
	OpScAnd   // charge IntOp; if !B[A] pc = Imm (short-circuit AND)
	OpScOr    // charge IntOp; if B[A] pc = Imm (short-circuit OR)
	OpForHead // if I[A] > I[B] pc = Imm else I[C] = I[A]
	OpForTail // charge Branch+IntOp; step; I[A]++; pc = Imm
	OpForall  // run Foralls[A] per mode; pc = site.BodyEnd
	OpCall    // invoke Calls[A]; charge CallOver after the depth guard
	OpPrint   // print Prints[A] (output budget applies)
	OpReturnVoid
	OpReturnInt  // ret = I[A]
	OpReturnReal // ret = F[A]
	OpReturnBool // ret = B[A]
	OpReturnStr  // ret = S[A]
	OpReturnNode // ret = N[A]

	// Integer ALU (charge IntOp).
	OpAddInt // I[A] = I[B] + I[C]
	OpSubInt
	OpMulInt
	OpDivInt // error on I[C] == 0
	OpModInt // error on I[C] == 0
	OpNegInt // I[A] = -I[B]
	OpEqInt  // B[A] = I[B] == I[C]
	OpNeInt
	OpLtInt
	OpLeInt
	OpGtInt
	OpGeInt

	// Real ALU (charge RealOp).
	OpAddReal // F[A] = F[B] + F[C]
	OpSubReal
	OpMulReal
	OpDivReal // IEEE semantics, no zero check
	OpNegReal
	OpEqReal // B[A] = F[B] == F[C]
	OpNeReal
	OpLtReal
	OpLeReal
	OpGtReal
	OpGeReal

	// Bool / string / pointer ops (charge IntOp).
	OpNot    // B[A] = !B[B]
	OpEqBool // B[A] = B[B] == B[C]
	OpNeBool
	OpEqStr // B[A] = S[B] == S[C]
	OpNeStr
	OpEqNode // B[A] = N[B] == N[C]
	OpNeNode

	// Heap.
	OpNew      // N[A] = allocNode(News[B]) (charge Alloc, budget check)
	OpLoadInt  // null check; charge FieldLoad; I[A] = N[B].vals[C].I
	OpLoadReal // ... .F
	OpLoadBool // ... .B
	// OpLoadNode reads pointer field C (index 0) of N[B] into N[A]:
	// a NULL base yields NULL without charging FieldLoad (speculative
	// traversability, §3.2) unless StrictNull.
	OpLoadNode
	// OpLoadNodeIdxBegin starts an indexed pointer load: on NULL base,
	// N[A] = nil and pc = Imm (skipping the index expression, which a
	// NULL base must not evaluate); otherwise charge FieldLoad and fall
	// through to the index code ending in OpLoadNodeIdx.
	OpLoadNodeIdxBegin // A=dst, B=base, C=name, Imm=join pc
	OpLoadNodeIdx      // N[A] = N[B].parr[off][I[C]], Imm=off<<32|name
	OpStoreInt         // null check; charge FieldStore; N[A].vals[C] = I[B]
	OpStoreReal
	OpStoreBool
	OpStoreNode // N[A].parr[C][0] = N[B], Imm=name (shape checks apply)
	// OpStoreNodeIdxBegin: null check and FieldStore charge before the
	// index expression evaluates (matching the closure engine's order);
	// the store completes in OpStoreNodeIdx.
	OpStoreNodeIdxBegin // A=base
	OpStoreNodeIdx      // N[A].parr[off][I[C]] = N[B], Imm=off<<32|name

	// Builtins.
	OpSqrt // charge Sqrt; F[A] = sqrt(F[B])
	OpAbs  // charge RealOp; F[A] = abs(F[B])
	OpRand // charge RealOp; F[A] = rand()

	opCount
)

// Instr is one VM instruction. Operand meaning is per-opcode (see the
// Op constants); D is the folded VarAccess charge count on every
// opcode.
type Instr struct {
	Op         Op
	A, B, C, D int32
	Imm        int64
	Fv         float64
}

// Param is one resolved parameter: bound into its home register at
// call time, after the interpreter's coercion rule.
type Param struct {
	Name string
	Type lang.Type
	Reg  Reg
}

// CallSite is one pre-resolved user-function call: argument source
// registers in the caller (already coerced to the parameter's bank by
// emitted conversions) and the caller register receiving the result
// (Bank BankNone when discarded or the callee is a procedure).
type CallSite struct {
	FuncIdx int32
	Args    []Reg
	Dst     Reg
}

// PrintSite is one print() call's argument registers, boxed to Values
// at run time (print allocates in every engine).
type PrintSite struct {
	Args []Reg
}

// ForallSite is one parallel loop: inclusive bounds and the loop
// variable as int-bank registers, and the body as a pc range within
// the function's code.
type ForallSite struct {
	From, To, Var      int32 // int-bank register indices
	BodyStart, BodyEnd int32 // [BodyStart, BodyEnd) within Code
	// Pos is the loop's source position — transform stamps its strips
	// with the original while loop's position, so this is the key the
	// planner's per-loop verdicts join on.
	Pos lang.Pos
	// Kernel is the strip's batched SPMD form when classifyKernel
	// proved the body vectorizable, nil otherwise; VectorReason then
	// says concretely why not (see kernel.go).
	Kernel       *Kernel
	VectorReason string
}

// NewSite is one `new T` allocation site.
type NewSite struct {
	TypeName string
	Decl     *adds.Decl
}

// Func is one function's flat code plus its register-file shape and
// constant pools.
type Func struct {
	Name   string
	Params []Param
	Result lang.Type // nil for procedures

	// Register bank sizes: slots first (each variable declaration's
	// home register), then expression temporaries and hidden loop
	// counters.
	NInt, NReal, NBool, NStr, NNode int

	Code []Instr
	// Pos is parallel to Code: the source position each instruction
	// reports in errors.
	Pos []lang.Pos

	Strs    []string // string literal pool
	Names   []string // field-name pool (error text, shape checks)
	News    []NewSite
	Calls   []CallSite
	Prints  []PrintSite
	Foralls []ForallSite
}

// Program is a lowered program: one Func per compile.Func, same order.
type Program struct {
	Funcs []*Func
	index map[string]int
}

// Func returns the named function, or nil.
func (p *Program) Func(name string) *Func {
	i, ok := p.index[name]
	if !ok {
		return nil
	}
	return p.Funcs[i]
}

// ---------------------------------------------------------------------------
// Lowering

// Compile lowers a compiled program to bytecode. Errors indicate IR
// the lowering does not model (they should not occur for checked
// programs) and are reported rather than panicked, so callers can fall
// back to the closure engine.
func Compile(cp *compile.Program) (*Program, error) {
	p := &Program{index: make(map[string]int, len(cp.Funcs))}
	for i, f := range cp.Funcs {
		p.index[f.Name] = i
		p.Funcs = append(p.Funcs, &Func{Name: f.Name, Result: f.Result})
	}
	for i, f := range cp.Funcs {
		if err := lowerFunc(cp, p.Funcs[i], f); err != nil {
			return nil, fmt.Errorf("bytecode: %s: %w", f.Name, err)
		}
	}
	return p, nil
}

// BankOf maps a static type to its register bank.
func BankOf(t lang.Type) Bank {
	switch t := t.(type) {
	case *lang.Scalar:
		switch t.Kind {
		case lang.KindInt:
			return BankInt
		case lang.KindReal:
			return BankReal
		case lang.KindBool:
			return BankBool
		case lang.KindString:
			return BankStr
		}
	case *lang.Pointer:
		return BankNode
	}
	return BankNone
}

func isReal(t lang.Type) bool {
	s, ok := t.(*lang.Scalar)
	return ok && s.Kind == lang.KindReal
}

func isPtr(t lang.Type) bool {
	_, ok := t.(*lang.Pointer)
	return ok
}

func isBool(t lang.Type) bool {
	s, ok := t.(*lang.Scalar)
	return ok && s.Kind == lang.KindBool
}

func isStr(t lang.Type) bool {
	s, ok := t.(*lang.Scalar)
	return ok && s.Kind == lang.KindString
}

type builder struct {
	cp      *compile.Program
	f       *Func
	slotReg []Reg // variable slot -> home register

	// permTop is the per-bank high-water mark of permanent registers
	// (slot homes and hidden loop counters); tempTop is the current
	// expression-temporary top, reset to permTop at each statement.
	permTop [6]int32
	tempTop [6]int32
	maxTop  [6]int32

	strIdx  map[string]int32
	nameIdx map[string]int32
}

func lowerFunc(cp *compile.Program, bf *Func, f *compile.Func) error {
	b := &builder{
		cp:      cp,
		f:       bf,
		slotReg: make([]Reg, f.Slots),
		strIdx:  map[string]int32{},
		nameIdx: map[string]int32{},
	}
	// Home registers: parameters first, then every declaration found
	// in the body (each declaration owns its slot; compile never
	// reuses slots across types).
	for _, prm := range f.Params {
		r := b.allocPerm(BankOf(prm.Type))
		b.slotReg[prm.Slot] = r
		bf.Params = append(bf.Params, Param{Name: prm.Name, Type: prm.Type, Reg: r})
	}
	if err := b.assignSlots(f.Body); err != nil {
		return err
	}
	if err := b.stmts(f.Body); err != nil {
		return err
	}
	bf.NInt = int(b.maxTop[BankInt])
	bf.NReal = int(b.maxTop[BankReal])
	bf.NBool = int(b.maxTop[BankBool])
	bf.NStr = int(b.maxTop[BankStr])
	bf.NNode = int(b.maxTop[BankNode])
	return nil
}

func (b *builder) allocPerm(bank Bank) Reg {
	if bank == BankNone {
		return Reg{}
	}
	r := Reg{Bank: bank, Idx: b.permTop[bank]}
	b.permTop[bank]++
	// Mid-statement permanent allocation (hidden loop counters) must
	// push the temp watermark along, or the next temp would collide.
	if b.tempTop[bank] < b.permTop[bank] {
		b.tempTop[bank] = b.permTop[bank]
	}
	if b.permTop[bank] > b.maxTop[bank] {
		b.maxTop[bank] = b.permTop[bank]
	}
	return r
}

func (b *builder) temp(bank Bank) Reg {
	r := Reg{Bank: bank, Idx: b.tempTop[bank]}
	b.tempTop[bank]++
	if b.tempTop[bank] > b.maxTop[bank] {
		b.maxTop[bank] = b.tempTop[bank]
	}
	return r
}

// resetTemps starts a statement: expression temporaries from the
// previous statement are dead and their registers reusable.
func (b *builder) resetTemps() { b.tempTop = b.permTop }

// assignSlots walks the IR allocating a home register for every
// variable declaration (VarSet, loop variables). Parameters are
// handled by the caller.
func (b *builder) assignSlots(stmts []compile.Stmt) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *compile.Block:
			if err := b.assignSlots(s.Stmts); err != nil {
				return err
			}
		case *compile.VarSet:
			bank := BankOf(s.Type)
			if bank == BankNone {
				return fmt.Errorf("%s: var %s has unbankable type %v", s.Pos(), s.Name, s.Type)
			}
			b.slotReg[s.Slot] = b.allocPerm(bank)
		case *compile.While:
			if err := b.assignSlots(s.Body); err != nil {
				return err
			}
		case *compile.If:
			if err := b.assignSlots(s.Then); err != nil {
				return err
			}
			if err := b.assignSlots(s.Else); err != nil {
				return err
			}
		case *compile.For:
			b.slotReg[s.Slot] = b.allocPerm(BankInt)
			if err := b.assignSlots(s.Body); err != nil {
				return err
			}
		}
	}
	return nil
}

func (b *builder) emit(pos lang.Pos, in Instr) int32 {
	pc := int32(len(b.f.Code))
	b.f.Code = append(b.f.Code, in)
	b.f.Pos = append(b.f.Pos, pos)
	return pc
}

// patch sets the jump target (Imm) of a previously emitted branch to
// the current pc.
func (b *builder) patch(pc int32) {
	b.f.Code[pc].Imm = int64(len(b.f.Code))
}

func (b *builder) str(s string) int32 {
	if i, ok := b.strIdx[s]; ok {
		return i
	}
	i := int32(len(b.f.Strs))
	b.f.Strs = append(b.f.Strs, s)
	b.strIdx[s] = i
	return i
}

func (b *builder) name(s string) int32 {
	if i, ok := b.nameIdx[s]; ok {
		return i
	}
	i := int32(len(b.f.Names))
	b.f.Names = append(b.f.Names, s)
	b.nameIdx[s] = i
	return i
}

// ---------------------------------------------------------------------------
// Statements

func (b *builder) stmts(stmts []compile.Stmt) error {
	for _, s := range stmts {
		if err := b.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) stmt(s compile.Stmt) error {
	b.resetTemps()
	pos := s.Pos()
	b.emit(pos, Instr{Op: OpStep})
	switch s := s.(type) {
	case *compile.Block:
		return b.stmts(s.Stmts)

	case *compile.VarSet:
		dst := b.slotReg[s.Slot]
		if s.Init == nil {
			// Zero value; one VarAccess for the write, like the
			// closure engine's declare.
			switch dst.Bank {
			case BankInt:
				b.emit(pos, Instr{Op: OpConstInt, A: dst.Idx, D: 1})
			case BankReal:
				b.emit(pos, Instr{Op: OpConstReal, A: dst.Idx, D: 1})
			case BankBool:
				b.emit(pos, Instr{Op: OpConstBool, A: dst.Idx, D: 1})
			case BankStr:
				b.emit(pos, Instr{Op: OpConstStr, A: dst.Idx, B: b.str(""), D: 1})
			case BankNode:
				b.emit(pos, Instr{Op: OpConstNull, A: dst.Idx, D: 1})
			}
			return nil
		}
		return b.assignTo(dst, s.Type, s.Init)

	case *compile.AssignSlot:
		return b.assignTo(b.slotReg[s.Slot], s.Type, s.RHS)

	case *compile.StoreField:
		return b.storeField(s)

	case *compile.While:
		head := int32(len(b.f.Code))
		rc, pva, err := b.operand(s.Cond)
		if err != nil {
			return err
		}
		br := b.emit(s.Cond.Pos(), Instr{Op: OpBr, A: rc.Idx, D: pva})
		if err := b.stmts(s.Body); err != nil {
			return err
		}
		b.emit(pos, Instr{Op: OpStep})
		b.emit(pos, Instr{Op: OpJump, Imm: int64(head)})
		b.patch(br)
		return nil

	case *compile.If:
		rc, pva, err := b.operand(s.Cond)
		if err != nil {
			return err
		}
		br := b.emit(s.Cond.Pos(), Instr{Op: OpBr, A: rc.Idx, D: pva})
		if err := b.stmts(s.Then); err != nil {
			return err
		}
		if s.Else == nil {
			b.patch(br)
			return nil
		}
		end := b.emit(pos, Instr{Op: OpJump})
		b.patch(br)
		if err := b.stmts(s.Else); err != nil {
			return err
		}
		b.patch(end)
		return nil

	case *compile.Return:
		if s.Value == nil {
			b.emit(pos, Instr{Op: OpReturnVoid})
			return nil
		}
		// The value is coerced to the declared result type at the call
		// boundary; emit the int→real widening statically.
		fn := b.f
		if isReal(fn.Result) && !isReal(s.Value.Type()) {
			r, pva, err := b.realOperand(s.Value)
			if err != nil {
				return err
			}
			b.emit(pos, Instr{Op: OpReturnReal, A: r.Idx, D: pva})
			return nil
		}
		r, pva, err := b.operand(s.Value)
		if err != nil {
			return err
		}
		var op Op
		switch r.Bank {
		case BankInt:
			op = OpReturnInt
		case BankReal:
			op = OpReturnReal
		case BankBool:
			op = OpReturnBool
		case BankStr:
			op = OpReturnStr
		case BankNode:
			op = OpReturnNode
		default:
			return fmt.Errorf("%s: return of unbankable type %v", pos, s.Value.Type())
		}
		b.emit(pos, Instr{Op: op, A: r.Idx, D: pva})
		return nil

	case *compile.CallStmt:
		e := s.Call
		if e.Builtin == compile.BuiltinPrint {
			return b.printCall(e)
		}
		if e.Builtin != compile.NotBuiltin {
			// A builtin evaluated for effect: discard into a temp.
			return b.evalInto(e, b.temp(BankReal), 0)
		}
		return b.userCall(e, Reg{Bank: BankNone}, 0)

	case *compile.For:
		return b.forStmt(s)
	}
	return fmt.Errorf("%s: unknown statement %T", pos, s)
}

// assignTo stores an expression into a slot home register, charging
// the extra VarAccess the closure engine charges per assignment.
func (b *builder) assignTo(dst Reg, typ lang.Type, e compile.Expr) error {
	if isReal(typ) && !isReal(e.Type()) {
		return b.evalIntoReal(e, dst, 1)
	}
	return b.evalInto(e, dst, 1)
}

func (b *builder) storeField(s *compile.StoreField) error {
	pos := s.Pos()
	if s.IsPtr {
		rs, ps, err := b.operand(s.RHS)
		if err != nil {
			return err
		}
		rb, pb, err := b.operand(s.Base)
		if err != nil {
			return err
		}
		if s.Index == nil {
			b.emit(pos, Instr{Op: OpStoreNode, A: rb.Idx, B: rs.Idx, C: int32(s.Off),
				Imm: int64(b.name(s.Field)), D: ps + pb})
			return nil
		}
		b.emit(pos, Instr{Op: OpStoreNodeIdxBegin, A: rb.Idx, D: ps + pb})
		ri, pi, err := b.operand(s.Index)
		if err != nil {
			return err
		}
		b.emit(pos, Instr{Op: OpStoreNodeIdx, A: rb.Idx, B: rs.Idx, C: ri.Idx,
			Imm: packOffName(s.Off, b.name(s.Field)), D: pi})
		return nil
	}

	// Data store: rhs evaluates before the base's VarAccess charge.
	var rs Reg
	var ps int32
	var err error
	if isReal(s.Type) && !isReal(s.RHS.Type()) {
		rs, ps, err = b.realOperand(s.RHS)
	} else {
		rs, ps, err = b.operand(s.RHS)
	}
	if err != nil {
		return err
	}
	rb, pb, err := b.operand(s.Base)
	if err != nil {
		return err
	}
	var op Op
	switch BankOf(s.Type) {
	case BankInt:
		op = OpStoreInt
	case BankReal:
		op = OpStoreReal
	case BankBool:
		op = OpStoreBool
	default:
		return fmt.Errorf("%s: data field %s has unbankable type %v", pos, s.Field, s.Type)
	}
	b.emit(pos, Instr{Op: op, A: rb.Idx, B: rs.Idx, C: int32(s.Off),
		Imm: int64(b.name(s.Field)), D: ps + pb})
	return nil
}

func (b *builder) forStmt(s *compile.For) error {
	pos := s.Pos()
	// Hidden counter and bound live in permanent registers: the loop
	// variable's home is writable by the body without perturbing
	// iteration, and body statements reset the temp watermark.
	k := b.allocPerm(BankInt)
	hi := b.allocPerm(BankInt)
	if err := b.boundInto(s.From, k); err != nil {
		return err
	}
	if err := b.boundInto(s.To, hi); err != nil {
		return err
	}
	varReg := b.slotReg[s.Slot]

	if s.Parallel {
		site := int32(len(b.f.Foralls))
		b.f.Foralls = append(b.f.Foralls, ForallSite{From: k.Idx, To: hi.Idx, Var: varReg.Idx, Pos: pos})
		b.emit(pos, Instr{Op: OpForall, A: site})
		b.f.Foralls[site].BodyStart = int32(len(b.f.Code))
		nCalls := len(b.f.Calls)
		if err := b.stmts(s.Body); err != nil {
			return err
		}
		b.f.Foralls[site].BodyEnd = int32(len(b.f.Code))
		b.f.Foralls[site].Kernel, b.f.Foralls[site].VectorReason = b.classifyKernel(s, nCalls)
		return nil
	}

	head := b.emit(pos, Instr{Op: OpForHead, A: k.Idx, B: hi.Idx, C: varReg.Idx})
	if err := b.stmts(s.Body); err != nil {
		return err
	}
	b.emit(pos, Instr{Op: OpForTail, A: k.Idx, Imm: int64(head)})
	b.patch(head)
	return nil
}

// boundInto evaluates a loop bound into a hidden register: a plain
// move when the bound is a slot (its VarAccess charge folded into the
// move), a direct evaluation otherwise.
func (b *builder) boundInto(e compile.Expr, dst Reg) error {
	if sr, ok := e.(*compile.SlotRef); ok {
		b.emit(e.Pos(), Instr{Op: OpMovInt, A: dst.Idx, B: b.slotReg[sr.Slot].Idx, D: 1})
		return nil
	}
	return b.evalInto(e, dst, 0)
}

func packOffName(off int, name int32) int64 {
	return int64(off)<<32 | int64(uint32(name))
}

// UnpackOffName splits an Imm packed by the lowering for the indexed
// pointer-access opcodes.
func UnpackOffName(imm int64) (off int, name int32) {
	return int(imm >> 32), int32(uint32(imm))
}

// ---------------------------------------------------------------------------
// Expressions

// operand yields a register holding e's value plus the number of
// VarAccess charges the consumer must fold into its D (1 when the
// result is a slot's home register, read in place without a move).
func (b *builder) operand(e compile.Expr) (Reg, int32, error) {
	if sr, ok := e.(*compile.SlotRef); ok {
		return b.slotReg[sr.Slot], 1, nil
	}
	t := b.temp(BankOf(e.Type()))
	if t.Bank == BankNone {
		return Reg{}, 0, fmt.Errorf("%s: expression of unbankable type %v", e.Pos(), e.Type())
	}
	if err := b.evalInto(e, t, 0); err != nil {
		return Reg{}, 0, err
	}
	return t, 0, nil
}

// realOperand is operand for a statically-int expression consumed in a
// real context: the int→real widening is emitted here (the conversion
// itself is free, matching the closure engine's AsReal call).
func (b *builder) realOperand(e compile.Expr) (Reg, int32, error) {
	if isReal(e.Type()) {
		return b.operand(e)
	}
	if lit, ok := e.(*compile.IntLit); ok {
		t := b.temp(BankReal)
		b.emit(e.Pos(), Instr{Op: OpConstReal, A: t.Idx, Fv: float64(lit.Val)})
		return t, 0, nil
	}
	r, pva, err := b.operand(e)
	if err != nil {
		return Reg{}, 0, err
	}
	t := b.temp(BankReal)
	b.emit(e.Pos(), Instr{Op: OpIntToReal, A: t.Idx, B: r.Idx, D: pva})
	return t, 0, nil
}

// evalIntoReal evaluates a statically-int expression into a real
// destination register.
func (b *builder) evalIntoReal(e compile.Expr, dst Reg, extraVA int32) error {
	if isReal(e.Type()) {
		return b.evalInto(e, dst, extraVA)
	}
	if lit, ok := e.(*compile.IntLit); ok {
		b.emit(e.Pos(), Instr{Op: OpConstReal, A: dst.Idx, Fv: float64(lit.Val), D: extraVA})
		return nil
	}
	r, pva, err := b.operand(e)
	if err != nil {
		return err
	}
	b.emit(e.Pos(), Instr{Op: OpIntToReal, A: dst.Idx, B: r.Idx, D: pva + extraVA})
	return nil
}

// evalInto emits code leaving e's value in dst, folding extraVA
// additional VarAccess charges (an enclosing assignment's write
// charge) into the final instruction.
func (b *builder) evalInto(e compile.Expr, dst Reg, extraVA int32) error {
	pos := e.Pos()
	switch e := e.(type) {
	case *compile.SlotRef:
		src := b.slotReg[e.Slot]
		var op Op
		switch src.Bank {
		case BankInt:
			op = OpMovInt
		case BankReal:
			op = OpMovReal
		case BankBool:
			op = OpMovBool
		case BankStr:
			op = OpMovStr
		case BankNode:
			op = OpMovNode
		}
		b.emit(pos, Instr{Op: op, A: dst.Idx, B: src.Idx, D: extraVA + 1})
		return nil

	case *compile.IntLit:
		b.emit(pos, Instr{Op: OpConstInt, A: dst.Idx, Imm: e.Val, D: extraVA})
		return nil
	case *compile.RealLit:
		b.emit(pos, Instr{Op: OpConstReal, A: dst.Idx, Fv: e.Val, D: extraVA})
		return nil
	case *compile.StrLit:
		b.emit(pos, Instr{Op: OpConstStr, A: dst.Idx, B: b.str(e.Val), D: extraVA})
		return nil
	case *compile.BoolLit:
		imm := int64(0)
		if e.Val {
			imm = 1
		}
		b.emit(pos, Instr{Op: OpConstBool, A: dst.Idx, Imm: imm, D: extraVA})
		return nil
	case *compile.NullLit:
		b.emit(pos, Instr{Op: OpConstNull, A: dst.Idx, D: extraVA})
		return nil

	case *compile.New:
		site := int32(len(b.f.News))
		b.f.News = append(b.f.News, NewSite{TypeName: e.TypeName, Decl: e.Decl})
		b.emit(pos, Instr{Op: OpNew, A: dst.Idx, B: site, D: extraVA})
		return nil

	case *compile.Load:
		return b.load(e, dst, extraVA)

	case *compile.Call:
		return b.call(e, dst, extraVA)

	case *compile.Bin:
		return b.bin(e, dst, extraVA)

	case *compile.Un:
		switch e.Op {
		case lang.MINUS:
			if isReal(e.X.Type()) {
				r, pva, err := b.operand(e.X)
				if err != nil {
					return err
				}
				b.emit(pos, Instr{Op: OpNegReal, A: dst.Idx, B: r.Idx, D: pva + extraVA})
				return nil
			}
			r, pva, err := b.operand(e.X)
			if err != nil {
				return err
			}
			b.emit(pos, Instr{Op: OpNegInt, A: dst.Idx, B: r.Idx, D: pva + extraVA})
			return nil
		case lang.NOT:
			r, pva, err := b.operand(e.X)
			if err != nil {
				return err
			}
			b.emit(pos, Instr{Op: OpNot, A: dst.Idx, B: r.Idx, D: pva + extraVA})
			return nil
		}
		return fmt.Errorf("%s: unknown unary op %s", pos, e.Op)
	}
	return fmt.Errorf("%s: unknown expression %T", pos, e)
}

func (b *builder) load(e *compile.Load, dst Reg, extraVA int32) error {
	pos := e.Pos()
	rb, pb, err := b.operand(e.X)
	if err != nil {
		return err
	}
	name := b.name(e.Field)
	if !e.IsPtr {
		var op Op
		switch BankOf(e.Type()) {
		case BankInt:
			op = OpLoadInt
		case BankReal:
			op = OpLoadReal
		case BankBool:
			op = OpLoadBool
		default:
			return fmt.Errorf("%s: data field %s has unbankable type %v", pos, e.Field, e.Type())
		}
		b.emit(pos, Instr{Op: op, A: dst.Idx, B: rb.Idx, C: int32(e.Off),
			Imm: int64(name), D: pb + extraVA})
		return nil
	}
	if e.Index == nil {
		b.emit(pos, Instr{Op: OpLoadNode, A: dst.Idx, B: rb.Idx, C: int32(e.Off),
			Imm: int64(name), D: pb + extraVA})
		return nil
	}
	// Indexed pointer load: a NULL base short-circuits past the index
	// expression (which must not evaluate), exactly as the closure
	// engine's generic path orders it.
	begin := b.emit(pos, Instr{Op: OpLoadNodeIdxBegin, A: dst.Idx, B: rb.Idx, C: name, D: pb + extraVA})
	ri, pi, err := b.operand(e.Index)
	if err != nil {
		return err
	}
	b.emit(pos, Instr{Op: OpLoadNodeIdx, A: dst.Idx, B: rb.Idx, C: ri.Idx,
		Imm: packOffName(e.Off, name), D: pi})
	b.patch(begin)
	return nil
}

func (b *builder) call(e *compile.Call, dst Reg, extraVA int32) error {
	pos := e.Pos()
	switch e.Builtin {
	case compile.BuiltinSqrt:
		r, pva, err := b.realOperand(e.Args[0])
		if err != nil {
			return err
		}
		b.emit(pos, Instr{Op: OpSqrt, A: dst.Idx, B: r.Idx, D: pva + extraVA})
		return nil
	case compile.BuiltinAbs:
		r, pva, err := b.realOperand(e.Args[0])
		if err != nil {
			return err
		}
		b.emit(pos, Instr{Op: OpAbs, A: dst.Idx, B: r.Idx, D: pva + extraVA})
		return nil
	case compile.BuiltinRand:
		b.emit(pos, Instr{Op: OpRand, A: dst.Idx, D: extraVA})
		return nil
	case compile.BuiltinPrint:
		return fmt.Errorf("%s: print in value position", pos)
	}
	return b.userCall(e, dst, extraVA)
}

func (b *builder) userCall(e *compile.Call, dst Reg, extraVA int32) error {
	// Arguments evaluate in order into their source registers (slot
	// homes pass through untouched, their VarAccess folded into the
	// call instruction). The VM copies them into the callee frame.
	callee := b.cp.Funcs[e.FuncIdx]
	va := extraVA
	args := make([]Reg, len(e.Args))
	for i, a := range e.Args {
		var r Reg
		var pva int32
		var err error
		if isReal(callee.Params[i].Type) && !isReal(a.Type()) {
			r, pva, err = b.realOperand(a)
		} else {
			r, pva, err = b.operand(a)
		}
		if err != nil {
			return err
		}
		args[i] = r
		va += pva
	}
	site := int32(len(b.f.Calls))
	b.f.Calls = append(b.f.Calls, CallSite{FuncIdx: int32(e.FuncIdx), Args: args, Dst: dst})
	b.emit(e.Pos(), Instr{Op: OpCall, A: site, D: va})
	return nil
}

func (b *builder) printCall(e *compile.Call) error {
	va := int32(0)
	args := make([]Reg, len(e.Args))
	for i, a := range e.Args {
		r, pva, err := b.operand(a)
		if err != nil {
			return err
		}
		args[i] = r
		va += pva
	}
	site := int32(len(b.f.Prints))
	b.f.Prints = append(b.f.Prints, PrintSite{Args: args})
	b.emit(e.Pos(), Instr{Op: OpPrint, A: site, D: va})
	return nil
}

func (b *builder) bin(e *compile.Bin, dst Reg, extraVA int32) error {
	pos := e.Pos()
	op := e.Op

	// Short-circuit logic: x lands in the result register, the probe
	// decides whether y overwrites it. When dst is a variable's home
	// register the sequence goes through a temp — writing x straight
	// into dst would let y observe the half-finished assignment (e.g.
	// `b := b && f(b)`). The assignment charge (extraVA) rides the
	// probe (direct form) or the final move (temp form); either
	// executes exactly once on both paths.
	if op == lang.AND || op == lang.OR {
		t := dst
		viaTemp := dst.Idx < b.permTop[dst.Bank]
		if viaTemp {
			t = b.temp(BankBool)
		}
		if err := b.evalInto(e.X, t, 0); err != nil {
			return err
		}
		probe := OpScAnd
		if op == lang.OR {
			probe = OpScOr
		}
		probeVA := extraVA
		if viaTemp {
			probeVA = 0
		}
		sc := b.emit(pos, Instr{Op: probe, A: t.Idx, D: probeVA})
		if err := b.evalInto(e.Y, t, 0); err != nil {
			return err
		}
		b.patch(sc)
		if viaTemp {
			b.emit(pos, Instr{Op: OpMovBool, A: dst.Idx, B: t.Idx, D: extraVA})
		}
		return nil
	}

	xt, yt := e.X.Type(), e.Y.Type()
	switch {
	case isStr(xt) && isStr(yt):
		return b.cmp2(e, dst, extraVA, OpEqStr, OpNeStr, b.operand)
	case isPtr(xt) || isPtr(yt):
		return b.cmp2(e, dst, extraVA, OpEqNode, OpNeNode, b.operand)
	case isReal(xt) || isReal(yt):
		return b.realBin(e, dst, extraVA)
	case isBool(xt) && isBool(yt):
		return b.cmp2(e, dst, extraVA, OpEqBool, OpNeBool, b.operand)
	default:
		return b.intBin(e, dst, extraVA)
	}
}

// cmp2 lowers an == / != over same-bank operands.
func (b *builder) cmp2(e *compile.Bin, dst Reg, extraVA int32, eqOp, neOp Op,
	opnd func(compile.Expr) (Reg, int32, error)) error {
	rx, px, err := opnd(e.X)
	if err != nil {
		return err
	}
	ry, py, err := opnd(e.Y)
	if err != nil {
		return err
	}
	op := eqOp
	if e.Op == lang.NEQ {
		op = neOp
	} else if e.Op != lang.EQ {
		return fmt.Errorf("%s: bad comparison op %s", e.Pos(), e.Op)
	}
	b.emit(e.Pos(), Instr{Op: op, A: dst.Idx, B: rx.Idx, C: ry.Idx, D: px + py + extraVA})
	return nil
}

func (b *builder) realBin(e *compile.Bin, dst Reg, extraVA int32) error {
	rx, px, err := b.realOperand(e.X)
	if err != nil {
		return err
	}
	ry, py, err := b.realOperand(e.Y)
	if err != nil {
		return err
	}
	var op Op
	switch e.Op {
	case lang.PLUS:
		op = OpAddReal
	case lang.MINUS:
		op = OpSubReal
	case lang.STAR:
		op = OpMulReal
	case lang.SLASH:
		op = OpDivReal
	case lang.EQ:
		op = OpEqReal
	case lang.NEQ:
		op = OpNeReal
	case lang.LT:
		op = OpLtReal
	case lang.LE:
		op = OpLeReal
	case lang.GT:
		op = OpGtReal
	case lang.GE:
		op = OpGeReal
	default:
		return fmt.Errorf("%s: bad real op %s", e.Pos(), e.Op)
	}
	b.emit(e.Pos(), Instr{Op: op, A: dst.Idx, B: rx.Idx, C: ry.Idx, D: px + py + extraVA})
	return nil
}

func (b *builder) intBin(e *compile.Bin, dst Reg, extraVA int32) error {
	rx, px, err := b.operand(e.X)
	if err != nil {
		return err
	}
	ry, py, err := b.operand(e.Y)
	if err != nil {
		return err
	}
	var op Op
	switch e.Op {
	case lang.PLUS:
		op = OpAddInt
	case lang.MINUS:
		op = OpSubInt
	case lang.STAR:
		op = OpMulInt
	case lang.SLASH:
		op = OpDivInt
	case lang.PERCENT:
		op = OpModInt
	case lang.EQ:
		op = OpEqInt
	case lang.NEQ:
		op = OpNeInt
	case lang.LT:
		op = OpLtInt
	case lang.LE:
		op = OpLeInt
	case lang.GT:
		op = OpGtInt
	case lang.GE:
		op = OpGeInt
	default:
		return fmt.Errorf("%s: bad int op %s", e.Pos(), e.Op)
	}
	b.emit(e.Pos(), Instr{Op: op, A: dst.Idx, B: rx.Idx, C: ry.Idx, D: px + py + extraVA})
	return nil
}
