// Disassembly: a stable, diffable text form of lowered programs. The
// golden tests under testdata/ pin it, so codegen changes surface as
// reviewable text diffs rather than silent instruction-stream churn.
package bytecode

import (
	"fmt"
	"strings"
)

// opNames is the mnemonic table, indexed by Op.
var opNames = [opCount]string{
	OpConstInt:  "const.int",
	OpConstReal: "const.real",
	OpConstBool: "const.bool",
	OpConstStr:  "const.str",
	OpConstNull: "const.null",
	OpMovInt:    "mov.int",
	OpMovReal:   "mov.real",
	OpMovBool:   "mov.bool",
	OpMovStr:    "mov.str",
	OpMovNode:   "mov.node",
	OpIntToReal: "i2r",

	OpStep:       "step",
	OpJump:       "jump",
	OpBr:         "br.false",
	OpScAnd:      "sc.and",
	OpScOr:       "sc.or",
	OpForHead:    "for.head",
	OpForTail:    "for.tail",
	OpForall:     "forall",
	OpCall:       "call",
	OpPrint:      "print",
	OpReturnVoid: "ret",
	OpReturnInt:  "ret.int",
	OpReturnReal: "ret.real",
	OpReturnBool: "ret.bool",
	OpReturnStr:  "ret.str",
	OpReturnNode: "ret.node",

	OpAddInt: "add.int",
	OpSubInt: "sub.int",
	OpMulInt: "mul.int",
	OpDivInt: "div.int",
	OpModInt: "mod.int",
	OpNegInt: "neg.int",
	OpEqInt:  "eq.int",
	OpNeInt:  "ne.int",
	OpLtInt:  "lt.int",
	OpLeInt:  "le.int",
	OpGtInt:  "gt.int",
	OpGeInt:  "ge.int",

	OpAddReal: "add.real",
	OpSubReal: "sub.real",
	OpMulReal: "mul.real",
	OpDivReal: "div.real",
	OpNegReal: "neg.real",
	OpEqReal:  "eq.real",
	OpNeReal:  "ne.real",
	OpLtReal:  "lt.real",
	OpLeReal:  "le.real",
	OpGtReal:  "gt.real",
	OpGeReal:  "ge.real",

	OpNot:    "not",
	OpEqBool: "eq.bool",
	OpNeBool: "ne.bool",
	OpEqStr:  "eq.str",
	OpNeStr:  "ne.str",
	OpEqNode: "eq.node",
	OpNeNode: "ne.node",

	OpNew:               "new",
	OpLoadInt:           "load.int",
	OpLoadReal:          "load.real",
	OpLoadBool:          "load.bool",
	OpLoadNode:          "load.node",
	OpLoadNodeIdxBegin:  "load.node.idx?",
	OpLoadNodeIdx:       "load.node.idx",
	OpStoreInt:          "store.int",
	OpStoreReal:         "store.real",
	OpStoreBool:         "store.bool",
	OpStoreNode:         "store.node",
	OpStoreNodeIdxBegin: "store.node.idx?",
	OpStoreNodeIdx:      "store.node.idx",

	OpSqrt: "sqrt",
	OpAbs:  "abs",
	OpRand: "rand",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Disassemble renders a program as stable text: one function per
// block, one instruction per line with source position, followed by
// the function's site tables.
func Disassemble(p *Program) string {
	var sb strings.Builder
	for i, f := range p.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		disasmFunc(&sb, f)
	}
	return sb.String()
}

func disasmFunc(sb *strings.Builder, f *Func) {
	fmt.Fprintf(sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "%s %s%d:%s", p.Name, p.Reg.Bank, p.Reg.Idx, p.Type)
	}
	sb.WriteString(")")
	if f.Result != nil {
		fmt.Fprintf(sb, " %s", f.Result)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(sb, "  banks: int=%d real=%d bool=%d str=%d node=%d\n",
		f.NInt, f.NReal, f.NBool, f.NStr, f.NNode)
	for pc, in := range f.Code {
		fmt.Fprintf(sb, "  %4d  %-44s ; %s\n", pc, instrText(f, in), f.Pos[pc])
	}
	for i, s := range f.Foralls {
		fmt.Fprintf(sb, "  forall[%d]: from=i%d to=i%d var=i%d body=[%d,%d)%s\n",
			i, s.From, s.To, s.Var, s.BodyStart, s.BodyEnd, vecVerdict(s))
		if s.Kernel != nil {
			disasmKernel(sb, i, s.Kernel)
		}
	}
	for i, c := range f.Calls {
		fmt.Fprintf(sb, "  call[%d]: fn=%d args=%s dst=%s\n", i, c.FuncIdx, regList(c.Args), regOrNone(c.Dst))
	}
	for i, pr := range f.Prints {
		fmt.Fprintf(sb, "  print[%d]: args=%s\n", i, regList(pr.Args))
	}
	for i, n := range f.News {
		fmt.Fprintf(sb, "  new[%d]: %s\n", i, n.TypeName)
	}
}

func regList(rs []Reg) string {
	var parts []string
	for _, r := range rs {
		parts = append(parts, fmt.Sprintf("%s%d", r.Bank, r.Idx))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func regOrNone(r Reg) string {
	if r.Bank == BankNone {
		return "_"
	}
	return fmt.Sprintf("%s%d", r.Bank, r.Idx)
}

// va renders the folded VarAccess count, present only when non-zero so
// the common case stays visually quiet.
func va(d int32) string {
	if d == 0 {
		return ""
	}
	return fmt.Sprintf("  +%dva", d)
}

func instrText(f *Func, in Instr) string {
	op := in.Op.String()
	switch in.Op {
	case OpConstInt:
		return fmt.Sprintf("%-16s i%d, %d%s", op, in.A, in.Imm, va(in.D))
	case OpConstReal:
		return fmt.Sprintf("%-16s f%d, %g%s", op, in.A, in.Fv, va(in.D))
	case OpConstBool:
		return fmt.Sprintf("%-16s b%d, %t%s", op, in.A, in.Imm != 0, va(in.D))
	case OpConstStr:
		return fmt.Sprintf("%-16s s%d, %q%s", op, in.A, f.Strs[in.B], va(in.D))
	case OpConstNull:
		return fmt.Sprintf("%-16s n%d%s", op, in.A, va(in.D))
	case OpMovInt:
		return fmt.Sprintf("%-16s i%d, i%d%s", op, in.A, in.B, va(in.D))
	case OpMovReal:
		return fmt.Sprintf("%-16s f%d, f%d%s", op, in.A, in.B, va(in.D))
	case OpMovBool:
		return fmt.Sprintf("%-16s b%d, b%d%s", op, in.A, in.B, va(in.D))
	case OpMovStr:
		return fmt.Sprintf("%-16s s%d, s%d%s", op, in.A, in.B, va(in.D))
	case OpMovNode:
		return fmt.Sprintf("%-16s n%d, n%d%s", op, in.A, in.B, va(in.D))
	case OpIntToReal:
		return fmt.Sprintf("%-16s f%d, i%d%s", op, in.A, in.B, va(in.D))

	case OpStep:
		return op
	case OpJump:
		return fmt.Sprintf("%-16s ->%d", op, in.Imm)
	case OpBr:
		return fmt.Sprintf("%-16s b%d, ->%d%s", op, in.A, in.Imm, va(in.D))
	case OpScAnd, OpScOr:
		return fmt.Sprintf("%-16s b%d, ->%d%s", op, in.A, in.Imm, va(in.D))
	case OpForHead:
		return fmt.Sprintf("%-16s k=i%d to=i%d var=i%d ->%d", op, in.A, in.B, in.C, in.Imm)
	case OpForTail:
		return fmt.Sprintf("%-16s k=i%d ->%d", op, in.A, in.Imm)
	case OpForall:
		return fmt.Sprintf("%-16s forall[%d]", op, in.A)
	case OpCall:
		return fmt.Sprintf("%-16s call[%d]%s", op, in.A, va(in.D))
	case OpPrint:
		return fmt.Sprintf("%-16s print[%d]%s", op, in.A, va(in.D))
	case OpReturnVoid:
		return op
	case OpReturnInt:
		return fmt.Sprintf("%-16s i%d%s", op, in.A, va(in.D))
	case OpReturnReal:
		return fmt.Sprintf("%-16s f%d%s", op, in.A, va(in.D))
	case OpReturnBool:
		return fmt.Sprintf("%-16s b%d%s", op, in.A, va(in.D))
	case OpReturnStr:
		return fmt.Sprintf("%-16s s%d%s", op, in.A, va(in.D))
	case OpReturnNode:
		return fmt.Sprintf("%-16s n%d%s", op, in.A, va(in.D))

	case OpAddInt, OpSubInt, OpMulInt, OpDivInt, OpModInt:
		return fmt.Sprintf("%-16s i%d, i%d, i%d%s", op, in.A, in.B, in.C, va(in.D))
	case OpNegInt:
		return fmt.Sprintf("%-16s i%d, i%d%s", op, in.A, in.B, va(in.D))
	case OpEqInt, OpNeInt, OpLtInt, OpLeInt, OpGtInt, OpGeInt:
		return fmt.Sprintf("%-16s b%d, i%d, i%d%s", op, in.A, in.B, in.C, va(in.D))

	case OpAddReal, OpSubReal, OpMulReal, OpDivReal:
		return fmt.Sprintf("%-16s f%d, f%d, f%d%s", op, in.A, in.B, in.C, va(in.D))
	case OpNegReal:
		return fmt.Sprintf("%-16s f%d, f%d%s", op, in.A, in.B, va(in.D))
	case OpEqReal, OpNeReal, OpLtReal, OpLeReal, OpGtReal, OpGeReal:
		return fmt.Sprintf("%-16s b%d, f%d, f%d%s", op, in.A, in.B, in.C, va(in.D))

	case OpNot:
		return fmt.Sprintf("%-16s b%d, b%d%s", op, in.A, in.B, va(in.D))
	case OpEqBool, OpNeBool:
		return fmt.Sprintf("%-16s b%d, b%d, b%d%s", op, in.A, in.B, in.C, va(in.D))
	case OpEqStr, OpNeStr:
		return fmt.Sprintf("%-16s b%d, s%d, s%d%s", op, in.A, in.B, in.C, va(in.D))
	case OpEqNode, OpNeNode:
		return fmt.Sprintf("%-16s b%d, n%d, n%d%s", op, in.A, in.B, in.C, va(in.D))

	case OpNew:
		return fmt.Sprintf("%-16s n%d, new[%d]%s", op, in.A, in.B, va(in.D))
	case OpLoadInt:
		return fmt.Sprintf("%-16s i%d, n%d.%s@%d%s", op, in.A, in.B, f.Names[in.Imm], in.C, va(in.D))
	case OpLoadReal:
		return fmt.Sprintf("%-16s f%d, n%d.%s@%d%s", op, in.A, in.B, f.Names[in.Imm], in.C, va(in.D))
	case OpLoadBool:
		return fmt.Sprintf("%-16s b%d, n%d.%s@%d%s", op, in.A, in.B, f.Names[in.Imm], in.C, va(in.D))
	case OpLoadNode:
		return fmt.Sprintf("%-16s n%d, n%d.%s@%d%s", op, in.A, in.B, f.Names[in.Imm], in.C, va(in.D))
	case OpLoadNodeIdxBegin:
		return fmt.Sprintf("%-16s n%d, n%d.%s null->%d%s", op, in.A, in.B, f.Names[in.C], in.Imm, va(in.D))
	case OpLoadNodeIdx:
		off, name := UnpackOffName(in.Imm)
		return fmt.Sprintf("%-16s n%d, n%d.%s@%d[i%d]%s", op, in.A, in.B, f.Names[name], off, in.C, va(in.D))
	case OpStoreInt:
		return fmt.Sprintf("%-16s n%d.%s@%d, i%d%s", op, in.A, f.Names[in.Imm], in.C, in.B, va(in.D))
	case OpStoreReal:
		return fmt.Sprintf("%-16s n%d.%s@%d, f%d%s", op, in.A, f.Names[in.Imm], in.C, in.B, va(in.D))
	case OpStoreBool:
		return fmt.Sprintf("%-16s n%d.%s@%d, b%d%s", op, in.A, f.Names[in.Imm], in.C, in.B, va(in.D))
	case OpStoreNode:
		return fmt.Sprintf("%-16s n%d.%s@%d, n%d%s", op, in.A, f.Names[in.Imm], in.C, in.B, va(in.D))
	case OpStoreNodeIdxBegin:
		return fmt.Sprintf("%-16s n%d%s", op, in.A, va(in.D))
	case OpStoreNodeIdx:
		off, name := UnpackOffName(in.Imm)
		return fmt.Sprintf("%-16s n%d.%s@%d[i%d], n%d%s", op, in.A, f.Names[name], off, in.C, in.B, va(in.D))

	case OpSqrt, OpAbs:
		return fmt.Sprintf("%-16s f%d, f%d%s", op, in.A, in.B, va(in.D))
	case OpRand:
		return fmt.Sprintf("%-16s f%d%s", op, in.A, va(in.D))
	}
	return fmt.Sprintf("%-16s A=%d B=%d C=%d D=%d Imm=%d", op, in.A, in.B, in.C, in.D, in.Imm)
}
